package probesim_test

// Benchmarks for the distributed shard plane (PR 4): the router's local
// fast path must be at parity with the direct sharded store (the PR 3
// serving configuration), and the generic engine path over in-process
// engines bounds what the transport seam itself costs before any network.
//
//   - BenchmarkRouterSingleSource/direct-store: PR 3's configuration,
//     core.Executor straight over shard.Store.
//   - BenchmarkRouterSingleSource/router-local: the same store behind
//     router.NewLocal — the fast path must add nothing (it serves the
//     store's own snapshots).
//   - BenchmarkRouterSingleSource/router-engines: two in-process engines
//     splitting shard ownership through the generic path (materialized
//     composite view, router-side stepping, batched delegation) — the
//     in-memory cost of the distribution seam, network excluded.
//   - BenchmarkRouterSingleSource/router-tcp-batched: the same topology
//     over real loopback TCP with the batched wire forms (WalkBatch,
//     ResolveShards) — what a real fleet pays per query.
//   - BenchmarkRouterSingleSource/router-tcp-persegment: the same
//     sockets forced to the pre-batch per-segment wire forms (legacy
//     servers, one RPC per walk segment) — the distribution tax the
//     batched plane collapses.
//
// Run with
//
//	go test -run '^$' -bench 'BenchmarkRouter' -benchmem
//
// Committed results live in BENCH_PR4.json and BENCH_PR8.json.

import (
	"context"
	"net"
	"testing"

	"probesim/internal/core"
	"probesim/internal/graph"
	"probesim/internal/router"
	"probesim/internal/shard"
)

// benchTCPFleet serves two modern-or-legacy TCP workers splitting shard
// ownership and returns a router over them.
func benchTCPFleet(b *testing.B, g *graph.Graph, legacy bool) *router.Router {
	b.Helper()
	var engines []router.ShardEngine
	for i := 0; i < 2; i++ {
		srv := router.NewServer(router.NewLocalEngine(shard.NewStore(g, shardBenchShards, 0), i, 2))
		srv.SetLegacy(legacy)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(ln)
		b.Cleanup(func() { srv.Close() })
		re := router.NewRemoteEngine(ln.Addr().String())
		b.Cleanup(func() { re.Close() })
		engines = append(engines, re)
	}
	rt, err := router.New(engines...)
	if err != nil {
		b.Fatal(err)
	}
	return rt
}

func BenchmarkRouterSingleSource(b *testing.B) {
	g := shardBenchGraph(b)
	u := benchQuery(b, g)
	opt := snapshotBenchOpts()

	st := shard.NewStore(g, shardBenchShards, 0)
	stA := shard.NewStore(g, shardBenchShards, 0)
	stB := shard.NewStore(g, shardBenchShards, 0)
	local := router.NewLocal(shard.NewStore(g, shardBenchShards, 0))
	split, err := router.New(router.NewLocalEngine(stA, 0, 2), router.NewLocalEngine(stB, 1, 2))
	if err != nil {
		b.Fatal(err)
	}

	want, err := core.SingleSource(context.Background(), st.Current(), u, opt)
	if err != nil {
		b.Fatal(err)
	}
	for name, provider := range map[string]core.SnapshotProvider{
		"router-local": local, "router-engines": split,
	} {
		got, err := core.SingleSource(context.Background(), provider.PublishedView(), u, opt)
		if err != nil {
			b.Fatal(err)
		}
		for v := range want {
			if want[v] != got[v] {
				b.Fatalf("%s diverges from direct store at node %d: %v != %v", name, v, got[v], want[v])
			}
		}
	}

	run := func(provider core.SnapshotProvider) func(*testing.B) {
		return func(b *testing.B) {
			ex := core.NewExecutorOn(provider, opt)
			buf := make([]float64, g.NumNodes())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := ex.SingleSourceInto(context.Background(), u, buf)
				if err != nil {
					b.Fatal(err)
				}
				buf = out
			}
		}
	}
	// Churn variants publish a fresh generation before every query, so
	// each iteration pays the COLD view: re-materialization plus walk
	// delegation over the wire. This is where the batched forms earn
	// their keep — a warm view answers with zero read RPCs either way.
	runChurn := func(rt *router.Router) func(*testing.B) {
		return func(b *testing.B) {
			ex := core.NewExecutorOn(rt, opt)
			buf := make([]float64, g.NumNodes())
			ctx := context.Background()
			// Net-zero churn: add and remove the same edge in one batch.
			// The version still moves, invalidating the cached view.
			ops := []router.Op{{U: u, V: u + 1}, {Remove: true, U: u, V: u + 1}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.Apply(ctx, ops); err != nil {
					b.Fatal(err)
				}
				if _, err := rt.PublishView(ctx); err != nil {
					b.Fatal(err)
				}
				out, err := ex.SingleSourceInto(ctx, u, buf)
				if err != nil {
					b.Fatal(err)
				}
				buf = out
			}
		}
	}

	b.Run("direct-store", run(st))
	b.Run("router-local", run(local))
	b.Run("router-engines", run(split))
	b.Run("router-tcp-batched", run(benchTCPFleet(b, g, false)))
	b.Run("router-tcp-persegment", run(benchTCPFleet(b, g, true)))
	b.Run("router-tcp-batched-churn", runChurn(benchTCPFleet(b, g, false)))
	b.Run("router-tcp-persegment-churn", runChurn(benchTCPFleet(b, g, true)))
}
