package probesim_test

// Benchmarks for the distributed shard plane (PR 4): the router's local
// fast path must be at parity with the direct sharded store (the PR 3
// serving configuration), and the generic engine path over in-process
// engines bounds what the transport seam itself costs before any network.
//
//   - BenchmarkRouterSingleSource/direct-store: PR 3's configuration,
//     core.Executor straight over shard.Store.
//   - BenchmarkRouterSingleSource/router-local: the same store behind
//     router.NewLocal — the fast path must add nothing (it serves the
//     store's own snapshots).
//   - BenchmarkRouterSingleSource/router-engines: two in-process engines
//     splitting shard ownership through the generic path (lazy block
//     table, per-query bound view, walk-segment delegation) — the
//     in-memory cost of the distribution seam, network excluded.
//
// Run with
//
//	go test -run '^$' -bench 'BenchmarkRouter' -benchmem
//
// Committed results live in BENCH_PR4.json.

import (
	"context"
	"testing"

	"probesim/internal/core"
	"probesim/internal/router"
	"probesim/internal/shard"
)

func BenchmarkRouterSingleSource(b *testing.B) {
	g := shardBenchGraph(b)
	u := benchQuery(b, g)
	opt := snapshotBenchOpts()

	st := shard.NewStore(g, shardBenchShards, 0)
	stA := shard.NewStore(g, shardBenchShards, 0)
	stB := shard.NewStore(g, shardBenchShards, 0)
	local := router.NewLocal(shard.NewStore(g, shardBenchShards, 0))
	split, err := router.New(router.NewLocalEngine(stA, 0, 2), router.NewLocalEngine(stB, 1, 2))
	if err != nil {
		b.Fatal(err)
	}

	want, err := core.SingleSource(context.Background(), st.Current(), u, opt)
	if err != nil {
		b.Fatal(err)
	}
	for name, provider := range map[string]core.SnapshotProvider{
		"router-local": local, "router-engines": split,
	} {
		got, err := core.SingleSource(context.Background(), provider.PublishedView(), u, opt)
		if err != nil {
			b.Fatal(err)
		}
		for v := range want {
			if want[v] != got[v] {
				b.Fatalf("%s diverges from direct store at node %d: %v != %v", name, v, got[v], want[v])
			}
		}
	}

	run := func(provider core.SnapshotProvider) func(*testing.B) {
		return func(b *testing.B) {
			ex := core.NewExecutorOn(provider, opt)
			buf := make([]float64, g.NumNodes())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := ex.SingleSourceInto(context.Background(), u, buf)
				if err != nil {
					b.Fatal(err)
				}
				buf = out
			}
		}
	}
	b.Run("direct-store", run(st))
	b.Run("router-local", run(local))
	b.Run("router-engines", run(split))
}
