package probesim_test

// Extends the five-way agreement check to the extension estimators: the
// fingerprint index, the simulated distributed cluster, and the corrected
// linearization must all land on the same similarities as the Power
// Method. Together with TestFiveWayAgreement this puts eight independent
// implementations behind one ground truth.

import (
	"math"
	"testing"

	"probesim/internal/cluster"
	"probesim/internal/fingerprint"
	"probesim/internal/linear"
	"probesim/internal/power"
)

func TestExtensionEstimatorAgreement(t *testing.T) {
	g := seededGraph(404, 50, 100) // the same graph TestFiveWayAgreement uses
	const u = 7

	exact, err := power.SingleSource(g, u, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, est []float64, tol float64) {
		t.Helper()
		worst := 0.0
		for v := range est {
			if d := math.Abs(est[v] - exact[v]); d > worst {
				worst = d
			}
		}
		if worst > tol {
			t.Errorf("%s deviates from Power Method by %.4f (tol %.4f)", name, worst, tol)
		}
	}

	idx, err := fingerprint.Build(g, fingerprint.BuildOptions{Eps: 0.05, Delta: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fpEst, err := idx.SingleSource(u)
	if err != nil {
		t.Fatal(err)
	}
	check("Fingerprint", fpEst, 0.05)

	clEst, _, err := cluster.SingleSource(g, u, cluster.Config{
		Partitions: 5, Eps: 0.05, Delta: 0.01, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	check("Cluster", clEst, 0.05)

	lopt := linear.Options{C: 0.6, T: 50}
	d, err := linear.DiagonalExact(g, lopt)
	if err != nil {
		t.Fatal(err)
	}
	linEst, err := linear.SingleSource(g, u, d, lopt)
	if err != nil {
		t.Fatal(err)
	}
	check("Linearized(exact-D)", linEst, 1e-6)
}
