package probesim_test

import (
	"context"
	"fmt"

	"probesim"
)

// The two-paper citation pattern: papers 1 and 2 are both cited by paper
// 0, so they are structurally similar with s(1,2) = c = 0.6 exactly.
func ExampleSingleSource() {
	g := probesim.NewGraph(3)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(0, 2)

	scores, err := probesim.SingleSource(context.Background(), g, 1, probesim.Options{EpsA: 0.01, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("s(1,1) = %.0f\n", scores[1])
	fmt.Printf("s(1,2) = %.1f\n", scores[2])
	// Output:
	// s(1,1) = 1
	// s(1,2) = 0.6
}

func ExampleTopK() {
	// A diamond: 0 -> {1,2} -> 3. Nodes 1 and 2 share in-neighbor 0.
	g, err := probesim.NewGraphFromEdges(4, [][2]probesim.NodeID{
		{0, 1}, {0, 2}, {1, 3}, {2, 3},
	})
	if err != nil {
		panic(err)
	}
	top, err := probesim.TopK(context.Background(), g, 1, 1, probesim.Options{EpsA: 0.01, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("most similar to 1: node %d\n", top[0].Node)
	// Output:
	// most similar to 1: node 2
}

func ExampleNewQuerier() {
	g := probesim.NewGraph(3)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(0, 2)

	q := probesim.NewQuerier(g, probesim.Options{EpsA: 0.05, Seed: 1}, 16)
	if _, err := q.SingleSource(context.Background(), 1); err != nil {
		panic(err)
	}
	if _, err := q.SingleSource(context.Background(), 1); err != nil { // served from cache
		panic(err)
	}
	hits, misses, _ := q.Stats()
	fmt.Printf("hits=%d misses=%d\n", hits, misses)

	// Any mutation invalidates the cache automatically.
	_ = g.AddEdge(1, 2)
	if _, err := q.SingleSource(context.Background(), 1); err != nil {
		panic(err)
	}
	_, misses2, _ := q.Stats()
	fmt.Printf("misses after update: %d\n", misses2)
	// Output:
	// hits=1 misses=1
	// misses after update: 2
}

func ExamplePlanFor() {
	plan, err := probesim.PlanFor(probesim.Options{EpsA: 0.1, Delta: 0.01}, 10000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mode=%v walks>0=%v capped-walk-length=%d\n",
		plan.Mode, plan.NumWalks > 0, plan.MaxWalkNodes)
	// Output:
	// mode=auto walks>0=true capped-walk-length=11
}
