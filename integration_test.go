package probesim_test

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"probesim"
	"probesim/internal/graph"
	"probesim/internal/mc"
	"probesim/internal/power"
	"probesim/internal/sling"
	"probesim/internal/topsim"
	"probesim/internal/xrand"
)

func seededGraph(seed uint64, n, m int) *graph.Graph {
	rng := xrand.New(seed)
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
		if u != v {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}

// Five independent estimators — ProbeSim, Monte Carlo, deep TopSim, SLING
// and the Power Method — must agree on the same graph. Any systematic bug
// in one of them breaks a different pairing, so this is the repository's
// strongest cross-check.
//
// The graph is kept sparse (average in-degree 2) because exhaustive
// TopSim enumeration costs O(d^2T); depth 12 gives a c^13/(1−c) ≈ 0.003
// truncation tail at negligible path count.
func TestFiveWayAgreement(t *testing.T) {
	g := seededGraph(404, 50, 100)
	const u = 7

	exact, err := power.SingleSource(g, u, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := probesim.SingleSource(context.Background(), g, u, probesim.Options{EpsA: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mcEst, err := mc.SingleSource(g, u, mc.Options{Eps: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tsEst, err := topsim.SingleSource(g, u, topsim.Options{C: 0.6, T: 12})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := sling.Build(g, sling.BuildOptions{C: 0.6, T: 20, EpsH: 1e-5, DPairs: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	slEst, err := idx.SingleSource(u)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, est []float64, tol float64) {
		t.Helper()
		worst := 0.0
		for v := range est {
			if d := math.Abs(est[v] - exact[v]); d > worst {
				worst = d
			}
		}
		if worst > tol {
			t.Errorf("%s deviates from Power Method by %.4f (tol %.4f)", name, worst, tol)
		}
	}
	check("ProbeSim", ps, 0.05)
	check("MC", mcEst, 0.05)
	check("TopSim(T=12)", tsEst, 0.005)
	check("SLING", slEst, 0.03)
}

// SimRank is direction-sensitive: similarity flows through shared
// IN-neighbors, so co-children of a node are similar while co-parents of
// a node need shared parents of their own.
func TestDirectionSensitivity(t *testing.T) {
	// 0 -> 1, 0 -> 2: nodes 1 and 2 share their only in-neighbor, so
	// s(1,2) = c. In the transpose (1 -> 0, 2 -> 0), nodes 1 and 2 have
	// no in-neighbors at all, so s(1,2) = 0.
	g := graph.New(3)
	for _, e := range [][2]graph.NodeID{{0, 1}, {0, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	opt := probesim.Options{EpsA: 0.02, Seed: 1}
	fwd, err := probesim.SingleSource(context.Background(), g, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := probesim.SingleSource(context.Background(), g.Transpose(), 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fwd[2]-0.6) > 0.02 {
		t.Fatalf("forward s(1,2) = %v, want 0.6", fwd[2])
	}
	if rev[2] != 0 {
		t.Fatalf("transposed s(1,2) = %v, want 0", rev[2])
	}
}

// Top-k prefix property: with identical options, TopK(k1) is a prefix of
// TopK(k2) for k1 <= k2.
func TestTopKPrefixProperty(t *testing.T) {
	g := seededGraph(17, 60, 400)
	f := func(seed uint64) bool {
		u := graph.NodeID(seed % 60)
		if g.InDegree(u) == 0 {
			return true
		}
		opt := probesim.Options{EpsA: 0.1, Seed: seed%97 + 1}
		small, err := probesim.TopK(context.Background(), g, u, 5, opt)
		if err != nil {
			return false
		}
		big, err := probesim.TopK(context.Background(), g, u, 15, opt)
		if err != nil {
			return false
		}
		for i := range small {
			if small[i] != big[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// The Querier must serve answers identical to direct queries, before and
// after mutations.
func TestQuerierMatchesDirectAcrossUpdates(t *testing.T) {
	g := seededGraph(23, 40, 200)
	opt := probesim.Options{NumWalks: 400, Seed: 5}
	q := probesim.NewQuerier(g, opt, 4)
	for round := 0; round < 3; round++ {
		for _, u := range []graph.NodeID{1, 2} {
			cached, err := q.SingleSource(context.Background(), u)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := probesim.SingleSource(context.Background(), g, u, opt)
			if err != nil {
				t.Fatal(err)
			}
			for v := range direct {
				if cached[v] != direct[v] {
					t.Fatalf("round %d: cached result diverges at node %d", round, v)
				}
			}
		}
		// Mutate between rounds.
		rng := xrand.New(uint64(round) + 99)
		u, v := rng.Int31n(40), rng.Int31n(40)
		if u != v && !g.HasEdge(u, v) {
			if err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// Every algorithm must agree that a node pair with identical in-neighbor
// sets has similarity c (one shared parent): the simplest closed form.
func TestSharedParentClosedFormAcrossAlgorithms(t *testing.T) {
	g := graph.New(4)
	for _, e := range [][2]graph.NodeID{{2, 0}, {2, 1}, {3, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	const c = 0.6
	if est, err := probesim.SingleSource(context.Background(), g, 0, probesim.Options{C: c, EpsA: 0.02, Seed: 2}); err != nil {
		t.Fatal(err)
	} else if math.Abs(est[1]-c) > 0.02 {
		t.Errorf("ProbeSim s(0,1) = %v, want %v", est[1], c)
	}
	if est, err := mc.SingleSource(g, 0, mc.Options{C: c, Eps: 0.02, Seed: 2}); err != nil {
		t.Fatal(err)
	} else if math.Abs(est[1]-c) > 0.02 {
		t.Errorf("MC s(0,1) = %v, want %v", est[1], c)
	}
	if est, err := topsim.SingleSource(g, 0, topsim.Options{C: c, T: 10}); err != nil {
		t.Fatal(err)
	} else if math.Abs(est[1]-c) > 1e-9 {
		t.Errorf("TopSim s(0,1) = %v, want %v", est[1], c)
	}
}

// Mode equivalence under the same seed on a fixed graph: batch modes are
// algebraic rewrites of the pruned mode (verified exactly in the core
// package); here we verify the public API exposes all modes consistently,
// each within the εa band of the others.
func TestModesMutuallyConsistent(t *testing.T) {
	g := seededGraph(31, 50, 250)
	const u, epsA = 3, 0.08
	var results [][]float64
	for _, m := range []probesim.Mode{
		probesim.ModeAuto, probesim.ModeBasic, probesim.ModePruned,
		probesim.ModeBatch, probesim.ModeRandomized, probesim.ModeHybrid,
	} {
		est, err := probesim.SingleSource(context.Background(), g, u, probesim.Options{EpsA: epsA, Mode: m, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, est)
	}
	for i := 1; i < len(results); i++ {
		for v := range results[0] {
			if d := math.Abs(results[0][v] - results[i][v]); d > 2*epsA {
				t.Fatalf("modes %d and 0 disagree by %.4f at node %d", i, d, v)
			}
		}
	}
}

func TestGraphStatsExposed(t *testing.T) {
	g := seededGraph(37, 20, 60)
	stats := g.ComputeStats()
	if stats.Nodes != 20 || stats.Edges != g.NumEdges() {
		t.Fatalf("stats = %+v", stats)
	}
}
