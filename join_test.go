package probesim_test

import (
	"context"
	"math"
	"testing"

	"probesim"
)

// diamondGraph returns the quick-start diamond: 0 -> {1, 2} -> 3. Nodes 1
// and 2 share their only in-neighbor, so s(1, 2) = c = 0.6, the largest
// off-diagonal similarity in the graph.
func diamondGraph(t *testing.T) *probesim.Graph {
	t.Helper()
	g := probesim.NewGraph(4)
	for _, e := range [][2]probesim.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestThresholdJoinPublicAPI(t *testing.T) {
	g := diamondGraph(t)
	pairs, err := probesim.ThresholdJoin(context.Background(), g, 0.5, probesim.JoinOptions{
		Query: probesim.Options{EpsA: 0.03, Seed: 5},
	})
	if err != nil {
		t.Fatalf("ThresholdJoin: %v", err)
	}
	if len(pairs) != 1 {
		t.Fatalf("got %d pairs at θ=0.5, want exactly {1,2}: %v", len(pairs), pairs)
	}
	p := pairs[0]
	if p.U != 1 || p.V != 2 {
		t.Fatalf("pair = {%d,%d}, want {1,2}", p.U, p.V)
	}
	if math.Abs(p.Score-0.6) > 0.03 {
		t.Fatalf("score = %v, want 0.6 ± 0.03", p.Score)
	}
}

func TestTopKJoinPublicAPI(t *testing.T) {
	g := diamondGraph(t)
	pairs, err := probesim.TopKJoin(context.Background(), g, 2, probesim.JoinOptions{
		Query: probesim.Options{EpsA: 0.03, Seed: 5},
	})
	if err != nil {
		t.Fatalf("TopKJoin: %v", err)
	}
	// {1,2} is the only pair with nonzero similarity in the diamond (every
	// other pair involves node 0 or node 3 paths through node 0, which has
	// no in-neighbors), so k=2 returns just one pair.
	if len(pairs) != 1 {
		t.Fatalf("got %d pairs, want 1 (only one nonzero pair exists)", len(pairs))
	}
	if pairs[0].U != 1 || pairs[0].V != 2 {
		t.Fatalf("best pair = {%d,%d}, want {1,2}", pairs[0].U, pairs[0].V)
	}
}

func TestJoinSeesDynamicUpdates(t *testing.T) {
	// Joins run directly on the live graph: after rewiring, the best pair
	// changes with no index maintenance.
	g := probesim.NewGraph(5)
	for _, e := range [][2]probesim.NodeID{{0, 1}, {0, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	opt := probesim.JoinOptions{Query: probesim.Options{EpsA: 0.03, Seed: 9}}
	before, err := probesim.TopKJoin(context.Background(), g, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if before[0].U != 1 || before[0].V != 2 {
		t.Fatalf("best pair before update = %v, want {1,2}", before[0])
	}
	// Give nodes 3 and 4 the same single parent: they tie at c, and the
	// join must now report both pairs at the top.
	for _, e := range [][2]probesim.NodeID{{0, 3}, {0, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	after, err := probesim.TopKJoin(context.Background(), g, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, p := range after {
		if math.Abs(p.Score-0.6) <= 0.03 {
			found++
		}
	}
	// All pairs among {1,2,3,4} share in-neighbor 0: six pairs at c.
	if found != 6 {
		t.Fatalf("found %d pairs at ≈c after update, want 6: %v", found, after)
	}
}
