module probesim

go 1.24
