// Friend recommendation on a social network, the link-prediction use case
// the paper cites for SimRank (§1): users whose followers overlap are
// likely to know each other. The example builds a stochastic block model
// with three communities, runs top-k ProbeSim queries for a handful of
// users, and measures how many recommendations land inside the user's own
// community — the signal a recommender would act on. It then shows the
// join API surfacing the globally most similar user pairs.
//
//	go run ./examples/recommend
package main

import (
	"context"
	"fmt"
	"log"

	"probesim"
	"probesim/internal/gen"
)

func main() {
	ctx := context.Background()
	sizes := []int{60, 60, 60}
	g := gen.StochasticBlockModel(sizes, 0.12, 0.004, 5)
	block := gen.BlockOf(sizes)
	fmt.Printf("social graph: %d users, %d follows, 3 communities\n",
		g.NumNodes(), g.NumEdges())

	opt := probesim.Options{EpsA: 0.03, Delta: 0.01, Seed: 3}
	k := 10
	users := []probesim.NodeID{5, 70, 130}
	for _, u := range users {
		top, err := probesim.TopK(ctx, g, u, k, opt)
		if err != nil {
			log.Fatal(err)
		}
		inCommunity := 0
		fmt.Printf("\nrecommendations for user %d (community %d):\n", u, block[u])
		for i, r := range top {
			marker := " "
			if block[r.Node] == block[u] {
				marker = "*"
				inCommunity++
			}
			fmt.Printf("  %2d. user %3d  score %.4f %s\n", i+1, r.Node, r.Score, marker)
		}
		fmt.Printf("  %d/%d recommendations inside the community\n", inCommunity, len(top))
	}

	// The global view: which pairs of users are most similar overall?
	pairs, err := probesim.TopKJoin(ctx, g, 5, probesim.JoinOptions{
		Query: probesim.Options{EpsA: 0.05, Seed: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmost similar pairs network-wide:")
	for i, p := range pairs {
		same := "different communities"
		if block[p.U] == block[p.V] {
			same = fmt.Sprintf("both community %d", block[p.U])
		}
		fmt.Printf("  %d. (%d, %d)  score %.4f  (%s)\n", i+1, p.U, p.V, p.Score, same)
	}
}
