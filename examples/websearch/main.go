// Related-page search: the web-mining application from the paper's
// introduction. On a web-shaped graph (R-MAT), "pages similar to X" is a
// top-k SimRank query: two pages are similar when the pages linking to
// them are similar — exactly SimRank's recursion. This example compares
// the accuracy/latency trade-off across eps_a settings on one query.
//
//	go run ./examples/websearch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"probesim"
	"probesim/internal/gen"
)

func main() {
	ctx := context.Background()
	// A web-like graph: 2^15 pages, ~600k hyperlinks, skewed in-degrees.
	g := gen.RMAT(15, 600000, 0.57, 0.19, 0.19, 0.05, 11)
	fmt.Printf("web graph: %d pages, %d links\n", g.NumNodes(), g.NumEdges())

	// Pick a page with a healthy but non-hub in-link profile as the query
	// (hubs make every SimRank algorithm work harder — §6.2 discusses this
	// "locally dense" effect on Twitter).
	var query probesim.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.InDegree(probesim.NodeID(v)); d >= 8 && d <= 20 {
			query = probesim.NodeID(v)
			break
		}
	}
	fmt.Printf("query page: %d (%d in-links)\n\n", query, g.InDegree(query))

	// Sweep the accuracy knob: tighter eps_a costs more walks but refines
	// the ranking. This is Figure 4's trade-off on a single query.
	for _, epsA := range []float64{0.15, 0.1, 0.05} {
		opt := probesim.Options{EpsA: epsA, Seed: 5}
		plan, err := probesim.PlanFor(opt, g.NumNodes())
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		top, err := probesim.TopK(ctx, g, query, 5, opt)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("eps_a=%-6g %6d walks  %8.1fms   top-5: ", epsA, plan.NumWalks,
			float64(elapsed.Microseconds())/1000)
		for _, r := range top {
			fmt.Printf("%d(%.3f) ", r.Node, r.Score)
		}
		fmt.Println()
	}

	fmt.Println("\nrelated pages share in-link neighborhoods with the query page;")
	fmt.Println("tightening eps_a stabilizes the tail of the ranking at higher cost.")
}
