// Dynamic graphs: the scenario that motivates ProbeSim (§1). A social
// network keeps changing — follows and unfollows stream in — and
// similarity queries must reflect the *current* graph immediately. With an
// index-free algorithm there is nothing to rebuild: updates are plain
// adjacency edits.
//
//	go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"probesim"
	"probesim/internal/gen"
	"probesim/internal/xrand"
)

func main() {
	ctx := context.Background()
	// Start from a power-law "follower" graph (50k users).
	const users = 50000
	g := gen.PreferentialAttachment(users, 12, 7)
	fmt.Printf("social graph: %d users, %d follow edges\n", g.NumNodes(), g.NumEdges())

	opt := probesim.Options{EpsA: 0.1, Seed: 1}
	const celebrity = 0 // node 0 is the oldest account, a hub

	// Query before any updates.
	start := time.Now()
	before, err := probesim.TopK(ctx, g, celebrity, 5, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-5 similar to user %d (%.1fms):\n", celebrity, ms(start))
	print5(before)

	// A burst of activity: 100k follow/unfollow events.
	rng := xrand.New(99)
	type edge struct{ u, v probesim.NodeID }
	var added []edge
	start = time.Now()
	events := 0
	for events < 100000 {
		if len(added) == 0 || rng.Float64() < 0.7 {
			u := probesim.NodeID(rng.Int31n(users))
			v := probesim.NodeID(rng.Int31n(users))
			if u == v {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				log.Fatal(err)
			}
			added = append(added, edge{u, v})
		} else {
			i := rng.Intn(len(added))
			if err := g.RemoveEdge(added[i].u, added[i].v); err != nil {
				log.Fatal(err)
			}
			added[i] = added[len(added)-1]
			added = added[:len(added)-1]
		}
		events++
	}
	elapsed := time.Since(start)
	fmt.Printf("\napplied %d follow/unfollow events in %v (%.0f events/sec)\n",
		events, elapsed.Round(time.Millisecond), float64(events)/elapsed.Seconds())
	fmt.Println("no index to rebuild — the next query is automatically fresh:")

	// Query immediately after the burst: same latency, fresh answer.
	start = time.Now()
	after, err := probesim.TopK(ctx, g, celebrity, 5, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-5 similar to user %d after churn (%.1fms):\n", celebrity, ms(start))
	print5(after)

	// Contrast (from the paper): TSF must patch Rg one-way graphs per
	// event, and SLING must rebuild an index that takes hours on
	// million-node graphs. Run `experiments -exp dynamic` for measurements.
	fmt.Println("\nsee `go run ./cmd/experiments -exp dynamic` for the update-cost comparison vs TSF")
}

func print5(res []probesim.ScoredNode) {
	for i, r := range res {
		fmt.Printf("  %d. user %-8d s = %.4f\n", i+1, r.Node, r.Score)
	}
}

func ms(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}
