// Pooled evaluation: reproduce the §6.2 methodology on one graph. When
// exact SimRank is out of reach, merge every algorithm's top-k into a
// pool, score the pool with a high-precision Monte Carlo expert, and judge
// each algorithm against the pool's true top-k.
//
//	go run ./examples/pooling-eval
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"probesim"
	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/mc"
	"probesim/internal/metrics"
	"probesim/internal/pooling"
	"probesim/internal/topsim"
	"probesim/internal/tsf"
)

const k = 20

func main() {
	ctx := context.Background()
	// A mid-size social graph: exact SimRank would need an n×n matrix.
	g := gen.PreferentialAttachment(30000, 12, 3)
	fmt.Printf("graph: n=%d m=%d — too large for the Power Method oracle\n", g.NumNodes(), g.NumEdges())
	var query probesim.NodeID = 17
	fmt.Printf("query node %d, top-%d\n\n", query, k)

	// Collect top-k answers from three algorithms.
	type entry struct {
		name string
		list []core.ScoredNode
		took time.Duration
	}
	var entries []entry

	start := time.Now()
	ps, err := probesim.TopK(ctx, g, query, k, probesim.Options{EpsA: 0.1, Seed: 1})
	must(err)
	entries = append(entries, entry{"ProbeSim", ps, time.Since(start)})

	start = time.Now()
	idx := tsf.Build(g, tsf.BuildOptions{Rg: 100, Seed: 1})
	built := time.Since(start)
	start = time.Now()
	tk, err := idx.TopK(query, k, tsf.QueryOptions{Rq: 40, Seed: 1})
	must(err)
	entries = append(entries, entry{"TSF", tk, time.Since(start)})
	fmt.Printf("(TSF index: built in %v, %d MB)\n", built.Round(time.Millisecond), idx.MemoryBytes()>>20)

	start = time.Now()
	pt, err := topsim.TopK(g, query, k, topsim.Options{Variant: topsim.PrioTopSimSM})
	must(err)
	entries = append(entries, entry{"Prio-TopSim-SM", pt, time.Since(start)})

	// Pool the answers and score with the MC expert.
	var lists [][]graph.NodeID
	for _, e := range entries {
		lists = append(lists, nodes(e.list))
	}
	pool := pooling.Pool(lists...)
	fmt.Printf("\npool: %d distinct candidates from %d algorithms\n", len(pool), len(entries))

	start = time.Now()
	scores, err := mc.MultiPair(g, query, pool, mc.Options{Eps: 0.005, Delta: 0.001, Seed: 9})
	must(err)
	fmt.Printf("expert scored the pool in %v (eps=0.005, 99.9%% confidence)\n\n", time.Since(start).Round(time.Millisecond))

	expert := func(v graph.NodeID) (float64, error) { return scores[v], nil }
	truth, _, err := pooling.GroundTruth(pool, expert, k)
	must(err)
	score := metrics.ScoreFromMap(scores)

	fmt.Printf("%-16s %10s %12s %8s %8s\n", "method", "time(ms)", "Precision@k", "NDCG@k", "tau")
	for _, e := range entries {
		got := nodes(e.list)
		fmt.Printf("%-16s %10.1f %12.3f %8.3f %8.3f\n",
			e.name, float64(e.took.Microseconds())/1000,
			metrics.PrecisionAtK(got, truth),
			metrics.NDCGAtK(got, truth, score),
			metrics.KendallTau(got, score))
	}
}

func nodes(res []core.ScoredNode) []graph.NodeID {
	out := make([]graph.NodeID, len(res))
	for i, r := range res {
		out[i] = r.Node
	}
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
