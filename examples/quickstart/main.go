// Quickstart: build a small citation-style graph with the public API, run
// a single-source SimRank query and a top-k query, and print the results.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"probesim"
)

func main() {
	ctx := context.Background()
	// A toy citation graph: papers cite earlier papers.
	//
	//	      0 (survey)
	//	     / \
	//	    v   v
	//	    1   2      (two foundational papers, both cited by the survey)
	//	    |\ /|
	//	    v v v
	//	    3 4 5      (follow-up work)
	papers := []string{"survey", "foundA", "foundB", "follow1", "follow2", "follow3"}
	g := probesim.NewGraph(len(papers))
	edges := [][2]probesim.NodeID{
		{0, 1}, {0, 2}, // the survey cites both foundations
		{1, 3}, {1, 4}, // foundation A is cited by follow-ups 1 and 2
		{2, 4}, {2, 5}, // foundation B is cited by follow-ups 2 and 3
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}

	// How similar is every paper to foundA? Guarantee: every score within
	// 0.02 of exact SimRank with probability 99%.
	opt := probesim.Options{EpsA: 0.02, Delta: 0.01, Seed: 42}
	scores, err := probesim.SingleSource(ctx, g, 1, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("similarity to foundA:")
	for v, s := range scores {
		fmt.Printf("  %-8s %.4f\n", papers[v], s)
	}

	// foundB shares its only citer (the survey) with foundA, so
	// s(foundA, foundB) = c = 0.6 exactly; the estimate lands within 0.02.
	fmt.Printf("\ns(foundA, foundB) = %.4f (exact value: 0.6)\n", scores[2])

	// Top-2 most similar papers to follow2, which is cited by... nothing,
	// but cites nothing either — it is *similar* to papers whose citers
	// overlap with its citers (foundA and foundB cite it).
	top, err := probesim.TopK(ctx, g, 4, 2, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-2 most similar to follow2:")
	for i, r := range top {
		fmt.Printf("  %d. %-8s %.4f\n", i+1, papers[r.Node], r.Score)
	}

	// Inspect the execution plan the query used.
	plan, err := probesim.PlanFor(opt, g.NumNodes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecution plan: %d sqrt(c)-walks, mode=%v, walk cap %d nodes\n",
		plan.NumWalks, plan.Mode, plan.MaxWalkNodes)
}
