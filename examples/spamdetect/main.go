// Spam detection, one of the paper's motivating applications (§1): pages
// similar to known spam under SimRank are likely spam themselves, because
// link farms cite each other the way the seed farm does. The example builds
// a web-like graph containing a hidden link farm, runs single-source
// ProbeSim queries from two known spam seeds, and flags every page whose
// similarity to a seed clears a threshold — recovering the rest of the farm
// with no false positives on the legitimate cluster.
//
//	go run ./examples/spamdetect
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"probesim"
	"probesim/internal/gen"
	"probesim/internal/graph"
)

// For a farm clique of size f, two members share the remaining f−1 members
// as in-neighbors, giving s ≈ (c/(f−1)) / (1 − c·(f−2)/(f−1)) ≈ 0.18 at
// f = 8, comfortably above the threshold; legitimate pages score near 0.
const (
	legitPages = 300 // preferential-attachment "good web"
	farmPages  = 8   // densely interlinked spam farm
	seedCount  = 2   // farm members already known to be spam
	threshold  = 0.12
)

func main() {
	ctx := context.Background()
	// The legitimate web: scale-free link structure.
	g := gen.PreferentialAttachment(legitPages, 3, 7)

	// The spam farm: every farm page links to every other (a clique of
	// mutual endorsements), plus a few camouflage links into the real web.
	farm := make([]probesim.NodeID, farmPages)
	for i := range farm {
		farm[i] = g.AddNode()
	}
	for _, u := range farm {
		for _, v := range farm {
			if u != v {
				must(g.AddEdge(u, v))
			}
		}
	}
	camouflage := []probesim.NodeID{3, 17, 42}
	for i, u := range farm {
		must(g.AddEdge(u, camouflage[i%len(camouflage)]))
	}

	fmt.Printf("web graph: %d pages, %d links (%d-page farm hidden inside)\n",
		g.NumNodes(), g.NumEdges(), farmPages)

	// Score every page by its best similarity to a known spam seed.
	opt := probesim.Options{EpsA: 0.05, Delta: 0.01, Seed: 11}
	suspicion := make([]float64, g.NumNodes())
	for s := 0; s < seedCount; s++ {
		scores, err := probesim.SingleSource(ctx, g, farm[s], opt)
		if err != nil {
			log.Fatal(err)
		}
		for v, sc := range scores {
			if sc > suspicion[v] {
				suspicion[v] = sc
			}
		}
	}
	for s := 0; s < seedCount; s++ {
		suspicion[farm[s]] = 0 // seeds are already known; don't re-report them
	}

	var flagged []probesim.NodeID
	for v, s := range suspicion {
		if s >= threshold {
			flagged = append(flagged, probesim.NodeID(v))
		}
	}
	sort.Slice(flagged, func(i, j int) bool {
		return suspicion[flagged[i]] > suspicion[flagged[j]]
	})

	fmt.Printf("\npages with similarity >= %.2f to a spam seed:\n", threshold)
	isFarm := make(map[graph.NodeID]bool, farmPages)
	for _, u := range farm {
		isFarm[u] = true
	}
	caught := 0
	for _, v := range flagged {
		tag := "LEGIT ?!"
		if isFarm[v] {
			tag = "farm member"
			caught++
		}
		fmt.Printf("  page %4d  suspicion %.3f  (%s)\n", v, suspicion[v], tag)
	}
	fmt.Printf("\nrecovered %d of %d unknown farm pages, %d false positives\n",
		caught, farmPages-seedCount, len(flagged)-caught)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
