// Any-time top-k: the progressive query answers "who are the 5 most
// similar users?" by running walks only until the ranking is provably
// settled, instead of paying the full εa-driven walk budget up front. On
// queries with a clear winner that is a large saving; on queries with ties
// at the boundary it gracefully falls back to the static budget. The
// example runs both algorithms on the same queries and prints the walk
// counts side by side.
//
//	go run ./examples/anytime
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"probesim"
	"probesim/internal/gen"
)

func main() {
	ctx := context.Background()
	// A scale-free social graph with reciprocal follows: hubs give some
	// queries clear winners, the tail gives others near-ties.
	g := gen.PreferentialAttachment(2000, 6, 11)
	gen.Reciprocate(g, 0.3, 12)
	fmt.Printf("graph: n=%d m=%d\n\n", g.NumNodes(), g.NumEdges())

	opt := probesim.Options{EpsA: 0.03, Delta: 0.01, Seed: 5}
	plan, err := probesim.PlanFor(opt, g.NumNodes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static walk budget at eps=%g: %d walks per query\n\n", opt.EpsA, plan.NumWalks)

	fmt.Printf("%-8s %12s %12s %10s %10s %10s\n",
		"query", "static(ms)", "anytime(ms)", "walks", "walks%", "separated")
	for _, u := range []probesim.NodeID{1, 7, 100, 1500, 1999} {
		start := time.Now()
		static, err := probesim.TopK(ctx, g, u, 5, opt)
		if err != nil {
			log.Fatal(err)
		}
		staticMs := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		prog, stats, err := probesim.TopKProgressive(ctx, g, u, 5, opt)
		if err != nil {
			log.Fatal(err)
		}
		progMs := float64(time.Since(start).Microseconds()) / 1000

		agree := 0
		in := map[probesim.NodeID]bool{}
		for _, r := range static {
			in[r.Node] = true
		}
		for _, r := range prog {
			if in[r.Node] {
				agree++
			}
		}
		fmt.Printf("%-8d %12.1f %12.1f %10d %9.1f%% %10v   (top-5 overlap %d/%d)\n",
			u, staticMs, progMs, stats.Walks,
			100*float64(stats.Walks)/float64(stats.BudgetWalks),
			stats.Separated, agree, len(static))
	}
	fmt.Println("\nlow overlap means massive ties at the boundary (dozens of nodes with")
	fmt.Println("identical similarity): both answers are then equally correct under the")
	fmt.Println("Definition-2 guarantee, which bounds score error, not set identity.")
}
