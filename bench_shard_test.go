package probesim_test

// Benchmarks for the sharded snapshot store (PR 2): publication cost per
// edge batch and single-source query speed, sharded vs monolithic.
//
//   - BenchmarkShardedRebuild applies a small batch of edge updates and
//     republishes. The monolithic variant pays a full O(n+m) CSR rebuild
//     per publication; the sharded variant re-encodes only the shards the
//     batch touched, so its cost scales with the batch, not the graph.
//   - BenchmarkShardedSingleSource answers the same query (bit-identical,
//     asserted before timing) on the monolithic snapshot and the sharded
//     composite; the sharded devirtualized Adj path must be at parity.
//
// Run with
//
//	go test -run '^$' -bench 'BenchmarkSharded' -benchmem
//
// Committed results live in BENCH_PR2.json.

import (
	"context"
	"fmt"
	"testing"

	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/shard"
)

// shardBenchShards is the requested partition bound for the 100k-node
// bench graphs; with the power-of-two stride this lands on 391 shards of
// 256 node ids, so a batch of b edges touches at most 2b of ~391 shards.
const shardBenchShards = 512

func shardBenchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	if g, ok := graphCache.Load("shard-pa"); ok {
		return g.(*graph.Graph)
	}
	g := gen.PreferentialAttachment(snapshotBenchSize, 8, 1)
	graphCache.Store("shard-pa", g)
	return g
}

// shardChurn deterministically generates the batch applied (and then
// reverted) in iteration i, so both variants and every iteration do
// identical mutation work and the graph returns to its initial state.
func shardChurn(n, batch, i int) [][2]graph.NodeID {
	edges := make([][2]graph.NodeID, 0, batch)
	for j := 0; j < batch; j++ {
		u := graph.NodeID((i*batch + j) * 2654435761 % n)
		v := graph.NodeID(((i*batch+j)*40503 + 1) % n)
		if u == v {
			v = (v + 1) % graph.NodeID(n)
		}
		edges = append(edges, [2]graph.NodeID{u, v})
	}
	return edges
}

// BenchmarkShardedRebuild prices one publication cycle — apply a batch of
// new edges, publish, revert the batch, publish — for the monolithic
// full-rebuild path and the sharded touched-shards path at several batch
// sizes. Each op is two publications.
func BenchmarkShardedRebuild(b *testing.B) {
	base := shardBenchGraph(b)
	n := base.NumNodes()
	for _, batch := range []int{2, 16, 128} {
		b.Run(fmt.Sprintf("monolithic/batch%d", batch), func(b *testing.B) {
			g := base.Clone()
			ex := core.NewExecutor(g, snapshotBenchOpts())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				edges := shardChurn(n, batch, i)
				for _, e := range edges {
					if err := g.AddEdge(e[0], e[1]); err != nil {
						b.Fatal(err)
					}
				}
				ex.Refresh()
				for _, e := range edges {
					if err := g.RemoveEdge(e[0], e[1]); err != nil {
						b.Fatal(err)
					}
				}
				ex.Refresh()
			}
		})
		b.Run(fmt.Sprintf("sharded/batch%d", batch), func(b *testing.B) {
			st := shard.NewStore(base, shardBenchShards, 0)
			before := st.Stats() // exclude the initial full publication
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				edges := shardChurn(n, batch, i)
				for _, e := range edges {
					if err := st.AddEdge(e[0], e[1]); err != nil {
						b.Fatal(err)
					}
				}
				st.Publish()
				for _, e := range edges {
					if err := st.RemoveEdge(e[0], e[1]); err != nil {
						b.Fatal(err)
					}
				}
				st.Publish()
			}
			b.StopTimer()
			ss := st.Stats()
			if pubs := ss.Publications - before.Publications; pubs > 0 {
				b.ReportMetric(float64(ss.ShardsRebuilt-before.ShardsRebuilt)/float64(pubs), "shards-rebuilt/publish")
			}
		})
	}
}

// BenchmarkShardedSingleSource compares steady-state query latency on the
// monolithic CSR snapshot vs the sharded composite, same pooled executor
// path, results asserted bit-identical first.
func BenchmarkShardedSingleSource(b *testing.B) {
	g := shardBenchGraph(b)
	u := benchQuery(b, g)
	opt := snapshotBenchOpts()

	st := shard.NewStore(g, shardBenchShards, 0)
	want, err := core.SingleSource(context.Background(), g.Snapshot(), u, opt)
	if err != nil {
		b.Fatal(err)
	}
	got, err := core.SingleSource(context.Background(), st.Current(), u, opt)
	if err != nil {
		b.Fatal(err)
	}
	for v := range want {
		if want[v] != got[v] {
			b.Fatalf("sharded result diverges from monolithic at node %d: %v != %v", v, got[v], want[v])
		}
	}

	b.Run("monolithic", func(b *testing.B) {
		ex := core.NewExecutor(g, opt)
		buf := make([]float64, g.NumNodes())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := ex.SingleSourceInto(context.Background(), u, buf)
			if err != nil {
				b.Fatal(err)
			}
			buf = out
		}
	})
	b.Run("sharded", func(b *testing.B) {
		ex := core.NewExecutorOn(st, opt)
		buf := make([]float64, g.NumNodes())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := ex.SingleSourceInto(context.Background(), u, buf)
			if err != nil {
				b.Fatal(err)
			}
			buf = out
		}
	})
}
