#!/usr/bin/env bash
# Load smoke: the tenant-aware SLO plane end to end, through real
# processes and real load.
#
# Boots a replicated worker pair (one shard group, two full-copy
# replicas) behind a routing probesim-server with two tenants armed —
# search=latency-strict, crawl=throughput-batch — and tight admission
# (-max-inflight 4, -soft-inflight 2). probesim-loadgen then replays a
# seeded scenario where the batch tenant saturates the server (8
# zero-think workers, bursty write churn, slow clients) while the
# latency-strict tenant runs its interactive mix with an
# X-ProbeSim-Max-Epsa accuracy floor. One worker replica is kill -9'd
# MID-RUN, so the read plane's failover is part of the measured window.
#
# The pass criteria are the PR's acceptance properties:
#   - the latency-strict tenant still admits (no rejections), meets its
#     p99 objective, and is NEVER served a degraded answer;
#   - the loadgen JSON report carries per-tenant achieved-vs-objective
#     fields, asserted via -assert exit-code contracts;
#   - /metrics exports the tenant-labeled admission and SLO burn
#     families, and both binaries export probesim_build_info.
set -euo pipefail
cd "$(dirname "$0")/.."

W0=19501 W1=19502 SRV=19503 H0=19504
TMP="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

wait_tcp() { # host port
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/$1/$2") 2>/dev/null; then exec 3>&-; return 0; fi
    sleep 0.1
  done
  echo "timed out waiting for $1:$2" >&2
  return 1
}

echo "== building"
go build -o "$TMP/bin/" ./cmd/gengraph ./cmd/probesim-shardd ./cmd/probesim-server ./cmd/probesim-loadgen

echo "== generating graph"
"$TMP/bin/gengraph" -type pa -n 2000 -deg 6 -seed 4 -o "$TMP/g.txt"

echo "== starting replicated workers (one group, two replicas)"
"$TMP/bin/probesim-shardd" -graph "$TMP/g.txt" -shards 16 -index 0 -group 1 \
  -addr "127.0.0.1:$W0" -health-addr "127.0.0.1:$H0" &
VICTIM=$!; PIDS+=($!)
"$TMP/bin/probesim-shardd" -graph "$TMP/g.txt" -shards 16 -index 0 -group 1 \
  -addr "127.0.0.1:$W1" &
PIDS+=($!)
wait_tcp 127.0.0.1 "$W0"
wait_tcp 127.0.0.1 "$W1"
wait_tcp 127.0.0.1 "$H0"

echo "== worker build info"
curl -sf "http://127.0.0.1:$H0/metrics" | grep -q 'probesim_build_info{binary="probesim-shardd"' || {
  echo "shardd /metrics missing probesim_build_info" >&2
  exit 1
}

echo "== starting tenant-armed routing server"
# Comma = two replicas of ONE shard group, so the mid-run kill below is
# a failover event, not an outage.
"$TMP/bin/probesim-server" -workers "127.0.0.1:$W0,127.0.0.1:$W1" -addr "127.0.0.1:$SRV" \
  -epsa 0.3 -max-inflight 4 -soft-inflight 2 -health-interval 500ms \
  -tenants "search=latency-strict,crawl=throughput-batch" \
  -slo "search=750ms:0.95,crawl=5s:0.5" &
PIDS+=($!)
wait_tcp 127.0.0.1 "$SRV"
for _ in $(seq 1 50); do
  curl -sf "http://127.0.0.1:$SRV/stats" >/dev/null && break
  sleep 0.1
done

echo "== replaying the saturation scenario (worker killed mid-run)"
# The batch tenant saturates (zero think, write bursts, slow clients);
# the strict tenant must ride the fair queue unharmed. Assertions are
# exit-code contracts: latency-strict p99 under its objective, zero
# unrequested degradations, zero rejections, and both tenants actually
# generated load.
"$TMP/bin/probesim-loadgen" -target "http://127.0.0.1:$SRV" -seed 7 -duration 8s -nodes 2000 \
  -mix "search,workers=2,think=1ms,maxepsa=0.3" \
  -mix "crawl,workers=8,think=0,writes=0.05,burst=4,slow=0.05" \
  -slo "search=750ms:0.95,crawl=5s:0.5" \
  -out "$TMP/report.json" \
  -assert "search.p99<=750ms" \
  -assert "search.degraded==0" \
  -assert "search.rejected==0" \
  -assert "search.transport_errors==0" \
  -assert "search.availability>=0.95" \
  -assert "search.requests>=200" \
  -assert "crawl.requests>=200" &
LG=$!
sleep 3
echo "   kill -9 worker replica $VICTIM"
kill -9 "$VICTIM"
wait "$LG"
cat "$TMP/report.json"

echo "== per-tenant SLO plane on /metrics"
METRICS="$(curl -sf "http://127.0.0.1:$SRV/metrics")"
echo "$METRICS" | grep -Eq 'probesim_tenant_admitted_total\{tenant="search",class="latency-strict"\} [1-9]' || {
  echo "/metrics missing the strict tenant's admission counter" >&2
  exit 1
}
echo "$METRICS" | grep -q 'probesim_slo_error_budget_burn_ratio{tenant="search"}' || {
  echo "/metrics missing the per-tenant SLO burn gauge" >&2
  exit 1
}
echo "$METRICS" | grep -q 'probesim_build_info{binary="probesim-server"' || {
  echo "server /metrics missing probesim_build_info" >&2
  exit 1
}

echo "== load smoke PASSED"
