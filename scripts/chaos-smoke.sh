#!/usr/bin/env bash
# Chaos smoke: a 2-group x 2-replica worker fleet keeps answering —
# byte-identically to an uninterrupted single-process reference — while
# one replica per group is kill -9'd, restarted from its data dir, and
# replayed back in; then the OTHER replica of each group is killed so
# every answer must come from the replicas that just caught up.
#
# Topology (all on localhost):
#   group 0: shardd -index 0 (replicas A0, A1)   shards 0,2,4,...
#   group 1: shardd -index 1 (replicas B0, B1)   shards 1,3,5,...
#   probesim-server -workers "A0,A1;B0,B1"       (routing tier)
#   probesim-server -shards ...                  (single-process reference)
set -euo pipefail
cd "$(dirname "$0")/.."

A0=19401 A1=19402 B0=19403 B1=19404 ROUTED=19405 SINGLE=19406 HEALTH=19407
TMP="$(mktemp -d)"
declare -A PID
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

wait_tcp() { # host port
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/$1/$2") 2>/dev/null; then exec 3>&-; return 0; fi
    sleep 0.1
  done
  echo "timed out waiting for $1:$2" >&2
  return 1
}

start_worker() { # name port index extra...
  local name=$1 port=$2 index=$3; shift 3
  "$TMP/bin/probesim-shardd" -graph "$TMP/g.txt" -shards 16 -index "$index" -group 2 \
    -addr "127.0.0.1:$port" -data-dir "$TMP/data-$name" -fsync always "$@" &
  PID[$name]=$!
  PIDS+=($!)
  wait_tcp 127.0.0.1 "$port"
}

echo "== building"
go build -o "$TMP/bin/" ./cmd/gengraph ./cmd/probesim-shardd ./cmd/probesim-server

echo "== generating graph"
"$TMP/bin/gengraph" -type pa -n 2000 -deg 6 -seed 4 -o "$TMP/g.txt"

echo "== starting 2x2 worker fleet"
start_worker a0 "$A0" 0 -health-addr "127.0.0.1:$HEALTH"
start_worker a1 "$A1" 0
start_worker b0 "$B0" 1
start_worker b1 "$B1" 1

echo "== starting servers"
"$TMP/bin/probesim-server" \
  -workers "127.0.0.1:$A0,127.0.0.1:$A1;127.0.0.1:$B0,127.0.0.1:$B1" \
  -addr "127.0.0.1:$ROUTED" -epsa 0.3 -health-interval 250ms -hedge-max 50ms &
PIDS+=($!)
"$TMP/bin/probesim-server" -graph "$TMP/g.txt" -shards 16 -addr "127.0.0.1:$SINGLE" -epsa 0.3 &
PIDS+=($!)
wait_tcp 127.0.0.1 "$ROUTED"
wait_tcp 127.0.0.1 "$SINGLE"
for port in "$ROUTED" "$SINGLE"; do
  for _ in $(seq 1 50); do
    curl -sf "http://127.0.0.1:$port/stats" >/dev/null && break
    sleep 0.1
  done
done

check() { # path  (strict: one request, no client retry)
  curl -sf "http://127.0.0.1:$ROUTED$1" >"$TMP/routed.json"
  curl -sf "http://127.0.0.1:$SINGLE$1" >"$TMP/single.json"
  if ! diff -u "$TMP/single.json" "$TMP/routed.json"; then
    echo "MISMATCH on $1" >&2
    exit 1
  fi
  echo "   match: $1"
}

check_retry() { # path  (one in-flight retry allowed right after a kill)
  if ! curl -sf "http://127.0.0.1:$ROUTED$1" >/dev/null 2>&1; then
    echo "   (retrying $1 once after kill)"
    sleep 1
  fi
  check "$1"
}

write_both() { # u v
  curl -sf -X POST "http://127.0.0.1:$ROUTED/edges?u=$1&v=$2" >/dev/null
  curl -sf -X POST "http://127.0.0.1:$SINGLE/edges?u=$1&v=$2" >/dev/null
}

wait_all_current() { # n
  for _ in $(seq 1 200); do
    cur="$(curl -sf "http://127.0.0.1:$ROUTED/stats" | grep -o '"current":true' | wc -l)"
    [ "$cur" -eq "$1" ] && return 0
    sleep 0.2
  done
  echo "fleet never returned to $1 current replicas" >&2
  curl -sf "http://127.0.0.1:$ROUTED/stats" >&2 || true
  return 1
}

echo "== probes"
curl -sf "http://127.0.0.1:$HEALTH/healthz" | grep -q ok
curl -sf "http://127.0.0.1:$HEALTH/readyz" | grep -q ready
curl -sf "http://127.0.0.1:$ROUTED/readyz" | grep -q ready

echo "== baseline (all replicas up)"
check "/topk?u=7&k=10"
check "/single-source?u=42"
check "/pair?u=7&v=9"

echo "== kill -9 one replica per group (a1, b1)"
kill -9 "${PID[a1]}" "${PID[b1]}"
check_retry "/topk?u=7&k=10"
check "/single-source?u=42"
write_both 3 1998
check "/topk?u=3&k=10"
write_both 11 1500
check "/topk?u=11&k=10"

echo "== restart killed replicas from their data dirs"
start_worker a1 "$A1" 0
start_worker b1 "$B1" 1
wait_all_current 4
echo "   all 4 replicas current again"

echo "== kill -9 the surviving originals (a0, b0): answers must come from the caught-up replicas"
kill -9 "${PID[a0]}" "${PID[b0]}"
check_retry "/topk?u=7&k=10"
check "/topk?u=3&k=10"
check "/topk?u=11&k=10"
check "/single-source?u=42"
write_both 5 1234
check "/topk?u=5&k=10"

echo "== failover / catch-up observability"
METRICS="$(curl -sf "http://127.0.0.1:$ROUTED/metrics")"
echo "$METRICS" | grep -q 'probesim_router_worker_current{worker="127.0.0.1:' || {
  echo "missing per-replica currency gauge" >&2; exit 1
}
failovers="$(echo "$METRICS" | awk '/^probesim_router_failovers_total/ {print $2}')"
catchup="$(echo "$METRICS" | awk '/^probesim_router_catchup_batches_total/ {print $2}')"
[ "${failovers:-0}" -gt 0 ] || { echo "no failovers recorded ($failovers)" >&2; exit 1; }
[ "${catchup:-0}" -gt 0 ] || { echo "no ring catch-up recorded ($catchup)" >&2; exit 1; }
echo "   failovers=$failovers catchup_batches=$catchup"

echo "== chaos smoke PASSED"
