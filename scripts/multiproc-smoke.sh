#!/usr/bin/env bash
# Multi-process smoke: two probesim-shardd workers + a routing
# probesim-server answer exactly what a single-process server answers.
#
# Starts (on localhost):
#   - probesim-shardd -index 0 -group 2   (shards 0,2,4,...)
#   - probesim-shardd -index 1 -group 2   (shards 1,3,5,...)
#   - probesim-server -workers ...        (routing tier, no local graph)
#   - probesim-server -shards ...         (single-process reference)
# then diffs /topk and /single-source responses byte for byte, writes an
# edge through both write planes, and diffs again. A second, larger
# fleet runs the same diff between full-copy and -shard-local workers
# and asserts the shard-local workers' resident memory actually shrank.
set -euo pipefail
cd "$(dirname "$0")/.."

W0=19301 W1=19302 ROUTED=19303 SINGLE=19304
BF0=19305 BF1=19306 BS0=19307 BS1=19308 RFULL=19309 RSCOPED=19310
TMP="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

wait_tcp() { # host port
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/$1/$2") 2>/dev/null; then exec 3>&-; return 0; fi
    sleep 0.1
  done
  echo "timed out waiting for $1:$2" >&2
  return 1
}

echo "== building"
go build -o "$TMP/bin/" ./cmd/gengraph ./cmd/probesim-shardd ./cmd/probesim-server

echo "== generating graph"
"$TMP/bin/gengraph" -type pa -n 2000 -deg 6 -seed 4 -o "$TMP/g.txt"

echo "== starting workers"
"$TMP/bin/probesim-shardd" -graph "$TMP/g.txt" -shards 16 -index 0 -group 2 -addr "127.0.0.1:$W0" &
PIDS+=($!)
"$TMP/bin/probesim-shardd" -graph "$TMP/g.txt" -shards 16 -index 1 -group 2 -addr "127.0.0.1:$W1" &
PIDS+=($!)
wait_tcp 127.0.0.1 "$W0"
wait_tcp 127.0.0.1 "$W1"

echo "== starting servers"
# Semicolon = two single-replica shard groups (comma would mean two
# replicas of ONE group under the replicated -workers grammar).
"$TMP/bin/probesim-server" -workers "127.0.0.1:$W0;127.0.0.1:$W1" -addr "127.0.0.1:$ROUTED" -epsa 0.3 &
PIDS+=($!)
"$TMP/bin/probesim-server" -graph "$TMP/g.txt" -shards 16 -addr "127.0.0.1:$SINGLE" -epsa 0.3 &
PIDS+=($!)
wait_tcp 127.0.0.1 "$ROUTED"
wait_tcp 127.0.0.1 "$SINGLE"
# The HTTP listener accepts before handlers warm; confirm /stats serves.
for port in "$ROUTED" "$SINGLE"; do
  for _ in $(seq 1 50); do
    curl -sf "http://127.0.0.1:$port/stats" >/dev/null && break
    sleep 0.1
  done
done

check() { # portA portB path
  curl -sf "http://127.0.0.1:$1$3" >"$TMP/a.json"
  curl -sf "http://127.0.0.1:$2$3" >"$TMP/b.json"
  if ! diff -u "$TMP/a.json" "$TMP/b.json"; then
    echo "MISMATCH on $3 (:$1 vs :$2)" >&2
    exit 1
  fi
  echo "   match: $3"
}

echo "== comparing query answers (routed vs single-process)"
check "$SINGLE" "$ROUTED" "/topk?u=7&k=10"
check "$SINGLE" "$ROUTED" "/topk?u=1999&k=5"
check "$SINGLE" "$ROUTED" "/single-source?u=42"
check "$SINGLE" "$ROUTED" "/pair?u=7&v=9"

echo "== writing an edge through both write planes"
curl -sf -X POST "http://127.0.0.1:$ROUTED/edges?u=3&v=1998" >/dev/null
curl -sf -X POST "http://127.0.0.1:$SINGLE/edges?u=3&v=1998" >/dev/null
check "$SINGLE" "$ROUTED" "/topk?u=3&k=10"

echo "== end-to-end query trace"
# ?trace=1 must come back with the trace id on the response header AND
# inlined spans that include at least one worker-side span grafted from
# a shardd reply — proof the trace context crossed the RPC wire. A warm
# view answers entirely router-side (zero worker read RPCs), so write
# an edge first: the traced query then lands on a cold generation and
# must delegate to the workers (batched shard fetches and/or walks).
curl -sf -X POST "http://127.0.0.1:$ROUTED/edges?u=5&v=1997" >/dev/null
curl -sf -X POST "http://127.0.0.1:$SINGLE/edges?u=5&v=1997" >/dev/null
TRACE_HDRS="$TMP/trace-headers"
TRACE="$(curl -sf -D "$TRACE_HDRS" "http://127.0.0.1:$ROUTED/topk?u=11&k=5&trace=1")"
HDR_ID="$(tr -d '\r' <"$TRACE_HDRS" | awk -F': ' 'tolower($1)=="x-probesim-trace-id"{print $2}')"
if [ -z "$HDR_ID" ]; then
  echo "traced query missing X-ProbeSim-Trace-Id response header" >&2
  exit 1
fi
echo "$TRACE" | grep -q "\"traceId\":\"$HDR_ID\"" || {
  echo "traced response body id does not match header id $HDR_ID" >&2
  exit 1
}
echo "$TRACE" | grep -Eq '"name":"worker\.(resolve_shards|resolve_shard|walk_batch|walk_segment)"' || {
  echo "traced response has no worker-side span (resolve/walk)" >&2
  exit 1
}
echo "   trace $HDR_ID stitched across router and workers"

echo "== router observability"
# Capture, THEN grep: `curl | grep -q` under pipefail dies of SIGPIPE
# when grep quits at the first match before curl finishes writing.
METRICS="$(curl -sf "http://127.0.0.1:$ROUTED/metrics")"
echo "$METRICS" | grep -q 'probesim_router_worker_up{worker="127.0.0.1:' || {
  echo "routed /metrics missing per-worker gauges" >&2
  exit 1
}
echo "$METRICS" | grep -Eq 'probesim_router_shard_batches_total [1-9]' || {
  echo "routed /metrics shows no batched shard fetches" >&2
  exit 1
}
echo "$METRICS" | grep -Eq 'probesim_router_walk_local_segments_total [1-9]' || {
  echo "routed /metrics shows no router-side walk stepping" >&2
  exit 1
}
STATS="$(curl -sf "http://127.0.0.1:$ROUTED/stats")"
echo "$STATS" | grep -q 'routerWorkers' || {
  echo "routed /stats missing routerWorkers" >&2
  exit 1
}

echo "== shard-local fleet (larger graph)"
"$TMP/bin/gengraph" -type pa -n 240000 -deg 10 -seed 9 -o "$TMP/big.txt"
"$TMP/bin/probesim-shardd" -graph "$TMP/big.txt" -shards 16 -index 0 -group 2 -addr "127.0.0.1:$BF0" &
FULL_PID=$!; PIDS+=($!)
"$TMP/bin/probesim-shardd" -graph "$TMP/big.txt" -shards 16 -index 1 -group 2 -addr "127.0.0.1:$BF1" &
PIDS+=($!)
"$TMP/bin/probesim-shardd" -graph "$TMP/big.txt" -shards 16 -index 0 -group 2 -shard-local -addr "127.0.0.1:$BS0" &
SCOPED_PID=$!; PIDS+=($!)
"$TMP/bin/probesim-shardd" -graph "$TMP/big.txt" -shards 16 -index 1 -group 2 -shard-local -addr "127.0.0.1:$BS1" &
PIDS+=($!)
for port in "$BF0" "$BF1" "$BS0" "$BS1"; do wait_tcp 127.0.0.1 "$port"; done

echo "== shard-local worker memory"
# A -shard-local worker holds adjacency only for its owned stride; its
# resident set at boot must sit well below a full-copy worker's on the
# same graph. (Measured before any query: serving allocations — walk
# buffers, span materialization — are per-query and identical for both
# worker kinds, and would drown the boot-time footprint. The runtime
# floor keeps the ratio from reaching a clean 1/2, so assert <= 85%.)
rss() { awk '/VmRSS/{print $2}' "/proc/$1/status"; }
FULL_RSS="$(rss "$FULL_PID")"
SCOPED_RSS="$(rss "$SCOPED_PID")"
echo "   full-copy worker VmRSS=${FULL_RSS}kB shard-local worker VmRSS=${SCOPED_RSS}kB"
if [ $((SCOPED_RSS * 100)) -ge $((FULL_RSS * 85)) ]; then
  echo "shard-local worker RSS did not shrink (${SCOPED_RSS}kB vs ${FULL_RSS}kB full)" >&2
  exit 1
fi

"$TMP/bin/probesim-server" -workers "127.0.0.1:$BF0;127.0.0.1:$BF1" -addr "127.0.0.1:$RFULL" -epsa 0.3 &
PIDS+=($!)
"$TMP/bin/probesim-server" -workers "127.0.0.1:$BS0;127.0.0.1:$BS1" -addr "127.0.0.1:$RSCOPED" -epsa 0.3 &
PIDS+=($!)
wait_tcp 127.0.0.1 "$RFULL"
wait_tcp 127.0.0.1 "$RSCOPED"

echo "== comparing query answers (shard-local vs full-copy workers)"
check "$RFULL" "$RSCOPED" "/topk?u=5&k=10"
check "$RFULL" "$RSCOPED" "/single-source?u=123"
check "$RFULL" "$RSCOPED" "/pair?u=5&v=77"
curl -sf -X POST "http://127.0.0.1:$RFULL/edges?u=9&v=239999" >/dev/null
curl -sf -X POST "http://127.0.0.1:$RSCOPED/edges?u=9&v=239999" >/dev/null
check "$RFULL" "$RSCOPED" "/topk?u=9&k=10"

echo "== multi-process smoke PASSED"
