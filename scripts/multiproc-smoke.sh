#!/usr/bin/env bash
# Multi-process smoke: two probesim-shardd workers + a routing
# probesim-server answer exactly what a single-process server answers.
#
# Starts (on localhost):
#   - probesim-shardd -index 0 -group 2   (shards 0,2,4,...)
#   - probesim-shardd -index 1 -group 2   (shards 1,3,5,...)
#   - probesim-server -workers ...        (routing tier, no local graph)
#   - probesim-server -shards ...         (single-process reference)
# then diffs /topk and /single-source responses byte for byte, writes an
# edge through both write planes, and diffs again.
set -euo pipefail
cd "$(dirname "$0")/.."

W0=19301 W1=19302 ROUTED=19303 SINGLE=19304
TMP="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

wait_tcp() { # host port
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/$1/$2") 2>/dev/null; then exec 3>&-; return 0; fi
    sleep 0.1
  done
  echo "timed out waiting for $1:$2" >&2
  return 1
}

echo "== building"
go build -o "$TMP/bin/" ./cmd/gengraph ./cmd/probesim-shardd ./cmd/probesim-server

echo "== generating graph"
"$TMP/bin/gengraph" -type pa -n 2000 -deg 6 -seed 4 -o "$TMP/g.txt"

echo "== starting workers"
"$TMP/bin/probesim-shardd" -graph "$TMP/g.txt" -shards 16 -index 0 -group 2 -addr "127.0.0.1:$W0" &
PIDS+=($!)
"$TMP/bin/probesim-shardd" -graph "$TMP/g.txt" -shards 16 -index 1 -group 2 -addr "127.0.0.1:$W1" &
PIDS+=($!)
wait_tcp 127.0.0.1 "$W0"
wait_tcp 127.0.0.1 "$W1"

echo "== starting servers"
# Semicolon = two single-replica shard groups (comma would mean two
# replicas of ONE group under the replicated -workers grammar).
"$TMP/bin/probesim-server" -workers "127.0.0.1:$W0;127.0.0.1:$W1" -addr "127.0.0.1:$ROUTED" -epsa 0.3 &
PIDS+=($!)
"$TMP/bin/probesim-server" -graph "$TMP/g.txt" -shards 16 -addr "127.0.0.1:$SINGLE" -epsa 0.3 &
PIDS+=($!)
wait_tcp 127.0.0.1 "$ROUTED"
wait_tcp 127.0.0.1 "$SINGLE"
# The HTTP listener accepts before handlers warm; confirm /stats serves.
for port in "$ROUTED" "$SINGLE"; do
  for _ in $(seq 1 50); do
    curl -sf "http://127.0.0.1:$port/stats" >/dev/null && break
    sleep 0.1
  done
done

check() { # path
  curl -sf "http://127.0.0.1:$ROUTED$1" >"$TMP/routed.json"
  curl -sf "http://127.0.0.1:$SINGLE$1" >"$TMP/single.json"
  if ! diff -u "$TMP/single.json" "$TMP/routed.json"; then
    echo "MISMATCH on $1" >&2
    exit 1
  fi
  echo "   match: $1"
}

echo "== comparing query answers (routed vs single-process)"
check "/topk?u=7&k=10"
check "/topk?u=1999&k=5"
check "/single-source?u=42"
check "/pair?u=7&v=9"

echo "== writing an edge through both write planes"
curl -sf -X POST "http://127.0.0.1:$ROUTED/edges?u=3&v=1998" >/dev/null
curl -sf -X POST "http://127.0.0.1:$SINGLE/edges?u=3&v=1998" >/dev/null
check "/topk?u=3&k=10"

echo "== end-to-end query trace"
# ?trace=1 must come back with the trace id on the response header AND
# inlined spans that include at least one worker-side span grafted from
# a shardd reply — proof the trace context crossed the RPC wire. A fresh
# source node keeps the answer cache from short-circuiting the fleet.
TRACE_HDRS="$TMP/trace-headers"
TRACE="$(curl -sf -D "$TRACE_HDRS" "http://127.0.0.1:$ROUTED/topk?u=11&k=5&trace=1")"
HDR_ID="$(tr -d '\r' <"$TRACE_HDRS" | awk -F': ' 'tolower($1)=="x-probesim-trace-id"{print $2}')"
if [ -z "$HDR_ID" ]; then
  echo "traced query missing X-ProbeSim-Trace-Id response header" >&2
  exit 1
fi
echo "$TRACE" | grep -q "\"traceId\":\"$HDR_ID\"" || {
  echo "traced response body id does not match header id $HDR_ID" >&2
  exit 1
}
echo "$TRACE" | grep -q '"name":"worker.walk_segment"' || {
  echo "traced response has no worker-side walk_segment span" >&2
  exit 1
}
echo "   trace $HDR_ID stitched across router and workers"

echo "== router observability"
# Capture, THEN grep: `curl | grep -q` under pipefail dies of SIGPIPE
# when grep quits at the first match before curl finishes writing.
METRICS="$(curl -sf "http://127.0.0.1:$ROUTED/metrics")"
echo "$METRICS" | grep -q 'probesim_router_worker_up{worker="127.0.0.1:' || {
  echo "routed /metrics missing per-worker gauges" >&2
  exit 1
}
STATS="$(curl -sf "http://127.0.0.1:$ROUTED/stats")"
echo "$STATS" | grep -q 'routerWorkers' || {
  echo "routed /stats missing routerWorkers" >&2
  exit 1
}

echo "== multi-process smoke PASSED"
