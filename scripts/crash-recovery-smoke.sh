#!/usr/bin/env bash
# Crash-recovery smoke: a durable probesim-server killed with SIGKILL
# mid-ingest must come back from its -data-dir with every acknowledged
# batch, answering queries byte-identically to a reference process that
# ingested the same acknowledged stream uninterrupted.
#
#   1. boot a durable server (-data-dir, -fsync=always, small segments
#      so rotation + checkpointing actually run)
#   2. stream edge batches at it, recording each acknowledged body
#   3. kill -9 the server mid-stream
#   4. restart it from the same -data-dir (no -graph: recovery only)
#   5. boot a fresh reference server and replay the acknowledged batches
#   6. byte-diff /single-source and /topk answers across both
set -euo pipefail
cd "$(dirname "$0")/.."

DURABLE=19401 REFERENCE=19402
TMP="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

wait_http() { # port
  for _ in $(seq 1 150); do
    if curl -sf "http://127.0.0.1:$1/stats" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "timed out waiting for port $1" >&2
  return 1
}

echo "== building"
go build -o "$TMP/bin/" ./cmd/gengraph ./cmd/probesim-server

echo "== generating graph"
"$TMP/bin/gengraph" -type pa -n 2000 -deg 5 -seed 11 -o "$TMP/g.txt"

echo "== starting durable server"
"$TMP/bin/probesim-server" -graph "$TMP/g.txt" -shards 8 \
  -data-dir "$TMP/data" -fsync always -checkpoint-every 8 -segment-bytes 4096 \
  -addr "127.0.0.1:$DURABLE" -epsa 0.3 &
SRV=$!
PIDS+=($SRV)
wait_http "$DURABLE"

echo "== ingesting batches until the kill"
mkdir -p "$TMP/acked"
acked=0
for i in $(seq 1 200); do
  body="["
  for j in 0 1 2; do
    u=$(( (i * 37 + j * 911) % 2000 ))
    v=$(( (i * 53 + j * 577 + 1) % 2000 ))
    if [ "$u" -eq "$v" ]; then v=$(( (v + 1) % 2000 )); fi
    [ "$j" -gt 0 ] && body+=","
    body+="{\"op\":\"add\",\"u\":$u,\"v\":$v}"
  done
  body+="]"
  # Only batches the server ACKNOWLEDGED count: a request in flight at
  # the kill may or may not survive, and either outcome is correct.
  if curl -sf -X POST --data "$body" "http://127.0.0.1:$DURABLE/edges/batch" >/dev/null 2>&1; then
    acked=$((acked + 1))
    printf '%s' "$body" > "$TMP/acked/$acked.json"
  else
    break
  fi
  if [ "$i" -eq 120 ]; then
    echo "== kill -9 mid-stream (after $acked acknowledged batches)"
    kill -9 "$SRV" 2>/dev/null || true
    break
  fi
done
wait "$SRV" 2>/dev/null || true
if [ "$acked" -lt 50 ]; then
  echo "only $acked batches acknowledged before the kill; ingest too slow?" >&2
  exit 1
fi

echo "== restarting from the data dir alone"
"$TMP/bin/probesim-server" -shards 8 -data-dir "$TMP/data" \
  -addr "127.0.0.1:$DURABLE" -epsa 0.3 &
PIDS+=($!)
wait_http "$DURABLE"

echo "== booting uninterrupted reference and replaying the acknowledged stream"
"$TMP/bin/probesim-server" -graph "$TMP/g.txt" -shards 8 \
  -addr "127.0.0.1:$REFERENCE" -epsa 0.3 &
PIDS+=($!)
wait_http "$REFERENCE"
for f in $(ls "$TMP/acked" | sort -n); do
  curl -sf -X POST --data @"$TMP/acked/$f" "http://127.0.0.1:$REFERENCE/edges/batch" >/dev/null
done

echo "== comparing edge counts"
d_edges=$(curl -sf "http://127.0.0.1:$DURABLE/stats" | sed 's/.*"edges":\([0-9]*\).*/\1/')
r_edges=$(curl -sf "http://127.0.0.1:$REFERENCE/stats" | sed 's/.*"edges":\([0-9]*\).*/\1/')
if [ "$d_edges" != "$r_edges" ]; then
  echo "edge counts diverge: recovered=$d_edges reference=$r_edges" >&2
  exit 1
fi

echo "== diffing query answers byte for byte"
for u in 0 17 123 999 1777; do
  for route in "single-source?u=$u" "topk?u=$u&k=10"; do
    curl -sf "http://127.0.0.1:$DURABLE/$route"   > "$TMP/d.json"
    curl -sf "http://127.0.0.1:$REFERENCE/$route" > "$TMP/r.json"
    if ! cmp -s "$TMP/d.json" "$TMP/r.json"; then
      echo "answers diverge on /$route" >&2
      diff "$TMP/d.json" "$TMP/r.json" >&2 || true
      exit 1
    fi
  done
done

echo "== checkpoint/log hygiene"
ls -la "$TMP/data" >&2
if ! ls "$TMP/data"/checkpoint-*.ck >/dev/null 2>&1; then
  echo "no checkpoint file in the data dir" >&2
  exit 1
fi

echo "crash-recovery smoke: OK ($acked acknowledged batches, $d_edges edges, answers bit-identical)"
