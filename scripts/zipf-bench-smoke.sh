#!/usr/bin/env bash
# Zipf bench smoke: runs the hot-source tier's acceptance benchmark
# (internal/hotidx TestZipfBenchSmoke) — a Zipf(s=1.1) source mix over a
# 5000-node power-law graph served through the tiered path — and writes
# the JSON report (hot vs live p50/p99, refresh-lag distribution under a
# write storm) to the path given as $1 (default: a temp file, printed).
# The test itself fails unless hot p50 is >= 10x faster than live p50;
# the committed reference numbers live in BENCH_PR9.json.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-$(mktemp /tmp/zipf-bench-XXXXXX.json)}"

PROBESIM_BENCH_OUT="$OUT" go test -run TestZipfBenchSmoke -count=1 -v ./internal/hotidx/

echo "== report: $OUT"
cat "$OUT"
