package probesim_test

import (
	"context"
	"fmt"

	"probesim"
)

// A similarity join finds all structurally similar pairs without picking a
// query node first: here nodes 1 and 2 (sharing in-neighbor 0) are the
// only pair above the threshold.
func ExampleThresholdJoin() {
	g, err := probesim.NewGraphFromEdges(4, [][2]probesim.NodeID{
		{0, 1}, {0, 2}, {1, 3}, {2, 3},
	})
	if err != nil {
		panic(err)
	}
	pairs, err := probesim.ThresholdJoin(context.Background(), g, 0.5, probesim.JoinOptions{
		Query: probesim.Options{EpsA: 0.01, Seed: 1},
	})
	if err != nil {
		panic(err)
	}
	for _, p := range pairs {
		fmt.Printf("(%d, %d) s = %.1f\n", p.U, p.V, p.Score)
	}
	// Output:
	// (1, 2) s = 0.6
}

// TopKProgressive answers the same query as TopK but stops as soon as the
// ranking is provably settled, reporting how many walks that took versus
// the static budget.
func ExampleTopKProgressive() {
	g, err := probesim.NewGraphFromEdges(4, [][2]probesim.NodeID{
		{0, 1}, {0, 2}, {1, 3}, {2, 3},
	})
	if err != nil {
		panic(err)
	}
	top, stats, err := probesim.TopKProgressive(context.Background(), g, 1, 1, probesim.Options{EpsA: 0.01, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("most similar to 1: node %d\n", top[0].Node)
	fmt.Printf("early stop: %v, walks <= budget: %v\n",
		stats.Separated, stats.Walks <= stats.BudgetWalks)
	// Output:
	// most similar to 1: node 2
	// early stop: true, walks <= budget: true
}
