package probesim

import (
	"context"

	"probesim/internal/simjoin"
)

// Pair is one unordered node pair from a similarity join, with U < V.
type Pair = simjoin.Pair

// JoinOptions configures ThresholdJoin and TopKJoin. The zero value uses
// the paper-default query options and joins over every node with at least
// one in-neighbor.
type JoinOptions = simjoin.Options

// ThresholdJoin returns every unordered pair with estimated SimRank
// similarity at least theta, sorted by descending score. With probability
// 1 − δ the result contains every pair with s(u,v) >= theta + εa and no
// pair with s(u,v) < theta − εa. The join runs one single-source query per
// candidate source and needs no precomputed join index, so it stays valid
// under graph updates. ctx bounds the whole join (a canceled join returns
// no pairs); opt.Query.Budget additionally bounds each per-source query.
func ThresholdJoin(ctx context.Context, g *Graph, theta float64, opt JoinOptions) ([]Pair, error) {
	return simjoin.ThresholdJoin(ctx, g, theta, opt)
}

// TopKJoin returns the k unordered pairs with the highest estimated
// SimRank similarity, in descending score order.
func TopKJoin(ctx context.Context, g *Graph, k int, opt JoinOptions) ([]Pair, error) {
	return simjoin.TopKJoin(ctx, g, k, opt)
}
