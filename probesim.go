// Package probesim is a from-scratch Go implementation of ProbeSim (Liu,
// Zheng, He, Wei, Xiao, Zheng, Lu: "ProbeSim: Scalable Single-Source and
// Top-k SimRank Computations on Dynamic Graphs", PVLDB 11(1), 2017):
// index-free approximate single-source and top-k SimRank queries with a
// provable absolute-error guarantee.
//
// # Quick start
//
//	g := probesim.NewGraph(4)
//	g.AddEdge(0, 1) // directed edge 0 -> 1
//	g.AddEdge(0, 2)
//	g.AddEdge(1, 3)
//	g.AddEdge(2, 3)
//
//	ctx := context.Background()
//
//	// All similarities to node 1, each within 0.05 of the truth w.p. 99%.
//	scores, err := probesim.SingleSource(ctx, g, 1, probesim.Options{EpsA: 0.05})
//
//	// The 10 most similar nodes to node 1.
//	top, err := probesim.TopK(ctx, g, 1, 10, probesim.Options{})
//
// # Deadlines and budgets
//
// Every query takes a context.Context and honors Options.Budget: pass a
// context with a deadline (or set Budget.Timeout / MaxWalks /
// MaxProbeWork) and the query stops at its next amortized checkpoint,
// returning its partial estimate together with an error that unwraps to
// context.DeadlineExceeded, context.Canceled or ErrBudget. Un-budgeted
// queries on context.Background pay only a nil-check per checkpoint.
//
// # Guarantees
//
// With Options{EpsA: εa, Delta: δ}, every returned similarity satisfies
// |s̃(u,v) − s(u,v)| <= εa simultaneously for all v with probability at
// least 1 − δ (Theorems 1-3 of the paper). Queries run in
// O(n/εa²·log(n/δ)) expected time and keep no state between calls.
//
// # Dynamic graphs
//
// Because there is no index, graph updates are just adjacency updates:
// call (*Graph).AddEdge / RemoveEdge / AddNode between queries and the next
// query reflects the new graph immediately. This is the paper's headline
// advantage over index-based methods (SLING, TSF), whose structures must be
// rebuilt or patched on every update.
//
// # Modes
//
// Options.Mode selects the execution strategy; ModeAuto (the default) is
// the paper's full configuration with pruning (§4.1), batched walk probing
// (§4.2) and the hybrid deterministic/randomized switch (§4.3-4.4). The
// other modes exist for ablation studies and reproduce the paper's
// individual algorithm variants.
//
// # Beyond the paper
//
// ThresholdJoin and TopKJoin answer "find all similar pairs" with the same
// εa guarantee and no join index; TopKProgressive answers top-k queries
// any-time, stopping as soon as the ranking provably settles; NewQuerier
// adds a version-keyed result cache for read-heavy workloads. All three
// keep the zero-maintenance property that motivates the paper.
package probesim

import (
	"context"
	"io"

	"probesim/internal/core"
	"probesim/internal/graph"
)

// Graph is a directed multigraph with dynamic edge updates. See NewGraph,
// LoadEdgeList and ReadBinaryGraph for constructors.
type Graph = graph.Graph

// NodeID identifies a node; nodes are dense integers in [0, NumNodes).
type NodeID = graph.NodeID

// Snapshot is an immutable CSR copy of a Graph: flat adjacency arrays,
// lock-free concurrent reads, bit-identical query results. Build one with
// (*Graph).Snapshot(); both representations satisfy GraphView.
type Snapshot = graph.Snapshot

// GraphView is the minimal read-only adjacency surface queries need,
// satisfied by both *Graph and *Snapshot.
type GraphView = graph.View

// Stats summarizes a graph's degree structure.
type Stats = graph.Stats

// Options configures a query; the zero value uses the paper's defaults
// (c = 0.6, εa = 0.1, δ = 0.01, ModeAuto, all cores, no budget).
type Options = core.Options

// Budget bounds one query's resource consumption: wall clock, √c-walk
// trials, probe edge traversals. The zero value is unbounded. A query
// stopped by its budget returns its partial estimate alongside an error.
type Budget = core.Budget

// ErrBudget is returned (wrapped) when a query exhausts an explicit walk
// or probe-work budget; deadline and cancellation stops unwrap to
// context.DeadlineExceeded and context.Canceled. Test with errors.Is.
var ErrBudget = core.ErrBudget

// Mode selects a ProbeSim execution strategy.
type Mode = core.Mode

// Execution strategies (see the paper sections referenced on each).
const (
	// ModeAuto: pruning + batch + hybrid (the paper's full configuration).
	ModeAuto = core.ModeAuto
	// ModeBasic: Algorithm 1 with deterministic probes, no optimizations.
	ModeBasic = core.ModeBasic
	// ModePruned: ModeBasic plus pruning rules 1 and 2 (§4.1).
	ModePruned = core.ModePruned
	// ModeBatch: ModePruned plus the reverse-reachability walk tree (§4.2).
	ModeBatch = core.ModeBatch
	// ModeRandomized: Algorithm 1 with randomized probes (§4.3).
	ModeRandomized = core.ModeRandomized
	// ModeHybrid: batch tree with the §4.4 deterministic/randomized switch.
	ModeHybrid = core.ModeHybrid
)

// ScoredNode is one entry of a top-k answer.
type ScoredNode = core.ScoredNode

// Plan is the resolved execution plan of a query (trial count, error-budget
// split, walk truncation); useful for logging and capacity planning.
type Plan = core.Plan

// NewGraph returns a graph with n nodes and no edges.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewGraphFromEdges builds a graph with n nodes and the given directed
// edges.
func NewGraphFromEdges(n int, edges [][2]NodeID) (*Graph, error) {
	return graph.FromEdges(n, edges)
}

// LoadEdgeList parses a whitespace-separated edge list ("u v" per line, #
// comments allowed, sparse ids remapped densely). Set undirected to insert
// both directions per line.
func LoadEdgeList(r io.Reader, undirected bool) (*Graph, error) {
	return graph.LoadEdgeList(r, undirected)
}

// ReadBinaryGraph loads a graph written by (*Graph).WriteBinary.
func ReadBinaryGraph(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// SingleSource answers an approximate single-source SimRank query: it
// returns s̃(u, v) for every node v (result[u] = 1), with every entry
// within opt.EpsA of the exact similarity with probability 1 − opt.Delta.
// ctx (plus opt.Budget) bounds the query; a stopped query returns its
// partial estimate together with a non-nil error.
func SingleSource(ctx context.Context, g *Graph, u NodeID, opt Options) ([]float64, error) {
	return core.SingleSource(ctx, g, u, opt)
}

// TopK answers an approximate top-k SimRank query: the k nodes most
// similar to u (excluding u), in descending score order.
func TopK(ctx context.Context, g *Graph, u NodeID, k int, opt Options) ([]ScoredNode, error) {
	return core.TopK(ctx, g, u, k, opt)
}

// ProgressiveStats reports how a TopKProgressive query stopped: walks
// used versus the static budget, rounds, the final confidence radius, and
// whether it stopped on rank separation.
type ProgressiveStats = core.ProgressiveStats

// TopKProgressive answers the same approximate top-k query as TopK but
// adaptively: walks run in doubling rounds and the query stops as soon as
// the k-th and (k+1)-th candidates separate by twice the confidence
// radius, often long before the static εa-driven walk budget. The
// guarantee of Definition 2 is preserved; Stats reports the saving.
func TopKProgressive(ctx context.Context, g *Graph, u NodeID, k int, opt Options) ([]ScoredNode, ProgressiveStats, error) {
	return core.TopKProgressive(ctx, g, u, k, opt)
}

// PlanFor reports the execution plan a query with these options would use
// on a graph with n nodes.
func PlanFor(opt Options, n int) (Plan, error) { return core.PlanFor(opt, n) }

// Querier memoizes single-source results keyed by the graph's version
// counter: repeated queries on an unchanged graph are free, and any
// mutation invalidates the cache automatically. This implements the
// "lightweight indexing" direction sketched in the paper's conclusion
// while keeping ProbeSim's zero-maintenance property.
type Querier = core.Querier

// NewQuerier wraps g with a result cache holding up to capacity
// single-source vectors (LRU eviction).
func NewQuerier(g *Graph, opt Options, capacity int) *Querier {
	return core.NewQuerier(g, opt, capacity)
}

// Executor is the serving-path query runner: it publishes immutable CSR
// snapshots of a dynamic graph behind an atomic pointer and answers
// queries lock-free against them with pooled per-query scratch, so
// steady-state queries allocate almost nothing beyond their result. Call
// Refresh after mutating the graph to publish the changes.
type Executor = core.Executor

// NewExecutor builds an Executor over g with the given default query
// options, publishing an initial snapshot.
func NewExecutor(g *Graph, opt Options) *Executor {
	return core.NewExecutor(g, opt)
}

// NewQuerierOn wraps an Executor with a result cache (LRU, single-flight
// de-duplication of concurrent misses). Queries never touch the mutable
// graph; mutators must call Executor.Refresh to publish changes.
func NewQuerierOn(ex *Executor, capacity int) *Querier {
	return core.NewQuerierOn(ex, capacity)
}
