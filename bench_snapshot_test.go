package probesim_test

// Benchmarks for the CSR snapshot + pooled executor serving path (PR 1):
// the same single-source query answered by
//
//   - Slices:   core.SingleSource on the mutable slice-of-slice *Graph,
//     allocating per-worker scratch per query — the seed's code path; and
//   - Snapshot: core.Executor on the immutable CSR snapshot with pooled
//     scratch — the serving path.
//
// Results are bit-identical (asserted once per graph before timing); the
// pair measures pure representation + allocation effects. Run with
//
//	go test -run '^$' -bench 'BenchmarkSingleSource(Slices|Snapshot)' -benchmem
//
// Committed results live in BENCH_PR1.json.

import (
	"context"
	"testing"
	"time"

	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
)

// snapshotBenchSize keeps the two bench graphs big enough that adjacency
// no longer fits in L2 (the serving regime the CSR layout targets) while
// a query stays in the tens of milliseconds.
const snapshotBenchSize = 100_000

func snapshotBenchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	if g, ok := graphCache.Load("snapshot-" + name); ok {
		return g.(*graph.Graph)
	}
	var g *graph.Graph
	switch name {
	case "er":
		g = gen.ErdosRenyi(snapshotBenchSize, 8*snapshotBenchSize, 1)
	case "pa":
		g = gen.PreferentialAttachment(snapshotBenchSize, 8, 1)
	default:
		b.Fatalf("unknown snapshot bench graph %q", name)
	}
	graphCache.Store("snapshot-"+name, g)
	return g
}

// snapshotBenchOpts pins every source of nondeterminism so the two
// variants run the exact same trials: per-walk mode (the probe-dominated
// path both representations serve), fixed walk budget, fixed seed.
func snapshotBenchOpts() core.Options {
	return core.Options{EpsA: 0.1, Seed: 1, Mode: core.ModePruned, NumWalks: 1000}
}

func assertVariantsAgree(b *testing.B, g *graph.Graph, ex *core.Executor, u graph.NodeID) {
	b.Helper()
	want, err := core.SingleSource(context.Background(), g, u, snapshotBenchOpts())
	if err != nil {
		b.Fatal(err)
	}
	got, err := ex.SingleSource(context.Background(), u)
	if err != nil {
		b.Fatal(err)
	}
	for v := range want {
		if want[v] != got[v] {
			b.Fatalf("snapshot result diverges from slices at node %d: %v != %v", v, got[v], want[v])
		}
	}
}

func BenchmarkSingleSourceSlices(b *testing.B) {
	for _, name := range []string{"er", "pa"} {
		b.Run(name, func(b *testing.B) {
			g := snapshotBenchGraph(b, name)
			u := benchQuery(b, g)
			opt := snapshotBenchOpts()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.SingleSource(context.Background(), g, u, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSingleSourceSnapshot(b *testing.B) {
	for _, name := range []string{"er", "pa"} {
		b.Run(name, func(b *testing.B) {
			g := snapshotBenchGraph(b, name)
			u := benchQuery(b, g)
			ex := core.NewExecutor(g, snapshotBenchOpts())
			assertVariantsAgree(b, g, ex, u)
			// Steady-state serving: scratch comes from the pool, the result
			// is written into a reused buffer.
			buf := make([]float64, g.NumNodes())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := ex.SingleSourceInto(context.Background(), u, buf)
				if err != nil {
					b.Fatal(err)
				}
				buf = out
			}
		})
	}
}

// BenchmarkSingleSourceBudgeted is BenchmarkSingleSourceSnapshot with an
// ARMED budget meter: a far-off deadline plus generous walk/work caps, so
// every checkpoint, walk charge and per-level work charge executes but
// never trips. The delta against BenchmarkSingleSourceSnapshot (whose
// un-budgeted queries run with a nil meter) prices the deadline seam
// itself; BENCH_PR3.json records both next to the PR2 numbers.
func BenchmarkSingleSourceBudgeted(b *testing.B) {
	for _, name := range []string{"er", "pa"} {
		b.Run(name, func(b *testing.B) {
			g := snapshotBenchGraph(b, name)
			u := benchQuery(b, g)
			opt := snapshotBenchOpts()
			opt.Budget = core.Budget{
				Timeout:      time.Hour,
				MaxWalks:     1 << 40,
				MaxProbeWork: 1 << 60,
			}
			ex := core.NewExecutor(g, opt)
			buf := make([]float64, g.NumNodes())
			// Warm the scratch pool exactly like the Snapshot variant does
			// via its agreement check, so both loops time steady state.
			if _, err := ex.SingleSourceInto(context.Background(), u, buf); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := ex.SingleSourceInto(context.Background(), u, buf)
				if err != nil {
					b.Fatal(err)
				}
				buf = out
			}
		})
	}
}

// BenchmarkTopKBudget prices the deadline seam on the top-k path: the
// same top-50 query through the pooled executor with a nil meter
// (unbudgeted) and with an armed-but-never-tripping meter (budgeted).
func BenchmarkTopKBudget(b *testing.B) {
	g := snapshotBenchGraph(b, "pa")
	u := benchQuery(b, g)
	run := func(b *testing.B, opt core.Options) {
		ex := core.NewExecutor(g, opt)
		if _, err := ex.TopK(context.Background(), u, 50); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.TopK(context.Background(), u, 50); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("unbudgeted", func(b *testing.B) { run(b, snapshotBenchOpts()) })
	b.Run("budgeted", func(b *testing.B) {
		opt := snapshotBenchOpts()
		opt.Budget = core.Budget{Timeout: time.Hour, MaxWalks: 1 << 40, MaxProbeWork: 1 << 60}
		run(b, opt)
	})
}

// BenchmarkSnapshotBuild prices publication: the O(n+m) cost a mutation
// batch pays once, amortized over every lock-free query that follows.
func BenchmarkSnapshotBuild(b *testing.B) {
	for _, name := range []string{"er", "pa"} {
		b.Run(name, func(b *testing.B) {
			g := snapshotBenchGraph(b, name)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Snapshot()
			}
		})
	}
}
