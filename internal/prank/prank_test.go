package prank

import (
	"math"
	"testing"
	"testing/quick"

	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/power"
	"probesim/internal/xrand"
)

func TestLambdaOneIsSimRank(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		g := gen.ErdosRenyi(40, 180, seed)
		truth, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-12})
		if err != nil {
			t.Fatalf("power.SimRank: %v", err)
		}
		m, err := Compute(g, Options{C: 0.6, Tolerance: 1e-12}.WithLambda(1))
		if err != nil {
			t.Fatalf("Compute: %v", err)
		}
		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				d := math.Abs(m.At(graph.NodeID(u), graph.NodeID(v)) - truth.At(graph.NodeID(u), graph.NodeID(v)))
				if d > 1e-9 {
					t.Fatalf("seed %d: P-Rank(λ=1) differs from SimRank by %v at (%d,%d)", seed, d, u, v)
				}
			}
		}
	}
}

func TestLambdaZeroCoCitation(t *testing.T) {
	// u -> w, v -> w and nothing else: out-link similarity in one step is
	// s(u,v) = c·s(w,w) = c; u and v have no in-neighbors so λ=0 sees the
	// full score.
	g := graph.New(3)
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	m, err := Compute(g, Options{C: 0.6, Tolerance: 1e-12}.WithLambda(0))
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if d := math.Abs(m.At(0, 1) - 0.6); d > 1e-9 {
		t.Fatalf("s(0,1) = %v, want c = 0.6", m.At(0, 1))
	}
	// Under pure in-link SimRank the same pair scores 0.
	if s, _ := Compute(g, Options{C: 0.6, Tolerance: 1e-12}.WithLambda(1)); s.At(0, 1) != 0 {
		t.Fatalf("SimRank s(0,1) = %v, want 0 (no in-neighbors)", s.At(0, 1))
	}
}

func TestMatrixProperties(t *testing.T) {
	check := func(seed uint64) bool {
		g := gen.ErdosRenyi(20, 90, seed%63+1)
		lambda := float64(seed%5) / 4
		m, err := Compute(g, Options{C: 0.6, Tolerance: 1e-10}.WithLambda(lambda))
		if err != nil {
			return false
		}
		n := g.NumNodes()
		for u := 0; u < n; u++ {
			if m.At(graph.NodeID(u), graph.NodeID(u)) != 1 {
				return false
			}
			for v := 0; v < n; v++ {
				s := m.At(graph.NodeID(u), graph.NodeID(v))
				if s < 0 || s > 1 {
					return false
				}
				// Symmetry.
				if math.Abs(s-m.At(graph.NodeID(v), graph.NodeID(u))) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestLambdaInterpolates(t *testing.T) {
	// On a graph with both in- and out-structure, the balanced score must
	// sit between the two extremes for at least the pairs where they
	// differ... more precisely it is exactly a fixed point of the blended
	// recurrence, so check it is not equal to either extreme everywhere.
	g := gen.PreferentialAttachment(30, 3, 7)
	in1, err := Compute(g, Options{Tolerance: 1e-10}.WithLambda(1))
	if err != nil {
		t.Fatal(err)
	}
	out0, err := Compute(g, Options{Tolerance: 1e-10}.WithLambda(0))
	if err != nil {
		t.Fatal(err)
	}
	mid, err := Compute(g, Options{Tolerance: 1e-10}.WithLambda(0.5))
	if err != nil {
		t.Fatal(err)
	}
	diffIn, diffOut := false, false
	for u := 0; u < g.NumNodes() && (!diffIn || !diffOut); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			if math.Abs(mid.At(graph.NodeID(u), graph.NodeID(v))-in1.At(graph.NodeID(u), graph.NodeID(v))) > 1e-6 {
				diffIn = true
			}
			if math.Abs(mid.At(graph.NodeID(u), graph.NodeID(v))-out0.At(graph.NodeID(u), graph.NodeID(v))) > 1e-6 {
				diffOut = true
			}
		}
	}
	if !diffIn || !diffOut {
		t.Fatal("λ=0.5 collapsed onto an extreme; the blend is not effective")
	}
}

func TestValidation(t *testing.T) {
	g := gen.ErdosRenyi(5, 10, 1)
	if _, err := Compute(g, Options{C: 1.5}); err == nil {
		t.Error("c > 1 accepted")
	}
	if _, err := Compute(g, Options{}.WithLambda(1.2)); err == nil {
		t.Error("lambda > 1 accepted")
	}
	if _, err := Compute(g, Options{Tolerance: -1}); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	m, err := Compute(graph.New(0), Options{})
	if err != nil {
		t.Fatalf("Compute on empty graph: %v", err)
	}
	if m.N() != 0 {
		t.Fatalf("N = %d, want 0", m.N())
	}
}

func TestTopK(t *testing.T) {
	g := gen.ErdosRenyi(25, 120, 9)
	m, err := Compute(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	top := m.TopK(3, 5)
	if len(top) != 5 {
		t.Fatalf("TopK returned %d nodes, want 5", len(top))
	}
	row := m.Row(3)
	for i := 1; i < len(top); i++ {
		if row[top[i]] > row[top[i-1]] {
			t.Fatalf("TopK not descending at %d", i)
		}
	}
	for _, v := range top {
		if v == 3 {
			t.Fatal("TopK included the query node")
		}
	}
	if m.TopK(3, 0) != nil {
		t.Fatal("TopK(k=0) should be nil")
	}
	if got := m.TopK(3, 100); len(got) != 24 {
		t.Fatalf("TopK(k>n) returned %d, want n-1 = 24", len(got))
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	g := gen.ErdosRenyi(30, 150, 21)
	a, err := Compute(g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(g, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	for i := 0; i < 200; i++ {
		u, v := graph.NodeID(rng.Intn(30)), graph.NodeID(rng.Intn(30))
		if a.At(u, v) != b.At(u, v) {
			t.Fatalf("worker counts disagree at (%d,%d): %v vs %v", u, v, a.At(u, v), b.At(u, v))
		}
	}
}
