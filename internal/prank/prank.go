// Package prank implements P-Rank (Zhao, Han & Sun, "P-Rank: a
// comprehensive structural similarity measure over information networks",
// CIKM 2009), the SimRank variant the paper's related work lists among the
// measures its techniques do not directly cover (§5). P-Rank scores two
// nodes as similar when their in-neighbors AND their out-neighbors are
// similar:
//
//	s(u, v) = λ·c/(|I(u)||I(v)|)·Σ_{x∈I(u), y∈I(v)} s(x, y)
//	        + (1−λ)·c/(|O(u)||O(v)|)·Σ_{x∈O(u), y∈O(v)} s(x, y)
//
// with s(u, u) = 1. λ = 1 recovers SimRank exactly, which is the
// cross-check the tests use against the Power Method; λ = 0 is the co-
// citation-style out-link measure. The implementation is a dense power
// iteration parallelized across rows, with the same contraction-based
// convergence argument as SimRank's Power Method: successive iterates
// differ by at most c^k, so iterating to tolerance ε needs
// ⌈log(ε)/log(c)⌉ rounds.
package prank

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"probesim/internal/graph"
)

// Options configures the P-Rank computation.
type Options struct {
	// C is the decay factor in (0, 1). Default 0.6.
	C float64
	// Lambda weighs the in-link term against the out-link term, in [0, 1].
	// Default 0.5 (the paper's balanced setting). Lambda = 1 is SimRank.
	Lambda float64
	// Tolerance is the max absolute change at convergence. Default 1e-10.
	Tolerance float64
	// Workers bounds parallelism. Default runtime.GOMAXPROCS(0).
	Workers int

	lambdaSet bool
}

// WithLambda returns o with Lambda explicitly set, distinguishing a chosen
// 0 from the unset default.
func (o Options) WithLambda(lambda float64) Options {
	o.Lambda = lambda
	o.lambdaSet = true
	return o
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Lambda == 0 && !o.lambdaSet {
		o.Lambda = 0.5
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-10
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o Options) validate() error {
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("prank: decay factor c = %v outside (0, 1)", o.C)
	}
	if o.Lambda < 0 || o.Lambda > 1 {
		return fmt.Errorf("prank: lambda = %v outside [0, 1]", o.Lambda)
	}
	if o.Tolerance <= 0 {
		return fmt.Errorf("prank: tolerance %v must be positive", o.Tolerance)
	}
	return nil
}

// Matrix holds all-pairs P-Rank scores.
type Matrix struct {
	n    int
	data []float64 // row-major n×n
}

// N returns the node count.
func (m *Matrix) N() int { return m.n }

// At returns s(u, v).
func (m *Matrix) At(u, v graph.NodeID) float64 { return m.data[int(u)*m.n+int(v)] }

// Row returns the similarity row of u (shared storage; do not modify).
func (m *Matrix) Row(u graph.NodeID) []float64 {
	return m.data[int(u)*m.n : int(u+1)*m.n]
}

// Compute runs the P-Rank power iteration to the requested tolerance and
// returns the all-pairs matrix. O(n²) memory: intended for small graphs,
// like SimRank's Power Method.
func Compute(g *graph.Graph, opt Options) (*Matrix, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return &Matrix{}, nil
	}
	iters := int(math.Ceil(math.Log(opt.Tolerance) / math.Log(opt.C)))
	if iters < 1 {
		iters = 1
	}
	cur := identity(n)
	next := identity(n)
	for it := 0; it < iters; it++ {
		iterate(g, opt, cur, next)
		cur, next = next, cur
	}
	return &Matrix{n: n, data: cur}, nil
}

func identity(n int) []float64 {
	m := make([]float64, n*n)
	for i := 0; i < n; i++ {
		m[i*n+i] = 1
	}
	return m
}

// iterate computes one P-Rank round: next = λ·c·avg_in(cur) +
// (1−λ)·c·avg_out(cur) off-diagonal, 1 on the diagonal. Rows are
// distributed across workers; cur is read-only during the round so no
// locking is needed.
func iterate(g *graph.Graph, opt Options, cur, next []float64) {
	n := g.NumNodes()
	var wg sync.WaitGroup
	workers := opt.Workers
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for u := lo; u < hi; u++ {
				row := next[u*n : (u+1)*n]
				iu := g.InNeighbors(graph.NodeID(u))
				ou := g.OutNeighbors(graph.NodeID(u))
				for v := 0; v < n; v++ {
					if v == u {
						row[v] = 1
						continue
					}
					var s float64
					if iv := g.InNeighbors(graph.NodeID(v)); len(iu) > 0 && len(iv) > 0 && opt.Lambda > 0 {
						var sum float64
						for _, x := range iu {
							xr := cur[int(x)*n:]
							for _, y := range iv {
								sum += xr[y]
							}
						}
						s += opt.Lambda * opt.C * sum / float64(len(iu)*len(iv))
					}
					if ov := g.OutNeighbors(graph.NodeID(v)); len(ou) > 0 && len(ov) > 0 && opt.Lambda < 1 {
						var sum float64
						for _, x := range ou {
							xr := cur[int(x)*n:]
							for _, y := range ov {
								sum += xr[y]
							}
						}
						s += (1 - opt.Lambda) * opt.C * sum / float64(len(ou)*len(ov))
					}
					row[v] = s
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// TopK returns the k nodes with the highest P-Rank score to u, in
// descending order (ties by node id).
func (m *Matrix) TopK(u graph.NodeID, k int) []graph.NodeID {
	if k <= 0 || m.n == 0 {
		return nil
	}
	type scored struct {
		v graph.NodeID
		s float64
	}
	var best []scored
	row := m.Row(u)
	for v := 0; v < m.n; v++ {
		if graph.NodeID(v) == u {
			continue
		}
		best = append(best, scored{graph.NodeID(v), row[v]})
	}
	sort.Slice(best, func(i, j int) bool {
		if best[i].s != best[j].s {
			return best[i].s > best[j].s
		}
		return best[i].v < best[j].v
	})
	if k > len(best) {
		k = len(best)
	}
	out := make([]graph.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = best[i].v
	}
	return out
}
