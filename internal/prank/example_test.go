package prank_test

import (
	"fmt"

	"probesim/internal/graph"
	"probesim/internal/prank"
)

// P-Rank sees similarity SimRank cannot: two pages that cite the same
// source (co-citation) score zero under in-link SimRank but positively
// under the out-link term.
func Example() {
	g := graph.New(3)
	_ = g.AddEdge(0, 2) // 0 cites 2
	_ = g.AddEdge(1, 2) // 1 cites 2

	simrank, err := prank.Compute(g, prank.Options{C: 0.6, Tolerance: 1e-10}.WithLambda(1))
	if err != nil {
		panic(err)
	}
	cocite, err := prank.Compute(g, prank.Options{C: 0.6, Tolerance: 1e-10}.WithLambda(0))
	if err != nil {
		panic(err)
	}
	fmt.Printf("SimRank (λ=1): s(0,1) = %.1f\n", simrank.At(0, 1))
	fmt.Printf("P-Rank  (λ=0): s(0,1) = %.1f\n", cocite.At(0, 1))
	// Output:
	// SimRank (λ=1): s(0,1) = 0.0
	// P-Rank  (λ=0): s(0,1) = 0.6
}
