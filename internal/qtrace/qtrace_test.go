package qtrace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDStringParseRoundTrip(t *testing.T) {
	id := TraceID{Hi: 0xDEADBEEF01234567, Lo: 0x89ABCDEF00000001}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("id %q not 32 hex digits", s)
	}
	got, ok := ParseID(s)
	if !ok || got != id {
		t.Fatalf("round trip: %v %v", got, ok)
	}
	for _, bad := range []string{"", "xyz", strings.Repeat("0", 32), strings.Repeat("g", 32), s[:31]} {
		if _, ok := ParseID(bad); ok {
			t.Fatalf("ParseID accepted %q", bad)
		}
	}
	if NewID().IsZero() {
		t.Fatal("NewID drew the zero id")
	}
}

// Every method must be a no-op on a nil trace — the unsampled hot path's
// whole contract.
func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	ref := tr.StartSpan("x", 0)
	if ref != 0 {
		t.Fatalf("nil StartSpan ref %d", ref)
	}
	tr.EndSpan(ref)
	tr.EndSpanAnnot(ref, "a=b")
	tr.Annotate(ref, "a=b")
	tr.AddStage(StageWalk, time.Second)
	tr.AddProbeLevels(3)
	tr.Graft(0, []Span{{ID: 1, Name: "w"}}, 0, "worker=x")
	tr.SetForced()
	if tr.Forced() || tr.Dropped() != 0 || tr.ProbeLevels() != 0 ||
		tr.Snapshot() != nil || !tr.ID().IsZero() || tr.Since() != 0 {
		t.Fatal("nil trace reported state")
	}
	if tot := tr.StageTotals(); tot[StageWalk].N != 0 {
		t.Fatal("nil trace accumulated a stage")
	}
	// And a nil trace must not enter the context.
	ctx := NewContext(context.Background(), nil, 0)
	if got, _ := FromContext(ctx); got != nil {
		t.Fatal("nil trace entered the context")
	}
	if c2 := ContextWithSpan(ctx, 7); c2 != ctx {
		t.Fatal("ContextWithSpan allocated on a traceless context")
	}
}

func TestSpanLifecycle(t *testing.T) {
	tr := New(NewID())
	root := tr.StartSpan("root", 0)
	child := tr.StartSpan("child", root)
	tr.Annotate(child, "k=v")
	tr.EndSpanAnnot(child, "outcome=ok")
	tr.EndSpan(root)
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(spans))
	}
	r, c := spans[0], spans[1]
	if r.Name != "root" || r.Parent != 0 || c.Name != "child" || c.Parent != uint32(root) {
		t.Fatalf("tree wrong: %+v", spans)
	}
	if c.Attrs != "k=v,outcome=ok" {
		t.Fatalf("attrs %q", c.Attrs)
	}
	if r.End == 0 || c.End == 0 || c.End < c.Start {
		t.Fatalf("timings wrong: %+v", spans)
	}
	// Closing twice keeps the first end; annotating after close appends.
	firstEnd := spans[1].End
	tr.EndSpanAnnot(child, "late=1")
	if got := tr.Snapshot()[1]; got.End != firstEnd || !strings.HasSuffix(got.Attrs, "late=1") {
		t.Fatalf("double close: %+v", got)
	}
}

func TestSnapshotMarksOpenSpans(t *testing.T) {
	tr := New(NewID())
	tr.StartSpan("never-closed", 0)
	s := tr.Snapshot()[0]
	if s.End == 0 || !strings.Contains(s.Attrs, "open") {
		t.Fatalf("open span not closed in snapshot: %+v", s)
	}
	// The trace itself still holds the span open.
	if tr.Snapshot()[0].End == 0 {
		t.Fatal("second snapshot lost the open marker")
	}
}

func TestMaxSpansCapCountsDropped(t *testing.T) {
	tr := New(NewID())
	for i := 0; i < MaxSpans+10; i++ {
		tr.StartSpan("s", 0)
	}
	if n := len(tr.Snapshot()); n != MaxSpans {
		t.Fatalf("slab grew past the cap: %d", n)
	}
	if d := tr.Dropped(); d != 10 {
		t.Fatalf("dropped %d, want 10", d)
	}
	// Refs past the cap are 0 and inert.
	if ref := tr.StartSpan("over", 0); ref != 0 {
		t.Fatalf("over-cap ref %d", ref)
	}
}

func TestGraftRemapsAndRebases(t *testing.T) {
	tr := New(NewID())
	rpc := tr.StartSpan("rpc.walk", 0)
	worker := []Span{
		{ID: 1, Parent: 0, Name: "worker.walk_segment", Start: 0, End: 5 * time.Millisecond},
		{ID: 2, Parent: 1, Name: "walk.steps", Start: time.Millisecond, End: 4 * time.Millisecond, Attrs: "n=3"},
	}
	base := 10 * time.Millisecond
	tr.Graft(rpc, worker, base, "worker=1.2.3.4:9")
	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(spans))
	}
	g0, g1 := spans[1], spans[2]
	if g0.Parent != uint32(rpc) {
		t.Fatalf("grafted root parent %d, want the rpc span %d", g0.Parent, rpc)
	}
	if !strings.Contains(g0.Attrs, "worker=1.2.3.4:9") {
		t.Fatalf("grafted root missing worker label: %q", g0.Attrs)
	}
	if g1.Parent != g0.ID {
		t.Fatalf("internal link broken: child parent %d, root id %d", g1.Parent, g0.ID)
	}
	if strings.Contains(g1.Attrs, "worker=") {
		t.Fatalf("non-root grafted span got the worker label: %q", g1.Attrs)
	}
	if g0.Start != base || g0.End != base+5*time.Millisecond {
		t.Fatalf("rebase wrong: %+v", g0)
	}
}

func TestStageAggregatesConcurrently(t *testing.T) {
	tr := New(NewID())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.AddStage(StageWalk, time.Microsecond)
				tr.AddStage(StageProbe, 2*time.Microsecond)
				tr.AddProbeLevels(1)
			}
		}()
	}
	wg.Wait()
	tot := tr.StageTotals()
	if tot[StageWalk].N != 800 || tot[StageWalk].NS != 800*int64(time.Microsecond) {
		t.Fatalf("walk totals %+v", tot[StageWalk])
	}
	if tot[StageProbe].N != 800 || tot[StageProbe].NS != 1600*int64(time.Microsecond) {
		t.Fatalf("probe totals %+v", tot[StageProbe])
	}
	if tr.ProbeLevels() != 800 {
		t.Fatalf("probe levels %d", tr.ProbeLevels())
	}
}

func TestContextCarriesTraceAndParent(t *testing.T) {
	tr := New(NewID())
	root := tr.StartSpan("root", 0)
	ctx := NewContext(context.Background(), tr, root)
	got, parent := FromContext(ctx)
	if got != tr || parent != root {
		t.Fatalf("FromContext: %v %v", got, parent)
	}
	child := tr.StartSpan("child", parent)
	ctx2 := ContextWithSpan(ctx, child)
	if _, p2 := FromContext(ctx2); p2 != child {
		t.Fatalf("re-parent lost: %v", p2)
	}
	if _, p := FromContext(ctx); p != root {
		t.Fatal("re-parenting mutated the original context")
	}
}

func TestSpanJSONShape(t *testing.T) {
	b, err := json.Marshal(Span{ID: 2, Parent: 1, Name: "kernel", Start: time.Millisecond, End: 3 * time.Millisecond, Attrs: "mode=1"})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["name"] != "kernel" || m["start_us"] != 1000.0 || m["dur_us"] != 2000.0 || m["attrs"] != "mode=1" {
		t.Fatalf("span JSON: %v", m)
	}
}
