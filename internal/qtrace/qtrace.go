// Package qtrace is the query-tracing seam of the serving stack: a
// zero-dependency (standard library only), allocation-conscious span
// recorder threaded through the whole query lifecycle — admission wait,
// snapshot/view resolution, walk generation, per-probe-level work, and
// every shard RPC with its failover/hedge outcome — stitched across
// process boundaries under one 128-bit trace id.
//
// The design mirrors the budget package's nil-safety contract: a nil
// *Trace is valid everywhere and records nothing, so the unsampled hot
// path pays one branch per instrumentation point and allocates nothing.
// Sampling is decided once per request (probabilistic rate, a slow-query
// threshold for the always-on log, or a per-request ?trace=1 force); only
// sampled requests carry a live *Trace through their context.
//
// Spans live in a single slab per trace ([]Span appended under a mutex,
// capped at MaxSpans) and are identified by their slab position, so a
// span costs one append and no per-span allocation beyond slab growth.
// Worker-side traces are serialized over the rpcwire reply trailer and
// grafted into the caller's slab with re-based offsets, which is what
// makes a cross-process trace read as one tree.
package qtrace

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit query trace identifier. The zero value means
// "no trace".
type TraceID struct {
	Hi, Lo uint64
}

// NewID draws a random non-zero trace id. It uses the global math/rand/v2
// generator — never a query's seeded xrand stream — so tracing cannot
// perturb the deterministic walk draws that bit-identity across replicas
// depends on.
func NewID() TraceID {
	for {
		id := TraceID{Hi: rand.Uint64(), Lo: rand.Uint64()}
		if !id.IsZero() {
			return id
		}
	}
}

// IsZero reports whether id is the absent trace id.
func (id TraceID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// String renders the id as 32 lowercase hex digits.
func (id TraceID) String() string {
	return fmt.Sprintf("%016x%016x", id.Hi, id.Lo)
}

// ParseID parses the String form; ok is false for anything else.
func ParseID(s string) (TraceID, bool) {
	if len(s) != 32 {
		return TraceID{}, false
	}
	hi, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil {
		return TraceID{}, false
	}
	lo, err := strconv.ParseUint(s[16:], 16, 64)
	if err != nil {
		return TraceID{}, false
	}
	id := TraceID{Hi: hi, Lo: lo}
	return id, !id.IsZero()
}

// SpanRef names a span within its trace: the 1-based slab position.
// Zero is "no span" (used both as the root parent and as the no-op ref
// returned by a nil trace).
type SpanRef uint32

// Span is one recorded operation. Start and End are offsets from the
// trace's arming instant; End == 0 marks a span still open.
type Span struct {
	ID     uint32
	Parent uint32
	Name   string
	Start  time.Duration
	End    time.Duration
	Attrs  string
}

// MarshalJSON renders a span with microsecond timings, the shape
// /debug/queries and ?trace=1 expose.
func (s Span) MarshalJSON() ([]byte, error) {
	type js struct {
		ID      uint32  `json:"id"`
		Parent  uint32  `json:"parent,omitempty"`
		Name    string  `json:"name"`
		StartUS float64 `json:"start_us"`
		DurUS   float64 `json:"dur_us"`
		Attrs   string  `json:"attrs,omitempty"`
	}
	return json.Marshal(js{
		ID:      s.ID,
		Parent:  s.Parent,
		Name:    s.Name,
		StartUS: float64(s.Start) / float64(time.Microsecond),
		DurUS:   float64(s.End-s.Start) / float64(time.Microsecond),
		Attrs:   s.Attrs,
	})
}

// Stage identifies a kernel work stage whose wall time is aggregated (not
// recorded span-by-span: a query runs thousands of walk trials and probe
// invocations; per-stage atomic accumulators keep attribution O(1) in
// space).
type Stage uint8

const (
	StageWalk  Stage = iota // √c-walk generation (trials / segments)
	StageProbe              // probe expansion (deterministic or randomized)
	NumStages
)

// String names the stage for logs and metrics labels.
func (s Stage) String() string {
	switch s {
	case StageWalk:
		return "walk"
	case StageProbe:
		return "probe"
	}
	return "stage" + strconv.Itoa(int(s))
}

// StageTotal is one stage's aggregate: summed wall time across workers
// (so it can exceed the query's elapsed time on parallel kernels) and an
// invocation count.
type StageTotal struct {
	NS int64 `json:"ns"`
	N  int64 `json:"n"`
}

// MaxSpans caps a trace's slab. A query that would record more (a huge
// walk fan-out on a tiny segment size) keeps its first MaxSpans spans and
// counts the rest as dropped, bounding trace memory per query.
const MaxSpans = 512

// Trace records one query's spans and stage aggregates. All methods are
// safe for concurrent use by the query's workers and are nil-safe: a nil
// Trace records nothing at one branch of cost.
type Trace struct {
	id     TraceID
	start  time.Time
	forced bool

	stages      [NumStages]stageAgg
	probeLevels atomic.Int64

	mu      sync.Mutex
	spans   []Span
	dropped int
}

type stageAgg struct {
	ns atomic.Int64
	n  atomic.Int64
}

// New arms a trace recorder under the given id, anchored at the current
// instant.
func New(id TraceID) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace id (zero for a nil trace).
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// SetForced marks the trace as requested explicitly (?trace=1), which
// asks the response handler to inline the span tree.
func (t *Trace) SetForced() {
	if t != nil {
		t.forced = true
	}
}

// Forced reports whether the span tree should be inlined in the response.
func (t *Trace) Forced() bool { return t != nil && t.forced }

// Since returns the offset of the current instant from the trace's
// arming time.
func (t *Trace) Since() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// StartSpan opens a span under parent (0 = root) and returns its ref.
// On a nil trace, or past the MaxSpans cap, it returns 0, which every
// other method accepts as a no-op.
func (t *Trace) StartSpan(name string, parent SpanRef) SpanRef {
	if t == nil {
		return 0
	}
	off := time.Since(t.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= MaxSpans {
		t.dropped++
		return 0
	}
	id := uint32(len(t.spans) + 1)
	t.spans = append(t.spans, Span{ID: id, Parent: uint32(parent), Name: name, Start: off})
	return SpanRef(id)
}

// EndSpan closes ref at the current instant.
func (t *Trace) EndSpan(ref SpanRef) { t.EndSpanAnnot(ref, "") }

// EndSpanAnnot closes ref and appends attrs (comma-separated k=v pairs)
// to its annotation. Closing an already-closed span only appends attrs.
func (t *Trace) EndSpanAnnot(ref SpanRef, attrs string) {
	if t == nil || ref == 0 {
		return
	}
	off := time.Since(t.start)
	if off <= 0 {
		off = 1 // End==0 is the "open" sentinel
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	i := int(ref) - 1
	if i < 0 || i >= len(t.spans) {
		return
	}
	s := &t.spans[i]
	if s.End == 0 {
		s.End = off
	}
	if attrs != "" {
		if s.Attrs != "" {
			s.Attrs += ","
		}
		s.Attrs += attrs
	}
}

// Annotate appends attrs to ref without closing it.
func (t *Trace) Annotate(ref SpanRef, attrs string) {
	if t == nil || ref == 0 || attrs == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	i := int(ref) - 1
	if i < 0 || i >= len(t.spans) {
		return
	}
	s := &t.spans[i]
	if s.Attrs != "" {
		s.Attrs += ","
	}
	s.Attrs += attrs
}

// AddStage charges d of wall time (and one invocation) to a stage
// aggregate. Safe from any worker; two atomic adds.
func (t *Trace) AddStage(s Stage, d time.Duration) {
	if t == nil || s >= NumStages {
		return
	}
	t.stages[s].ns.Add(int64(d))
	t.stages[s].n.Add(1)
}

// AddProbeLevels counts n expanded probe levels (the per-probe-level work
// attribution the probe kernels report).
func (t *Trace) AddProbeLevels(n int64) {
	if t == nil {
		return
	}
	t.probeLevels.Add(n)
}

// StageTotals snapshots the stage aggregates.
func (t *Trace) StageTotals() [NumStages]StageTotal {
	var out [NumStages]StageTotal
	if t == nil {
		return out
	}
	for i := range out {
		out[i] = StageTotal{NS: t.stages[i].ns.Load(), N: t.stages[i].n.Load()}
	}
	return out
}

// ProbeLevels returns the probe-level count.
func (t *Trace) ProbeLevels() int64 {
	if t == nil {
		return 0
	}
	return t.probeLevels.Load()
}

// Graft splices a remote worker's spans (offsets relative to the worker's
// own trace start) into this trace under parent, re-based at base —
// normally the start offset of the client-side RPC span, since clocks on
// the two sides need not agree. Remote span ids are remapped onto this
// trace's slab; internal parent links are preserved, roots re-parent to
// parent. label, when non-empty, is appended to each grafted root's
// attrs (the worker address).
func (t *Trace) Graft(parent SpanRef, spans []Span, base time.Duration, label string) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	off := uint32(len(t.spans))
	for _, s := range spans {
		if len(t.spans) >= MaxSpans {
			t.dropped += len(spans) - int(uint32(len(t.spans))-off)
			return
		}
		// Remote ids are slab positions on the worker side; only links
		// that stay inside the grafted batch survive the remap.
		if s.Parent != 0 && int(s.Parent) <= len(spans) {
			s.Parent += off
		} else {
			s.Parent = uint32(parent)
			if label != "" {
				if s.Attrs != "" {
					s.Attrs += ","
				}
				s.Attrs += label
			}
		}
		s.ID = uint32(len(t.spans) + 1)
		s.Start += base
		if s.End != 0 {
			s.End += base
		}
		t.spans = append(t.spans, s)
	}
}

// Snapshot copies the spans recorded so far, closing still-open spans at
// the current instant with an "open" marker so durations are always
// well-defined. Safe to call while workers are still recording.
func (t *Trace) Snapshot() []Span {
	if t == nil {
		return nil
	}
	now := time.Since(t.start)
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	for i := range out {
		if out[i].End == 0 {
			out[i].End = now
			if out[i].Attrs != "" {
				out[i].Attrs += ","
			}
			out[i].Attrs += "open"
		}
	}
	return out
}

// Dropped returns how many spans the MaxSpans cap discarded.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Context plumbing. One key carries both the live trace and the current
// parent span, so crossing an API boundary (router → engine → kernel)
// nests spans without new parameters.

type ctxKey struct{}

type ctxVal struct {
	tr   *Trace
	span SpanRef
}

// NewContext returns ctx carrying tr with span as the current parent.
func NewContext(ctx context.Context, tr *Trace, span SpanRef) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{tr: tr, span: span})
}

// FromContext returns the live trace and current parent span, or
// (nil, 0) when the request is unsampled.
func FromContext(ctx context.Context) (*Trace, SpanRef) {
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.tr, v.span
	}
	return nil, 0
}

// ContextWithSpan re-parents ctx's trace at span. A no-op (returning ctx)
// when ctx carries no trace.
func ContextWithSpan(ctx context.Context, span SpanRef) context.Context {
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok {
		return ctx
	}
	v.span = span
	return context.WithValue(ctx, ctxKey{}, v)
}
