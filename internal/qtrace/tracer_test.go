package qtrace

import (
	"bytes"
	"log/slog"
	"testing"
	"time"
)

func TestTracerSamplingDecision(t *testing.T) {
	never := NewTracer(0, 0, 4, nil)
	if tr := never.Begin(NewID(), false); tr != nil {
		t.Fatal("rate-0 tracer sampled")
	}
	if tr := never.Begin(NewID(), true); tr == nil || !tr.Forced() {
		t.Fatal("?trace=1 did not force a forced trace")
	}
	always := NewTracer(0, 1, 4, nil)
	if tr := always.Begin(NewID(), false); tr == nil || tr.Forced() {
		t.Fatalf("rate-1 tracer: %v", tr)
	}
	if got := always.Started(); got != 1 {
		t.Fatalf("started %d", got)
	}
	if got := always.Sampled(); got != 1 {
		t.Fatalf("sampled %d", got)
	}

	var nilTracer *Tracer
	if nilTracer.Begin(NewID(), true) != nil || nilTracer.Finish(nil, NewID(), "q", 200, time.Now(), time.Second) != nil ||
		nilTracer.Recent() != nil || nilTracer.Started() != 0 || nilTracer.Sampled() != 0 || nilTracer.SlowCount() != 0 {
		t.Fatal("nil tracer reported state")
	}
}

func TestTracerFinishRingAndSlowLog(t *testing.T) {
	var buf bytes.Buffer
	tc := NewTracer(50*time.Millisecond, 0, 2, slog.New(slog.NewJSONHandler(&buf, nil)))

	// Unsampled + fast: nothing to report.
	if d := tc.Finish(nil, NewID(), "/topk", 200, time.Now(), time.Millisecond); d != nil {
		t.Fatalf("fast unsampled query reported: %+v", d)
	}
	// Unsampled + slow: logged, counted, but NOT in the ring (no spans).
	id := NewID()
	d := tc.Finish(nil, id, "/topk", 200, time.Now(), 80*time.Millisecond)
	if d == nil || !d.Slow || d.Spans != nil {
		t.Fatalf("slow unsampled: %+v", d)
	}
	if tc.SlowCount() != 1 {
		t.Fatalf("slow count %d", tc.SlowCount())
	}
	if !bytes.Contains(buf.Bytes(), []byte("slow_query")) || !bytes.Contains(buf.Bytes(), []byte(id.String())) {
		t.Fatalf("slow log missing record: %s", buf.String())
	}
	if len(tc.Recent()) != 0 {
		t.Fatal("unsampled query entered the ring")
	}

	// Sampled queries land in the ring with stage detail, oldest evicted.
	for i := 0; i < 3; i++ {
		tr := New(NewID())
		tr.StartSpan("kernel", 0)
		tr.AddStage(StageWalk, time.Duration(i+1)*time.Millisecond)
		tc.Finish(tr, tr.ID(), "/topk", 200, time.Now(), time.Millisecond)
	}
	rec := tc.Recent()
	if len(rec) != 2 {
		t.Fatalf("ring holds %d, want 2", len(rec))
	}
	last := rec[len(rec)-1]
	if len(last.Spans) != 1 || last.Stages["walk"].NS != int64(3*time.Millisecond) {
		t.Fatalf("ring entry: %+v", last)
	}
}

func TestFinishTaggedAnnotatesTenant(t *testing.T) {
	var buf bytes.Buffer
	tc := NewTracer(10*time.Millisecond, 1, 4, slog.New(slog.NewJSONHandler(&buf, nil)))
	tr := New(NewID())
	d := tc.FinishTagged(tr, tr.ID(), "/topk", "search", 200, time.Now(), 20*time.Millisecond)
	if d == nil || d.Tenant != "search" {
		t.Fatalf("tagged finish: %+v", d)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"tenant":"search"`)) {
		t.Fatalf("slow log missing tenant attr: %s", buf.String())
	}
	rec := tc.Recent()
	if len(rec) != 1 || rec[0].Tenant != "search" {
		t.Fatalf("ring entry lost tenant: %+v", rec)
	}
	// Finish delegates with an empty tenant and stays wire-compatible.
	buf.Reset()
	d = tc.Finish(nil, NewID(), "/topk", 200, time.Now(), 20*time.Millisecond)
	if d == nil || d.Tenant != "" {
		t.Fatalf("untagged finish: %+v", d)
	}
	if bytes.Contains(buf.Bytes(), []byte("tenant")) {
		t.Fatalf("empty tenant leaked into slow log: %s", buf.String())
	}
}
