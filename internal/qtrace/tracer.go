package qtrace

import (
	"log/slog"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Done is one completed query trace, as kept in the tracer's ring and
// rendered by /debug/queries.
type Done struct {
	ID          TraceID               `json:"traceId"`
	Name        string                `json:"name"`
	Tenant      string                `json:"tenant,omitempty"`
	Status      int                   `json:"status"`
	Start       time.Time             `json:"start"`
	Dur         time.Duration         `json:"-"`
	DurMS       float64               `json:"dur_ms"`
	Slow        bool                  `json:"slow,omitempty"`
	Stages      map[string]StageTotal `json:"stages,omitempty"`
	ProbeLevels int64                 `json:"probe_levels,omitempty"`
	Dropped     int                   `json:"dropped_spans,omitempty"`
	Spans       []Span                `json:"spans,omitempty"`
}

// MarshalID is the hex id for JSON (TraceID has no natural JSON form).
func (id TraceID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// DefaultRing is the number of completed traces the ring retains.
const DefaultRing = 64

// Tracer owns a process's tracing policy and its completed-trace ring:
// the per-request sampling decision, the always-on slow-query log, and
// the /debug/queries buffer. All methods are safe for concurrent use and
// nil-safe (a nil tracer never samples and never logs).
type Tracer struct {
	// SlowThreshold is the always-on slow-query log threshold; 0 disables
	// the log. The decision does not depend on sampling: every completed
	// query slower than the threshold logs one structured line (with stage
	// detail when the query happened to be sampled).
	SlowThreshold time.Duration
	// SampleRate is the probability an ordinary request records spans;
	// ?trace=1 requests always do.
	SampleRate float64
	// Logger receives slow-query records; nil falls back to slog.Default
	// at log time (so a process-wide -log-format switch applies).
	Logger *slog.Logger

	mu   sync.Mutex
	ring []*Done
	next int

	started atomic.Int64
	sampled atomic.Int64
	slow    atomic.Int64
}

// NewTracer builds a tracer with a ring of ringSize completed traces
// (DefaultRing when <= 0).
func NewTracer(slowThreshold time.Duration, sampleRate float64, ringSize int, logger *slog.Logger) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRing
	}
	return &Tracer{
		SlowThreshold: slowThreshold,
		SampleRate:    sampleRate,
		Logger:        logger,
		ring:          make([]*Done, 0, ringSize),
	}
}

// Begin makes the per-request sampling decision and returns the trace to
// thread through the query (nil when unsampled — the hot path). force
// (?trace=1) always samples. The returned trace carries id.
func (t *Tracer) Begin(id TraceID, force bool) *Trace {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	if !force && (t.SampleRate <= 0 || rand.Float64() >= t.SampleRate) {
		return nil
	}
	t.sampled.Add(1)
	tr := New(id)
	if force {
		tr.SetForced()
	}
	return tr
}

// Finish completes one query: classifies it against the slow threshold,
// logs it when slow, and (for sampled queries) snapshots the span tree
// into the ring. tr may be nil (unsampled); id, name, status, start and
// dur describe the query either way. The returned Done is nil for
// unsampled, not-slow queries — there is nothing to report.
func (t *Tracer) Finish(tr *Trace, id TraceID, name string, status int, start time.Time, dur time.Duration) *Done {
	return t.FinishTagged(tr, id, name, "", status, start, dur)
}

// FinishTagged is Finish with a tenant annotation: the tenant lands on
// the ring entry (so /debug/queries shows whose query it was) and on the
// slow-query log line (so an SLO burn spike is one grep from its
// traces). Empty tenant behaves exactly like Finish.
func (t *Tracer) FinishTagged(tr *Trace, id TraceID, name, tenant string, status int, start time.Time, dur time.Duration) *Done {
	if t == nil {
		return nil
	}
	isSlow := t.SlowThreshold > 0 && dur >= t.SlowThreshold
	if tr == nil && !isSlow {
		return nil
	}
	d := &Done{
		ID:     id,
		Name:   name,
		Tenant: tenant,
		Status: status,
		Start:  start,
		Dur:    dur,
		DurMS:  float64(dur) / float64(time.Millisecond),
		Slow:   isSlow,
	}
	if tr != nil {
		d.Spans = tr.Snapshot()
		d.Dropped = tr.Dropped()
		d.ProbeLevels = tr.ProbeLevels()
		totals := tr.StageTotals()
		d.Stages = make(map[string]StageTotal, NumStages)
		for s := Stage(0); s < NumStages; s++ {
			if totals[s].N > 0 {
				d.Stages[s.String()] = totals[s]
			}
		}
	}
	if isSlow {
		t.slow.Add(1)
		t.logSlow(d)
	}
	if tr != nil {
		t.mu.Lock()
		if len(t.ring) < cap(t.ring) {
			t.ring = append(t.ring, d)
		} else {
			t.ring[t.next] = d
			t.next = (t.next + 1) % cap(t.ring)
		}
		t.mu.Unlock()
	}
	return d
}

// logSlow emits the one-line structured slow-query record.
func (t *Tracer) logSlow(d *Done) {
	lg := t.Logger
	if lg == nil {
		lg = slog.Default()
	}
	attrs := []any{
		slog.String("trace", d.ID.String()),
		slog.String("route", d.Name),
		slog.Int("status", d.Status),
		slog.Float64("dur_ms", d.DurMS),
		slog.Bool("sampled", d.Spans != nil),
	}
	if d.Tenant != "" {
		attrs = append(attrs, slog.String("tenant", d.Tenant))
	}
	if d.Stages != nil {
		for name, st := range d.Stages {
			attrs = append(attrs,
				slog.Float64(name+"_ms", float64(st.NS)/float64(time.Millisecond)),
				slog.Int64(name+"_n", st.N))
		}
		attrs = append(attrs, slog.Int64("probe_levels", d.ProbeLevels))
	}
	lg.Warn("slow_query", attrs...)
}

// Recent returns the completed sampled traces, newest last.
func (t *Tracer) Recent() []*Done {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Done, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		out = append(out, t.ring...)
		return out
	}
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Counters for /metrics.

// Started returns how many requests consulted the tracer.
func (t *Tracer) Started() int64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

// Sampled returns how many requests recorded spans.
func (t *Tracer) Sampled() int64 {
	if t == nil {
		return 0
	}
	return t.sampled.Load()
}

// SlowCount returns how many completed queries crossed the slow
// threshold.
func (t *Tracer) SlowCount() int64 {
	if t == nil {
		return 0
	}
	return t.slow.Load()
}
