package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testOps(r *rand.Rand, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Remove: r.Intn(4) == 0, U: int32(r.Intn(1000)), V: int32(r.Intn(1000))}
	}
	return ops
}

func opsEqual(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointPath != "" || len(rec.Batches) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	r := rand.New(rand.NewSource(1))
	var want []Batch
	for i := 0; i < 50; i++ {
		ops := testOps(r, 1+r.Intn(8))
		id, err := l.Append(0, ops)
		if err != nil {
			t.Fatal(err)
		}
		if id != uint64(i+1) {
			t.Fatalf("batch %d got id %d", i, id)
		}
		want = append(want, Batch{ID: id, Ops: ops})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec2.Batches) != len(want) {
		t.Fatalf("recovered %d batches, want %d", len(rec2.Batches), len(want))
	}
	for i, b := range rec2.Batches {
		if b.ID != want[i].ID || !opsEqual(b.Ops, want[i].Ops) {
			t.Fatalf("batch %d: got %+v want %+v", i, b, want[i])
		}
	}
	if got := l2.NextBatch(); got != 51 {
		t.Fatalf("next batch %d, want 51", got)
	}
	// Replay filters by watermark.
	var ids []uint64
	if err := rec2.Replay(47, func(id uint64, ops []Op) error {
		ids = append(ids, id)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 48 || ids[2] != 50 {
		t.Fatalf("replay above 47 visited %v", ids)
	}
}

func TestExplicitIDsAndMonotonicity(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if id, err := l.Append(7, []Op{{U: 1, V: 2}}); err != nil || id != 7 {
		t.Fatalf("explicit id: %d, %v", id, err)
	}
	// Gaps forward are legal (router-assigned ids skip rejected batches).
	if id, err := l.Append(10, []Op{{U: 2, V: 3}}); err != nil || id != 10 {
		t.Fatalf("gapped id: %d, %v", id, err)
	}
	if _, err := l.Append(9, []Op{{U: 3, V: 4}}); err == nil {
		t.Fatal("non-monotonic id accepted")
	}
	if id, err := l.Append(0, nil); err != nil || id != 11 {
		t.Fatalf("self-assigned after gap: %d, %v", id, err)
	}
}

func TestRotationAndRecoveryAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: nearly every append rotates.
	l, _, err := Open(dir, Options{Sync: SyncAlways, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := l.Append(0, []Op{{U: int32(i), V: int32(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Rotations == 0 {
		t.Fatalf("no rotations at a 64-byte threshold: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, found %v", segs)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != 20 {
		t.Fatalf("recovered %d batches across segments, want 20", len(rec.Batches))
	}
}

// TestTornTailTruncated: a partial trailing record (the crash interrupted
// the write, so it was never acknowledged) is dropped, everything before
// it survives.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 3, 7, 9, 12} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, _, err := Open(dir, Options{Sync: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if _, err := l.Append(0, []Op{{U: int32(i), V: int32(i + 1)}}); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
			if len(segs) != 1 {
				t.Fatalf("want one segment, got %v", segs)
			}
			// Simulate the torn write: append a prefix of a valid record.
			full := appendRecord(nil, 6, []Op{{U: 100, V: 200}})
			f, err := os.OpenFile(segs[0], os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(full[:cut]); err != nil {
				t.Fatal(err)
			}
			f.Close()

			_, rec, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("recovery rejected torn tail: %v", err)
			}
			if len(rec.Batches) != 5 {
				t.Fatalf("recovered %d batches, want 5", len(rec.Batches))
			}
			if rec.TornBytes != int64(cut) {
				t.Fatalf("torn bytes %d, want %d", rec.TornBytes, cut)
			}
			// The tail is gone from disk too: a second recovery is clean.
			_, rec2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rec2.TornBytes != 0 || len(rec2.Batches) != 5 {
				t.Fatalf("second recovery: torn=%d batches=%d", rec2.TornBytes, len(rec2.Batches))
			}
		})
	}
}

// TestAppendAfterRecoveringHeaderOnlySegment: a crash that leaves a
// record-less trailing segment (rotation happened, no record survived)
// must not brick the log — the empty file is removed at recovery so the
// O_EXCL create of the same name succeeds when l.next reaches it again.
func TestAppendAfterRecoveringHeaderOnlySegment(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncAlways, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// SegmentBytes=1: every append rotates. Two appends leave segments
	// for ids 1 and 2; simulate the crash-after-rotation by hand-creating
	// the header-only segment for id 3.
	l.Append(0, []Op{{U: 1, V: 2}})
	l.Append(0, []Op{{U: 2, V: 3}})
	l.Close()
	f, err := os.OpenFile(segPath(dir, 3), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [segHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], segFormat)
	binary.LittleEndian.PutUint64(hdr[8:16], 3)
	f.Write(hdr[:])
	f.Close()

	l2, rec, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec.Batches) != 2 {
		t.Fatalf("recovered %d batches, want 2", len(rec.Batches))
	}
	if _, err := os.Stat(segPath(dir, 3)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("empty segment survived recovery: %v", err)
	}
	// The regression: this Append used to fail with O_EXCL "file exists".
	if id, err := l2.Append(0, []Op{{U: 3, V: 4}}); err != nil || id != 3 {
		t.Fatalf("append after empty-segment recovery: id=%d err=%v", id, err)
	}
}

// TestFailedAppendAnnulled: an append whose write/fsync fails must leave
// NO trace — a batch the caller was told failed must never come back on
// replay, and the id must not be consumed.
func TestFailedAppendAnnulled(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(0, []Op{{U: 1, V: 2}}); err != nil {
		t.Fatal(err)
	}
	// Force the flush to fail: close the underlying file behind the log's
	// back. The append must report failure AND annul itself.
	l.mu.Lock()
	l.f.Close()
	l.mu.Unlock()
	if _, err := l.Append(0, []Op{{U: 9, V: 9}}); err == nil {
		t.Fatal("append over a dead fd succeeded")
	}
	// The log fail-stops when annulment is impossible (closed fd can't be
	// truncated); every later append refuses rather than risking a
	// failed-then-replayed record.
	if _, err := l.Append(0, []Op{{U: 3, V: 4}}); err == nil {
		t.Fatal("append after failed annulment succeeded")
	}
	// On disk: only the acknowledged batch.
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != 1 || rec.Batches[0].ID != 1 {
		t.Fatalf("recovered %+v, want only batch 1", rec.Batches)
	}
}

// TestInteriorCorruptionFatal: a flipped bit in the middle of the log is
// NOT an interrupted write and must fail recovery loudly.
func TestInteriorCorruptionFatal(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncAlways, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(0, []Op{{U: int32(i), V: int32(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, got %v", segs)
	}
	// Flip a payload byte in the FIRST segment (not the last).
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("interior corruption recovered silently")
	}
}

func TestCheckpointTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncAlways, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 12; i++ {
		if _, err := l.Append(0, []Op{{U: int32(i), V: int32(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(before) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(before))
	}
	payload := []byte("state through 8")
	if err := l.Checkpoint(8, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(after) >= len(before) {
		t.Fatalf("checkpoint truncated nothing: %d -> %d segments", len(before), len(after))
	}
	cks, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.ck"))
	if len(cks) != 1 {
		t.Fatalf("want one checkpoint, got %v", cks)
	}
	if err := VerifyFileCRC(cks[0]); err != nil {
		t.Fatal(err)
	}
	rc, err := OpenCheckpoint(cks[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("checkpoint content %q, %v", got, err)
	}

	// Recovery from checkpoint + surviving tail: batches 9..12 replayable.
	l.Close()
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointThrough != 8 {
		t.Fatalf("checkpoint through %d, want 8", rec.CheckpointThrough)
	}
	var ids []uint64
	rec.Replay(rec.CheckpointThrough, func(id uint64, ops []Op) error {
		ids = append(ids, id)
		return nil
	})
	if len(ids) != 4 || ids[0] != 9 || ids[3] != 12 {
		t.Fatalf("tail replay visited %v, want [9 10 11 12]", ids)
	}
}

func TestCheckpointSupersedesOlder(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 6; i++ {
		if _, err := l.Append(0, []Op{{U: int32(i), V: int32(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	write := func(s string) func(io.Writer) error {
		return func(w io.Writer) error { _, err := io.WriteString(w, s); return err }
	}
	if err := l.Checkpoint(3, write("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(5, write("b")); err != nil {
		t.Fatal(err)
	}
	cks, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.ck"))
	if len(cks) != 1 || !strings.Contains(cks[0], fmt.Sprintf("%016x", 5)) {
		t.Fatalf("want only checkpoint 5, got %v", cks)
	}
	if l.LastCheckpoint() != 5 {
		t.Fatalf("last checkpoint %d", l.LastCheckpoint())
	}
	if err := l.Checkpoint(99, write("x")); err == nil {
		t.Fatal("checkpoint beyond last batch accepted")
	}
}

func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(0, []Op{{U: int32(i), V: int32(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	write := func(s string) func(io.Writer) error {
		return func(w io.Writer) error { _, err := io.WriteString(w, s); return err }
	}
	if err := l.Checkpoint(2, write("old")); err != nil {
		t.Fatal(err)
	}
	// Hand-write a newer checkpoint with a bad CRC.
	bad := ckptPath(dir, 4)
	var buf bytes.Buffer
	buf.WriteString("newer but broken")
	var trailer [8]byte
	binary.LittleEndian.PutUint32(trailer[0:4], ckptTrailerMagic)
	binary.LittleEndian.PutUint32(trailer[4:8], crc32.Checksum([]byte("wrong"), crcTable))
	buf.Write(trailer[:])
	if err := os.WriteFile(bad, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointThrough != 2 {
		t.Fatalf("fell back to checkpoint %d, want 2", rec.CheckpointThrough)
	}
	if _, err := os.Stat(bad + ".corrupt"); err != nil {
		t.Fatalf("corrupt checkpoint not set aside: %v", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
	for _, s := range []string{"always", "interval", "off", ""} {
		if _, err := ParseSyncPolicy(s); err != nil {
			t.Fatalf("%q: %v", s, err)
		}
	}
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(0, []Op{{U: 1, V: 2}}); err != nil {
		t.Fatal(err)
	}
	// The background loop must sync the append without an explicit call.
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval sync never ran")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent and the loop is gone.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(0, nil); err == nil {
		t.Fatal("append after close accepted")
	}
}

func TestErrCorruptClassification(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(0, []Op{{U: 1, V: 2}})
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	data, _ := os.ReadFile(segs[0])
	// Bad magic is corruption, not a torn tail.
	data[0] ^= 0xff
	os.WriteFile(segs[0], data, 0o644)
	_, _, err = Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}
