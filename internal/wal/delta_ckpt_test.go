package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeStr(s string) func(io.Writer) error {
	return func(w io.Writer) error { _, err := io.WriteString(w, s); return err }
}

func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append(0, []Op{{U: int32(i), V: int32(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeltaCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncAlways, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// A delta with no full base is a programming error.
	appendN(t, l, 4)
	if err := l.CheckpointDelta(2, writeStr("d")); err == nil {
		t.Fatal("delta with no full base accepted")
	}
	if err := l.Checkpoint(2, writeStr("base@2")); err != nil {
		t.Fatal(err)
	}

	// Deltas advance the public watermark but never touch segments.
	before, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err := l.CheckpointDelta(3, writeStr("delta@3")); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckpointDelta(4, writeStr("delta@4")); err != nil {
		t.Fatal(err)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(after) != len(before) {
		t.Fatalf("delta checkpoint truncated segments: %d -> %d", len(before), len(after))
	}
	if l.LastCheckpoint() != 4 || l.LastFullCheckpoint() != 2 {
		t.Fatalf("watermarks last=%d full=%d, want 4/2", l.LastCheckpoint(), l.LastFullCheckpoint())
	}
	// Only the newest delta file survives.
	dcks, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.dck"))
	if len(dcks) != 1 || !strings.Contains(dcks[0], fmt.Sprintf("%016x", 4)) {
		t.Fatalf("want only delta 4, got %v", dcks)
	}
	if got := l.Stats().Deltas; got != 2 {
		t.Fatalf("delta counter %d, want 2", got)
	}

	// Recovery hands back base + newest delta, batches above the delta.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir, Options{Sync: SyncAlways, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointThrough != 2 || rec.DeltaThrough != 4 {
		t.Fatalf("recovered through %d/%d, want 2/4", rec.CheckpointThrough, rec.DeltaThrough)
	}
	if rec.DeltaPath == "" {
		t.Fatal("no DeltaPath recovered")
	}
	if got := readCkpt(t, rec.DeltaPath); got != "delta@4" {
		t.Fatalf("delta payload %q", got)
	}
	if got := readCkpt(t, rec.CheckpointPath); got != "base@2" {
		t.Fatalf("base payload %q", got)
	}
	var ids []uint64
	rec.Replay(rec.DeltaThrough, func(id uint64, ops []Op) error { ids = append(ids, id); return nil })
	if len(ids) != 0 {
		t.Fatalf("tail above delta: %v", ids)
	}

	// A full checkpoint at/above the delta subsumes it: the .dck is
	// removed now and stays gone across reopen.
	appendN(t, l2, 2)
	if err := l2.Checkpoint(6, writeStr("base@6")); err != nil {
		t.Fatal(err)
	}
	if l2.LastCheckpoint() != 6 || l2.LastFullCheckpoint() != 6 {
		t.Fatalf("watermarks after full: %d/%d", l2.LastCheckpoint(), l2.LastFullCheckpoint())
	}
	dcks, _ = filepath.Glob(filepath.Join(dir, "checkpoint-*.dck"))
	if len(dcks) != 0 {
		t.Fatalf("full checkpoint left deltas behind: %v", dcks)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, rec3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if rec3.CheckpointThrough != 6 || rec3.DeltaThrough != 0 || rec3.DeltaPath != "" {
		t.Fatalf("post-subsume recovery: %+v", rec3)
	}
}

func readCkpt(t *testing.T, path string) string {
	t.Helper()
	rc, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDeltaOrphanAndStaleCleanup covers the scan-side hygiene: a delta
// older than the newest full base is removed as subsumed, and a delta
// whose base vanished is set aside as .orphan rather than trusted.
func TestDeltaOrphanAndStaleCleanup(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 6)
	if err := l.Checkpoint(2, writeStr("base@2")); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckpointDelta(3, writeStr("delta@3")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Simulate a crash between a new full checkpoint landing and the old
	// delta's removal: hand-write a valid full checkpoint at 5.
	writeFileCRCPath := ckptPath(dir, 5)
	if err := writeFileCRC(dir, writeFileCRCPath, writeStr("base@5")); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointThrough != 5 || rec.DeltaPath != "" {
		t.Fatalf("stale delta survived: %+v", rec)
	}
	if ds, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.dck")); len(ds) != 0 {
		t.Fatalf("subsumed delta not removed: %v", ds)
	}

	// Now the orphan case: a delta whose full base is gone.
	if err := writeFileCRC(dir, deltaPath(dir, 6), writeStr("delta@6")); err != nil {
		t.Fatal(err)
	}
	for _, ck := range glob(t, dir, "checkpoint-*.ck") {
		os.Remove(ck)
	}
	_, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.DeltaPath != "" || rec2.CheckpointPath != "" {
		t.Fatalf("orphan delta trusted: %+v", rec2)
	}
	if _, err := os.Stat(deltaPath(dir, 6) + ".orphan"); err != nil {
		t.Fatalf("orphan delta not set aside: %v", err)
	}

	// And the corrupt case: a delta that fails CRC is set aside too.
	dir2 := t.TempDir()
	l2, _, err := Open(dir2, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l2, 3)
	if err := l2.Checkpoint(1, writeStr("base@1")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if err := os.WriteFile(deltaPath(dir2, 2), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec3, err := Open(dir2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec3.DeltaPath != "" || rec3.CheckpointThrough != 1 {
		t.Fatalf("corrupt delta trusted: %+v", rec3)
	}
	if _, err := os.Stat(deltaPath(dir2, 2) + ".corrupt"); err != nil {
		t.Fatalf("corrupt delta not set aside: %v", err)
	}
}

func glob(t *testing.T, dir, pat string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, pat))
	if err != nil {
		t.Fatal(err)
	}
	return m
}
