// Package wal is the durable write plane's append-only log: every edge
// batch the service acknowledges is framed, checksummed and written here
// BEFORE it is applied to the in-memory store, so a crash loses nothing a
// client was told succeeded.
//
// The log is segmented. Each segment file (wal-<first>.seg, named by the
// first batch id it may contain, zero-padded hex) starts with a fixed
// header and carries a sequence of records:
//
//	segment header:  u32 magic | u32 format | u64 first batch id
//	record frame:    u32 payload length | u32 CRC32C(payload) | payload
//	record payload:  u64 batch id | u32 op count | ops × (u8 kind, u32 u, u32 v)
//
// All integers are little-endian; the CRC is Castagnoli (the polynomial
// with hardware support on both amd64 and arm64). Batch ids increase
// monotonically across the whole log and are never reused — they are the
// apply-once watermark the rest of the write plane keys on.
//
// Durability is a policy, not a constant: SyncAlways fsyncs every append
// before it returns (an acknowledged write is on stable storage),
// SyncInterval lets a background loop fsync every SyncEvery (bounded loss
// window, near-zero per-append cost), SyncOff leaves flushing to the OS
// (benchmarks, bulk loads). Rotation closes a segment past SegmentBytes
// and starts the next, so checkpoint truncation reclaims space in whole
// files.
//
// Checkpoints are the log's garbage collector: Checkpoint durably writes
// a caller-provided state spill covering every batch through some id
// (checkpoint-<through>.ck, written via temp file + rename), then deletes
// the segments that id fully covers. Recovery (Open on a non-empty
// directory) locates the newest intact checkpoint, truncates a torn tail
// off the last segment — a partial record can only be a write the crash
// interrupted, which was never acknowledged — and exposes the surviving
// records for replay.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"probesim/internal/graph"
)

// Op is one edge mutation in a logged batch.
type Op struct {
	Remove bool
	U, V   graph.NodeID
}

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs before Append returns: an acknowledged batch
	// survives power loss. The default, and the only policy under which
	// the crash-recovery property ("every 200 is recovered") is exact.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background loop every Options.SyncEvery:
	// a crash can lose at most that window of acknowledged batches.
	SyncInterval
	// SyncOff never fsyncs explicitly; the OS flushes when it pleases.
	SyncOff
)

// ParseSyncPolicy maps the -fsync flag values onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off", "none":
		return SyncOff, nil
	}
	return SyncAlways, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options configures a Log. The zero value means SyncAlways, a 64 MiB
// rotation threshold and a 100ms background-sync interval.
type Options struct {
	Sync         SyncPolicy
	SyncEvery    time.Duration // SyncInterval cadence; <= 0 means 100ms
	SegmentBytes int64         // rotation threshold; <= 0 means 64 MiB
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

const (
	segMagic      = 0x50535747 // "PSWG"
	segFormat     = 1
	segHeaderSize = 16
	frameHeader   = 8 // u32 len | u32 crc

	segPrefix   = "wal-"
	segSuffix   = ".seg"
	ckptPrefix  = "checkpoint-"
	ckptSuffix  = ".ck"
	deltaSuffix = ".dck"

	// maxRecordBytes bounds one record's payload: a corrupt length prefix
	// must not get to allocate the machine. 9 bytes/op puts the op limit
	// well past any batch the HTTP layer admits.
	maxRecordBytes = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record that is structurally present but fails its
// checksum or decoding somewhere OTHER than the log's torn tail — real
// corruption recovery must not paper over.
var ErrCorrupt = errors.New("wal: corrupt record")

// Batch is one recovered record.
type Batch struct {
	ID  uint64
	Ops []Op
}

// Recovery describes what Open found on disk.
type Recovery struct {
	// CheckpointPath is the newest intact FULL checkpoint file, "" if
	// none. When DeltaPath is also set, this file is the delta's base.
	CheckpointPath string
	// CheckpointThrough is the batch id the checkpoint covers through.
	CheckpointThrough uint64
	// DeltaPath is the newest intact delta checkpoint newer than the
	// full one, "" if none. A delta is cumulative against its base full
	// checkpoint: recovery decodes CheckpointPath, overlays DeltaPath,
	// then replays the log above DeltaThrough. A corrupt or orphaned
	// delta is set aside and recovery falls back to the base plus a
	// longer replay — delta checkpoints never truncate segments, so the
	// log above the base is always intact.
	DeltaPath string
	// DeltaThrough is the batch id the delta covers through.
	DeltaThrough uint64
	// Batches holds every intact record found in the segments, ascending
	// by id. Replay applies the suffix above the store's own watermark.
	Batches []Batch
	// TornBytes is how many trailing bytes were dropped from the last
	// segment as an interrupted (unacknowledged) write.
	TornBytes int64
}

// Replay invokes fn for every recovered batch with id > after, in order.
func (r *Recovery) Replay(after uint64, fn func(id uint64, ops []Op) error) error {
	for _, b := range r.Batches {
		if b.ID <= after {
			continue
		}
		if err := fn(b.ID, b.Ops); err != nil {
			return err
		}
	}
	return nil
}

// Stats are the log's observability counters for /stats and /metrics.
type Stats struct {
	Appends        int64 // batches appended this process lifetime
	AppendedBytes  int64
	Syncs          int64 // explicit fsyncs issued
	Rotations      int64 // segments started (beyond the first)
	Checkpoints    int64 // full checkpoints written this process lifetime
	Deltas         int64 // delta checkpoints written this process lifetime
	SegmentsLive   int64 // segment files currently on disk
	SegmentBytes   int64 // bytes across live segments
	LastBatch      uint64
	LastCheckpoint uint64 // batch id the newest checkpoint (full or delta) covers through
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; appends serialize internally.
type Log struct {
	dir string
	opt Options

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	size     int64 // bytes written to the active segment
	next     uint64
	segments []segment // ascending by first id; last is active
	dirty    bool      // buffered/unsynced appends (interval & off policies)
	closed   bool

	// lastCkpt is the public replay-debt watermark: the through id of
	// the newest checkpoint of either kind. lastFull/lastDelta track the
	// files themselves so supersession removes the right ones.
	lastCkpt  atomic.Uint64
	lastFull  atomic.Uint64
	lastDelta atomic.Uint64
	stopSync  chan struct{}
	syncDone  chan struct{}

	appends       atomic.Int64
	appendedBytes atomic.Int64
	syncs         atomic.Int64
	rotations     atomic.Int64
	checkpoints   atomic.Int64
	deltaCkpts    atomic.Int64

	// subs fire after every successful Append (never for failed/annulled
	// appends), under l.mu and in subscription order. See Subscribe.
	subs []func(id uint64, ops []Op)
}

type segment struct {
	path  string
	first uint64
	// last is the highest record id observed in the segment; maintained
	// for closed segments so truncation knows what a checkpoint covers.
	last uint64
	size int64
}

// Open opens (creating if needed) the log in dir and recovers whatever
// state a previous process left: the newest intact checkpoint and every
// intact record, with a torn tail truncated off the last segment. The
// returned Log is positioned to append the next batch id after everything
// recovered; appending always starts a fresh segment, so a recovered file
// is never written again.
func Open(dir string, opt Options) (*Log, *Recovery, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opt: opt, next: 1}
	rec := &Recovery{}
	if err := l.scanCheckpoints(rec); err != nil {
		return nil, nil, err
	}
	if err := l.scanSegments(rec); err != nil {
		return nil, nil, err
	}
	through := rec.CheckpointThrough
	if rec.DeltaThrough > through {
		through = rec.DeltaThrough
	}
	if through >= l.next {
		l.next = through + 1
	}
	l.lastCkpt.Store(through)
	l.lastFull.Store(rec.CheckpointThrough)
	l.lastDelta.Store(rec.DeltaThrough)
	if opt.Sync == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, rec, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// NextBatch returns the id the next Append will use by default.
func (l *Log) NextBatch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

func segPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix))
}

func ckptPath(dir string, through uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", ckptPrefix, through, ckptSuffix))
}

func deltaPath(dir string, through uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", ckptPrefix, through, deltaSuffix))
}

// parseSeqName extracts the hex sequence number out of prefix<hex>suffix.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// scanCheckpoints finds the newest full checkpoint whose trailer
// validates, plus the newest still-newer delta, and deletes superseded
// ones. A checkpoint that fails validation is renamed aside rather than
// deleted — it is evidence.
func (l *Log) scanCheckpoints(rec *Recovery) error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var fulls, deltas []uint64
	for _, e := range entries {
		if v, ok := parseSeqName(e.Name(), ckptPrefix, ckptSuffix); ok {
			fulls = append(fulls, v)
		} else if v, ok := parseSeqName(e.Name(), ckptPrefix, deltaSuffix); ok {
			deltas = append(deltas, v)
		}
	}
	sort.Slice(fulls, func(i, j int) bool { return fulls[i] > fulls[j] })
	for _, through := range fulls {
		path := ckptPath(l.dir, through)
		if rec.CheckpointPath == "" {
			if err := VerifyFileCRC(path); err == nil {
				rec.CheckpointPath = path
				rec.CheckpointThrough = through
				continue
			}
			// Unreadable newest checkpoint: set it aside and fall back to
			// the next one; the log tail still covers the gap.
			_ = os.Rename(path, path+".corrupt")
			continue
		}
		_ = os.Remove(path)
	}
	// Deltas are cumulative against the chosen full base: only the
	// newest one newer than the base matters. Anything at or below the
	// base is subsumed by it; a delta with no usable base at all cannot
	// be applied (segments still cover it, so nothing is lost).
	sort.Slice(deltas, func(i, j int) bool { return deltas[i] > deltas[j] })
	for _, through := range deltas {
		path := deltaPath(l.dir, through)
		switch {
		case through <= rec.CheckpointThrough:
			_ = os.Remove(path)
		case rec.DeltaPath != "":
			_ = os.Remove(path)
		case rec.CheckpointPath == "":
			_ = os.Rename(path, path+".orphan")
		default:
			if err := VerifyFileCRC(path); err == nil {
				rec.DeltaPath = path
				rec.DeltaThrough = through
			} else {
				_ = os.Rename(path, path+".corrupt")
			}
		}
	}
	return nil
}

// scanSegments reads every segment in order, collecting intact records
// and truncating a torn tail off the LAST segment. Corruption anywhere
// else is fatal: it cannot be explained by an interrupted final write.
func (l *Log) scanSegments(rec *Recovery) error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var firsts []uint64
	for _, e := range entries {
		if v, ok := parseSeqName(e.Name(), segPrefix, segSuffix); ok {
			firsts = append(firsts, v)
		}
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	for i, first := range firsts {
		path := segPath(l.dir, first)
		isLast := i == len(firsts)-1
		seg := segment{path: path, first: first}
		good, torn, err := readSegment(path, first, func(b Batch) {
			rec.Batches = append(rec.Batches, b)
			seg.last = b.ID
			if b.ID >= l.next {
				l.next = b.ID + 1
			}
		})
		if err != nil {
			if !isLast || !errors.Is(err, errTornTail) {
				return fmt.Errorf("wal: segment %s: %w", filepath.Base(path), err)
			}
			// Interrupted final write: drop it. The batch was never
			// acknowledged (Append had not returned), so truncating is
			// the CORRECT recovery, not data loss.
			rec.TornBytes += torn
			if terr := os.Truncate(path, good); terr != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(path), terr)
			}
		}
		if seg.last == 0 {
			// A record-less segment (a rotation or first-append the crash
			// interrupted before any record survived) holds nothing — and
			// keeping the file would collide with the O_EXCL create when
			// l.next reaches its name again. Delete it.
			if rerr := os.Remove(path); rerr != nil {
				return fmt.Errorf("wal: removing empty segment %s: %w", filepath.Base(path), rerr)
			}
			continue
		}
		seg.size = good
		l.segments = append(l.segments, seg)
	}
	return nil
}

// errTornTail distinguishes an interrupted trailing write from interior
// corruption inside readSegment.
var errTornTail = errors.New("wal: torn tail")

// readSegment streams one segment's records into emit. It returns the
// byte offset of the last intact record's end and, when the segment ends
// mid-record or with a bad checksum, how many bytes dangle past it along
// with errTornTail (or ErrCorrupt for structural violations that cannot
// be an interrupted append, like ids out of order).
func readSegment(path string, first uint64, emit func(Batch)) (good int64, torn int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	size := fi.Size()
	br := bufio.NewReaderSize(f, 1<<20)
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		// A header-less segment can only be a file the crash cut off at
		// birth (created, nothing durable yet): treat the whole file as
		// torn tail rather than corruption.
		return 0, size, errTornTail
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != segMagic {
		return 0, 0, fmt.Errorf("%w: bad segment magic %#x", ErrCorrupt, binary.LittleEndian.Uint32(hdr[0:4]))
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != segFormat {
		return 0, 0, fmt.Errorf("%w: segment format %d, want %d", ErrCorrupt, v, segFormat)
	}
	if got := binary.LittleEndian.Uint64(hdr[8:16]); got != first {
		return 0, 0, fmt.Errorf("%w: segment header first id %d disagrees with name %d", ErrCorrupt, got, first)
	}
	good = segHeaderSize
	prev := uint64(0)
	var frame [frameHeader]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return good, 0, nil // clean end
			}
			return good, size - good, errTornTail
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		if n > maxRecordBytes {
			// A length this size is scribble, not an interrupted append —
			// unless it is the very tail, where a partial length write is
			// conceivable; either way nothing after it is trustworthy, and
			// only tail position makes it survivable.
			return good, size - good, errTornTail
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return good, size - good, errTornTail
		}
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(frame[4:8]) {
			return good, size - good, errTornTail
		}
		b, err := decodeRecord(payload)
		if err != nil {
			return good, 0, err
		}
		if b.ID < first || (prev != 0 && b.ID <= prev) {
			return good, 0, fmt.Errorf("%w: batch id %d after %d in segment starting at %d", ErrCorrupt, b.ID, prev, first)
		}
		prev = b.ID
		emit(b)
		good += frameHeader + int64(n)
	}
}

func decodeRecord(p []byte) (Batch, error) {
	if len(p) < 12 {
		return Batch{}, fmt.Errorf("%w: record of %d bytes", ErrCorrupt, len(p))
	}
	id := binary.LittleEndian.Uint64(p[0:8])
	n := binary.LittleEndian.Uint32(p[8:12])
	if int64(len(p)-12) != int64(n)*9 {
		return Batch{}, fmt.Errorf("%w: record claims %d ops in %d bytes", ErrCorrupt, n, len(p))
	}
	if id == 0 {
		return Batch{}, fmt.Errorf("%w: record with batch id 0", ErrCorrupt)
	}
	ops := make([]Op, n)
	off := 12
	for i := range ops {
		ops[i] = Op{
			Remove: p[off] == 1,
			U:      graph.NodeID(int32(binary.LittleEndian.Uint32(p[off+1:]))),
			V:      graph.NodeID(int32(binary.LittleEndian.Uint32(p[off+5:]))),
		}
		off += 9
	}
	return Batch{ID: id, Ops: ops}, nil
}

func appendRecord(b []byte, id uint64, ops []Op) []byte {
	payloadLen := 12 + 9*len(ops)
	b = binary.LittleEndian.AppendUint32(b, uint32(payloadLen))
	b = append(b, 0, 0, 0, 0) // CRC placeholder
	start := len(b)
	b = binary.LittleEndian.AppendUint64(b, id)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ops)))
	for _, op := range ops {
		k := byte(0)
		if op.Remove {
			k = 1
		}
		b = append(b, k)
		b = binary.LittleEndian.AppendUint32(b, uint32(op.U))
		b = binary.LittleEndian.AppendUint32(b, uint32(op.V))
	}
	crc := crc32.Checksum(b[start:], crcTable)
	binary.LittleEndian.PutUint32(b[start-4:start], crc)
	return b
}

// openSegmentLocked starts a fresh segment whose first id is l.next.
func (l *Log) openSegmentLocked() error {
	if l.f != nil {
		if err := l.closeSegmentLocked(); err != nil {
			return err
		}
		l.rotations.Add(1)
	}
	path := segPath(l.dir, l.next)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [segHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], segFormat)
	binary.LittleEndian.PutUint64(hdr[8:16], l.next)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.size = segHeaderSize
	l.segments = append(l.segments, segment{path: path, first: l.next, size: segHeaderSize})
	// Make the new name durable so recovery sees the segment even if no
	// record ever syncs into it.
	if l.opt.Sync != SyncOff {
		if err := syncDir(l.dir); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) closeSegmentLocked() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if l.opt.Sync != SyncOff && l.dirty {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.syncs.Add(1)
		l.dirty = false
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.segments[len(l.segments)-1].size = l.size
	l.f = nil
	l.w = nil
	return nil
}

// Append logs one batch and returns its id. id 0 self-assigns the next
// id; a non-zero id (router-assigned, for worker logs) must be >= the
// next id — replays of already-logged ids are the CALLER's job to filter
// via the store watermark, the log itself never rewrites history. Under
// SyncAlways the record is on stable storage when Append returns; that
// is the moment the batch may be acknowledged.
func (l *Log) Append(id uint64, ops []Op) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	if id == 0 {
		id = l.next
	} else if id < l.next {
		return 0, fmt.Errorf("wal: batch id %d not monotonic (next is %d)", id, l.next)
	}
	if l.f == nil || l.size >= l.opt.SegmentBytes {
		// The segment's first id must equal l.next at creation.
		l.next = id
		if err := l.openSegmentLocked(); err != nil {
			return 0, err
		}
	}
	prevSize := l.size
	prevLast := l.segments[len(l.segments)-1].last
	rec := appendRecord(nil, id, ops)
	fail := func(err error) (uint64, error) {
		// A failed append must be ANNULLED, not abandoned: the record may
		// have partially reached the file, and a batch the caller was told
		// FAILED must never be replayed on the next boot. Truncate back to
		// the pre-append offset and rewind the bookkeeping; if even that
		// fails, fail-stop the log — refusing all further appends is
		// strictly better than acknowledging writes whose neighbors on
		// disk are records the clients saw rejected.
		l.w = bufio.NewWriterSize(l.f, 1<<16) // drop buffered bytes
		if terr := l.f.Truncate(prevSize); terr != nil {
			l.closed = true
			return 0, fmt.Errorf("wal: append failed (%v) and could not be annulled (%v); log fail-stopped", err, terr)
		}
		if _, serr := l.f.Seek(prevSize, io.SeekStart); serr != nil {
			l.closed = true
			return 0, fmt.Errorf("wal: append failed (%v) and could not be annulled (%v); log fail-stopped", err, serr)
		}
		l.size = prevSize
		l.segments[len(l.segments)-1].size = prevSize
		l.segments[len(l.segments)-1].last = prevLast
		return 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := l.w.Write(rec); err != nil {
		return fail(err)
	}
	l.size += int64(len(rec))
	l.segments[len(l.segments)-1].size = l.size
	l.segments[len(l.segments)-1].last = id
	if l.opt.Sync == SyncAlways {
		if err := l.w.Flush(); err != nil {
			return fail(err)
		}
		if err := l.f.Sync(); err != nil {
			return fail(err)
		}
		l.syncs.Add(1)
	} else {
		l.dirty = true
	}
	l.next = id + 1
	l.appends.Add(1)
	l.appendedBytes.Add(int64(len(rec)))
	for _, fn := range l.subs {
		fn(id, ops)
	}
	return id, nil
}

// Subscribe registers fn to run after every successfully durable Append
// with the batch's id and ops — the append-side watermark feed (derived
// state such as the hot-source tier compares it against the applied
// watermark to expose write-plane lag). Failed (annulled) appends never
// fire it. fn runs under the log's lock: it must be fast, must not call
// back into the log, and must not retain ops past the call. Subscribe
// during wiring, before writes flow.
func (l *Log) Subscribe(fn func(id uint64, ops []Op)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.subs = append(l.subs, fn)
}

// Sync flushes and fsyncs the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.f == nil || !l.dirty {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.syncs.Add(1)
	l.dirty = false
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opt.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// Checkpoint durably writes a state spill covering every batch through
// the given id and truncates the segments it fully covers. write receives
// a buffered writer into a temp file; the file becomes visible (via
// rename) only after it is fully written, CRC-trailed and fsynced, so a
// crash mid-checkpoint leaves the previous checkpoint intact. through
// must not exceed the last appended batch's id.
func (l *Log) Checkpoint(through uint64, write func(io.Writer) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: log closed")
	}
	if through >= l.next {
		l.mu.Unlock()
		return fmt.Errorf("wal: checkpoint through %d beyond last batch %d", through, l.next-1)
	}
	l.mu.Unlock()
	// The spill itself runs outside the log mutex: it can be large, and
	// appends must not stall behind it. Multiple concurrent Checkpoint
	// calls would race the temp file; callers (the checkpointer loop)
	// serialize themselves.
	if err := writeFileCRC(l.dir, ckptPath(l.dir, through), write); err != nil {
		return err
	}
	l.checkpoints.Add(1)
	l.mu.Lock()
	defer l.mu.Unlock()
	// Remove the superseded checkpoints and the fully covered segments. A
	// closed segment is covered when its highest record id is <= through
	// (an empty closed segment — a rotation artifact — holds nothing and
	// always goes); the active segment never goes.
	if prev := l.lastCkpt.Load(); through < prev {
		// A stale spill lost the race to a newer checkpoint: it covers a
		// subset of what prev does, so the file it just wrote is garbage.
		_ = os.Remove(ckptPath(l.dir, through))
		return nil
	}
	l.lastCkpt.Store(through)
	if pf := l.lastFull.Load(); pf != through {
		l.lastFull.Store(through)
		if pf > 0 {
			_ = os.Remove(ckptPath(l.dir, pf))
		}
	}
	// A full checkpoint subsumes any delta at or below it.
	if pd := l.lastDelta.Load(); pd > 0 && pd <= through {
		l.lastDelta.Store(0)
		_ = os.Remove(deltaPath(l.dir, pd))
	}
	keep := l.segments[:0]
	for i, seg := range l.segments {
		active := i == len(l.segments)-1
		if !active && seg.last <= through {
			_ = os.Remove(seg.path)
			continue
		}
		keep = append(keep, seg)
	}
	l.segments = keep
	return nil
}

// CheckpointDelta durably writes a DELTA spill — state the caller
// encodes relative to the last full checkpoint — covering every batch
// through the given id. Deltas bound replay debt like full checkpoints
// (LastCheckpoint and AppendsSinceCheckpoint advance) but never truncate
// segments: the log above the full base survives until the next full
// checkpoint, so recovery can always fall back to base + replay if the
// delta is lost. Only the newest delta is kept — the caller must encode
// each delta cumulatively against the same full base.
func (l *Log) CheckpointDelta(through uint64, write func(io.Writer) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: log closed")
	}
	if through >= l.next {
		l.mu.Unlock()
		return fmt.Errorf("wal: checkpoint through %d beyond last batch %d", through, l.next-1)
	}
	l.mu.Unlock()
	if l.lastFull.Load() == 0 {
		return fmt.Errorf("wal: delta checkpoint with no full base")
	}
	if err := writeFileCRC(l.dir, deltaPath(l.dir, through), write); err != nil {
		return err
	}
	l.deltaCkpts.Add(1)
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev := l.lastCkpt.Load(); through < prev {
		_ = os.Remove(deltaPath(l.dir, through))
		return nil
	}
	l.lastCkpt.Store(through)
	if pd := l.lastDelta.Load(); pd > 0 && pd != through {
		_ = os.Remove(deltaPath(l.dir, pd))
	}
	l.lastDelta.Store(through)
	return nil
}

// LastFullCheckpoint returns the batch id the newest FULL checkpoint
// covers through (0 = none) — the base every delta is encoded against.
func (l *Log) LastFullCheckpoint() uint64 { return l.lastFull.Load() }

// LastCheckpoint returns the batch id the newest checkpoint covers
// through (0 = none).
func (l *Log) LastCheckpoint() uint64 { return l.lastCkpt.Load() }

// AppendsSinceCheckpoint estimates the replay debt: batches appended
// beyond the newest checkpoint's coverage.
func (l *Log) AppendsSinceCheckpoint() int64 {
	l.mu.Lock()
	last := l.next - 1
	l.mu.Unlock()
	ck := l.lastCkpt.Load()
	if last <= ck {
		return 0
	}
	return int64(last - ck)
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	segs := int64(len(l.segments))
	var segBytes int64
	for _, s := range l.segments {
		segBytes += s.size
	}
	last := l.next - 1
	l.mu.Unlock()
	return Stats{
		Appends:        l.appends.Load(),
		AppendedBytes:  l.appendedBytes.Load(),
		Syncs:          l.syncs.Load(),
		Rotations:      l.rotations.Load(),
		Checkpoints:    l.checkpoints.Load(),
		Deltas:         l.deltaCkpts.Load(),
		SegmentsLive:   segs,
		SegmentBytes:   segBytes,
		LastBatch:      last,
		LastCheckpoint: l.lastCkpt.Load(),
	}
}

// Close flushes, fsyncs (under any policy — a graceful shutdown should
// not lose the interval window) and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.f != nil {
		if ferr := l.w.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		if ferr := l.f.Sync(); ferr != nil && err == nil {
			err = ferr
		}
		if ferr := l.f.Close(); ferr != nil && err == nil {
			err = ferr
		}
		l.f = nil
		l.w = nil
	}
	stop := l.stopSync
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.syncDone
	}
	return err
}

// writeFileCRC writes path atomically: content plus a CRC32C trailer go
// to a temp file in dir, fsync, rename, fsync dir.
func writeFileCRC(dir, path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(dir, "tmp-ckpt-*")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	tmpPath := tmp.Name()
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmpPath)
		}
	}()
	cw := &crcWriter{w: bufio.NewWriterSize(tmp, 1<<20)}
	if err := write(cw); err != nil {
		return fmt.Errorf("wal: checkpoint spill: %w", err)
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint32(trailer[0:4], ckptTrailerMagic)
	binary.LittleEndian.PutUint32(trailer[4:8], cw.crc)
	if _, err := cw.w.Write(trailer[:]); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := cw.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		tmp = nil
		return fmt.Errorf("wal: %w", err)
	}
	tmp = nil
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(dir)
}

const ckptTrailerMagic = 0x50534b43 // "PSKC"

type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crcTable, p[:n])
	return n, err
}

// VerifyFileCRC checks a checkpoint file's trailer against its content.
func VerifyFileCRC(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() < 8 {
		return fmt.Errorf("%w: checkpoint of %d bytes", ErrCorrupt, fi.Size())
	}
	body := fi.Size() - 8
	br := bufio.NewReaderSize(io.LimitReader(f, body), 1<<20)
	var crc uint32
	buf := make([]byte, 1<<16)
	for {
		n, err := br.Read(buf)
		crc = crc32.Update(crc, crcTable, buf[:n])
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return err
		}
	}
	var trailer [8]byte
	if _, err := f.ReadAt(trailer[:], body); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(trailer[0:4]) != ckptTrailerMagic {
		return fmt.Errorf("%w: checkpoint trailer magic %#x", ErrCorrupt, binary.LittleEndian.Uint32(trailer[0:4]))
	}
	if got := binary.LittleEndian.Uint32(trailer[4:8]); got != crc {
		return fmt.Errorf("%w: checkpoint CRC %#x, want %#x", ErrCorrupt, got, crc)
	}
	return nil
}

// OpenCheckpoint opens a verified checkpoint's content for reading (the
// CRC trailer is excluded). Callers should have validated the CRC (Open
// does during recovery scan).
func OpenCheckpoint(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size() < 8 {
		f.Close()
		return nil, fmt.Errorf("%w: checkpoint of %d bytes", ErrCorrupt, fi.Size())
	}
	return &limitedCloser{Reader: io.LimitReader(f, fi.Size()-8), c: f}, nil
}

type limitedCloser struct {
	io.Reader
	c io.Closer
}

func (lc *limitedCloser) Close() error { return lc.c.Close() }

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
