package gen

// This file adds the structured generator families used by tests,
// examples, and the sensitivity experiments: deterministic topologies with
// analytically known SimRank structure (Complete, Grid) and two classical
// random models (Watts–Strogatz small worlds, stochastic block models)
// whose community/local-clustering structure exercises the "locally dense"
// regime §6.2 discusses.

import (
	"fmt"

	"probesim/internal/graph"
	"probesim/internal/xrand"
)

// Complete returns the complete directed graph on n nodes: every ordered
// pair except self-loops. Useful as the extreme "locally dense" fixture —
// every pair of walks re-meets constantly.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if err := g.AddEdge(graph.NodeID(u), graph.NodeID(v)); err != nil {
				panic(err)
			}
		}
	}
	return g
}

// Grid returns a rows×cols lattice with bidirectional edges between
// 4-neighbors. Node (r, c) has id r·cols + c.
func Grid(rows, cols int) *graph.Graph {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("gen: Grid(%d, %d): dimensions must be positive", rows, cols))
	}
	g := graph.New(rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := g.AddEdgeUndirected(id(r, c), id(r, c+1)); err != nil {
					panic(err)
				}
			}
			if r+1 < rows {
				if err := g.AddEdgeUndirected(id(r, c), id(r+1, c)); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

// WattsStrogatz returns a small-world graph: an undirected ring lattice
// where each node connects to its k nearest neighbors (k even), with each
// lattice edge rewired to a uniform random target with probability beta.
// Edges are stored bidirectionally. beta = 0 is the pure lattice, beta = 1
// approaches a random graph.
func WattsStrogatz(n, k int, beta float64, seed uint64) *graph.Graph {
	if n < 3 || k < 2 || k%2 != 0 || k >= n {
		panic(fmt.Sprintf("gen: WattsStrogatz(%d, %d): need n >= 3 and even k in [2, n)", n, k))
	}
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("gen: WattsStrogatz: beta = %v outside [0, 1]", beta))
	}
	rng := xrand.New(seed)
	// Track undirected edges both as an ordered list (so the emitted
	// adjacency order — and therefore every seeded walk downstream — is
	// reproducible) and as a set for duplicate checks during rewiring.
	type edge [2]graph.NodeID
	norm := func(u, v graph.NodeID) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}
	seen := make(map[edge]struct{}, n*k/2)
	var order []edge
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			e := norm(graph.NodeID(u), graph.NodeID((u+j)%n))
			if _, dup := seen[e]; !dup {
				seen[e] = struct{}{}
				order = append(order, e)
			}
		}
	}
	for i, e := range order {
		if !rng.Bernoulli(beta) {
			continue
		}
		// Rewire the far endpoint to a uniform non-neighbor.
		for tries := 0; tries < 32; tries++ {
			w := graph.NodeID(rng.Intn(n))
			if w == e[0] || w == e[1] {
				continue
			}
			cand := norm(e[0], w)
			if _, dup := seen[cand]; dup {
				continue
			}
			delete(seen, e)
			seen[cand] = struct{}{}
			order[i] = cand
			break
		}
	}
	g := graph.New(n)
	for _, e := range order {
		if err := g.AddEdgeUndirected(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	return g
}

// StochasticBlockModel returns a directed graph with len(sizes) communities:
// an ordered pair inside a community becomes an edge with probability pIn,
// one across communities with probability pOut. Block ids are assigned
// contiguously in input order. Community structure is the workload where
// SimRank-style similarity is most discriminative, which is what the
// recommendation example exercises.
func StochasticBlockModel(sizes []int, pIn, pOut float64, seed uint64) *graph.Graph {
	if len(sizes) == 0 {
		panic("gen: StochasticBlockModel: no communities")
	}
	if pIn < 0 || pIn > 1 || pOut < 0 || pOut > 1 {
		panic(fmt.Sprintf("gen: StochasticBlockModel: probabilities (%v, %v) outside [0, 1]", pIn, pOut))
	}
	n := 0
	block := []int{}
	for b, s := range sizes {
		if s < 1 {
			panic(fmt.Sprintf("gen: StochasticBlockModel: community %d has size %d", b, s))
		}
		for i := 0; i < s; i++ {
			block = append(block, b)
		}
		n += s
	}
	g := graph.New(n)
	rng := xrand.New(seed)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			p := pOut
			if block[u] == block[v] {
				p = pIn
			}
			if rng.Bernoulli(p) {
				if err := g.AddEdge(graph.NodeID(u), graph.NodeID(v)); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

// BlockOf returns the community assignment used by StochasticBlockModel for
// the given sizes: out[v] is v's block index.
func BlockOf(sizes []int) []int {
	var out []int
	for b, s := range sizes {
		for i := 0; i < s; i++ {
			out = append(out, b)
		}
	}
	return out
}
