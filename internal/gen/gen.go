// Package gen provides seeded synthetic graph generators. The module is
// offline, so the benchmark datasets of Table 3 (SNAP/LAW downloads) are
// replaced by generators that match each graph's type and degree character;
// see internal/dataset for the per-dataset mapping and DESIGN.md §5 for the
// substitution rationale.
package gen

import (
	"fmt"

	"probesim/internal/graph"
	"probesim/internal/xrand"
)

// ErdosRenyi returns a directed G(n, m) graph: m distinct uniform edges,
// no self-loops. It panics if m exceeds the number of possible edges.
func ErdosRenyi(n int, m int64, seed uint64) *graph.Graph {
	maxEdges := int64(n) * int64(n-1)
	if m > maxEdges {
		panic(fmt.Sprintf("gen: ErdosRenyi(%d, %d): too many edges", n, m))
	}
	g := graph.New(n)
	rng := xrand.New(seed)
	seen := make(map[int64]struct{}, m)
	for int64(g.NumEdges()) < m {
		u := rng.Int31n(int32(n))
		v := rng.Int31n(int32(n))
		if u == v {
			continue
		}
		key := int64(u)*int64(n) + int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return g
}

// PreferentialAttachment returns a directed scale-free graph: nodes arrive
// one at a time and emit outDeg edges whose targets are sampled
// proportionally to in-degree + 1 (so early nodes become hubs, giving the
// power-law in-degree distribution of social graphs).
func PreferentialAttachment(n, outDeg int, seed uint64) *graph.Graph {
	if n < 2 || outDeg < 1 {
		panic("gen: PreferentialAttachment needs n >= 2, outDeg >= 1")
	}
	g := graph.New(n)
	rng := xrand.New(seed)
	// targets holds one entry per (in-degree + 1) unit of attachment mass.
	targets := make([]graph.NodeID, 0, n*(outDeg+1))
	targets = append(targets, 0)
	for u := 1; u < n; u++ {
		deg := outDeg
		if deg > u {
			deg = u
		}
		for e := 0; e < deg; e++ {
			v := targets[rng.Intn(len(targets))]
			if v == graph.NodeID(u) || g.HasEdge(graph.NodeID(u), v) {
				// Retry a few times, then fall back to uniform to keep the
				// edge count exact.
				ok := false
				for retry := 0; retry < 8; retry++ {
					v = targets[rng.Intn(len(targets))]
					if v != graph.NodeID(u) && !g.HasEdge(graph.NodeID(u), v) {
						ok = true
						break
					}
				}
				if !ok {
					for {
						v = rng.Int31n(int32(u))
						if !g.HasEdge(graph.NodeID(u), v) {
							break
						}
					}
				}
			}
			if err := g.AddEdge(graph.NodeID(u), v); err != nil {
				panic(err)
			}
			targets = append(targets, v)
		}
		targets = append(targets, graph.NodeID(u))
	}
	return g
}

// UndirectedPA is the undirected variant of PreferentialAttachment (both
// directions inserted), matching collaboration networks like HepTh.
func UndirectedPA(n, deg int, seed uint64) *graph.Graph {
	base := PreferentialAttachment(n, deg, seed)
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for _, v := range base.OutNeighbors(graph.NodeID(u)) {
			// Insert each undirected edge once (base has one direction).
			if err := g.AddEdgeUndirected(graph.NodeID(u), v); err != nil {
				panic(err)
			}
		}
	}
	return g
}

// RMAT returns a directed R-MAT (recursive matrix / Kronecker) graph with
// 2^scale nodes and m edges, the standard synthetic stand-in for web and
// social graphs. (a, b, c, d) are the quadrant probabilities (a+b+c+d = 1);
// social graphs use skewed settings like (0.57, 0.19, 0.19, 0.05). Self
// loops are skipped and parallel edges dropped, so the realized edge count
// can fall slightly below m on dense settings; the generator retries until
// the requested count is met or attempts are exhausted.
func RMAT(scale int, m int64, a, b, c, d float64, seed uint64) *graph.Graph {
	if scale < 1 || scale > 30 {
		panic("gen: RMAT scale out of range [1, 30]")
	}
	sum := a + b + c + d
	if sum < 0.999 || sum > 1.001 {
		panic("gen: RMAT quadrant probabilities must sum to 1")
	}
	n := 1 << scale
	g := graph.New(n)
	rng := xrand.New(seed)
	seen := make(map[int64]struct{}, m)
	attempts := int64(0)
	maxAttempts := m * 20
	for int64(g.NumEdges()) < m && attempts < maxAttempts {
		attempts++
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			// Mild noise keeps the degree distribution from being too
			// regular across recursion levels.
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		key := int64(u)*int64(n) + int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		if err := g.AddEdge(graph.NodeID(u), graph.NodeID(v)); err != nil {
			panic(err)
		}
	}
	return g
}

// CorePeriphery mimics Wiki-Vote's structure (§6.1: over 60 % of nodes have
// zero in-degree while the rest form a dense subgraph): nCore nodes hold a
// dense Erdős–Rényi subgraph with coreEdges edges, and nPeriphery nodes
// each emit peripheryOut edges into the core but receive none.
func CorePeriphery(nCore, nPeriphery int, coreEdges int64, peripheryOut int, seed uint64) *graph.Graph {
	n := nCore + nPeriphery
	g := graph.New(n)
	rng := xrand.New(seed)
	seen := make(map[int64]struct{}, coreEdges)
	for int64(len(seen)) < coreEdges {
		u := rng.Int31n(int32(nCore))
		v := rng.Int31n(int32(nCore))
		if u == v {
			continue
		}
		key := int64(u)*int64(nCore) + int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	for p := 0; p < nPeriphery; p++ {
		u := graph.NodeID(nCore + p)
		for e := 0; e < peripheryOut; e++ {
			v := rng.Int31n(int32(nCore))
			if err := g.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	return g
}

// Reciprocate adds the reverse edge v -> u for each existing edge u -> v
// independently with probability p (skipping reverses that already exist).
// Preferential-attachment graphs are DAGs — reverse walks die at the
// zero-in-degree tail, which makes truncated-depth algorithms look
// unrealistically exact — while real social graphs have mutual links;
// reciprocation restores the cyclic structure with the stated mutuality
// rate.
func Reciprocate(g *graph.Graph, p float64, seed uint64) {
	rng := xrand.New(seed)
	n := g.NumNodes()
	type edge struct{ u, v graph.NodeID }
	var toAdd []edge
	for u := 0; u < n; u++ {
		for _, v := range g.OutNeighbors(graph.NodeID(u)) {
			if rng.Float64() < p && !g.HasEdge(v, graph.NodeID(u)) {
				toAdd = append(toAdd, edge{v, graph.NodeID(u)})
			}
		}
	}
	for _, e := range toAdd {
		if e.u != e.v && !g.HasEdge(e.u, e.v) {
			if err := g.AddEdge(e.u, e.v); err != nil {
				panic(err)
			}
		}
	}
}

// Cycle returns a directed n-cycle (used heavily in tests: every node has
// in-degree 1, so walks never die).
func Cycle(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		if err := g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n)); err != nil {
			panic(err)
		}
	}
	return g
}

// Star returns a graph where a hub (node 0) points to n-1 leaves.
func Star(n int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(0, graph.NodeID(i)); err != nil {
			panic(err)
		}
	}
	return g
}
