package gen

import (
	"math"
	"sort"
	"testing"

	"probesim/internal/graph"
)

func TestErdosRenyiBasics(t *testing.T) {
	g := ErdosRenyi(100, 500, 1)
	if g.NumNodes() != 100 || g.NumEdges() != 500 {
		t.Fatalf("ER(100,500): %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// No parallel edges.
	for u := 0; u < 100; u++ {
		out := g.OutNeighbors(graph.NodeID(u))
		seen := map[graph.NodeID]bool{}
		for _, v := range out {
			if seen[v] {
				t.Fatalf("parallel edge %d -> %d", u, v)
			}
			seen[v] = true
		}
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(50, 200, 7)
	b := ErdosRenyi(50, 200, 7)
	for u := 0; u < 50; u++ {
		oa, ob := a.OutNeighbors(graph.NodeID(u)), b.OutNeighbors(graph.NodeID(u))
		if len(oa) != len(ob) {
			t.Fatal("same seed produced different graphs")
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatal("same seed produced different graphs")
			}
		}
	}
	c := ErdosRenyi(50, 200, 8)
	diff := false
	for u := 0; u < 50 && !diff; u++ {
		if len(a.OutNeighbors(graph.NodeID(u))) != len(c.OutNeighbors(graph.NodeID(u))) {
			diff = true
		}
	}
	if !diff {
		t.Log("different seeds produced structurally similar graphs (acceptable but unusual)")
	}
}

func TestErdosRenyiRejectsOverfull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overfull ER accepted")
		}
	}()
	ErdosRenyi(3, 100, 1)
}

func TestPreferentialAttachmentPowerLaw(t *testing.T) {
	g := PreferentialAttachment(3000, 5, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Scale-free in-degree: the max in-degree must dwarf the average, and
	// degrees must be heavy-tailed (top 1% of nodes holds > 10% of mass).
	stats := g.ComputeStats()
	if float64(stats.MaxInDegree) < 8*stats.AvgInDegree {
		t.Fatalf("max in-degree %d vs avg %.2f: not heavy tailed", stats.MaxInDegree, stats.AvgInDegree)
	}
	degs := make([]int, g.NumNodes())
	total := 0
	for v := range degs {
		degs[v] = g.InDegree(graph.NodeID(v))
		total += degs[v]
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	top := 0
	for _, d := range degs[:30] {
		top += d
	}
	if float64(top) < 0.1*float64(total) {
		t.Fatalf("top-1%% in-degree share %.3f too small for a power law", float64(top)/float64(total))
	}
}

func TestUndirectedPASymmetric(t *testing.T) {
	g := UndirectedPA(500, 3, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.OutNeighbors(graph.NodeID(u)) {
			if !g.HasEdge(v, graph.NodeID(u)) {
				t.Fatalf("edge %d-%d not symmetric", u, v)
			}
		}
	}
	if g.NumEdges()%2 != 0 {
		t.Fatal("undirected graph must have an even directed-edge count")
	}
}

func TestRMATShape(t *testing.T) {
	g := RMAT(12, 30000, 0.57, 0.19, 0.19, 0.05, 5)
	if g.NumNodes() != 1<<12 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if got := g.NumEdges(); got < 29000 {
		t.Fatalf("edges = %d, want close to 30000", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	stats := g.ComputeStats()
	if float64(stats.MaxInDegree) < 5*stats.AvgInDegree {
		t.Fatalf("RMAT should be skewed: max %d avg %.2f", stats.MaxInDegree, stats.AvgInDegree)
	}
}

func TestRMATRejectsBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { RMAT(0, 10, 0.25, 0.25, 0.25, 0.25, 1) },
		func() { RMAT(5, 10, 0.9, 0.2, 0.2, 0.2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad RMAT params accepted")
				}
			}()
			f()
		}()
	}
}

func TestCorePeripheryStructure(t *testing.T) {
	g := CorePeriphery(200, 400, 3000, 10, 6)
	if g.NumNodes() != 600 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	stats := g.ComputeStats()
	// All periphery nodes have zero in-degree: > 60% of the graph, like
	// Wiki-Vote.
	if stats.ZeroInDeg < 400 {
		t.Fatalf("zero in-degree nodes = %d, want >= 400", stats.ZeroInDeg)
	}
	frac := float64(stats.ZeroInDeg) / float64(stats.Nodes)
	if frac < 0.6 {
		t.Fatalf("zero in-degree share %.2f < 0.6", frac)
	}
	// Periphery edges all point into the core.
	for p := 200; p < 600; p++ {
		for _, v := range g.OutNeighbors(graph.NodeID(p)) {
			if v >= 200 {
				t.Fatalf("periphery node %d points at periphery node %d", p, v)
			}
		}
	}
}

func TestCycleAndStar(t *testing.T) {
	c := Cycle(5)
	if c.NumEdges() != 5 {
		t.Fatalf("cycle edges = %d", c.NumEdges())
	}
	for v := 0; v < 5; v++ {
		if c.InDegree(graph.NodeID(v)) != 1 || c.OutDegree(graph.NodeID(v)) != 1 {
			t.Fatal("cycle degrees wrong")
		}
	}
	s := Star(6)
	if s.OutDegree(0) != 5 || s.InDegree(0) != 0 {
		t.Fatal("star hub wrong")
	}
	for v := 1; v < 6; v++ {
		if s.InDegree(graph.NodeID(v)) != 1 {
			t.Fatal("star leaf wrong")
		}
	}
}

// Average degree sanity for the generators used as dataset stand-ins.
func TestAverageDegreeTargets(t *testing.T) {
	g := PreferentialAttachment(2000, 12, 9)
	avg := float64(g.NumEdges()) / float64(g.NumNodes())
	if math.Abs(avg-12) > 1 {
		t.Fatalf("PA average out-degree %.2f, want ~12", avg)
	}
}

func TestReciprocate(t *testing.T) {
	g := PreferentialAttachment(500, 5, 2)
	before := g.NumEdges()
	Reciprocate(g, 1.0, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// With p=1 every edge must now have its reverse.
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.OutNeighbors(graph.NodeID(u)) {
			if !g.HasEdge(v, graph.NodeID(u)) {
				t.Fatalf("edge %d->%d missing reverse after full reciprocation", u, v)
			}
		}
	}
	if g.NumEdges() <= before {
		t.Fatal("reciprocation added no edges")
	}
	// p=0 is a no-op.
	h := PreferentialAttachment(300, 4, 5)
	m := h.NumEdges()
	Reciprocate(h, 0, 6)
	if h.NumEdges() != m {
		t.Fatal("p=0 reciprocation changed the graph")
	}
}
