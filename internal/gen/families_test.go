package gen

import (
	"testing"

	"probesim/internal/graph"
)

func TestComplete(t *testing.T) {
	g := Complete(5)
	if g.NumEdges() != 20 {
		t.Fatalf("K5 has %d directed edges, want 20", g.NumEdges())
	}
	for u := 0; u < 5; u++ {
		if g.InDegree(graph.NodeID(u)) != 4 || g.OutDegree(graph.NodeID(u)) != 4 {
			t.Fatalf("node %d degrees (%d, %d), want (4, 4)",
				u, g.InDegree(graph.NodeID(u)), g.OutDegree(graph.NodeID(u)))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumNodes() != 12 {
		t.Fatalf("3x4 grid has %d nodes, want 12", g.NumNodes())
	}
	// Undirected lattice edges: 3*(4-1) horizontal + (3-1)*4 vertical = 17,
	// stored as 34 directed edges.
	if g.NumEdges() != 34 {
		t.Fatalf("3x4 grid has %d directed edges, want 34", g.NumEdges())
	}
	// Corner (0,0) has 2 neighbors; interior (1,1) has 4.
	if g.OutDegree(0) != 2 {
		t.Fatalf("corner degree %d, want 2", g.OutDegree(0))
	}
	if g.OutDegree(graph.NodeID(1*4+1)) != 4 {
		t.Fatalf("interior degree %d, want 4", g.OutDegree(5))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGridPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Grid(0, 3) did not panic")
		}
	}()
	Grid(0, 3)
}

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0: the pure ring lattice, every node has degree exactly k.
	g := WattsStrogatz(20, 4, 0, 1)
	for v := 0; v < 20; v++ {
		if d := g.OutDegree(graph.NodeID(v)); d != 4 {
			t.Fatalf("lattice node %d has degree %d, want 4", v, d)
		}
	}
	if g.NumEdges() != 20*4 {
		t.Fatalf("lattice has %d directed edges, want 80", g.NumEdges())
	}
}

func TestWattsStrogatzRewiringPreservesEdgeCount(t *testing.T) {
	for _, beta := range []float64{0.1, 0.5, 1.0} {
		g := WattsStrogatz(40, 6, beta, 7)
		// Rewiring replaces edges one for one (up to rare rewire failures
		// on dense neighborhoods, which keep the original edge).
		if g.NumEdges() != 40*6 {
			t.Fatalf("beta=%v: %d directed edges, want 240", beta, g.NumEdges())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("beta=%v: %v", beta, err)
		}
		// Still undirected: every edge has its reverse.
		for u := 0; u < g.NumNodes(); u++ {
			for _, v := range g.OutNeighbors(graph.NodeID(u)) {
				if !g.HasEdge(v, graph.NodeID(u)) {
					t.Fatalf("beta=%v: edge %d->%d has no reverse", beta, u, v)
				}
			}
		}
	}
}

func TestWattsStrogatzRewiresAtHighBeta(t *testing.T) {
	// At beta = 1 nearly every lattice edge moves; the degree sequence
	// must no longer be uniform.
	g := WattsStrogatz(60, 4, 1, 11)
	uniform := true
	for v := 0; v < 60; v++ {
		if g.OutDegree(graph.NodeID(v)) != 4 {
			uniform = false
			break
		}
	}
	if uniform {
		t.Fatal("beta = 1 left the lattice fully regular; rewiring is not happening")
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	cases := []func(){
		func() { WattsStrogatz(10, 3, 0.1, 1) },  // odd k
		func() { WattsStrogatz(10, 10, 0.1, 1) }, // k >= n
		func() { WattsStrogatz(10, 4, 1.5, 1) },  // beta out of range
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestStochasticBlockModelDensities(t *testing.T) {
	sizes := []int{40, 40}
	g := StochasticBlockModel(sizes, 0.2, 0.01, 13)
	block := BlockOf(sizes)
	var inEdges, outEdges, inPairs, outPairs int64
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			same := block[u] == block[v]
			if same {
				inPairs++
			} else {
				outPairs++
			}
			if g.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
				if same {
					inEdges++
				} else {
					outEdges++
				}
			}
		}
	}
	inDensity := float64(inEdges) / float64(inPairs)
	outDensity := float64(outEdges) / float64(outPairs)
	if inDensity < 0.15 || inDensity > 0.25 {
		t.Fatalf("within-community density %v far from 0.2", inDensity)
	}
	if outDensity > 0.03 {
		t.Fatalf("cross-community density %v far above 0.01", outDensity)
	}
}

func TestStochasticBlockModelPanics(t *testing.T) {
	cases := []func(){
		func() { StochasticBlockModel(nil, 0.1, 0.1, 1) },
		func() { StochasticBlockModel([]int{5, 0}, 0.1, 0.1, 1) },
		func() { StochasticBlockModel([]int{5}, 1.5, 0.1, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestBlockOf(t *testing.T) {
	got := BlockOf([]int{2, 3})
	want := []int{0, 0, 1, 1, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BlockOf[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestFamiliesDeterministic(t *testing.T) {
	a := WattsStrogatz(30, 4, 0.3, 99)
	b := WattsStrogatz(30, 4, 0.3, 99)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("WattsStrogatz not deterministic for a seed")
	}
	for u := 0; u < 30; u++ {
		for _, v := range a.OutNeighbors(graph.NodeID(u)) {
			if !b.HasEdge(graph.NodeID(u), v) {
				t.Fatalf("edge %d->%d present in one seeded run, absent in the other", u, v)
			}
		}
	}
}
