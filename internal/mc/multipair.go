package mc

import (
	"sync"

	"probesim/internal/graph"
	"probesim/internal/walk"
	"probesim/internal/xrand"
)

// MultiPair estimates s(u, v) for each listed candidate v with the same
// pairing estimator as SinglePair, but generates the r walks from u once
// and reuses them against every candidate. The estimates are exactly as
// accurate as r independent SinglePair calls (each candidate's trials are
// i.i.d.); only the u-side work is shared. This is the pooling "expert" of
// §6.2: pools hold a few hundred candidates, all scored against one query
// node.
func MultiPair(g *graph.Graph, u graph.NodeID, vs []graph.NodeID, opt Options) (map[graph.NodeID]float64, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := checkNode(g, u); err != nil {
		return nil, err
	}
	for _, v := range vs {
		if err := checkNode(g, v); err != nil {
			return nil, err
		}
	}
	r := opt.NumWalks
	if r <= 0 {
		r = PairWalks(opt.Eps, opt.Delta)
	}
	out := make(map[graph.NodeID]float64, len(vs))
	if len(vs) == 0 {
		return out, nil
	}
	workers := opt.Workers
	if workers > len(vs) {
		workers = len(vs)
	}
	if workers < 1 {
		workers = 1
	}

	// Pre-generate u's walks once (sequential, seed stream 0).
	root := xrand.New(opt.Seed)
	genU := walk.NewGenerator(g, opt.C, root.Split(0))
	uWalks := make([][]graph.NodeID, r)
	for i := range uWalks {
		uWalks[i] = append([]graph.NodeID(nil), genU.Generate(u, 0, nil)...)
	}
	sqrtC := genU.SqrtC()

	meets := make([]int64, len(vs))
	var wg sync.WaitGroup
	idxCh := make(chan int, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for vi := range idxCh {
				v := vs[vi]
				if v == u {
					meets[vi] = int64(r)
					continue
				}
				rng := root.Split(uint64(vi) + 1)
				var count int64
				for i := 0; i < r; i++ {
					if pairMeets(g, v, uWalks[i], sqrtC, rng) {
						count++
					}
				}
				meets[vi] = count
			}
		}()
	}
	for vi := range vs {
		idxCh <- vi
	}
	close(idxCh)
	wg.Wait()
	for vi, v := range vs {
		out[v] = float64(meets[vi]) / float64(r)
	}
	return out, nil
}

// Expert returns a pooling.Expert-compatible closure scoring candidates
// against u; it memoizes MultiPair results so each candidate is scored
// once.
func Expert(g *graph.Graph, u graph.NodeID, opt Options) func(v graph.NodeID) (float64, error) {
	cache := make(map[graph.NodeID]float64)
	return func(v graph.NodeID) (float64, error) {
		if s, ok := cache[v]; ok {
			return s, nil
		}
		res, err := MultiPair(g, u, []graph.NodeID{v}, opt)
		if err != nil {
			return 0, err
		}
		for node, s := range res {
			cache[node] = s
		}
		return cache[v], nil
	}
}
