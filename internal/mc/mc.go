// Package mc implements the index-free Monte Carlo SimRank estimator of
// §2.2 (after Fogaras & Rácz): s(u, v) is the probability that independent
// √c-walks from u and v meet, so the fraction of r walk pairs that meet is
// an unbiased estimate with Hoeffding-style concentration.
//
// The single-source form is the paper's MC competitor (slow but simple);
// the single-pair form is the "expert" that gauges pooled results in the
// billion-edge experiments of §6.2.
package mc

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"probesim/internal/graph"
	"probesim/internal/walk"
	"probesim/internal/xrand"
)

// Options configures the Monte Carlo estimator.
type Options struct {
	// C is the SimRank decay factor. Default 0.6.
	C float64
	// Eps is the absolute error target. Default 0.1.
	Eps float64
	// Delta is the failure probability. Default 0.01.
	Delta float64
	// NumWalks overrides the derived pair count r when > 0.
	NumWalks int
	// Workers bounds parallelism. Default runtime.GOMAXPROCS(0).
	Workers int
	// Seed makes results reproducible. Default 1.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Eps == 0 {
		o.Eps = 0.1
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) validate() error {
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("mc: decay factor c = %v outside (0, 1)", o.C)
	}
	if o.Eps <= 0 || o.Eps >= 1 {
		return fmt.Errorf("mc: error target ε = %v outside (0, 1)", o.Eps)
	}
	if o.Delta <= 0 || o.Delta >= 1 {
		return fmt.Errorf("mc: failure probability δ = %v outside (0, 1)", o.Delta)
	}
	return nil
}

// PairWalks returns the number of walk pairs needed for a single-pair
// estimate with error eps at confidence 1-delta (Hoeffding:
// r = ln(2/δ)/(2ε²)).
func PairWalks(eps, delta float64) int {
	return int(math.Ceil(math.Log(2/delta) / (2 * eps * eps)))
}

// sourceWalks returns the pair count for a single-source query; the union
// bound over n nodes inflates delta to delta/n.
func sourceWalks(eps, delta float64, n int) int {
	if n < 2 {
		n = 2
	}
	return int(math.Ceil(math.Log(2*float64(n)/delta) / (2 * eps * eps)))
}

// SinglePair estimates s(u, v) from r independent √c-walk pairs.
func SinglePair(g *graph.Graph, u, v graph.NodeID, opt Options) (float64, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return 0, err
	}
	if err := checkNode(g, u); err != nil {
		return 0, err
	}
	if err := checkNode(g, v); err != nil {
		return 0, err
	}
	if u == v {
		return 1, nil
	}
	r := opt.NumWalks
	if r <= 0 {
		r = PairWalks(opt.Eps, opt.Delta)
	}
	workers := opt.Workers
	if workers > r {
		workers = r
	}
	root := xrand.New(opt.Seed)
	meets := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := r*w/workers, r*(w+1)/workers
		rng := root.Split(uint64(w))
		wg.Add(1)
		go func(w, trials int, rng *xrand.RNG) {
			defer wg.Done()
			gen := walk.NewGenerator(g, opt.C, rng)
			var bufU, bufV []graph.NodeID
			count := 0
			for t := 0; t < trials; t++ {
				bufU = gen.Generate(u, 0, bufU)
				bufV = gen.Generate(v, 0, bufV)
				// Meeting from step 2 onward: positions beyond the start
				// nodes (the starts differ since u != v).
				if walk.MeetStep(bufU, bufV) > 0 {
					count++
				}
			}
			meets[w] = count
		}(w, hi-lo, rng)
	}
	wg.Wait()
	total := 0
	for _, m := range meets {
		total += m
	}
	return float64(total) / float64(r), nil
}

// SingleSource estimates s(u, v) for every v by pairing r walks from u with
// r walks from each other node (§2.2's "straightforward" extension). This
// is the paper's MC competitor: correct and index-free, but it generates
// n·r walks per query, which is exactly the inefficiency ProbeSim removes.
func SingleSource(g *graph.Graph, u graph.NodeID, opt Options) ([]float64, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := checkNode(g, u); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	r := opt.NumWalks
	if r <= 0 {
		r = sourceWalks(opt.Eps, opt.Delta, n)
	}
	workers := opt.Workers
	if workers > r {
		workers = r
	}
	if workers < 1 {
		workers = 1
	}
	root := xrand.New(opt.Seed)
	accs := make([][]int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := r*w/workers, r*(w+1)/workers
		rng := root.Split(uint64(w))
		wg.Add(1)
		go func(w, trials int, rng *xrand.RNG) {
			defer wg.Done()
			acc := make([]int32, n)
			gen := walk.NewGenerator(g, opt.C, rng)
			var bufU []graph.NodeID
			sqrtC := gen.SqrtC()
			for t := 0; t < trials; t++ {
				bufU = gen.Generate(u, 0, bufU)
				for v := 0; v < n; v++ {
					if graph.NodeID(v) == u {
						continue
					}
					if pairMeets(g, graph.NodeID(v), bufU, sqrtC, rng) {
						acc[v]++
					}
				}
			}
			accs[w] = acc
		}(w, hi-lo, rng)
	}
	wg.Wait()
	out := make([]float64, n)
	for _, acc := range accs {
		for v, c := range acc {
			out[v] += float64(c)
		}
	}
	inv := 1 / float64(r)
	for v := range out {
		out[v] *= inv
	}
	out[u] = 1
	return out, nil
}

// pairMeets simulates a √c-walk from v lazily, step by step, returning true
// as soon as it lands on the same node as bufU at the same step. The walk
// stops early at min(len(bufU), termination), because positions beyond u's
// walk can never meet it.
func pairMeets(g *graph.Graph, v graph.NodeID, bufU []graph.NodeID, sqrtC float64, rng *xrand.RNG) bool {
	cur := v
	if cur == bufU[0] {
		return true
	}
	for step := 1; step < len(bufU); step++ {
		if rng.Float64() >= sqrtC {
			return false
		}
		in := g.InNeighbors(cur)
		if len(in) == 0 {
			return false
		}
		cur = in[rng.Intn(len(in))]
		if cur == bufU[step] {
			return true
		}
	}
	return false
}

func checkNode(g *graph.Graph, v graph.NodeID) error {
	if v < 0 || int(v) >= g.NumNodes() {
		return fmt.Errorf("mc: node %d out of range [0, %d)", v, g.NumNodes())
	}
	return nil
}
