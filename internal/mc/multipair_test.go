package mc

import (
	"math"
	"testing"

	"probesim/internal/graph"
	"probesim/internal/power"
)

func TestMultiPairMatchesGroundTruth(t *testing.T) {
	g := graph.Toy()
	exact, err := power.SingleSource(g, graph.ToyA, power.Options{C: 0.25, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	vs := []graph.NodeID{graph.ToyB, graph.ToyC, graph.ToyD, graph.ToyE, graph.ToyA}
	got, err := MultiPair(g, graph.ToyA, vs, Options{C: 0.25, NumWalks: 200000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got[graph.ToyA] != 1 {
		t.Fatalf("s(a,a) = %v", got[graph.ToyA])
	}
	for _, v := range vs[:4] {
		if math.Abs(got[v]-exact[v]) > 0.006 {
			t.Errorf("MultiPair(a,%s) = %.4f, want %.4f", graph.ToyNames[v], got[v], exact[v])
		}
	}
}

func TestMultiPairEmpty(t *testing.T) {
	g := graph.Toy()
	got, err := MultiPair(g, 0, nil, Options{NumWalks: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty candidates gave %v", got)
	}
}

func TestMultiPairValidation(t *testing.T) {
	g := graph.Toy()
	if _, err := MultiPair(g, 0, []graph.NodeID{99}, Options{}); err == nil {
		t.Fatal("bad candidate accepted")
	}
	if _, err := MultiPair(g, 99, nil, Options{}); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestExpertMemoizes(t *testing.T) {
	g := graph.Toy()
	expert := Expert(g, graph.ToyA, Options{C: 0.25, NumWalks: 2000, Seed: 1})
	a1, err := expert(graph.ToyD)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := expert(graph.ToyD)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("memoized expert returned different values")
	}
	if a1 <= 0 || a1 > 1 {
		t.Fatalf("expert score %v out of range", a1)
	}
}
