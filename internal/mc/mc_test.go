package mc

import (
	"math"
	"testing"

	"probesim/internal/graph"
	"probesim/internal/power"
	"probesim/internal/xrand"
)

func TestPairWalksFormula(t *testing.T) {
	got := PairWalks(0.01, 0.001)
	want := int(math.Ceil(math.Log(2/0.001) / (2 * 0.0001)))
	if got != want {
		t.Fatalf("PairWalks = %d, want %d", got, want)
	}
	if PairWalks(0.1, 0.01) >= PairWalks(0.05, 0.01) {
		t.Fatal("smaller ε must need more walks")
	}
}

func TestValidation(t *testing.T) {
	g := graph.Toy()
	if _, err := SinglePair(g, 0, 1, Options{C: 2}); err == nil {
		t.Error("bad c accepted")
	}
	if _, err := SinglePair(g, 0, 99, Options{}); err == nil {
		t.Error("bad node accepted")
	}
	if _, err := SingleSource(g, -1, Options{}); err == nil {
		t.Error("negative node accepted")
	}
}

func TestIdenticalNodes(t *testing.T) {
	g := graph.Toy()
	got, err := SinglePair(g, 2, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("s(v,v) = %v, want 1", got)
	}
}

// Single-pair estimates converge to the Table 2 ground truth.
func TestSinglePairToyGraph(t *testing.T) {
	g := graph.Toy()
	exact, err := power.SingleSource(g, graph.ToyA, power.Options{C: 0.25, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []graph.NodeID{graph.ToyD, graph.ToyE, graph.ToyC} {
		got, err := SinglePair(g, graph.ToyA, v, Options{C: 0.25, NumWalks: 400000, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-exact[v]) > 0.005 {
			t.Errorf("s(a,%s) = %.4f, want %.4f", graph.ToyNames[v], got, exact[v])
		}
	}
}

// Single-source estimates meet the ε guarantee against the Power Method.
func TestSingleSourceGuarantee(t *testing.T) {
	rng := xrand.New(55)
	g := randomGraph(rng, 40, 200)
	m, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	est, err := SingleSource(g, 5, Options{C: 0.6, Eps: 0.1, Delta: 0.01, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for v := range est {
		if d := math.Abs(est[v] - m.At(5, graph.NodeID(v))); d > worst {
			worst = d
		}
	}
	if worst > 0.1 {
		t.Fatalf("max error %.4f > ε", worst)
	}
	if est[5] != 1 {
		t.Fatal("s̃(u,u) != 1")
	}
}

func TestSingleSourceRange(t *testing.T) {
	rng := xrand.New(66)
	g := randomGraph(rng, 30, 120)
	est, err := SingleSource(g, 0, Options{NumWalks: 500})
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range est {
		if s < 0 || s > 1 {
			t.Fatalf("estimate out of range at %d: %v", v, s)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.Toy()
	opt := Options{C: 0.25, NumWalks: 5000, Seed: 12, Workers: 3}
	a, err := SingleSource(g, graph.ToyA, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SingleSource(g, graph.ToyA, opt)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("not reproducible at node %d", v)
		}
	}
}

// A query from a zero-in-degree node yields zero everywhere else.
func TestZeroInDegree(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	est, err := SingleSource(g, 0, Options{NumWalks: 200})
	if err != nil {
		t.Fatal(err)
	}
	if est[1] != 0 || est[2] != 0 {
		t.Fatalf("walks from a source with no in-edges cannot meet: %v", est)
	}
}

func randomGraph(rng *xrand.RNG, n, m int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
		if u != v {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}
