package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"probesim/internal/graph"
	"probesim/internal/xrand"
)

// Property tests on the ranking metrics: range bounds, perfection at the
// identity ranking, and invariance facts the §6.1 evaluation relies on.

// randomRanking builds a random score vector and a ranking of the top k
// nodes, possibly corrupted by swapping in low-scoring nodes.
func randomRanking(seed uint64, corrupt bool) (scores []float64, ranking []graph.NodeID) {
	rng := xrand.New(seed)
	n := 20 + rng.Intn(30)
	scores = make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	k := 5 + rng.Intn(5)
	ranking = ExactTopK(scores, graph.NodeID(n), k) // skip id outside range: no skip
	if corrupt && len(ranking) > 1 {
		// Replace a random entry with a node not in the ranking.
		in := make(map[graph.NodeID]bool, len(ranking))
		for _, v := range ranking {
			in[v] = true
		}
		for tries := 0; tries < 100; tries++ {
			v := graph.NodeID(rng.Intn(n))
			if !in[v] {
				ranking[rng.Intn(len(ranking))] = v
				break
			}
		}
	}
	return scores, ranking
}

func TestPrecisionBoundsProperty(t *testing.T) {
	check := func(seed uint64, corrupt bool) bool {
		scores, ranking := randomRanking(seed, corrupt)
		_ = scores
		p := PrecisionAtK(ranking, ranking)
		if p != 1 {
			return false // self-precision must be perfect
		}
		other := append([]graph.NodeID(nil), ranking...)
		p = PrecisionAtK(ranking, other)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNDCGBoundsProperty(t *testing.T) {
	check := func(seed uint64, corrupt bool) bool {
		scores, ranking := randomRanking(seed, corrupt)
		ideal := ExactTopK(scores, graph.NodeID(len(scores)), len(ranking))
		ndcg := NDCGAtK(ranking, ideal, ScoreFromSlice(scores))
		if ndcg < 0 || ndcg > 1+1e-12 {
			return false
		}
		// The ideal ranking scores exactly 1.
		perfect := NDCGAtK(ideal, ideal, ScoreFromSlice(scores))
		if math.Abs(perfect-1) > 1e-12 {
			return false
		}
		// A corrupted ranking can never beat the ideal.
		return ndcg <= perfect+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTauBoundsProperty(t *testing.T) {
	check := func(seed uint64) bool {
		scores, ranking := randomRanking(seed, false)
		tau := KendallTau(ranking, ScoreFromSlice(scores))
		// ExactTopK returns descending order: tau must be exactly 1 unless
		// ties make some pairs neither concordant nor discordant.
		if tau > 1 || tau < -1 {
			return false
		}
		// Reversing a strictly ordered ranking flips the sign.
		rev := make([]graph.NodeID, len(ranking))
		for i, v := range ranking {
			rev[len(ranking)-1-i] = v
		}
		tauRev := KendallTau(rev, ScoreFromSlice(scores))
		return tauRev <= tau
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsErrorSkipsQueryNode(t *testing.T) {
	est := []float64{0, 0.5, 0.9}
	exact := []float64{1, 0.5, 0.9}
	// Position 0 differs by 1.0 but is the skipped query node.
	if got := MaxAbsError(est, exact, 0); got != 0 {
		t.Fatalf("MaxAbsError = %v, want 0 when only the skipped node differs", got)
	}
	if got := MaxAbsError(est, exact, 2); got != 1 {
		t.Fatalf("MaxAbsError = %v, want 1 when node 0 is not skipped", got)
	}
}
