package metrics

import (
	"math"
	"testing"

	"probesim/internal/graph"
)

func TestMaxAbsError(t *testing.T) {
	est := []float64{1, 0.5, 0.2, 0.9}
	exact := []float64{1, 0.4, 0.25, 0.0}
	if got := MaxAbsError(est, exact, 3); math.Abs(got-0.1) > 1e-15 {
		t.Fatalf("MaxAbsError skipping worst = %v, want 0.1", got)
	}
	if got := MaxAbsError(est, exact, 0); math.Abs(got-0.9) > 1e-15 {
		t.Fatalf("MaxAbsError = %v, want 0.9", got)
	}
}

func TestPrecisionAtK(t *testing.T) {
	truth := []graph.NodeID{1, 2, 3, 4}
	cases := []struct {
		result []graph.NodeID
		want   float64
	}{
		{[]graph.NodeID{1, 2, 3, 4}, 1},
		{[]graph.NodeID{4, 3, 2, 1}, 1}, // order does not matter
		{[]graph.NodeID{1, 2, 9, 8}, 0.5},
		{[]graph.NodeID{7, 8, 9, 10}, 0},
		{nil, 0},
	}
	for i, c := range cases {
		if got := PrecisionAtK(c.result, truth); got != c.want {
			t.Errorf("case %d: precision = %v, want %v", i, got, c.want)
		}
	}
	if PrecisionAtK([]graph.NodeID{1}, nil) != 1 {
		t.Error("empty truth must score 1")
	}
}

func TestNDCGPerfectRanking(t *testing.T) {
	scores := []float64{0, 0.9, 0.5, 0.3, 0.1}
	truth := []graph.NodeID{1, 2, 3}
	if got := NDCGAtK(truth, truth, ScoreFromSlice(scores)); math.Abs(got-1) > 1e-15 {
		t.Fatalf("perfect ranking NDCG = %v", got)
	}
}

func TestNDCGOrderSensitivity(t *testing.T) {
	scores := []float64{0, 0.9, 0.5, 0.3, 0.1}
	truth := []graph.NodeID{1, 2, 3}
	swapped := NDCGAtK([]graph.NodeID{2, 1, 3}, truth, ScoreFromSlice(scores))
	dropWeak := NDCGAtK([]graph.NodeID{1, 2, 4}, truth, ScoreFromSlice(scores))
	dropTop := NDCGAtK([]graph.NodeID{4, 2, 3}, truth, ScoreFromSlice(scores))
	if swapped >= 1 || dropWeak >= 1 || dropTop >= 1 {
		t.Fatalf("imperfect rankings must lose gain: %v %v %v", swapped, dropWeak, dropTop)
	}
	// Losing the most relevant item must hurt more than losing the least
	// relevant one.
	if dropTop >= dropWeak {
		t.Fatalf("dropTop (%v) should score below dropWeak (%v)", dropTop, dropWeak)
	}
}

func TestNDCGHandComputed(t *testing.T) {
	scores := []float64{0, 1.0, 0.5}
	truth := []graph.NodeID{1, 2}
	got := NDCGAtK([]graph.NodeID{2, 1}, truth, ScoreFromSlice(scores))
	gain := func(s float64, pos int) float64 {
		return (math.Pow(2, s) - 1) / math.Log2(float64(pos)+1)
	}
	want := (gain(0.5, 1) + gain(1.0, 2)) / (gain(1.0, 1) + gain(0.5, 2))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("NDCG = %v, want %v", got, want)
	}
}

func TestNDCGZeroIdeal(t *testing.T) {
	if got := NDCGAtK([]graph.NodeID{1}, []graph.NodeID{2}, func(graph.NodeID) float64 { return 0 }); got != 1 {
		t.Fatalf("zero ideal must score 1, got %v", got)
	}
}

func TestKendallTau(t *testing.T) {
	scores := []float64{0, 0.9, 0.7, 0.5, 0.3}
	score := ScoreFromSlice(scores)
	if got := KendallTau([]graph.NodeID{1, 2, 3, 4}, score); got != 1 {
		t.Fatalf("perfect order τ = %v", got)
	}
	if got := KendallTau([]graph.NodeID{4, 3, 2, 1}, score); got != -1 {
		t.Fatalf("reversed order τ = %v", got)
	}
	// One adjacent swap in 4 items: 5 concordant, 1 discordant of 6 pairs.
	if got := KendallTau([]graph.NodeID{2, 1, 3, 4}, score); math.Abs(got-4.0/6) > 1e-15 {
		t.Fatalf("one-swap τ = %v, want 2/3", got)
	}
	if got := KendallTau([]graph.NodeID{1}, score); got != 1 {
		t.Fatalf("singleton τ = %v", got)
	}
}

func TestKendallTauTies(t *testing.T) {
	// Ties contribute neither concordant nor discordant pairs.
	scores := []float64{0, 0.5, 0.5, 0.1}
	got := KendallTau([]graph.NodeID{1, 2, 3}, ScoreFromSlice(scores))
	// Pairs: (1,2) tie, (1,3) concordant, (2,3) concordant → 2/3.
	if math.Abs(got-2.0/3) > 1e-15 {
		t.Fatalf("tie handling τ = %v, want 2/3", got)
	}
}

func TestExactTopK(t *testing.T) {
	exact := []float64{1, 0.5, 0.9, 0.5, 0.1}
	got := ExactTopK(exact, 0, 3)
	want := []graph.NodeID{2, 1, 3} // ties by ascending id
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExactTopK = %v, want %v", got, want)
		}
	}
	if len(ExactTopK(exact, 0, 100)) != 4 {
		t.Fatal("k > n-1 must clamp")
	}
}

func TestScoreFromMap(t *testing.T) {
	score := ScoreFromMap(map[graph.NodeID]float64{3: 0.7})
	if score(3) != 0.7 || score(9) != 0 {
		t.Fatal("ScoreFromMap wrong")
	}
}
