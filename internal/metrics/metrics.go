// Package metrics implements the evaluation metrics of §6.1: maximum
// absolute error for single-source queries, and Precision@k, NDCG@k and the
// Kendall-τ difference for top-k queries.
package metrics

import (
	"math"
	"sort"

	"probesim/internal/graph"
)

// MaxAbsError returns max_{v != skip} |est[v] − exact[v]|, the paper's
// AbsError for a single-source query. The slices must have equal length.
func MaxAbsError(est, exact []float64, skip graph.NodeID) float64 {
	worst := 0.0
	for v := range est {
		if graph.NodeID(v) == skip {
			continue
		}
		if d := math.Abs(est[v] - exact[v]); d > worst {
			worst = d
		}
	}
	return worst
}

// PrecisionAtK returns |result ∩ truth| / |truth|: the fraction of returned
// nodes that belong to the ground-truth top-k. An empty truth yields 1
// (nothing to find).
func PrecisionAtK(result, truth []graph.NodeID) float64 {
	if len(truth) == 0 {
		return 1
	}
	in := make(map[graph.NodeID]struct{}, len(truth))
	for _, v := range truth {
		in[v] = struct{}{}
	}
	hit := 0
	for _, v := range result {
		if _, ok := in[v]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// NDCGAtK computes the Normalized Discounted Cumulative Gain of the
// returned ranking (§6.1):
//
//	NDCG@k = (1/Z_k) · Σ_i (2^{s(u,v_i)} − 1) / log₂(i + 1)
//
// where s(u, v_i) is the exact similarity of the i-th returned node (from
// score, indexed by node id) and Z_k is the same sum over the ground-truth
// top-k list truth. When the ideal gain is zero (all true similarities
// vanish) the ranking is trivially perfect and 1 is returned.
func NDCGAtK(result, truth []graph.NodeID, score func(graph.NodeID) float64) float64 {
	dcg := gainSum(result, score)
	ideal := gainSum(truth, score)
	if ideal == 0 {
		return 1
	}
	return dcg / ideal
}

func gainSum(list []graph.NodeID, score func(graph.NodeID) float64) float64 {
	sum := 0.0
	for i, v := range list {
		sum += (math.Pow(2, score(v)) - 1) / math.Log2(float64(i)+2)
	}
	return sum
}

// KendallTau computes the Kendall-τ difference of the returned ranking
// against the exact similarity order (§6.1):
//
//	τ_k = (#concordant − #discordant) / (k(k−1)/2)
//
// over all pairs of returned nodes: a pair (v_i, v_j) with i < j is
// concordant when s(u, v_i) > s(u, v_j), discordant when the exact order is
// reversed, and neutral on exact ties. Lists shorter than 2 score 1.
func KendallTau(result []graph.NodeID, score func(graph.NodeID) float64) float64 {
	k := len(result)
	if k < 2 {
		return 1
	}
	conc, disc := 0, 0
	for i := 0; i < k; i++ {
		si := score(result[i])
		for j := i + 1; j < k; j++ {
			sj := score(result[j])
			switch {
			case si > sj:
				conc++
			case si < sj:
				disc++
			}
		}
	}
	return float64(conc-disc) / float64(k*(k-1)/2)
}

// ScoreFromSlice adapts a dense exact-score vector to the score-function
// form the ranking metrics take.
func ScoreFromSlice(s []float64) func(graph.NodeID) float64 {
	return func(v graph.NodeID) float64 { return s[v] }
}

// ScoreFromMap adapts a sparse score map (as produced by pooling experts);
// missing nodes score 0.
func ScoreFromMap(m map[graph.NodeID]float64) func(graph.NodeID) float64 {
	return func(v graph.NodeID) float64 { return m[v] }
}

// ExactTopK returns the ground-truth top-k node list from a dense exact
// score vector, excluding the query node, with the shared tie-breaking
// order (descending score, ascending id). Ground truth is computed rarely,
// so a full sort is fine.
func ExactTopK(exact []float64, u graph.NodeID, k int) []graph.NodeID {
	type pair struct {
		v graph.NodeID
		s float64
	}
	all := make([]pair, 0, len(exact))
	for v, s := range exact {
		if graph.NodeID(v) == u {
			continue
		}
		all = append(all, pair{graph.NodeID(v), s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].v < all[j].v
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]graph.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].v
	}
	return out
}
