package persist

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"probesim/internal/graph"
	"probesim/internal/shard"
)

func testGraph(n int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < 4*n; i++ {
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		if u != v {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}

func sameView(t *testing.T, a, b graph.View) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape: (%d,%d) vs (%d,%d)", a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	for v := 0; v < a.NumNodes(); v++ {
		nd := graph.NodeID(v)
		ia, ib := a.InNeighbors(nd), b.InNeighbors(nd)
		oa, ob := a.OutNeighbors(nd), b.OutNeighbors(nd)
		if len(ia) != len(ib) || len(oa) != len(ob) {
			t.Fatalf("node %d: degree mismatch", v)
		}
		for i := range ia {
			if ia[i] != ib[i] {
				t.Fatalf("node %d: in[%d] %d vs %d (order must be preserved)", v, i, ia[i], ib[i])
			}
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("node %d: out[%d] %d vs %d", v, i, oa[i], ob[i])
			}
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 2, 7} {
		g := testGraph(300, 7)
		st := shard.NewStore(g, shards, 0)
		// Mutate so versions and the watermark are non-trivial.
		ops := []shard.EdgeOp{{U: 0, V: 1}, {U: 5, V: 9}, {Remove: false, U: 17, V: 3}}
		if _, err := st.ApplyBatch(42, ops); err != nil {
			t.Fatal(err)
		}
		snap := st.Publish()

		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, snap); err != nil {
			t.Fatal(err)
		}
		got, err := ReadStore(bytes.NewReader(buf.Bytes()), 0)
		if err != nil {
			t.Fatal(err)
		}
		gsnap := got.Current()
		if err := gsnap.Validate(); err != nil {
			t.Fatal(err)
		}
		if gsnap.Version() != snap.Version() || gsnap.LastBatch() != 42 {
			t.Fatalf("version/batch: %d/%d vs %d/42", gsnap.Version(), gsnap.LastBatch(), snap.Version())
		}
		if got.LastBatch() != 42 {
			t.Fatalf("store watermark %d, want 42", got.LastBatch())
		}
		sameView(t, snap, gsnap)

		// The restored store is live: mutations and publication work, and
		// the apply-once watermark carried over (a replayed batch no-ops).
		if _, err := got.ApplyBatch(42, ops); err != nil {
			t.Fatal(err)
		}
		if got.NumEdges() != snap.NumEdges() {
			t.Fatal("replayed batch mutated the restored store")
		}
		if _, err := got.ApplyBatch(43, []shard.EdgeOp{{U: 1, V: 2}}); err != nil {
			t.Fatal(err)
		}
		next := got.Publish()
		if next.NumEdges() != snap.NumEdges()+1 {
			t.Fatalf("edges %d after new batch, want %d", next.NumEdges(), snap.NumEdges()+1)
		}
		if err := next.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReadStoreRejectsCorruption(t *testing.T) {
	g := testGraph(100, 3)
	st := shard.NewStore(g, 4, 0)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, st.Current()); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	mutations := map[string]func([]byte) []byte{
		"badMagic":   func(b []byte) []byte { b[0] ^= 0xff; return b },
		"badFormat":  func(b []byte) []byte { b[4] ^= 0xff; return b },
		"truncated":  func(b []byte) []byte { return b[:len(b)/2] },
		"trailing":   func(b []byte) []byte { return append(b, 0xde, 0xad) },
		"badShift":   func(b []byte) []byte { b[40] = 0xff; return b },
		"hugeNodes":  func(b []byte) []byte { b[14] = 0xff; return b }, // nodes u64 high bytes
		"badOffsets": func(b []byte) []byte { b[len(b)-40] ^= 0xff; return b },
	}
	for name, mut := range mutations {
		t.Run(name, func(t *testing.T) {
			b := mut(append([]byte(nil), clean...))
			if _, err := ReadStore(bytes.NewReader(b), 0); err == nil {
				t.Fatal("corrupt spill accepted")
			}
		})
	}
	// The clean spill still parses (the mutations above copied it).
	if _, err := ReadStore(bytes.NewReader(clean), 0); err != nil {
		t.Fatal(err)
	}
}

func TestReadStoreShortInputNoHugeAlloc(t *testing.T) {
	// A header claiming many shards/entries with no bytes behind it must
	// error on the short read, not allocate first.
	var buf bytes.Buffer
	g := graph.New(64)
	st := shard.NewStore(g, 4, 0)
	if err := WriteSnapshot(&buf, st.Current()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:52] // header + shift/shards + first shard version, then starve it
	if _, err := ReadStore(bytes.NewReader(b), 0); !errors.Is(err, ErrFormat) {
		t.Fatalf("want ErrFormat, got %v", err)
	}
}
