// Package persist is the durable form of a sharded snapshot: a binary
// spill of shard.StoreSnapshot that reuses the CSR layout byte for byte
// (per-shard offset and destination arrays, written as-is), plus the
// boot-time orchestration that turns a data directory back into a live
// store — load the newest checkpoint, replay the write-ahead log tail
// through the store's apply-once watermark, republish.
//
// Spill layout (little-endian):
//
//	u32 magic | u32 format
//	u64 nodes | u64 edges | u64 store version | u64 last batch id
//	u32 shift | u32 shard count
//	per shard: u64 shard version,
//	           u32 len(InOff)  | InOff...  (u32 each)
//	           u32 len(InDst)  | InDst...  (u32 each)
//	           u32 len(OutOff) | OutOff... (u32 each)
//	           u32 len(OutDst) | OutDst... (u32 each)
//
// Integrity is layered: the write-ahead log wraps every checkpoint file
// in a whole-file CRC32C trailer (wal.VerifyFileCRC) before recovery
// will touch it, and shard.Restore re-validates the structural
// invariants (offset monotonicity, dst lengths, edge counts) after
// decoding — a checkpoint that passes both is safe to serve from.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"probesim/internal/graph"
	"probesim/internal/shard"
)

const (
	spillMagic  = 0x50535053 // "PSPS"
	spillFormat = 1

	// maxArrayBytes bounds one decoded array: a corrupt length prefix
	// must not get to allocate the machine before the CRC check (which
	// OpenStore runs first) or the structural validation would catch it.
	maxArrayBytes = 1 << 33

	// arrayChunk is how many u32 values the array codecs move per
	// bufio call — bandwidth-bound I/O instead of per-value calls.
	arrayChunk = 1 << 18
)

// ErrFormat reports a structurally invalid spill.
var ErrFormat = errors.New("persist: invalid snapshot spill")

// WriteSnapshot spills snap to w in the durable CSR format.
func WriteSnapshot(w io.Writer, snap *shard.StoreSnapshot) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [40]byte
	binary.LittleEndian.PutUint32(hdr[0:4], spillMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], spillFormat)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(snap.NumNodes()))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(snap.NumEdges()))
	binary.LittleEndian.PutUint64(hdr[24:32], snap.Version())
	binary.LittleEndian.PutUint64(hdr[32:40], snap.LastBatch())
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var word [8]byte
	writeU32 := func(x uint32) error {
		binary.LittleEndian.PutUint32(word[:4], x)
		_, err := bw.Write(word[:4])
		return err
	}
	writeU64 := func(x uint64) error {
		binary.LittleEndian.PutUint64(word[:], x)
		_, err := bw.Write(word[:])
		return err
	}
	if err := writeU32(snap.Shift()); err != nil {
		return err
	}
	if err := writeU32(uint32(snap.NumShards())); err != nil {
		return err
	}
	// Arrays move through a chunk buffer: one bufio.Write per ~1MB of
	// values, not one per value — checkpoints of billion-edge graphs are
	// bandwidth-bound, not call-bound.
	chunk := make([]byte, 0, arrayChunk*4)
	writeU32s := func(v []uint32) error {
		if err := writeU32(uint32(len(v))); err != nil {
			return err
		}
		for len(v) > 0 {
			n := min(len(v), arrayChunk)
			chunk = chunk[:0]
			for _, x := range v[:n] {
				chunk = binary.LittleEndian.AppendUint32(chunk, x)
			}
			if _, err := bw.Write(chunk); err != nil {
				return err
			}
			v = v[n:]
		}
		return nil
	}
	writeNodes := func(v []graph.NodeID) error {
		if err := writeU32(uint32(len(v))); err != nil {
			return err
		}
		for len(v) > 0 {
			n := min(len(v), arrayChunk)
			chunk = chunk[:0]
			for _, x := range v[:n] {
				chunk = binary.LittleEndian.AppendUint32(chunk, uint32(x))
			}
			if _, err := bw.Write(chunk); err != nil {
				return err
			}
			v = v[n:]
		}
		return nil
	}
	for p := 0; p < snap.NumShards(); p++ {
		if err := writeU64(snap.ShardVersion(p)); err != nil {
			return err
		}
		sh := snap.Shard(p)
		if err := writeU32s(sh.InOff); err != nil {
			return err
		}
		if err := writeNodes(sh.InDst); err != nil {
			return err
		}
		if err := writeU32s(sh.OutOff); err != nil {
			return err
		}
		if err := writeNodes(sh.OutDst); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadStore decodes a spill and rebuilds a live store from it: the
// decoded CSR blocks become the published snapshot, the mutable side is
// deep-copied out of them, and the version/apply-once watermark resume
// where the checkpoint left them. workers bounds the store's rebuild
// pool as in shard.NewStore.
func ReadStore(r io.Reader, workers int) (*shard.Store, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [40]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != spillMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrFormat, binary.LittleEndian.Uint32(hdr[0:4]))
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != spillFormat {
		return nil, fmt.Errorf("%w: format %d, want %d", ErrFormat, v, spillFormat)
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	m := binary.LittleEndian.Uint64(hdr[16:24])
	version := binary.LittleEndian.Uint64(hdr[24:32])
	lastBatch := binary.LittleEndian.Uint64(hdr[32:40])
	if n > 1<<31 {
		return nil, fmt.Errorf("%w: node count %d exceeds int32 range", ErrFormat, n)
	}
	if m > math.MaxInt64 {
		return nil, fmt.Errorf("%w: edge count %d", ErrFormat, m)
	}
	var word [8]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, word[:4]); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		return binary.LittleEndian.Uint32(word[:4]), nil
	}
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, word[:]); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		return binary.LittleEndian.Uint64(word[:]), nil
	}
	shift, err := readU32()
	if err != nil {
		return nil, err
	}
	if shift > 31 {
		return nil, fmt.Errorf("%w: shard shift %d", ErrFormat, shift)
	}
	shards, err := readU32()
	if err != nil {
		return nil, err
	}
	stride := uint64(1) << shift
	wantShards := (n + stride - 1) / stride
	if uint64(shards) != wantShards {
		return nil, fmt.Errorf("%w: %d shards for %d nodes at stride %d, want %d", ErrFormat, shards, n, stride, wantShards)
	}
	// Arrays grow only as bytes actually arrive: readU32Array decodes in
	// bounded chunks (one io.ReadFull per ~1MB of values, allocation
	// tracking delivered bytes), so a corrupt length can neither allocate
	// past the input nor pay a function call per value.
	chunk := make([]byte, arrayChunk*4)
	readU32Array := func(what string) ([]uint32, error) {
		cnt, err := readU32()
		if err != nil {
			return nil, err
		}
		if uint64(cnt)*4 > maxArrayBytes {
			return nil, fmt.Errorf("%w: %s of %d entries", ErrFormat, what, cnt)
		}
		out := make([]uint32, 0, min(int(cnt), arrayChunk))
		for remaining := int(cnt); remaining > 0; {
			n := min(remaining, arrayChunk)
			if _, err := io.ReadFull(br, chunk[:n*4]); err != nil {
				return nil, fmt.Errorf("%w: %s: %v", ErrFormat, what, err)
			}
			for i := 0; i < n; i++ {
				out = append(out, binary.LittleEndian.Uint32(chunk[i*4:]))
			}
			remaining -= n
		}
		return out, nil
	}
	csr := make([]graph.CSRShard, shards)
	versions := make([]uint64, shards)
	for p := range csr {
		if versions[p], err = readU64(); err != nil {
			return nil, err
		}
		inOff, err := readU32Array("InOff")
		if err != nil {
			return nil, err
		}
		inDst, err := readU32Array("InDst")
		if err != nil {
			return nil, err
		}
		outOff, err := readU32Array("OutOff")
		if err != nil {
			return nil, err
		}
		outDst, err := readU32Array("OutDst")
		if err != nil {
			return nil, err
		}
		csr[p] = graph.CSRShard{
			InOff:  inOff,
			InDst:  u32sToNodes(inDst),
			OutOff: outOff,
			OutDst: u32sToNodes(outDst),
		}
	}
	// Trailing garbage means the file is not what the writer produced.
	if _, err := br.ReadByte(); err == nil {
		return nil, fmt.Errorf("%w: trailing bytes after last shard", ErrFormat)
	} else if !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	st, err := shard.Restore(int(n), int64(m), version, lastBatch, shift, csr, versions, workers)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return st, nil
}

// u32sToNodes reinterprets decoded u32s as node ids without another pass
// allocation-wise (NodeID is int32; the slice is reallocated since the
// element types differ, but only once).
func u32sToNodes(v []uint32) []graph.NodeID {
	out := make([]graph.NodeID, len(v))
	for i, x := range v {
		out[i] = graph.NodeID(int32(x))
	}
	return out
}
