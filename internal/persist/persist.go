// Package persist is the durable form of a sharded snapshot: a binary
// spill of shard.StoreSnapshot that reuses the CSR layout byte for byte
// (per-shard offset and destination arrays, written as-is), plus the
// boot-time orchestration that turns a data directory back into a live
// store — load the newest checkpoint, replay the write-ahead log tail
// through the store's apply-once watermark, republish.
//
// Spill layout (little-endian):
//
//	u32 magic | u32 format
//	u64 nodes | u64 edges | u64 store version | u64 last batch id
//	[format 2 only: u64 base checkpoint's last batch id]
//	u32 shift | u32 shard count
//	per shard: u64 shard version,
//	           [format 2 only: u8 present; arrays follow only if 1]
//	           u32 len(InOff)  | InOff...  (u32 each)
//	           u32 len(InDst)  | InDst...  (u32 each)
//	           u32 len(OutOff) | OutOff... (u32 each)
//	           u32 len(OutDst) | OutDst... (u32 each)
//
// Format 1 is a FULL spill; a shard-local store's spill is still format
// 1, with non-owned shards' arrays written zero-length (absent). Format
// 2 is a DELTA spill against the format-1 base named in its header:
// shards flagged absent are taken from the base, which must agree on
// their per-shard version. The stride-scoped readers skip non-owned
// shards' array bytes wholesale via the length prefixes, so a
// shard-local worker's boot I/O and heap scale with its owned stride.
//
// Integrity is layered: the write-ahead log wraps every checkpoint file
// in a whole-file CRC32C trailer (wal.VerifyFileCRC) before recovery
// will touch it, and shard.Restore re-validates the structural
// invariants (offset monotonicity, dst lengths, edge counts) after
// decoding — a checkpoint that passes both is safe to serve from.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"probesim/internal/graph"
	"probesim/internal/shard"
)

const (
	spillMagic  = 0x50535053 // "PSPS"
	spillFormat = 1
	// deltaFormat marks an incremental spill: only shards whose version
	// moved since a base full spill carry arrays; the rest ride as a
	// version + absent marker. The header gains the base's batch
	// watermark so recovery can refuse a mismatched base/delta pair.
	deltaFormat = 2

	// maxArrayBytes bounds one decoded array: a corrupt length prefix
	// must not get to allocate the machine before the CRC check (which
	// OpenStore runs first) or the structural validation would catch it.
	maxArrayBytes = 1 << 33

	// arrayChunk is how many u32 values the array codecs move per
	// bufio call — bandwidth-bound I/O instead of per-value calls.
	arrayChunk = 1 << 18
)

// ErrFormat reports a structurally invalid spill.
var ErrFormat = errors.New("persist: invalid snapshot spill")

// Base identifies the full spill a delta is encoded against: the batch
// watermark it covered through plus the per-shard versions it carried.
// The checkpointing loop captures one when it writes a full spill and
// diffs later snapshots against it.
type Base struct {
	LastBatch uint64
	Versions  []uint64
}

// BaseOf captures snap's identity as a delta base.
func BaseOf(snap *shard.StoreSnapshot) Base {
	b := Base{LastBatch: snap.LastBatch(), Versions: make([]uint64, snap.NumShards())}
	for p := range b.Versions {
		b.Versions[p] = snap.ShardVersion(p)
	}
	return b
}

// WriteSnapshot spills snap to w in the durable CSR format.
func WriteSnapshot(w io.Writer, snap *shard.StoreSnapshot) error {
	return writeSnapshot(w, snap, nil)
}

// WriteSnapshotDelta spills only the shards whose version moved since
// base (plus any shards added after it); the rest are written as absent
// markers resolved from the base at read time. The spill I/O per
// checkpoint becomes proportional to churn, not graph size.
func WriteSnapshotDelta(w io.Writer, snap *shard.StoreSnapshot, base Base) error {
	return writeSnapshot(w, snap, &base)
}

func writeSnapshot(w io.Writer, snap *shard.StoreSnapshot, base *Base) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	format := uint32(spillFormat)
	if base != nil {
		format = deltaFormat
	}
	var hdr [40]byte
	binary.LittleEndian.PutUint32(hdr[0:4], spillMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], format)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(snap.NumNodes()))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(snap.NumEdges()))
	binary.LittleEndian.PutUint64(hdr[24:32], snap.Version())
	binary.LittleEndian.PutUint64(hdr[32:40], snap.LastBatch())
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var word [8]byte
	writeU32 := func(x uint32) error {
		binary.LittleEndian.PutUint32(word[:4], x)
		_, err := bw.Write(word[:4])
		return err
	}
	writeU64 := func(x uint64) error {
		binary.LittleEndian.PutUint64(word[:], x)
		_, err := bw.Write(word[:])
		return err
	}
	if base != nil {
		if err := writeU64(base.LastBatch); err != nil {
			return err
		}
	}
	if err := writeU32(snap.Shift()); err != nil {
		return err
	}
	if err := writeU32(uint32(snap.NumShards())); err != nil {
		return err
	}
	// Arrays move through a chunk buffer: one bufio.Write per ~1MB of
	// values, not one per value — checkpoints of billion-edge graphs are
	// bandwidth-bound, not call-bound.
	chunk := make([]byte, 0, arrayChunk*4)
	writeU32s := func(v []uint32) error {
		if err := writeU32(uint32(len(v))); err != nil {
			return err
		}
		for len(v) > 0 {
			n := min(len(v), arrayChunk)
			chunk = chunk[:0]
			for _, x := range v[:n] {
				chunk = binary.LittleEndian.AppendUint32(chunk, x)
			}
			if _, err := bw.Write(chunk); err != nil {
				return err
			}
			v = v[n:]
		}
		return nil
	}
	writeNodes := func(v []graph.NodeID) error {
		if err := writeU32(uint32(len(v))); err != nil {
			return err
		}
		for len(v) > 0 {
			n := min(len(v), arrayChunk)
			chunk = chunk[:0]
			for _, x := range v[:n] {
				chunk = binary.LittleEndian.AppendUint32(chunk, uint32(x))
			}
			if _, err := bw.Write(chunk); err != nil {
				return err
			}
			v = v[n:]
		}
		return nil
	}
	for p := 0; p < snap.NumShards(); p++ {
		if err := writeU64(snap.ShardVersion(p)); err != nil {
			return err
		}
		if base != nil {
			present := p >= len(base.Versions) || snap.ShardVersion(p) != base.Versions[p]
			b := byte(0)
			if present {
				b = 1
			}
			if err := bw.WriteByte(b); err != nil {
				return err
			}
			if !present {
				continue
			}
		}
		sh := snap.Shard(p)
		if err := writeU32s(sh.InOff); err != nil {
			return err
		}
		if err := writeNodes(sh.InDst); err != nil {
			return err
		}
		if err := writeU32s(sh.OutOff); err != nil {
			return err
		}
		if err := writeNodes(sh.OutDst); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// spill is one decoded checkpoint file.
type spill struct {
	format    uint32
	n         uint64
	m         uint64
	version   uint64
	lastBatch uint64
	base      uint64 // delta spills: base full spill's lastBatch
	shift     uint32
	csr       []graph.CSRShard
	versions  []uint64
	present   []bool // delta spills: which shards carry arrays
}

// readSpill decodes one spill file. When 0 <= index < group, the arrays
// of shards outside that scope are SKIPPED (a bufio discard of the
// length-prefixed bytes, no decode, no allocation) and left absent —
// every shard's version still rides along, so the scoped store stays in
// version lockstep with the fleet.
func readSpill(r io.Reader, index, group int) (*spill, error) {
	owns := func(p int) bool { return group <= 1 || p%group == index }
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [40]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != spillMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrFormat, binary.LittleEndian.Uint32(hdr[0:4]))
	}
	sp := &spill{
		format:    binary.LittleEndian.Uint32(hdr[4:8]),
		n:         binary.LittleEndian.Uint64(hdr[8:16]),
		m:         binary.LittleEndian.Uint64(hdr[16:24]),
		version:   binary.LittleEndian.Uint64(hdr[24:32]),
		lastBatch: binary.LittleEndian.Uint64(hdr[32:40]),
	}
	if sp.format != spillFormat && sp.format != deltaFormat {
		return nil, fmt.Errorf("%w: format %d, want %d or %d", ErrFormat, sp.format, spillFormat, deltaFormat)
	}
	if sp.n > 1<<31 {
		return nil, fmt.Errorf("%w: node count %d exceeds int32 range", ErrFormat, sp.n)
	}
	if sp.m > math.MaxInt64 {
		return nil, fmt.Errorf("%w: edge count %d", ErrFormat, sp.m)
	}
	var word [8]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, word[:4]); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		return binary.LittleEndian.Uint32(word[:4]), nil
	}
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, word[:]); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		return binary.LittleEndian.Uint64(word[:]), nil
	}
	var err error
	if sp.format == deltaFormat {
		if sp.base, err = readU64(); err != nil {
			return nil, err
		}
	}
	shift, err := readU32()
	if err != nil {
		return nil, err
	}
	if shift > 31 {
		return nil, fmt.Errorf("%w: shard shift %d", ErrFormat, shift)
	}
	sp.shift = shift
	shards, err := readU32()
	if err != nil {
		return nil, err
	}
	stride := uint64(1) << shift
	wantShards := (sp.n + stride - 1) / stride
	if uint64(shards) != wantShards {
		return nil, fmt.Errorf("%w: %d shards for %d nodes at stride %d, want %d", ErrFormat, shards, sp.n, stride, wantShards)
	}
	// Arrays grow only as bytes actually arrive: readU32Array decodes in
	// bounded chunks (one io.ReadFull per ~1MB of values, allocation
	// tracking delivered bytes), so a corrupt length can neither allocate
	// past the input nor pay a function call per value.
	chunk := make([]byte, arrayChunk*4)
	readU32Array := func(what string) ([]uint32, error) {
		cnt, err := readU32()
		if err != nil {
			return nil, err
		}
		if uint64(cnt)*4 > maxArrayBytes {
			return nil, fmt.Errorf("%w: %s of %d entries", ErrFormat, what, cnt)
		}
		out := make([]uint32, 0, min(int(cnt), arrayChunk))
		for remaining := int(cnt); remaining > 0; {
			n := min(remaining, arrayChunk)
			if _, err := io.ReadFull(br, chunk[:n*4]); err != nil {
				return nil, fmt.Errorf("%w: %s: %v", ErrFormat, what, err)
			}
			for i := 0; i < n; i++ {
				out = append(out, binary.LittleEndian.Uint32(chunk[i*4:]))
			}
			remaining -= n
		}
		return out, nil
	}
	// skipU32Array discards an array without decoding it: the scoped
	// reader's fast path over non-owned shards.
	skipU32Array := func(what string) error {
		cnt, err := readU32()
		if err != nil {
			return err
		}
		if uint64(cnt)*4 > maxArrayBytes {
			return fmt.Errorf("%w: %s of %d entries", ErrFormat, what, cnt)
		}
		if _, err := br.Discard(int(cnt) * 4); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrFormat, what, err)
		}
		return nil
	}
	sp.csr = make([]graph.CSRShard, shards)
	sp.versions = make([]uint64, shards)
	if sp.format == deltaFormat {
		sp.present = make([]bool, shards)
	}
	for p := range sp.csr {
		if sp.versions[p], err = readU64(); err != nil {
			return nil, err
		}
		if sp.format == deltaFormat {
			b, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("%w: present flag: %v", ErrFormat, err)
			}
			if b > 1 {
				return nil, fmt.Errorf("%w: present flag %d", ErrFormat, b)
			}
			sp.present[p] = b == 1
			if b == 0 {
				continue
			}
		}
		if !owns(p) {
			for _, what := range [...]string{"InOff", "InDst", "OutOff", "OutDst"} {
				if err := skipU32Array(what); err != nil {
					return nil, err
				}
			}
			continue
		}
		inOff, err := readU32Array("InOff")
		if err != nil {
			return nil, err
		}
		inDst, err := readU32Array("InDst")
		if err != nil {
			return nil, err
		}
		outOff, err := readU32Array("OutOff")
		if err != nil {
			return nil, err
		}
		outDst, err := readU32Array("OutDst")
		if err != nil {
			return nil, err
		}
		sp.csr[p] = graph.CSRShard{
			InOff:  inOff,
			InDst:  u32sToNodes(inDst),
			OutOff: outOff,
			OutDst: u32sToNodes(outDst),
		}
	}
	// Trailing garbage means the file is not what the writer produced.
	if _, err := br.ReadByte(); err == nil {
		return nil, fmt.Errorf("%w: trailing bytes after last shard", ErrFormat)
	} else if !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return sp, nil
}

// restore turns a decoded (possibly overlaid) spill into a live store.
func (sp *spill) restore(workers, index, group int) (*shard.Store, error) {
	var st *shard.Store
	var err error
	if group > 1 {
		st, err = shard.RestoreScoped(int(sp.n), int64(sp.m), sp.version, sp.lastBatch, sp.shift, sp.csr, sp.versions, workers, index, group)
	} else {
		st, err = shard.Restore(int(sp.n), int64(sp.m), sp.version, sp.lastBatch, sp.shift, sp.csr, sp.versions, workers)
	}
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return st, nil
}

// ReadStore decodes a spill and rebuilds a live store from it: the
// decoded CSR blocks become the published snapshot, the mutable side is
// deep-copied out of them, and the version/apply-once watermark resume
// where the checkpoint left them. workers bounds the store's rebuild
// pool as in shard.NewStore.
func ReadStore(r io.Reader, workers int) (*shard.Store, error) {
	return ReadStoreScoped(r, workers, 0, 0)
}

// ReadStoreScoped is ReadStore for a shard-local worker: only the shards
// p with p%group == index are decoded and restored (group <= 1 reads
// everything); the rest of the file is skipped via its length prefixes.
func ReadStoreScoped(r io.Reader, workers, index, group int) (*shard.Store, error) {
	sp, err := readSpill(r, index, group)
	if err != nil {
		return nil, err
	}
	if sp.format != spillFormat {
		return nil, fmt.Errorf("%w: delta spill without its base (recover through ReadStoreDelta)", ErrFormat)
	}
	return sp.restore(workers, index, group)
}

// ReadStoreDelta rebuilds a store from a base full spill plus a delta
// spill encoded against it: shards the delta flags absent are taken from
// the base, which must agree on their versions and on its batch
// watermark. The scope arguments work as in ReadStoreScoped.
func ReadStoreDelta(base, delta io.Reader, workers, index, group int) (*shard.Store, error) {
	b, err := readSpill(base, index, group)
	if err != nil {
		return nil, fmt.Errorf("persist: base: %w", err)
	}
	if b.format != spillFormat {
		return nil, fmt.Errorf("%w: base is not a full spill", ErrFormat)
	}
	d, err := readSpill(delta, index, group)
	if err != nil {
		return nil, fmt.Errorf("persist: delta: %w", err)
	}
	if d.format != deltaFormat {
		return nil, fmt.Errorf("%w: delta file is a full spill", ErrFormat)
	}
	if d.base != b.lastBatch {
		return nil, fmt.Errorf("%w: delta encoded against base watermark %d, base file covers %d", ErrFormat, d.base, b.lastBatch)
	}
	if d.shift != b.shift {
		return nil, fmt.Errorf("%w: delta stride 2^%d, base 2^%d", ErrFormat, d.shift, b.shift)
	}
	if d.n < b.n || len(d.csr) < len(b.csr) {
		return nil, fmt.Errorf("%w: delta covers %d nodes / %d shards, base %d / %d — nodes never shrink", ErrFormat, d.n, len(d.csr), b.n, len(b.csr))
	}
	for p := range d.csr {
		if d.present[p] {
			continue
		}
		if p >= len(b.csr) {
			return nil, fmt.Errorf("%w: delta omits shard %d, which the base predates", ErrFormat, p)
		}
		if d.versions[p] != b.versions[p] {
			return nil, fmt.Errorf("%w: delta omits shard %d at version %d but base encodes version %d", ErrFormat, p, d.versions[p], b.versions[p])
		}
		d.csr[p] = b.csr[p]
	}
	return d.restore(workers, index, group)
}

// u32sToNodes reinterprets decoded u32s as node ids without another pass
// allocation-wise (NodeID is int32; the slice is reallocated since the
// element types differ, but only once).
func u32sToNodes(v []uint32) []graph.NodeID {
	out := make([]graph.NodeID, len(v))
	for i, x := range v {
		out[i] = graph.NodeID(int32(x))
	}
	return out
}
