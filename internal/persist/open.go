package persist

// Boot-time recovery orchestration shared by cmd/probesim-server and
// cmd/probesim-shardd: one call turns a -data-dir back into a live
// sharded store plus its open write-ahead log, whatever state the
// previous process left behind.

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"probesim/internal/graph"
	"probesim/internal/shard"
	"probesim/internal/wal"
)

// RecoveryStats reports what OpenStore did, for boot logs.
type RecoveryStats struct {
	// Bootstrapped is true when the directory held no state and the
	// store was built from the bootstrap graph.
	Bootstrapped bool
	// CheckpointThrough is the batch id the loaded checkpoint covered
	// (0 when bootstrapped or no checkpoint existed).
	CheckpointThrough uint64
	// Replayed counts log batches applied on top of the checkpoint;
	// ReplaySkipped counts batches the store had already decided (its
	// watermark was ahead of the checkpoint) or that failed semantically
	// on replay exactly as they failed when first submitted.
	Replayed      int64
	ReplaySkipped int64
	// TornBytes is the size of the interrupted trailing write recovery
	// truncated off the log, if any.
	TornBytes int64
	// LastBatch is the store's apply-once watermark after recovery.
	LastBatch uint64
}

// OpenStore opens dir's durable state: it recovers the newest checkpoint
// into a store, replays the write-ahead log tail above the store's
// watermark, and returns the store with its log positioned for the next
// append. An empty directory bootstraps from the bootstrap callback
// (typically "load the -graph file"), publishes, and writes the initial
// checkpoint so the graph file is never needed again.
//
// shards and workers configure a bootstrapped store exactly as
// shard.NewStore does; a recovered store keeps the stride it was
// checkpointed with (shards is ignored), because the partition is fixed
// for the life of a store.
func OpenStore(dir string, shards, workers int, wopt wal.Options, bootstrap func() (*graph.Graph, error)) (*shard.Store, *wal.Log, RecoveryStats, error) {
	return OpenStoreScoped(dir, shards, workers, 0, 0, wopt, bootstrap)
}

// OpenStoreScoped is OpenStore for a shard-local worker: checkpoint
// decoding, bootstrap and the restored store are all scoped to the
// shards p with p%group == index (group <= 1 behaves exactly like
// OpenStore). The write-ahead log itself is NOT scoped — every batch is
// appended and replayed in full so the worker's version counters stay in
// lockstep with the fleet — but log records are a few bytes per op,
// while the checkpoint arrays (the bulk of the directory and of boot
// I/O and heap) shrink to the owned stride.
func OpenStoreScoped(dir string, shards, workers, index, group int, wopt wal.Options, bootstrap func() (*graph.Graph, error)) (*shard.Store, *wal.Log, RecoveryStats, error) {
	var stats RecoveryStats
	lg, rec, err := wal.Open(dir, wopt)
	if err != nil {
		return nil, nil, stats, err
	}
	fail := func(err error) (*shard.Store, *wal.Log, RecoveryStats, error) {
		lg.Close()
		return nil, nil, stats, err
	}
	var st *shard.Store
	if rec.DeltaPath != "" {
		bc, err := wal.OpenCheckpoint(rec.CheckpointPath)
		if err != nil {
			return fail(fmt.Errorf("persist: opening base checkpoint: %w", err))
		}
		dc, err := wal.OpenCheckpoint(rec.DeltaPath)
		if err != nil {
			bc.Close()
			return fail(fmt.Errorf("persist: opening delta checkpoint: %w", err))
		}
		st, err = ReadStoreDelta(bc, dc, workers, index, group)
		bc.Close()
		dc.Close()
		if err != nil {
			return fail(fmt.Errorf("persist: decoding checkpoint %s + %s: %w", rec.CheckpointPath, rec.DeltaPath, err))
		}
		stats.CheckpointThrough = rec.DeltaThrough
	} else if rec.CheckpointPath != "" {
		rc, err := wal.OpenCheckpoint(rec.CheckpointPath)
		if err != nil {
			return fail(fmt.Errorf("persist: opening checkpoint: %w", err))
		}
		st, err = ReadStoreScoped(rc, workers, index, group)
		rc.Close()
		if err != nil {
			return fail(fmt.Errorf("persist: decoding checkpoint %s: %w", rec.CheckpointPath, err))
		}
		stats.CheckpointThrough = rec.CheckpointThrough
	} else if len(rec.Batches) > 0 {
		return fail(fmt.Errorf("persist: %s holds %d log batches but no checkpoint; the initial checkpoint write must have been lost — restore it or start from a fresh directory", dir, len(rec.Batches)))
	} else {
		if bootstrap == nil {
			return fail(fmt.Errorf("persist: %s holds no recoverable state and no bootstrap graph was provided", dir))
		}
		g, err := bootstrap()
		if err != nil {
			return fail(err)
		}
		if group > 1 {
			st = shard.NewStoreScoped(g, shards, workers, index, group)
		} else {
			st = shard.NewStore(g, shards, workers)
		}
		stats.Bootstrapped = true
		// The initial checkpoint makes the directory self-contained: after
		// it lands, recovery never needs the original graph file.
		snap := st.Current()
		if err := lg.Checkpoint(snap.LastBatch(), func(w io.Writer) error {
			return WriteSnapshot(w, snap)
		}); err != nil {
			return fail(fmt.Errorf("persist: initial checkpoint: %w", err))
		}
	}
	stats.TornBytes = rec.TornBytes
	// Replay the tail above the store's own watermark. A batch that fails
	// here failed identically when first submitted (same ops against the
	// same state) and was rejected to its client; the store marks it
	// decided and moves on, converging on the acknowledged graph.
	if err := rec.Replay(st.LastBatch(), func(id uint64, ops []wal.Op) error {
		sops := make([]shard.EdgeOp, len(ops))
		for i, op := range ops {
			sops[i] = shard.EdgeOp{Remove: op.Remove, U: op.U, V: op.V}
		}
		if _, err := st.ApplyBatch(id, sops); err != nil {
			stats.ReplaySkipped++
		} else {
			stats.Replayed++
		}
		return nil
	}); err != nil {
		return fail(err)
	}
	stats.ReplaySkipped += int64(len(rec.Batches)) - stats.Replayed - stats.ReplaySkipped
	// Re-publish the recovered generation so the first query (and the
	// first Meta an assembling router fetches) sees the replayed state.
	st.Publish()
	stats.LastBatch = st.LastBatch()
	return st, lg, stats, nil
}

// Checkpointer periodically spills the store's published snapshot into
// the log's checkpoint slot, truncating covered segments — the cadence
// knob that bounds both recovery replay time and disk growth.
//
// Spills are INCREMENTAL where they can be: after a full spill, the
// checkpointer remembers the per-shard versions it covered and writes
// delta spills carrying only the shards that moved since (plus shards
// added later), cumulatively against that base. A full spill is written
// when there is no base yet (first checkpoint of the process), when at
// least half the shards have moved (a delta would no longer save much
// and would keep old segments alive), or every fullSpillEvery deltas —
// the backstop that lets the log truncate segments, which deltas never
// do.
type Checkpointer struct {
	st    *shard.Store
	lg    *wal.Log
	every int64

	mu      sync.Mutex
	stopped bool
	stop    chan struct{}
	done    chan struct{}
	errs    []error

	base        *Base // versions the newest full spill covered; nil = none yet
	deltasSince int

	fulls         atomic.Int64
	deltas        atomic.Int64
	shardsSpilled atomic.Int64
	shardsSkipped atomic.Int64
}

// fullSpillEvery bounds consecutive delta spills: the next checkpoint
// after this many deltas is full, letting the log truncate the segments
// the delta chain kept alive.
const fullSpillEvery = 8

// CheckpointerStats reports spill effectiveness: how many full and
// delta spills ran, and how many shard CSRs the deltas wrote vs skipped
// as unchanged (the saved fraction of checkpoint I/O).
type CheckpointerStats struct {
	Fulls         int64
	Deltas        int64
	ShardsSpilled int64
	ShardsSkipped int64
}

// Stats returns the checkpointer's spill counters.
func (c *Checkpointer) Stats() CheckpointerStats {
	return CheckpointerStats{
		Fulls:         c.fulls.Load(),
		Deltas:        c.deltas.Load(),
		ShardsSpilled: c.shardsSpilled.Load(),
		ShardsSkipped: c.shardsSkipped.Load(),
	}
}

// StartCheckpointer runs a background loop that checkpoints whenever at
// least every batches have been appended beyond the last checkpoint,
// polling at the given interval (<= 0 means 1s; every <= 0 means 1024).
func StartCheckpointer(st *shard.Store, lg *wal.Log, every int64, interval time.Duration) *Checkpointer {
	if every <= 0 {
		every = 1024
	}
	if interval <= 0 {
		interval = time.Second
	}
	c := &Checkpointer{
		st: st, lg: lg, every: every,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(c.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				if lg.AppendsSinceCheckpoint() >= every {
					if err := c.Checkpoint(); err != nil {
						c.mu.Lock()
						c.errs = append(c.errs, err)
						c.mu.Unlock()
					}
				}
			}
		}
	}()
	return c
}

// Checkpoint spills the currently published snapshot now — as a delta
// against the last full spill when that saves work, as a full spill
// otherwise. Safe to call concurrently with the background loop
// (checkpoint writes serialize).
func (c *Checkpointer) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := c.st.Current()
	if snap == nil {
		return nil
	}
	if snap.LastBatch() <= c.lg.LastCheckpoint() {
		return nil // nothing new is published yet
	}
	full := func() error {
		if err := c.lg.Checkpoint(snap.LastBatch(), func(w io.Writer) error {
			return WriteSnapshot(w, snap)
		}); err != nil {
			return err
		}
		b := BaseOf(snap)
		c.base = &b
		c.deltasSince = 0
		c.fulls.Add(1)
		return nil
	}
	if c.base == nil || c.deltasSince >= fullSpillEvery {
		return full()
	}
	dirty := 0
	for p := 0; p < snap.NumShards(); p++ {
		if p >= len(c.base.Versions) || snap.ShardVersion(p) != c.base.Versions[p] {
			dirty++
		}
	}
	if 2*dirty >= snap.NumShards() {
		return full()
	}
	if err := c.lg.CheckpointDelta(snap.LastBatch(), func(w io.Writer) error {
		return WriteSnapshotDelta(w, snap, *c.base)
	}); err != nil {
		return err
	}
	c.deltasSince++
	c.deltas.Add(1)
	c.shardsSpilled.Add(int64(dirty))
	c.shardsSkipped.Add(int64(snap.NumShards() - dirty))
	return nil
}

// Errs returns checkpoint failures the background loop absorbed.
func (c *Checkpointer) Errs() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]error(nil), c.errs...)
}

// Stop halts the loop and takes one final checkpoint so a graceful
// shutdown restarts with an empty replay tail.
func (c *Checkpointer) Stop() error {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return nil
	}
	c.stopped = true
	c.mu.Unlock()
	close(c.stop)
	<-c.done
	return c.Checkpoint()
}
