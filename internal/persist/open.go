package persist

// Boot-time recovery orchestration shared by cmd/probesim-server and
// cmd/probesim-shardd: one call turns a -data-dir back into a live
// sharded store plus its open write-ahead log, whatever state the
// previous process left behind.

import (
	"fmt"
	"io"
	"sync"
	"time"

	"probesim/internal/graph"
	"probesim/internal/shard"
	"probesim/internal/wal"
)

// RecoveryStats reports what OpenStore did, for boot logs.
type RecoveryStats struct {
	// Bootstrapped is true when the directory held no state and the
	// store was built from the bootstrap graph.
	Bootstrapped bool
	// CheckpointThrough is the batch id the loaded checkpoint covered
	// (0 when bootstrapped or no checkpoint existed).
	CheckpointThrough uint64
	// Replayed counts log batches applied on top of the checkpoint;
	// ReplaySkipped counts batches the store had already decided (its
	// watermark was ahead of the checkpoint) or that failed semantically
	// on replay exactly as they failed when first submitted.
	Replayed      int64
	ReplaySkipped int64
	// TornBytes is the size of the interrupted trailing write recovery
	// truncated off the log, if any.
	TornBytes int64
	// LastBatch is the store's apply-once watermark after recovery.
	LastBatch uint64
}

// OpenStore opens dir's durable state: it recovers the newest checkpoint
// into a store, replays the write-ahead log tail above the store's
// watermark, and returns the store with its log positioned for the next
// append. An empty directory bootstraps from the bootstrap callback
// (typically "load the -graph file"), publishes, and writes the initial
// checkpoint so the graph file is never needed again.
//
// shards and workers configure a bootstrapped store exactly as
// shard.NewStore does; a recovered store keeps the stride it was
// checkpointed with (shards is ignored), because the partition is fixed
// for the life of a store.
func OpenStore(dir string, shards, workers int, wopt wal.Options, bootstrap func() (*graph.Graph, error)) (*shard.Store, *wal.Log, RecoveryStats, error) {
	var stats RecoveryStats
	lg, rec, err := wal.Open(dir, wopt)
	if err != nil {
		return nil, nil, stats, err
	}
	fail := func(err error) (*shard.Store, *wal.Log, RecoveryStats, error) {
		lg.Close()
		return nil, nil, stats, err
	}
	var st *shard.Store
	if rec.CheckpointPath != "" {
		rc, err := wal.OpenCheckpoint(rec.CheckpointPath)
		if err != nil {
			return fail(fmt.Errorf("persist: opening checkpoint: %w", err))
		}
		st, err = ReadStore(rc, workers)
		rc.Close()
		if err != nil {
			return fail(fmt.Errorf("persist: decoding checkpoint %s: %w", rec.CheckpointPath, err))
		}
		stats.CheckpointThrough = rec.CheckpointThrough
	} else if len(rec.Batches) > 0 {
		return fail(fmt.Errorf("persist: %s holds %d log batches but no checkpoint; the initial checkpoint write must have been lost — restore it or start from a fresh directory", dir, len(rec.Batches)))
	} else {
		if bootstrap == nil {
			return fail(fmt.Errorf("persist: %s holds no recoverable state and no bootstrap graph was provided", dir))
		}
		g, err := bootstrap()
		if err != nil {
			return fail(err)
		}
		st = shard.NewStore(g, shards, workers)
		stats.Bootstrapped = true
		// The initial checkpoint makes the directory self-contained: after
		// it lands, recovery never needs the original graph file.
		snap := st.Current()
		if err := lg.Checkpoint(snap.LastBatch(), func(w io.Writer) error {
			return WriteSnapshot(w, snap)
		}); err != nil {
			return fail(fmt.Errorf("persist: initial checkpoint: %w", err))
		}
	}
	stats.TornBytes = rec.TornBytes
	// Replay the tail above the store's own watermark. A batch that fails
	// here failed identically when first submitted (same ops against the
	// same state) and was rejected to its client; the store marks it
	// decided and moves on, converging on the acknowledged graph.
	if err := rec.Replay(st.LastBatch(), func(id uint64, ops []wal.Op) error {
		sops := make([]shard.EdgeOp, len(ops))
		for i, op := range ops {
			sops[i] = shard.EdgeOp{Remove: op.Remove, U: op.U, V: op.V}
		}
		if _, err := st.ApplyBatch(id, sops); err != nil {
			stats.ReplaySkipped++
		} else {
			stats.Replayed++
		}
		return nil
	}); err != nil {
		return fail(err)
	}
	stats.ReplaySkipped += int64(len(rec.Batches)) - stats.Replayed - stats.ReplaySkipped
	// Re-publish the recovered generation so the first query (and the
	// first Meta an assembling router fetches) sees the replayed state.
	st.Publish()
	stats.LastBatch = st.LastBatch()
	return st, lg, stats, nil
}

// Checkpointer periodically spills the store's published snapshot into
// the log's checkpoint slot, truncating covered segments — the cadence
// knob that bounds both recovery replay time and disk growth.
type Checkpointer struct {
	st    *shard.Store
	lg    *wal.Log
	every int64

	mu      sync.Mutex
	stopped bool
	stop    chan struct{}
	done    chan struct{}
	errs    []error
}

// StartCheckpointer runs a background loop that checkpoints whenever at
// least every batches have been appended beyond the last checkpoint,
// polling at the given interval (<= 0 means 1s; every <= 0 means 1024).
func StartCheckpointer(st *shard.Store, lg *wal.Log, every int64, interval time.Duration) *Checkpointer {
	if every <= 0 {
		every = 1024
	}
	if interval <= 0 {
		interval = time.Second
	}
	c := &Checkpointer{
		st: st, lg: lg, every: every,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(c.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				if lg.AppendsSinceCheckpoint() >= every {
					if err := c.Checkpoint(); err != nil {
						c.mu.Lock()
						c.errs = append(c.errs, err)
						c.mu.Unlock()
					}
				}
			}
		}
	}()
	return c
}

// Checkpoint spills the currently published snapshot now. Safe to call
// concurrently with the background loop (checkpoint writes serialize).
func (c *Checkpointer) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := c.st.Current()
	if snap == nil {
		return nil
	}
	if snap.LastBatch() <= c.lg.LastCheckpoint() {
		return nil // nothing new is published yet
	}
	return c.lg.Checkpoint(snap.LastBatch(), func(w io.Writer) error {
		return WriteSnapshot(w, snap)
	})
}

// Errs returns checkpoint failures the background loop absorbed.
func (c *Checkpointer) Errs() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]error(nil), c.errs...)
}

// Stop halts the loop and takes one final checkpoint so a graceful
// shutdown restarts with an empty replay tail.
func (c *Checkpointer) Stop() error {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return nil
	}
	c.stopped = true
	c.mu.Unlock()
	close(c.stop)
	<-c.done
	return c.Checkpoint()
}
