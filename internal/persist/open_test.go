package persist

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"probesim/internal/core"
	"probesim/internal/graph"
	"probesim/internal/shard"
	"probesim/internal/wal"
)

func TestOpenStoreBootstrapAndReopen(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(200, 11)
	st, lg, stats, err := OpenStore(dir, 4, 0, wal.Options{Sync: wal.SyncAlways},
		func() (*graph.Graph, error) { return g, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Bootstrapped {
		t.Fatal("fresh dir did not bootstrap")
	}
	// The initial checkpoint makes the dir self-contained: reopening must
	// never call bootstrap again.
	id, err := lg.Append(0, []wal.Op{{U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyBatch(id, []shard.EdgeOp{{U: 1, V: 2}}); err != nil {
		t.Fatal(err)
	}
	st.Publish()
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	st2, lg2, stats2, err := OpenStore(dir, 4, 0, wal.Options{},
		func() (*graph.Graph, error) {
			t.Fatal("bootstrap called on a recoverable directory")
			return nil, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if stats2.Bootstrapped || stats2.Replayed != 1 {
		t.Fatalf("reopen stats %+v, want 1 replayed batch", stats2)
	}
	if st2.NumEdges() != st.NumEdges() || st2.LastBatch() != id {
		t.Fatalf("recovered edges=%d batch=%d, want %d/%d", st2.NumEdges(), st2.LastBatch(), st.NumEdges(), id)
	}
	sameView(t, st.Current(), st2.Current())
}

func TestOpenStoreEmptyDirNoBootstrap(t *testing.T) {
	if _, _, _, err := OpenStore(t.TempDir(), 4, 0, wal.Options{}, nil); err == nil {
		t.Fatal("empty dir with no bootstrap accepted")
	}
}

// TestCrashRecoveryProperty is the PR's acceptance property: ingest a
// randomized batch stream through the durable write plane (append to the
// log, then apply, exactly like the server), hard-stop at a random point
// — the log is simply abandoned un-closed, and the torn write of the
// in-flight, UNacknowledged batch is simulated with trailing garbage —
// then recover from the directory. Every acknowledged batch must be
// present and single-source + top-k results must be bit-identical to a
// store that ingested the same acknowledged stream uninterrupted.
func TestCrashRecoveryProperty(t *testing.T) {
	const n = 300
	opt := core.Options{EpsA: 0.25, Delta: 0.05, Seed: 99, Workers: 2}
	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(1000 + trial)))
			dir := t.TempDir()
			g := testGraph(n, int64(trial))
			ref := shard.NewStore(g.Clone(), 4, 0) // uninterrupted reference

			st, lg, _, err := OpenStore(dir, 4, 0,
				wal.Options{Sync: wal.SyncAlways, SegmentBytes: 1 << 12},
				func() (*graph.Graph, error) { return g, nil })
			if err != nil {
				t.Fatal(err)
			}
			ck := StartCheckpointer(st, lg, 1<<62, time.Hour) // manual triggers only

			batches := 20 + r.Intn(30)
			crashAt := r.Intn(batches)
			var acked [][]shard.EdgeOp
			for b := 0; b < batches; b++ {
				if b == crashAt {
					break
				}
				ops := make([]shard.EdgeOp, 1+r.Intn(6))
				for i := range ops {
					u := graph.NodeID(r.Intn(n))
					v := graph.NodeID(r.Intn(n))
					for u == v {
						v = graph.NodeID(r.Intn(n))
					}
					// Bias toward adds; removes may legitimately fail and be
					// rejected, which both sides must agree on.
					ops[i] = shard.EdgeOp{Remove: r.Intn(5) == 0, U: u, V: v}
				}
				wops := make([]wal.Op, len(ops))
				for i, op := range ops {
					wops[i] = wal.Op{Remove: op.Remove, U: op.U, V: op.V}
				}
				// The server's discipline: append (durable), then apply, then
				// acknowledge. A batch the store rejects is still "decided":
				// the reference must decide it identically.
				id, err := lg.Append(0, wops)
				if err != nil {
					t.Fatal(err)
				}
				_, applyErr := st.ApplyBatch(id, ops)
				acked = append(acked, ops)
				if _, refErr := ref.ApplyBatch(0, ops); (refErr == nil) != (applyErr == nil) {
					t.Fatalf("batch %d: durable and reference stores disagree on validity: %v vs %v", b, applyErr, refErr)
				}
				if r.Intn(4) == 0 {
					st.Publish()
				}
				if r.Intn(8) == 0 {
					if err := ck.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// CRASH: abandon the store and log without closing. Simulate the
			// torn in-flight write with garbage on the last segment.
			segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
			if len(segs) > 0 && r.Intn(2) == 0 {
				f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				garbage := make([]byte, 1+r.Intn(40))
				r.Read(garbage)
				f.Write(garbage)
				f.Close()
			}

			st2, lg2, stats, err := OpenStore(dir, 4, 0, wal.Options{},
				func() (*graph.Graph, error) {
					return nil, fmt.Errorf("bootstrap must not run on recovery")
				})
			if err != nil {
				t.Fatal(err)
			}
			defer lg2.Close()
			if got, want := st2.LastBatch(), uint64(len(acked)); got != want {
				t.Fatalf("recovered watermark %d, want %d acked batches (stats %+v)", got, want, stats)
			}
			ref.Publish()
			refSnap := ref.Current()
			gotSnap := st2.Current()
			if err := gotSnap.Validate(); err != nil {
				t.Fatal(err)
			}
			sameView(t, refSnap, gotSnap)

			// Bit-identical queries, not just equal graphs.
			for _, u := range []graph.NodeID{0, 7, graph.NodeID(r.Intn(n))} {
				want, err := core.SingleSource(context.Background(), refSnap, u, opt)
				if err != nil {
					t.Fatal(err)
				}
				got, err := core.SingleSource(context.Background(), gotSnap, u, opt)
				if err != nil {
					t.Fatal(err)
				}
				for v := range want {
					if want[v] != got[v] {
						t.Fatalf("source %d: s(%d) = %v recovered vs %v reference", u, v, got[v], want[v])
					}
				}
				wantK, err := core.TopK(context.Background(), refSnap, u, 10, opt)
				if err != nil {
					t.Fatal(err)
				}
				gotK, err := core.TopK(context.Background(), gotSnap, u, 10, opt)
				if err != nil {
					t.Fatal(err)
				}
				if len(wantK) != len(gotK) {
					t.Fatalf("source %d: top-k lengths %d vs %d", u, len(gotK), len(wantK))
				}
				for i := range wantK {
					if wantK[i] != gotK[i] {
						t.Fatalf("source %d rank %d: %+v vs %+v", u, i, gotK[i], wantK[i])
					}
				}
			}
		})
	}
}
