package persist

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"probesim/internal/graph"
	"probesim/internal/shard"
	"probesim/internal/wal"
)

// churn applies one identified batch touching a couple of shards and
// republishes.
func churn(t *testing.T, st *shard.Store, id uint64, ops []shard.EdgeOp) *shard.StoreSnapshot {
	t.Helper()
	if _, err := st.ApplyBatch(id, ops); err != nil {
		t.Fatal(err)
	}
	return st.Publish()
}

func TestDeltaSpillRoundTrip(t *testing.T) {
	g := testGraph(400, 9)
	st := shard.NewStore(g, 8, 0)
	base := st.Publish()
	var baseBuf bytes.Buffer
	if err := WriteSnapshot(&baseBuf, base); err != nil {
		t.Fatal(err)
	}
	bref := BaseOf(base)

	// Touch a strict subset of shards, then delta-spill.
	snap := churn(t, st, 7, []shard.EdgeOp{{U: 1, V: 2}, {U: 3, V: 1}})
	var deltaBuf bytes.Buffer
	if err := WriteSnapshotDelta(&deltaBuf, snap, bref); err != nil {
		t.Fatal(err)
	}
	if deltaBuf.Len() >= baseBuf.Len()/2 {
		t.Fatalf("delta spill of %d bytes vs full %d: not incremental", deltaBuf.Len(), baseBuf.Len())
	}

	got, err := ReadStoreDelta(bytes.NewReader(baseBuf.Bytes()), bytes.NewReader(deltaBuf.Bytes()), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	gsnap := got.Current()
	if err := gsnap.Validate(); err != nil {
		t.Fatal(err)
	}
	if gsnap.Version() != snap.Version() || gsnap.LastBatch() != snap.LastBatch() {
		t.Fatalf("version/batch %d/%d, want %d/%d", gsnap.Version(), gsnap.LastBatch(), snap.Version(), snap.LastBatch())
	}
	sameView(t, snap, gsnap)

	// A delta against the WRONG base must be refused.
	snap2 := churn(t, st, 8, []shard.EdgeOp{{U: 9, V: 10}})
	var delta2 bytes.Buffer
	if err := WriteSnapshotDelta(&delta2, snap2, BaseOf(snap)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStoreDelta(bytes.NewReader(baseBuf.Bytes()), bytes.NewReader(delta2.Bytes()), 0, 0, 0); !errors.Is(err, ErrFormat) {
		t.Fatalf("mismatched base accepted: %v", err)
	}
	// And a delta cannot be read as a standalone spill.
	if _, err := ReadStore(bytes.NewReader(deltaBuf.Bytes()), 0); !errors.Is(err, ErrFormat) {
		t.Fatalf("standalone delta read: %v", err)
	}
}

// TestDeltaSpillCoversAddedShards pins the growth case: nodes added
// after the base extend the shard set, and the delta must carry the new
// shards wholesale.
func TestDeltaSpillCoversAddedShards(t *testing.T) {
	g := testGraph(64, 3)
	st := shard.NewStore(g, 8, 0) // stride 8
	base := st.Publish()
	var baseBuf bytes.Buffer
	if err := WriteSnapshot(&baseBuf, base); err != nil {
		t.Fatal(err)
	}
	bref := BaseOf(base)
	for i := 0; i < 10; i++ { // grows past shard 8's range
		st.AddNode()
	}
	snap := churn(t, st, 3, []shard.EdgeOp{{U: 70, V: 1}})
	if snap.NumShards() <= base.NumShards() {
		t.Fatalf("growth did not add shards: %d vs %d", snap.NumShards(), base.NumShards())
	}
	var deltaBuf bytes.Buffer
	if err := WriteSnapshotDelta(&deltaBuf, snap, bref); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStoreDelta(bytes.NewReader(baseBuf.Bytes()), bytes.NewReader(deltaBuf.Bytes()), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameView(t, snap, got.Current())
}

func TestScopedSpillReadSkipsUnowned(t *testing.T) {
	const group = 3
	g := testGraph(500, 13)
	full := shard.NewStore(g, 16, 0)
	snap := full.Publish()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	for index := 0; index < group; index++ {
		st, err := ReadStoreScoped(bytes.NewReader(buf.Bytes()), 0, index, group)
		if err != nil {
			t.Fatalf("index %d: %v", index, err)
		}
		ss := st.Current()
		if !ss.Scoped() {
			t.Fatalf("index %d: snapshot not scoped", index)
		}
		if ss.Version() != snap.Version() || ss.NumEdges() != snap.NumEdges() {
			t.Fatalf("index %d: counters diverged", index)
		}
		for p := 0; p < ss.NumShards(); p++ {
			owned := p%group == index
			if ss.ShardPresent(p) != owned {
				t.Fatalf("index %d shard %d: present=%v want %v", index, p, ss.ShardPresent(p), owned)
			}
			if ss.ShardVersion(p) != snap.ShardVersion(p) {
				t.Fatalf("index %d shard %d: version drift", index, p)
			}
			if owned && !reflect.DeepEqual(ss.Shard(p), snap.Shard(p)) {
				t.Fatalf("index %d shard %d: CSR differs", index, p)
			}
		}
	}
}

// TestOpenStoreScopedDeltaRecovery drives the full durable loop for a
// scoped worker: bootstrap, churn through the WAL with delta
// checkpoints, crash (drop the Log without final checkpoint), recover,
// and compare against a full store that saw the same history.
func TestOpenStoreScopedDeltaRecovery(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(300, 21)
	bootstrap := func() (*graph.Graph, error) { return g, nil }
	ref := shard.NewStore(g, 16, 0)

	st, lg, stats, err := OpenStoreScoped(dir, 16, 0, 1, 2, wal.Options{Sync: wal.SyncAlways}, bootstrap)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Bootstrapped {
		t.Fatal("expected bootstrap")
	}
	ck := &Checkpointer{st: st, lg: lg, stop: make(chan struct{}), done: make(chan struct{})}
	close(ck.done) // no background loop; we drive Checkpoint directly

	batches := [][]shard.EdgeOp{
		{{U: 1, V: 2}, {U: 2, V: 3}},
		{{U: 40, V: 41}},
		{{Remove: true, U: 1, V: 2}},
		{{U: 100, V: 200}, {U: 201, V: 100}},
	}
	var id uint64
	for i, ops := range batches {
		id++
		wops := make([]wal.Op, len(ops))
		for j, op := range ops {
			wops[j] = wal.Op{Remove: op.Remove, U: op.U, V: op.V}
		}
		if _, err := lg.Append(id, wops); err != nil {
			t.Fatal(err)
		}
		if _, err := st.ApplyBatch(id, ops); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.ApplyBatch(id, ops); err != nil {
			t.Fatal(err)
		}
		st.Publish()
		ref.Publish()
		// Checkpoint after the first two batches only: recovery must
		// replay the tail above the newest (delta) checkpoint.
		if i < 2 {
			if err := ck.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	cs := ck.Stats()
	if cs.Fulls != 1 || cs.Deltas != 1 {
		t.Fatalf("checkpointer wrote %d fulls / %d deltas, want 1/1", cs.Fulls, cs.Deltas)
	}
	if cs.ShardsSkipped == 0 {
		t.Fatal("delta spill skipped no shards")
	}
	lg.Close() // crash: no final checkpoint

	// The directory must now hold a full base AND a delta.
	names, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*"))
	var haveFull, haveDelta bool
	for _, n := range names {
		haveFull = haveFull || strings.HasSuffix(n, ".ck")
		haveDelta = haveDelta || strings.HasSuffix(n, ".dck")
	}
	if !haveFull || !haveDelta {
		t.Fatalf("checkpoint files %v: want one .ck and one .dck", names)
	}

	re, lg2, rstats, err := OpenStoreScoped(dir, 16, 0, 1, 2, wal.Options{Sync: wal.SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if rstats.Bootstrapped {
		t.Fatal("second open bootstrapped")
	}
	if rstats.Replayed != 2 {
		t.Fatalf("replayed %d batches, want 2", rstats.Replayed)
	}
	if re.LastBatch() != id || re.Version() != ref.Version() || re.NumEdges() != ref.NumEdges() {
		t.Fatalf("recovered watermark/version/edges %d/%d/%d, want %d/%d/%d",
			re.LastBatch(), re.Version(), re.NumEdges(), id, ref.Version(), ref.NumEdges())
	}
	rs, fs := re.Current(), ref.Current()
	for p := 0; p < rs.NumShards(); p++ {
		if rs.ShardVersion(p) != fs.ShardVersion(p) {
			t.Fatalf("shard %d version %d, full ref %d", p, rs.ShardVersion(p), fs.ShardVersion(p))
		}
		if owned := p%2 == 1; rs.ShardPresent(p) != owned {
			t.Fatalf("shard %d present=%v, want %v", p, rs.ShardPresent(p), owned)
		}
		if rs.ShardPresent(p) && !reflect.DeepEqual(rs.Shard(p), fs.Shard(p)) {
			t.Fatalf("shard %d CSR diverged from the full reference", p)
		}
	}
}

// TestDeltaRecoveryFallsBackWhenDeltaCorrupt pins the safety property
// that justifies deltas never truncating segments: clobber the delta
// file and recovery must come back via base + full replay, identically.
func TestDeltaRecoveryFallsBackWhenDeltaCorrupt(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(200, 5)
	st, lg, _, err := OpenStore(dir, 8, 0, wal.Options{Sync: wal.SyncAlways}, func() (*graph.Graph, error) { return g, nil })
	if err != nil {
		t.Fatal(err)
	}
	ck := &Checkpointer{st: st, lg: lg, stop: make(chan struct{}), done: make(chan struct{})}
	close(ck.done)
	var id uint64
	apply := func(ops []shard.EdgeOp) {
		id++
		wops := make([]wal.Op, len(ops))
		for j, op := range ops {
			wops[j] = wal.Op{Remove: op.Remove, U: op.U, V: op.V}
		}
		if _, err := lg.Append(id, wops); err != nil {
			t.Fatal(err)
		}
		if _, err := st.ApplyBatch(id, ops); err != nil {
			t.Fatal(err)
		}
		st.Publish()
	}
	apply([]shard.EdgeOp{{U: 3, V: 4}})
	if err := ck.Checkpoint(); err != nil { // full base (no base yet)
		t.Fatal(err)
	}
	apply([]shard.EdgeOp{{U: 5, V: 6}})
	if err := ck.Checkpoint(); err != nil { // delta
		t.Fatal(err)
	}
	apply([]shard.EdgeOp{{U: 7, V: 8}})
	want := st.Current()
	lg.Close()

	deltas, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.dck"))
	if len(deltas) != 1 {
		t.Fatalf("delta files: %v", deltas)
	}
	if err := os.Truncate(deltas[0], 5); err != nil {
		t.Fatal(err)
	}

	re, lg2, rstats, err := OpenStore(dir, 8, 0, wal.Options{Sync: wal.SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	// Both logged batches replay on top of the base checkpoint.
	if rstats.Replayed != 2 {
		t.Fatalf("replayed %d, want 2", rstats.Replayed)
	}
	sameView(t, want, re.Current())
	if re.LastBatch() != id {
		t.Fatalf("watermark %d, want %d", re.LastBatch(), id)
	}
}

var _ = io.Discard // keep io imported if assertions above change
