package exp

import (
	"context"
	"time"

	"probesim/internal/core"
	"probesim/internal/dataset"
	"probesim/internal/graph"
	"probesim/internal/simjoin"
)

// Join exercises the similarity-join extension [E-A9]: an all-pairs
// threshold join and a global top-k join built on ProbeSim single-source
// queries, reported with sizes and wall-clock. The point is architectural:
// joins inherit the εa guarantee and need no join index, so they remain
// valid under updates — the workload §5's dedicated join algorithms
// ([21, 26, 36]) precompute for.
func Join(c Config) error {
	c = c.withDefaults()
	header(c, "SimRank similarity join on ProbeSim [E-A9]")
	spec, err := dataset.ByName("hepth-s")
	if err != nil {
		return err
	}
	ctx, err := c.buildSmall(spec)
	if err != nil {
		return err
	}
	datasetHeader(c, spec, ctx.g)
	opt := simjoin.Options{
		Query:   core.Options{EpsA: 0.08, Seed: c.Seed},
		Workers: c.Workers,
	}
	thetas := []float64{0.3, 0.2, 0.1}
	if c.Quick {
		// Each join is one single-source query per source; keep the smoke
		// run short by loosening εa and joining over a source subset.
		opt.Query.EpsA = 0.12
		thetas = []float64{0.1}
		for v := 0; v < ctx.g.NumNodes() && len(opt.Sources) < 150; v++ {
			if ctx.g.InDegree(graph.NodeID(v)) > 0 {
				opt.Sources = append(opt.Sources, graph.NodeID(v))
			}
		}
	}

	for _, theta := range thetas {
		start := time.Now()
		pairs, err := simjoin.ThresholdJoin(context.Background(), ctx.g, theta, opt)
		if err != nil {
			return err
		}
		c.printf("threshold θ=%.2f: %6d pairs in %v\n",
			theta, len(pairs), time.Since(start).Round(time.Millisecond))
	}

	start := time.Now()
	top, err := simjoin.TopKJoin(context.Background(), ctx.g, 10, opt)
	if err != nil {
		return err
	}
	c.printf("top-10 pairs in %v:\n", time.Since(start).Round(time.Millisecond))
	for i, p := range top {
		exact := ctx.truth.At(p.U, p.V)
		c.printf("  %2d. (%5d, %5d)  est=%.4f  exact=%.4f\n", i+1, p.U, p.V, p.Score, exact)
	}
	return nil
}
