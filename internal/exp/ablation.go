package exp

import (
	"context"
	"time"

	"probesim/internal/core"
	"probesim/internal/dataset"
	"probesim/internal/gen"
	"probesim/internal/metrics"
)

// Ablation runs the design-choice study called out in DESIGN.md [E-A1]:
// every ProbeSim mode at the same εa, on one small graph (with exact error
// against the Power Method) and one medium graph (timing only). It
// quantifies what each §4 optimization buys: pruning cuts probe work,
// batching removes duplicate probes, the hybrid bounds worst-case level
// expansion.
func Ablation(c Config) error {
	c = c.withDefaults()
	header(c, "Ablation: ProbeSim modes at fixed eps_a=0.1 [E-A1]")
	modes := []core.Mode{
		core.ModeBasic, core.ModePruned, core.ModeBatch,
		core.ModeRandomized, core.ModeHybrid, core.ModeAuto,
	}

	// Small graph: hepph-s (densest of the small stand-ins).
	spec, err := dataset.ByName("hepph-s")
	if err != nil {
		return err
	}
	ctx, err := c.buildSmall(spec)
	if err != nil {
		return err
	}
	datasetHeader(c, spec, ctx.g)
	c.printf("%-12s %12s %12s %12s\n", "mode", "avg-time(ms)", "AbsError", "walks")
	for _, mode := range modes {
		opt := core.Options{EpsA: 0.1, Mode: mode, Workers: c.Workers, Seed: c.Seed}
		plan, err := core.PlanFor(opt, ctx.g.NumNodes())
		if err != nil {
			return err
		}
		var total time.Duration
		sumErr := 0.0
		for _, u := range ctx.queries {
			start := time.Now()
			est, err := core.SingleSource(context.Background(), ctx.g, u, opt)
			if err != nil {
				return err
			}
			total += time.Since(start)
			sumErr += metrics.MaxAbsError(est, ctx.truth.Row(u), u)
		}
		q := float64(len(ctx.queries))
		c.printf("%-12s %12.3f %12.5f %12d\n",
			mode.String(), float64(total.Microseconds())/1000/q, sumErr/q, plan.NumWalks)
	}

	// Medium graph: power-law, timing only.
	size := 50000
	if c.Quick {
		size = 8000
	}
	g := gen.PreferentialAttachment(size, 10, c.Seed)
	c.printf("--- medium power-law graph (n=%d m=%d) ---\n", g.NumNodes(), g.NumEdges())
	c.printf("%-12s %12s\n", "mode", "avg-time(ms)")
	queries := queryNodes(g, 3, c.Seed+31)
	for _, mode := range modes {
		opt := core.Options{EpsA: 0.1, Mode: mode, Workers: c.Workers, Seed: c.Seed}
		var total time.Duration
		for _, u := range queries {
			start := time.Now()
			if _, err := core.SingleSource(context.Background(), g, u, opt); err != nil {
				return err
			}
			total += time.Since(start)
		}
		c.printf("%-12s %12.3f\n", mode.String(), float64(total.Microseconds())/1000/float64(len(queries)))
	}

	// Pruning-parameter sensitivity: scale εt and εp jointly.
	c.printf("--- pruning sensitivity on %s (walk cap and probe pruning scale with eps_a split) ---\n", spec.Name)
	c.printf("%-22s %12s %12s\n", "configuration", "avg-time(ms)", "AbsError")
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"no pruning (basic)", core.Options{EpsA: 0.1, Mode: core.ModeBasic, Workers: c.Workers, Seed: c.Seed}},
		{"pruned, default split", core.Options{EpsA: 0.1, Mode: core.ModePruned, Workers: c.Workers, Seed: c.Seed}},
		{"pruned + compensation", core.Options{EpsA: 0.1, Mode: core.ModePruned, Workers: c.Workers, Seed: c.Seed, CompensateTruncation: true}},
	} {
		var total time.Duration
		sumErr := 0.0
		for _, u := range ctx.queries {
			start := time.Now()
			est, err := core.SingleSource(context.Background(), ctx.g, u, cfg.opt)
			if err != nil {
				return err
			}
			total += time.Since(start)
			sumErr += metrics.MaxAbsError(est, ctx.truth.Row(u), u)
		}
		q := float64(len(ctx.queries))
		c.printf("%-22s %12.3f %12.5f\n", cfg.name, float64(total.Microseconds())/1000/q, sumErr/q)
	}
	return nil
}
