package exp

import (
	"testing"

	"probesim/internal/dataset"
)

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		512:             "512 B",
		2 << 10:         "2.00 KB",
		3 << 20:         "3.00 MB",
		5 << 30:         "5.00 GB",
		1536:            "1.50 KB",
		(3 << 30) / 2:   "1.50 GB",
		(5 << 20) * 100: "500.00 MB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestQueryNodesSkipsZeroInDegree(t *testing.T) {
	spec, err := dataset.ByName("wiki-vote-s")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Build(1)
	qs := queryNodes(g, 10, 17)
	if len(qs) != 10 {
		t.Fatalf("got %d query nodes, want 10", len(qs))
	}
	seen := map[int32]bool{}
	for _, u := range qs {
		if g.InDegree(u) == 0 {
			t.Fatalf("query node %d has zero in-degree", u)
		}
		if seen[u] {
			t.Fatalf("query node %d repeated", u)
		}
		seen[u] = true
	}
}

func TestPickOther(t *testing.T) {
	if pickOther(5, 0) != 1 || pickOther(5, 3) != 0 {
		t.Fatal("pickOther must return a different node")
	}
}

func TestConfigQuickShrinks(t *testing.T) {
	c := Config{Quick: true, QueriesSmall: 50, QueriesLarge: 10}.withDefaults()
	if c.QueriesSmall > 4 || c.QueriesLarge > 2 {
		t.Fatalf("quick mode did not shrink query counts: %d, %d", c.QueriesSmall, c.QueriesLarge)
	}
	if len(c.EpsSweep) > 2 {
		t.Fatalf("quick mode did not shrink the eps sweep: %v", c.EpsSweep)
	}
}
