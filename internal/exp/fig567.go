package exp

import (
	"probesim/internal/dataset"
	"probesim/internal/metrics"
	"probesim/internal/topsim"
)

// Fig567 reproduces Figures 5, 6 and 7 [E-F5, E-F6, E-F7]: Precision@k,
// NDCG@k and the Kendall-τ difference of top-k answers versus average
// query time on the four small graphs (k = 50, ground truth from the
// Power Method). The paper draws three figures from the same runs; we
// print the three metric columns side by side.
func Fig567(c Config) error {
	c = c.withDefaults()
	header(c, "Figures 5-7: top-k Precision@k / NDCG@k / Kendall-tau vs query time (small graphs)")
	for _, spec := range dataset.Small() {
		ctx, err := c.buildSmall(spec)
		if err != nil {
			return err
		}
		datasetHeader(c, spec, ctx.g)
		c.printf("%-18s %-24s %12s %11s %9s %9s\n",
			"method", "params", "avg-time(ms)", "Precision@k", "NDCG@k", "tau")

		// Ground-truth top-k per query node, from the exact matrix.
		truthTopK := make([][]int32, len(ctx.queries))
		for i, u := range ctx.queries {
			truthTopK[i] = metrics.ExactTopK(ctx.truth.Row(u), u, c.K)
		}

		var algos []algo
		for _, eps := range c.EpsSweep {
			algos = append(algos, probeSimAlgo(ctx.g, c, eps))
		}
		tsfA, _, _ := tsfAlgo(ctx.g, c)
		algos = append(algos, tsfA,
			topsimAlgo(ctx.g, c, topsim.TopSimSM),
			topsimAlgo(ctx.g, c, topsim.TrunTopSimSM),
			topsimAlgo(ctx.g, c, topsim.PrioTopSimSM),
		)
		if c.IncludeMC {
			algos = append(algos, mcAlgo(ctx.g, c, c.EpsSweep[len(c.EpsSweep)-1]))
		}
		for _, a := range algos {
			avgTime, results, err := timedTopK(a, ctx.queries, c.K)
			if err != nil {
				return err
			}
			var sumP, sumN, sumT float64
			for i, u := range ctx.queries {
				got := nodesOf(results[i])
				score := metrics.ScoreFromSlice(ctx.truth.Row(u))
				sumP += metrics.PrecisionAtK(got, truthTopK[i])
				sumN += metrics.NDCGAtK(got, truthTopK[i], score)
				sumT += metrics.KendallTau(got, score)
			}
			q := float64(len(ctx.queries))
			c.printf("%-18s %-24s %12.3f %11.4f %9.4f %9.4f\n",
				a.name, a.param, float64(avgTime.Microseconds())/1000, sumP/q, sumN/q, sumT/q)
		}
	}
	return nil
}
