package exp

import (
	"bytes"
	"strings"
	"testing"
)

// Smoke tests for the extension runners E-A6..E-A12: each must finish in
// quick mode and print the markers the experiment's conclusions rest on.

func runQuick(t *testing.T, f func(Config) error) string {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	var buf bytes.Buffer
	if err := f(quickConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func requireAll(t *testing.T, out string, wants ...string) {
	t.Helper()
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestIndexContrastQuick(t *testing.T) {
	out := runQuick(t, IndexContrast)
	requireAll(t, out,
		"E-A6", "ProbeSim", "Fingerprint", "rebuild required",
		"fresh answer, no maintenance")
	if strings.Contains(out, "BUG:") {
		t.Fatalf("runner reported a bug:\n%s", out)
	}
}

func TestLinearBiasQuick(t *testing.T) {
	out := runQuick(t, LinearBias)
	requireAll(t, out, "E-A7", "naive-D", "exact-D", "MC-D", "ProbeSim")
}

func TestScaleOutQuick(t *testing.T) {
	out := runQuick(t, ScaleOut)
	requireAll(t, out, "E-A8", "machines", "migrations", "broadcast",
		"messages: 0")
}

func TestJoinQuick(t *testing.T) {
	out := runQuick(t, Join)
	requireAll(t, out, "E-A9", "threshold", "top-10 pairs", "exact=")
}

func TestGuaranteeCoverageQuick(t *testing.T) {
	out := runQuick(t, GuaranteeCoverage)
	requireAll(t, out, "E-A10", "coverage", "exceed=0", "chi2")
}

func TestChurnQuick(t *testing.T) {
	out := runQuick(t, Churn)
	requireAll(t, out, "E-A11", "uniform", "preferential", "window",
		"guarantee holds")
	if strings.Contains(out, "BUG:") {
		t.Fatalf("runner reported a bug:\n%s", out)
	}
}

func TestProgressiveQuick(t *testing.T) {
	out := runQuick(t, Progressive)
	requireAll(t, out, "E-A12", "static(ms)", "prog(ms)", "walks%")
}

func TestRunDispatchesExtensions(t *testing.T) {
	names := map[string]bool{}
	for _, r := range Runners() {
		names[r.Name] = true
	}
	for _, want := range []string{"indexes", "linear", "scaleout", "join", "coverage", "churn", "progressive"} {
		if !names[want] {
			t.Errorf("runner %q not registered", want)
		}
	}
	if err := Run("definitely-not-an-experiment", quickConfig(&bytes.Buffer{})); err == nil {
		t.Error("unknown experiment name accepted")
	}
}
