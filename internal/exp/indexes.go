package exp

import (
	"context"
	"time"

	"probesim/internal/core"
	"probesim/internal/dataset"
	"probesim/internal/fingerprint"
	"probesim/internal/graph"
	"probesim/internal/metrics"
)

// IndexContrast runs the precomputed-walk-index study [E-A6]: the
// Fogaras–Rácz fingerprint index answers queries from stored walks with the
// same Monte Carlo guarantee ProbeSim has, but pays for it in index bytes
// and rebuild-on-update — exactly the trade-off §5 cites when dismissing
// the approach for sizable graphs. The runner reports build time, index
// size relative to the graph, query time, accuracy, and what happens after
// one edge update.
func IndexContrast(c Config) error {
	c = c.withDefaults()
	header(c, "Precomputed-walk index: ProbeSim vs Fingerprint [E-A6]")
	spec, err := dataset.ByName("hepth-s")
	if err != nil {
		return err
	}
	ctx, err := c.buildSmall(spec)
	if err != nil {
		return err
	}
	datasetHeader(c, spec, ctx.g)
	graphBytes := ctx.g.MemoryBytes()
	c.printf("graph size: %s\n", fmtBytes(graphBytes))

	eps := 0.05
	q := float64(len(ctx.queries))
	c.printf("%-12s %10s %14s %12s %10s %18s\n",
		"method", "prep(s)", "index", "query(ms)", "AbsError", "after update")

	// ProbeSim: index-free.
	psOpt := core.Options{EpsA: eps, Workers: c.Workers, Seed: c.Seed}
	var psTime time.Duration
	var psErr float64
	for _, u := range ctx.queries {
		start := time.Now()
		est, err := core.SingleSource(context.Background(), ctx.g, u, psOpt)
		if err != nil {
			return err
		}
		psTime += time.Since(start)
		psErr += metrics.MaxAbsError(est, ctx.truth.Row(u), u)
	}
	c.printf("%-12s %10s %14s %12.3f %10.5f %18s\n",
		"ProbeSim", "0", "none",
		float64(psTime.Microseconds())/1000/q, psErr/q, "still valid")

	// Fingerprint: precompute walks with the same (ε, δ) target.
	start := time.Now()
	idx, err := fingerprint.Build(ctx.g, fingerprint.BuildOptions{
		Eps: eps, Delta: 0.01, Seed: c.Seed, Workers: c.Workers,
	})
	if err != nil {
		return err
	}
	buildTime := time.Since(start)
	var fpTime time.Duration
	var fpErr float64
	for _, u := range ctx.queries {
		start := time.Now()
		est, err := idx.SingleSource(u)
		if err != nil {
			return err
		}
		fpTime += time.Since(start)
		fpErr += metrics.MaxAbsError(est, ctx.truth.Row(u), u)
	}
	c.printf("%-12s %10.2f %14s %12.3f %10.5f %18s\n",
		"Fingerprint", buildTime.Seconds(),
		fmtBytes(idx.MemoryBytes()),
		float64(fpTime.Microseconds())/1000/q, fpErr/q, "ErrStale: rebuild")
	c.printf("fingerprint stores %d walks/node; index is %.0fx the graph\n",
		idx.NumWalks(), float64(idx.MemoryBytes())/float64(graphBytes))

	// Demonstrate the staleness contract that motivates being index-free.
	gg := ctx.g
	u0 := ctx.queries[0]
	if err := gg.AddEdge(u0, pickOther(gg.NumNodes(), u0)); err != nil {
		return err
	}
	if _, err := idx.SingleSource(u0); err == nil {
		c.printf("BUG: fingerprint answered on a mutated graph\n")
	} else {
		c.printf("after 1 edge insert: fingerprint -> %v\n", err)
	}
	if _, err := core.SingleSource(context.Background(), gg, u0, psOpt); err != nil {
		return err
	}
	c.printf("after 1 edge insert: ProbeSim -> fresh answer, no maintenance\n")
	return nil
}

// pickOther returns a node different from u on a graph with n >= 2 nodes.
func pickOther(n int, u graph.NodeID) graph.NodeID {
	if u == 0 {
		return 1
	}
	return 0
}
