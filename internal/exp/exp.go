// Package exp is the experiment harness: one runner per table and figure
// of the paper's evaluation (§6), printing the same rows and series the
// paper reports. cmd/experiments is the command-line entry point; the
// repository-root benchmarks call the same runners.
//
// Absolute numbers differ from the paper (different hardware, synthetic
// dataset stand-ins at reduced scale — see internal/dataset and DESIGN.md
// §5), but the comparisons the paper draws — who wins, by roughly what
// factor, where the crossovers fall, how index sizes blow up — are
// reproduced. EXPERIMENTS.md records paper-vs-measured for every
// experiment.
package exp

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"probesim/internal/core"
	"probesim/internal/dataset"
	"probesim/internal/graph"
	"probesim/internal/mc"
	"probesim/internal/power"
	"probesim/internal/topsim"
	"probesim/internal/tsf"
	"probesim/internal/xrand"
)

// Config controls every runner. Zero values select paper-faithful defaults
// scaled to finish a full run in minutes; Quick shrinks them further for
// smoke tests and benchmarks.
type Config struct {
	// Out receives the report (default os.Stdout is set by the caller).
	Out io.Writer
	// Seed drives dataset generation, query selection and all algorithms.
	// Default 1.
	Seed uint64
	// QueriesSmall / QueriesLarge are the number of query nodes per small /
	// large dataset (paper: 100 and 20). Defaults: 20 and 5.
	QueriesSmall, QueriesLarge int
	// K is the top-k cutoff (paper: 50).
	K int
	// EpsSweep is ProbeSim's εa sweep for Figures 4-7 (paper: 0.0125,
	// 0.025, 0.05, 0.1).
	EpsSweep []float64
	// EpsLarge is ProbeSim's fixed εa for the large-graph experiments
	// (paper: 0.1).
	EpsLarge float64
	// TSFRg / TSFRq are TSF's index parameters (paper: 300 and 40).
	TSFRg, TSFRq int
	// TopSimT, TopSimInvH, TopSimEta, TopSimH are the TopSim family
	// parameters (paper: 3, 100, 0.001, 100).
	TopSimT, TopSimInvH int
	TopSimEta           float64
	TopSimH             int
	// ExpertEps is the pooling expert's absolute error (paper: 1e-4; our
	// default 0.01 keeps the suite fast — see DESIGN.md §5).
	ExpertEps float64
	// IncludeMC adds the Monte Carlo competitor to the small-graph
	// experiments (the paper evaluates it but omits it from the figures).
	IncludeMC bool
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// Quick shrinks datasets and query counts for smoke runs.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.QueriesSmall == 0 {
		c.QueriesSmall = 20
	}
	if c.QueriesLarge == 0 {
		c.QueriesLarge = 5
	}
	if c.K == 0 {
		c.K = 50
	}
	if len(c.EpsSweep) == 0 {
		c.EpsSweep = []float64{0.0125, 0.025, 0.05, 0.1}
	}
	if c.EpsLarge == 0 {
		c.EpsLarge = 0.1
	}
	if c.TSFRg == 0 {
		c.TSFRg = 300
	}
	if c.TSFRq == 0 {
		c.TSFRq = 40
	}
	if c.TopSimT == 0 {
		c.TopSimT = 3
	}
	if c.TopSimInvH == 0 {
		c.TopSimInvH = 100
	}
	if c.TopSimEta == 0 {
		c.TopSimEta = 0.001
	}
	if c.TopSimH == 0 {
		c.TopSimH = 100
	}
	if c.ExpertEps == 0 {
		c.ExpertEps = 0.01
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Quick {
		if c.QueriesSmall > 4 {
			c.QueriesSmall = 4
		}
		if c.QueriesLarge > 2 {
			c.QueriesLarge = 2
		}
		if c.TSFRg > 60 {
			c.TSFRg = 60
		}
		if c.ExpertEps < 0.03 {
			c.ExpertEps = 0.03
		}
		if len(c.EpsSweep) > 2 {
			c.EpsSweep = []float64{0.05, 0.1}
		}
	}
	return c
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// queryNodes picks q distinct nodes with non-zero in-degree, as §6.1 does.
func queryNodes(g *graph.Graph, q int, seed uint64) []graph.NodeID {
	rng := xrand.New(seed)
	var candidates []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		if g.InDegree(graph.NodeID(v)) > 0 {
			candidates = append(candidates, graph.NodeID(v))
		}
	}
	if q >= len(candidates) {
		return candidates
	}
	out := make([]graph.NodeID, 0, q)
	for _, i := range rng.Sample(len(candidates), q) {
		out = append(out, candidates[i])
	}
	return out
}

// algo is one evaluated method: a single-source and a top-k entry point.
type algo struct {
	name  string
	param string
	ss    func(u graph.NodeID) ([]float64, error)
	topk  func(u graph.NodeID, k int) ([]core.ScoredNode, error)
}

// probeSimAlgo builds the ProbeSim entry (full configuration, ModeAuto).
func probeSimAlgo(g *graph.Graph, cfg Config, epsA float64) algo {
	opt := core.Options{EpsA: epsA, Delta: 0.01, Mode: core.ModeAuto, Workers: cfg.Workers, Seed: cfg.Seed}
	return algo{
		name:  "ProbeSim",
		param: fmt.Sprintf("eps=%g", epsA),
		ss:    func(u graph.NodeID) ([]float64, error) { return core.SingleSource(context.Background(), g, u, opt) },
		topk: func(u graph.NodeID, k int) ([]core.ScoredNode, error) {
			return core.TopK(context.Background(), g, u, k, opt)
		},
	}
}

func mcAlgo(g *graph.Graph, cfg Config, epsA float64) algo {
	opt := mc.Options{Eps: epsA, Delta: 0.01, Workers: cfg.Workers, Seed: cfg.Seed}
	return algo{
		name:  "MC",
		param: fmt.Sprintf("eps=%g", epsA),
		ss:    func(u graph.NodeID) ([]float64, error) { return mc.SingleSource(g, u, opt) },
		topk: func(u graph.NodeID, k int) ([]core.ScoredNode, error) {
			est, err := mc.SingleSource(g, u, opt)
			if err != nil {
				return nil, err
			}
			return core.SelectTopK(est, u, k), nil
		},
	}
}

func topsimAlgo(g *graph.Graph, cfg Config, variant topsim.Variant) algo {
	opt := topsim.Options{
		T: cfg.TopSimT, Variant: variant,
		InvH: cfg.TopSimInvH, Eta: cfg.TopSimEta, H: cfg.TopSimH,
	}
	param := fmt.Sprintf("T=%d", cfg.TopSimT)
	switch variant {
	case topsim.TrunTopSimSM:
		param = fmt.Sprintf("T=%d,1/h=%d,eta=%g", cfg.TopSimT, cfg.TopSimInvH, cfg.TopSimEta)
	case topsim.PrioTopSimSM:
		param = fmt.Sprintf("T=%d,H=%d", cfg.TopSimT, cfg.TopSimH)
	}
	return algo{
		name:  variant.String(),
		param: param,
		ss:    func(u graph.NodeID) ([]float64, error) { return topsim.SingleSource(g, u, opt) },
		topk: func(u graph.NodeID, k int) ([]core.ScoredNode, error) {
			return topsim.TopK(g, u, k, opt)
		},
	}
}

// topsimBudgetAlgo is topsimAlgo with a per-query work cap (large graphs).
func topsimBudgetAlgo(g *graph.Graph, cfg Config, variant topsim.Variant, budget int64) algo {
	a := topsimAlgo(g, cfg, variant)
	opt := topsim.Options{
		T: cfg.TopSimT, Variant: variant,
		InvH: cfg.TopSimInvH, Eta: cfg.TopSimEta, H: cfg.TopSimH,
		Budget: budget,
	}
	a.ss = func(u graph.NodeID) ([]float64, error) { return topsim.SingleSource(g, u, opt) }
	a.topk = func(u graph.NodeID, k int) ([]core.ScoredNode, error) { return topsim.TopK(g, u, k, opt) }
	return a
}

// tsfAlgo builds the TSF index (timed) and returns the query entry plus
// the index itself for space accounting.
func tsfAlgo(g *graph.Graph, cfg Config) (algo, *tsf.Index, time.Duration) {
	start := time.Now()
	idx := tsf.Build(g, tsf.BuildOptions{Rg: cfg.TSFRg, Seed: cfg.Seed, Workers: cfg.Workers})
	buildTime := time.Since(start)
	opt := tsf.QueryOptions{Rq: cfg.TSFRq, Seed: cfg.Seed, Workers: cfg.Workers}
	a := algo{
		name:  "TSF",
		param: fmt.Sprintf("Rg=%d,Rq=%d", cfg.TSFRg, cfg.TSFRq),
		ss:    func(u graph.NodeID) ([]float64, error) { return idx.SingleSource(u, opt) },
		topk: func(u graph.NodeID, k int) ([]core.ScoredNode, error) {
			return idx.TopK(u, k, opt)
		},
	}
	return a, idx, buildTime
}

// timedSS runs the single-source query for every query node, returning the
// mean latency and per-query results.
func timedSS(a algo, queries []graph.NodeID) (time.Duration, [][]float64, error) {
	results := make([][]float64, len(queries))
	var total time.Duration
	for i, u := range queries {
		start := time.Now()
		est, err := a.ss(u)
		if err != nil {
			return 0, nil, fmt.Errorf("%s single-source on node %d: %w", a.name, u, err)
		}
		total += time.Since(start)
		results[i] = est
	}
	return total / time.Duration(len(queries)), results, nil
}

// timedTopK runs the top-k query for every query node.
func timedTopK(a algo, queries []graph.NodeID, k int) (time.Duration, [][]core.ScoredNode, error) {
	results := make([][]core.ScoredNode, len(queries))
	var total time.Duration
	for i, u := range queries {
		start := time.Now()
		res, err := a.topk(u, k)
		if err != nil {
			return 0, nil, fmt.Errorf("%s top-%d on node %d: %w", a.name, k, u, err)
		}
		total += time.Since(start)
		results[i] = res
	}
	return total / time.Duration(len(queries)), results, nil
}

// nodesOf strips scores from a top-k answer.
func nodesOf(res []core.ScoredNode) []graph.NodeID {
	out := make([]graph.NodeID, len(res))
	for i, r := range res {
		out[i] = r.Node
	}
	return out
}

// smallContext caches the expensive per-dataset artifacts of the §6.1
// experiments: the generated graph, its Power-Method ground truth, and the
// query node set.
type smallContext struct {
	spec    dataset.Spec
	g       *graph.Graph
	truth   *power.Matrix
	queries []graph.NodeID
}

func (c Config) buildSmall(spec dataset.Spec) (*smallContext, error) {
	g := spec.Build(c.Seed)
	if c.Quick {
		// Quick mode shrinks small datasets by rebuilding at reduced size:
		// regenerate with the same generator family via subsampling nodes.
		g = subsample(g, 600, c.Seed)
	}
	truth, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-12, Workers: c.Workers})
	if err != nil {
		return nil, err
	}
	return &smallContext{
		spec:    spec,
		g:       g,
		truth:   truth,
		queries: queryNodes(g, c.QueriesSmall, c.Seed+17),
	}, nil
}

// subsample keeps the first n nodes and the edges among them (a cheap,
// deterministic shrink used only by Quick mode).
func subsample(g *graph.Graph, n int, seed uint64) *graph.Graph {
	if g.NumNodes() <= n {
		return g
	}
	out := graph.New(n)
	for u := 0; u < n; u++ {
		for _, v := range g.OutNeighbors(graph.NodeID(u)) {
			if int(v) < n {
				if err := out.AddEdge(graph.NodeID(u), v); err != nil {
					panic(err)
				}
			}
		}
	}
	return out
}

func header(c Config, title string) {
	c.printf("\n=== %s ===\n", title)
}

func datasetHeader(c Config, spec dataset.Spec, g *graph.Graph) {
	stats := g.ComputeStats()
	c.printf("--- %s (stand-in for %s: n=%d m=%d, ~1/%.0f scale; %s) ---\n",
		spec.Name, spec.PaperName, stats.Nodes, stats.Edges, spec.ScaleFactor(g), spec.Character)
}
