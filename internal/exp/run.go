package exp

import (
	"fmt"
	"sort"
)

// Runner is one experiment entry point.
type Runner struct {
	// Name is the CLI identifier (e.g. "fig4").
	Name string
	// Paper names the table/figure reproduced.
	Paper string
	// Run executes the experiment.
	Run func(Config) error
}

// Runners lists every experiment in paper order. "fig5", "fig6" and "fig7"
// share one runner (the paper draws three figures from the same runs), as
// do "fig8"-"fig10".
func Runners() []Runner {
	return []Runner{
		{Name: "table2", Paper: "Table 2", Run: Table2},
		{Name: "table3", Paper: "Table 3", Run: Table3},
		{Name: "fig4", Paper: "Figure 4", Run: Fig4},
		{Name: "fig5", Paper: "Figures 5-7", Run: Fig567},
		{Name: "fig6", Paper: "Figures 5-7", Run: Fig567},
		{Name: "fig7", Paper: "Figures 5-7", Run: Fig567},
		{Name: "table4", Paper: "Table 4", Run: Table4},
		{Name: "fig8", Paper: "Figures 8-10", Run: Fig8910},
		{Name: "fig9", Paper: "Figures 8-10", Run: Fig8910},
		{Name: "fig10", Paper: "Figures 8-10", Run: Fig8910},
		{Name: "ablation", Paper: "E-A1 (DESIGN.md)", Run: Ablation},
		{Name: "dynamic", Paper: "E-A3 (DESIGN.md)", Run: Dynamic},
		{Name: "sling", Paper: "E-A4 (DESIGN.md)", Run: SlingContrast},
		{Name: "sensitivity", Paper: "E-A5 (DESIGN.md)", Run: Sensitivity},
		{Name: "indexes", Paper: "E-A6 (DESIGN.md)", Run: IndexContrast},
		{Name: "linear", Paper: "E-A7 (DESIGN.md)", Run: LinearBias},
		{Name: "scaleout", Paper: "E-A8 (DESIGN.md)", Run: ScaleOut},
		{Name: "join", Paper: "E-A9 (DESIGN.md)", Run: Join},
		{Name: "coverage", Paper: "E-A10 (DESIGN.md)", Run: GuaranteeCoverage},
		{Name: "churn", Paper: "E-A11 (DESIGN.md)", Run: Churn},
		{Name: "progressive", Paper: "E-A12 (DESIGN.md)", Run: Progressive},
	}
}

// Run executes the named experiment, or every distinct experiment for
// name == "all".
func Run(name string, c Config) error {
	if name == "all" {
		seen := map[string]bool{}
		for _, r := range Runners() {
			if seen[r.Paper] {
				continue
			}
			seen[r.Paper] = true
			if err := r.Run(c); err != nil {
				return fmt.Errorf("%s: %w", r.Name, err)
			}
		}
		return nil
	}
	for _, r := range Runners() {
		if r.Name == name {
			return r.Run(c)
		}
	}
	var names []string
	for _, r := range Runners() {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return fmt.Errorf("exp: unknown experiment %q (have all, %v)", name, names)
}
