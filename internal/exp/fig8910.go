package exp

import (
	"errors"

	"probesim/internal/core"
	"probesim/internal/dataset"
	"probesim/internal/graph"
	"probesim/internal/mc"
	"probesim/internal/metrics"
	"probesim/internal/pooling"
	"probesim/internal/topsim"
)

// Fig8910 reproduces Figures 8, 9 and 10 [E-F8, E-F9, E-F10]: Precision@k,
// NDCG@k and the Kendall-τ difference of pooled top-k answers on the four
// large graphs, for k in {10, 20, 30, 40, 50}. The ground truth comes from
// pooling (§6.2): the per-algorithm top-k lists are merged, every pooled
// node is scored by the single-pair Monte Carlo expert, and the pool's
// top-k is the reference answer. As in the paper, TopSim-SM and
// Trun-TopSim-SM are excluded on twitter-s and friendster-s.
func Fig8910(c Config) error {
	c = c.withDefaults()
	header(c, "Figures 8-10: pooled Precision@k / NDCG@k / Kendall-tau (large graphs)")
	dense := map[string]bool{"twitter-s": true, "friendster-s": true}
	ks := []int{10, 20, 30, 40, 50}
	if c.Quick {
		ks = []int{10, 50}
	}
	for _, spec := range dataset.Large() {
		g := spec.Build(c.Seed)
		if c.Quick {
			g = subsample(g, 20000, c.Seed)
		}
		datasetHeader(c, spec, g)
		queries := queryNodes(g, c.QueriesLarge, c.Seed+29)

		var algos []algo
		algos = append(algos, probeSimAlgo(g, c, c.EpsLarge))
		tsfA, _, _ := tsfAlgo(g, c)
		algos = append(algos, tsfA)
		if !dense[spec.Name] {
			algos = append(algos,
				topsimBudgetAlgo(g, c, topsim.TopSimSM, topSimLargeBudget),
				topsimBudgetAlgo(g, c, topsim.TrunTopSimSM, topSimLargeBudget),
			)
		}
		algos = append(algos, topsimBudgetAlgo(g, c, topsim.PrioTopSimSM, topSimLargeBudget))

		// One top-K(max) answer per algorithm per query; budget-exceeded
		// algorithms drop out for that query (recorded as a miss).
		kMax := ks[len(ks)-1]
		type answer struct {
			ok   bool
			list []core.ScoredNode
		}
		answers := make([][]answer, len(algos)) // [algo][query]
		for ai := range algos {
			answers[ai] = make([]answer, len(queries))
			for qi, u := range queries {
				res, err := algos[ai].topk(u, kMax)
				if errors.Is(err, topsim.ErrBudgetExceeded) {
					continue
				}
				if err != nil {
					return err
				}
				answers[ai][qi] = answer{ok: true, list: res}
			}
		}

		// Pool per query, score with the MC expert, evaluate at every k.
		type cell struct{ p, n, t float64 }
		table := make(map[int][]cell) // k -> per-algo averages
		for _, k := range ks {
			table[k] = make([]cell, len(algos))
		}
		counted := make([]int, len(algos))
		for qi, u := range queries {
			var lists [][]graph.NodeID
			for ai := range algos {
				if answers[ai][qi].ok {
					lists = append(lists, nodesOf(answers[ai][qi].list))
				}
			}
			pool := pooling.Pool(lists...)
			scores, err := mc.MultiPair(g, u, pool, mc.Options{
				Eps: c.ExpertEps, Delta: 0.001, Seed: c.Seed + uint64(qi), Workers: c.Workers,
			})
			if err != nil {
				return err
			}
			score := metrics.ScoreFromMap(scores)
			expert := func(v graph.NodeID) (float64, error) { return scores[v], nil }
			for _, k := range ks {
				truth, _, err := pooling.GroundTruth(pool, expert, k)
				if err != nil {
					return err
				}
				for ai := range algos {
					if !answers[ai][qi].ok {
						continue
					}
					got := nodesOf(answers[ai][qi].list)
					if len(got) > k {
						got = got[:k]
					}
					table[k][ai].p += metrics.PrecisionAtK(got, truth)
					table[k][ai].n += metrics.NDCGAtK(got, truth, score)
					table[k][ai].t += metrics.KendallTau(got, score)
				}
			}
		}
		for ai := range algos {
			for qi := range queries {
				if answers[ai][qi].ok {
					counted[ai]++
				}
			}
		}

		c.printf("%-18s %4s %11s %9s %9s\n", "method", "k", "Precision@k", "NDCG@k", "tau")
		for ai, a := range algos {
			if counted[ai] == 0 {
				c.printf("%-18s %4s %11s %9s %9s\n", a.name, "-", "N/A", "N/A", "N/A")
				continue
			}
			q := float64(counted[ai])
			for _, k := range ks {
				cl := table[k][ai]
				c.printf("%-18s %4d %11.4f %9.4f %9.4f\n", a.name, k, cl.p/q, cl.n/q, cl.t/q)
			}
		}
	}
	return nil
}
