package exp

import (
	"context"
	"time"

	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/metrics"
	"probesim/internal/power"
	"probesim/internal/tsf"
	"probesim/internal/xrand"
)

// Dynamic runs the dynamic-graph study [E-A3] motivating the paper:
// interleave edge churn with queries and compare
//
//   - ProbeSim, which needs no maintenance (updates are plain adjacency
//     edits and the next query is automatically fresh), against
//   - TSF, whose index must be patched on every edge event (cheap but
//     linear in Rg), and against
//   - a rebuild-per-update strategy (what a static index like SLING would
//     need), reported analytically from the measured build time.
//
// On a small graph it also verifies accuracy after churn against a fresh
// Power-Method ground truth, demonstrating that ProbeSim's guarantee is
// oblivious to update history.
func Dynamic(c Config) error {
	c = c.withDefaults()
	header(c, "Dynamic graphs: update cost and post-churn accuracy [E-A3]")

	// Part 1: update throughput on a medium power-law graph.
	size := 50000
	churn := 20000
	if c.Quick {
		size, churn = 8000, 3000
	}
	g := gen.PreferentialAttachment(size, 10, c.Seed)
	c.printf("--- update throughput (n=%d m=%d, %d edge events: 50%% insert / 50%% delete) ---\n",
		g.NumNodes(), g.NumEdges(), churn)

	tsfStart := time.Now()
	idx := tsf.Build(g, tsf.BuildOptions{Rg: c.TSFRg, Seed: c.Seed, Workers: c.Workers})
	tsfBuild := time.Since(tsfStart)

	rng := xrand.New(c.Seed + 41)
	type edge struct{ u, v graph.NodeID }
	var inserted []edge
	events := make([]edge, 0, churn)
	kinds := make([]bool, 0, churn) // true = insert
	for len(events) < churn {
		if len(inserted) == 0 || rng.Float64() < 0.5 {
			u := rng.Int31n(int32(size))
			v := rng.Int31n(int32(size))
			if u == v {
				continue
			}
			events = append(events, edge{u, v})
			kinds = append(kinds, true)
			inserted = append(inserted, edge{u, v})
		} else {
			i := rng.Intn(len(inserted))
			events = append(events, inserted[i])
			kinds = append(kinds, false)
			inserted[i] = inserted[len(inserted)-1]
			inserted = inserted[:len(inserted)-1]
		}
	}

	// ProbeSim maintenance: the adjacency update itself.
	gPS := g.Clone()
	start := time.Now()
	for i, e := range events {
		if kinds[i] {
			if err := gPS.AddEdge(e.u, e.v); err != nil {
				return err
			}
		} else {
			if err := gPS.RemoveEdge(e.u, e.v); err != nil {
				return err
			}
		}
	}
	psUpdate := time.Since(start)

	// TSF maintenance: adjacency update plus index patch.
	start = time.Now()
	for i, e := range events {
		if kinds[i] {
			if err := g.AddEdge(e.u, e.v); err != nil {
				return err
			}
			idx.OnEdgeAdded(e.u, e.v)
		} else {
			if err := g.RemoveEdge(e.u, e.v); err != nil {
				return err
			}
			idx.OnEdgeRemoved(e.u, e.v)
		}
	}
	tsfUpdate := time.Since(start)

	perEvent := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / float64(churn) / 1000 }
	c.printf("%-28s %14s %18s\n", "method", "per-event(us)", "events/sec")
	c.printf("%-28s %14.2f %18.0f\n", "ProbeSim (adjacency only)", perEvent(psUpdate), float64(churn)/psUpdate.Seconds())
	c.printf("%-28s %14.2f %18.0f\n", "TSF (adjacency + index)", perEvent(tsfUpdate), float64(churn)/tsfUpdate.Seconds())
	// A static index (e.g. SLING) pays a full rebuild per event.
	c.printf("%-28s %14.2f %18.2f  (one rebuild = %.2fs)\n",
		"static index (rebuild)", tsfBuild.Seconds()*1e6, 1/tsfBuild.Seconds(), tsfBuild.Seconds())

	// Queries still answer correctly right after churn.
	queries := queryNodes(g, 2, c.Seed+43)
	for _, u := range queries {
		start := time.Now()
		if _, err := core.SingleSource(context.Background(), g, u, core.Options{EpsA: c.EpsLarge, Workers: c.Workers, Seed: c.Seed}); err != nil {
			return err
		}
		c.printf("post-churn ProbeSim query on node %d: %.1fms\n", u, float64(time.Since(start).Microseconds())/1000)
	}

	// Part 2: post-churn accuracy on a small graph against fresh ground
	// truth.
	c.printf("--- post-churn accuracy (small graph, eps_a=0.1) ---\n")
	sg := gen.PreferentialAttachment(800, 6, c.Seed+5)
	srng := xrand.New(c.Seed + 47)
	var live []edge
	for u := 0; u < sg.NumNodes(); u++ {
		for _, v := range sg.OutNeighbors(graph.NodeID(u)) {
			live = append(live, edge{graph.NodeID(u), v})
		}
	}
	for i := 0; i < 2000; i++ {
		if len(live) == 0 || srng.Float64() < 0.5 {
			u, v := srng.Int31n(800), srng.Int31n(800)
			if u == v {
				continue
			}
			if err := sg.AddEdge(u, v); err != nil {
				return err
			}
			live = append(live, edge{u, v})
		} else {
			j := srng.Intn(len(live))
			e := live[j]
			if err := sg.RemoveEdge(e.u, e.v); err != nil {
				return err
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	truth, err := power.SimRank(sg, power.Options{C: 0.6, Tolerance: 1e-12, Workers: c.Workers})
	if err != nil {
		return err
	}
	worst := 0.0
	for _, u := range queryNodes(sg, 5, c.Seed+49) {
		est, err := core.SingleSource(context.Background(), sg, u, core.Options{EpsA: 0.1, Workers: c.Workers, Seed: c.Seed})
		if err != nil {
			return err
		}
		if e := metrics.MaxAbsError(est, truth.Row(u), u); e > worst {
			worst = e
		}
	}
	c.printf("worst AbsError over 5 queries after 2000 edge events: %.5f (guarantee: 0.1)\n", worst)
	return nil
}
