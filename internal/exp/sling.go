package exp

import (
	"context"
	"time"

	"probesim/internal/core"
	"probesim/internal/dataset"
	"probesim/internal/metrics"
	"probesim/internal/sling"
	"probesim/internal/tsf"
)

// SlingContrast runs the index-versus-index-free study behind the paper's
// motivation (§1) [E-A4]: on one small graph (exact error available) it
// compares ProbeSim, SLING and TSF on preprocessing time, index space,
// query time, accuracy, and what an update costs each of them (ProbeSim:
// nothing; TSF: an O(Rg) patch; SLING: a full rebuild).
func SlingContrast(c Config) error {
	c = c.withDefaults()
	header(c, "Index contrast: ProbeSim vs SLING vs TSF [E-A4]")
	spec, err := dataset.ByName("as-s")
	if err != nil {
		return err
	}
	ctx, err := c.buildSmall(spec)
	if err != nil {
		return err
	}
	datasetHeader(c, spec, ctx.g)
	graphBytes := ctx.g.MemoryBytes()
	c.printf("graph size: %s\n", fmtBytes(graphBytes))
	c.printf("%-10s %12s %12s %12s %10s %22s\n",
		"method", "prep(s)", "index", "query(ms)", "AbsError", "update cost")

	// ProbeSim: no preprocessing, no index.
	psOpt := core.Options{EpsA: 0.05, Workers: c.Workers, Seed: c.Seed}
	var psTime time.Duration
	psErr := 0.0
	for _, u := range ctx.queries {
		start := time.Now()
		est, err := core.SingleSource(context.Background(), ctx.g, u, psOpt)
		if err != nil {
			return err
		}
		psTime += time.Since(start)
		psErr += metrics.MaxAbsError(est, ctx.truth.Row(u), u)
	}
	q := float64(len(ctx.queries))
	c.printf("%-10s %12s %12s %12.3f %10.5f %22s\n",
		"ProbeSim", "0", "none",
		float64(psTime.Microseconds())/1000/q, psErr/q, "O(1) adjacency edit")

	// SLING: heavy preprocessing, fast accurate queries, rebuild on update.
	start := time.Now()
	sIdx, err := sling.Build(ctx.g, sling.BuildOptions{
		C: 0.6, EpsH: 0.002, DPairs: 2000, Seed: c.Seed, Workers: c.Workers,
	})
	if err != nil {
		return err
	}
	slingBuild := time.Since(start)
	var slingTime time.Duration
	slingErr := 0.0
	for _, u := range ctx.queries {
		start := time.Now()
		est, err := sIdx.SingleSource(u)
		if err != nil {
			return err
		}
		slingTime += time.Since(start)
		slingErr += metrics.MaxAbsError(est, ctx.truth.Row(u), u)
	}
	c.printf("%-10s %12.2f %12s %12.3f %10.5f %22s\n",
		"SLING", slingBuild.Seconds(), fmtBytes(sIdx.MemoryBytes()),
		float64(slingTime.Microseconds())/1000/q, slingErr/q,
		"full rebuild")

	// TSF: moderate preprocessing, biased queries, cheap update patch.
	start = time.Now()
	tIdx := tsf.Build(ctx.g, tsf.BuildOptions{Rg: c.TSFRg, Seed: c.Seed, Workers: c.Workers})
	tsfBuild := time.Since(start)
	var tsfTime time.Duration
	tsfErr := 0.0
	for _, u := range ctx.queries {
		start := time.Now()
		est, err := tIdx.SingleSource(u, tsf.QueryOptions{Rq: c.TSFRq, Seed: c.Seed, Workers: c.Workers})
		if err != nil {
			return err
		}
		tsfTime += time.Since(start)
		tsfErr += metrics.MaxAbsError(est, ctx.truth.Row(u), u)
	}
	c.printf("%-10s %12.2f %12s %12.3f %10.5f %22s\n",
		"TSF", tsfBuild.Seconds(), fmtBytes(tIdx.MemoryBytes()),
		float64(tsfTime.Microseconds())/1000/q, tsfErr/q,
		"O(Rg) index patch")

	c.printf("\nSLING index is %.1fx the graph; it rejects queries after any update (ErrStale),\n",
		float64(sIdx.MemoryBytes())/float64(graphBytes))
	c.printf("while ProbeSim needs no maintenance at all — the paper's §1 motivation.\n")
	return nil
}
