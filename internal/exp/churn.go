package exp

import (
	"context"
	"time"

	"probesim/internal/core"
	"probesim/internal/dataset"
	"probesim/internal/fingerprint"
	"probesim/internal/metrics"
	"probesim/internal/power"
	"probesim/internal/trace"
	"probesim/internal/tsf"
)

// Churn runs the structured-churn study [E-A11]: three realistic update
// patterns (uniform, preferential, sliding-window) from internal/trace are
// replayed against the same starting graph, and after each burst the
// harness asks every method for a fresh answer. ProbeSim just queries;
// TSF patches its one-way graphs per event; the fingerprint index is stale
// and must rebuild. Accuracy after churn is checked against a Power-Method
// ground truth recomputed on the mutated graph — the "guarantee is
// oblivious to update history" property.
func Churn(c Config) error {
	c = c.withDefaults()
	header(c, "Structured churn: update patterns vs maintenance cost [E-A11]")
	spec, err := dataset.ByName("hepth-s")
	if err != nil {
		return err
	}
	ctx, err := c.buildSmall(spec)
	if err != nil {
		return err
	}
	datasetHeader(c, spec, ctx.g)

	nOps := 400
	if c.Quick {
		nOps = 150
	}
	patterns := []struct {
		name string
		gen  func() ([]trace.Op, error)
	}{
		{"uniform", func() ([]trace.Op, error) { return trace.Uniform(ctx.g, nOps, 0.5, c.Seed+3) }},
		{"preferential", func() ([]trace.Op, error) { return trace.Preferential(ctx.g, nOps, 0.7, c.Seed+5) }},
		{"window", func() ([]trace.Op, error) { return trace.SlidingWindow(ctx.g, nOps, 50, c.Seed+7) }},
	}

	u := ctx.queries[0]
	psOpt := core.Options{EpsA: 0.05, Workers: c.Workers, Seed: c.Seed}
	c.printf("%-14s %12s %14s %16s %12s\n",
		"pattern", "apply", "TSF patch", "FP rebuild", "AbsError")
	for _, p := range patterns {
		ops, err := p.gen()
		if err != nil {
			return err
		}
		// Fresh secondary structures on the pre-churn graph.
		tIdx := tsf.Build(ctx.g, tsf.BuildOptions{Rg: 60, Seed: c.Seed, Workers: c.Workers})
		fIdx, err := fingerprint.Build(ctx.g, fingerprint.BuildOptions{
			NumWalks: 400, Seed: c.Seed, Workers: c.Workers,
		})
		if err != nil {
			return err
		}

		// Replay event by event: the graph edit and TSF's patch must stay
		// in sync (the patch resamples against the current adjacency).
		var applyTime, tsfPatch time.Duration
		for _, op := range ops {
			start := time.Now()
			if err := trace.Apply(ctx.g, []trace.Op{op}); err != nil {
				return err
			}
			applyTime += time.Since(start)
			start = time.Now()
			switch op.Kind {
			case trace.AddEdge:
				tIdx.OnEdgeAdded(op.U, op.V)
			case trace.RemoveEdge:
				tIdx.OnEdgeRemoved(op.U, op.V)
			}
			tsfPatch += time.Since(start)
		}

		// Fingerprint: stale, only option is rebuild.
		if !fIdx.Stale() {
			c.printf("BUG: fingerprint index not stale after churn\n")
		}
		rebuildStart := time.Now()
		fIdx, err = fingerprint.Build(ctx.g, fingerprint.BuildOptions{
			NumWalks: 400, Seed: c.Seed, Workers: c.Workers,
		})
		if err != nil {
			return err
		}
		rebuild := time.Since(rebuildStart)
		if fIdx.Stale() {
			c.printf("BUG: rebuilt fingerprint index still stale\n")
		}

		// Post-churn accuracy for ProbeSim against fresh ground truth.
		truth, err := power.SimRank(ctx.g, power.Options{C: 0.6, Tolerance: 1e-12, Workers: c.Workers})
		if err != nil {
			return err
		}
		est, err := core.SingleSource(context.Background(), ctx.g, u, psOpt)
		if err != nil {
			return err
		}
		absErr := metrics.MaxAbsError(est, truth.Row(u), u)
		c.printf("%-14s %12v %14v %16v %12.5f\n",
			p.name, applyTime.Round(time.Microsecond), tsfPatch.Round(time.Microsecond),
			rebuild.Round(time.Millisecond), absErr)

		// Rewind so each pattern starts from the same graph.
		if err := trace.Apply(ctx.g, trace.Inverse(ops)); err != nil {
			return err
		}
	}
	c.printf("ProbeSim pays only the adjacency edit; the εa guarantee holds after every pattern.\n")
	return nil
}
