package exp

import (
	"bytes"
	"strings"
	"testing"

	"probesim/internal/dataset"
)

func quickConfig(buf *bytes.Buffer) Config {
	return Config{Out: buf, Quick: true, Seed: 1}
}

func TestTable2Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(quickConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "0.1310", "0.0096"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	var buf bytes.Buffer
	if err := Fig4(quickConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ProbeSim", "TSF", "TopSim-SM", "Trun-TopSim-SM", "Prio-TopSim-SM", "wiki-vote-s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig4 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig567Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	var buf bytes.Buffer
	if err := Fig567(quickConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Precision@k", "NDCG@k", "tau", "hepph-s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig5-7 output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	var buf bytes.Buffer
	if err := Ablation(quickConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"basic", "pruned", "batch", "randomized", "hybrid", "auto"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
}

func TestDynamicQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	var buf bytes.Buffer
	if err := Dynamic(quickConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ProbeSim (adjacency only)", "TSF (adjacency + index)", "worst AbsError"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dynamic output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", quickConfig(&buf)); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunNamed(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table2", quickConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatal("named run produced no output")
	}
}

func TestQueryNodesNonZeroInDegree(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickConfig(&buf)
	ctx, err := cfg.withDefaults().buildSmall(mustSpec(t, "wiki-vote-s"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx.queries) == 0 {
		t.Fatal("no query nodes")
	}
	for _, u := range ctx.queries {
		if ctx.g.InDegree(u) == 0 {
			t.Fatalf("query node %d has zero in-degree", u)
		}
	}
}

func mustSpec(t *testing.T, name string) dataset.Spec {
	t.Helper()
	spec, err := dataset.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestSlingContrastQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	var buf bytes.Buffer
	cfg := quickConfig(&buf)
	cfg.QueriesSmall = 2
	if err := SlingContrast(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ProbeSim", "SLING", "TSF", "full rebuild", "O(Rg) index patch"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sling output missing %q:\n%s", want, out)
		}
	}
}

func TestSensitivityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	var buf bytes.Buffer
	cfg := quickConfig(&buf)
	cfg.QueriesSmall = 2
	if err := Sensitivity(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"varying c", "varying delta", "0.8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sensitivity output missing %q:\n%s", want, out)
		}
	}
}
