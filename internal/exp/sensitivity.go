package exp

import (
	"context"
	"time"

	"probesim/internal/core"
	"probesim/internal/dataset"
	"probesim/internal/metrics"
	"probesim/internal/power"
)

// Sensitivity studies ProbeSim's behaviour across the decay factor c
// (§1 notes SimRank deployments use c = 0.6 or 0.8) and the failure
// probability δ [E-A5]. Larger c means longer √c-walks (E[ℓ] = 1/(1−√c))
// and more trials (nr ∝ c), so query time grows while the guarantee
// stays εa; smaller δ costs only a log factor.
func Sensitivity(c Config) error {
	c = c.withDefaults()
	header(c, "Sensitivity: decay factor c and failure probability delta [E-A5]")
	spec, err := dataset.ByName("as-s")
	if err != nil {
		return err
	}
	g := spec.Build(c.Seed)
	if c.Quick {
		g = subsample(g, 600, c.Seed)
	}
	queries := queryNodes(g, c.QueriesSmall, c.Seed+53)

	c.printf("--- varying c at eps_a=0.1, delta=0.01 (%s) ---\n", spec.Name)
	c.printf("%-6s %12s %12s %12s %14s\n", "c", "walks", "walk-cap", "avg-time(ms)", "AbsError")
	for _, decay := range []float64{0.4, 0.6, 0.8} {
		truth, err := power.SimRank(g, power.Options{C: decay, Tolerance: 1e-12, Workers: c.Workers})
		if err != nil {
			return err
		}
		opt := core.Options{C: decay, EpsA: 0.1, Delta: 0.01, Workers: c.Workers, Seed: c.Seed}
		plan, err := core.PlanFor(opt, g.NumNodes())
		if err != nil {
			return err
		}
		var total time.Duration
		sumErr := 0.0
		for _, u := range queries {
			start := time.Now()
			est, err := core.SingleSource(context.Background(), g, u, opt)
			if err != nil {
				return err
			}
			total += time.Since(start)
			sumErr += metrics.MaxAbsError(est, truth.Row(u), u)
		}
		q := float64(len(queries))
		c.printf("%-6g %12d %12d %12.3f %14.5f\n",
			decay, plan.NumWalks, plan.MaxWalkNodes,
			float64(total.Microseconds())/1000/q, sumErr/q)
	}

	c.printf("--- varying delta at c=0.6, eps_a=0.1 ---\n")
	c.printf("%-8s %12s %12s\n", "delta", "walks", "avg-time(ms)")
	for _, delta := range []float64{0.1, 0.01, 0.001} {
		opt := core.Options{C: 0.6, EpsA: 0.1, Delta: delta, Workers: c.Workers, Seed: c.Seed}
		plan, err := core.PlanFor(opt, g.NumNodes())
		if err != nil {
			return err
		}
		var total time.Duration
		for _, u := range queries {
			start := time.Now()
			if _, err := core.SingleSource(context.Background(), g, u, opt); err != nil {
				return err
			}
			total += time.Since(start)
		}
		c.printf("%-8g %12d %12.3f\n", delta, plan.NumWalks,
			float64(total.Microseconds())/1000/float64(len(queries)))
	}
	return nil
}
