package exp

import (
	"probesim/internal/dataset"
	"probesim/internal/metrics"
	"probesim/internal/topsim"
)

// Fig4 reproduces Figure 4 [E-F4]: average maximum absolute error of
// single-source queries versus average query time on the four small
// graphs. ProbeSim sweeps εa; the competitors run at their paper-fixed
// parameters, so each contributes one point on the time/error plane.
func Fig4(c Config) error {
	c = c.withDefaults()
	header(c, "Figure 4: single-source AbsError vs query time (small graphs)")
	for _, spec := range dataset.Small() {
		ctx, err := c.buildSmall(spec)
		if err != nil {
			return err
		}
		datasetHeader(c, spec, ctx.g)
		c.printf("%-18s %-24s %12s %12s\n", "method", "params", "avg-time(ms)", "AbsError")

		var algos []algo
		for _, eps := range c.EpsSweep {
			algos = append(algos, probeSimAlgo(ctx.g, c, eps))
		}
		tsfA, _, _ := tsfAlgo(ctx.g, c)
		algos = append(algos, tsfA)
		algos = append(algos,
			topsimAlgo(ctx.g, c, topsim.TopSimSM),
			topsimAlgo(ctx.g, c, topsim.TrunTopSimSM),
			topsimAlgo(ctx.g, c, topsim.PrioTopSimSM),
		)
		if c.IncludeMC {
			algos = append(algos, mcAlgo(ctx.g, c, c.EpsSweep[len(c.EpsSweep)-1]))
		}
		for _, a := range algos {
			avgTime, results, err := timedSS(a, ctx.queries)
			if err != nil {
				return err
			}
			// Average over queries of the per-query max absolute error,
			// exactly the paper's AbsError metric.
			sumErr := 0.0
			for i, u := range ctx.queries {
				sumErr += metrics.MaxAbsError(results[i], ctx.truth.Row(u), u)
			}
			c.printf("%-18s %-24s %12.3f %12.5f\n",
				a.name, a.param, float64(avgTime.Microseconds())/1000, sumErr/float64(len(ctx.queries)))
		}
	}
	return nil
}
