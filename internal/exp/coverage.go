package exp

import (
	"probesim/internal/accuracy"
	"probesim/internal/core"
	"probesim/internal/dataset"
	"probesim/internal/graph"
)

// GuaranteeCoverage validates the paper's theorems empirically [E-A10]:
// the (εa, δ) coverage of Theorems 1-3 over repeated queries with ground
// truth, the geometric walk-length law behind §3.3's O(1) expected-length
// argument, and the uniformity of in-neighbor sampling that Definition 3
// requires of every walk step.
func GuaranteeCoverage(c Config) error {
	c = c.withDefaults()
	header(c, "Statistical guarantee validation [E-A10]")
	spec, err := dataset.ByName("as-s")
	if err != nil {
		return err
	}
	ctx, err := c.buildSmall(spec)
	if err != nil {
		return err
	}
	datasetHeader(c, spec, ctx.g)

	c.printf("%-28s %s\n", "coverage (mode=auto):", "")
	for _, eps := range c.EpsSweep {
		rep, err := accuracy.Coverage(ctx.g, ctx.truth, ctx.queries, core.Options{
			EpsA: eps, Delta: 0.01, Workers: c.Workers, Seed: c.Seed,
		})
		if err != nil {
			return err
		}
		c.printf("  eps=%-7g %s\n", eps, rep)
	}

	// The walk-length law is exact only without dead ends; report both a
	// dead-end-free structure and the dataset itself for contrast.
	samples := 50000
	if c.Quick {
		samples = 8000
	}
	ks, err := accuracy.WalkLengthKS(ctx.g, 0.6, samples, c.Seed+5)
	if err != nil {
		return err
	}
	c.printf("walk lengths vs geometric on %s: D=%.4f p=%.4g (dead ends shorten walks)\n",
		spec.Name, ks.D, ks.PValue)

	// Chi-square the sampling at the dataset's highest in-degree node —
	// the spot where a biased sampler would do the most damage.
	var hub graph.NodeID
	for v := 0; v < ctx.g.NumNodes(); v++ {
		if ctx.g.InDegree(graph.NodeID(v)) > ctx.g.InDegree(hub) {
			hub = graph.NodeID(v)
		}
	}
	chi, err := accuracy.SamplingUniformity(ctx.g, hub, 40*ctx.g.InDegree(hub), c.Seed+9)
	if err != nil {
		return err
	}
	c.printf("in-neighbor sampling at hub %d (deg %d): chi2=%.2f dof=%d p=%.4f\n",
		hub, ctx.g.InDegree(hub), chi.Statistic, chi.DoF, chi.PValue)
	return nil
}
