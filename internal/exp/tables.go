package exp

import (
	"errors"
	"fmt"

	"probesim/internal/dataset"
	"probesim/internal/graph"
	"probesim/internal/power"
	"probesim/internal/topsim"
)

// Table2 reproduces Table 2 [E-T2]: the exact SimRank values of every node
// with respect to node a on the toy graph of Figure 1 (c = 0.25), computed
// by the Power Method to 1e-12, next to the paper's printed values.
func Table2(c Config) error {
	c = c.withDefaults()
	header(c, "Table 2: SimRank similarities w.r.t. node a on the toy graph (c=0.25)")
	g := graph.Toy()
	row, err := power.SingleSource(g, graph.ToyA, power.Options{C: 0.25, Tolerance: 1e-12, Workers: c.Workers})
	if err != nil {
		return err
	}
	paper := []float64{1.0, 0.0096, 0.049, 0.131, 0.070, 0.041, 0.051, 0.051}
	c.printf("%-6s %10s %10s\n", "node", "measured", "paper")
	for v := range row {
		c.printf("%-6s %10.4f %10.4f\n", graph.ToyNames[v], row[v], paper[v])
	}
	return nil
}

// Table3 reproduces Table 3 [E-T3]: the dataset inventory. For each of the
// paper's eight graphs it prints the synthetic stand-in's size, scale
// factor and structural character.
func Table3(c Config) error {
	c = c.withDefaults()
	header(c, "Table 3: datasets (synthetic stand-ins; see DESIGN.md §5)")
	c.printf("%-15s %-12s %-10s %9s %10s %8s %9s %9s %8s %8s\n",
		"stand-in", "paper", "type", "n", "m", "scale", "paper-n", "paper-m", "SCCs", "big-WCC")
	for _, spec := range dataset.All() {
		g := spec.Build(c.Seed)
		typ := "directed"
		if !spec.Directed {
			typ = "undirected"
		}
		_, sccs := g.StronglyConnectedComponents()
		wcc, wccCount := g.WeaklyConnectedComponents()
		sizes := make([]int, wccCount)
		for _, id := range wcc {
			sizes[id]++
		}
		largest := 0
		for _, s := range sizes {
			if s > largest {
				largest = s
			}
		}
		c.printf("%-15s %-12s %-10s %9d %10d %7.0fx %9d %9d %8d %7.0f%%\n",
			spec.Name, spec.PaperName, typ, g.NumNodes(), g.NumEdges(),
			spec.ScaleFactor(g), spec.PaperNodes, spec.PaperEdges,
			sccs, 100*float64(largest)/float64(g.NumNodes()))
	}
	return nil
}

// Table4 reproduces Table 4 [E-T4]: average top-k query time and space
// overhead on the four large graphs. Space overhead is the TSF index size
// for TSF and the peak per-query working set for the index-free methods;
// the graph size column gives the baseline. As in the paper, TopSim-SM and
// Trun-TopSim-SM are excluded on the two locally dense graphs (twitter-s,
// friendster-s), where their exhaustive depth-3 enumeration is intractable.
func Table4(c Config) error {
	c = c.withDefaults()
	header(c, "Table 4: query time and space overhead (large graphs)")
	dense := map[string]bool{"twitter-s": true, "friendster-s": true}
	for _, spec := range dataset.Large() {
		g := spec.Build(c.Seed)
		if c.Quick {
			g = subsample(g, 20000, c.Seed)
		}
		datasetHeader(c, spec, g)
		graphBytes := g.MemoryBytes()
		c.printf("graph size: %s\n", fmtBytes(graphBytes))
		c.printf("%-18s %-24s %14s %16s %12s\n",
			"method", "params", "avg-time(ms)", "space-overhead", "vs graph")
		queries := queryNodes(g, c.QueriesLarge, c.Seed+23)

		run := func(a algo, overheadBytes int64) error {
			avgTime, _, err := timedTopK(a, queries, c.K)
			if errors.Is(err, topsim.ErrBudgetExceeded) {
				// The harness analogue of the paper's ">24 hours" entries.
				c.printf("%-18s %-24s %14s %16s %12s\n", a.name, a.param, "N/A (budget)", "N/A", "")
				return nil
			}
			if err != nil {
				return err
			}
			ratio := float64(overheadBytes) / float64(graphBytes)
			c.printf("%-18s %-24s %14.1f %16s %11.2fx\n",
				a.name, a.param, float64(avgTime.Microseconds())/1000, fmtBytes(overheadBytes), ratio)
			return nil
		}

		// ProbeSim: index-free; overhead is the per-query scratch (dense
		// accumulators + probe frontiers per worker).
		ps := probeSimAlgo(g, c, c.EpsLarge)
		psOverhead := int64(g.NumNodes()) * 8 * int64(2+2*c.Workers) // acc + scratch per worker
		if err := run(ps, psOverhead); err != nil {
			return err
		}

		if !dense[spec.Name] {
			for _, variant := range []topsim.Variant{topsim.TopSimSM, topsim.TrunTopSimSM} {
				a := topsimBudgetAlgo(g, c, variant, topSimLargeBudget)
				if err := run(a, int64(g.NumNodes())*8); err != nil {
					return err
				}
			}
		} else {
			c.printf("%-18s %-24s %14s %16s %12s\n", "TopSim-SM", "", "N/A", "N/A", "")
			c.printf("%-18s %-24s %14s %16s %12s\n", "Trun-TopSim-SM", "", "N/A", "N/A", "")
		}
		prio := topsimBudgetAlgo(g, c, topsim.PrioTopSimSM, topSimLargeBudget)
		if err := run(prio, int64(g.NumNodes())*8); err != nil {
			return err
		}

		tsfA, idx, buildTime := tsfAlgo(g, c)
		c.printf("%-18s %-24s preprocessing: %.1fs\n", "TSF", tsfA.param, buildTime.Seconds())
		if err := run(tsfA, idx.MemoryBytes()); err != nil {
			return err
		}
	}
	return nil
}

// topSimLargeBudget caps each TopSim-family query on large graphs at this
// many edge traversals (~ a few seconds of work) so one hub cannot stall
// the whole harness; queries that exceed it are reported as the paper
// reports its ">24 hours" runs.
const topSimLargeBudget = 300_000_000

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
