package exp

import (
	"context"
	"time"

	"probesim/internal/core"
	"probesim/internal/dataset"
	"probesim/internal/metrics"
)

// Progressive measures the any-time top-k extension [E-A12]: on each small
// dataset it answers the same top-k queries with the static TopK and with
// TopKProgressive, reporting walks used, wall-clock, and Precision@k
// against the Power-Method ground truth. Separated queries should show a
// large walk saving at equal precision; adversarially tied queries fall
// back to the static budget.
func Progressive(c Config) error {
	c = c.withDefaults()
	header(c, "Any-time top-k: progressive vs static walk budget [E-A12]")
	opt := core.Options{EpsA: 0.025, Delta: 0.01, Workers: c.Workers, Seed: c.Seed}
	c.printf("%-14s %3s %12s %12s %10s %12s %12s %10s %9s\n",
		"dataset", "k", "static(ms)", "prog(ms)", "walks%", "prec@k", "prog-prec", "separated", "rounds")
	for _, spec := range dataset.Small() {
		ctx, err := c.buildSmall(spec)
		if err != nil {
			return err
		}
		for _, k := range []int{1, 10} {
			var (
				staticTime, progTime       time.Duration
				staticPrec, progPrec       float64
				walksUsed, walksBudget     int64
				separatedCount, roundsObsd int
			)
			for _, u := range ctx.queries {
				exact := core.SelectTopK(ctx.truth.Row(u), u, k)
				ideal := nodesOf(exact)

				start := time.Now()
				st, err := core.TopK(context.Background(), ctx.g, u, k, opt)
				if err != nil {
					return err
				}
				staticTime += time.Since(start)
				staticPrec += metrics.PrecisionAtK(nodesOf(st), ideal)

				start = time.Now()
				pt, stats, err := core.TopKProgressive(context.Background(), ctx.g, u, k, opt)
				if err != nil {
					return err
				}
				progTime += time.Since(start)
				progPrec += metrics.PrecisionAtK(nodesOf(pt), ideal)
				walksUsed += int64(stats.Walks)
				walksBudget += int64(stats.BudgetWalks)
				if stats.Separated {
					separatedCount++
				}
				roundsObsd += stats.Rounds
			}
			q := float64(len(ctx.queries))
			c.printf("%-14s %3d %12.1f %12.1f %9.1f%% %12.3f %12.3f %7d/%-2d %9.1f\n",
				spec.Name, k,
				float64(staticTime.Microseconds())/1000/q,
				float64(progTime.Microseconds())/1000/q,
				100*float64(walksUsed)/float64(walksBudget),
				staticPrec/q, progPrec/q,
				separatedCount, len(ctx.queries), float64(roundsObsd)/q)
		}
	}
	c.printf("walks%% is the share of the static budget the progressive run needed;\n")
	c.printf("separated queries stop early, tied ones fall back to the static budget.\n")
	return nil
}
