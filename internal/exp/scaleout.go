package exp

import (
	"context"
	"time"

	"probesim/internal/cluster"
	"probesim/internal/core"
	"probesim/internal/dataset"
)

// ScaleOut quantifies what the distributed Monte Carlo alternative pays in
// communication [E-A8]: the simulated cluster runs the same single-source
// MC estimate across 1..16 machines and reports the message volume, while
// ProbeSim answers the same query locally with no communication at all.
// This is the laptop-scale stand-in for the paper's §5 citation of the
// 10-machine / 3.77 TB deployment of parallel SimRank.
func ScaleOut(c Config) error {
	c = c.withDefaults()
	header(c, "Distributed MC communication cost [E-A8]")
	spec, err := dataset.ByName("wiki-vote-s")
	if err != nil {
		return err
	}
	ctx, err := c.buildSmall(spec)
	if err != nil {
		return err
	}
	datasetHeader(c, spec, ctx.g)
	u := ctx.queries[0]
	walks := 2000
	if c.Quick {
		walks = 400
	}

	start := time.Now()
	if _, err := core.SingleSource(context.Background(), ctx.g, u, core.Options{
		EpsA: 0.1, Workers: c.Workers, Seed: c.Seed,
	}); err != nil {
		return err
	}
	c.printf("ProbeSim local query: %v, messages: 0, broadcast: 0\n\n", time.Since(start).Round(time.Microsecond))

	c.printf("%-9s %10s %12s %14s %14s %12s\n",
		"machines", "steps", "migrations", "migrated", "broadcast", "time")
	for _, p := range []int{1, 2, 4, 8, 16} {
		start := time.Now()
		_, cost, err := cluster.SingleSource(ctx.g, u, cluster.Config{
			Partitions: p, NumWalks: walks, Seed: c.Seed,
		})
		if err != nil {
			return err
		}
		c.printf("%-9d %10d %12d %14s %14s %12v\n",
			p, cost.Supersteps, cost.Migrations,
			fmtBytes(cost.MigratedBytes), fmtBytes(cost.BroadcastBytes),
			time.Since(start).Round(time.Millisecond))
	}
	c.printf("estimates are identical across machine counts (per-walk RNG streams);\n")
	c.printf("only the communication bill grows — the cost ProbeSim's locality avoids.\n")
	return nil
}
