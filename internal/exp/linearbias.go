package exp

import (
	"context"
	"math"

	"probesim/internal/core"
	"probesim/internal/dataset"
	"probesim/internal/graph"
	"probesim/internal/linear"
	"probesim/internal/metrics"
)

// LinearBias makes §5's formulation critique executable [E-A7]: the
// "alternative formulation" S = cPᵀSP + (1−c)I (Equation 11 with the naive
// diagonal) systematically deviates from true SimRank, while the corrected
// diagonal reproduces it and ProbeSim tracks it within εa. The runner
// reports, per small dataset, the max absolute deviation of each method
// from the Power-Method ground truth over the query set.
func LinearBias(c Config) error {
	c = c.withDefaults()
	header(c, "Linearized-SimRank formulation bias [E-A7]")
	c.printf("%-14s %14s %14s %14s %14s\n",
		"dataset", "naive-D", "exact-D", "MC-D", "ProbeSim(0.05)")
	lopt := linear.Options{C: 0.6, T: 40}
	for _, spec := range dataset.Small() {
		ctx, err := c.buildSmall(spec)
		if err != nil {
			return err
		}
		naive := linear.NaiveDiagonal(ctx.g, 0.6)
		exact, err := linear.DiagonalExact(ctx.g, lopt)
		if err != nil {
			return err
		}
		mcd, err := linear.DiagonalMC(ctx.g, lopt, linear.MCOptions{Pairs: 400, Seed: c.Seed})
		if err != nil {
			return err
		}
		psOpt := core.Options{EpsA: 0.05, Workers: c.Workers, Seed: c.Seed}
		var errNaive, errExact, errMC, errPS float64
		for _, u := range ctx.queries {
			truth := ctx.truth.Row(u)
			for name, d := range map[string][]float64{"naive": naive, "exact": exact, "mc": mcd} {
				est, err := linear.SingleSource(ctx.g, u, d, lopt)
				if err != nil {
					return err
				}
				e := maxRowErr(est, truth, u)
				switch name {
				case "naive":
					errNaive = math.Max(errNaive, e)
				case "exact":
					errExact = math.Max(errExact, e)
				case "mc":
					errMC = math.Max(errMC, e)
				}
			}
			est, err := core.SingleSource(context.Background(), ctx.g, u, psOpt)
			if err != nil {
				return err
			}
			errPS = math.Max(errPS, metrics.MaxAbsError(est, truth, u))
		}
		c.printf("%-14s %14.5f %14.5f %14.5f %14.5f\n",
			spec.Name, errNaive, errExact, errMC, errPS)
	}
	c.printf("naive-D is the Eq.-11 family the paper criticizes; exact-D shows the\n")
	c.printf("corrected linearization agrees with SimRank (residual = series truncation).\n")
	return nil
}

// maxRowErr is MaxAbsError without depending on metrics' signature for the
// diagonal convention: the linearized estimators do not force est[u] = 1.
func maxRowErr(est, truth []float64, u graph.NodeID) float64 {
	var m float64
	for v := range est {
		if graph.NodeID(v) == u {
			continue
		}
		if d := math.Abs(est[v] - truth[v]); d > m {
			m = d
		}
	}
	return m
}
