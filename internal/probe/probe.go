// Package probe implements the PROBE primitives of ProbeSim: given a
// partial √c-walk W(u, i) = (u₁, …, u_i), compute for every node v its
// first-meeting probability P(v, W(u, i)) — the probability that a √c-walk
// from v visits u_i at step i without having met the partial walk at any
// earlier step (Definition 4).
//
// Two variants are provided, mirroring §3.2 and §4.3 of the paper:
//
//   - Deterministic (Algorithm 2): an exact level-by-level graph traversal
//     in O(m·i) worst-case time, supporting the score-pruning rule 2 and
//     batched execution (one probe serves many identical walk prefixes).
//   - Randomized (Algorithm 4): an O(n·i) expected-time Bernoulli sampler
//     whose per-node selection probability equals the deterministic score
//     (Lemma 6), trading exactness for a better worst-case bound.
//
// ContinueRandomized supports the §4.4 hybrid: a probe that starts
// deterministically can hand its current level over to the randomized
// sampler mid-flight.
package probe

import (
	"math"
	"reflect"

	"probesim/internal/budget"
	"probesim/internal/graph"
	"probesim/internal/xrand"
)

// Scratch holds the reusable dense frontier buffers for probes on a graph
// with a fixed number of nodes. A Scratch may be reused across any number
// of probes but must not be shared between goroutines.
type Scratch struct {
	n int

	// Work counts edge traversals across all probes on this Scratch;
	// callers may read (and reset) it to enforce work budgets.
	Work int64

	// Current and next level frontiers. curScore is valid for the nodes
	// listed in the current level; newScore accumulates the next level
	// under mark stamps.
	curList  []graph.NodeID
	nextList []graph.NodeID
	curScore []float64
	newScore []float64
	mark     []uint32
	epoch    uint32

	// Membership stamps for randomized probes.
	member   []uint32
	memberEp uint32

	// meter, when set, is the owning query's budget meter: every level
	// charges its edge traversals and the expansion loops stop early once
	// the meter trips, so even a single huge probe (O(m·i) worst case on a
	// dense level) honors a deadline within one level rather than one
	// probe. A nil meter costs one branch per level.
	meter *budget.Meter

	// Cached adjacency resolution. A probe runs once per walk prefix —
	// thousands of times per query on the same view — so re-resolving the
	// concrete storage every call costs real time (for provider-backed
	// views it is an interface assertion plus a ~25-word struct copy per
	// prefix). The cache is keyed by view identity.
	adjView graph.View
	adj     graph.Adj
}

// adjFor returns the devirtualized adjacency for g, resolving it only
// when the view changed since the last probe on this Scratch. Mutable
// *graph.Graph views resolve to storage that a mutation can invalidate,
// but the probe contract already forbids mutating during queries, and any
// mutation epoch change arrives via a new snapshot (a different view
// identity), which misses the cache.
//
// Only views of comparable dynamic types are cached (adjView stays nil
// otherwise, and comparing a comparable cached view against a foreign
// uncomparable one is defined — distinct dynamic types are simply
// unequal), so an uncomparable View implementation falls back to
// per-call resolution instead of panicking.
func (s *Scratch) adjFor(g graph.View) *graph.Adj {
	if s.adjView != nil && s.adjView == g {
		return &s.adj
	}
	s.adj = graph.ResolveAdj(g)
	s.adjView = nil
	if reflect.TypeOf(g).Comparable() {
		s.adjView = g
	}
	return &s.adj
}

// SetMeter attaches (or, with nil, detaches) the query budget meter the
// probe loops checkpoint against. Owners that pool a Scratch across
// queries must detach before parking it, so a recycled scratch can never
// observe a previous query's expiry.
func (s *Scratch) SetMeter(m *budget.Meter) { s.meter = m }

// ReleaseView drops the cached adjacency resolution. Owners that pool a
// Scratch across queries (core's executor scratch) call it before
// parking the scratch, so an idle pooled scratch never keeps a retired
// snapshot generation — O(n+m) of CSR arrays — reachable.
func (s *Scratch) ReleaseView() {
	s.adjView = nil
	s.adj = graph.Adj{}
}

// NewScratch allocates probe buffers for a graph with n nodes.
func NewScratch(n int) *Scratch {
	return &Scratch{
		n:        n,
		curScore: make([]float64, n),
		newScore: make([]float64, n),
		mark:     make([]uint32, n),
		member:   make([]uint32, n),
	}
}

// nextEpoch invalidates all mark stamps in O(1) (with a wraparound reset).
func (s *Scratch) nextEpoch() uint32 {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.epoch = 1
	}
	return s.epoch
}

func (s *Scratch) nextMemberEpoch() uint32 {
	s.memberEp++
	if s.memberEp == 0 {
		for i := range s.member {
			s.member[i] = 0
		}
		s.memberEp = 1
	}
	return s.memberEp
}

// Result is a deterministic probe outcome: the nodes of the final level and
// a dense score array (indexed by node id, valid only for the listed
// nodes). Both alias Scratch storage and are invalidated by the next probe
// on the same Scratch.
type Result struct {
	Nodes  []graph.NodeID
	Scores []float64
}

// Deterministic runs Algorithm 2 on the partial walk path (path[0] = u).
// epsP > 0 enables pruning rule 2: a frontier node x is not expanded when
// Score(x)·(√c)^(remaining levels) <= epsP. The query node path[0] is never
// assigned a score (Definition 4 requires v ≠ u₁).
//
// The returned scores are exact first-meeting probabilities when epsP == 0,
// and one-sided under-estimates short by at most epsP otherwise (Lemma 7).
//
// All probe entry points accept any graph.View (a mutable *graph.Graph or
// an immutable *graph.Snapshot); the concrete adjacency storage is
// resolved once per call so the per-edge inner loops pay no interface
// dispatch.
func Deterministic(g graph.View, path []graph.NodeID, sqrtC, epsP float64, s *Scratch) Result {
	i := len(path)
	if i < 2 {
		return Result{}
	}
	adj := s.adjFor(g)
	cur := append(s.curList[:0], path[i-1])
	s.curScore[path[i-1]] = 1
	for j := 0; j <= i-2; j++ {
		if s.meter.Stopped() {
			// The query's budget tripped mid-probe: abandon the probe and
			// return the EMPTY result. An intermediate frontier holds
			// level-j scores, not final-level first-meeting scores —
			// accumulating it would rank garbage, so a tripped probe
			// contributes nothing (callers surface the budget error, and
			// any partial estimate keeps only fully-probed prefixes).
			return Result{}
		}
		cur = s.deterministicLevel(adj, cur, path[i-j-2], sqrtC, pruneThreshold(epsP, sqrtC, i, j))
		if len(cur) == 0 {
			break
		}
	}
	return Result{Nodes: cur, Scores: s.curScore}
}

// pruneThreshold returns the level-j frontier score below which pruning
// rule 2 drops a node: Score(x)·(√c)^{i-j-1} <= εp. Zero disables pruning.
func pruneThreshold(epsP, sqrtC float64, i, j int) float64 {
	if epsP <= 0 {
		return 0
	}
	return epsP / math.Pow(sqrtC, float64(i-j-1))
}

// deterministicLevel expands one level of Algorithm 2 and returns the next
// frontier. The expanded scores end up in s.curScore (buffers are swapped).
func (s *Scratch) deterministicLevel(adj *graph.Adj, cur []graph.NodeID, excluded graph.NodeID, sqrtC, pruneBelow float64) []graph.NodeID {
	epoch := s.nextEpoch()
	next := s.nextList[:0]
	levelStart := s.Work
	for _, x := range cur {
		sc := s.curScore[x]
		if pruneBelow > 0 && sc <= pruneBelow {
			continue
		}
		w := sqrtC * sc
		out := adj.Out(x)
		s.Work += int64(len(out))
		for _, v := range out {
			if v == excluded {
				continue
			}
			contrib := w / float64(adj.InDegree(v))
			if s.mark[v] == epoch {
				s.newScore[v] += contrib
			} else {
				s.mark[v] = epoch
				s.newScore[v] = contrib
				next = append(next, v)
			}
		}
	}
	// Charge per level: the shared atomic add is within noise next to the
	// level's edge traversals, and ChargeWork's work-boundary polling is
	// what lets an expired deadline surface DURING a long probe instead
	// of only at the next walk-trial checkpoint. A single level remains
	// the uninterruptible unit — the finest granularity that keeps the
	// per-edge inner loop free of budget branches.
	s.meter.ChargeWork(s.Work - levelStart)
	s.meter.AddProbeLevels(1)
	s.curList, s.nextList = next, cur[:0]
	s.curScore, s.newScore = s.newScore, s.curScore
	return next
}

// OutDegreeSum returns the total out-degree of the listed nodes, the
// quantity the §4.4 hybrid compares against c₀·w·n to decide a switch.
func OutDegreeSum(g graph.View, nodes []graph.NodeID) int {
	adj := graph.ResolveAdj(g)
	return outDegreeSum(&adj, nodes)
}

func outDegreeSum(adj *graph.Adj, nodes []graph.NodeID) int {
	sum := 0
	for _, v := range nodes {
		sum += adj.OutDegree(v)
	}
	return sum
}

// Randomized runs Algorithm 4 on the partial walk path. Every node of the
// returned final level is a Bernoulli sample whose success probability
// equals the deterministic score (Lemma 6); the caller counts each returned
// node with weight 1. The returned slice aliases Scratch storage.
func Randomized(g graph.View, path []graph.NodeID, sqrtC float64, rng *xrand.RNG, s *Scratch) []graph.NodeID {
	i := len(path)
	if i < 2 {
		return nil
	}
	adj := s.adjFor(g)
	ep := s.nextMemberEpoch()
	s.member[path[i-1]] = ep
	cur := append(s.curList[:0], path[i-1])
	for j := 0; j <= i-2; j++ {
		if s.meter.Stopped() {
			// Tripped mid-probe: contribute nothing (see Deterministic).
			return nil
		}
		cur = s.randomizedLevel(adj, cur, path[i-j-2], sqrtC, rng, ep)
		if len(cur) == 0 {
			break
		}
	}
	return cur
}

// ContinueRandomized finishes a probe of path whose levels 0..j have
// already been computed; members must list the sampled membership of level
// j (H_j). It runs the remaining randomized levels and returns the final
// level. members is copied, so callers may reuse their buffer across
// replicas. The returned slice aliases Scratch storage.
func ContinueRandomized(g graph.View, path []graph.NodeID, j int, members []graph.NodeID, sqrtC float64, rng *xrand.RNG, s *Scratch) []graph.NodeID {
	i := len(path)
	if i < 2 || j > i-2 {
		// Nothing left to expand: H_j is the final level. Copy into
		// scratch so the aliasing contract matches the other entry points.
		return append(s.curList[:0], members...)
	}
	adj := s.adjFor(g)
	ep := s.nextMemberEpoch()
	cur := s.curList[:0]
	for _, v := range members {
		if s.member[v] != ep {
			s.member[v] = ep
			cur = append(cur, v)
		}
	}
	s.curList = cur
	for ; j <= i-2; j++ {
		if s.meter.Stopped() {
			// Tripped mid-probe: contribute nothing (see Deterministic).
			return nil
		}
		cur = s.randomizedLevel(adj, cur, path[i-j-2], sqrtC, rng, ep)
		if len(cur) == 0 {
			break
		}
	}
	return cur
}

// randomizedLevel advances one level of Algorithm 4: from the member set
// stamped in s.member (listed in cur), it samples the next member set and
// returns its node list. excluded is u_{i-j-1}.
func (s *Scratch) randomizedLevel(adj *graph.Adj, cur []graph.NodeID, excluded graph.NodeID, sqrtC float64, rng *xrand.RNG, ep uint32) []graph.NodeID {
	s.meter.AddProbeLevels(1)
	next := s.nextList[:0]
	selected := func(x graph.NodeID) bool {
		in := adj.In(x)
		v := in[rng.Intn(len(in))]
		return s.member[v] == ep && rng.Float64() < sqrtC
	}
	// Candidate set U: union of out-neighbors if cheap, else all nodes
	// (Lines 3-7 of Algorithm 4). Either branch's scan cost is the level's
	// work; charge it up front so a work cap trips at the same place a
	// deterministic probe of the same shape would.
	if ods := outDegreeSum(adj, cur); ods <= s.n {
		s.meter.ChargeWork(int64(ods))
		// Deduplicate candidates with the mark array so each x is sampled
		// exactly once, as in "for each x ∈ U".
		epoch := s.nextEpoch()
		for _, v := range cur {
			for _, x := range adj.Out(v) {
				if x == excluded || s.mark[x] == epoch {
					continue
				}
				s.mark[x] = epoch
				if selected(x) {
					next = append(next, x)
				}
			}
		}
	} else {
		s.meter.ChargeWork(int64(s.n))
		for x := 0; x < s.n; x++ {
			id := graph.NodeID(x)
			if id == excluded || adj.InDegree(id) == 0 {
				continue
			}
			if selected(id) {
				next = append(next, id)
			}
		}
	}
	// Membership stamps move to the new level: clear the old members, then
	// stamp the new ones (a node may appear in both levels).
	for _, v := range cur {
		s.member[v] = 0
	}
	for _, x := range next {
		s.member[x] = ep
	}
	s.curList, s.nextList = next, cur[:0]
	return next
}
