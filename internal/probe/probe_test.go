package probe

import (
	"math"
	"testing"

	"probesim/internal/graph"
	"probesim/internal/walk"
	"probesim/internal/xrand"
)

// scoresOf converts a probe Result into a map for comparison.
func scoresOf(r Result) map[graph.NodeID]float64 {
	out := make(map[graph.NodeID]float64, len(r.Nodes))
	for _, v := range r.Nodes {
		out[v] = r.Scores[v]
	}
	return out
}

// §3.2 running example, toy graph, √c' = 0.5. The paper's S2, S3, S4 score
// sets for the √c-walk W(a) = (a, b, a, b), as exact fractions.
func TestDeterministicPaperExample(t *testing.T) {
	g := graph.Toy()
	s := NewScratch(g.NumNodes())
	a, b := graph.ToyA, graph.ToyB

	cases := []struct {
		name string
		path []graph.NodeID
		want map[graph.NodeID]float64
	}{
		{
			name: "S2 = probe(a,b)",
			path: []graph.NodeID{a, b},
			want: map[graph.NodeID]float64{
				graph.ToyC: 1.0 / 6, graph.ToyD: 0.5, graph.ToyE: 0.25,
			},
		},
		{
			name: "S3 = probe(a,b,a)",
			path: []graph.NodeID{a, b, a},
			want: map[graph.NodeID]float64{
				graph.ToyF: 1.0 / 48, graph.ToyG: 1.0 / 36, graph.ToyH: 1.0 / 36,
			},
		},
		{
			name: "S4 = probe(a,b,a,b)",
			path: []graph.NodeID{a, b, a, b},
			want: map[graph.NodeID]float64{
				graph.ToyB: 1.0 / 96, graph.ToyC: 14.0 / 432,
				graph.ToyE: 11.0 / 288, graph.ToyF: 11.0 / 576,
			},
		},
	}
	for _, tc := range cases {
		got := scoresOf(Deterministic(g, tc.path, 0.5, 0, s))
		if len(got) != len(tc.want) {
			t.Errorf("%s: got nodes %v, want %v", tc.name, got, tc.want)
			continue
		}
		for v, want := range tc.want {
			if math.Abs(got[v]-want) > 1e-12 {
				t.Errorf("%s: score(%s) = %.6f, want %.6f",
					tc.name, graph.ToyNames[v], got[v], want)
			}
		}
	}
}

// The intermediate level-2 scores of the W(a,4) probe quoted in §3.2:
// Score(a,2)=1/24, Score(f,2)=11/96, Score(g,2)=Score(h,2)=11/72.
func TestDeterministicIntermediateLevels(t *testing.T) {
	g := graph.Toy()
	s := NewScratch(g.NumNodes())
	path := []graph.NodeID{graph.ToyA, graph.ToyB, graph.ToyA, graph.ToyB}
	adj := graph.ResolveAdj(g)
	cur := append(s.curList[:0], path[3])
	s.curScore[path[3]] = 1
	cur = s.deterministicLevel(&adj, cur, path[2], 0.5, 0) // H1
	cur = s.deterministicLevel(&adj, cur, path[1], 0.5, 0) // H2
	got := map[graph.NodeID]float64{}
	for _, v := range cur {
		got[v] = s.curScore[v]
	}
	want := map[graph.NodeID]float64{
		graph.ToyA: 1.0 / 24, graph.ToyF: 11.0 / 96,
		graph.ToyG: 11.0 / 72, graph.ToyH: 11.0 / 72,
	}
	if len(got) != len(want) {
		t.Fatalf("H2 = %v, want %v", got, want)
	}
	for v, w := range want {
		if math.Abs(got[v]-w) > 1e-12 {
			t.Errorf("Score(%s,2) = %.6f, want %.6f", graph.ToyNames[v], got[v], w)
		}
	}
}

// §4.1 running example for pruning rule 2: with εp = 0.05 the probe of
// (a,b,a,b) must not descend below c (Score(c,1)·(√c)² = 0.042 <= εp),
// removing c's contribution from every deeper level.
func TestPruningRule2Example(t *testing.T) {
	g := graph.Toy()
	s := NewScratch(g.NumNodes())
	path := []graph.NodeID{graph.ToyA, graph.ToyB, graph.ToyA, graph.ToyB}
	got := scoresOf(Deterministic(g, path, 0.5, 0.05, s))

	// With c pruned at level 1, H2 = {f: (1/2+1/4)/2/4, g: (3/4)/2/3, h: same}
	// (a receives score only from c, so a disappears as well), and H3 is
	// built from f, g, h alone. f also fails the level-2 prune
	// (0.09375·0.5 <= 0.05), g and h survive (0.125 > 0.05).
	// H3 from g: e (1/2·0.125/2), c (1/2·0.125/3); from h: f (1/2·0.125/4).
	want := map[graph.NodeID]float64{
		graph.ToyE: 0.125 * 0.5 / 2,
		graph.ToyC: 0.125 * 0.5 / 3,
		graph.ToyF: 0.125 * 0.5 / 4,
	}
	if len(got) != len(want) {
		t.Fatalf("pruned probe = %v, want %v", got, want)
	}
	for v, w := range want {
		if math.Abs(got[v]-w) > 1e-12 {
			t.Errorf("score(%s) = %.6f, want %.6f", graph.ToyNames[v], got[v], w)
		}
	}
}

// Pruning is one-sided: pruned scores never exceed exact scores, and the
// deficit is bounded by εp (Lemma 7).
func TestPruningOneSided(t *testing.T) {
	rng := xrand.New(42)
	g := randomGraph(rng, 60, 300)
	s := NewScratch(g.NumNodes())
	gen := walk.NewGenerator(g, 0.6, rng)
	sqrtC := math.Sqrt(0.6)
	const epsP = 0.02
	for trial := 0; trial < 200; trial++ {
		u := rng.Int31n(60)
		w := gen.Generate(u, 8, nil)
		if len(w) < 2 {
			continue
		}
		exact := map[graph.NodeID]float64{}
		for v, sc := range scoresOf(Deterministic(g, w, sqrtC, 0, s)) {
			exact[v] = sc
		}
		pruned := scoresOf(Deterministic(g, w, sqrtC, epsP, s))
		for v, sc := range pruned {
			if sc > exact[v]+1e-12 {
				t.Fatalf("pruned score %v > exact %v at node %d", sc, exact[v], v)
			}
		}
		for v, ex := range exact {
			if ex-pruned[v] > epsP+1e-12 {
				t.Fatalf("pruning deficit %v > εp at node %d", ex-pruned[v], v)
			}
		}
	}
}

// Each probe score is a probability for the walk of a distinct node v, so
// per node it lies in [0, (√c)^(i-1)] (each of the i-1 levels multiplies by
// at most √c), and the query node never receives a score. Note the sum
// over v is NOT bounded by 1 — only the per-v sum across levels is.
func TestScoreDistributionProperties(t *testing.T) {
	rng := xrand.New(7)
	sqrtC := math.Sqrt(0.8)
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(rng, 40, 200)
		s := NewScratch(g.NumNodes())
		gen := walk.NewGenerator(g, 0.8, rng)
		u := rng.Int31n(40)
		w := gen.Generate(u, 10, nil)
		if len(w) < 2 {
			continue
		}
		res := Deterministic(g, w, sqrtC, 0, s)
		bound := math.Pow(sqrtC, float64(len(w)-1))
		for _, v := range res.Nodes {
			sc := res.Scores[v]
			if v == u {
				t.Fatalf("query node %d received score %v", u, sc)
			}
			if sc < 0 || sc > bound+1e-12 {
				t.Fatalf("score %v outside [0, (√c)^%d = %v]", sc, len(w)-1, bound)
			}
		}
	}
}

// Cross-validation: the deterministic probe score of v equals the
// first-meeting probability measured by direct √c-walk simulation from v.
func TestDeterministicMatchesSimulation(t *testing.T) {
	g := graph.Toy()
	s := NewScratch(g.NumNodes())
	path := []graph.NodeID{graph.ToyA, graph.ToyB, graph.ToyA, graph.ToyB}
	res := Deterministic(g, path, 0.5, 0, s)
	want := map[graph.NodeID]float64{}
	for _, v := range res.Nodes {
		want[v] = res.Scores[v]
	}

	rng := xrand.New(99)
	gen := walk.NewGenerator(g, 0.25, rng) // c = 0.25 so √c = 0.5
	const trials = 400000
	for v, exact := range want {
		hits := 0
		for i := 0; i < trials; i++ {
			w := gen.Generate(v, len(path), nil)
			if len(w) < len(path) {
				continue
			}
			// First-meeting at the final step: match there, differ earlier.
			if w[len(path)-1] != path[len(path)-1] {
				continue
			}
			met := false
			for j := 1; j < len(path)-1; j++ {
				if w[j] == path[j] {
					met = true
					break
				}
			}
			if !met {
				hits++
			}
		}
		got := float64(hits) / trials
		sigma := math.Sqrt(exact * (1 - exact) / trials)
		if math.Abs(got-exact) > 5*sigma+1e-4 {
			t.Errorf("simulated P(%s) = %.5f, probe says %.5f",
				graph.ToyNames[v], got, exact)
		}
	}
}

// Lemma 6: the randomized probe selects each node with probability equal
// to its deterministic score.
func TestRandomizedUnbiased(t *testing.T) {
	g := graph.Toy()
	s := NewScratch(g.NumNodes())
	path := []graph.NodeID{graph.ToyA, graph.ToyB, graph.ToyA, graph.ToyB}
	det := Deterministic(g, path, 0.5, 0, s)
	want := map[graph.NodeID]float64{}
	for _, v := range det.Nodes {
		want[v] = det.Scores[v]
	}

	rng := xrand.New(123)
	const trials = 300000
	counts := map[graph.NodeID]int{}
	for i := 0; i < trials; i++ {
		for _, v := range Randomized(g, path, 0.5, rng, s) {
			counts[v]++
		}
	}
	for v := range counts {
		if _, ok := want[v]; !ok {
			t.Fatalf("randomized probe selected %s which has zero score", graph.ToyNames[v])
		}
	}
	for v, exact := range want {
		got := float64(counts[v]) / trials
		sigma := math.Sqrt(exact * (1 - exact) / trials)
		if math.Abs(got-exact) > 5*sigma+1e-4 {
			t.Errorf("randomized frequency(%s) = %.5f, want %.5f",
				graph.ToyNames[v], got, exact)
		}
	}
}

// Randomized probes on random graphs stay within the support of the
// deterministic probe.
func TestRandomizedSupport(t *testing.T) {
	rng := xrand.New(31)
	g := randomGraph(rng, 50, 250)
	s := NewScratch(g.NumNodes())
	s2 := NewScratch(g.NumNodes())
	gen := walk.NewGenerator(g, 0.6, rng)
	sqrtC := math.Sqrt(0.6)
	for trial := 0; trial < 300; trial++ {
		u := rng.Int31n(50)
		w := gen.Generate(u, 8, nil)
		if len(w) < 2 {
			continue
		}
		det := scoresOf(Deterministic(g, w, sqrtC, 0, s))
		for _, v := range Randomized(g, w, sqrtC, rng, s2) {
			if det[v] == 0 {
				t.Fatalf("randomized selected %d outside deterministic support", v)
			}
		}
	}
}

// ContinueRandomized with an exactly-sampled deterministic level must match
// the full deterministic scores in expectation (the §4.4 hybrid switch is
// unbiased).
func TestContinueRandomizedUnbiased(t *testing.T) {
	g := graph.Toy()
	s := NewScratch(g.NumNodes())
	path := []graph.NodeID{graph.ToyA, graph.ToyB, graph.ToyA, graph.ToyB}
	det := Deterministic(g, path, 0.5, 0, s)
	want := map[graph.NodeID]float64{}
	for _, v := range det.Nodes {
		want[v] = det.Scores[v]
	}

	// Recompute H1 deterministically, then hand over at j = 1.
	s1 := NewScratch(g.NumNodes())
	adj := graph.ResolveAdj(g)
	cur := append(s1.curList[:0], path[3])
	s1.curScore[path[3]] = 1
	cur = s1.deterministicLevel(&adj, cur, path[2], 0.5, 0)
	h1 := append([]graph.NodeID(nil), cur...)
	h1Scores := make([]float64, len(h1))
	for i, v := range h1 {
		h1Scores[i] = s1.curScore[v]
	}

	rng := xrand.New(777)
	s2 := NewScratch(g.NumNodes())
	const trials = 300000
	counts := map[graph.NodeID]int{}
	members := make([]graph.NodeID, 0, len(h1))
	for i := 0; i < trials; i++ {
		members = members[:0]
		for idx, v := range h1 {
			if rng.Float64() < h1Scores[idx] {
				members = append(members, v)
			}
		}
		for _, v := range ContinueRandomized(g, path, 1, members, 0.5, rng, s2) {
			counts[v]++
		}
	}
	for v, exact := range want {
		got := float64(counts[v]) / trials
		sigma := math.Sqrt(exact * (1 - exact) / trials)
		if math.Abs(got-exact) > 5*sigma+1e-4 {
			t.Errorf("continued frequency(%s) = %.5f, want %.5f",
				graph.ToyNames[v], got, exact)
		}
	}
}

func TestShortPaths(t *testing.T) {
	g := graph.Toy()
	s := NewScratch(g.NumNodes())
	if r := Deterministic(g, []graph.NodeID{graph.ToyA}, 0.5, 0, s); len(r.Nodes) != 0 {
		t.Fatal("length-1 path must probe nothing")
	}
	if r := Deterministic(g, nil, 0.5, 0, s); len(r.Nodes) != 0 {
		t.Fatal("empty path must probe nothing")
	}
	if got := Randomized(g, []graph.NodeID{graph.ToyA}, 0.5, xrand.New(1), s); len(got) != 0 {
		t.Fatal("length-1 randomized path must probe nothing")
	}
}

func TestOutDegreeSum(t *testing.T) {
	g := graph.Toy()
	// out(b) = {a,c,d,e}, out(d) = {f,g,h}.
	if got := OutDegreeSum(g, []graph.NodeID{graph.ToyB, graph.ToyD}); got != 4+3 {
		t.Fatalf("OutDegreeSum = %d, want 7", got)
	}
}

// Scratch reuse across many probes must not leak state between calls.
func TestScratchReuse(t *testing.T) {
	g := graph.Toy()
	s := NewScratch(g.NumNodes())
	path := []graph.NodeID{graph.ToyA, graph.ToyB}
	first := map[graph.NodeID]float64{}
	for v, sc := range scoresOf(Deterministic(g, path, 0.5, 0, s)) {
		first[v] = sc
	}
	for i := 0; i < 100; i++ {
		// Interleave other probes to dirty the buffers.
		Deterministic(g, []graph.NodeID{graph.ToyA, graph.ToyB, graph.ToyA, graph.ToyB}, 0.5, 0, s)
		Randomized(g, []graph.NodeID{graph.ToyA, graph.ToyC}, 0.5, xrand.New(uint64(i)), s)
		again := scoresOf(Deterministic(g, path, 0.5, 0, s))
		if len(again) != len(first) {
			t.Fatalf("iteration %d: result size changed", i)
		}
		for v, sc := range first {
			if again[v] != sc {
				t.Fatalf("iteration %d: score(%d) drifted %v -> %v", i, v, sc, again[v])
			}
		}
	}
}

// Epoch wraparound safety: force the epoch counters around the uint32
// boundary and check results remain correct.
func TestEpochWraparound(t *testing.T) {
	g := graph.Toy()
	s := NewScratch(g.NumNodes())
	path := []graph.NodeID{graph.ToyA, graph.ToyB}
	want := scoresOf(Deterministic(g, path, 0.5, 0, s))
	s.epoch = math.MaxUint32 - 1
	s.memberEp = math.MaxUint32 - 1
	for i := 0; i < 5; i++ {
		got := scoresOf(Deterministic(g, path, 0.5, 0, s))
		Randomized(g, path, 0.5, xrand.New(9), s)
		for v, sc := range want {
			if got[v] != sc {
				t.Fatalf("wraparound changed score(%d): %v -> %v", v, sc, got[v])
			}
		}
	}
}

func randomGraph(rng *xrand.RNG, n, m int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
		if u != v {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}
