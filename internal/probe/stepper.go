package probe

import (
	"probesim/internal/graph"
)

// Stepper runs the deterministic probe (Algorithm 2) one level at a time so
// a caller can inspect the frontier between levels. This is how the §4.4
// hybrid decides mid-probe whether to abandon the deterministic expansion
// and finish with randomized replicas.
type Stepper struct {
	adj   *graph.Adj
	path  []graph.NodeID
	sqrtC float64
	epsP  float64
	s     *Scratch
	j     int // next level to produce (H_j)
	cur   []graph.NodeID
}

// NewStepper prepares a stepped probe of path over g (any graph.View). The
// Scratch is owned by the stepper until the probe finishes; path must have
// length >= 2.
func NewStepper(g graph.View, path []graph.NodeID, sqrtC, epsP float64, s *Scratch) *Stepper {
	st := &Stepper{adj: s.adjFor(g), path: path, sqrtC: sqrtC, epsP: epsP, s: s, j: 0}
	st.cur = append(s.curList[:0], path[len(path)-1])
	s.curScore[path[len(path)-1]] = 1
	return st
}

// Level returns the index j of the current frontier H_j.
func (st *Stepper) Level() int { return st.j }

// Done reports whether the probe has produced its final level H_{i-1} (or
// died out early with an empty frontier).
func (st *Stepper) Done() bool {
	return st.j >= len(st.path)-1 || len(st.cur) == 0
}

// Frontier returns the current level's nodes and the dense score array.
// Both alias Scratch storage and are invalidated by Step.
func (st *Stepper) Frontier() ([]graph.NodeID, []float64) {
	return st.cur, st.s.curScore
}

// FrontierOutDegreeSum returns the total out-degree of the current
// frontier, the quantity the §4.4 hybrid compares against its budget.
func (st *Stepper) FrontierOutDegreeSum() int {
	return outDegreeSum(st.adj, st.cur)
}

// Step expands one level and reports whether the probe can continue. After
// the final Step the frontier holds the probe result. Each level charges
// its edge traversals to the scratch's budget meter as it expands, so a
// deadline stays observable inside a long stepped probe.
func (st *Stepper) Step() bool {
	if st.Done() {
		return false
	}
	i := len(st.path)
	excluded := st.path[i-st.j-2]
	st.cur = st.s.deterministicLevel(st.adj, st.cur, excluded, st.sqrtC, pruneThreshold(st.epsP, st.sqrtC, i, st.j))
	st.j++
	return !st.Done()
}
