// Package linear implements linearized SimRank, the alternative-formulation
// family the paper surveys in §5 (Equations 10 vs 11): replace the
// element-wise maximum in S = (c·PᵀSP) ∨ I with an additive diagonal
// correction
//
//	S = c·PᵀSP + D,
//
// whose unique fixed point is the power series S(D) = Σ_t c^t·Qᵗ·D·(Qᵀ)ᵗ,
// where Q is the reverse-walk transition matrix (row v is the uniform
// distribution over I(v)).
//
// The package makes the paper's §5 criticism executable:
//
//   - NaiveDiagonal returns D = (1−c)·I, the choice of [8, 9, 15, 28, 29,
//     31]. S(D) then differs from true SimRank on any graph where two
//     walks can meet more than once, and the experiment harness measures
//     that bias against the Power Method.
//   - DiagonalExact solves diag(S(D)) = 1 for D exactly (dense Gaussian
//     elimination over the meeting-coefficient matrix), the correction of
//     Kusumoto, Maehara & Kawarabayashi (SIGMOD 2014). With this D the
//     series reproduces true SimRank up to series truncation.
//   - DiagonalMC estimates the same correction from sampled reverse-walk
//     pairs, the scalable variant of Maehara et al. [20] — which is exactly
//     the kind of heuristic-precision index ProbeSim's guarantees are
//     positioned against.
//
// Single-source queries given a diagonal run in O(T·(n + m)) time via
// forward propagation and backward accumulation, with no dependence on εa —
// but also with no error guarantee unless D is exact.
package linear

import (
	"fmt"
	"math"

	"probesim/internal/graph"
	"probesim/internal/xrand"
)

// Options configures linearized-SimRank computations.
type Options struct {
	// C is the SimRank decay factor. Default 0.6.
	C float64
	// T is the series truncation depth; the tail beyond T contributes at
	// most c^(T+1)/(1−c). Default: smallest T with that tail below 1e-4.
	T int
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.T == 0 {
		o.T = TailDepth(o.C, 1e-4)
	}
	return o
}

func (o Options) validate() error {
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("linear: decay factor c = %v outside (0, 1)", o.C)
	}
	if o.T < 1 {
		return fmt.Errorf("linear: truncation depth T = %d < 1", o.T)
	}
	return nil
}

// TailDepth returns the smallest T whose truncated-series tail bound
// c^(T+1)/(1−c) is at most tol.
func TailDepth(c, tol float64) int {
	t := int(math.Ceil(math.Log(tol*(1-c))/math.Log(c))) - 1
	if t < 1 {
		t = 1
	}
	return t
}

// NaiveDiagonal returns the uncorrected diagonal D = (1−c)·I used by the
// techniques the paper criticizes in §5: it treats every re-meeting of two
// walks as a fresh contribution, over-counting similarity.
func NaiveDiagonal(g *graph.Graph, c float64) []float64 {
	d := make([]float64, g.NumNodes())
	for v := range d {
		d[v] = 1 - c
	}
	return d
}

// forward applies Qᵀ: push the reverse-walk distribution one step, writing
// into out. out[b] = Σ_{a ∈ O(b)} x[a] / |I(a)|.
func forward(g *graph.Graph, x, out []float64) {
	for b := range out {
		out[b] = 0
	}
	for a := 0; a < g.NumNodes(); a++ {
		if x[a] == 0 {
			continue
		}
		in := g.InNeighbors(graph.NodeID(a))
		if len(in) == 0 {
			continue
		}
		p := x[a] / float64(len(in))
		for _, b := range in {
			out[b] += p
		}
	}
}

// backward applies Q: out[a] = avg over b ∈ I(a) of z[b], i.e. one step of
// the adjoint of forward.
func backward(g *graph.Graph, z, out []float64) {
	for a := 0; a < g.NumNodes(); a++ {
		in := g.InNeighbors(graph.NodeID(a))
		if len(in) == 0 {
			out[a] = 0
			continue
		}
		var sum float64
		for _, b := range in {
			sum += z[b]
		}
		out[a] = sum / float64(len(in))
	}
}

// SingleSource evaluates the truncated linearized series for source u with
// diagonal d:
//
//	s(u, ·) = Σ_{t=0..T} c^t · Qᵗ · (D · x_t),  x_t = (Qᵀ)ᵗ e_u.
//
// It first propagates x_0..x_T forward, then folds the series backward with
// the recurrence acc_t = c·Q·acc_{t+1} + D·x_t, so the whole query costs
// O(T·(n+m)) instead of O(T²·(n+m)).
func SingleSource(g *graph.Graph, u graph.NodeID, d []float64, opt Options) ([]float64, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("linear: node %d out of range [0, %d)", u, n)
	}
	if len(d) != n {
		return nil, fmt.Errorf("linear: diagonal has %d entries, graph has %d nodes", len(d), n)
	}
	// Forward pass: x_t for t = 0..T.
	xs := make([][]float64, opt.T+1)
	xs[0] = make([]float64, n)
	xs[0][u] = 1
	for t := 1; t <= opt.T; t++ {
		xs[t] = make([]float64, n)
		forward(g, xs[t-1], xs[t])
	}
	// Backward fold.
	acc := make([]float64, n)
	next := make([]float64, n)
	for v := 0; v < n; v++ {
		acc[v] = d[v] * xs[opt.T][v]
	}
	for t := opt.T - 1; t >= 0; t-- {
		backward(g, acc, next)
		for v := 0; v < n; v++ {
			next[v] = opt.C*next[v] + d[v]*xs[t][v]
		}
		acc, next = next, acc
	}
	return acc, nil
}

// meetingMatrix materializes A with A[v][w] = Σ_{t=0..T} c^t · x_t^v[w]²,
// the linear operator mapping a diagonal d to diag(S(d)). Dense O(n²)
// memory: intended for the exact small-graph solver.
func meetingMatrix(g *graph.Graph, opt Options) [][]float64 {
	n := g.NumNodes()
	a := make([][]float64, n)
	x := make([]float64, n)
	next := make([]float64, n)
	for v := 0; v < n; v++ {
		row := make([]float64, n)
		for i := range x {
			x[i] = 0
		}
		x[v] = 1
		ct := 1.0
		for t := 0; ; t++ {
			for w := 0; w < n; w++ {
				if x[w] != 0 {
					row[w] += ct * x[w] * x[w]
				}
			}
			if t == opt.T {
				break
			}
			forward(g, x, next)
			x, next = next, x
			ct *= opt.C
		}
		a[v] = row
	}
	return a
}

// DiagonalExact solves diag(S(D)) = 1 for D by dense Gaussian elimination
// over the meeting-coefficient matrix. O(n²) space and O(n³) time: the
// exact correction, affordable only on small graphs — which is the point
// of contrast with ProbeSim's index-free scaling.
func DiagonalExact(g *graph.Graph, opt Options) ([]float64, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	a := meetingMatrix(g, opt)
	b := make([]float64, g.NumNodes())
	for i := range b {
		b[i] = 1
	}
	d, err := solveDense(a, b)
	if err != nil {
		return nil, fmt.Errorf("linear: diagonal system: %w", err)
	}
	return d, nil
}

// solveDense solves a·x = b in place by Gaussian elimination with partial
// pivoting. a and b are clobbered.
func solveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if len(b) != n {
		return nil, fmt.Errorf("linear: %d equations, %d right-hand sides", n, len(b))
	}
	for col := 0; col < n; col++ {
		// Partial pivot: largest |a[row][col]| for row >= col.
		pivot := col
		best := math.Abs(a[col][col])
		for row := col + 1; row < n; row++ {
			if v := math.Abs(a[row][col]); v > best {
				best, pivot = v, row
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("linear: singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for row := col + 1; row < n; row++ {
			f := a[row][col] * inv
			if f == 0 {
				continue
			}
			arow, acol := a[row], a[col]
			for k := col; k < n; k++ {
				arow[k] -= f * acol[k]
			}
			b[row] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for row := n - 1; row >= 0; row-- {
		sum := b[row]
		arow := a[row]
		for k := row + 1; k < n; k++ {
			sum -= arow[k] * x[k]
		}
		x[row] = sum / arow[row]
	}
	return x, nil
}

// MCOptions configures the sampled diagonal estimator.
type MCOptions struct {
	// Pairs is the number of reverse-walk pairs sampled per node.
	// Default 200.
	Pairs int
	// Seed drives the sampling. Default 1.
	Seed uint64
	// MaxIter bounds the fixed-point iterations on the sampled operator.
	// Default 100.
	MaxIter int
	// Tol is the convergence tolerance on max |diag(S(d)) − 1|.
	// Default 1e-9.
	Tol float64
}

func (o MCOptions) withDefaults() MCOptions {
	if o.Pairs == 0 {
		o.Pairs = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	return o
}

// DiagonalMC estimates the correction diagonal from sampled reverse-walk
// pairs (the Maehara et al. approach): for each node v, the meeting
// positions (t, w) of R independent walk pairs give an unbiased sparse
// estimate of row v of the meeting matrix, and Gauss–Seidel on the sampled
// rows solves diag(Ŝ(d)) = 1. Accuracy depends on Pairs with no
// distributional guarantee — the heuristic-precision trade-off §5 calls
// out.
func DiagonalMC(g *graph.Graph, opt Options, mco MCOptions) ([]float64, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	mco = mco.withDefaults()
	n := g.NumNodes()
	// Sampled sparse rows: for node v, a map w -> summed c^t weight over
	// all recorded meetings, averaged over Pairs.
	rows := make([]map[graph.NodeID]float64, n)
	rng := xrand.New(mco.Seed)
	wa := make([]graph.NodeID, 0, opt.T+1)
	wb := make([]graph.NodeID, 0, opt.T+1)
	for v := 0; v < n; v++ {
		row := make(map[graph.NodeID]float64)
		// t = 0: both walks are at v, coefficient c^0 = 1.
		row[graph.NodeID(v)] += float64(mco.Pairs)
		for p := 0; p < mco.Pairs; p++ {
			wa = pureWalk(g, graph.NodeID(v), opt.T, rng, wa)
			wb = pureWalk(g, graph.NodeID(v), opt.T, rng, wb)
			ct := 1.0
			steps := len(wa)
			if len(wb) < steps {
				steps = len(wb)
			}
			for t := 1; t < steps; t++ {
				ct *= opt.C
				if wa[t] == wb[t] {
					row[wa[t]] += ct
				}
			}
		}
		inv := 1 / float64(mco.Pairs)
		for w := range row {
			row[w] *= inv
		}
		rows[v] = row
	}
	// Gauss–Seidel: d[v] = (1 − Σ_{w≠v} row[w]·d[w]) / row[v].
	d := make([]float64, n)
	for v := range d {
		d[v] = 1 - opt.C
	}
	for iter := 0; iter < mco.MaxIter; iter++ {
		var maxResid float64
		for v := 0; v < n; v++ {
			row := rows[v]
			diag := row[graph.NodeID(v)]
			sum := 0.0
			for w, coef := range row {
				if int(w) != v {
					sum += coef * d[w]
				}
			}
			nd := (1 - sum) / diag
			if r := math.Abs(nd - d[v]); r > maxResid {
				maxResid = r
			}
			d[v] = nd
		}
		if maxResid <= mco.Tol {
			return d, nil
		}
	}
	return d, fmt.Errorf("linear: Gauss–Seidel did not reach tol %g in %d iterations", mco.Tol, mco.MaxIter)
}

// pureWalk appends a non-terminating reverse random walk of at most maxT
// steps from v to buf (position 0 is v); the walk ends early only at a
// node with no in-neighbors.
func pureWalk(g *graph.Graph, v graph.NodeID, maxT int, rng *xrand.RNG, buf []graph.NodeID) []graph.NodeID {
	buf = append(buf[:0], v)
	cur := v
	for t := 0; t < maxT; t++ {
		in := g.InNeighbors(cur)
		if len(in) == 0 {
			break
		}
		cur = in[rng.Intn(len(in))]
		buf = append(buf, cur)
	}
	return buf
}
