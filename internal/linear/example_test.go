package linear_test

import (
	"fmt"
	"math"

	"probesim/internal/gen"
	"probesim/internal/linear"
	"probesim/internal/power"
)

// The §5 critique in four lines: on a graph where walk pairs re-meet, the
// naive diagonal (Equation 11) is measurably biased while the solved
// diagonal reproduces SimRank.
func Example() {
	g := gen.Complete(5)
	opt := linear.Options{C: 0.6, T: 60}
	truth, err := power.SingleSource(g, 0, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		panic(err)
	}

	naive, err := linear.SingleSource(g, 0, linear.NaiveDiagonal(g, 0.6), opt)
	if err != nil {
		panic(err)
	}
	d, err := linear.DiagonalExact(g, opt)
	if err != nil {
		panic(err)
	}
	exact, err := linear.SingleSource(g, 0, d, opt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("naive bias > 0.01:  %v\n", math.Abs(naive[1]-truth[1]) > 0.01)
	fmt.Printf("exact bias < 1e-6:  %v\n", math.Abs(exact[1]-truth[1]) < 1e-6)
	// Output:
	// naive bias > 0.01:  true
	// exact bias < 1e-6:  true
}
