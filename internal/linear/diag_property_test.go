package linear

import (
	"math"
	"testing"
	"testing/quick"

	"probesim/internal/gen"
	"probesim/internal/graph"
)

// Property: DiagonalExact actually solves its defining equation — the
// diagonal of the linearized series S(D), evaluated independently through
// SingleSource, must be 1 at every node, on arbitrary random graphs.
func TestDiagonalExactSolvesItsEquation(t *testing.T) {
	check := func(seed uint64) bool {
		g := gen.ErdosRenyi(20+int(seed%15), 80+int64(seed%60), seed%127+1)
		opt := Options{C: 0.6, T: 45}
		d, err := DiagonalExact(g, opt)
		if err != nil {
			return false
		}
		for v := 0; v < g.NumNodes(); v++ {
			est, err := SingleSource(g, graph.NodeID(v), d, opt)
			if err != nil {
				return false
			}
			if math.Abs(est[v]-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: the exact diagonal is bounded — d(v) in (0, 1] — because the
// t = 0 meeting coefficient is 1 and all corrections subtract probability
// mass.
func TestDiagonalExactRange(t *testing.T) {
	check := func(seed uint64) bool {
		g := gen.PreferentialAttachment(25, 1+int(seed%4), seed%511+1)
		d, err := DiagonalExact(g, Options{C: 0.6, T: 35})
		if err != nil {
			return false
		}
		for _, dv := range d {
			if dv <= 0 || dv > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
