package linear

import (
	"math"
	"testing"
	"testing/quick"

	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/power"
	"probesim/internal/xrand"
)

func TestTailDepth(t *testing.T) {
	for _, c := range []float64{0.4, 0.6, 0.8} {
		for _, tol := range []float64{1e-3, 1e-6} {
			T := TailDepth(c, tol)
			tail := math.Pow(c, float64(T+1)) / (1 - c)
			if tail > tol {
				t.Errorf("TailDepth(%v, %v) = %d leaves tail %v > tol", c, tol, T, tail)
			}
			if T > 1 {
				shorter := math.Pow(c, float64(T)) / (1 - c)
				if shorter <= tol {
					t.Errorf("TailDepth(%v, %v) = %d not minimal: T-1 already has tail %v", c, tol, T, shorter)
				}
			}
		}
	}
}

func TestSolveDenseKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3.
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solveDense(a, b)
	if err != nil {
		t.Fatalf("solveDense: %v", err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("solveDense = %v, want [1 3]", x)
	}
}

func TestSolveDensePivoting(t *testing.T) {
	// Zero leading entry forces a pivot swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := solveDense(a, b)
	if err != nil {
		t.Fatalf("solveDense: %v", err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("solveDense = %v, want [3 2]", x)
	}
}

func TestSolveDenseSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := solveDense(a, b); err == nil {
		t.Fatal("solveDense on singular system succeeded, want error")
	}
}

func TestSolveDenseRandomRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed%1021 + 1)
		n := 3 + rng.Intn(6)
		a := make([][]float64, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.Float64()*4 - 2
		}
		b := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.Float64()*2 - 1
			}
			a[i][i] += float64(n) // diagonal dominance keeps it well-conditioned
			for j := range a[i] {
				b[i] += a[i][j] * want[j]
			}
		}
		got, err := solveDense(a, b)
		if err != nil {
			return false
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDiagonalExactTwoCycle(t *testing.T) {
	// 0 <-> 1: walks from 0 and 1 have opposite parity and never re-meet,
	// so the naive diagonal (1-c) is already exact.
	g := graph.New(2)
	if err := g.AddEdgeUndirected(0, 1); err != nil {
		t.Fatal(err)
	}
	d, err := DiagonalExact(g, Options{C: 0.6, T: 40})
	if err != nil {
		t.Fatalf("DiagonalExact: %v", err)
	}
	for v, dv := range d {
		if math.Abs(dv-0.4) > 1e-9 {
			t.Fatalf("d[%d] = %v, want 1-c = 0.4", v, dv)
		}
	}
}

func TestZeroInDegreeDiagonal(t *testing.T) {
	// 0 -> 1, 0 -> 2: node 0 has no in-neighbors, its reverse walk dies
	// immediately, so d[0] must be exactly 1.
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	d, err := DiagonalExact(g, Options{C: 0.6, T: 20})
	if err != nil {
		t.Fatalf("DiagonalExact: %v", err)
	}
	if math.Abs(d[0]-1) > 1e-12 {
		t.Fatalf("d[0] = %v, want 1 for zero-in-degree node", d[0])
	}
	est, err := SingleSource(g, 0, d, Options{C: 0.6, T: 20})
	if err != nil {
		t.Fatalf("SingleSource: %v", err)
	}
	if est[1] != 0 || est[2] != 0 {
		t.Fatalf("similarities from zero-in-degree source = %v, want 0 off-diagonal", est)
	}
	if math.Abs(est[0]-1) > 1e-12 {
		t.Fatalf("self-similarity = %v, want 1", est[0])
	}
}

// completeDigraph returns the complete directed graph on n nodes (every
// ordered pair, no self-loops): the canonical graph where walk pairs
// re-meet, separating the two formulations.
func completeDigraph(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				if err := g.AddEdge(graph.NodeID(u), graph.NodeID(v)); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

func TestExactDiagonalReproducesSimRank(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"complete4": completeDigraph(4),
		"er":        gen.ErdosRenyi(40, 200, 5),
		"pa":        gen.PreferentialAttachment(40, 3, 6),
	}
	opt := Options{C: 0.6, T: 60}
	for name, g := range graphs {
		truth, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-12})
		if err != nil {
			t.Fatalf("%s: power.SimRank: %v", name, err)
		}
		d, err := DiagonalExact(g, opt)
		if err != nil {
			t.Fatalf("%s: DiagonalExact: %v", name, err)
		}
		for u := 0; u < g.NumNodes(); u += 7 {
			est, err := SingleSource(g, graph.NodeID(u), d, opt)
			if err != nil {
				t.Fatalf("%s: SingleSource: %v", name, err)
			}
			for v := 0; v < g.NumNodes(); v++ {
				diff := math.Abs(est[v] - truth.At(graph.NodeID(u), graph.NodeID(v)))
				if diff > 1e-6 {
					t.Fatalf("%s: linearized with exact diagonal differs from SimRank by %v at (%d,%d)", name, diff, u, v)
				}
			}
		}
	}
}

func TestNaiveDiagonalIsBiased(t *testing.T) {
	// The §5 claim: with D = (1-c)I (Equation 11), the result is NOT
	// SimRank. On a complete digraph the bias is large and positive.
	g := completeDigraph(5)
	opt := Options{C: 0.6, T: 60}
	truth, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("power.SimRank: %v", err)
	}
	est, err := SingleSource(g, 0, NaiveDiagonal(g, 0.6), opt)
	if err != nil {
		t.Fatalf("SingleSource: %v", err)
	}
	var maxBias float64
	for v := 1; v < g.NumNodes(); v++ {
		if b := truth.At(0, graph.NodeID(v)) - est[v]; math.Abs(b) > maxBias {
			maxBias = math.Abs(b)
		}
	}
	if maxBias < 0.01 {
		t.Fatalf("naive-diagonal bias = %v, expected a visible (> 0.01) deviation from SimRank", maxBias)
	}
	// Self-similarity also breaks: diag(S) != 1 under the naive diagonal.
	if math.Abs(est[0]-1) < 1e-6 {
		t.Fatalf("naive diagonal kept s(0,0) = %v at 1; expected the invariant to break", est[0])
	}
}

func TestDiagonalMCApproximatesExact(t *testing.T) {
	g := gen.ErdosRenyi(50, 250, 9)
	opt := Options{C: 0.6, T: 25}
	exact, err := DiagonalExact(g, opt)
	if err != nil {
		t.Fatalf("DiagonalExact: %v", err)
	}
	mc, err := DiagonalMC(g, opt, MCOptions{Pairs: 800, Seed: 4})
	if err != nil {
		t.Fatalf("DiagonalMC: %v", err)
	}
	var maxDiff float64
	for v := range exact {
		if d := math.Abs(exact[v] - mc[v]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.08 {
		t.Fatalf("max |exact - MC| = %v, want <= 0.08 with 800 pairs", maxDiff)
	}
}

func TestSingleSourceValidation(t *testing.T) {
	g := gen.ErdosRenyi(10, 30, 1)
	d := NaiveDiagonal(g, 0.6)
	if _, err := SingleSource(g, -1, d, Options{}); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := SingleSource(g, 100, d, Options{}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := SingleSource(g, 0, d[:5], Options{}); err == nil {
		t.Error("short diagonal accepted")
	}
	if _, err := SingleSource(g, 0, d, Options{C: 1.5}); err == nil {
		t.Error("c outside (0,1) accepted")
	}
}

func TestSeriesSymmetry(t *testing.T) {
	// S(D) is symmetric for any diagonal D, so querying from u and reading
	// v must equal querying from v and reading u.
	check := func(seed uint64) bool {
		g := gen.ErdosRenyi(25, 100, seed%63+1)
		d := NaiveDiagonal(g, 0.6)
		opt := Options{C: 0.6, T: 30}
		rng := xrand.New(seed + 1)
		u := graph.NodeID(rng.Intn(25))
		v := graph.NodeID(rng.Intn(25))
		su, err := SingleSource(g, u, d, opt)
		if err != nil {
			return false
		}
		sv, err := SingleSource(g, v, d, opt)
		if err != nil {
			return false
		}
		return math.Abs(su[v]-sv[u]) < 1e-10
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardBackwardAdjoint(t *testing.T) {
	// backward is the adjoint of forward: <Q^T x, z> == <x, Q z>.
	check := func(seed uint64) bool {
		rng := xrand.New(seed%511 + 3)
		g := gen.ErdosRenyi(20, 80, seed%127+1)
		n := g.NumNodes()
		x := make([]float64, n)
		z := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.Float64()
			z[i] = rng.Float64()
		}
		fx := make([]float64, n)
		bz := make([]float64, n)
		forward(g, x, fx)
		backward(g, z, bz)
		var lhs, rhs float64
		for i := 0; i < n; i++ {
			lhs += fx[i] * z[i]
			rhs += x[i] * bz[i]
		}
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardPreservesMassWithoutDeadEnds(t *testing.T) {
	// On a graph where every node has an in-neighbor, Q^T preserves
	// probability mass.
	g := gen.Cycle(12)
	x := make([]float64, 12)
	x[0] = 1
	out := make([]float64, 12)
	forward(g, x, out)
	var sum float64
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("mass after forward = %v, want 1", sum)
	}
}
