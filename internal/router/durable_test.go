package router

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"probesim/internal/shard"
	"probesim/internal/wal"
)

// TestApplyIdempotentOverTCP is the routed half of the durability
// acceptance property: the same identified batch delivered twice to a
// real TCP worker (the lost-reply retry) must be applied exactly once.
func TestApplyIdempotentOverTCP(t *testing.T) {
	g := testGraph(200, 17)
	re, _, le := startWorker(t, g, 8, 0, 1)
	before := le.Store().NumEdges()

	ops := []Op{{U: 1, V: 2}, {U: 3, V: 4}}
	v1, err := re.Apply(context.Background(), 1, ops)
	if err != nil {
		t.Fatal(err)
	}
	if got := le.Store().NumEdges(); got != before+2 {
		t.Fatalf("edges %d after first apply, want %d", got, before+2)
	}
	// The retry: same batch id, same ops, over the same wire.
	v2, err := re.Apply(context.Background(), 1, ops)
	if err != nil {
		t.Fatal(err)
	}
	if got := le.Store().NumEdges(); got != before+2 {
		t.Fatalf("edges %d after retried apply, want %d (batch applied twice)", got, before+2)
	}
	if v1 != v2 {
		t.Fatalf("versions %d then %d; a no-op retry must report the same version", v1, v2)
	}
	// A NEW id applies again.
	if _, err := re.Apply(context.Background(), 2, ops); err != nil {
		t.Fatal(err)
	}
	if got := le.Store().NumEdges(); got != before+4 {
		t.Fatalf("edges %d after new batch, want %d", got, before+4)
	}
	if err := le.Store().Validate(); err != nil {
		t.Fatal(err)
	}
}

// lostReplyEngine wraps a ShardEngine and simulates the lost-reply
// failure: the first dropReplies Apply calls run to completion on the
// inner engine (the worker DID the work) but the caller sees a
// transport error, exactly like a connection dying between apply and
// reply.
type lostReplyEngine struct {
	ShardEngine
	dropReplies atomic.Int32
	applies     atomic.Int32
}

func (e *lostReplyEngine) Apply(ctx context.Context, batch uint64, ops []Op) (uint64, error) {
	v, err := e.ShardEngine.Apply(ctx, batch, ops)
	e.applies.Add(1)
	if err == nil && e.dropReplies.Add(-1) >= 0 {
		return 0, fmt.Errorf("%w: injected reply loss", ErrTransport)
	}
	return v, err
}

// TestRouterApplyRetriesLostReply: a transport failure AFTER the worker
// applied no longer rolls the fleet back or strands it — the router
// retries the same batch id, the worker acknowledges the no-op, and both
// engines converge with the batch applied exactly once.
func TestRouterApplyRetriesLostReply(t *testing.T) {
	g := testGraph(120, 23)
	stA := shard.NewStore(g, 4, 0)
	stB := shard.NewStore(g, 4, 0)
	flaky := &lostReplyEngine{ShardEngine: NewLocalEngine(stA, 0, 2)}
	flaky.dropReplies.Store(1)
	rt, err := New(flaky, NewLocalEngine(stB, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	before := stA.NumEdges()
	if err := rt.Apply(context.Background(), []Op{{U: 5, V: 6}}); err != nil {
		t.Fatalf("apply with one lost reply failed: %v", err)
	}
	if got := stA.NumEdges(); got != before+1 {
		t.Fatalf("engine A edges %d, want %d (applied exactly once through the retry)", got, before+1)
	}
	if got := stB.NumEdges(); got != before+1 {
		t.Fatalf("engine B edges %d, want %d", got, before+1)
	}
	if flaky.applies.Load() != 2 {
		t.Fatalf("flaky engine saw %d applies, want 2 (original + retry)", flaky.applies.Load())
	}
	if rt.Counters().ApplyRetries != 1 {
		t.Fatalf("applyRetries %d, want 1", rt.Counters().ApplyRetries)
	}
	if stA.LastBatch() != stB.LastBatch() {
		t.Fatalf("watermarks diverged: %d vs %d", stA.LastBatch(), stB.LastBatch())
	}
	// The fleet still agrees (versions and watermarks) at the next
	// publication — no divergence detection fires.
	if _, err := rt.PublishView(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// deadEngine always fails with a transport error without applying.
type deadEngine struct {
	ShardEngine
	calls atomic.Int32
}

func (e *deadEngine) Apply(ctx context.Context, batch uint64, ops []Op) (uint64, error) {
	e.calls.Add(1)
	return 0, fmt.Errorf("%w: injected dead worker", ErrTransport)
}

// TestRouterApplyExhaustsRetries: a worker that stays unreachable makes
// Apply fail with ErrTransport after the retry budget — and the healthy
// engine is NOT rolled back (its copy is durable and idempotent; the
// dead worker heals from its own log or fails watermark agreement).
func TestRouterApplyExhaustsRetries(t *testing.T) {
	g := testGraph(80, 29)
	stA := shard.NewStore(g, 4, 0)
	stB := shard.NewStore(g, 4, 0)
	dead := &deadEngine{ShardEngine: NewLocalEngine(stA, 0, 2)}
	rt, err := New(dead, NewLocalEngine(stB, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	before := stB.NumEdges()
	err = rt.Apply(context.Background(), []Op{{U: 1, V: 3}})
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("want ErrTransport after exhausted retries, got %v", err)
	}
	if dead.calls.Load() != applyAttempts {
		t.Fatalf("dead engine saw %d attempts, want %d", dead.calls.Load(), applyAttempts)
	}
	if got := stB.NumEdges(); got != before+1 {
		t.Fatalf("healthy engine edges %d, want %d (no rollback on transport failure)", got, before+1)
	}
}

// TestRouterApplySemanticRollback: deterministic rejections still roll
// the fleet back — durable ids do not change the validity contract.
func TestRouterApplySemanticRollback(t *testing.T) {
	g := testGraph(60, 31)
	stA := shard.NewStore(g, 4, 0)
	stB := shard.NewStore(g, 4, 0)
	rt, err := New(NewLocalEngine(stA, 0, 2), NewLocalEngine(stB, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	before := stA.NumEdges()
	ops := []Op{{U: 1, V: 2}, {Remove: true, U: 58, V: 57}}
	if err := rt.Apply(context.Background(), ops); err == nil {
		t.Skip("edge 58->57 existed; batch applied cleanly")
	}
	if stA.NumEdges() != before || stB.NumEdges() != before {
		t.Fatalf("rollback left %d/%d edges, want %d", stA.NumEdges(), stB.NumEdges(), before)
	}
	if err := stA.Validate(); err != nil {
		t.Fatal(err)
	}
	// Watermarks advanced identically on both sides (decided batches).
	if stA.LastBatch() != stB.LastBatch() {
		t.Fatalf("watermarks diverged after rollback: %d vs %d", stA.LastBatch(), stB.LastBatch())
	}
}

// vetoEngine rejects its next Apply semantically without touching its
// store (but still decides the batch, as a real engine's store would).
type vetoEngine struct {
	*LocalEngine
	veto atomic.Int32
}

func (e *vetoEngine) Apply(ctx context.Context, batch uint64, ops []Op) (uint64, error) {
	if e.veto.Add(-1) >= 0 {
		// Decide the batch like a real semantic rejection does (rollback
		// inside ApplyBatch advances the watermark), then refuse.
		if _, err := e.LocalEngine.Apply(ctx, batch, nil); err != nil {
			return 0, err
		}
		return e.Store().Version(), fmt.Errorf("router: injected semantic rejection of batch %d", batch)
	}
	return e.LocalEngine.Apply(ctx, batch, ops)
}

// TestMixedSemanticRollbackConvergesWatermarks: when one engine applies
// a batch and another rejects it, the rollback round must land every
// reachable engine on the SAME watermark (one shared leveling id), or
// the next assembly would flag a healthy fleet as diverged.
func TestMixedSemanticRollbackConvergesWatermarks(t *testing.T) {
	g := testGraph(80, 43)
	stA := shard.NewStore(g, 4, 0)
	stB := shard.NewStore(g, 4, 0)
	veto := &vetoEngine{LocalEngine: NewLocalEngine(stA, 0, 2)}
	veto.veto.Store(1)
	rt, err := New(veto, NewLocalEngine(stB, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	before := stB.NumEdges()
	if err := rt.Apply(context.Background(), []Op{{U: 2, V: 5}}); err == nil {
		t.Fatal("vetoed batch reported success")
	}
	if got := stB.NumEdges(); got != before {
		t.Fatalf("engine B edges %d after rollback, want %d", got, before)
	}
	if stA.LastBatch() != stB.LastBatch() {
		t.Fatalf("watermarks diverged after mixed rollback: %d vs %d", stA.LastBatch(), stB.LastBatch())
	}
	// The fleet reassembles cleanly — the watermark-agreement check must
	// NOT fire on a converged rollback.
	if _, err := New(veto, NewLocalEngine(stB, 1, 2)); err != nil {
		t.Fatalf("assembly after converged rollback: %v", err)
	}
}

// TestWorkerWALSurvivesRestart: a durable worker (LocalEngine + WAL)
// that dies after applying an identified batch comes back with the batch
// — the whole point of worker-side durability.
func TestWorkerWALSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(100, 37)
	lg, _, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	st := shard.NewStore(g, 4, 0)
	eng := NewLocalEngine(st, 0, 1)
	eng.SetWAL(lg)
	if _, err := eng.Apply(context.Background(), 1, []Op{{U: 2, V: 3}, {U: 4, V: 5}}); err != nil {
		t.Fatal(err)
	}
	wantEdges := st.NumEdges()
	// Crash: abandon everything. Reboot path: fresh store from the same
	// graph file, replay the log above its (empty) watermark.
	st2 := shard.NewStore(g, 4, 0)
	_, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Replay(st2.LastBatch(), func(id uint64, ops []wal.Op) error {
		sops := make([]shard.EdgeOp, len(ops))
		for i, op := range ops {
			sops[i] = shard.EdgeOp{Remove: op.Remove, U: op.U, V: op.V}
		}
		_, err := st2.ApplyBatch(id, sops)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if st2.NumEdges() != wantEdges || st2.LastBatch() != 1 {
		t.Fatalf("recovered edges=%d batch=%d, want %d/1", st2.NumEdges(), st2.LastBatch(), wantEdges)
	}
	// And the retried batch is still a no-op after recovery.
	eng2 := NewLocalEngine(st2, 0, 1)
	if _, err := eng2.Apply(context.Background(), 1, []Op{{U: 2, V: 3}, {U: 4, V: 5}}); err != nil {
		t.Fatal(err)
	}
	if st2.NumEdges() != wantEdges {
		t.Fatal("recovered worker re-applied a decided batch")
	}
}
