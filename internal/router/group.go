package router

import (
	"context"
	"errors"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"probesim/internal/qtrace"
)

// member is one replica inside a group: an engine plus the router's
// book-keeping about whether it can still be fed writes in order.
//
// current means the member has taken every batch the router has issued
// (in order) and may therefore receive direct write broadcasts; a member
// that misses a batch is demoted and only re-admitted after the catch-up
// path replays the gap from the replay ring. divergent is terminal for
// the automatic path: the router cannot prove the member's state matches
// the fleet (e.g. it applied a batch whose rollback it then missed), so
// only an operator restore clears it. All fields are atomics so the
// stats path can read them without taking the control-plane mutex that
// a slow Apply broadcast may be holding.
type member struct {
	eng       ShardEngine
	current   atomic.Bool
	divergent atomic.Bool
	acked     atomic.Uint64 // highest batch id known decided by this member
	lagErr    atomic.Pointer[string]
}

func (m *member) setLag(msg string) {
	m.current.Store(false)
	m.lagErr.Store(&msg)
}

func (m *member) markDivergent(msg string) {
	m.divergent.Store(true)
	m.setLag(msg)
}

func (m *member) clearLag() {
	m.lagErr.Store(nil)
}

func (m *member) lagErrText() string {
	if s := m.lagErr.Load(); s != nil {
		return *s
	}
	return ""
}

// healthyEngine is the optional health probe an engine may expose
// (RemoteEngine does). Engines without it are assumed reachable.
func engineHealthy(e ShardEngine) bool {
	if h, ok := e.(interface{ Healthy() bool }); ok {
		return h.Healthy()
	}
	return true
}

// replicaGroup is a set of engines that own the same shard stride.
// Reads pick any member (with failover and optional hedging); writes
// broadcast to every current member.
type replicaGroup struct {
	members []*member
	lat     latencyTracker
}

// readOrder returns the members to try for one read: current+healthy
// members first (they can serve the pinned version without a detour),
// then the rest as last resorts — a demoted member may still answer a
// read for a generation it holds.
func (g *replicaGroup) readOrder() []ShardEngine {
	order := make([]ShardEngine, 0, len(g.members))
	var backups []ShardEngine
	for _, m := range g.members {
		if m.current.Load() && engineHealthy(m.eng) {
			order = append(order, m.eng)
		} else {
			backups = append(backups, m.eng)
		}
	}
	return append(order, backups...)
}

// HedgePolicy controls speculative duplicate reads. When enabled, a
// shard RPC that has not answered within the group's p99-derived delay
// is raced against a second replica; the first answer wins and the
// loser is canceled. Delay is clamped to [MinDelay, MaxDelay]; before
// enough samples exist to estimate p99, MaxDelay is used.
type HedgePolicy struct {
	Enabled  bool
	MinDelay time.Duration
	MaxDelay time.Duration
}

// latencyTracker keeps a small ring of recent successful read latencies
// per group and a cached p99 over them, recomputed every few
// observations so the read path never sorts under load.
type latencyTracker struct {
	mu   sync.Mutex
	ring [latencyWindow]int64
	n    int
	idx  int
	obs  int

	p99ns atomic.Int64
}

const (
	latencyWindow    = 128
	latencyRecompute = 16
)

func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.ring[t.idx] = int64(d)
	t.idx = (t.idx + 1) % latencyWindow
	if t.n < latencyWindow {
		t.n++
	}
	t.obs++
	if t.obs >= latencyRecompute {
		t.obs = 0
		buf := make([]int64, t.n)
		copy(buf, t.ring[:t.n])
		slices.Sort(buf)
		t.p99ns.Store(buf[len(buf)*99/100])
	}
	t.mu.Unlock()
}

func (t *latencyTracker) p99() time.Duration { return time.Duration(t.p99ns.Load()) }

// hedgeDelay derives the speculative-read delay from observed latency.
func (g *replicaGroup) hedgeDelay(hp *HedgePolicy) time.Duration {
	d := g.lat.p99()
	if d <= 0 {
		return hp.MaxDelay // cold start: hedge only against the ceiling
	}
	return min(max(d, hp.MinDelay), hp.MaxDelay)
}

// batchRing remembers the last N identified batches (by id) so a member
// that missed some can be replayed in order. A level id from a semantic
// rollback round is stored with nil ops: a lagging member replaying the
// rolled-back forward batch will deterministically reject it just as
// the live members did, so the empty level batch converges its
// watermark without mutating anything.
type batchRing struct {
	entries []ringEntry
}

type ringEntry struct {
	id  uint64
	ops []Op
}

const defaultReplayHorizon = 1024

func newBatchRing(n int) *batchRing { return &batchRing{entries: make([]ringEntry, n)} }

func (b *batchRing) put(id uint64, ops []Op) {
	b.entries[id%uint64(len(b.entries))] = ringEntry{id: id, ops: ops}
}

// get reports the ops recorded for id; ids start at 1, so a zero slot
// never aliases a real batch.
func (b *batchRing) get(id uint64) ([]Op, bool) {
	e := b.entries[id%uint64(len(b.entries))]
	if e.id != id {
		return nil, false
	}
	return e.ops, true
}

// retryableRead reports whether a read failure on one replica may
// succeed on another: transport loss, a backoff-window fail-fast, an
// engine that is still recovering, or a generation another replica may
// still retain. Semantic errors and the caller's own context errors are
// never retried.
func retryableRead(err error) bool {
	return errors.Is(err, ErrTransport) || errors.Is(err, ErrUnavailable) ||
		errors.Is(err, ErrRetiredGeneration)
}

// attempt is one replica's answer inside groupRead.
type attempt[T any] struct {
	idx    int
	val    T
	err    error
	hedged bool
	dur    time.Duration
}

// engineLabel names an engine for span annotations: remote engines
// report their dial address, in-process ones a fixed tag.
func engineLabel(e ShardEngine) string {
	if a, ok := e.(interface{ Addr() string }); ok {
		return a.Addr()
	}
	return "local"
}

// groupRead runs one read against a replica group with failover and
// optional hedging. The first successful answer wins; a retryable
// failure moves on to the next replica; losers are canceled through the
// shared child context. The results channel is buffered to the number
// of launchable attempts, so a loser finishing after the winner returns
// never blocks — attempt goroutines cannot leak.
//
// When the query is traced, every attempt gets its own span named op,
// annotated with the replica and whether it was the primary, a
// failover, or a hedge; the span closes with outcome=ok/error, and
// attempts still in flight when the call returns (the hedge loser, or
// stragglers after a non-retryable failure) close as outcome=canceled.
//
// It is a package function rather than a method because methods cannot
// have type parameters.
func groupRead[T any](r *Router, ctx context.Context, g *replicaGroup, op string, fn func(context.Context, ShardEngine) (T, error)) (T, error) {
	tr, parent := qtrace.FromContext(ctx)
	span := func(i int, eng ShardEngine, hedged bool) qtrace.SpanRef {
		if tr == nil {
			return 0
		}
		kind := "primary"
		switch {
		case hedged:
			kind = "hedge"
		case i > 0:
			kind = "failover"
		}
		ref := tr.StartSpan(op, parent)
		tr.Annotate(ref, "kind="+kind+",replica="+engineLabel(eng))
		return ref
	}
	if len(g.members) == 1 {
		eng := g.members[0].eng
		ref := span(0, eng, false)
		start := time.Now()
		v, err := fn(qtrace.ContextWithSpan(ctx, ref), eng)
		if err == nil {
			g.lat.observe(time.Since(start))
			tr.EndSpanAnnot(ref, "outcome=ok")
		} else {
			tr.EndSpanAnnot(ref, "outcome=error")
		}
		return v, err
	}
	order := g.readOrder()
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attempt[T], len(order))
	// refs/open are touched only by the selecting goroutine below.
	refs := make([]qtrace.SpanRef, len(order))
	open := make([]bool, len(order))
	defer func() {
		if tr == nil {
			return
		}
		for i, ref := range refs {
			if open[i] {
				tr.EndSpanAnnot(ref, "outcome=canceled")
			}
		}
	}()
	settle := func(a attempt[T], annot string) {
		if tr != nil && open[a.idx] {
			open[a.idx] = false
			tr.EndSpanAnnot(refs[a.idx], annot)
		}
	}
	launch := func(i int, hedged bool) {
		eng := order[i]
		refs[i] = span(i, eng, hedged)
		open[i] = tr != nil
		actx := qtrace.ContextWithSpan(cctx, refs[i])
		go func() {
			start := time.Now()
			v, err := fn(actx, eng)
			results <- attempt[T]{idx: i, val: v, err: err, hedged: hedged, dur: time.Since(start)}
		}()
	}
	var hedgeC <-chan time.Time
	if hp := r.hedge.Load(); hp != nil && hp.Enabled {
		timer := time.NewTimer(g.hedgeDelay(hp))
		defer timer.Stop()
		hedgeC = timer.C
	}
	launch(0, false)
	next, inflight := 1, 1
	var firstErr error
	for {
		select {
		case <-hedgeC:
			hedgeC = nil // at most one hedge per call
			if next < len(order) {
				r.hedgesSent.Add(1)
				launch(next, true)
				next++
				inflight++
			}
		case a := <-results:
			if a.err == nil {
				g.lat.observe(a.dur)
				if a.hedged {
					r.hedgesWon.Add(1)
				}
				settle(a, "outcome=ok")
				return a.val, nil
			}
			inflight--
			settle(a, "outcome=error")
			if ctx.Err() != nil || !retryableRead(a.err) {
				// The caller's own deadline/cancellation, or a semantic
				// failure every replica would repeat: surface it as-is.
				return a.val, a.err
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if next < len(order) {
				r.failovers.Add(1)
				launch(next, false)
				next++
				inflight++
			} else if inflight == 0 {
				var zero T
				return zero, firstErr
			}
		}
	}
}
