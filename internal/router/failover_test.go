package router

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"probesim/internal/budget"
	"probesim/internal/core"
	"probesim/internal/graph"
	"probesim/internal/shard"
	"probesim/internal/xrand"
)

// slowReadEngine delays the data plane by a fixed amount — a replica on
// a congested box, not a dead one.
type slowReadEngine struct {
	*LocalEngine
	delay time.Duration
}

func (s *slowReadEngine) stall(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(s.delay):
		return nil
	}
}

func (s *slowReadEngine) ResolveShard(ctx context.Context, version uint64, p int) (graph.CSRShard, error) {
	if err := s.stall(ctx); err != nil {
		return graph.CSRShard{}, err
	}
	return s.LocalEngine.ResolveShard(ctx, version, p)
}

func (s *slowReadEngine) WalkSegment(ctx context.Context, version uint64, h budget.Header, sqrtC float64, cur graph.NodeID, state uint64, room int, buf []graph.NodeID) ([]graph.NodeID, uint64, SegmentStatus, error) {
	if err := s.stall(ctx); err != nil {
		return buf, state, SegmentEnded, err
	}
	return s.LocalEngine.WalkSegment(ctx, version, h, sqrtC, cur, state, room, buf)
}

func (s *slowReadEngine) ResolveShards(ctx context.Context, version uint64, ps []int) ([]graph.CSRShard, error) {
	if err := s.stall(ctx); err != nil {
		return nil, err
	}
	return s.LocalEngine.ResolveShards(ctx, version, ps)
}

func (s *slowReadEngine) WalkBatch(ctx context.Context, version uint64, h budget.Header, sqrtC float64, walks []WalkStart) ([]WalkResult, error) {
	if err := s.stall(ctx); err != nil {
		return nil, err
	}
	return s.LocalEngine.WalkBatch(ctx, version, h, sqrtC, walks)
}

// startEngineWorker serves an arbitrary engine over TCP and returns the
// address plus a shutdown func (startWorker always wraps a fresh store).
func startEngineWorker(t *testing.T, eng ShardEngine) (string, func()) {
	t.Helper()
	srv := NewServer(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	stop := func() { srv.Close() }
	t.Cleanup(stop)
	return ln.Addr().String(), stop
}

// waitGoroutines polls until the goroutine count settles back to the
// baseline (plus slack for pooled-connection handlers), dumping stacks
// on timeout so a leak is diagnosable.
func waitGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines never settled: %d > %d+%d\n%s", n, base, slack, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHedgedReadWinsAndCancelsLoser is the hedging contract over a real
// wire: with one slow replica, the p99-derived hedge races the fast one,
// the fast answer wins bit-identically, and the canceled loser neither
// leaks goroutines nor returns a context-fired connection to the pool
// (later queries on the same engines still work).
func TestHedgedReadWinsAndCancelsLoser(t *testing.T) {
	if testing.Short() {
		t.Skip("sockets")
	}
	g := testGraph(300, 3)
	ref := shard.NewStore(g, 4, 0)
	stSlow := shard.NewStore(g, 4, 0)
	stFast := shard.NewStore(g, 4, 0)

	addrSlow, _ := startEngineWorker(t, &slowReadEngine{NewLocalEngine(stSlow, 0, 1), 40 * time.Millisecond})
	addrFast, _ := startEngineWorker(t, NewLocalEngine(stFast, 0, 1))
	reSlow := NewRemoteEngine(addrSlow)
	reFast := NewRemoteEngine(addrFast)
	t.Cleanup(func() { reSlow.Close(); reFast.Close() })

	rt, err := NewReplicated([][]ShardEngine{{reSlow, reFast}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	rt.SetHedge(HedgePolicy{Enabled: true, MinDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond})

	opt := testOptions(core.ModeAuto)
	want := core.NewExecutorOn(ref, opt)
	got := core.NewExecutorOn(rt, opt)

	// Warm the connection pools so the baseline includes their server
	// handlers, then measure.
	assertIdentical(t, "warmup", want, got, []graph.NodeID{0})
	base := runtime.NumGoroutine()

	assertIdentical(t, "hedged", want, got, []graph.NodeID{7, 131, 299})
	c := rt.Counters()
	if c.HedgesSent == 0 || c.HedgesWon == 0 {
		t.Fatalf("hedging never raced the slow replica: %+v", c)
	}

	// The losers were canceled mid-RPC; every attempt goroutine must
	// drain and no canceled connection may poison the pool.
	waitGoroutines(t, base, 8)
	assertIdentical(t, "after-cancel", want, got, []graph.NodeID{42})
	waitGoroutines(t, base, 8)
}

// deadReadEngine assembles fine (control plane works) but fails every
// data-plane read — a worker whose disks just vanished.
type deadReadEngine struct {
	*LocalEngine
}

func (d *deadReadEngine) ResolveShard(ctx context.Context, version uint64, p int) (graph.CSRShard, error) {
	return graph.CSRShard{}, fmt.Errorf("%w: dead read plane", ErrTransport)
}

func (d *deadReadEngine) WalkSegment(ctx context.Context, version uint64, h budget.Header, sqrtC float64, cur graph.NodeID, state uint64, room int, buf []graph.NodeID) ([]graph.NodeID, uint64, SegmentStatus, error) {
	return buf, state, SegmentEnded, fmt.Errorf("%w: dead read plane", ErrTransport)
}

func (d *deadReadEngine) ResolveShards(ctx context.Context, version uint64, ps []int) ([]graph.CSRShard, error) {
	return nil, fmt.Errorf("%w: dead read plane", ErrTransport)
}

func (d *deadReadEngine) WalkBatch(ctx context.Context, version uint64, h budget.Header, sqrtC float64, walks []WalkStart) ([]WalkResult, error) {
	return nil, fmt.Errorf("%w: dead read plane", ErrTransport)
}

// TestFailoverExhaustsThenSurfacesFirstError: when EVERY replica in a
// group fails, the caller gets the first transport error back rather
// than a hang or a zero answer.
func TestFailoverExhaustsThenSurfacesFirstError(t *testing.T) {
	g := testGraph(200, 5)
	stA := shard.NewStore(g, 4, 0)
	stB := shard.NewStore(g, 4, 0)
	rt, err := NewReplicated([][]ShardEngine{{
		&deadReadEngine{NewLocalEngine(stA, 0, 1)},
		&deadReadEngine{NewLocalEngine(stB, 0, 1)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ex := core.NewExecutorOn(rt, testOptions(core.ModeAuto))
	_, err = ex.SingleSource(context.Background(), 0)
	if err == nil {
		t.Fatal("query succeeded with every replica down")
	}
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("want transport error chain, got %v", err)
	}
}

// TestReplicaDeathFailoverAndRingReadmission kills one TCP replica
// outright, proves reads fail over and writes keep committing, then
// restarts it on the same address and watches the health pass replay the
// missed batches from the ring and re-admit it — the full lifecycle an
// operator sees when a worker dies and comes back.
func TestReplicaDeathFailoverAndRingReadmission(t *testing.T) {
	if testing.Short() {
		t.Skip("sockets + timed backoff")
	}
	g := testGraph(300, 7)
	ref := shard.NewStore(g, 4, 0)
	stA := shard.NewStore(g, 4, 0)
	stB := shard.NewStore(g, 4, 0)

	addrA, stopA := startEngineWorker(t, NewLocalEngine(stA, 0, 1))
	addrB, _ := startEngineWorker(t, NewLocalEngine(stB, 0, 1))
	reA := NewRemoteEngine(addrA)
	reB := NewRemoteEngine(addrB)
	t.Cleanup(func() { reA.Close(); reB.Close() })

	rt, err := NewReplicated([][]ShardEngine{{reA, reB}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })

	opt := testOptions(core.ModeAuto)
	want := core.NewExecutorOn(ref, opt)
	got := core.NewExecutorOn(rt, opt)
	nodes := []graph.NodeID{0, 131, 299}
	assertIdentical(t, "both-up", want, got, nodes)

	// Publish a fresh view while both replicas are current, then kill
	// replica A before anything materializes the new view's blocks: the
	// first read on it must touch the wire, eat A's transport error, and
	// fail over to B — bit-identically. (The OLD view's materialized
	// blocks would have served reads with no RPC at all.)
	rng := xrand.New(99)
	var added [][2]graph.NodeID
	ops := randomOps(rng, 300, &added, 5)
	applyToStore(t, ref, ops)
	ref.Publish()
	if err := rt.Apply(context.Background(), ops); err != nil {
		t.Fatalf("write with both replicas: %v", err)
	}
	if _, err := rt.PublishView(context.Background()); err != nil {
		t.Fatalf("publish with both replicas: %v", err)
	}
	stopA()
	assertIdentical(t, "one-dead", want, got, nodes)
	if c := rt.Counters(); c.Failovers == 0 {
		t.Fatalf("no failovers with a dead replica: %+v", c)
	}

	// A write must still commit (B acks it) while A burns its apply
	// retries and gets demoted.
	ops = randomOps(rng, 300, &added, 5)
	applyToStore(t, ref, ops)
	ref.Publish()
	if err := rt.Apply(context.Background(), ops); err != nil {
		t.Fatalf("write with one dead replica: %v", err)
	}
	if _, err := rt.PublishView(context.Background()); err != nil {
		t.Fatalf("publish with one dead replica: %v", err)
	}
	assertIdentical(t, "write-one-dead", want, got, nodes)
	var demoted bool
	for _, ws := range rt.WorkerStats() {
		if !ws.Current {
			demoted = true
			if ws.LagError == "" {
				t.Fatalf("demoted member has no lag error: %+v", ws)
			}
		}
	}
	if !demoted {
		t.Fatal("dead replica never demoted")
	}

	// A second write while A is down must skip it instantly (no retry
	// stall) — it is no longer current.
	ops = randomOps(rng, 300, &added, 5)
	applyToStore(t, ref, ops)
	ref.Publish()
	startApply := time.Now()
	if err := rt.Apply(context.Background(), ops); err != nil {
		t.Fatalf("second write with one dead replica: %v", err)
	}
	if d := time.Since(startApply); d > applyRetryDelay*applyAttempts {
		t.Fatalf("apply to demoted member stalled %v; should have been skipped", d)
	}
	if c := rt.Counters(); c.ApplySkips == 0 {
		t.Fatalf("demoted member was not skipped: %+v", c)
	}
	if _, err := rt.PublishView(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart A on the same address over its surviving store: it holds
	// everything up to the crash and must be replayed the two batches it
	// missed, then re-admitted.
	srvA2 := NewServer(NewLocalEngine(stA, 0, 1))
	ln, err := net.Listen("tcp", addrA)
	if err != nil {
		t.Fatalf("rebind %s: %v", addrA, err)
	}
	go srvA2.Serve(ln)
	t.Cleanup(func() { srvA2.Close() })

	deadline := time.Now().Add(20 * time.Second)
	for {
		_ = rt.CheckHealth(context.Background())
		all := true
		for _, ws := range rt.WorkerStats() {
			if !ws.Current {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never re-admitted: %+v", rt.WorkerStats())
		}
		time.Sleep(25 * time.Millisecond)
	}
	if c := rt.Counters(); c.CatchupBatches < 2 {
		t.Fatalf("expected >=2 ring-replayed batches, got %+v", c)
	}
	if stA.LastBatch() != stB.LastBatch() {
		t.Fatalf("watermarks diverged after re-admission: %d vs %d", stA.LastBatch(), stB.LastBatch())
	}
	assertIdentical(t, "re-admitted", want, got, nodes)
}

// TestGroupWorkerSyntax covers the -workers grammar shared by the CLI:
// semicolons separate groups, commas separate replicas within one.
func TestGroupWorkerSyntax(t *testing.T) {
	got, err := ParseGroups("a:1,b:1;c:1,d:1")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"a:1", "b:1"}, {"c:1", "d:1"}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if _, err := ParseGroups("a:1,,b:1"); err == nil {
		t.Fatal("empty replica accepted")
	}
	if _, err := ParseGroups(";"); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := ParseGroups(""); err == nil {
		t.Fatal("empty spec accepted")
	}
	single, err := ParseGroups("a:1")
	if err != nil || len(single) != 1 || len(single[0]) != 1 {
		t.Fatalf("singleton: %v %v", single, err)
	}
}
