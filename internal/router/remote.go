package router

import (
	"bufio"
	"context"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"probesim/internal/budget"
	"probesim/internal/graph"
	"probesim/internal/qtrace"
	"probesim/internal/rpcwire"
)

// Remote transport tuning. The call timeout is a ceiling for requests
// whose query carries no deadline of its own; queries with deadlines are
// bounded by the earlier of the two, so a worker death mid-query always
// surfaces within the query deadline.
const (
	remoteDialTimeout = 2 * time.Second
	remoteCallTimeout = 10 * time.Second
	remoteIdleConns   = 4
	backoffBase       = 50 * time.Millisecond
	backoffMax        = 2 * time.Second
)

// RemoteEngine is a ShardEngine served by a probesim-shardd worker over
// TCP. Connections are dialed lazily, pooled (one in-flight request per
// connection; concurrent callers each take their own), and re-dialed
// with exponential backoff after a failure: while the worker is down,
// calls inside the backoff window fail fast instead of queueing dials
// behind a dead address.
type RemoteEngine struct {
	addr string

	mu      sync.Mutex
	idle    []*remoteConn
	down    bool
	retryAt time.Time
	backoff time.Duration

	calls      atomic.Int64
	errs       atomic.Int64
	reconnects atomic.Int64
	healthy    atomic.Bool
	version    atomic.Uint64
	lastErr    atomic.Pointer[string]
	closed     atomic.Bool

	// traceOK records that the worker advertised rpcwire.CapTrace on a
	// MetaReply. Until it does (an old worker never does), requests carry
	// no trace field at all, so mixed-version fleets interop with tracing
	// silently disabled.
	traceOK atomic.Bool
	// batchOK records that the worker advertised rpcwire.CapBatch. Until
	// it does, WalkBatch and ResolveShards fall back to per-item TWalk /
	// TShard requests — byte-identical on the wire to a pre-batch router,
	// so an old worker in a mixed fleet answers new routers unchanged.
	batchOK atomic.Bool
}

type remoteConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// NewRemoteEngine returns an engine for the worker at addr
// (host:port). No connection is made until the first call.
func NewRemoteEngine(addr string) *RemoteEngine {
	e := &RemoteEngine{addr: addr, backoff: backoffBase}
	e.healthy.Store(true) // optimistic until a call says otherwise
	return e
}

// Addr returns the worker address.
func (e *RemoteEngine) Addr() string { return e.addr }

// Healthy reports whether the last call (or health check) succeeded.
func (e *RemoteEngine) Healthy() bool { return e.healthy.Load() }

// LastVersion returns the worker's last reported snapshot version.
func (e *RemoteEngine) LastVersion() uint64 { return e.version.Load() }

// Counters returns calls, transport errors and reconnects so far.
func (e *RemoteEngine) Counters() (calls, errs, reconnects int64) {
	return e.calls.Load(), e.errs.Load(), e.reconnects.Load()
}

// LastError returns the most recent transport error text, if any.
func (e *RemoteEngine) LastError() string {
	if s := e.lastErr.Load(); s != nil {
		return *s
	}
	return ""
}

func (e *RemoteEngine) transportErr(err error) error {
	e.errs.Add(1)
	e.healthy.Store(false)
	msg := err.Error()
	e.lastErr.Store(&msg)
	return fmt.Errorf("%w: %s: %v", ErrTransport, e.addr, err)
}

// markDown opens (or extends) the backoff window after a failure.
func (e *RemoteEngine) markDown() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.down {
		e.backoff *= 2
		if e.backoff > backoffMax {
			e.backoff = backoffMax
		}
	} else {
		e.down = true
		e.backoff = backoffBase
	}
	// Jittered window: every router in the fleet notices a dead worker
	// within the same RPC timeout, so deterministic backoff would have
	// them all re-dial a restarting worker at the same instants
	// (thundering herd). Spread retries across [backoff/2, backoff].
	wait := e.backoff/2 + time.Duration(rand.Int64N(int64(e.backoff/2)+1))
	e.retryAt = time.Now().Add(wait)
	// Failed transport: every pooled connection is suspect.
	for _, rc := range e.idle {
		rc.c.Close()
	}
	e.idle = nil
}

func (e *RemoteEngine) markUp() {
	e.healthy.Store(true)
	e.mu.Lock()
	e.down = false
	e.backoff = backoffBase
	e.mu.Unlock()
}

// conn returns a pooled or freshly dialed connection, honoring the
// backoff window.
func (e *RemoteEngine) conn(ctx context.Context) (*remoteConn, error) {
	e.mu.Lock()
	if n := len(e.idle); n > 0 {
		rc := e.idle[n-1]
		e.idle = e.idle[:n-1]
		e.mu.Unlock()
		return rc, nil
	}
	if e.down {
		if wait := time.Until(e.retryAt); wait > 0 {
			e.mu.Unlock()
			return nil, fmt.Errorf("reconnect backoff for %v (last: %s)", wait.Round(time.Millisecond), e.LastError())
		}
	}
	e.mu.Unlock()
	d := net.Dialer{Timeout: remoteDialTimeout}
	c, err := d.DialContext(ctx, "tcp", e.addr)
	if err != nil {
		// A dial aborted by the caller's context says nothing about the
		// worker; only an actual refusal/timeout opens the backoff window.
		if ctx.Err() == nil {
			e.markDown()
		}
		return nil, err
	}
	e.reconnects.Add(1)
	return &remoteConn{c: c, br: bufio.NewReaderSize(c, 64<<10), bw: bufio.NewWriterSize(c, 64<<10)}, nil
}

// call performs one request/reply exchange. Any I/O failure closes the
// connection, opens the backoff window and returns an ErrTransport-
// wrapped error; an rpcwire.TErr reply is a semantic error from the
// worker and does not poison the transport.
func (e *RemoteEngine) call(ctx context.Context, typ uint8, payload []byte) (uint8, []byte, error) {
	if e.closed.Load() {
		return 0, nil, fmt.Errorf("%w: %s: engine closed", ErrTransport, e.addr)
	}
	e.calls.Add(1)
	rc, err := e.conn(ctx)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			// The caller's context expired/canceled during the dial: that is
			// the query's failure, not the worker's — classify it as such
			// (so deadlines surface as 504, not 502) and leave the worker's
			// health alone.
			return 0, nil, fmt.Errorf("router: %s: %w", e.addr, cerr)
		}
		return 0, nil, e.transportErr(err)
	}
	deadline := time.Now().Add(remoteCallTimeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	rc.c.SetDeadline(deadline)
	// A cancelable-but-deadline-free context still needs prompt unblocking:
	// watch for cancellation and yank the deadline to the past. The main
	// path MUST join the watcher before it resets the deadline below: a
	// hedged read's cancel races the winner's completion, and a watcher
	// that fires after the exchange but before the reset would otherwise
	// leave an already-expired deadline on a connection headed for the
	// pool — every later borrower would fail instantly with a bogus
	// transport timeout. Joining first means any late yank is repaired by
	// the reset that follows it.
	watchStop := make(chan struct{})
	var watchExit chan struct{}
	if ctx.Done() != nil {
		watchExit = make(chan struct{})
		go func(c net.Conn) {
			defer close(watchExit)
			select {
			case <-ctx.Done():
				c.SetDeadline(time.Unix(1, 0))
			case <-watchStop:
			}
		}(rc.c)
	}
	rtyp, body, err := func() (uint8, []byte, error) {
		if err := rpcwire.WriteFrame(rc.bw, typ, payload); err != nil {
			return 0, nil, err
		}
		if err := rc.bw.Flush(); err != nil {
			return 0, nil, err
		}
		return rpcwire.ReadFrame(rc.br, nil)
	}()
	close(watchStop)
	if watchExit != nil {
		<-watchExit
	}
	if err != nil {
		// Mid-stream state is unusable either way.
		rc.c.Close()
		if cerr := ctx.Err(); cerr != nil {
			// The caller's deadline/cancellation cut the call short, not the
			// worker: preserve the context error chain (504/499 upstream, not
			// 502) and do NOT open the backoff window — one slow client must
			// not mark a healthy worker down for everyone else.
			return 0, nil, fmt.Errorf("router: %s: %w", e.addr, cerr)
		}
		e.markDown()
		return 0, nil, e.transportErr(err)
	}
	rc.c.SetDeadline(time.Time{})
	e.markUp()
	e.mu.Lock()
	// A canceled caller's connection is clean (the watcher has exited and
	// the deadline is reset below the error check), but a call that
	// finished in a dead heat with its own cancellation is the rare path:
	// close it rather than keep it.
	if len(e.idle) < remoteIdleConns && !e.closed.Load() && ctx.Err() == nil {
		e.idle = append(e.idle, rc)
		rc = nil
	}
	e.mu.Unlock()
	if rc != nil {
		rc.c.Close()
	}
	if rtyp == rpcwire.TErr {
		rep, derr := rpcwire.DecodeErrorReply(body)
		if derr != nil {
			return 0, nil, fmt.Errorf("router: %s: malformed error reply: %v", e.addr, derr)
		}
		if rep.Code == rpcwire.CodeRetiredGen {
			return 0, nil, fmt.Errorf("%w: %s: %s", ErrRetiredGeneration, e.addr, rep.Msg)
		}
		if rep.Code == rpcwire.CodeUnavailable {
			return 0, nil, fmt.Errorf("%w: %s: %s", ErrUnavailable, e.addr, rep.Msg)
		}
		return 0, nil, fmt.Errorf("router: %s: %s", e.addr, rep.Msg)
	}
	return rtyp, body, nil
}

func (e *RemoteEngine) metaFromReply(body []byte) (Meta, []qtrace.Span, error) {
	rep, err := rpcwire.DecodeMetaReply(body)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("router: %s: %v", e.addr, err)
	}
	m := Meta{
		Nodes:     int(rep.Nodes),
		Edges:     int64(rep.Edges),
		Version:   rep.Version,
		LastBatch: rep.LastBatch,
		Shift:     rep.Shift,
		Shards:    int(rep.Shards),
		Owned:     make([]int, len(rep.Owned)),
	}
	for i, p := range rep.Owned {
		m.Owned[i] = int(p)
	}
	e.version.Store(m.Version)
	e.traceOK.Store(rep.Caps&rpcwire.CapTrace != 0)
	e.batchOK.Store(rep.Caps&rpcwire.CapBatch != 0)
	return m, rep.Spans, nil
}

// traceField resolves ctx's trace into the optional request trailer: nil
// when the query is unsampled OR the worker never advertised CapTrace —
// an old worker must not see a trace field on the wire at all.
func (e *RemoteEngine) traceField(ctx context.Context) (*qtrace.Trace, qtrace.SpanRef, *rpcwire.TraceContext) {
	tr, parent := qtrace.FromContext(ctx)
	if tr == nil || !e.traceOK.Load() {
		return tr, parent, nil
	}
	id := tr.ID()
	return tr, parent, &rpcwire.TraceContext{Hi: id.Hi, Lo: id.Lo, Parent: uint32(parent)}
}

// Meta implements ShardEngine.
func (e *RemoteEngine) Meta(ctx context.Context) (Meta, error) {
	req := rpcwire.MetaRequest{Budget: headerFrom(ctx)}
	rtyp, body, err := e.call(ctx, rpcwire.TMeta, req.Append(nil))
	if err != nil {
		return Meta{}, err
	}
	if rtyp != rpcwire.TMetaRep {
		return Meta{}, fmt.Errorf("router: %s: unexpected reply type %d", e.addr, rtyp)
	}
	m, _, err := e.metaFromReply(body)
	return m, err
}

// ResolveShard implements ShardEngine.
func (e *RemoteEngine) ResolveShard(ctx context.Context, version uint64, p int) (graph.CSRShard, error) {
	tr, parent, tc := e.traceField(ctx)
	req := rpcwire.ShardRequest{Budget: headerFrom(ctx), Version: version, Shard: uint32(p), Trace: tc}
	base := tr.Since()
	rtyp, body, err := e.call(ctx, rpcwire.TShard, req.Append(nil))
	if err != nil {
		return graph.CSRShard{}, err
	}
	if rtyp != rpcwire.TShardRep {
		return graph.CSRShard{}, fmt.Errorf("router: %s: unexpected reply type %d", e.addr, rtyp)
	}
	rep, derr := rpcwire.DecodeShardReply(body)
	if derr != nil {
		return graph.CSRShard{}, fmt.Errorf("router: %s: %v", e.addr, derr)
	}
	tr.Graft(parent, rep.Spans, base, "worker="+e.addr)
	return rep.CSR, nil
}

// WalkSegment implements ShardEngine.
func (e *RemoteEngine) WalkSegment(ctx context.Context, version uint64, h budget.Header, sqrtC float64, cur graph.NodeID, state uint64, room int, buf []graph.NodeID) ([]graph.NodeID, uint64, SegmentStatus, error) {
	tr, parent, tc := e.traceField(ctx)
	req := rpcwire.WalkRequest{
		Budget: h, Version: version, SqrtC: sqrtC,
		Cur: cur, State: state, Room: uint32(room), Trace: tc,
	}
	base := tr.Since()
	rtyp, body, err := e.call(ctx, rpcwire.TWalk, req.Append(nil))
	if err != nil {
		return buf, state, SegmentEnded, err
	}
	if rtyp != rpcwire.TWalkRep {
		return buf, state, SegmentEnded, fmt.Errorf("router: %s: unexpected reply type %d", e.addr, rtyp)
	}
	rep, derr := rpcwire.DecodeWalkReply(body)
	if derr != nil {
		return buf, state, SegmentEnded, fmt.Errorf("router: %s: %v", e.addr, derr)
	}
	tr.Graft(parent, rep.Spans, base, "worker="+e.addr)
	return append(buf, rep.Nodes...), rep.State, SegmentStatus(rep.Status), nil
}

// WalkBatch implements ShardEngine. On a worker that advertised
// CapBatch the whole batch is one round trip; otherwise it degrades to
// one WalkSegment call per walk, whose wire form an old worker already
// serves — bit-identical answers either way, since every walk draws only
// from its own shipped state.
func (e *RemoteEngine) WalkBatch(ctx context.Context, version uint64, h budget.Header, sqrtC float64, walks []WalkStart) ([]WalkResult, error) {
	if !e.batchOK.Load() {
		out := make([]WalkResult, len(walks))
		for i, w := range walks {
			nodes, state, status, err := e.WalkSegment(ctx, version, h, sqrtC, w.Cur, w.State, w.Room, nil)
			if err != nil {
				return nil, err
			}
			out[i] = WalkResult{Nodes: nodes, State: state, Status: status}
		}
		return out, nil
	}
	tr, parent, tc := e.traceField(ctx)
	req := rpcwire.WalkBatchRequest{
		Budget: h, Version: version, SqrtC: sqrtC,
		Walks: make([]rpcwire.WalkStart, len(walks)), Trace: tc,
	}
	for i, w := range walks {
		req.Walks[i] = rpcwire.WalkStart{Cur: w.Cur, State: w.State, Room: uint32(w.Room)}
	}
	base := tr.Since()
	rtyp, body, err := e.call(ctx, rpcwire.TWalkBatch, req.Append(nil))
	if err != nil {
		return nil, err
	}
	if rtyp != rpcwire.TWalkBatchRep {
		return nil, fmt.Errorf("router: %s: unexpected reply type %d", e.addr, rtyp)
	}
	rep, derr := rpcwire.DecodeWalkBatchReply(body)
	if derr != nil {
		return nil, fmt.Errorf("router: %s: %v", e.addr, derr)
	}
	if len(rep.Segs) != len(walks) {
		return nil, fmt.Errorf("router: %s: %d segments for %d walks", e.addr, len(rep.Segs), len(walks))
	}
	tr.Graft(parent, rep.Spans, base, "worker="+e.addr)
	out := make([]WalkResult, len(rep.Segs))
	for i, s := range rep.Segs {
		out[i] = WalkResult{Nodes: s.Nodes, State: s.State, Status: SegmentStatus(s.Status)}
	}
	return out, nil
}

// ResolveShards implements ShardEngine, with the same capability-gated
// fallback as WalkBatch: one TShards round trip on a new worker, one
// TShard per block on an old one.
func (e *RemoteEngine) ResolveShards(ctx context.Context, version uint64, ps []int) ([]graph.CSRShard, error) {
	if !e.batchOK.Load() {
		out := make([]graph.CSRShard, len(ps))
		for i, p := range ps {
			c, err := e.ResolveShard(ctx, version, p)
			if err != nil {
				return nil, err
			}
			out[i] = c
		}
		return out, nil
	}
	tr, parent, tc := e.traceField(ctx)
	req := rpcwire.ShardsRequest{Budget: headerFrom(ctx), Version: version, Shards: make([]uint32, len(ps)), Trace: tc}
	for i, p := range ps {
		req.Shards[i] = uint32(p)
	}
	base := tr.Since()
	rtyp, body, err := e.call(ctx, rpcwire.TShards, req.Append(nil))
	if err != nil {
		return nil, err
	}
	if rtyp != rpcwire.TShardsRep {
		return nil, fmt.Errorf("router: %s: unexpected reply type %d", e.addr, rtyp)
	}
	rep, derr := rpcwire.DecodeShardsReply(body)
	if derr != nil {
		return nil, fmt.Errorf("router: %s: %v", e.addr, derr)
	}
	if len(rep.CSRs) != len(ps) {
		return nil, fmt.Errorf("router: %s: %d blocks for %d shards", e.addr, len(rep.CSRs), len(ps))
	}
	tr.Graft(parent, rep.Spans, base, "worker="+e.addr)
	return rep.CSRs, nil
}

// Ping implements ShardEngine: the health-loop probe. Unlike Meta it
// does not pin a generation on the worker, so firing it every health
// tick against a lagging or recovering member costs nothing.
func (e *RemoteEngine) Ping(ctx context.Context) (uint64, uint64, error) {
	req := rpcwire.PingRequest{Budget: headerFrom(ctx)}
	rtyp, body, err := e.call(ctx, rpcwire.TPing, req.Append(nil))
	if err != nil {
		return 0, 0, err
	}
	if rtyp != rpcwire.TPingRep {
		return 0, 0, fmt.Errorf("router: %s: unexpected reply type %d", e.addr, rtyp)
	}
	rep, derr := rpcwire.DecodePingReply(body)
	if derr != nil {
		return 0, 0, fmt.Errorf("router: %s: %v", e.addr, derr)
	}
	e.version.Store(rep.Version)
	return rep.Version, rep.LastBatch, nil
}

// Apply implements ShardEngine.
func (e *RemoteEngine) Apply(ctx context.Context, batch uint64, ops []Op) (uint64, error) {
	tr, parent, tc := e.traceField(ctx)
	req := rpcwire.ApplyRequest{Budget: headerFrom(ctx), Batch: batch, Ops: make([]rpcwire.Op, len(ops)), Trace: tc}
	for i, op := range ops {
		req.Ops[i] = rpcwire.Op{Remove: op.Remove, U: op.U, V: op.V}
	}
	base := tr.Since()
	rtyp, body, err := e.call(ctx, rpcwire.TApply, req.Append(nil))
	if err != nil {
		return 0, err
	}
	if rtyp != rpcwire.TMetaRep {
		return 0, fmt.Errorf("router: %s: unexpected reply type %d", e.addr, rtyp)
	}
	m, spans, err := e.metaFromReply(body)
	if err != nil {
		return 0, err
	}
	tr.Graft(parent, spans, base, "worker="+e.addr)
	return m.Version, nil
}

// Publish implements ShardEngine.
func (e *RemoteEngine) Publish(ctx context.Context) (Meta, error) {
	req := rpcwire.MetaRequest{Budget: headerFrom(ctx)}
	rtyp, body, err := e.call(ctx, rpcwire.TPublish, req.Append(nil))
	if err != nil {
		return Meta{}, err
	}
	if rtyp != rpcwire.TMetaRep {
		return Meta{}, fmt.Errorf("router: %s: unexpected reply type %d", e.addr, rtyp)
	}
	m, _, err := e.metaFromReply(body)
	return m, err
}

// Close implements ShardEngine.
func (e *RemoteEngine) Close() error {
	e.closed.Store(true)
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rc := range e.idle {
		rc.c.Close()
	}
	e.idle = nil
	return nil
}

// headerFrom derives a budget header from a bare context (for control-
// plane calls that carry no meter): just the remaining deadline.
func headerFrom(ctx context.Context) budget.Header {
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			return budget.Header{Remaining: rem}
		}
		return budget.Header{Remaining: time.Nanosecond}
	}
	return budget.Header{}
}
