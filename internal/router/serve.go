package router

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"probesim/internal/qtrace"
	"probesim/internal/rpcwire"
)

// Server serves a ShardEngine over the rpcwire protocol: the process
// body of a probesim-shardd worker. Each connection handles one request
// at a time (clients open more connections for concurrency); requests
// run under a context derived from the propagated budget header, so a
// deadline that expired on the router bounds the worker-side work too.
type Server struct {
	eng ShardEngine

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Logf, when set, receives per-connection failures (protocol errors,
	// I/O); nil means silent. Set it before Serve.
	Logf func(format string, args ...any)

	// tracer, when set, owns the worker's slow-query log and completed-
	// trace ring. Swappable at runtime (SetTracer), read per request.
	tracer atomic.Pointer[qtrace.Tracer]

	// legacy, when set (SetLegacy), makes the server answer exactly like
	// a pre-batch worker: replies advertise no CapBatch and the batched
	// frame types are rejected as unknown requests. The mixed-version
	// test double — real old workers are simulated, not re-built.
	legacy atomic.Bool

	// requests counts every dispatched frame; batchRequests counts the
	// batched query-path frames (TWalkBatch, TShards) among them. The
	// ratio is how tests assert the round-trip collapse batching buys.
	requests      atomic.Int64
	batchRequests atomic.Int64
}

// SetLegacy switches the server into (or out of) pre-batch compatibility
// mode; see the legacy field. Intended for mixed-version tests.
func (s *Server) SetLegacy(on bool) { s.legacy.Store(on) }

// Requests reports how many request frames the server has dispatched.
func (s *Server) Requests() int64 { return s.requests.Load() }

// BatchRequests reports how many of the dispatched frames used the
// batched forms (WalkBatch, ResolveShards).
func (s *Server) BatchRequests() int64 { return s.batchRequests.Load() }

// SetTracer arms (or, with nil, disarms) the worker-side tracer: traced
// requests record spans and return them on the reply either way; the
// tracer adds the worker's own slow-query log, local sampling of
// untraced requests, and the /debug/queries ring.
func (s *Server) SetTracer(t *qtrace.Tracer) { s.tracer.Store(t) }

// NewServer wraps eng for serving.
func NewServer(eng ShardEngine) *Server {
	return &Server{eng: eng, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close. It returns nil after
// Close and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("router: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(c)
	}
}

// Close stops accepting, severs every open connection and waits for the
// handlers to drain. Used both for shutdown and by fault-injection tests
// to kill a worker mid-query.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) handleConn(c net.Conn) {
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	var inBuf, outBuf []byte
	for {
		typ, payload, err := rpcwire.ReadFrame(br, inBuf)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("router: %s: read: %v", c.RemoteAddr(), err)
			}
			return
		}
		inBuf = payload
		rtyp, body := s.dispatch(typ, payload, outBuf[:0])
		outBuf = body
		if err := rpcwire.WriteFrame(bw, rtyp, body); err != nil {
			s.logf("router: %s: write: %v", c.RemoteAddr(), err)
			return
		}
		if err := bw.Flush(); err != nil {
			s.logf("router: %s: flush: %v", c.RemoteAddr(), err)
			return
		}
	}
}

// dispatch handles one request frame and encodes the reply into out.
func (s *Server) dispatch(typ uint8, payload, out []byte) (uint8, []byte) {
	s.requests.Add(1)
	fail := func(code uint8, err error) (uint8, []byte) {
		if errors.Is(err, ErrRetiredGeneration) {
			code = rpcwire.CodeRetiredGen
		}
		if errors.Is(err, ErrUnavailable) {
			code = rpcwire.CodeUnavailable
		}
		return rpcwire.TErr, rpcwire.ErrorReply{Code: code, Msg: err.Error()}.Append(out)
	}
	metaReply := func(m Meta, spans []qtrace.Span) (uint8, []byte) {
		rep := rpcwire.MetaReply{
			Nodes:     uint64(m.Nodes),
			Edges:     uint64(m.Edges),
			Version:   m.Version,
			LastBatch: m.LastBatch,
			Shift:     m.Shift,
			Shards:    uint32(m.Shards),
			Owned:     make([]uint32, len(m.Owned)),
			// Every reply advertises the trace and batch capabilities;
			// routers enable the request-side trace field and the batched
			// message forms per engine once they see them.
			Caps:  rpcwire.CapTrace | rpcwire.CapBatch,
			Spans: spans,
		}
		if s.legacy.Load() {
			rep.Caps &^= rpcwire.CapBatch
		}
		for i, p := range m.Owned {
			rep.Owned[i] = uint32(p)
		}
		return rpcwire.TMetaRep, rep.Append(out)
	}
	switch typ {
	case rpcwire.TMeta:
		if _, err := rpcwire.DecodeMetaRequest(payload); err != nil {
			return fail(rpcwire.CodeBadRequest, err)
		}
		m, err := s.eng.Meta(context.Background())
		if err != nil {
			return fail(rpcwire.CodeInternal, err)
		}
		return metaReply(m, nil)

	case rpcwire.TShard:
		req, err := rpcwire.DecodeShardRequest(payload)
		if err != nil {
			return fail(rpcwire.CodeBadRequest, err)
		}
		tr, root, finish := s.traceFor(req.Trace, "worker.resolve_shard")
		tr.Annotate(root, fmt.Sprintf("shard=%d", req.Shard))
		ctx, cancel := headerCtx(req.Budget.Remaining)
		defer cancel()
		csr, err := s.eng.ResolveShard(qtrace.NewContext(ctx, tr, root), req.Version, int(req.Shard))
		spans := finish(err)
		if err != nil {
			return fail(rpcwire.CodeInternal, err)
		}
		return rpcwire.TShardRep, rpcwire.ShardReply{CSR: csr, Spans: spans}.Append(out)

	case rpcwire.TWalk:
		req, err := rpcwire.DecodeWalkRequest(payload)
		if err != nil {
			return fail(rpcwire.CodeBadRequest, err)
		}
		tr, root, finish := s.traceFor(req.Trace, "worker.walk_segment")
		nodes, state, status, err := s.eng.WalkSegment(
			qtrace.NewContext(context.Background(), tr, root),
			req.Version, req.Budget, req.SqrtC,
			req.Cur, req.State, int(req.Room), nil)
		spans := finish(err)
		if err != nil {
			return fail(rpcwire.CodeInternal, err)
		}
		rep := rpcwire.WalkReply{State: state, Status: uint8(status), Nodes: nodes, Spans: spans}
		return rpcwire.TWalkRep, rep.Append(out)

	case rpcwire.TWalkBatch:
		s.batchRequests.Add(1)
		if s.legacy.Load() {
			return fail(rpcwire.CodeBadRequest, fmt.Errorf("router: unknown request type %d", typ))
		}
		req, err := rpcwire.DecodeWalkBatchRequest(payload)
		if err != nil {
			return fail(rpcwire.CodeBadRequest, err)
		}
		tr, root, finish := s.traceFor(req.Trace, "worker.walk_batch")
		tr.Annotate(root, fmt.Sprintf("walks=%d", len(req.Walks)))
		walks := make([]WalkStart, len(req.Walks))
		for i, w := range req.Walks {
			walks[i] = WalkStart{Cur: w.Cur, State: w.State, Room: int(w.Room)}
		}
		results, err := s.eng.WalkBatch(
			qtrace.NewContext(context.Background(), tr, root),
			req.Version, req.Budget, req.SqrtC, walks)
		spans := finish(err)
		if err != nil {
			return fail(rpcwire.CodeInternal, err)
		}
		rep := rpcwire.WalkBatchReply{Segs: make([]rpcwire.WalkSegmentResult, len(results)), Spans: spans}
		for i, r := range results {
			rep.Segs[i] = rpcwire.WalkSegmentResult{State: r.State, Status: uint8(r.Status), Nodes: r.Nodes}
		}
		return rpcwire.TWalkBatchRep, rep.Append(out)

	case rpcwire.TShards:
		s.batchRequests.Add(1)
		if s.legacy.Load() {
			return fail(rpcwire.CodeBadRequest, fmt.Errorf("router: unknown request type %d", typ))
		}
		req, err := rpcwire.DecodeShardsRequest(payload)
		if err != nil {
			return fail(rpcwire.CodeBadRequest, err)
		}
		tr, root, finish := s.traceFor(req.Trace, "worker.resolve_shards")
		tr.Annotate(root, fmt.Sprintf("shards=%d", len(req.Shards)))
		ctx, cancel := headerCtx(req.Budget.Remaining)
		defer cancel()
		ps := make([]int, len(req.Shards))
		for i, p := range req.Shards {
			ps[i] = int(p)
		}
		csrs, err := s.eng.ResolveShards(qtrace.NewContext(ctx, tr, root), req.Version, ps)
		spans := finish(err)
		if err != nil {
			return fail(rpcwire.CodeInternal, err)
		}
		return rpcwire.TShardsRep, rpcwire.ShardsReply{CSRs: csrs, Spans: spans}.Append(out)

	case rpcwire.TApply:
		req, err := rpcwire.DecodeApplyRequest(payload)
		if err != nil {
			return fail(rpcwire.CodeBadRequest, err)
		}
		ops := make([]Op, len(req.Ops))
		for i, op := range req.Ops {
			ops[i] = Op{Remove: op.Remove, U: op.U, V: op.V}
		}
		tr, root, finish := s.traceFor(req.Trace, "worker.apply")
		tr.Annotate(root, fmt.Sprintf("batch=%d,ops=%d", req.Batch, len(ops)))
		ctx, cancel := headerCtx(req.Budget.Remaining)
		defer cancel()
		version, err := s.eng.Apply(qtrace.NewContext(ctx, tr, root), req.Batch, ops)
		spans := finish(err)
		if err != nil {
			return fail(rpcwire.CodeInternal, err)
		}
		return metaReply(Meta{Version: version, LastBatch: req.Batch}, spans)

	case rpcwire.TPing:
		if _, err := rpcwire.DecodePingRequest(payload); err != nil {
			return fail(rpcwire.CodeBadRequest, err)
		}
		version, lastBatch, err := s.eng.Ping(context.Background())
		if err != nil {
			return fail(rpcwire.CodeInternal, err)
		}
		return rpcwire.TPingRep, rpcwire.PingReply{Version: version, LastBatch: lastBatch}.Append(out)

	case rpcwire.TPublish:
		req, err := rpcwire.DecodeMetaRequest(payload)
		if err != nil {
			return fail(rpcwire.CodeBadRequest, err)
		}
		ctx, cancel := headerCtx(req.Budget.Remaining)
		defer cancel()
		m, err := s.eng.Publish(ctx)
		if err != nil {
			return fail(rpcwire.CodeInternal, err)
		}
		return metaReply(m, nil)

	default:
		return fail(rpcwire.CodeBadRequest, fmt.Errorf("router: unknown request type %d", typ))
	}
}

// traceFor starts the worker-side trace for one request. A request
// carrying a trace context is always recorded under the caller's 128-bit
// id — the router made the sampling decision — and its spans travel back
// on the reply to be grafted into the caller's trace. A request without
// one may still be sampled by the worker's own tracer (local visibility
// only). The returned finish closes the root span, files the trace with
// the tracer, and returns the spans to put on the wire (nil for
// locally-sampled requests). All return values are safe to use when the
// request ends up untraced (tr nil, finish returns nil).
func (s *Server) traceFor(tc *rpcwire.TraceContext, op string) (tr *qtrace.Trace, root qtrace.SpanRef, finish func(error) []qtrace.Span) {
	tcr := s.tracer.Load()
	var id qtrace.TraceID
	wire := false
	switch {
	case tc != nil:
		id = qtrace.TraceID{Hi: tc.Hi, Lo: tc.Lo}
		tr = qtrace.New(id)
		wire = true
	case tcr != nil:
		id = qtrace.NewID()
		tr = tcr.Begin(id, false)
	}
	if tr == nil {
		return nil, 0, func(error) []qtrace.Span { return nil }
	}
	start := time.Now()
	root = tr.StartSpan(op, 0)
	finish = func(err error) []qtrace.Span {
		status := 0
		if err != nil {
			status = 1
			tr.EndSpanAnnot(root, "outcome=error")
		} else {
			tr.EndSpan(root)
		}
		if tcr != nil {
			tcr.Finish(tr, id, op, status, start, time.Since(start))
		}
		if wire {
			return tr.Snapshot()
		}
		return nil
	}
	return tr, root, finish
}

// headerCtx turns a propagated remaining-deadline into a request context.
func headerCtx(remaining time.Duration) (context.Context, context.CancelFunc) {
	if remaining > 0 {
		return context.WithTimeout(context.Background(), remaining)
	}
	return context.Background(), func() {}
}

// ListenAndServe serves eng on addr until the server is closed. It logs
// through the standard logger; cmd/probesim-shardd wraps it.
func ListenAndServe(addr string, eng ShardEngine) (*Server, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	s := NewServer(eng)
	s.Logf = log.Printf
	go func() {
		if err := s.Serve(ln); err != nil {
			log.Printf("router: serve: %v", err)
		}
	}()
	return s, ln, nil
}
