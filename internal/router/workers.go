package router

import (
	"fmt"
	"strings"
)

// ParseGroups parses the -workers replica-group grammar shared by the
// CLI binaries: semicolons separate replica groups, commas separate the
// replicas inside one. Every replica in a group serves the same shard
// stride (group index = position in the semicolon list), so
//
//	"a:9101,b:9101;c:9101,d:9101"
//
// is two groups of two replicas. NOTE the grammar change from the
// unreplicated fleet layout: "a:9101,b:9101" used to mean two shard
// owners and now means one doubly-replicated owner of everything —
// sharded-but-unreplicated fleets must switch commas to semicolons
// ("a:9101;b:9101"), as the smoke scripts did.
func ParseGroups(spec string) ([][]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("router: empty -workers spec")
	}
	var groups [][]string
	for gi, gspec := range strings.Split(spec, ";") {
		gspec = strings.TrimSpace(gspec)
		if gspec == "" {
			return nil, fmt.Errorf("router: -workers group %d is empty", gi)
		}
		var members []string
		for mi, addr := range strings.Split(gspec, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				return nil, fmt.Errorf("router: -workers group %d replica %d is empty", gi, mi)
			}
			members = append(members, addr)
		}
		groups = append(groups, members)
	}
	return groups, nil
}
