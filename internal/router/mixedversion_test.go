package router

import (
	"context"
	"net"
	"reflect"
	"testing"

	"probesim/internal/budget"
	"probesim/internal/core"
	"probesim/internal/graph"
	"probesim/internal/shard"
)

// startVersionedWorker serves a fresh store over TCP, optionally in
// legacy (pre-batch) compatibility mode.
func startVersionedWorker(t *testing.T, g *graph.Graph, shards, index, group int, legacy bool) (*RemoteEngine, *Server) {
	t.Helper()
	st := shard.NewStore(g, shards, 0)
	srv := NewServer(NewLocalEngine(st, index, group))
	srv.SetLegacy(legacy)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	re := NewRemoteEngine(ln.Addr().String())
	t.Cleanup(func() { re.Close() })
	return re, srv
}

// TestMixedVersionOldWorkerFallback is the forward-compatibility half of
// the mixed-version matrix: a new router over workers that never
// advertise CapBatch must (a) keep every answer bit-identical to the
// direct store and to a batched fleet, and (b) never put a batched frame
// on the wire — the fallback is negotiated, not probed by failure.
func TestMixedVersionOldWorkerFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("sockets + many RPC round trips")
	}
	const shards = 7
	g := testGraph(400, 5)
	ref := shard.NewStore(g, shards, 0)

	oldA, srvOldA := startVersionedWorker(t, g, shards, 0, 2, true)
	oldB, srvOldB := startVersionedWorker(t, g, shards, 1, 2, true)
	newA, srvNewA := startVersionedWorker(t, g, shards, 0, 2, false)
	newB, srvNewB := startVersionedWorker(t, g, shards, 1, 2, false)

	rtOld, err := New(oldA, oldB)
	if err != nil {
		t.Fatal(err)
	}
	rtNew, err := New(newA, newB)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions(core.ModeAuto)
	want := core.NewExecutorOn(ref, opt)
	nodes := []graph.NodeID{0, 42, 399}
	assertIdentical(t, "old-workers", want, core.NewExecutorOn(rtOld, opt), nodes)
	assertIdentical(t, "new-workers", want, core.NewExecutorOn(rtNew, opt), nodes)

	if n := srvOldA.BatchRequests() + srvOldB.BatchRequests(); n != 0 {
		t.Fatalf("router sent %d batched frames to workers that never advertised CapBatch", n)
	}
	if n := srvNewA.BatchRequests() + srvNewB.BatchRequests(); n == 0 {
		t.Fatal("batch-capable workers saw no batched frames")
	}
}

// TestBatchingCollapsesRoundTrips is the acceptance counter: the same
// cold single-source query costs several-fold fewer request frames over
// a batch-capable fleet than over a per-segment (legacy) fleet, measured
// on real TCP servers.
func TestBatchingCollapsesRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("sockets + many RPC round trips")
	}
	const shards = 7
	g := testGraph(400, 5)
	opt := testOptions(core.ModeAuto)

	coldQuery := func(legacy bool) int64 {
		reA, srvA := startVersionedWorker(t, g, shards, 0, 2, legacy)
		reB, srvB := startVersionedWorker(t, g, shards, 1, 2, legacy)
		rt, err := New(reA, reB)
		if err != nil {
			t.Fatal(err)
		}
		before := srvA.Requests() + srvB.Requests()
		if _, err := core.NewExecutorOn(rt, opt).SingleSource(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		return srvA.Requests() + srvB.Requests() - before
	}
	perSegment := coldQuery(true)
	batched := coldQuery(false)
	t.Logf("request frames for one cold single-source query: per-segment=%d batched=%d (%.1fx)",
		perSegment, batched, float64(perSegment)/float64(batched))
	if batched*3 > perSegment {
		t.Fatalf("batching saved too little: %d frames batched vs %d per-segment", batched, perSegment)
	}
}

// TestOldRouterNewWorkerPerSegment is the backward-compatibility half: a
// router that only speaks the per-segment wire forms (simulated by a
// RemoteEngine that never learned the worker's caps) gets bit-identical
// walk segments from a batch-capable worker.
func TestOldRouterNewWorkerPerSegment(t *testing.T) {
	g := testGraph(300, 9)
	st := shard.NewStore(g, 4, 0)
	srv := NewServer(NewLocalEngine(st, 0, 1))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	newRouter := NewRemoteEngine(ln.Addr().String())
	t.Cleanup(func() { newRouter.Close() })
	ctx := context.Background()
	if _, err := newRouter.Meta(ctx); err != nil { // learns CapBatch
		t.Fatal(err)
	}
	oldRouter := NewRemoteEngine(ln.Addr().String()) // never sees Meta: per-segment forms only
	t.Cleanup(func() { oldRouter.Close() })

	version := st.Current().Version()
	const sqrtC = 0.8
	walks := []WalkStart{
		{Cur: 0, State: 0x9e3779b97f4a7c15, Room: 16},
		{Cur: 17, State: 42, Room: 16},
		{Cur: 299, State: 7, Room: 8},
		{Cur: 5, State: 0xdeadbeef, Room: 16},
	}
	batchRes, err := newRouter.WalkBatch(ctx, version, budget.Header{}, sqrtC, walks)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range walks {
		nodes, state, status, err := oldRouter.WalkSegment(ctx, version, budget.Header{}, sqrtC, w.Cur, w.State, w.Room, nil)
		if err != nil {
			t.Fatalf("walk %d: %v", i, err)
		}
		same := state == batchRes[i].State && status == batchRes[i].Status && len(nodes) == len(batchRes[i].Nodes)
		for j := 0; same && j < len(nodes); j++ {
			same = nodes[j] == batchRes[i].Nodes[j]
		}
		if !same {
			t.Fatalf("walk %d diverged between per-segment and batched forms:\n per-segment %v/%d/%d\n batched     %v/%d/%d",
				i, nodes, state, status, batchRes[i].Nodes, batchRes[i].State, batchRes[i].Status)
		}
	}
	if got := srv.BatchRequests(); got != 1 {
		t.Fatalf("server saw %d batched frames, want exactly the one WalkBatch", got)
	}

	// The per-segment shard fetch serves the old router identically too.
	csr, err := oldRouter.ResolveShard(ctx, version, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(csr, st.Current().Shard(2)) {
		t.Fatal("per-segment shard fetch diverged from the store's block")
	}
}
