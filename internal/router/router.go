package router

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"probesim/internal/budget"
	"probesim/internal/graph"
	"probesim/internal/shard"
	"probesim/internal/walk"
	"probesim/internal/xrand"
)

// Router fans queries out over a fleet of replica groups and assembles
// their shards into one composite versioned view. It implements the same
// SnapshotProvider seam core.Executor already runs on, so the entire
// query stack — single-source, top-k, progressive, joins, components —
// works over a fleet of workers exactly as it does over an in-process
// store.
//
// Each group's members own the same shard stride, so every shard has as
// many owners as its group has replicas: reads fail over (and optionally
// hedge) across the group's members, writes broadcast to every member
// that is still in-order ("current"), and a member that misses batches
// is demoted and replayed back in from the router's replay ring. The
// SplitMix64 walk state travels on the wire, so which replica answers a
// given call never changes the bits of the result.
//
// Fast path: a Router over a single LocalEngine that owns every shard
// serves the store's own published StoreSnapshot (no wrapper, no new
// allocation, bit-identical and benchmark-identical to PR 2's direct
// store). Any other topology serves a *View whose shard blocks fault in
// from their owners on first touch.
type Router struct {
	groups []*replicaGroup
	fast   *shard.Store // non-nil: single all-owning local engine

	// mu serializes the control plane (Apply, PublishView, health
	// re-assembly, catch-up) — never the read path.
	mu  sync.Mutex
	cur atomic.Pointer[View]

	// nextBatch is the next batch id Apply will assign. Seeded at
	// assembly from the fleet's maximum durable watermark (Meta.
	// LastBatch), so ids stay monotonic across router restarts even
	// though the routing tier keeps no state of its own.
	nextBatch atomic.Uint64

	// ring remembers recent identified batches so a demoted member can
	// be replayed back to current without an operator restore. Guarded
	// by mu.
	ring *batchRing

	// hedge is the read-hedging policy; nil or !Enabled disables it.
	hedge atomic.Pointer[HedgePolicy]

	// Read- and write-path counters for /metrics.
	shardFetches     atomic.Int64
	shardFetchErrors atomic.Int64
	shardBatches     atomic.Int64
	walkSegments     atomic.Int64
	walkHandoffs     atomic.Int64
	walkBatches      atomic.Int64
	walkDelegated    atomic.Int64
	walkLocalSegs    atomic.Int64
	applyRetries     atomic.Int64
	failovers        atomic.Int64
	hedgesSent       atomic.Int64
	hedgesWon        atomic.Int64
	applySkips       atomic.Int64
	catchupBatches   atomic.Int64
}

// controlTimeout bounds control-plane broadcasts (Meta, Publish, Apply)
// that carry no caller deadline.
const controlTimeout = 10 * time.Second

// New assembles a router of singleton groups — one engine per shard
// stride, no replication. It is the pre-replica constructor every
// single-owner topology (and test) uses; NewReplicated is the general
// form.
func New(engines ...ShardEngine) (*Router, error) {
	groups := make([][]ShardEngine, len(engines))
	for i, e := range engines {
		groups[i] = []ShardEngine{e}
	}
	return NewReplicated(groups)
}

// NewReplicated assembles a router over replica groups: the engines of
// groups[i] must own the same shard stride (same -index/-group), and
// distinct groups' strides must be disjoint and complete. It fetches
// every member's Meta, picks the most-advanced responder per group as
// the group's reference, demotes lagging replicas (they rejoin through
// the catch-up path), validates cross-group agreement, and builds the
// initial view. Every group needs at least one reachable member.
func NewReplicated(groups [][]ShardEngine) (*Router, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("router: no engines")
	}
	r := &Router{ring: newBatchRing(defaultReplayHorizon)}
	for _, ms := range groups {
		if len(ms) == 0 {
			return nil, fmt.Errorf("router: empty replica group")
		}
		g := &replicaGroup{}
		for _, e := range ms {
			g.members = append(g.members, &member{eng: e})
		}
		r.groups = append(r.groups, g)
	}
	if len(r.groups) == 1 && len(r.groups[0].members) == 1 {
		if le, ok := r.groups[0].members[0].eng.(*LocalEngine); ok && le.group == 1 {
			r.fast = le.st
			r.groups[0].members[0].current.Store(true)
			r.nextBatch.Store(le.st.LastBatch())
			return r, nil
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), controlTimeout)
	defer cancel()
	metas := r.collect(ctx, func(e ShardEngine) (Meta, error) { return e.Meta(ctx) })
	view, err := r.assembleLocked(metas) // not shared yet; no lock needed
	if err != nil {
		return nil, err
	}
	for _, gm := range metas {
		for _, mm := range gm {
			if mm.err == nil && mm.m.LastBatch > r.nextBatch.Load() {
				r.nextBatch.Store(mm.m.LastBatch)
			}
		}
	}
	r.cur.Store(view)
	return r, nil
}

// NewLocal is the single-process configuration: a router whose only
// engine is the store itself. It serves the store's own snapshots with
// zero added indirection.
func NewLocal(st *shard.Store) *Router {
	r, err := New(NewLocalEngine(st, 0, 1))
	if err != nil {
		panic(err) // unreachable: a single local engine cannot fail Meta
	}
	return r
}

// SetHedge installs the read-hedging policy. Safe to call while serving.
func (r *Router) SetHedge(hp HedgePolicy) {
	r.hedge.Store(&hp)
}

// SetReplayHorizon resizes the batch replay ring (default 1024): how
// many recent batches a demoted replica can be behind and still rejoin
// without an operator restore. Call before serving writes — resizing
// drops remembered batches.
func (r *Router) SetReplayHorizon(n int) {
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	r.ring = newBatchRing(n)
	r.mu.Unlock()
}

// memberMeta is one member's answer to a control-plane broadcast.
type memberMeta struct {
	m   Meta
	err error
}

// errSkippedMember marks a member a broadcast never called because it
// was already demoted.
var errSkippedMember = errors.New("router: member not current; skipped")

// collect runs one engine call on every member of every group
// concurrently and returns all results, aligned with r.groups.
func (r *Router) collect(ctx context.Context, call func(ShardEngine) (Meta, error)) [][]memberMeta {
	out := make([][]memberMeta, len(r.groups))
	var wg sync.WaitGroup
	for gi, g := range r.groups {
		out[gi] = make([]memberMeta, len(g.members))
		for mi, m := range g.members {
			wg.Add(1)
			go func(slot *memberMeta, e ShardEngine) {
				defer wg.Done()
				slot.m, slot.err = call(e)
			}(&out[gi][mi], m.eng)
		}
	}
	wg.Wait()
	return out
}

// collectCurrent is collect restricted to current members; demoted ones
// get errSkippedMember so assembly leaves their state alone.
func (r *Router) collectCurrent(ctx context.Context, call func(ShardEngine) (Meta, error)) [][]memberMeta {
	out := make([][]memberMeta, len(r.groups))
	var wg sync.WaitGroup
	for gi, g := range r.groups {
		out[gi] = make([]memberMeta, len(g.members))
		for mi, m := range g.members {
			if !m.current.Load() {
				out[gi][mi].err = errSkippedMember
				continue
			}
			wg.Add(1)
			go func(slot *memberMeta, e ShardEngine) {
				defer wg.Done()
				slot.m, slot.err = call(e)
			}(&out[gi][mi], m.eng)
		}
	}
	wg.Wait()
	return out
}

// assembleLocked validates the metas against each other, updates member
// current/lag state, and builds a View. Caller holds mu (or owns r
// exclusively, as in NewReplicated).
//
// Within a group, the most-advanced responder (highest watermark, then
// highest version) is the reference; replicas behind it are demoted for
// catch-up rather than failing the fleet — that is the whole point of
// replication. Across groups the references must agree exactly, as
// before: there is no second owner to cover a diverged stride.
func (r *Router) assembleLocked(metas [][]memberMeta) (*View, error) {
	chosen := make([]Meta, len(r.groups))
	for gi, g := range r.groups {
		best := -1
		for mi := range g.members {
			mm := metas[gi][mi]
			if mm.err != nil {
				continue
			}
			if best == -1 || mm.m.LastBatch > metas[gi][best].m.LastBatch ||
				(mm.m.LastBatch == metas[gi][best].m.LastBatch && mm.m.Version > metas[gi][best].m.Version) {
				best = mi
			}
		}
		if best == -1 {
			var ferr error
			for mi := range g.members {
				if err := metas[gi][mi].err; err != nil && !errors.Is(err, errSkippedMember) {
					ferr = err
					break
				}
			}
			if ferr == nil {
				ferr = fmt.Errorf("%w: every replica demoted; awaiting catch-up", ErrTransport)
			}
			return nil, fmt.Errorf("router: group %d: %w", gi, ferr)
		}
		cm := metas[gi][best].m
		chosen[gi] = cm
		for mi, m := range g.members {
			mm := metas[gi][mi]
			if mm.err != nil {
				if !errors.Is(mm.err, errSkippedMember) {
					m.setLag(mm.err.Error())
				}
				continue
			}
			if m.divergent.Load() {
				// Matching counters are not proof of matching state;
				// divergence only clears with an operator restore.
				continue
			}
			if mm.m.LastBatch != cm.LastBatch {
				m.setLag(fmt.Sprintf("at watermark %d behind group watermark %d; awaiting catch-up replay", mm.m.LastBatch, cm.LastBatch))
				continue
			}
			if mm.m.Nodes != cm.Nodes || mm.m.Edges != cm.Edges ||
				mm.m.Shift != cm.Shift || mm.m.Shards != cm.Shards ||
				!slices.Equal(mm.m.Owned, cm.Owned) {
				return nil, fmt.Errorf("router: group %d replicas %d and %d disagree at watermark %d: (n=%d m=%d shift=%d shards=%d) vs (n=%d m=%d shift=%d shards=%d) — replica state diverged; restore one from the other",
					gi, best, mi, cm.LastBatch,
					cm.Nodes, cm.Edges, cm.Shift, cm.Shards,
					mm.m.Nodes, mm.m.Edges, mm.m.Shift, mm.m.Shards)
			}
			if mm.m.Version != cm.Version {
				// Same watermark and shape: the member only missed a
				// republish; catch-up levels it at the next pass.
				m.setLag(fmt.Sprintf("published version %d behind group version %d; awaiting republish", mm.m.Version, cm.Version))
				continue
			}
			m.acked.Store(mm.m.LastBatch)
			m.current.Store(true)
			m.clearLag()
		}
	}
	m0 := chosen[0]
	for gi, m := range chosen[1:] {
		if m.Nodes != m0.Nodes || m.Edges != m0.Edges || m.Version != m0.Version ||
			m.Shift != m0.Shift || m.Shards != m0.Shards {
			return nil, fmt.Errorf("router: groups 0 and %d disagree: (n=%d m=%d v=%d shift=%d shards=%d) vs (n=%d m=%d v=%d shift=%d shards=%d)",
				gi+1, m0.Nodes, m0.Edges, m0.Version, m0.Shift, m0.Shards,
				m.Nodes, m.Edges, m.Version, m.Shift, m.Shards)
		}
		if m.LastBatch != m0.LastBatch {
			return nil, fmt.Errorf("router: groups 0 and %d at batch watermarks %d and %d — a worker missed a batch while down; restore it from its data dir or a fleet peer's",
				gi+1, m0.LastBatch, m.LastBatch)
		}
	}
	ownerOf := make([]int32, m0.Shards)
	for p := range ownerOf {
		ownerOf[p] = -1
	}
	for gi, m := range chosen {
		for _, p := range m.Owned {
			if p < 0 || p >= m0.Shards {
				return nil, fmt.Errorf("router: group %d claims shard %d of %d", gi, p, m0.Shards)
			}
			if ownerOf[p] != -1 {
				return nil, fmt.Errorf("router: shard %d owned by groups %d and %d", p, ownerOf[p], gi)
			}
			ownerOf[p] = int32(gi)
		}
	}
	for p, o := range ownerOf {
		if o == -1 {
			return nil, fmt.Errorf("router: shard %d has no owner", p)
		}
	}
	return &View{
		r:       r,
		nodes:   m0.Nodes,
		edges:   m0.Edges,
		version: m0.Version,
		shift:   m0.Shift,
		ownerOf: ownerOf,
		blocks:  make([]blockSlot, m0.Shards),
	}, nil
}

// PublishedView implements core.SnapshotProvider. It never blocks.
func (r *Router) PublishedView() graph.VersionedView {
	if r.fast != nil {
		return r.fast.Current()
	}
	return r.cur.Load()
}

// PublishView implements core.SnapshotProvider: it asks every current
// member to republish, validates agreement, and installs a fresh
// composite view. An unchanged version keeps the current view (and its
// warm block cache). On failure the previously published view stays
// current and is returned alongside the error.
func (r *Router) PublishView(ctx context.Context) (graph.VersionedView, error) {
	if r.fast != nil {
		return r.fast.PublishCtx(ctx)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.publishLocked(ctx)
}

func (r *Router) publishLocked(ctx context.Context) (graph.VersionedView, error) {
	prev := r.cur.Load()
	metas := r.collectCurrent(ctx, func(e ShardEngine) (Meta, error) { return e.Publish(ctx) })
	view, err := r.assembleLocked(metas)
	if err != nil {
		return prev, fmt.Errorf("router: publication failed: %w", err)
	}
	if prev != nil && view.version == prev.version {
		return prev, nil // keep the warm block cache
	}
	r.cur.Store(view)
	return view, nil
}

// applyAttempts bounds how often one broadcast re-sends a batch to an
// engine that failed with a transport error. Each retry waits out a
// slice of the remote backoff window first, so a worker that blips
// (connection reset, brief restart) converges without operator help.
const (
	applyAttempts   = 4
	applyRetryDelay = 250 * time.Millisecond
)

// applyResult is one member's outcome for one broadcast batch.
type applyResult struct {
	version   uint64
	err       error
	attempted bool
}

// Apply assigns the batch the next monotonic id and applies it to every
// current member of every group (each engine is all-or-rollback on its
// own, and applies each id at most once).
//
// The batch id is what closes the lost-reply window: a worker that
// applied the batch but whose reply was lost acknowledges the retry
// without re-applying, and a worker that never saw it applies it now —
// so on ErrTransport the router RETRIES the same id instead of rolling
// the fleet back. With replication the failure mode narrows further: a
// member that exhausts its retries is demoted (its group's surviving
// members hold the batch durably) and replayed back in from the replay
// ring, so a single replica death never fails a write. Only a group
// with NO surviving acker fails the write, with an error that says the
// batch may be partially applied and a re-submit is not safe blind.
//
// A SEMANTIC failure (bad op) is deterministic — every member that
// applied rolls back via the inverse batch under one fresh shared id,
// converging the fleet on the pre-batch graph, and the client gets the
// rejection.
func (r *Router) Apply(ctx context.Context, ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.catchUpLocked(ctx)
	batch := r.nextBatch.Add(1)
	r.ring.put(batch, ops)
	res := r.applyBroadcastLocked(ctx, batch, ops)

	var semanticErr, groupLostErr error
	var versions []uint64
	for gi, g := range r.groups {
		decided := false
		var firstFail error
		for mi, m := range g.members {
			rr := res[gi][mi]
			if !rr.attempted {
				continue
			}
			switch {
			case rr.err == nil:
				decided = true
				m.acked.Store(batch)
				versions = append(versions, rr.version)
			case errors.Is(rr.err, ErrTransport):
				m.setLag(fmt.Sprintf("missed batch %d (apply retries exhausted: %v); awaiting catch-up replay", batch, rr.err))
				if firstFail == nil {
					firstFail = fmt.Errorf("router: group %d replica %d: apply retries exhausted; the worker either holds batch %d durably (a re-send of the id is a no-op) or will be replayed from the ring when it returns: %w", gi, mi, batch, rr.err)
				}
			case errors.Is(rr.err, ErrUnavailable):
				// The engine refused retry-safely (annulled WAL append): it
				// provably does NOT hold the batch, so it is demoted like a
				// transport loss and replayed later.
				m.setLag(fmt.Sprintf("could not log batch %d (%v); awaiting catch-up replay", batch, rr.err))
				if firstFail == nil {
					firstFail = fmt.Errorf("router: group %d replica %d: apply retries exhausted; the worker could not log batch %d (it does not hold it; the group's appliers do): %w", gi, mi, batch, rr.err)
				}
			default:
				decided = true
				m.acked.Store(batch)
				if semanticErr == nil {
					semanticErr = fmt.Errorf("router: group %d replica %d: %w", gi, mi, rr.err)
				}
			}
		}
		if !decided && groupLostErr == nil {
			if firstFail == nil {
				firstFail = fmt.Errorf("%w: every replica demoted; awaiting catch-up", ErrTransport)
			}
			groupLostErr = fmt.Errorf("router: group %d: no replica took batch %d: %w", gi, batch, firstFail)
		}
	}
	if semanticErr != nil {
		// Deterministic rejection: ONE fresh id covers the whole rollback
		// round so the fleet's watermarks converge — members that applied
		// get the inverse batch under it, members that rejected get an
		// empty batch under it (watermark advance, no mutation). The ring
		// entry for the level id is empty too: a demoted member replaying
		// the forward batch in order will deterministically reject it just
		// as the live members did, then level on the empty batch.
		inverse := make([]Op, len(ops))
		for i := range ops {
			inv := ops[len(ops)-1-i]
			inv.Remove = !inv.Remove
			inverse[i] = inv
		}
		level := r.nextBatch.Add(1)
		r.ring.put(level, nil)
		var divergedErr error
		for gi, g := range r.groups {
			for mi, m := range g.members {
				rr := res[gi][mi]
				if !rr.attempted {
					continue
				}
				switch {
				case rr.err == nil:
					if _, lerr := m.eng.Apply(ctx, level, inverse); lerr != nil {
						m.markDivergent(fmt.Sprintf("applied batch %d but missed its rollback %d (%v); restore from a fleet peer", batch, level, lerr))
						if divergedErr == nil {
							divergedErr = fmt.Errorf("router: group %d replica %d diverged (rollback failed: %v) after %w", gi, mi, lerr, semanticErr)
						}
					} else {
						m.acked.Store(level)
					}
				case errors.Is(rr.err, ErrUnavailable):
					// Provably never applied the forward batch; the ring
					// replays forward (deterministic reject) + level for it.
				case errors.Is(rr.err, ErrTransport):
					// Whether the member applied the forward batch before the
					// transport cut is unknowable, and the batch is now rolled
					// back fleet-wide — a ring replay cannot prove
					// convergence, so require an operator restore.
					m.markDivergent(fmt.Sprintf("batch %d was rolled back while the replica was unreachable; whether it applied is unknown — restore from a fleet peer", batch))
				default:
					if _, lerr := m.eng.Apply(ctx, level, nil); lerr != nil {
						m.markDivergent(fmt.Sprintf("rejected batch %d but missed its leveling batch %d (%v); restore from a fleet peer", batch, level, lerr))
						if divergedErr == nil {
							divergedErr = fmt.Errorf("router: group %d replica %d diverged (rollback failed: %v) after %w", gi, mi, lerr, semanticErr)
						}
					} else {
						m.acked.Store(level)
					}
				}
			}
		}
		if divergedErr != nil {
			return divergedErr
		}
		return semanticErr
	}
	if groupLostErr != nil {
		// NO rollback: the batch is identified and durable on every member
		// that took it, and an unreachable group either holds it (its log
		// replays it on reboot, and a later re-send of the id is a no-op)
		// or missed it entirely — which catch-up replay or the watermark-
		// agreement check repairs or reports, instead of throwing away the
		// healthy groups' acknowledged work.
		return groupLostErr
	}
	for i, v := range versions[1:] {
		if v != versions[0] {
			return fmt.Errorf("router: appliers at versions %d and %d after batch %d (replica %d of the ack set)", versions[0], v, batch, i+1)
		}
	}
	return nil
}

// applyBroadcastLocked sends one identified batch to every current
// member concurrently, retrying transport failures per member. Demoted
// members are skipped (counted) — they get the batch later, in order,
// from the replay ring.
func (r *Router) applyBroadcastLocked(ctx context.Context, batch uint64, ops []Op) [][]applyResult {
	out := make([][]applyResult, len(r.groups))
	var wg sync.WaitGroup
	for gi, g := range r.groups {
		out[gi] = make([]applyResult, len(g.members))
		for mi, m := range g.members {
			if !m.current.Load() {
				r.applySkips.Add(1)
				continue
			}
			out[gi][mi].attempted = true
			wg.Add(1)
			go func(rr *applyResult, e ShardEngine) {
				defer wg.Done()
				for attempt := 0; ; attempt++ {
					rr.version, rr.err = e.Apply(ctx, batch, ops)
					retryable := errors.Is(rr.err, ErrTransport) || errors.Is(rr.err, ErrUnavailable)
					if rr.err == nil || !retryable || attempt+1 >= applyAttempts {
						return
					}
					r.applyRetries.Add(1)
					select {
					case <-ctx.Done():
						return
					case <-time.After(applyRetryDelay):
					}
				}
			}(&out[gi][mi], m.eng)
		}
	}
	wg.Wait()
	return out
}

// catchUpLocked tries to bring every demoted, reachable member back to
// current: probe its durable watermark with Ping, replay the missed
// batches from the ring in order, republish it so it can serve pinned
// reads again, and re-admit it to the write broadcast. Members whose
// gap has left the ring (or that are marked divergent) stay demoted
// with an operator-facing reason. Caller holds mu.
func (r *Router) catchUpLocked(ctx context.Context) (readmitted int) {
	next := r.nextBatch.Load()
	for _, g := range r.groups {
		for _, m := range g.members {
			if m.current.Load() || m.divergent.Load() {
				continue
			}
			_, last, err := m.eng.Ping(ctx)
			if err != nil {
				continue // still unreachable; next pass retries
			}
			if last > next {
				m.markDivergent(fmt.Sprintf("replica watermark %d is ahead of the router's %d; another writer touched it — restore from a fleet peer", last, next))
				continue
			}
			caught := true
			for id := last + 1; id <= next; id++ {
				ops, ok := r.ring.get(id)
				if !ok {
					m.setLag(fmt.Sprintf("missed batch %d, which has left the %d-batch replay ring; restore from a fleet peer", id, len(r.ring.entries)))
					caught = false
					break
				}
				if _, aerr := m.eng.Apply(ctx, id, ops); aerr != nil {
					if errors.Is(aerr, ErrTransport) || errors.Is(aerr, ErrUnavailable) {
						caught = false
						break // went away again; next pass resumes from its watermark
					}
					// Semantic rejection during replay is a decision — the
					// live members rejected this batch too (the ring holds
					// its forward ops; the level batch follows as empty).
				}
				r.catchupBatches.Add(1)
			}
			if !caught {
				continue
			}
			if _, perr := m.eng.Publish(ctx); perr != nil {
				continue // replayed but not republished; next pass finishes
			}
			m.acked.Store(next)
			m.current.Store(true)
			m.clearLag()
			readmitted++
		}
	}
	return readmitted
}

// AddEdge implements the server's mutator seam.
func (r *Router) AddEdge(u, v graph.NodeID) error {
	ctx, cancel := context.WithTimeout(context.Background(), controlTimeout)
	defer cancel()
	return r.Apply(ctx, []Op{{U: u, V: v}})
}

// RemoveEdge implements the server's mutator seam.
func (r *Router) RemoveEdge(u, v graph.NodeID) error {
	ctx, cancel := context.WithTimeout(context.Background(), controlTimeout)
	defer cancel()
	return r.Apply(ctx, []Op{{Remove: true, U: u, V: v}})
}

// CheckHealth probes every member (Ping also refreshes RemoteEngine
// health state), demotes current members that fail the probe, runs the
// catch-up pass, and validates agreement. It returns nil while every
// group has at least one current member at an agreed version — the
// replicated fleet is healthy even with individual replicas down.
func (r *Router) CheckHealth(ctx context.Context) error {
	if r.fast != nil {
		return nil
	}
	pings := r.collect(ctx, func(e ShardEngine) (Meta, error) {
		v, last, err := e.Ping(ctx)
		return Meta{Version: v, LastBatch: last}, err
	})
	r.mu.Lock()
	defer r.mu.Unlock()
	for gi, g := range r.groups {
		for mi, m := range g.members {
			if err := pings[gi][mi].err; err != nil && m.current.Load() {
				m.setLag(fmt.Sprintf("health probe failed: %v", err))
			}
		}
	}
	readmitted := r.catchUpLocked(ctx)
	var firstErr error
	if readmitted > 0 {
		// Level the published versions and refresh the composite view so
		// re-admitted members serve pinned reads again immediately.
		if _, err := r.publishLocked(ctx); err != nil {
			firstErr = err
		}
	}
	for gi, g := range r.groups {
		anyCurrent := false
		for _, m := range g.members {
			if m.current.Load() {
				anyCurrent = true
			}
		}
		if !anyCurrent && firstErr == nil {
			firstErr = fmt.Errorf("router: group %d has no serving replica", gi)
		}
	}
	if readmitted == 0 && firstErr == nil {
		// Version agreement among current members from this probe round.
		// Skipped when members were just re-admitted: those pings predate
		// the republish and would alarm falsely; the next tick verifies.
		var v0 uint64
		seen := false
		for gi, g := range r.groups {
			for mi, m := range g.members {
				if !m.current.Load() || pings[gi][mi].err != nil {
					continue
				}
				v := pings[gi][mi].m.Version
				if !seen {
					v0, seen = v, true
				} else if v != v0 {
					firstErr = fmt.Errorf("router: serving replicas at versions %d and %d", v0, v)
				}
			}
		}
	}
	return firstErr
}

// StartHealth runs CheckHealth every interval on a background goroutine
// until the returned stop function is called (idempotent). This is the
// loop that demotes dead replicas and replays recovered ones back in;
// failures beyond that only update the per-member state the stats
// report — the next query or write surfaces the error itself.
func (r *Router) StartHealth(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	ch := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ch:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				_ = r.CheckHealth(ctx)
				cancel()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

// Close closes every member engine.
func (r *Router) Close() error {
	var first error
	for _, g := range r.groups {
		for _, m := range g.members {
			if err := m.eng.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// WorkerStat is one member's serving-stats row.
type WorkerStat struct {
	Addr       string `json:"addr"`
	Group      int    `json:"group"`
	Replica    int    `json:"replica"`
	Healthy    bool   `json:"healthy"`
	Current    bool   `json:"current"`
	Acked      uint64 `json:"acked"`
	Version    uint64 `json:"version"`
	Shards     int    `json:"shards"`
	Calls      int64  `json:"calls"`
	Errors     int64  `json:"errors"`
	Reconnects int64  `json:"reconnects"`
	LastError  string `json:"lastError,omitempty"`
	LagError   string `json:"lagError,omitempty"`
}

// WorkerStats reports one row per member for /stats and /metrics.
func (r *Router) WorkerStats() []WorkerStat {
	var out []WorkerStat
	var owned []int
	if v := r.cur.Load(); v != nil {
		owned = make([]int, len(r.groups))
		for _, o := range v.ownerOf {
			owned[o]++
		}
	}
	for gi, g := range r.groups {
		for mi, m := range g.members {
			st := WorkerStat{
				Addr: "local", Healthy: true,
				Group: gi, Replica: mi,
				Current:  m.current.Load(),
				Acked:    m.acked.Load(),
				LagError: m.lagErrText(),
			}
			switch eng := m.eng.(type) {
			case *RemoteEngine:
				st.Addr = eng.Addr()
				st.Healthy = eng.Healthy()
				st.Version = eng.LastVersion()
				st.Calls, st.Errors, st.Reconnects = eng.Counters()
				st.LastError = eng.LastError()
			case *LocalEngine:
				if snap := eng.st.Current(); snap != nil {
					st.Version = snap.Version()
				}
			}
			if owned != nil {
				st.Shards = owned[gi]
			}
			out = append(out, st)
		}
	}
	return out
}

// Counters are the router's aggregate read- and write-path counters.
type Counters struct {
	ShardFetches     int64
	ShardFetchErrors int64
	// ShardBatches counts batched ResolveShards round trips (composite-
	// view materialization): ShardFetches/ShardBatches is the average
	// blocks-per-RPC amortization the batch plane buys.
	ShardBatches int64
	WalkSegments int64
	WalkHandoffs int64
	// WalkBatches counts batched WalkBatch round trips and WalkDelegated
	// the walks they carried (WalkDelegated/WalkBatches is the average
	// batch size); WalkLocalSegments counts walk segments the router
	// stepped itself over cached blocks, with no RPC at all. The
	// delegation rate of the walk plane is
	// WalkDelegated / (WalkDelegated + WalkLocalSegments).
	WalkBatches       int64
	WalkDelegated     int64
	WalkLocalSegments int64
	// ApplyRetries counts per-member re-sends of an identified batch
	// after a transport failure — each one is a lost-reply window the
	// batch ids closed.
	ApplyRetries int64
	// Failovers counts reads retried on another replica after a
	// retryable failure; HedgesSent/HedgesWon count speculative
	// duplicate reads and how many beat the primary.
	Failovers  int64
	HedgesSent int64
	HedgesWon  int64
	// ApplySkips counts write broadcasts that skipped a demoted member;
	// CatchupBatches counts batches replayed from the ring to bring
	// members back to current.
	ApplySkips     int64
	CatchupBatches int64
}

// Counters reports the read/write-path counters for /metrics.
func (r *Router) Counters() Counters {
	return Counters{
		ShardFetches:      r.shardFetches.Load(),
		ShardFetchErrors:  r.shardFetchErrors.Load(),
		ShardBatches:      r.shardBatches.Load(),
		WalkSegments:      r.walkSegments.Load(),
		WalkHandoffs:      r.walkHandoffs.Load(),
		WalkBatches:       r.walkBatches.Load(),
		WalkDelegated:     r.walkDelegated.Load(),
		WalkLocalSegments: r.walkLocalSegs.Load(),
		ApplyRetries:      r.applyRetries.Load(),
		Failovers:         r.failovers.Load(),
		HedgesSent:        r.hedgesSent.Load(),
		HedgesWon:         r.hedgesWon.Load(),
		ApplySkips:        r.applySkips.Load(),
		CatchupBatches:    r.catchupBatches.Load(),
	}
}

// Distributed reports whether the router serves through the generic
// (multi-engine or remote) path rather than the single-store fast path.
func (r *Router) Distributed() bool { return r.fast == nil }

// LocalStore returns the fast-path store, or nil in a distributed
// topology. The serving stack uses it to keep the sharded store's
// publication and GC stats on /stats when the router is local.
func (r *Router) LocalStore() *shard.Store { return r.fast }

// View is the composite read side the generic path serves: the shape and
// version agreed by every group, plus per-shard adjacency blocks that
// fault in from their owner group on first touch and stay cached for the
// generation. It implements graph.VersionedView for shape readers
// (stats, validation) and core.QueryBinder so queries run through a
// BoundView that carries their context and budget meter.
type View struct {
	r       *Router
	nodes   int
	edges   int64
	version uint64
	shift   uint32
	ownerOf []int32 // shard -> group index
	blocks  []blockSlot

	// adj is the fully materialized devirtualized adjacency over every
	// shard block, built at most once per view generation (materialize)
	// and shared by every query on it. adjMu single-flights the build.
	adjMu sync.Mutex
	adj   atomic.Pointer[graph.Adj]
}

type blockSlot struct {
	mu  sync.Mutex // single-flight fetch
	ptr atomic.Pointer[graph.CSRShard]
}

var _ graph.VersionedView = (*View)(nil)

// NumNodes implements graph.View.
func (v *View) NumNodes() int { return v.nodes }

// NumEdges implements graph.View.
func (v *View) NumEdges() int64 { return v.edges }

// Version implements graph.VersionedView.
func (v *View) Version() uint64 { return v.version }

// block returns shard p's adjacency block, fetching it from the owner
// group (any replica, with failover) on first touch. Concurrent first
// touches single-flight on the slot mutex.
func (v *View) block(ctx context.Context, p int) (*graph.CSRShard, error) {
	slot := &v.blocks[p]
	if b := slot.ptr.Load(); b != nil {
		return b, nil
	}
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if b := slot.ptr.Load(); b != nil {
		return b, nil
	}
	v.r.shardFetches.Add(1)
	g := v.r.groups[v.ownerOf[p]]
	csr, err := groupRead(v.r, ctx, g, "rpc.shard", func(ctx context.Context, e ShardEngine) (graph.CSRShard, error) {
		return e.ResolveShard(ctx, v.version, p)
	})
	if err != nil {
		v.r.shardFetchErrors.Add(1)
		return nil, err
	}
	slot.ptr.Store(&csr)
	return &csr, nil
}

// materialize pulls every not-yet-cached shard block — ONE batched
// ResolveShards call per owner group, concurrently across groups — and
// builds the same dense PackSpan span arrays the in-process sharded
// snapshot serves, so probe hot loops index slices instead of paying an
// interface call per edge list. The result is cached on the view: later
// queries on the same generation reuse it without any RPC.
func (v *View) materialize(ctx context.Context) (*graph.Adj, error) {
	if a := v.adj.Load(); a != nil {
		return a, nil
	}
	v.adjMu.Lock()
	defer v.adjMu.Unlock()
	if a := v.adj.Load(); a != nil {
		return a, nil
	}
	missing := make([][]int, len(v.r.groups))
	for p := range v.blocks {
		if v.blocks[p].ptr.Load() == nil {
			gi := v.ownerOf[p]
			missing[gi] = append(missing[gi], p)
		}
	}
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for gi := range missing {
		ps := missing[gi]
		if len(ps) == 0 {
			continue
		}
		v.r.shardBatches.Add(1)
		v.r.shardFetches.Add(int64(len(ps)))
		wg.Add(1)
		go func(gi int, ps []int) {
			defer wg.Done()
			g := v.r.groups[gi]
			csrs, err := groupRead(v.r, ctx, g, "rpc.shards", func(ctx context.Context, e ShardEngine) ([]graph.CSRShard, error) {
				return e.ResolveShards(ctx, v.version, ps)
			})
			if err == nil && len(csrs) != len(ps) {
				err = fmt.Errorf("router: group %d returned %d shard blocks for %d requested", gi, len(csrs), len(ps))
			}
			if err != nil {
				v.r.shardFetchErrors.Add(1)
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			for i, p := range ps {
				csr := csrs[i]
				slot := &v.blocks[p]
				slot.mu.Lock()
				if slot.ptr.Load() == nil {
					slot.ptr.Store(&csr)
				}
				slot.mu.Unlock()
			}
		}(gi, ps)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	stride := 1 << v.shift
	csrs := make([]graph.CSRShard, len(v.blocks))
	in := make([]uint64, v.nodes)
	out := make([]uint64, v.nodes)
	for p := range v.blocks {
		blk := v.blocks[p].ptr.Load()
		csrs[p] = *blk
		base := p * stride
		local := min(stride, v.nodes-base)
		for l := 0; l < local; l++ {
			in[base+l] = graph.PackSpan(blk.InOff[l], blk.InOff[l+1])
			out[base+l] = graph.PackSpan(blk.OutOff[l], blk.OutOff[l+1])
		}
	}
	adj := graph.NewShardedAdj(v, csrs, v.shift, in, out)
	v.adj.Store(&adj)
	return &adj, nil
}

// cachedView exposes only already-fetched blocks as a graph.View for the
// router-side walk stepper. It never faults a block in: the stepper's
// owns predicate guarantees it is only asked for nodes whose shard block
// is cached.
type cachedView struct{ v *View }

func (c cachedView) NumNodes() int   { return c.v.nodes }
func (c cachedView) NumEdges() int64 { return c.v.edges }

func (c cachedView) InNeighbors(nd graph.NodeID) []graph.NodeID {
	b := c.v.blocks[uint32(nd)>>c.v.shift].ptr.Load()
	l := uint32(nd) & (uint32(1)<<c.v.shift - 1)
	return b.InDst[b.InOff[l]:b.InOff[l+1]]
}

func (c cachedView) OutNeighbors(nd graph.NodeID) []graph.NodeID {
	b := c.v.blocks[uint32(nd)>>c.v.shift].ptr.Load()
	l := uint32(nd) & (uint32(1)<<c.v.shift - 1)
	return b.OutDst[b.OutOff[l]:b.OutOff[l+1]]
}

func (c cachedView) InDegree(nd graph.NodeID) int  { return len(c.InNeighbors(nd)) }
func (c cachedView) OutDegree(nd graph.NodeID) int { return len(c.OutNeighbors(nd)) }

// steppingAdj returns the adjacency router-side walk stepping runs over:
// the fully materialized devirtualized Adj when the view has one (owns
// is nil — every shard is locally readable), else an Adj over the cached
// blocks plus an owns predicate that hands the walk off at the first
// uncached shard, exactly as a worker hands off at the first unowned one.
func (v *View) steppingAdj() (graph.Adj, func(graph.NodeID) bool) {
	if a := v.adj.Load(); a != nil {
		return *a, nil
	}
	owns := func(nd graph.NodeID) bool {
		return v.blocks[uint32(nd)>>v.shift].ptr.Load() != nil
	}
	return graph.ResolveAdj(cachedView{v}), owns
}

func (v *View) inNeighbors(ctx context.Context, nd graph.NodeID) ([]graph.NodeID, error) {
	b, err := v.block(ctx, int(uint32(nd)>>v.shift))
	if err != nil {
		return nil, err
	}
	l := uint32(nd) & (uint32(1)<<v.shift - 1)
	return b.InDst[b.InOff[l]:b.InOff[l+1]], nil
}

func (v *View) outNeighbors(ctx context.Context, nd graph.NodeID) ([]graph.NodeID, error) {
	b, err := v.block(ctx, int(uint32(nd)>>v.shift))
	if err != nil {
		return nil, err
	}
	l := uint32(nd) & (uint32(1)<<v.shift - 1)
	return b.OutDst[b.OutOff[l]:b.OutOff[l+1]], nil
}

// InNeighbors implements graph.View for shape readers outside the query
// path (stats, component scans run them through a bound view instead).
// Fetch failures surface as an empty list here — and as a counted
// fetch error on /metrics; queries MUST go through BindQuery, which turns
// the same failure into a query error.
func (v *View) InNeighbors(nd graph.NodeID) []graph.NodeID {
	ls, _ := v.inNeighbors(context.Background(), nd)
	return ls
}

// OutNeighbors implements graph.View; see InNeighbors.
func (v *View) OutNeighbors(nd graph.NodeID) []graph.NodeID {
	ls, _ := v.outNeighbors(context.Background(), nd)
	return ls
}

// InDegree implements graph.View.
func (v *View) InDegree(nd graph.NodeID) int { return len(v.InNeighbors(nd)) }

// OutDegree implements graph.View.
func (v *View) OutDegree(nd graph.NodeID) int { return len(v.OutNeighbors(nd)) }

// BindQuery implements core.QueryBinder: the per-query view carrying the
// query's context (lazy fetches and walk segments run under its
// deadline) and meter (a transport failure trips every kernel worker).
func (v *View) BindQuery(ctx context.Context, m *budget.Meter) (graph.View, func() error) {
	b := &BoundView{view: v, ctx: ctx, m: m}
	return b, b.finish
}

// BoundView is one query's handle on a View. It is what the kernels
// actually traverse in a distributed topology: same adjacency, plus the
// query's context on every fetch, the walk-segment delegation that keeps
// the RNG stream identical across topologies, and the error latch that
// turns a mid-query worker death into a prompt partial-result-with-error
// return instead of a hang.
type BoundView struct {
	view *View
	ctx  context.Context
	m    *budget.Meter

	mu  sync.Mutex
	err error
}

var _ graph.VersionedView = (*BoundView)(nil)

// fail latches the first engine failure and trips the query's meter so
// every worker drains at its next checkpoint.
func (b *BoundView) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
	b.m.Fail(err)
}

// finish reports the first engine failure the query absorbed.
func (b *BoundView) finish() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// NumNodes implements graph.View.
func (b *BoundView) NumNodes() int { return b.view.nodes }

// NumEdges implements graph.View.
func (b *BoundView) NumEdges() int64 { return b.view.edges }

// Version implements graph.VersionedView.
func (b *BoundView) Version() uint64 { return b.view.version }

// InNeighbors implements graph.View under the query's context.
func (b *BoundView) InNeighbors(nd graph.NodeID) []graph.NodeID {
	ls, err := b.view.inNeighbors(b.ctx, nd)
	if err != nil {
		b.fail(err)
	}
	return ls
}

// OutNeighbors implements graph.View under the query's context.
func (b *BoundView) OutNeighbors(nd graph.NodeID) []graph.NodeID {
	ls, err := b.view.outNeighbors(b.ctx, nd)
	if err != nil {
		b.fail(err)
	}
	return ls
}

// InDegree implements graph.View.
func (b *BoundView) InDegree(nd graph.NodeID) int { return len(b.InNeighbors(nd)) }

// OutDegree implements graph.View.
func (b *BoundView) OutDegree(nd graph.NodeID) int { return len(b.OutNeighbors(nd)) }

var (
	_ walk.SegmentedView      = (*BoundView)(nil)
	_ walk.BatchSegmentedView = (*BoundView)(nil)
	_ graph.AdjProvider       = (*BoundView)(nil)
)

// ProvideAdj implements graph.AdjProvider: when a probe kernel resolves
// a devirtualized adjacency over the bound view, the view materializes
// every shard block in bulk (one batched ResolveShards per owner group)
// and serves the same dense-span sharded Adj the in-process store does.
// On failure the error latches on the query — the same partial-result
// semantics as any block fetch failure — and the returned Adj falls back
// to per-call interface dispatch over the bound view.
func (b *BoundView) ProvideAdj() graph.Adj {
	a, err := b.view.materialize(b.ctx)
	if err != nil {
		b.fail(err)
		return graph.ViewAdj(b)
	}
	return *a
}

// WalkSegment implements walk.SegmentedView: the walk steps on the
// group owning its current node (any replica — the SplitMix64 state
// travels in the request, so every replica draws the same steps), with
// the remaining budget propagated in the request header. A group-wide
// failure ends the walk and latches the error. When the current node's
// shard block is already cached, the router steps the walk itself with
// no RPC at all — bit-identical, because the same step loop draws from
// the same per-walk stream.
func (b *BoundView) WalkSegment(cur graph.NodeID, state uint64, room int, sqrtC float64, buf []graph.NodeID) ([]graph.NodeID, uint64, bool) {
	v := b.view
	if v.blocks[uint32(cur)>>v.shift].ptr.Load() != nil {
		return b.walkLocal(cur, state, room, sqrtC, buf)
	}
	g := v.r.groups[v.ownerOf[uint32(cur)>>v.shift]]
	in := buf
	if len(g.members) > 1 {
		// Hedged or failover attempts may run concurrently; two appends
		// into the same backing array would race, so cap the slice and
		// let each attempt's append allocate its own. Singleton groups
		// keep the zero-copy append.
		in = buf[:len(buf):len(buf)]
	}
	before := len(buf)
	type segResult struct {
		out    []graph.NodeID
		state  uint64
		status SegmentStatus
	}
	res, err := groupRead(v.r, b.ctx, g, "rpc.walk", func(ctx context.Context, e ShardEngine) (segResult, error) {
		out, st, status, err := e.WalkSegment(ctx, v.version, b.m.Export(), sqrtC, cur, state, room, in)
		return segResult{out: out, state: st, status: status}, err
	})
	if err != nil {
		b.fail(err)
		out := res.out
		if out == nil {
			out = buf
		}
		return out, state, true
	}
	v.r.walkSegments.Add(1)
	if res.status == SegmentHandoff {
		if len(res.out) == before {
			b.fail(fmt.Errorf("router: walk segment handoff without progress at node %d", cur))
			return res.out, res.state, true
		}
		v.r.walkHandoffs.Add(1)
		return res.out, res.state, false
	}
	return res.out, res.state, true
}

// walkLocal advances one walk over blocks already faulted into the view —
// router-side stepping, zero RPCs. The draw sequence depends only on the
// walk's own SplitMix64 state, so where a step runs never changes which
// step it is: handing off at the first uncached shard resumes the stream
// exactly where a worker would have.
func (b *BoundView) walkLocal(cur graph.NodeID, state uint64, room int, sqrtC float64, buf []graph.NodeID) ([]graph.NodeID, uint64, bool) {
	v := b.view
	adj, owns := v.steppingAdj()
	cp := budget.NewCheckpoint(b.m, walkSegmentPollInterval)
	var rng xrand.RNG
	rng.SetState(state)
	before := len(buf)
	out, ended := walk.Segment(&adj, cur, room, sqrtC, &rng, owns, cp.Stop, buf)
	v.r.walkLocalSegs.Add(1)
	if !ended {
		if len(out) == before {
			// cur's block was cached, so at least one step must have run;
			// anything else is a routing bug, not a transient.
			b.fail(fmt.Errorf("router: local walk segment made no progress at node %d", cur))
			return out, rng.State(), true
		}
		v.r.walkHandoffs.Add(1)
		return out, rng.State(), false
	}
	return out, rng.State(), true
}

// WalkSegmentBatch implements walk.BatchSegmentedView: one exchange
// advances every live walk. Walks whose current shard block is cached
// step router-side with no RPC; the rest are delegated to their owner
// groups — ONE WalkBatch round trip per group, concurrently across
// groups, instead of one WalkSegment round trip per walk. Blocks are
// never faulted in here: the probe phase materializes them in bulk
// (ProvideAdj), after which every later exchange is RPC-free.
func (b *BoundView) WalkSegmentBatch(walks []walk.BatchWalk, maxNodes int, sqrtC float64) error {
	v := b.view
	adj, owns := v.steppingAdj()
	cp := budget.NewCheckpoint(b.m, walkSegmentPollInterval)
	var rng xrand.RNG
	pending := make([][]int, len(v.r.groups))
	local := int64(0)
	for i := range walks {
		w := &walks[i]
		if w.Done {
			continue
		}
		cur := w.Buf[len(w.Buf)-1]
		if v.blocks[uint32(cur)>>v.shift].ptr.Load() != nil {
			rng.SetState(w.State)
			out, ended := walk.Segment(&adj, cur, maxNodes-len(w.Buf), sqrtC, &rng, owns, cp.Stop, w.Buf)
			w.Buf = out
			w.State = rng.State()
			local++
			if ended {
				w.Done = true
				continue
			}
			cur = w.Buf[len(w.Buf)-1]
		}
		gi := v.ownerOf[uint32(cur)>>v.shift]
		pending[gi] = append(pending[gi], i)
	}
	if local > 0 {
		v.r.walkLocalSegs.Add(local)
	}
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for gi := range pending {
		idxs := pending[gi]
		if len(idxs) == 0 {
			continue
		}
		v.r.walkBatches.Add(1)
		v.r.walkDelegated.Add(int64(len(idxs)))
		wg.Add(1)
		go func(gi int, idxs []int) {
			defer wg.Done()
			starts := make([]WalkStart, len(idxs))
			for j, wi := range idxs {
				w := &walks[wi]
				starts[j] = WalkStart{Cur: w.Buf[len(w.Buf)-1], State: w.State, Room: maxNodes - len(w.Buf)}
			}
			g := v.r.groups[gi]
			res, err := groupRead(v.r, b.ctx, g, "rpc.walkbatch", func(ctx context.Context, e ShardEngine) ([]WalkResult, error) {
				return e.WalkBatch(ctx, v.version, b.m.Export(), sqrtC, starts)
			})
			if err == nil && len(res) != len(idxs) {
				err = fmt.Errorf("router: group %d returned %d walk results for %d walks", gi, len(res), len(idxs))
			}
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				for _, wi := range idxs {
					walks[wi].Done = true
				}
				return
			}
			handoffs := int64(0)
			for j, wi := range idxs {
				w := &walks[wi]
				r := res[j]
				w.Buf = append(w.Buf, r.Nodes...)
				w.State = r.State
				if r.Status == SegmentHandoff {
					handoffs++
				} else {
					w.Done = true
				}
			}
			if handoffs > 0 {
				v.r.walkHandoffs.Add(handoffs)
			}
		}(gi, idxs)
	}
	wg.Wait()
	if firstErr != nil {
		b.fail(firstErr)
		return firstErr
	}
	return nil
}
