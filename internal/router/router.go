package router

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"probesim/internal/budget"
	"probesim/internal/graph"
	"probesim/internal/shard"
)

// Router fans queries out over a set of shard engines and assembles their
// shards into one composite versioned view. It implements the same
// SnapshotProvider seam core.Executor already runs on, so the entire
// query stack — single-source, top-k, progressive, joins, components —
// works over a fleet of workers exactly as it does over an in-process
// store.
//
// Fast path: a Router over a single LocalEngine that owns every shard
// serves the store's own published StoreSnapshot (no wrapper, no new
// allocation, bit-identical and benchmark-identical to PR 2's direct
// store). Any other topology serves a *View whose shard blocks fault in
// from their owners on first touch.
type Router struct {
	engines []ShardEngine
	fast    *shard.Store // non-nil: single all-owning local engine

	// mu serializes the control plane (Apply, PublishView, health
	// re-assembly) — never the read path.
	mu  sync.Mutex
	cur atomic.Pointer[View]

	// Read-path counters for /metrics.
	shardFetches     atomic.Int64
	shardFetchErrors atomic.Int64
	walkSegments     atomic.Int64
	walkHandoffs     atomic.Int64
}

// controlTimeout bounds control-plane broadcasts (Meta, Publish, Apply)
// that carry no caller deadline.
const controlTimeout = 10 * time.Second

// New assembles a router over the given engines. It fetches every
// engine's Meta, validates that they describe the same graph at the same
// version with disjoint, complete shard ownership, and builds the initial
// view. At least one engine is required.
func New(engines ...ShardEngine) (*Router, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("router: no engines")
	}
	r := &Router{engines: engines}
	if len(engines) == 1 {
		if le, ok := engines[0].(*LocalEngine); ok && le.group == 1 {
			r.fast = le.st
			return r, nil
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), controlTimeout)
	defer cancel()
	metas, err := r.broadcast(ctx, func(e ShardEngine) (Meta, error) { return e.Meta(ctx) })
	if err != nil {
		return nil, err
	}
	view, err := r.assemble(metas)
	if err != nil {
		return nil, err
	}
	r.cur.Store(view)
	return r, nil
}

// NewLocal is the single-process configuration: a router whose only
// engine is the store itself. It serves the store's own snapshots with
// zero added indirection.
func NewLocal(st *shard.Store) *Router {
	r, err := New(NewLocalEngine(st, 0, 1))
	if err != nil {
		panic(err) // unreachable: a single local engine cannot fail Meta
	}
	return r
}

// broadcast runs one engine call on every engine concurrently and
// returns all results, or the first error.
func (r *Router) broadcast(ctx context.Context, call func(ShardEngine) (Meta, error)) ([]Meta, error) {
	metas := make([]Meta, len(r.engines))
	errs := make([]error, len(r.engines))
	var wg sync.WaitGroup
	for i, e := range r.engines {
		wg.Add(1)
		go func(i int, e ShardEngine) {
			defer wg.Done()
			metas[i], errs[i] = call(e)
		}(i, e)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("router: engine %d: %w", i, err)
		}
	}
	return metas, nil
}

// assemble validates the metas against each other and builds a View.
func (r *Router) assemble(metas []Meta) (*View, error) {
	m0 := metas[0]
	for i, m := range metas[1:] {
		if m.Nodes != m0.Nodes || m.Edges != m0.Edges || m.Version != m0.Version ||
			m.Shift != m0.Shift || m.Shards != m0.Shards {
			return nil, fmt.Errorf("router: engines 0 and %d disagree: (n=%d m=%d v=%d shift=%d shards=%d) vs (n=%d m=%d v=%d shift=%d shards=%d)",
				i+1, m0.Nodes, m0.Edges, m0.Version, m0.Shift, m0.Shards,
				m.Nodes, m.Edges, m.Version, m.Shift, m.Shards)
		}
	}
	ownerOf := make([]int32, m0.Shards)
	for p := range ownerOf {
		ownerOf[p] = -1
	}
	for i, m := range metas {
		for _, p := range m.Owned {
			if p < 0 || p >= m0.Shards {
				return nil, fmt.Errorf("router: engine %d claims shard %d of %d", i, p, m0.Shards)
			}
			if ownerOf[p] != -1 {
				return nil, fmt.Errorf("router: shard %d owned by engines %d and %d", p, ownerOf[p], i)
			}
			ownerOf[p] = int32(i)
		}
	}
	for p, o := range ownerOf {
		if o == -1 {
			return nil, fmt.Errorf("router: shard %d has no owner", p)
		}
	}
	return &View{
		r:       r,
		nodes:   m0.Nodes,
		edges:   m0.Edges,
		version: m0.Version,
		shift:   m0.Shift,
		ownerOf: ownerOf,
		blocks:  make([]blockSlot, m0.Shards),
	}, nil
}

// PublishedView implements core.SnapshotProvider. It never blocks.
func (r *Router) PublishedView() graph.VersionedView {
	if r.fast != nil {
		return r.fast.Current()
	}
	return r.cur.Load()
}

// PublishView implements core.SnapshotProvider: it asks every engine to
// republish, validates agreement, and installs a fresh composite view.
// An unchanged version keeps the current view (and its warm block
// cache). On failure the previously published view stays current and is
// returned alongside the error.
func (r *Router) PublishView(ctx context.Context) (graph.VersionedView, error) {
	if r.fast != nil {
		return r.fast.PublishCtx(ctx)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.cur.Load()
	metas, err := r.broadcast(ctx, func(e ShardEngine) (Meta, error) { return e.Publish(ctx) })
	if err != nil {
		return prev, fmt.Errorf("router: publication failed: %w", err)
	}
	if prev != nil && metas[0].Version == prev.version {
		same := true
		for _, m := range metas[1:] {
			if m.Version != prev.version {
				same = false
				break
			}
		}
		if same {
			return prev, nil
		}
	}
	view, err := r.assemble(metas)
	if err != nil {
		return prev, err
	}
	r.cur.Store(view)
	return view, nil
}

// Apply applies one edge-mutation batch to every engine (each engine is
// all-or-rollback on its own). If some engines applied and another
// failed, the applied ones are rolled back with the inverse batch so the
// topology stays convergent.
//
// Two failure modes remain and are reported loudly rather than patched
// over. A rollback failure leaves that engine diverged. And a TRANSPORT
// failure on the apply itself leaves the worker's outcome unknown — the
// worker may have applied the batch and died before replying. Blindly
// applying the inverse there would be wrong: each inverse op is a plain
// mutation (parallel edges are legal), so an inverse sent to a worker
// that never applied can delete pre-existing edges and make the
// divergence silent. Instead the error names the worker whose state is
// unknown; the next Publish broadcast detects any real divergence
// through the version-agreement check (queries keep serving the last
// agreed view) and the operator restarts the worker from the source
// graph. A transactional apply (idempotent batch ids) is on the
// ROADMAP.
func (r *Router) Apply(ctx context.Context, ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	versions := make([]uint64, len(r.engines))
	errs := make([]error, len(r.engines))
	var wg sync.WaitGroup
	for i, e := range r.engines {
		wg.Add(1)
		go func(i int, e ShardEngine) {
			defer wg.Done()
			versions[i], errs[i] = e.Apply(ctx, ops)
		}(i, e)
	}
	wg.Wait()
	var firstErr error
	for i, err := range errs {
		if err != nil {
			if errors.Is(err, ErrTransport) {
				firstErr = fmt.Errorf("router: engine %d: apply outcome UNKNOWN (worker may hold the batch; restart it if the next publication reports version disagreement): %w", i, err)
			} else {
				firstErr = fmt.Errorf("router: engine %d: %w", i, err)
			}
			break
		}
	}
	if firstErr != nil {
		inverse := make([]Op, len(ops))
		for i := range ops {
			inv := ops[len(ops)-1-i]
			inv.Remove = !inv.Remove
			inverse[i] = inv
		}
		for i, err := range errs {
			if err != nil {
				continue
			}
			if _, rerr := r.engines[i].Apply(ctx, inverse); rerr != nil {
				return fmt.Errorf("router: engine %d diverged (rollback failed: %v) after %w", i, rerr, firstErr)
			}
		}
		return firstErr
	}
	for i, v := range versions[1:] {
		if v != versions[0] {
			return fmt.Errorf("router: engines 0 and %d at versions %d and %d after apply", i+1, versions[0], v)
		}
	}
	return nil
}

// AddEdge implements the server's mutator seam.
func (r *Router) AddEdge(u, v graph.NodeID) error {
	ctx, cancel := context.WithTimeout(context.Background(), controlTimeout)
	defer cancel()
	return r.Apply(ctx, []Op{{U: u, V: v}})
}

// RemoveEdge implements the server's mutator seam.
func (r *Router) RemoveEdge(u, v graph.NodeID) error {
	ctx, cancel := context.WithTimeout(context.Background(), controlTimeout)
	defer cancel()
	return r.Apply(ctx, []Op{{Remove: true, U: u, V: v}})
}

// CheckHealth fetches every engine's Meta and validates agreement. It is
// the per-worker health/version probe behind the background loop and the
// serving stats.
func (r *Router) CheckHealth(ctx context.Context) error {
	if r.fast != nil {
		return nil
	}
	metas, err := r.broadcast(ctx, func(e ShardEngine) (Meta, error) { return e.Meta(ctx) })
	if err != nil {
		return err
	}
	m0 := metas[0]
	for i, m := range metas[1:] {
		if m.Version != m0.Version {
			return fmt.Errorf("router: engines 0 and %d at versions %d and %d", i+1, m0.Version, m.Version)
		}
	}
	return nil
}

// StartHealth runs CheckHealth every interval on a background goroutine
// until the returned stop function is called (idempotent). Failures only
// update the per-engine health state the stats report — the next query or
// write surfaces the error itself.
func (r *Router) StartHealth(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	ch := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ch:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				_ = r.CheckHealth(ctx)
				cancel()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

// Close closes every engine.
func (r *Router) Close() error {
	var first error
	for _, e := range r.engines {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WorkerStat is one engine's serving-stats row.
type WorkerStat struct {
	Addr       string `json:"addr"`
	Healthy    bool   `json:"healthy"`
	Version    uint64 `json:"version"`
	Shards     int    `json:"shards"`
	Calls      int64  `json:"calls"`
	Errors     int64  `json:"errors"`
	Reconnects int64  `json:"reconnects"`
	LastError  string `json:"lastError,omitempty"`
}

// WorkerStats reports one row per engine for /stats and /metrics.
func (r *Router) WorkerStats() []WorkerStat {
	out := make([]WorkerStat, len(r.engines))
	var owned []int
	if v := r.cur.Load(); v != nil {
		owned = make([]int, len(r.engines))
		for _, o := range v.ownerOf {
			owned[o]++
		}
	}
	for i, e := range r.engines {
		st := WorkerStat{Addr: "local", Healthy: true}
		switch eng := e.(type) {
		case *RemoteEngine:
			st.Addr = eng.Addr()
			st.Healthy = eng.Healthy()
			st.Version = eng.LastVersion()
			st.Calls, st.Errors, st.Reconnects = eng.Counters()
			st.LastError = eng.LastError()
		case *LocalEngine:
			if snap := eng.st.Current(); snap != nil {
				st.Version = snap.Version()
			}
		}
		if owned != nil {
			st.Shards = owned[i]
		}
		out[i] = st
	}
	return out
}

// Counters are the router's aggregate read-path counters.
type Counters struct {
	ShardFetches     int64
	ShardFetchErrors int64
	WalkSegments     int64
	WalkHandoffs     int64
}

// Counters reports the read-path counters for /metrics.
func (r *Router) Counters() Counters {
	return Counters{
		ShardFetches:     r.shardFetches.Load(),
		ShardFetchErrors: r.shardFetchErrors.Load(),
		WalkSegments:     r.walkSegments.Load(),
		WalkHandoffs:     r.walkHandoffs.Load(),
	}
}

// Distributed reports whether the router serves through the generic
// (multi-engine or remote) path rather than the single-store fast path.
func (r *Router) Distributed() bool { return r.fast == nil }

// LocalStore returns the fast-path store, or nil in a distributed
// topology. The serving stack uses it to keep the sharded store's
// publication and GC stats on /stats when the router is local.
func (r *Router) LocalStore() *shard.Store { return r.fast }

// View is the composite read side the generic path serves: the shape and
// version agreed by every engine, plus per-shard adjacency blocks that
// fault in from their owners on first touch and stay cached for the
// generation. It implements graph.VersionedView for shape readers
// (stats, validation) and core.QueryBinder so queries run through a
// BoundView that carries their context and budget meter.
type View struct {
	r       *Router
	nodes   int
	edges   int64
	version uint64
	shift   uint32
	ownerOf []int32
	blocks  []blockSlot
}

type blockSlot struct {
	mu  sync.Mutex // single-flight fetch
	ptr atomic.Pointer[graph.CSRShard]
}

var _ graph.VersionedView = (*View)(nil)

// NumNodes implements graph.View.
func (v *View) NumNodes() int { return v.nodes }

// NumEdges implements graph.View.
func (v *View) NumEdges() int64 { return v.edges }

// Version implements graph.VersionedView.
func (v *View) Version() uint64 { return v.version }

// block returns shard p's adjacency block, fetching it from the owner
// engine on first touch. Concurrent first touches single-flight on the
// slot mutex.
func (v *View) block(ctx context.Context, p int) (*graph.CSRShard, error) {
	slot := &v.blocks[p]
	if b := slot.ptr.Load(); b != nil {
		return b, nil
	}
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if b := slot.ptr.Load(); b != nil {
		return b, nil
	}
	v.r.shardFetches.Add(1)
	csr, err := v.r.engines[v.ownerOf[p]].ResolveShard(ctx, v.version, p)
	if err != nil {
		v.r.shardFetchErrors.Add(1)
		return nil, err
	}
	slot.ptr.Store(&csr)
	return &csr, nil
}

func (v *View) inNeighbors(ctx context.Context, nd graph.NodeID) ([]graph.NodeID, error) {
	b, err := v.block(ctx, int(uint32(nd)>>v.shift))
	if err != nil {
		return nil, err
	}
	l := uint32(nd) & (uint32(1)<<v.shift - 1)
	return b.InDst[b.InOff[l]:b.InOff[l+1]], nil
}

func (v *View) outNeighbors(ctx context.Context, nd graph.NodeID) ([]graph.NodeID, error) {
	b, err := v.block(ctx, int(uint32(nd)>>v.shift))
	if err != nil {
		return nil, err
	}
	l := uint32(nd) & (uint32(1)<<v.shift - 1)
	return b.OutDst[b.OutOff[l]:b.OutOff[l+1]], nil
}

// InNeighbors implements graph.View for shape readers outside the query
// path (stats, component scans run them through a bound view instead).
// Fetch failures surface as an empty list here — and as a counted
// fetch error on /metrics; queries MUST go through BindQuery, which turns
// the same failure into a query error.
func (v *View) InNeighbors(nd graph.NodeID) []graph.NodeID {
	ls, _ := v.inNeighbors(context.Background(), nd)
	return ls
}

// OutNeighbors implements graph.View; see InNeighbors.
func (v *View) OutNeighbors(nd graph.NodeID) []graph.NodeID {
	ls, _ := v.outNeighbors(context.Background(), nd)
	return ls
}

// InDegree implements graph.View.
func (v *View) InDegree(nd graph.NodeID) int { return len(v.InNeighbors(nd)) }

// OutDegree implements graph.View.
func (v *View) OutDegree(nd graph.NodeID) int { return len(v.OutNeighbors(nd)) }

// BindQuery implements core.QueryBinder: the per-query view carrying the
// query's context (lazy fetches and walk segments run under its
// deadline) and meter (a transport failure trips every kernel worker).
func (v *View) BindQuery(ctx context.Context, m *budget.Meter) (graph.View, func() error) {
	b := &BoundView{view: v, ctx: ctx, m: m}
	return b, b.finish
}

// BoundView is one query's handle on a View. It is what the kernels
// actually traverse in a distributed topology: same adjacency, plus the
// query's context on every fetch, the walk-segment delegation that keeps
// the RNG stream identical across topologies, and the error latch that
// turns a mid-query worker death into a prompt partial-result-with-error
// return instead of a hang.
type BoundView struct {
	view *View
	ctx  context.Context
	m    *budget.Meter

	mu  sync.Mutex
	err error
}

var _ graph.VersionedView = (*BoundView)(nil)

// fail latches the first engine failure and trips the query's meter so
// every worker drains at its next checkpoint.
func (b *BoundView) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
	b.m.Fail(err)
}

// finish reports the first engine failure the query absorbed.
func (b *BoundView) finish() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// NumNodes implements graph.View.
func (b *BoundView) NumNodes() int { return b.view.nodes }

// NumEdges implements graph.View.
func (b *BoundView) NumEdges() int64 { return b.view.edges }

// Version implements graph.VersionedView.
func (b *BoundView) Version() uint64 { return b.view.version }

// InNeighbors implements graph.View under the query's context.
func (b *BoundView) InNeighbors(nd graph.NodeID) []graph.NodeID {
	ls, err := b.view.inNeighbors(b.ctx, nd)
	if err != nil {
		b.fail(err)
	}
	return ls
}

// OutNeighbors implements graph.View under the query's context.
func (b *BoundView) OutNeighbors(nd graph.NodeID) []graph.NodeID {
	ls, err := b.view.outNeighbors(b.ctx, nd)
	if err != nil {
		b.fail(err)
	}
	return ls
}

// InDegree implements graph.View.
func (b *BoundView) InDegree(nd graph.NodeID) int { return len(b.InNeighbors(nd)) }

// OutDegree implements graph.View.
func (b *BoundView) OutDegree(nd graph.NodeID) int { return len(b.OutNeighbors(nd)) }

// WalkSegment implements walk.SegmentedView: the walk steps on the
// engine owning its current node, with the remaining budget propagated
// in the request header and the SplitMix64 state carried across
// engines. An engine failure ends the walk and latches the error.
func (b *BoundView) WalkSegment(cur graph.NodeID, state uint64, room int, sqrtC float64, buf []graph.NodeID) ([]graph.NodeID, uint64, bool) {
	v := b.view
	eng := v.r.engines[v.ownerOf[uint32(cur)>>v.shift]]
	before := len(buf)
	out, newState, status, err := eng.WalkSegment(b.ctx, v.version, b.m.Export(), sqrtC, cur, state, room, buf)
	if err != nil {
		b.fail(err)
		return out, state, true
	}
	v.r.walkSegments.Add(1)
	if status == SegmentHandoff {
		if len(out) == before {
			b.fail(fmt.Errorf("router: walk segment handoff without progress at node %d", cur))
			return out, newState, true
		}
		v.r.walkHandoffs.Add(1)
		return out, newState, false
	}
	return out, newState, true
}
