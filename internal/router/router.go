package router

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"probesim/internal/budget"
	"probesim/internal/graph"
	"probesim/internal/shard"
)

// Router fans queries out over a set of shard engines and assembles their
// shards into one composite versioned view. It implements the same
// SnapshotProvider seam core.Executor already runs on, so the entire
// query stack — single-source, top-k, progressive, joins, components —
// works over a fleet of workers exactly as it does over an in-process
// store.
//
// Fast path: a Router over a single LocalEngine that owns every shard
// serves the store's own published StoreSnapshot (no wrapper, no new
// allocation, bit-identical and benchmark-identical to PR 2's direct
// store). Any other topology serves a *View whose shard blocks fault in
// from their owners on first touch.
type Router struct {
	engines []ShardEngine
	fast    *shard.Store // non-nil: single all-owning local engine

	// mu serializes the control plane (Apply, PublishView, health
	// re-assembly) — never the read path.
	mu  sync.Mutex
	cur atomic.Pointer[View]

	// nextBatch is the next batch id Apply will assign. Seeded at
	// assembly from the fleet's maximum durable watermark (Meta.
	// LastBatch), so ids stay monotonic across router restarts even
	// though the routing tier keeps no state of its own.
	nextBatch atomic.Uint64

	// Read-path counters for /metrics.
	shardFetches     atomic.Int64
	shardFetchErrors atomic.Int64
	walkSegments     atomic.Int64
	walkHandoffs     atomic.Int64
	applyRetries     atomic.Int64
}

// controlTimeout bounds control-plane broadcasts (Meta, Publish, Apply)
// that carry no caller deadline.
const controlTimeout = 10 * time.Second

// New assembles a router over the given engines. It fetches every
// engine's Meta, validates that they describe the same graph at the same
// version with disjoint, complete shard ownership, and builds the initial
// view. At least one engine is required.
func New(engines ...ShardEngine) (*Router, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("router: no engines")
	}
	r := &Router{engines: engines}
	if len(engines) == 1 {
		if le, ok := engines[0].(*LocalEngine); ok && le.group == 1 {
			r.fast = le.st
			r.nextBatch.Store(le.st.LastBatch())
			return r, nil
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), controlTimeout)
	defer cancel()
	metas, err := r.broadcast(ctx, func(e ShardEngine) (Meta, error) { return e.Meta(ctx) })
	if err != nil {
		return nil, err
	}
	view, err := r.assemble(metas)
	if err != nil {
		return nil, err
	}
	for _, m := range metas {
		if m.LastBatch > r.nextBatch.Load() {
			r.nextBatch.Store(m.LastBatch)
		}
	}
	r.cur.Store(view)
	return r, nil
}

// NewLocal is the single-process configuration: a router whose only
// engine is the store itself. It serves the store's own snapshots with
// zero added indirection.
func NewLocal(st *shard.Store) *Router {
	r, err := New(NewLocalEngine(st, 0, 1))
	if err != nil {
		panic(err) // unreachable: a single local engine cannot fail Meta
	}
	return r
}

// broadcast runs one engine call on every engine concurrently and
// returns all results, or the first error.
func (r *Router) broadcast(ctx context.Context, call func(ShardEngine) (Meta, error)) ([]Meta, error) {
	metas := make([]Meta, len(r.engines))
	errs := make([]error, len(r.engines))
	var wg sync.WaitGroup
	for i, e := range r.engines {
		wg.Add(1)
		go func(i int, e ShardEngine) {
			defer wg.Done()
			metas[i], errs[i] = call(e)
		}(i, e)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("router: engine %d: %w", i, err)
		}
	}
	return metas, nil
}

// assemble validates the metas against each other and builds a View.
func (r *Router) assemble(metas []Meta) (*View, error) {
	m0 := metas[0]
	for i, m := range metas[1:] {
		if m.Nodes != m0.Nodes || m.Edges != m0.Edges || m.Version != m0.Version ||
			m.Shift != m0.Shift || m.Shards != m0.Shards {
			return nil, fmt.Errorf("router: engines 0 and %d disagree: (n=%d m=%d v=%d shift=%d shards=%d) vs (n=%d m=%d v=%d shift=%d shards=%d)",
				i+1, m0.Nodes, m0.Edges, m0.Version, m0.Shift, m0.Shards,
				m.Nodes, m.Edges, m.Version, m.Shift, m.Shards)
		}
		if m.LastBatch != m0.LastBatch {
			return nil, fmt.Errorf("router: engines 0 and %d at batch watermarks %d and %d — a worker missed a batch while down; restore it from its data dir or a fleet peer's",
				i+1, m0.LastBatch, m.LastBatch)
		}
	}
	ownerOf := make([]int32, m0.Shards)
	for p := range ownerOf {
		ownerOf[p] = -1
	}
	for i, m := range metas {
		for _, p := range m.Owned {
			if p < 0 || p >= m0.Shards {
				return nil, fmt.Errorf("router: engine %d claims shard %d of %d", i, p, m0.Shards)
			}
			if ownerOf[p] != -1 {
				return nil, fmt.Errorf("router: shard %d owned by engines %d and %d", p, ownerOf[p], i)
			}
			ownerOf[p] = int32(i)
		}
	}
	for p, o := range ownerOf {
		if o == -1 {
			return nil, fmt.Errorf("router: shard %d has no owner", p)
		}
	}
	return &View{
		r:       r,
		nodes:   m0.Nodes,
		edges:   m0.Edges,
		version: m0.Version,
		shift:   m0.Shift,
		ownerOf: ownerOf,
		blocks:  make([]blockSlot, m0.Shards),
	}, nil
}

// PublishedView implements core.SnapshotProvider. It never blocks.
func (r *Router) PublishedView() graph.VersionedView {
	if r.fast != nil {
		return r.fast.Current()
	}
	return r.cur.Load()
}

// PublishView implements core.SnapshotProvider: it asks every engine to
// republish, validates agreement, and installs a fresh composite view.
// An unchanged version keeps the current view (and its warm block
// cache). On failure the previously published view stays current and is
// returned alongside the error.
func (r *Router) PublishView(ctx context.Context) (graph.VersionedView, error) {
	if r.fast != nil {
		return r.fast.PublishCtx(ctx)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.cur.Load()
	metas, err := r.broadcast(ctx, func(e ShardEngine) (Meta, error) { return e.Publish(ctx) })
	if err != nil {
		return prev, fmt.Errorf("router: publication failed: %w", err)
	}
	if prev != nil && metas[0].Version == prev.version {
		same := true
		for _, m := range metas[1:] {
			if m.Version != prev.version {
				same = false
				break
			}
		}
		if same {
			return prev, nil
		}
	}
	view, err := r.assemble(metas)
	if err != nil {
		return prev, err
	}
	r.cur.Store(view)
	return view, nil
}

// applyAttempts bounds how often one broadcast re-sends a batch to an
// engine that failed with a transport error. Each retry waits out a
// slice of the remote backoff window first, so a worker that blips
// (connection reset, brief restart) converges without operator help.
const (
	applyAttempts   = 4
	applyRetryDelay = 250 * time.Millisecond
)

// Apply assigns the batch the next monotonic id and applies it to every
// engine (each engine is all-or-rollback on its own, and applies each id
// at most once).
//
// The batch id is what closes the lost-reply window that used to make
// transport failures unrecoverable: a worker that applied the batch but
// whose reply was lost will simply acknowledge the retry without
// re-applying, and a worker that never saw it applies it now — so on
// ErrTransport the router RETRIES the same id instead of rolling the
// fleet back. Only after the retry budget is exhausted does it give up,
// and even then the error says exactly what to do: the worker (durable
// via its own write-ahead log) either holds the batch or will be flagged
// by the watermark-agreement check at the next assembly; no silent
// divergence is possible either way.
//
// A SEMANTIC failure (bad op) is deterministic — every engine that
// applied rolls back via the inverse batch (fresh ids), converging the
// fleet on the pre-batch graph, and the client gets the rejection.
func (r *Router) Apply(ctx context.Context, ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	batch := r.nextBatch.Add(1)
	versions, errs := r.applyBroadcast(ctx, batch, ops)
	var semanticErr, transportErr error
	for i, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, ErrTransport):
			if transportErr == nil {
				transportErr = fmt.Errorf("router: engine %d: apply retries exhausted; the worker either holds batch %d durably (a re-send of the id is a no-op) or will fail the watermark-agreement check at the next assembly: %w", i, batch, err)
			}
		case errors.Is(err, ErrUnavailable):
			// The engine refused retry-safely (annulled WAL append): it
			// provably does NOT hold the batch, so like a transport
			// failure this must not trigger a fleet rollback — the
			// engines that took the batch hold it durably.
			if transportErr == nil {
				transportErr = fmt.Errorf("router: engine %d: apply retries exhausted; the worker could not log batch %d (it does not hold it; the fleet's appliers do): %w", i, batch, err)
			}
		default:
			if semanticErr == nil {
				semanticErr = fmt.Errorf("router: engine %d: %w", i, err)
			}
		}
	}
	if semanticErr != nil {
		// Deterministic rejection: ONE fresh id covers the whole rollback
		// round so the fleet's watermarks converge — engines that applied
		// get the inverse batch under it, engines that rejected get an
		// empty batch under it (watermark advance, no mutation). Engines
		// unreachable on transport cannot be leveled here; watermark
		// agreement at the next assembly names them.
		inverse := make([]Op, len(ops))
		for i := range ops {
			inv := ops[len(ops)-1-i]
			inv.Remove = !inv.Remove
			inverse[i] = inv
		}
		level := r.nextBatch.Add(1)
		for i, err := range errs {
			ops := inverse
			switch {
			case err == nil:
			case errors.Is(err, ErrTransport) || errors.Is(err, ErrUnavailable):
				continue
			default:
				ops = nil // rejected the forward batch: just level the watermark
			}
			if _, rerr := r.engines[i].Apply(ctx, level, ops); rerr != nil {
				return fmt.Errorf("router: engine %d diverged (rollback failed: %v) after %w", i, rerr, semanticErr)
			}
		}
		return semanticErr
	}
	if transportErr != nil {
		// NO rollback: the batch is identified and durable on every engine
		// that took it, and the unreachable worker either holds it (its
		// log replays it on reboot, and a later re-send of the id is a
		// no-op) or missed it entirely — which the watermark-agreement
		// check at the next assembly reports for exactly-targeted repair,
		// instead of the old fleet-wide rollback that threw away the
		// healthy engines' acknowledged work.
		return transportErr
	}
	for i, v := range versions[1:] {
		if v != versions[0] {
			return fmt.Errorf("router: engines 0 and %d at versions %d and %d after apply", i+1, versions[0], v)
		}
	}
	return nil
}

// applyBroadcast sends one identified batch to every engine
// concurrently, retrying transport failures per engine.
func (r *Router) applyBroadcast(ctx context.Context, batch uint64, ops []Op) ([]uint64, []error) {
	versions := make([]uint64, len(r.engines))
	errs := make([]error, len(r.engines))
	var wg sync.WaitGroup
	for i, e := range r.engines {
		wg.Add(1)
		go func(i int, e ShardEngine) {
			defer wg.Done()
			for attempt := 0; ; attempt++ {
				versions[i], errs[i] = e.Apply(ctx, batch, ops)
				retryable := errors.Is(errs[i], ErrTransport) || errors.Is(errs[i], ErrUnavailable)
				if errs[i] == nil || !retryable || attempt+1 >= applyAttempts {
					return
				}
				r.applyRetries.Add(1)
				select {
				case <-ctx.Done():
					return
				case <-time.After(applyRetryDelay):
				}
			}
		}(i, e)
	}
	wg.Wait()
	return versions, errs
}

// AddEdge implements the server's mutator seam.
func (r *Router) AddEdge(u, v graph.NodeID) error {
	ctx, cancel := context.WithTimeout(context.Background(), controlTimeout)
	defer cancel()
	return r.Apply(ctx, []Op{{U: u, V: v}})
}

// RemoveEdge implements the server's mutator seam.
func (r *Router) RemoveEdge(u, v graph.NodeID) error {
	ctx, cancel := context.WithTimeout(context.Background(), controlTimeout)
	defer cancel()
	return r.Apply(ctx, []Op{{Remove: true, U: u, V: v}})
}

// CheckHealth fetches every engine's Meta and validates agreement. It is
// the per-worker health/version probe behind the background loop and the
// serving stats.
func (r *Router) CheckHealth(ctx context.Context) error {
	if r.fast != nil {
		return nil
	}
	metas, err := r.broadcast(ctx, func(e ShardEngine) (Meta, error) { return e.Meta(ctx) })
	if err != nil {
		return err
	}
	m0 := metas[0]
	for i, m := range metas[1:] {
		if m.Version != m0.Version {
			return fmt.Errorf("router: engines 0 and %d at versions %d and %d", i+1, m0.Version, m.Version)
		}
	}
	return nil
}

// StartHealth runs CheckHealth every interval on a background goroutine
// until the returned stop function is called (idempotent). Failures only
// update the per-engine health state the stats report — the next query or
// write surfaces the error itself.
func (r *Router) StartHealth(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	ch := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ch:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				_ = r.CheckHealth(ctx)
				cancel()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

// Close closes every engine.
func (r *Router) Close() error {
	var first error
	for _, e := range r.engines {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WorkerStat is one engine's serving-stats row.
type WorkerStat struct {
	Addr       string `json:"addr"`
	Healthy    bool   `json:"healthy"`
	Version    uint64 `json:"version"`
	Shards     int    `json:"shards"`
	Calls      int64  `json:"calls"`
	Errors     int64  `json:"errors"`
	Reconnects int64  `json:"reconnects"`
	LastError  string `json:"lastError,omitempty"`
}

// WorkerStats reports one row per engine for /stats and /metrics.
func (r *Router) WorkerStats() []WorkerStat {
	out := make([]WorkerStat, len(r.engines))
	var owned []int
	if v := r.cur.Load(); v != nil {
		owned = make([]int, len(r.engines))
		for _, o := range v.ownerOf {
			owned[o]++
		}
	}
	for i, e := range r.engines {
		st := WorkerStat{Addr: "local", Healthy: true}
		switch eng := e.(type) {
		case *RemoteEngine:
			st.Addr = eng.Addr()
			st.Healthy = eng.Healthy()
			st.Version = eng.LastVersion()
			st.Calls, st.Errors, st.Reconnects = eng.Counters()
			st.LastError = eng.LastError()
		case *LocalEngine:
			if snap := eng.st.Current(); snap != nil {
				st.Version = snap.Version()
			}
		}
		if owned != nil {
			st.Shards = owned[i]
		}
		out[i] = st
	}
	return out
}

// Counters are the router's aggregate read- and write-path counters.
type Counters struct {
	ShardFetches     int64
	ShardFetchErrors int64
	WalkSegments     int64
	WalkHandoffs     int64
	// ApplyRetries counts per-engine re-sends of an identified batch
	// after a transport failure — each one is a lost-reply window the
	// batch ids closed.
	ApplyRetries int64
}

// Counters reports the read/write-path counters for /metrics.
func (r *Router) Counters() Counters {
	return Counters{
		ShardFetches:     r.shardFetches.Load(),
		ShardFetchErrors: r.shardFetchErrors.Load(),
		WalkSegments:     r.walkSegments.Load(),
		WalkHandoffs:     r.walkHandoffs.Load(),
		ApplyRetries:     r.applyRetries.Load(),
	}
}

// Distributed reports whether the router serves through the generic
// (multi-engine or remote) path rather than the single-store fast path.
func (r *Router) Distributed() bool { return r.fast == nil }

// LocalStore returns the fast-path store, or nil in a distributed
// topology. The serving stack uses it to keep the sharded store's
// publication and GC stats on /stats when the router is local.
func (r *Router) LocalStore() *shard.Store { return r.fast }

// View is the composite read side the generic path serves: the shape and
// version agreed by every engine, plus per-shard adjacency blocks that
// fault in from their owners on first touch and stay cached for the
// generation. It implements graph.VersionedView for shape readers
// (stats, validation) and core.QueryBinder so queries run through a
// BoundView that carries their context and budget meter.
type View struct {
	r       *Router
	nodes   int
	edges   int64
	version uint64
	shift   uint32
	ownerOf []int32
	blocks  []blockSlot
}

type blockSlot struct {
	mu  sync.Mutex // single-flight fetch
	ptr atomic.Pointer[graph.CSRShard]
}

var _ graph.VersionedView = (*View)(nil)

// NumNodes implements graph.View.
func (v *View) NumNodes() int { return v.nodes }

// NumEdges implements graph.View.
func (v *View) NumEdges() int64 { return v.edges }

// Version implements graph.VersionedView.
func (v *View) Version() uint64 { return v.version }

// block returns shard p's adjacency block, fetching it from the owner
// engine on first touch. Concurrent first touches single-flight on the
// slot mutex.
func (v *View) block(ctx context.Context, p int) (*graph.CSRShard, error) {
	slot := &v.blocks[p]
	if b := slot.ptr.Load(); b != nil {
		return b, nil
	}
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if b := slot.ptr.Load(); b != nil {
		return b, nil
	}
	v.r.shardFetches.Add(1)
	csr, err := v.r.engines[v.ownerOf[p]].ResolveShard(ctx, v.version, p)
	if err != nil {
		v.r.shardFetchErrors.Add(1)
		return nil, err
	}
	slot.ptr.Store(&csr)
	return &csr, nil
}

func (v *View) inNeighbors(ctx context.Context, nd graph.NodeID) ([]graph.NodeID, error) {
	b, err := v.block(ctx, int(uint32(nd)>>v.shift))
	if err != nil {
		return nil, err
	}
	l := uint32(nd) & (uint32(1)<<v.shift - 1)
	return b.InDst[b.InOff[l]:b.InOff[l+1]], nil
}

func (v *View) outNeighbors(ctx context.Context, nd graph.NodeID) ([]graph.NodeID, error) {
	b, err := v.block(ctx, int(uint32(nd)>>v.shift))
	if err != nil {
		return nil, err
	}
	l := uint32(nd) & (uint32(1)<<v.shift - 1)
	return b.OutDst[b.OutOff[l]:b.OutOff[l+1]], nil
}

// InNeighbors implements graph.View for shape readers outside the query
// path (stats, component scans run them through a bound view instead).
// Fetch failures surface as an empty list here — and as a counted
// fetch error on /metrics; queries MUST go through BindQuery, which turns
// the same failure into a query error.
func (v *View) InNeighbors(nd graph.NodeID) []graph.NodeID {
	ls, _ := v.inNeighbors(context.Background(), nd)
	return ls
}

// OutNeighbors implements graph.View; see InNeighbors.
func (v *View) OutNeighbors(nd graph.NodeID) []graph.NodeID {
	ls, _ := v.outNeighbors(context.Background(), nd)
	return ls
}

// InDegree implements graph.View.
func (v *View) InDegree(nd graph.NodeID) int { return len(v.InNeighbors(nd)) }

// OutDegree implements graph.View.
func (v *View) OutDegree(nd graph.NodeID) int { return len(v.OutNeighbors(nd)) }

// BindQuery implements core.QueryBinder: the per-query view carrying the
// query's context (lazy fetches and walk segments run under its
// deadline) and meter (a transport failure trips every kernel worker).
func (v *View) BindQuery(ctx context.Context, m *budget.Meter) (graph.View, func() error) {
	b := &BoundView{view: v, ctx: ctx, m: m}
	return b, b.finish
}

// BoundView is one query's handle on a View. It is what the kernels
// actually traverse in a distributed topology: same adjacency, plus the
// query's context on every fetch, the walk-segment delegation that keeps
// the RNG stream identical across topologies, and the error latch that
// turns a mid-query worker death into a prompt partial-result-with-error
// return instead of a hang.
type BoundView struct {
	view *View
	ctx  context.Context
	m    *budget.Meter

	mu  sync.Mutex
	err error
}

var _ graph.VersionedView = (*BoundView)(nil)

// fail latches the first engine failure and trips the query's meter so
// every worker drains at its next checkpoint.
func (b *BoundView) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
	b.m.Fail(err)
}

// finish reports the first engine failure the query absorbed.
func (b *BoundView) finish() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// NumNodes implements graph.View.
func (b *BoundView) NumNodes() int { return b.view.nodes }

// NumEdges implements graph.View.
func (b *BoundView) NumEdges() int64 { return b.view.edges }

// Version implements graph.VersionedView.
func (b *BoundView) Version() uint64 { return b.view.version }

// InNeighbors implements graph.View under the query's context.
func (b *BoundView) InNeighbors(nd graph.NodeID) []graph.NodeID {
	ls, err := b.view.inNeighbors(b.ctx, nd)
	if err != nil {
		b.fail(err)
	}
	return ls
}

// OutNeighbors implements graph.View under the query's context.
func (b *BoundView) OutNeighbors(nd graph.NodeID) []graph.NodeID {
	ls, err := b.view.outNeighbors(b.ctx, nd)
	if err != nil {
		b.fail(err)
	}
	return ls
}

// InDegree implements graph.View.
func (b *BoundView) InDegree(nd graph.NodeID) int { return len(b.InNeighbors(nd)) }

// OutDegree implements graph.View.
func (b *BoundView) OutDegree(nd graph.NodeID) int { return len(b.OutNeighbors(nd)) }

// WalkSegment implements walk.SegmentedView: the walk steps on the
// engine owning its current node, with the remaining budget propagated
// in the request header and the SplitMix64 state carried across
// engines. An engine failure ends the walk and latches the error.
func (b *BoundView) WalkSegment(cur graph.NodeID, state uint64, room int, sqrtC float64, buf []graph.NodeID) ([]graph.NodeID, uint64, bool) {
	v := b.view
	eng := v.r.engines[v.ownerOf[uint32(cur)>>v.shift]]
	before := len(buf)
	out, newState, status, err := eng.WalkSegment(b.ctx, v.version, b.m.Export(), sqrtC, cur, state, room, buf)
	if err != nil {
		b.fail(err)
		return out, state, true
	}
	v.r.walkSegments.Add(1)
	if status == SegmentHandoff {
		if len(out) == before {
			b.fail(fmt.Errorf("router: walk segment handoff without progress at node %d", cur))
			return out, newState, true
		}
		v.r.walkHandoffs.Add(1)
		return out, newState, false
	}
	return out, newState, true
}
