package router

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"probesim/internal/budget"
	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/shard"
	"probesim/internal/xrand"
)

// testOptions keeps the property tests fast while exercising the batched
// (ModeAuto) kernels: the walk count is overridden, determinism is not.
func testOptions(mode core.Mode) core.Options {
	return core.Options{Mode: mode, Seed: 7, NumWalks: 300}
}

func testGraph(n int, seed uint64) *graph.Graph {
	g := gen.PreferentialAttachment(n, 4, seed)
	return g
}

// mirrorOps applies the same edge batch to a plain store (the reference)
// and returns it for comparison publishes.
func applyToStore(t *testing.T, st *shard.Store, ops []Op) {
	t.Helper()
	for _, op := range ops {
		var err error
		if op.Remove {
			err = st.RemoveEdge(op.U, op.V)
		} else {
			err = st.AddEdge(op.U, op.V)
		}
		if err != nil {
			t.Fatalf("reference store: %v", err)
		}
	}
}

// randomOps derives a deterministic churn batch that only removes edges
// it previously added, so reference and router stay applyable.
func randomOps(rng *xrand.RNG, n int, added *[][2]graph.NodeID, count int) []Op {
	ops := make([]Op, 0, count)
	for len(ops) < count {
		if len(*added) > 0 && rng.Float64() < 0.3 {
			i := rng.Intn(len(*added))
			e := (*added)[i]
			(*added)[i] = (*added)[len(*added)-1]
			*added = (*added)[:len(*added)-1]
			ops = append(ops, Op{Remove: true, U: e[0], V: e[1]})
			continue
		}
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		ops = append(ops, Op{U: u, V: v})
		*added = append(*added, [2]graph.NodeID{u, v})
	}
	return ops
}

// assertIdentical runs single-source and top-k queries on both executors
// and requires bit-identical results.
func assertIdentical(t *testing.T, tag string, want, got *core.Executor, nodes []graph.NodeID) {
	t.Helper()
	ctx := context.Background()
	for _, u := range nodes {
		w, err := want.SingleSource(ctx, u)
		if err != nil {
			t.Fatalf("%s: reference query %d: %v", tag, u, err)
		}
		g, err := got.SingleSource(ctx, u)
		if err != nil {
			t.Fatalf("%s: routed query %d: %v", tag, u, err)
		}
		if len(w) != len(g) {
			t.Fatalf("%s: query %d: length %d vs %d", tag, u, len(w), len(g))
		}
		for v := range w {
			if w[v] != g[v] {
				t.Fatalf("%s: query %d: score[%d] = %v vs %v", tag, u, v, w[v], g[v])
			}
		}
		wk, err := want.TopK(ctx, u, 10)
		if err != nil {
			t.Fatalf("%s: reference top-k %d: %v", tag, u, err)
		}
		gk, err := got.TopK(ctx, u, 10)
		if err != nil {
			t.Fatalf("%s: routed top-k %d: %v", tag, u, err)
		}
		if len(wk) != len(gk) {
			t.Fatalf("%s: top-k %d: length %d vs %d", tag, u, len(wk), len(gk))
		}
		for i := range wk {
			if wk[i] != gk[i] {
				t.Fatalf("%s: top-k %d: rank %d: %+v vs %+v", tag, u, i, wk[i], gk[i])
			}
		}
	}
}

func TestLocalFastPathServesStoreSnapshot(t *testing.T) {
	st := shard.NewStore(testGraph(200, 1), 4, 0)
	rt := NewLocal(st)
	if rt.Distributed() {
		t.Fatal("single local engine should use the fast path")
	}
	if rt.PublishedView() != graph.VersionedView(st.Current()) {
		t.Fatal("fast path must serve the store's own snapshot")
	}
}

// TestBitIdenticalLocalEngines drives the generic router path with two
// in-process engines splitting shard ownership, against the direct store:
// every kernel result must be bit-identical, across shard counts and
// under churn.
func TestBitIdenticalLocalEngines(t *testing.T) {
	for _, shards := range []int{1, 2, 7} {
		for _, mode := range []core.Mode{core.ModeAuto, core.ModePruned} {
			t.Run(fmt.Sprintf("shards=%d/mode=%v", shards, mode), func(t *testing.T) {
				g := testGraph(500, 3)
				ref := shard.NewStore(g, shards, 0)
				stA := shard.NewStore(g, shards, 0)
				stB := shard.NewStore(g, shards, 0)
				rt, err := New(NewLocalEngine(stA, 0, 2), NewLocalEngine(stB, 1, 2))
				if err != nil {
					t.Fatal(err)
				}
				if !rt.Distributed() {
					t.Fatal("two engines must use the generic path")
				}
				opt := testOptions(mode)
				want := core.NewExecutorOn(ref, opt)
				got := core.NewExecutorOn(rt, opt)
				nodes := []graph.NodeID{0, 7, 131, 499}
				assertIdentical(t, "static", want, got, nodes)

				// Churn: apply identical batches to the reference and through
				// the router, republish, re-verify.
				rng := xrand.New(99)
				var added [][2]graph.NodeID
				for round := 0; round < 3; round++ {
					ops := randomOps(rng, 500, &added, 20)
					applyToStore(t, ref, ops)
					ref.Publish()
					if err := rt.Apply(context.Background(), ops); err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					if _, err := rt.PublishView(context.Background()); err != nil {
						t.Fatalf("round %d publish: %v", round, err)
					}
					assertIdentical(t, fmt.Sprintf("churn-%d", round), want, got, nodes[:2])
				}
			})
		}
	}
}

// startWorker serves a fresh store over a real TCP socket and returns the
// remote engine plus the serving stack for fault injection.
func startWorker(t *testing.T, g *graph.Graph, shards, index, group int) (*RemoteEngine, *Server, *LocalEngine) {
	t.Helper()
	st := shard.NewStore(g, shards, 0)
	le := NewLocalEngine(st, index, group)
	srv := NewServer(le)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	re := NewRemoteEngine(ln.Addr().String())
	t.Cleanup(func() { re.Close() })
	return re, srv, le
}

// TestBitIdenticalOverRPC is the acceptance property: the same graph,
// seed and query answered by the direct store and by a router talking to
// real probesim-shardd-style workers over TCP must agree bit for bit —
// across shard counts {1, 2, 7} and under churn.
func TestBitIdenticalOverRPC(t *testing.T) {
	if testing.Short() {
		t.Skip("sockets + many RPC round trips")
	}
	for _, shards := range []int{1, 2, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			g := testGraph(400, 5)
			ref := shard.NewStore(g, shards, 0)
			reA, _, _ := startWorker(t, g, shards, 0, 2)
			reB, _, _ := startWorker(t, g, shards, 1, 2)
			rt, err := New(reA, reB)
			if err != nil {
				t.Fatal(err)
			}
			opt := testOptions(core.ModeAuto)
			want := core.NewExecutorOn(ref, opt)
			got := core.NewExecutorOn(rt, opt)
			nodes := []graph.NodeID{0, 42, 399}
			assertIdentical(t, "static", want, got, nodes)

			rng := xrand.New(17)
			var added [][2]graph.NodeID
			for round := 0; round < 2; round++ {
				ops := randomOps(rng, 400, &added, 12)
				applyToStore(t, ref, ops)
				ref.Publish()
				if err := rt.Apply(context.Background(), ops); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if _, err := rt.PublishView(context.Background()); err != nil {
					t.Fatalf("round %d publish: %v", round, err)
				}
				assertIdentical(t, fmt.Sprintf("churn-%d", round), want, got, nodes[:1])
			}
			if err := rt.CheckHealth(context.Background()); err != nil {
				t.Fatalf("health: %v", err)
			}
			for _, ws := range rt.WorkerStats() {
				if !ws.Healthy || ws.Calls == 0 {
					t.Fatalf("worker stats: %+v", ws)
				}
			}
			c := rt.Counters()
			if c.ShardFetches == 0 || c.WalkBatches == 0 || c.WalkDelegated == 0 {
				t.Fatalf("counters did not move: %+v", c)
			}
			if c.WalkLocalSegments == 0 {
				t.Fatalf("router stepped no walks over cached blocks: %+v", c)
			}
			if c.ShardBatches == 0 {
				t.Fatalf("no batched shard materialization: %+v", c)
			}
			if shards >= 2 && c.WalkHandoffs == 0 {
				t.Fatalf("expected cross-engine walk handoffs with %d shards: %+v", shards, c)
			}
		})
	}
}

// failingEngine wraps an engine and fails every call after the fuse
// burns: the deterministic stand-in for a worker crashing mid-query.
type failingEngine struct {
	*LocalEngine
	fuse int
}

func (f *failingEngine) ResolveShard(ctx context.Context, version uint64, p int) (graph.CSRShard, error) {
	if f.fuse--; f.fuse < 0 {
		return graph.CSRShard{}, fmt.Errorf("%w: injected crash", ErrTransport)
	}
	return f.LocalEngine.ResolveShard(ctx, version, p)
}

func (f *failingEngine) WalkSegment(ctx context.Context, version uint64, h budget.Header, sqrtC float64, cur graph.NodeID, state uint64, room int, buf []graph.NodeID) ([]graph.NodeID, uint64, SegmentStatus, error) {
	if f.fuse < 0 {
		return buf, state, SegmentEnded, fmt.Errorf("%w: injected crash", ErrTransport)
	}
	return f.LocalEngine.WalkSegment(ctx, version, h, sqrtC, cur, state, room, buf)
}

func (f *failingEngine) ResolveShards(ctx context.Context, version uint64, ps []int) ([]graph.CSRShard, error) {
	if f.fuse--; f.fuse < 0 {
		return nil, fmt.Errorf("%w: injected crash", ErrTransport)
	}
	return f.LocalEngine.ResolveShards(ctx, version, ps)
}

func (f *failingEngine) WalkBatch(ctx context.Context, version uint64, h budget.Header, sqrtC float64, walks []WalkStart) ([]WalkResult, error) {
	if f.fuse--; f.fuse < 0 {
		return nil, fmt.Errorf("%w: injected crash", ErrTransport)
	}
	return f.LocalEngine.WalkBatch(ctx, version, h, sqrtC, walks)
}

// TestEngineFailureMidQuery proves the partial-result-with-error
// contract on the deterministic in-process path: once an engine starts
// failing, the query returns promptly with an error chain that unwraps
// to ErrTransport.
func TestEngineFailureMidQuery(t *testing.T) {
	g := testGraph(500, 11)
	stA := shard.NewStore(g, 7, 0)
	stB := shard.NewStore(g, 7, 0)
	fe := &failingEngine{LocalEngine: NewLocalEngine(stB, 1, 2), fuse: 1}
	rt, err := New(NewLocalEngine(stA, 0, 2), fe)
	if err != nil {
		t.Fatal(err)
	}
	ex := core.NewExecutorOn(rt, testOptions(core.ModeAuto))
	_, err = ex.SingleSource(context.Background(), 3)
	if err == nil {
		t.Fatal("query over a failing engine must error")
	}
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("error chain must unwrap to ErrTransport, got %v", err)
	}
}

// TestWorkerKilledMidQuery is the socket-level acceptance criterion: a
// query against a router whose worker dies mid-flight returns a wrapped
// transport error well within the query deadline, instead of hanging.
func TestWorkerKilledMidQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("sockets")
	}
	g := testGraph(600, 13)
	ref := shard.NewStore(g, 4, 0) // local engine serving half the shards
	reB, srvB, _ := startWorker(t, g, 4, 1, 2)
	rt, err := New(NewLocalEngine(ref, 0, 2), reB)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions(core.ModeAuto)
	opt.NumWalks = 500000 // long enough that the kill lands mid-query
	opt.Budget.Timeout = 30 * time.Second
	ex := core.NewExecutorOn(rt, opt)

	type result struct {
		err     error
		elapsed time.Duration
	}
	done := make(chan result, 1)
	start := time.Now()
	go func() {
		_, err := ex.SingleSource(context.Background(), 1)
		done <- result{err, time.Since(start)}
	}()
	time.Sleep(50 * time.Millisecond)
	srvB.Close() // kill the worker mid-query

	select {
	case res := <-done:
		if res.err == nil {
			t.Fatal("query must fail after its worker died")
		}
		if !errors.Is(res.err, ErrTransport) {
			t.Fatalf("want ErrTransport in chain, got %v", res.err)
		}
		if res.elapsed > 10*time.Second {
			t.Fatalf("query took %v to notice the dead worker", res.elapsed)
		}
	case <-time.After(25 * time.Second):
		t.Fatal("query hung after its worker died")
	}
}

// TestDeadlinePropagationStopsRemoteWalkLoop is the second acceptance
// criterion: a budget deadline propagated in the request header stops the
// walk loop on the worker itself (observed via the engine's
// segments-stopped counter), not just on the router.
func TestDeadlinePropagationStopsRemoteWalkLoop(t *testing.T) {
	g := gen.Cycle(512) // walks on a cycle only end by survival draw or budget
	re, _, le := startWorker(t, g, 4, 0, 1)
	meta, err := re.Meta(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	h := budget.Header{Remaining: time.Nanosecond} // expired before arrival
	nodes, _, status, err := re.WalkSegment(context.Background(), meta.Version, h, 0.9999, 5, 42, 95, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != SegmentStopped {
		t.Fatalf("want SegmentStopped, got %d with %d nodes", status, len(nodes))
	}
	if got := le.SegmentsStopped(); got == 0 {
		t.Fatal("worker-side stopped-segment counter did not move")
	}
	// Control: the same walk with a live budget runs.
	h = budget.Header{Remaining: time.Minute}
	nodes, _, status, err = re.WalkSegment(context.Background(), meta.Version, h, 0.9999, 5, 42, 95, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != SegmentEnded || len(nodes) == 0 {
		t.Fatalf("control walk: status %d, %d nodes", status, len(nodes))
	}
}

// TestCallerDeadlineNotBlamedOnWorker: a call cut short by the CALLER's
// context must classify as the context's error (504/499 upstream), not
// as a worker transport failure — and must not mark the healthy worker
// down or open its backoff window.
func TestCallerDeadlineNotBlamedOnWorker(t *testing.T) {
	g := testGraph(100, 61)
	re, _, _ := startWorker(t, g, 4, 0, 1)
	meta, err := re.Meta(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err = re.ResolveShard(ctx, meta.Version, 0)
	if err == nil {
		t.Fatal("expired context must fail the call")
	}
	if errors.Is(err, ErrTransport) {
		t.Fatalf("caller's deadline misclassified as worker transport failure: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded in chain, got %v", err)
	}
	if !re.Healthy() {
		t.Fatal("healthy worker marked down by a caller's deadline")
	}
	if _, err := re.ResolveShard(context.Background(), meta.Version, 0); err != nil {
		t.Fatalf("worker unusable after a caller timeout (backoff wrongly opened): %v", err)
	}
}

// TestQueryDeadlineOverRouter: an end-to-end expired deadline over the
// generic path surfaces as context.DeadlineExceeded with a partial
// result, exactly like the in-process path.
func TestQueryDeadlineOverRouter(t *testing.T) {
	g := testGraph(400, 23)
	stA := shard.NewStore(g, 4, 0)
	stB := shard.NewStore(g, 4, 0)
	rt, err := New(NewLocalEngine(stA, 0, 2), NewLocalEngine(stB, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions(core.ModeAuto)
	opt.NumWalks = 2000000
	ex := core.NewExecutorOn(rt, opt)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = ex.SingleSource(ctx, 1)
	if err == nil {
		t.Fatal("want deadline error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("deadline honored after %v", el)
	}
}

// TestGenerationRetirement: a view older than the engines' retention ring
// fails cleanly with ErrRetiredGeneration instead of reading a torn mix
// of generations.
func TestGenerationRetirement(t *testing.T) {
	g := testGraph(300, 31)
	stA := shard.NewStore(g, 8, 0)
	stB := shard.NewStore(g, 8, 0)
	rt, err := New(NewLocalEngine(stA, 0, 2), NewLocalEngine(stB, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	old := rt.PublishedView()
	// Publish well past the retention ring. Touch a DIFFERENT node's shard
	// each round so every shard the old view later asks for was re-encoded.
	for i := 0; i < 3*genRetain; i++ {
		u := graph.NodeID(i % 300)
		v := graph.NodeID((i + 7) % 300)
		if u == v {
			continue
		}
		if err := rt.Apply(context.Background(), []Op{{U: u, V: v}}); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.PublishView(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	opt := testOptions(core.ModeAuto)
	ex := core.NewExecutorOn(rt, opt)
	// Fresh view still works.
	if _, err := ex.SingleSource(context.Background(), 2); err != nil {
		t.Fatalf("current view: %v", err)
	}
	// The old view's blocks were never fetched; fetching now must fail
	// with the retirement error through the core error chain.
	_, err = ex.SingleSourceOn(context.Background(), old, 2)
	if err == nil {
		t.Skip("old generation still resolvable (all its shards retained)")
	}
	if !errors.Is(err, ErrRetiredGeneration) {
		t.Fatalf("want ErrRetiredGeneration, got %v", err)
	}
}

// TestApplyRollback: a failing batch leaves every engine untouched.
func TestApplyRollback(t *testing.T) {
	g := testGraph(100, 41)
	stA := shard.NewStore(g, 4, 0)
	stB := shard.NewStore(g, 4, 0)
	rt, err := New(NewLocalEngine(stA, 0, 2), NewLocalEngine(stB, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	edgesBefore := stA.NumEdges()
	ops := []Op{
		{U: 1, V: 2},
		{U: 3, V: 4},
		{Remove: true, U: 98, V: 97}, // almost certainly absent
	}
	if stErr := rt.Apply(context.Background(), ops); stErr == nil {
		t.Skip("edge 98->97 existed; batch applied cleanly")
	}
	if stA.NumEdges() != edgesBefore || stB.NumEdges() != edgesBefore {
		t.Fatalf("rollback left edge counts %d/%d, want %d", stA.NumEdges(), stB.NumEdges(), edgesBefore)
	}
	if err := stA.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := stB.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestProgressiveIdenticalOverRouter covers the progressive top-k kernel
// over the generic path.
func TestProgressiveIdenticalOverRouter(t *testing.T) {
	g := testGraph(400, 53)
	ref := shard.NewStore(g, 4, 0)
	stA := shard.NewStore(g, 4, 0)
	stB := shard.NewStore(g, 4, 0)
	rt, err := New(NewLocalEngine(stA, 0, 2), NewLocalEngine(stB, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions(core.ModePruned)
	want, wantStats, err := core.TopKProgressive(context.Background(), ref.Current(), 9, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, gotStats, err := core.TopKProgressive(context.Background(), rt.PublishedView(), 9, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	if wantStats != gotStats {
		t.Fatalf("stats %+v vs %+v", wantStats, gotStats)
	}
	if len(want) != len(got) {
		t.Fatalf("lengths %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, want[i], got[i])
		}
	}
}
