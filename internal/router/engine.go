// Package router is the distributed shard plane: it serves every ProbeSim
// kernel over shards that may live in other processes, without any kernel
// knowing.
//
// The seam is ShardEngine, the transport-agnostic API of one shard
// server. It carries exactly the per-shard primitives the kernels need —
// report version and shape (Meta), resolve a shard's adjacency spans
// (ResolveShard), sample √c-walk segments (WalkSegment) — plus the write
// plane (Apply, Publish) that keeps a worker's graph in lockstep with the
// topology. Two implementations exist: LocalEngine wraps an in-process
// shard.Store (today's fast path — a Router over a single all-owning
// LocalEngine serves the store's own published snapshot, zero new
// allocations on the hot path), and RemoteEngine speaks the
// length-prefixed binary protocol of internal/rpcwire over TCP to a
// probesim-shardd worker.
//
// A Router fans a query out to shard owners by the same power-of-two
// node stride internal/shard partitions with: shard adjacency blocks
// fault in lazily as the query's walk/probe frontier first touches them
// (and are cached for the generation), and walk segments run on the
// engine owning the walk's current node, hopping engines at shard
// crossings with the SplitMix64 state carried along — which is what keeps
// results bit-identical between a single process and a fleet of workers.
// The Router plugs into core.Executor through the SnapshotProvider seam,
// so single-source, top-k, progressive, join and component queries run
// unchanged over either engine.
//
// Failure semantics: every remote call is bounded by the query's deadline
// (propagated in the request's budget header) and by a call timeout. A
// worker dying mid-query trips the query's budget meter with the
// transport error — every kernel worker drains at its next checkpoint and
// the query returns its partial result wrapped in an error chain that
// errors.Is recognizes as ErrTransport. Partial-result-with-error
// semantics are therefore preserved across the wire.
package router

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"probesim/internal/budget"
	"probesim/internal/graph"
	"probesim/internal/qtrace"
	"probesim/internal/shard"
	"probesim/internal/wal"
	"probesim/internal/walk"
	"probesim/internal/xrand"
)

// ErrTransport marks engine failures caused by the transport (dial,
// connection, timeout) rather than by the request: the worker is gone or
// unreachable, not wrong. errors.Is(err, ErrTransport) holds through
// every wrapping layer up to the query result.
var ErrTransport = errors.New("router: worker transport failure")

// ErrRetiredGeneration reports that an engine no longer retains the
// snapshot generation a request pinned. Queries see it only when they
// outlive genRetain publications; the next published view re-pins.
var ErrRetiredGeneration = errors.New("router: snapshot generation retired")

// ErrUnavailable reports that an engine could not take a write RIGHT NOW
// for a reason that is neither the request's fault nor the transport's —
// canonically a write-ahead-log append failure (disk full, fsync error)
// that was annulled before anything was applied. Like a transport
// failure it is retry-safe (the batch id was not consumed) and must
// never trigger a fleet rollback; unlike one it says nothing about the
// worker's liveness. It crosses the RPC boundary as its own error code.
var ErrUnavailable = errors.New("router: worker temporarily unavailable")

// Meta is an engine's published shape: what the Router needs to assemble
// (and validate) a composite view without touching any adjacency.
type Meta struct {
	Nodes   int
	Edges   int64
	Version uint64
	// LastBatch is the engine's durable apply-once watermark: the highest
	// batch id its store has decided. The router seeds its batch counter
	// from the fleet maximum, so ids stay monotonic across router
	// restarts (the routing tier itself keeps no durable state).
	LastBatch uint64
	Shift     uint32 // node stride is 1 << Shift
	Shards    int
	Owned     []int // shard ids this engine serves, ascending
}

// Op is one edge mutation for the engine write plane.
type Op struct {
	Remove bool
	U, V   graph.NodeID
}

// WalkStart is one walk of a WalkBatch call: continue a √c-walk whose
// current node is Cur, drawing from the SplitMix64 stream at State,
// appending at most Room nodes.
type WalkStart struct {
	Cur   graph.NodeID
	State uint64
	Room  int
}

// WalkResult is one walk's outcome from a WalkBatch call: the nodes the
// segment appended, the stream state after them, and how it ended.
type WalkResult struct {
	Nodes  []graph.NodeID
	State  uint64
	Status SegmentStatus
}

// SegmentStatus reports how a walk segment ended.
type SegmentStatus uint8

const (
	// SegmentEnded: the walk terminated (survival draw, dead end, or the
	// caller's room was exhausted).
	SegmentEnded SegmentStatus = iota
	// SegmentHandoff: the walk stepped into a shard this engine does not
	// own; the caller must continue it on the owner of the last node.
	SegmentHandoff
	// SegmentStopped: the propagated budget stopped the engine-side walk
	// loop (deadline or cap from the request header).
	SegmentStopped
)

// ShardEngine is the transport-agnostic API of one shard server.
//
// Version arguments pin a snapshot generation: engines retain the last
// genRetain published generations (publications are cheap to retain —
// untouched shard CSRs are shared by reference), so a query keeps reading
// the exact generation its view was assembled from even while churn
// publishes newer ones. All methods are safe for concurrent use.
type ShardEngine interface {
	// Meta reports the engine's published shape and pins the current
	// generation in its retention ring.
	Meta(ctx context.Context) (Meta, error)

	// Ping reports the engine's published snapshot version and durable
	// apply-once watermark WITHOUT pinning a generation: the cheap probe
	// behind the background health loop and replica catch-up. It must be
	// answerable even while the engine is lagging or mid-recovery.
	Ping(ctx context.Context) (version, lastBatch uint64, err error)

	// ResolveShard returns shard p's CSR adjacency block at the pinned
	// generation. The block is immutable; local engines return it by
	// reference, remote engines decode it off the wire.
	ResolveShard(ctx context.Context, version uint64, p int) (graph.CSRShard, error)

	// WalkSegment continues a √c-walk at the pinned generation: starting
	// from cur (owned by this engine) with the walk RNG at state, it
	// appends at most room nodes to buf and returns the extended buffer,
	// the RNG state after the segment, and how the segment ended. The
	// budget header bounds the engine-side loop.
	WalkSegment(ctx context.Context, version uint64, h budget.Header, sqrtC float64, cur graph.NodeID, state uint64, room int, buf []graph.NodeID) ([]graph.NodeID, uint64, SegmentStatus, error)

	// WalkBatch continues N independent walks in one call — semantically
	// N WalkSegment calls (each walk draws only from its own state, so
	// results are bit-identical to the per-walk form), but one round trip
	// on a remote engine. Results come back in request order. Engines
	// without the batch capability emulate it with per-walk calls.
	WalkBatch(ctx context.Context, version uint64, h budget.Header, sqrtC float64, walks []WalkStart) ([]WalkResult, error)

	// ResolveShards resolves several owned shards' CSR blocks at the
	// pinned generation in one call, in request order — the batched form
	// of ResolveShard behind composite-view materialization.
	ResolveShards(ctx context.Context, version uint64, ps []int) ([]graph.CSRShard, error)

	// Apply applies a batch of edge mutations atomically (all-or-rollback)
	// to the engine's mutable graph and returns the post-apply mutation
	// version. Visibility waits for the next Publish.
	//
	// batch identifies the mutation for apply-once semantics: an engine
	// applies each non-zero id at most once, so re-sending a batch whose
	// reply was lost in transit is safe — the engine that already holds
	// it no-ops, the one that never saw it applies. Durable engines
	// append the batch to their write-ahead log before applying. batch 0
	// means un-identified (not retry-safe, not logged with an id).
	Apply(ctx context.Context, batch uint64, ops []Op) (uint64, error)

	// Publish republishes the engine's snapshot if mutations are pending
	// and reports the resulting Meta.
	Publish(ctx context.Context) (Meta, error)

	// Close releases transport resources. The engine is unusable after.
	Close() error
}

// genRetain is how many published generations an engine keeps strongly
// reachable for version-pinned requests. Beyond it, a reader that slept
// through genRetain publications gets ErrRetiredGeneration and the query
// fails cleanly rather than reading a torn view.
const genRetain = 8

// generationRing retains the last genRetain published snapshots.
type generationRing struct {
	mu    sync.Mutex
	snaps []*shard.StoreSnapshot // ascending publication order
}

func (g *generationRing) pin(s *shard.StoreSnapshot) {
	if s == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, have := range g.snaps {
		if have == s {
			return
		}
	}
	g.snaps = append(g.snaps, s)
	if len(g.snaps) > genRetain {
		g.snaps = g.snaps[len(g.snaps)-genRetain:]
	}
}

func (g *generationRing) at(version uint64) *shard.StoreSnapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, s := range g.snaps {
		if s.Version() == version {
			return s
		}
	}
	return nil
}

// LocalEngine serves a shard.Store in process: the fast path of the shard
// plane and the backend of every probesim-shardd worker. Ownership is
// modular — an engine constructed with (index, group) owns every shard p
// with p % group == index — so a fleet of workers started with the same
// group and distinct indices covers the shard space exactly once, and
// ownership survives shard-set growth.
type LocalEngine struct {
	st    *shard.Store
	index int
	group int
	gens  generationRing

	// wmu serializes the write plane (Apply) so the watermark check, the
	// WAL append and the store apply are one atomic step with respect to
	// other Apply calls.
	wmu sync.Mutex
	// wal, when set (SetWAL), receives every identified batch BEFORE it
	// is applied: the worker's durability point.
	wal *wal.Log

	// segmentsStopped counts engine-side walk loops stopped by a
	// propagated budget — the observable fact that remote deadlines
	// actually reach the walk loop.
	segmentsStopped atomic.Int64

	// walkObserver, when set (SetWalkObserver), sees the entry node of
	// every walk delegated to this engine — the worker-side popularity
	// signal feeding a warm-standby hot-source tier.
	walkObserver func(graph.NodeID)
}

// NewLocalEngine wraps st as a shard engine owning shards p with
// p % group == index. group <= 1 means the engine owns everything.
//
// A scoped store (shard.NewStoreScoped) only holds data for its own
// stride, so the engine's ownership must match the store's scope
// exactly — a mismatch would read absent shards as empty adjacency and
// silently truncate walks. That configuration error is caught here.
func NewLocalEngine(st *shard.Store, index, group int) *LocalEngine {
	if group < 1 {
		group = 1
	}
	if index < 0 || index >= group {
		panic(fmt.Sprintf("router: engine index %d outside group of %d", index, group))
	}
	if si, sg := st.Scope(); sg > 1 && (si != index || sg != group) {
		panic(fmt.Sprintf("router: engine scope %d/%d does not match store scope %d/%d", index, group, si, sg))
	}
	return &LocalEngine{st: st, index: index, group: group}
}

// Store returns the underlying shard store (for the worker's stats).
func (e *LocalEngine) Store() *shard.Store { return e.st }

// SetWAL arms the engine's durability point: every identified batch is
// appended to lg before it is applied, so an Apply the engine
// acknowledged survives a worker crash (cmd/probesim-shardd recovers it
// on boot and the fleet converges). Call before serving.
func (e *LocalEngine) SetWAL(lg *wal.Log) { e.wal = lg }

// SetWalkObserver arms a per-walk callback: fn receives the entry node
// of every walk the router delegates here (WalkBatch and WalkSegment).
// Entry nodes are a shard-local approximation of source popularity — a
// hot source's walks enter its owners' shards over and over — so a
// worker can run a warm-standby hot-source tier without seeing the HTTP
// query stream. fn runs on the RPC serving path: keep it cheap. Call
// before serving; not safe to swap concurrently with walks.
func (e *LocalEngine) SetWalkObserver(fn func(graph.NodeID)) { e.walkObserver = fn }

// SegmentsStopped reports how many walk segments the propagated budget
// stopped on this engine.
func (e *LocalEngine) SegmentsStopped() int64 { return e.segmentsStopped.Load() }

func (e *LocalEngine) owns(p int) bool { return p%e.group == e.index }

// checkShard validates one shard access against ownership and — on a
// scoped snapshot — against data presence. The presence check is the
// last line of defense against a scope mismatch: an absent shard's CSR
// decodes as all-empty adjacency, which would silently truncate walks
// instead of failing.
func (e *LocalEngine) checkShard(snap *shard.StoreSnapshot, p int) error {
	if p < 0 || p >= snap.NumShards() {
		return fmt.Errorf("router: shard %d out of range [0, %d)", p, snap.NumShards())
	}
	if !e.owns(p) {
		return fmt.Errorf("router: shard %d not owned by engine %d/%d", p, e.index, e.group)
	}
	if snap.Scoped() && !snap.ShardPresent(p) {
		return fmt.Errorf("router: shard %d absent from scoped store %d/%d", p, e.index, e.group)
	}
	return nil
}

func (e *LocalEngine) meta(snap *shard.StoreSnapshot) Meta {
	m := Meta{
		Nodes:     snap.NumNodes(),
		Edges:     snap.NumEdges(),
		Version:   snap.Version(),
		LastBatch: e.st.LastBatch(),
		Shift:     snap.Shift(),
		Shards:    snap.NumShards(),
	}
	for p := e.index; p < m.Shards; p += e.group {
		m.Owned = append(m.Owned, p)
	}
	return m
}

// Meta implements ShardEngine.
func (e *LocalEngine) Meta(ctx context.Context) (Meta, error) {
	snap := e.st.Current()
	e.gens.pin(snap)
	return e.meta(snap), nil
}

// Ping implements ShardEngine: version + watermark, no generation pin.
func (e *LocalEngine) Ping(ctx context.Context) (uint64, uint64, error) {
	var version uint64
	if snap := e.st.Current(); snap != nil {
		version = snap.Version()
	}
	return version, e.st.LastBatch(), nil
}

// snapshotAt resolves the pinned generation for version.
func (e *LocalEngine) snapshotAt(version uint64) (*shard.StoreSnapshot, error) {
	if cur := e.st.Current(); cur != nil && cur.Version() == version {
		return cur, nil
	}
	if s := e.gens.at(version); s != nil {
		return s, nil
	}
	return nil, fmt.Errorf("%w: version %d", ErrRetiredGeneration, version)
}

// ResolveShard implements ShardEngine.
func (e *LocalEngine) ResolveShard(ctx context.Context, version uint64, p int) (graph.CSRShard, error) {
	snap, err := e.snapshotAt(version)
	if err != nil {
		return graph.CSRShard{}, err
	}
	if err := e.checkShard(snap, p); err != nil {
		return graph.CSRShard{}, err
	}
	return snap.Shard(p), nil
}

// ResolveShards implements ShardEngine: ResolveShard over one pinned
// generation for every requested shard.
func (e *LocalEngine) ResolveShards(ctx context.Context, version uint64, ps []int) ([]graph.CSRShard, error) {
	snap, err := e.snapshotAt(version)
	if err != nil {
		return nil, err
	}
	out := make([]graph.CSRShard, len(ps))
	for i, p := range ps {
		if err := e.checkShard(snap, p); err != nil {
			return nil, err
		}
		out[i] = snap.Shard(p)
	}
	return out, nil
}

// walkSegmentPollInterval is the per-step budget poll cadence of the
// engine-side walk loop. Segments are at most walk.HardCap steps, so a
// small interval keeps a propagated deadline's detection latency at a few
// steps without measurable cost.
const walkSegmentPollInterval = 8

// WalkSegment implements ShardEngine: the engine-side √c-walk loop. It
// runs the exact step loop of walk.Generate (walk.Segment) over the
// pinned generation's devirtualized adjacency, bounded to owned shards
// and checkpointed against the propagated budget.
func (e *LocalEngine) WalkSegment(ctx context.Context, version uint64, h budget.Header, sqrtC float64, cur graph.NodeID, state uint64, room int, buf []graph.NodeID) ([]graph.NodeID, uint64, SegmentStatus, error) {
	snap, err := e.snapshotAt(version)
	if err != nil {
		return buf, state, SegmentEnded, err
	}
	if cur < 0 || int(cur) >= snap.NumNodes() {
		return buf, state, SegmentEnded, fmt.Errorf("router: walk node %d out of range [0, %d)", cur, snap.NumNodes())
	}
	shift := snap.Shift()
	if err := e.checkShard(snap, int(uint32(cur)>>shift)); err != nil {
		return buf, state, SegmentEnded, fmt.Errorf("router: walk node %d: %w", cur, err)
	}
	if e.walkObserver != nil {
		e.walkObserver(cur)
	}
	m := h.Arm(ctx)
	cp := budget.NewCheckpoint(m, walkSegmentPollInterval)
	rng := xrand.New(state)
	adj := graph.ResolveAdj(snap)
	var owns func(graph.NodeID) bool
	if e.group > 1 {
		owns = func(v graph.NodeID) bool { return e.owns(int(uint32(v) >> shift)) }
	}
	var stop func() bool
	if m != nil {
		stop = cp.Stop
	}
	tr, parent := qtrace.FromContext(ctx)
	ref := tr.StartSpan("walk.steps", parent)
	before := len(buf)
	out, ended := walk.Segment(&adj, cur, room, sqrtC, rng, owns, stop, buf)
	status := SegmentHandoff
	switch {
	case m.Stopped():
		status = SegmentStopped
		e.segmentsStopped.Add(1)
	case ended:
		status = SegmentEnded
	case len(out) == before:
		// A handoff with no progress means the caller routed the walk to
		// the wrong engine; surface it instead of looping forever.
		tr.EndSpanAnnot(ref, "outcome=noprogress")
		return out, rng.State(), SegmentEnded, fmt.Errorf("router: walk segment made no progress at node %d", cur)
	}
	if tr != nil {
		tr.EndSpanAnnot(ref, fmt.Sprintf("nodes=%d,status=%d", len(out)-before, status))
	}
	return out, rng.State(), status, nil
}

// WalkBatch implements ShardEngine: the engine-side loop of WalkSegment
// run once per requested walk over a single pinned generation, resolved
// adjacency and armed budget meter — N walks, one snapshot pin, one
// meter, one (remote) round trip.
func (e *LocalEngine) WalkBatch(ctx context.Context, version uint64, h budget.Header, sqrtC float64, walks []WalkStart) ([]WalkResult, error) {
	snap, err := e.snapshotAt(version)
	if err != nil {
		return nil, err
	}
	shift := snap.Shift()
	n := snap.NumNodes()
	m := h.Arm(ctx)
	cp := budget.NewCheckpoint(m, walkSegmentPollInterval)
	adj := graph.ResolveAdj(snap)
	var owns func(graph.NodeID) bool
	if e.group > 1 {
		owns = func(v graph.NodeID) bool { return e.owns(int(uint32(v) >> shift)) }
	}
	var stop func() bool
	if m != nil {
		stop = cp.Stop
	}
	tr, parent := qtrace.FromContext(ctx)
	ref := tr.StartSpan("walk.steps", parent)
	out := make([]WalkResult, len(walks))
	var rng xrand.RNG
	appended := 0
	for i, w := range walks {
		if w.Cur < 0 || int(w.Cur) >= n {
			tr.EndSpanAnnot(ref, "outcome=badnode")
			return nil, fmt.Errorf("router: walk node %d out of range [0, %d)", w.Cur, n)
		}
		if err := e.checkShard(snap, int(uint32(w.Cur)>>shift)); err != nil {
			tr.EndSpanAnnot(ref, "outcome=notowned")
			return nil, fmt.Errorf("router: walk node %d: %w", w.Cur, err)
		}
		if e.walkObserver != nil {
			e.walkObserver(w.Cur)
		}
		if m.Stopped() {
			// The budget tripped mid-batch: the rest of the walks report
			// stopped without stepping, exactly as per-walk calls would.
			out[i] = WalkResult{State: w.State, Status: SegmentStopped}
			continue
		}
		rng.SetState(w.State)
		nodes, ended := walk.Segment(&adj, w.Cur, w.Room, sqrtC, &rng, owns, stop, nil)
		status := SegmentHandoff
		switch {
		case m.Stopped():
			status = SegmentStopped
			e.segmentsStopped.Add(1)
		case ended:
			status = SegmentEnded
		case len(nodes) == 0:
			tr.EndSpanAnnot(ref, "outcome=noprogress")
			return nil, fmt.Errorf("router: walk segment made no progress at node %d", w.Cur)
		}
		out[i] = WalkResult{Nodes: nodes, State: rng.State(), Status: status}
		appended += len(nodes)
	}
	if tr != nil {
		tr.EndSpanAnnot(ref, fmt.Sprintf("walks=%d,nodes=%d", len(walks), appended))
	}
	return out, nil
}

// Apply implements ShardEngine: all-or-rollback edge mutations with
// apply-once semantics per batch id. With a WAL armed (SetWAL) the batch
// is durable before it is applied — append-then-apply — so a crash
// between the reply being lost and the worker dying still leaves the
// batch recoverable, and the router's retry converges instead of
// double-applying.
func (e *LocalEngine) Apply(ctx context.Context, batch uint64, ops []Op) (uint64, error) {
	tr, parent := qtrace.FromContext(ctx)
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if batch != 0 && batch <= e.st.LastBatch() {
		// Retry of a decided batch (the reply was lost, not the apply):
		// acknowledge without touching the graph.
		return e.st.Version(), nil
	}
	if e.wal != nil {
		wref := tr.StartSpan("wal.append", parent)
		wops := make([]wal.Op, len(ops))
		for i, op := range ops {
			wops[i] = wal.Op{Remove: op.Remove, U: op.U, V: op.V}
		}
		id, err := e.wal.Append(batch, wops)
		if err != nil {
			// The append was annulled (or the log fail-stopped): nothing
			// was applied and the id was not consumed, so the router may
			// retry the same batch — NOT a semantic rejection, which would
			// roll the healthy rest of the fleet back.
			tr.EndSpanAnnot(wref, "outcome=error")
			return e.st.Version(), fmt.Errorf("%w: wal append: %v", ErrUnavailable, err)
		}
		tr.EndSpan(wref)
		// Decide under the id the log actually recorded — for batch 0 the
		// log self-assigned it, and the log and the store watermark must
		// name the same batch or crash replay diverges.
		batch = id
	}
	aref := tr.StartSpan("store.apply", parent)
	sops := make([]shard.EdgeOp, len(ops))
	for i, op := range ops {
		sops[i] = shard.EdgeOp{Remove: op.Remove, U: op.U, V: op.V}
	}
	v, err := e.st.ApplyBatch(batch, sops)
	tr.EndSpan(aref)
	return v, err
}

// Publish implements ShardEngine.
func (e *LocalEngine) Publish(ctx context.Context) (Meta, error) {
	snap, err := e.st.PublishCtx(ctx)
	if err != nil {
		return Meta{}, err
	}
	e.gens.pin(snap)
	return e.meta(snap), nil
}

// Close implements ShardEngine; a local engine holds no transport.
func (e *LocalEngine) Close() error { return nil }
