// Package server implements the HTTP similarity-search service behind
// cmd/probesim-server: top-k and single-source SimRank queries over a
// live, updatable graph, with the core.Querier result cache in front.
//
// Concurrency contract: queries are lock-free — each one runs against the
// immutable CSR snapshot the core.Executor has published, so an edge
// update never stalls a query and a long query never stalls an update.
// Edge updates serialize among themselves on the write mutex, mutate the
// graph, and publish a fresh snapshot before releasing it; in-flight
// queries keep the (consistent) snapshot they grabbed. Cache invalidation
// is automatic via the snapshot version counter. The few analysis
// endpoints that must read the mutable graph itself (/join/topk,
// /components) share the write mutex: they block updates for their
// duration, exactly as their read lock used to, but never block queries.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"probesim/internal/core"
	"probesim/internal/graph"
)

// Server is the http.Handler for the similarity service.
type Server struct {
	mu    sync.Mutex // serializes graph mutations and mutable-graph reads
	g     *graph.Graph
	ex    *core.Executor
	q     *core.Querier
	opt   core.Options
	limit int
	mux   *http.ServeMux
}

// New builds a Server over g. cacheCap bounds the Querier cache; limit
// bounds the number of entries /single-source returns. The server takes
// ownership of g: all further mutations must go through the HTTP API.
func New(g *graph.Graph, opt core.Options, cacheCap, limit int) *Server {
	if limit <= 0 {
		limit = 100
	}
	ex := core.NewExecutor(g, opt)
	s := &Server{
		g:     g,
		ex:    ex,
		q:     core.NewQuerierOn(ex, cacheCap),
		opt:   opt,
		limit: limit,
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/topk", s.handleTopK)
	s.mux.HandleFunc("/single-source", s.handleSingleSource)
	s.mux.HandleFunc("/edges", s.handleEdges)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.registerExtra()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) nodeParam(r *http.Request, name string) (graph.NodeID, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	// Validate against the published snapshot, not the mutable graph: the
	// node count only changes via snapshot publication, and reading the
	// snapshot is race-free.
	if n := s.ex.Snapshot().NumNodes(); v < 0 || int(v) >= n {
		return 0, fmt.Errorf("node %d out of range [0, %d)", v, n)
	}
	return graph.NodeID(v), nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

type scoredNodeJSON struct {
	Node  graph.NodeID `json:"node"`
	Score float64      `json:"score"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	u, err := s.nodeParam(r, "u")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k < 1 || k > 10000 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parameter k must be in [1, 10000]"))
			return
		}
	}
	res, err := s.q.TopK(u, k)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]scoredNodeJSON, len(res))
	for i, r := range res {
		out[i] = scoredNodeJSON{Node: r.Node, Score: r.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{"query": u, "results": out})
}

func (s *Server) handleSingleSource(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	u, err := s.nodeParam(r, "u")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	scores, err := s.q.SingleSource(u)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	type entry struct {
		v graph.NodeID
		s float64
	}
	var nonzero []entry
	for v, sc := range scores {
		if graph.NodeID(v) != u && sc > 0 {
			nonzero = append(nonzero, entry{graph.NodeID(v), sc})
		}
	}
	sort.Slice(nonzero, func(i, j int) bool {
		if nonzero[i].s != nonzero[j].s {
			return nonzero[i].s > nonzero[j].s
		}
		return nonzero[i].v < nonzero[j].v
	})
	top := nonzero
	if len(top) > s.limit {
		top = top[:s.limit]
	}
	m := make(map[string]float64, len(top))
	for _, e := range top {
		m[strconv.Itoa(int(e.v))] = e.s
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query": u, "nonzero": len(nonzero), "scores": m,
	})
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	u, err := s.nodeParam(r, "u")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.nodeParam(r, "v")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	switch r.Method {
	case http.MethodPost:
		err = s.g.AddEdge(u, v)
	case http.MethodDelete:
		err = s.g.RemoveEdge(u, v)
	default:
		s.mu.Unlock()
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST or DELETE"))
		return
	}
	if err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Publish the new snapshot before releasing the write mutex so the
	// next query (and the next mutator) sees the update.
	snap := s.ex.Refresh()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"edges": snap.NumEdges(), "version": snap.Version(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	// Stats come from the published snapshot, so this endpoint is lock-free
	// like the query endpoints.
	snap := s.ex.Snapshot()
	stats := snap.ComputeStats()
	hits, misses, cached := s.q.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes": stats.Nodes, "edges": stats.Edges,
		"maxInDegree": stats.MaxInDegree, "zeroInDegree": stats.ZeroInDeg,
		"cacheHits": hits, "cacheMisses": misses, "cachedVectors": cached,
		"sharedFlights": s.q.SharedFlights(),
		"graphVersion":  snap.Version(),
	})
}
