// Package server implements the HTTP similarity-search service behind
// cmd/probesim-server: top-k and single-source SimRank queries over a
// live, updatable graph, with the core.Querier result cache in front.
//
// Concurrency contract: every read endpoint — similarity queries AND the
// analysis endpoints (/join/topk, /components) — is lock-free: each runs
// against the immutable snapshot the core.Executor has published, so an
// edge update never stalls a read and a long read never stalls an update.
// Edge updates serialize among themselves on the write mutex, mutate the
// backend, and publish a fresh snapshot before releasing it; in-flight
// reads keep the (consistent) snapshot they grabbed. Cache invalidation
// is automatic via the snapshot version counter.
//
// The server runs over either backend: the monolithic *graph.Graph
// (every publication rebuilds the full CSR snapshot) or the sharded
// shard.Store (NewSharded; publication re-encodes only the shards an
// update touched, and /stats reports the rebuild counters).
//
// Serving contract (see admission.go): every route is instrumented
// (per-route latency histograms, in-flight gauges and outcome counters
// behind /metrics) and admission-controlled per Limits — bounded
// in-flight queries with 503+Retry-After rejection, queue-depth write
// backpressure, and a per-request query timeout the kernels honor at
// their budget checkpoints (504 on expiry). Partial results are never
// served.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"probesim/internal/core"
	"probesim/internal/graph"
	"probesim/internal/health"
	"probesim/internal/hotidx"
	"probesim/internal/promexpo"
	"probesim/internal/qtrace"
	"probesim/internal/router"
	"probesim/internal/shard"
	"probesim/internal/slo"
	"probesim/internal/tenant"
	"probesim/internal/wal"
)

// mutator is the write-side surface the edge endpoints need; both
// *graph.Graph and *shard.Store provide it.
type mutator interface {
	AddEdge(u, v graph.NodeID) error
	RemoveEdge(u, v graph.NodeID) error
}

// Server is the http.Handler for the similarity service.
type Server struct {
	mu    sync.Mutex // serializes backend mutations
	mut   mutator
	st    *shard.Store   // non-nil only for the sharded backend
	rt    *router.Router // non-nil only for the routed backend
	ex    *core.Executor
	q     *core.Querier
	opt   core.Options
	limit int
	mux   *http.ServeMux

	// Admission control (see admission.go): the active limits, the
	// similarity-query in-flight counter, the analysis-scan semaphore
	// (capacity MaxJoinInflight; joins used to queue on the write mutex,
	// this keeps their O(n·query) fan-out bounded without ever blocking
	// queries or writes), and the write-queue depth gauge behind the
	// backpressure rejection.
	limits        Limits
	queryInflight atomic.Int64
	joinSem       chan struct{}
	writeWaiters  atomic.Int64

	// Multi-tenant QoS plane (see tenantslo.go): the tenant registry
	// (SetTenants) resolves X-ProbeSim-Tenant to class policy; fairq,
	// built when both tenants and MaxInflight are configured, replaces
	// immediate-503 query admission with deficit-weighted fair queueing;
	// slo (SetSLO) tracks per-tenant rolling-window objectives behind
	// /debug/slo and the probesim_slo_* metric families. svcTimeEWMA is
	// the observed per-query service time (ns) behind the load-derived
	// Retry-After hint.
	tenants     *tenant.Registry
	fairq       *tenant.FairQueue
	slo         *slo.Tracker
	svcTimeEWMA atomic.Int64

	// reg feeds /metrics: per-route latency histograms, in-flight
	// gauges, timeout/rejection counters.
	reg *promexpo.Registry

	// epsaHist observes the εa every served similarity query actually
	// ran at: the base εa for normal admissions, the widened one for
	// degraded admissions — the accuracy distribution operators watch
	// under pressure (probesim_degraded_epsa on /metrics).
	epsaHist *promexpo.ValueHistogram

	// tracer, when armed (SetTracer), owns query tracing: sampling,
	// span recording, the slow-query log and /debug/queries. stageHist
	// holds the per-stage (walk/probe) duration histograms sampled
	// queries feed behind /metrics.
	tracer    *qtrace.Tracer
	stageHist [qtrace.NumStages]*promexpo.ValueHistogram

	// hstate backs /healthz and /readyz: liveness is unconditional, and
	// readiness starts true (newServer returns a fully usable server) but
	// flips off the moment the owning process begins a graceful drain —
	// BEFORE listeners close, so load balancers stop routing first.
	hstate health.State

	// wal, when set (SetWAL), is the durability point of the in-process
	// write path: every edge batch is appended (and fsynced, per policy)
	// BEFORE it is applied and acknowledged, so an HTTP 200 means the
	// batch survives a crash. In routed topologies the workers own their
	// logs instead and this stays nil.
	wal *wal.Log

	// hot, when set (EnableHotTier), answers hot-source queries from
	// precomputed entries at microsecond latency; cold sources fall
	// through to the live path completely unchanged. Responses carry
	// X-ProbeSim-Tier saying which path served them, and ?tier=live
	// forces the live kernel for any single request.
	hot *hotidx.Tier
}

// New builds a Server over g. cacheCap bounds the Querier cache; limit
// bounds the number of entries /single-source returns. The server takes
// ownership of g: all further mutations must go through the HTTP API.
func New(g *graph.Graph, opt core.Options, cacheCap, limit int) *Server {
	return newServer(g, nil, core.NewExecutor(g, opt), opt, cacheCap, limit)
}

// NewSharded builds a Server over a sharded snapshot store: queries and
// analysis reads serve from the composite per-shard snapshot, and each
// update batch republishes only the shards it touched. The server takes
// ownership of st.
func NewSharded(st *shard.Store, opt core.Options, cacheCap, limit int) *Server {
	return newServer(st, st, core.NewExecutorOn(st, opt), opt, cacheCap, limit)
}

// NewRouted builds a Server over a shard router: queries fan out to the
// router's engines (in-process or probesim-shardd workers over RPC),
// writes broadcast through its write plane, and /stats + /metrics grow
// per-worker health/version rows and router counters. The single-engine
// local topology (router.NewLocal) is exactly NewSharded with extra
// steps removed — the fast path serves the store's own snapshots.
func NewRouted(rt *router.Router, opt core.Options, cacheCap, limit int) *Server {
	s := newServer(rt, rt.LocalStore(), core.NewExecutorOn(rt, opt), opt, cacheCap, limit)
	s.rt = rt
	return s
}

// SetWAL arms the durable write path: every subsequent edge batch is
// appended to lg before it is applied, and acknowledged only once the
// log has it (under the log's fsync policy). Requires the sharded
// backend (NewSharded, or NewRouted over a local store) — the batch-id
// watermark lives in shard.Store. Call before serving.
func (s *Server) SetWAL(lg *wal.Log) {
	if s.st == nil {
		panic("server: SetWAL requires the sharded backend")
	}
	s.wal = lg
}

// EnableHotTier arms the hot-source index tier: a space-saving sketch on
// the query path discovers hot sources, a background refresher
// precomputes their single-source vectors with the SAME options the live
// path serves (so a hot answer is byte-identical to the live kernel's),
// and the store's applied-batch stream invalidates exactly the entries
// each write batch can affect. Requires the sharded backend — the
// dependency filter speaks shard indices, and the tier subscribes to
// shard.Store's applied-batch hook. Call after SetWAL (when durable) and
// before serving; the returned tier is the caller's to Close on
// shutdown. maxEntries <= 0 and refreshBudget <= 0 take the tier's
// defaults.
func (s *Server) EnableHotTier(maxEntries int, refreshBudget time.Duration) *hotidx.Tier {
	if s.st == nil {
		panic("server: EnableHotTier requires the sharded backend")
	}
	if s.hot != nil {
		panic("server: hot tier already enabled")
	}
	var rb core.Budget
	if refreshBudget > 0 {
		rb.Timeout = refreshBudget
	}
	tier := hotidx.New(s.ex, s.st.Partition().Shift(), hotidx.Config{
		MaxEntries:    maxEntries,
		Opt:           s.opt,
		RefreshBudget: rb,
		Yield:         s.hotYield,
	})
	s.st.SubscribeApplied(tier.OnBatch)
	if s.wal != nil {
		s.wal.Subscribe(func(id uint64, ops []wal.Op) { tier.ObserveAppend(id) })
	}
	s.hot = tier
	return tier
}

// hotYield tells the background refresher when foreground admission
// wants the CPU: past half the hard in-flight limit (or the soft
// degrade watermark, when only that is configured), builds step aside.
// Refresh work never occupies admission slots either way — it runs on
// the tier's own goroutine below the HTTP layer — so this is about CPU,
// not slots: live queries keep their full MaxInflight headroom under a
// refresh storm.
func (s *Server) hotYield() bool {
	n := s.queryInflight.Load()
	if max := s.limits.MaxInflight; max > 0 {
		half := int64(max) / 2
		if half < 1 {
			half = 1
		}
		return n >= half
	}
	if soft := s.limits.SoftInflight; soft > 0 {
		return n >= int64(soft)
	}
	return false
}

func newServer(mut mutator, st *shard.Store, ex *core.Executor, opt core.Options, cacheCap, limit int) *Server {
	if limit <= 0 {
		limit = 100
	}
	s := &Server{
		mut:     mut,
		st:      st,
		ex:      ex,
		q:       core.NewQuerierOn(ex, cacheCap),
		opt:     opt,
		limit:   limit,
		mux:     http.NewServeMux(),
		joinSem: make(chan struct{}, 1),
		reg:     promexpo.NewRegistry(),
		// Bounds double from one half of the tightest production εa up
		// through the widest degradation the admission layer can apply
		// (DegradeFactor caps εa at 0.9).
		epsaHist: promexpo.NewValueHistogram([]float64{0.0125, 0.025, 0.05, 0.1, 0.2, 0.4, 0.8}),
	}
	for st := range s.stageHist {
		// Seconds of stage time per query, 100µs up to 5s.
		s.stageHist[st] = promexpo.NewValueHistogram([]float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5})
	}
	s.handle("/topk", classQuery, s.handleTopK)
	s.handle("/single-source", classQuery, s.handleSingleSource)
	s.handle("/edges", classWrite, s.handleEdges)
	s.handle("/stats", classMeta, s.handleStats)
	s.handle("/metrics", classMeta, s.handleMetrics)
	s.handle("/debug/queries", classMeta, s.handleDebugQueries)
	s.handle("/debug/slo", classMeta, s.handleDebugSLO)
	// Probes bypass admission control and instrumentation entirely: an
	// orchestrator must get an answer even when the server is saturated.
	s.hstate.SetReady(true)
	s.hstate.Register(s.mux)
	s.registerExtra()
	return s
}

// Health exposes the server's liveness/readiness state so the owning
// process can flip readiness off (SetDraining) before it stops
// listening, and orchestrators can probe /healthz and /readyz.
func (s *Server) Health() *health.State { return &s.hstate }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) nodeParam(r *http.Request, name string) (graph.NodeID, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	// Validate against the published snapshot, not the mutable graph: the
	// node count only changes via snapshot publication, and reading the
	// snapshot is race-free.
	if n := s.ex.Snapshot().NumNodes(); v < 0 || int(v) >= n {
		return 0, fmt.Errorf("node %d out of range [0, %d)", v, n)
	}
	return graph.NodeID(v), nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

type scoredNodeJSON struct {
	Node  graph.NodeID `json:"node"`
	Score float64      `json:"score"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	u, err := s.nodeParam(r, "u")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k < 1 || k > 10000 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parameter k must be in [1, 10000]"))
			return
		}
	}
	scores, err := s.singleSourceScores(w, r, u)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	res := core.SelectTopK(scores, u, k)
	out := make([]scoredNodeJSON, len(res))
	for i, r := range res {
		out[i] = scoredNodeJSON{Node: r.Node, Score: r.Score}
	}
	body := map[string]any{"query": u, "results": out}
	addTrace(r, body)
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleSingleSource(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	u, err := s.nodeParam(r, "u")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	scores, err := s.singleSourceScores(w, r, u)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	type entry struct {
		v graph.NodeID
		s float64
	}
	var nonzero []entry
	for v, sc := range scores {
		if graph.NodeID(v) != u && sc > 0 {
			nonzero = append(nonzero, entry{graph.NodeID(v), sc})
		}
	}
	sort.Slice(nonzero, func(i, j int) bool {
		if nonzero[i].s != nonzero[j].s {
			return nonzero[i].s > nonzero[j].s
		}
		return nonzero[i].v < nonzero[j].v
	})
	top := nonzero
	if len(top) > s.limit {
		top = top[:s.limit]
	}
	m := make(map[string]float64, len(top))
	for _, e := range top {
		m[strconv.Itoa(int(e.v))] = e.s
	}
	body := map[string]any{
		"query": u, "nonzero": len(nonzero), "scores": m,
	}
	addTrace(r, body)
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	u, err := s.nodeParam(r, "u")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.nodeParam(r, "v")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var op shard.EdgeOp
	switch r.Method {
	case http.MethodPost:
		op = shard.EdgeOp{U: u, V: v}
	case http.MethodDelete:
		op = shard.EdgeOp{Remove: true, U: u, V: v}
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST or DELETE"))
		return
	}
	// The unlock is deferred (idempotently) so a panic inside the critical
	// section — net/http recovers handler panics and keeps serving — can
	// never wedge the write mutex; response writing happens after the
	// explicit early unlock, off the critical section.
	s.mu.Lock()
	unlock := s.unlockOnce()
	defer unlock()
	if err := s.applyOps([]shard.EdgeOp{op}); err != nil {
		unlock()
		writeApplyError(w, err)
		return
	}
	// Publish the new snapshot before releasing the write mutex so the
	// next query (and the next mutator) sees the update. Publication
	// deliberately does NOT inherit the request context: the mutation is
	// already applied (and logged), and aborting the publish on a client
	// disconnect would leave the write invisible to every query until the
	// next write republishes — a staleness window no other client could
	// see or fix. Publication is bounded work (O(batch + touched shards)
	// on the sharded backend), so completing it unconditionally is safe.
	snap := s.ex.Refresh()
	unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"edges": snap.NumEdges(), "version": snap.Version(),
	})
}

// errDurability marks a write-ahead-log append failure: the batch was
// NOT acknowledged and NOT applied (append-then-apply means a log that
// cannot take the batch stops it before the store sees it). Clients get
// a 500 and may retry; the graph is unchanged.
type errDurability struct{ err error }

func (e errDurability) Error() string { return fmt.Sprintf("durability: %v", e.err) }
func (e errDurability) Unwrap() error { return e.err }

// writeApplyError maps a write-path failure: a durability failure is the
// server's fault (500), anything else is a rejected batch (400).
func writeApplyError(w http.ResponseWriter, err error) {
	var de errDurability
	if errors.As(err, &de) {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

// applyOps is the single in-process write path: append to the
// write-ahead log (when armed), then apply to the backend, all under the
// caller-held write mutex. The routed distributed path does not come
// here (it broadcasts identified batches through the router, and the
// workers own durability); see handleEdgeBatch.
func (s *Server) applyOps(ops []shard.EdgeOp) error {
	if s.st != nil {
		var id uint64
		if s.wal != nil {
			wops := make([]wal.Op, len(ops))
			for i, op := range ops {
				wops[i] = wal.Op{Remove: op.Remove, U: op.U, V: op.V}
			}
			var err error
			if id, err = s.wal.Append(0, wops); err != nil {
				return errDurability{err}
			}
		}
		_, err := s.st.ApplyBatch(id, ops)
		return err
	}
	// Monolithic backend: per-op apply with rollback, no batch ids (the
	// monolithic *graph.Graph carries no watermark; -data-dir requires
	// the sharded backend).
	applied := make([]shard.EdgeOp, 0, len(ops))
	apply := func(op shard.EdgeOp) error {
		if op.Remove {
			return s.mut.RemoveEdge(op.U, op.V)
		}
		return s.mut.AddEdge(op.U, op.V)
	}
	for i, op := range ops {
		if err := apply(op); err != nil {
			for j := len(applied) - 1; j >= 0; j-- {
				inv := applied[j]
				inv.Remove = !inv.Remove
				if rerr := apply(inv); rerr != nil {
					panic(fmt.Sprintf("server: rollback failed at op %d: %v", j, rerr))
				}
			}
			kind := "add"
			if op.Remove {
				kind = "remove"
			}
			return fmt.Errorf("op %d (%s %d->%d): %w; batch rolled back", i, kind, op.U, op.V, err)
		}
		applied = append(applied, op)
	}
	return nil
}

// unlockOnce returns an idempotent unlocker for the write mutex (which
// the caller must already hold): call it early to end the critical
// section, and defer it so panics cannot leave the mutex held.
func (s *Server) unlockOnce() func() {
	locked := true
	return func() {
		if locked {
			locked = false
			s.mu.Unlock()
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	// Stats come from the published snapshot, so this endpoint is lock-free
	// like the query endpoints.
	snap := s.ex.Snapshot()
	stats := graph.ComputeViewStats(snap)
	cs := s.q.CacheStats()
	body := map[string]any{
		"nodes": stats.Nodes, "edges": stats.Edges,
		"maxInDegree": stats.MaxInDegree, "zeroInDegree": stats.ZeroInDeg,
		"cacheHits": cs.Hits, "cacheMisses": cs.Misses, "cachedVectors": cs.Cached,
		"cacheEvictions": cs.Evictions,
		"sharedFlights":  cs.Shared,
		"graphVersion":   snap.Version(),
	}
	if s.hot != nil {
		hs := s.hot.Stats()
		body["hotEntries"] = hs.Entries
		body["hotStaleEntries"] = hs.StaleEntries
		body["hotTrackedSources"] = hs.TrackedSources
		body["hotHits"] = hs.Hits
		body["hotMisses"] = hs.Misses
		body["hotInvalidations"] = hs.Invalidations
		body["hotBuilds"] = hs.Builds
		body["hotBuildErrors"] = hs.BuildErrors
		body["hotEvictions"] = hs.Evictions
		body["hotYields"] = hs.Yields
		body["hotWatermark"] = hs.Watermark
		body["hotWALWatermark"] = hs.WALWatermark
		body["hotLagBatches"] = hs.LagBatches
	}
	if s.st != nil {
		// Sharded backend: publication effectiveness counters. A healthy
		// dynamic workload shows shardsReused >> shardsRebuilt — the point of
		// per-shard publication.
		ss := s.st.Stats()
		body["shards"] = ss.Shards
		body["shardStride"] = ss.Stride
		body["shardPublications"] = ss.Publications
		body["shardNoopPublishes"] = ss.NoopPublishes
		body["shardAbortedPublishes"] = ss.AbortedPublishes
		body["shardsRebuilt"] = ss.ShardsRebuilt
		body["shardsReused"] = ss.ShardsReused
		body["shardEdgesReEncoded"] = ss.EdgesReEncoded
		// Snapshot GC visibility: how many superseded generations queries
		// still pin, and roughly how much memory that holds live.
		gc := s.st.GC()
		body["snapshotRetiredTotal"] = gc.RetiredTotal
		body["snapshotRetiredLive"] = gc.RetiredLive
		body["snapshotRetiredBytes"] = gc.RetiredBytes
		body["snapshotCurrentBytes"] = gc.CurrentBytes
	}
	if s.wal != nil {
		// Durable write plane: log volume, sync cadence, checkpoint
		// coverage. lastBatch - walCheckpointBatch is the replay debt a
		// crash right now would pay on the next boot.
		ws := s.wal.Stats()
		body["walAppends"] = ws.Appends
		body["walAppendedBytes"] = ws.AppendedBytes
		body["walSyncs"] = ws.Syncs
		body["walRotations"] = ws.Rotations
		body["walCheckpoints"] = ws.Checkpoints
		body["walSegments"] = ws.SegmentsLive
		body["walSegmentBytes"] = ws.SegmentBytes
		body["walLastBatch"] = ws.LastBatch
		body["walCheckpointBatch"] = ws.LastCheckpoint
	}
	if s.rt != nil && s.rt.Distributed() {
		body["routerWorkers"] = s.rt.WorkerStats()
		rc := s.rt.Counters()
		body["routerShardFetches"] = rc.ShardFetches
		body["routerShardFetchErrors"] = rc.ShardFetchErrors
		body["routerShardBatches"] = rc.ShardBatches
		body["routerWalkSegments"] = rc.WalkSegments
		body["routerWalkHandoffs"] = rc.WalkHandoffs
		// Batched walk plane: round trips (routerWalkBatches), the walks
		// they carried (routerWalkDelegated; the ratio is the average
		// batch size) and the segments the router stepped itself over
		// cached blocks with no RPC at all (routerWalkLocalSegments).
		body["routerWalkBatches"] = rc.WalkBatches
		body["routerWalkDelegated"] = rc.WalkDelegated
		body["routerWalkLocalSegments"] = rc.WalkLocalSegments
		body["routerApplyRetries"] = rc.ApplyRetries
		// Replicated read plane: failover/hedging activity and the write
		// plane's replica book-keeping (skipped demoted members, ring
		// batches replayed to re-admit them).
		body["routerFailovers"] = rc.Failovers
		body["routerHedgesSent"] = rc.HedgesSent
		body["routerHedgesWon"] = rc.HedgesWon
		body["routerApplySkips"] = rc.ApplySkips
		body["routerCatchupBatches"] = rc.CatchupBatches
	}
	writeJSON(w, http.StatusOK, body)
}
