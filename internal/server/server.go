// Package server implements the HTTP similarity-search service behind
// cmd/probesim-server: top-k and single-source SimRank queries over a
// live, updatable graph, with the core.Querier result cache in front.
//
// Concurrency contract: queries share a read lock; edge updates take the
// write lock, so the underlying graph is never mutated mid-query. Cache
// invalidation is automatic via the graph version counter.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"probesim/internal/core"
	"probesim/internal/graph"
)

// Server is the http.Handler for the similarity service.
type Server struct {
	mu    sync.RWMutex
	g     *graph.Graph
	q     *core.Querier
	opt   core.Options
	limit int
	mux   *http.ServeMux
}

// New builds a Server over g. cacheCap bounds the Querier cache; limit
// bounds the number of entries /single-source returns.
func New(g *graph.Graph, opt core.Options, cacheCap, limit int) *Server {
	if limit <= 0 {
		limit = 100
	}
	s := &Server{
		g:     g,
		q:     core.NewQuerier(g, opt, cacheCap),
		opt:   opt,
		limit: limit,
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/topk", s.handleTopK)
	s.mux.HandleFunc("/single-source", s.handleSingleSource)
	s.mux.HandleFunc("/edges", s.handleEdges)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.registerExtra()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) nodeParam(r *http.Request, name string) (graph.NodeID, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	if v < 0 || int(v) >= s.g.NumNodes() {
		return 0, fmt.Errorf("node %d out of range [0, %d)", v, s.g.NumNodes())
	}
	return graph.NodeID(v), nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

type scoredNodeJSON struct {
	Node  graph.NodeID `json:"node"`
	Score float64      `json:"score"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	u, err := s.nodeParam(r, "u")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k < 1 || k > 10000 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parameter k must be in [1, 10000]"))
			return
		}
	}
	s.mu.RLock()
	res, err := s.q.TopK(u, k)
	s.mu.RUnlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]scoredNodeJSON, len(res))
	for i, r := range res {
		out[i] = scoredNodeJSON{Node: r.Node, Score: r.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{"query": u, "results": out})
}

func (s *Server) handleSingleSource(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	u, err := s.nodeParam(r, "u")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	scores, err := s.q.SingleSource(u)
	s.mu.RUnlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	type entry struct {
		v graph.NodeID
		s float64
	}
	var nonzero []entry
	for v, sc := range scores {
		if graph.NodeID(v) != u && sc > 0 {
			nonzero = append(nonzero, entry{graph.NodeID(v), sc})
		}
	}
	sort.Slice(nonzero, func(i, j int) bool {
		if nonzero[i].s != nonzero[j].s {
			return nonzero[i].s > nonzero[j].s
		}
		return nonzero[i].v < nonzero[j].v
	})
	top := nonzero
	if len(top) > s.limit {
		top = top[:s.limit]
	}
	m := make(map[string]float64, len(top))
	for _, e := range top {
		m[strconv.Itoa(int(e.v))] = e.s
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query": u, "nonzero": len(nonzero), "scores": m,
	})
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	u, err := s.nodeParam(r, "u")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.nodeParam(r, "v")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch r.Method {
	case http.MethodPost:
		err = s.g.AddEdge(u, v)
	case http.MethodDelete:
		err = s.g.RemoveEdge(u, v)
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST or DELETE"))
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"edges": s.g.NumEdges(), "version": s.g.Version(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	s.mu.RLock()
	stats := s.g.ComputeStats()
	hits, misses, cached := s.q.Stats()
	version := s.g.Version()
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes": stats.Nodes, "edges": stats.Edges,
		"maxInDegree": stats.MaxInDegree, "zeroInDegree": stats.ZeroInDeg,
		"cacheHits": hits, "cacheMisses": misses, "cachedVectors": cached,
		"graphVersion": version,
	})
}
