package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"probesim/internal/core"
	"probesim/internal/graph"
)

func testServer(t *testing.T) (*Server, *graph.Graph) {
	t.Helper()
	// The diamond: 0 -> {1,2} -> 3; s(1,2) = c.
	g, err := graph.FromEdges(4, [][2]graph.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return New(g, core.Options{EpsA: 0.02, Seed: 1}, 8, 50), g
}

func do(t *testing.T, s *Server, method, target string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, target, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s %s: invalid JSON %q", method, target, rec.Body.String())
	}
	return rec, body
}

func TestTopKEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec, body := do(t, s, http.MethodGet, "/topk?u=1&k=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	results := body["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	first := results[0].(map[string]any)
	if first["node"].(float64) != 2 {
		t.Fatalf("top-1 = %v, want node 2", first)
	}
	if sc := first["score"].(float64); sc < 0.55 || sc > 0.65 {
		t.Fatalf("s(1,2) = %v, want ~0.6", sc)
	}
}

func TestSingleSourceEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec, body := do(t, s, http.MethodGet, "/single-source?u=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	scores := body["scores"].(map[string]any)
	if sc := scores["2"].(float64); sc < 0.55 || sc > 0.65 {
		t.Fatalf("s(1,2) = %v", sc)
	}
	if _, hasSelf := scores["1"]; hasSelf {
		t.Fatal("query node leaked into the score map")
	}
}

func TestEdgeUpdateInvalidates(t *testing.T) {
	s, g := testServer(t)
	_, before := do(t, s, http.MethodGet, "/topk?u=1&k=1")
	firstNode := before["results"].([]any)[0].(map[string]any)["node"].(float64)
	if firstNode != 2 {
		t.Fatalf("precondition: top-1 = %v", firstNode)
	}
	// Remove 0->2: nodes 1 and 2 no longer share an in-neighbor.
	rec, body := do(t, s, http.MethodDelete, "/edges?u=0&v=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("delete failed: %v", body)
	}
	if g.HasEdge(0, 2) {
		t.Fatal("edge not removed")
	}
	_, after := do(t, s, http.MethodGet, "/single-source?u=1")
	if _, still := after["scores"].(map[string]any)["2"]; still {
		t.Fatalf("s(1,2) should be 0 after removing the shared parent: %v", after)
	}
}

func TestAddEdgeEndpoint(t *testing.T) {
	s, g := testServer(t)
	rec, body := do(t, s, http.MethodPost, "/edges?u=3&v=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("add failed: %v", body)
	}
	if !g.HasEdge(3, 0) {
		t.Fatal("edge not added")
	}
	if body["version"].(float64) <= 0 {
		t.Fatal("version not reported")
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, _ := testServer(t)
	do(t, s, http.MethodGet, "/topk?u=1&k=1")
	do(t, s, http.MethodGet, "/topk?u=1&k=2") // cache hit (same vector)
	rec, body := do(t, s, http.MethodGet, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	if body["nodes"].(float64) != 4 {
		t.Fatalf("stats = %v", body)
	}
	if body["cacheHits"].(float64) < 1 {
		t.Fatalf("expected a cache hit: %v", body)
	}
}

func TestBadRequests(t *testing.T) {
	s, _ := testServer(t)
	cases := []struct {
		method, target string
		wantStatus     int
	}{
		{http.MethodGet, "/topk?u=99", http.StatusBadRequest},
		{http.MethodGet, "/topk?u=abc", http.StatusBadRequest},
		{http.MethodGet, "/topk", http.StatusBadRequest},
		{http.MethodGet, "/topk?u=1&k=0", http.StatusBadRequest},
		{http.MethodGet, "/topk?u=1&k=999999", http.StatusBadRequest},
		{http.MethodPost, "/topk?u=1", http.StatusMethodNotAllowed},
		{http.MethodGet, "/single-source?u=-1", http.StatusBadRequest},
		{http.MethodPut, "/edges?u=0&v=1", http.StatusMethodNotAllowed},
		{http.MethodDelete, "/edges?u=3&v=0", http.StatusBadRequest}, // no such edge
		{http.MethodPost, "/edges?u=1&v=1", http.StatusBadRequest},   // self loop
		{http.MethodPost, "/stats", http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		rec, _ := do(t, s, c.method, c.target)
		if rec.Code != c.wantStatus {
			t.Errorf("%s %s: status %d, want %d", c.method, c.target, rec.Code, c.wantStatus)
		}
	}
}

// Concurrent queries against concurrent updates must be race-free (run
// with -race) and never return malformed answers.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	s, _ := testServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch w % 2 {
				case 0:
					rec, _ := do2(s, http.MethodGet, fmt.Sprintf("/topk?u=%d&k=2", i%4))
					if rec.Code != http.StatusOK {
						t.Errorf("query failed: %d", rec.Code)
						return
					}
				case 1:
					do2(s, http.MethodPost, "/edges?u=3&v=0")
					do2(s, http.MethodDelete, "/edges?u=3&v=0")
				}
			}
		}(w)
	}
	wg.Wait()
}

func do2(s *Server, method, target string) (*httptest.ResponseRecorder, string) {
	req := httptest.NewRequest(method, target, strings.NewReader(""))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec, rec.Body.String()
}
