package server

// Serving-plane benchmarks for BENCH_PR3: query throughput through the
// full HTTP stack (admission control + instrumentation + cache) under
// concurrent load, with and without an in-flight limit engaged. Run with
//
//	go test -run '^$' -bench 'BenchmarkServing' -benchtime=200x ./internal/server
//
// The "limited" variant uses a deliberately small MaxInflight so a
// fraction of requests takes the rejection fast path; the benchmark
// reports how many were rejected per op so the two variants can be
// compared fairly (a rejection is ~1000x cheaper than a query).

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"probesim/internal/core"
	"probesim/internal/gen"
)

func benchServer(b *testing.B, l Limits) *Server {
	b.Helper()
	g := gen.PreferentialAttachment(20000, 8, 1)
	// Cache capacity 1 with rotating query nodes => every request does
	// kernel work; NumWalks keeps one query ~1ms so admission dynamics,
	// not one giant query, dominate.
	s := New(g, core.Options{EpsA: 0.1, Seed: 1, Mode: core.ModePruned, NumWalks: 200}, 1, 50)
	s.SetLimits(l)
	return s
}

func benchServing(b *testing.B, l Limits) {
	s := benchServer(b, l)
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 64
	var next atomic.Int64
	var rejected, failed atomic.Int64
	// 8 client goroutines per GOMAXPROCS: real request overlap even on
	// small CI machines, which is what admission control arbitrates.
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			u := int(next.Add(1)) % 20000
			resp, err := client.Get(fmt.Sprintf("%s/topk?u=%d&k=10", ts.URL, u))
			if err != nil {
				b.Error(err)
				return
			}
			switch resp.StatusCode {
			case http.StatusOK:
			case http.StatusServiceUnavailable:
				rejected.Add(1)
			default:
				failed.Add(1)
			}
			resp.Body.Close()
		}
	})
	b.StopTimer()
	if failed.Load() > 0 {
		b.Fatalf("%d requests failed", failed.Load())
	}
	b.ReportMetric(float64(rejected.Load())/float64(b.N), "rejected/op")
}

func BenchmarkServingThroughput(b *testing.B) {
	b.Run("unlimited", func(b *testing.B) {
		benchServing(b, Limits{QueryTimeout: 30 * time.Second})
	})
	b.Run("limited", func(b *testing.B) {
		benchServing(b, Limits{MaxInflight: 4, QueryTimeout: 30 * time.Second})
	})
}
