package server

// Tracer overhead benchmark: the acceptance bar for always-armed tracing
// is that an armed-but-unsampled tracer (the production default: slow
// logging on, SampleRate 0) costs no more than ~2% latency over no
// tracer at all. Every request pays one 128-bit id draw, one response
// header, and nil-trace branches through the kernel; nothing records.
// Run with
//
//	go test -run '^$' -bench 'BenchmarkTracerOverhead' -benchtime=200x ./internal/server
//
// and compare the armed/off pairs (benchstat, or eyeball ns/op).

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"probesim/internal/qtrace"
)

func benchTrace(b *testing.B, armed bool) {
	s := benchServer(b, Limits{QueryTimeout: 30 * time.Second})
	if armed {
		s.SetTracer(qtrace.NewTracer(time.Hour, 0, 0, slog.New(slog.NewTextHandler(io.Discard, nil))))
	}
	rec := httptest.NewRecorder()
	warm := httptest.NewRequest(http.MethodGet, "/topk?u=0&k=10", nil)
	s.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup: %d", rec.Code)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rotate the source node so every request runs the kernel
		// (cache capacity 1): the tracer hooks sit on the query path,
		// not the cache-hit path.
		u := 1 + i%19999
		req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/topk?u=%d&k=10", u), nil)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("query %d: %d", u, w.Code)
		}
	}
}

func BenchmarkTracerOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchTrace(b, false) })
	b.Run("armed-unsampled", func(b *testing.B) { benchTrace(b, true) })
}
