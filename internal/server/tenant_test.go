package server

// Tenant-aware serving plane tests: fair-queued admission (the
// acceptance property — a saturating batch tenant cannot starve or
// reject a latency-strict tenant), the Max-Epsa degradation-refusal
// contract, per-tenant /metrics families, /debug/slo, the load-derived
// Retry-After hint, and a full-page exposition lint over everything the
// armed server renders.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/promexpo"
	"probesim/internal/qtrace"
	"probesim/internal/shard"
	"probesim/internal/slo"
	"probesim/internal/tenant"
)

// doTenant is do() with a tenant header (and optional extra headers).
func doTenant(t *testing.T, s *Server, method, target, ten string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, target, nil)
	if ten != "" {
		req.Header.Set(tenant.Header, ten)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting: %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFairQueueingUnderBatchSaturation is the acceptance test: with the
// single execution slot held and the batch tenant's queue full, (a) a
// further batch request 503s against its OWN queue, (b) a
// latency-strict request still admits — it queues and is granted,
// never rejected by the batch backlog — and (c) the per-tenant counters
// land on /metrics.
func TestFairQueueingUnderBatchSaturation(t *testing.T) {
	s := slowServer(t, Limits{MaxInflight: 1})
	reg := tenant.NewRegistry(tenant.DegradeTolerant, map[tenant.Class]tenant.Config{
		tenant.ThroughputBatch: {QueueDepth: 2, Weight: 1, AllowDegrade: true},
	})
	reg.Configure("strict", tenant.LatencyStrict)
	reg.Configure("batch", tenant.ThroughputBatch)
	s.SetTenants(reg)
	batchT := reg.Resolve("batch")
	strictT := reg.Resolve("strict")

	serve := func(ctx context.Context, ten string) (*httptest.ResponseRecorder, chan struct{}) {
		rec := httptest.NewRecorder()
		done := make(chan struct{})
		req := httptest.NewRequest(http.MethodGet, "/topk?u=1&k=5", nil).WithContext(ctx)
		req.Header.Set(tenant.Header, ten)
		go func() {
			defer close(done)
			s.ServeHTTP(rec, req)
		}()
		return rec, done
	}

	// Occupy the only slot with a slow batch query.
	blockerCtx, cancelBlocker := context.WithCancel(context.Background())
	defer cancelBlocker()
	_, blockerDone := serve(blockerCtx, "batch")
	waitUntil(t, "blocker in flight", func() bool { return s.queryInflight.Load() == 1 })

	// Fill batch's wait queue (depth 2).
	waitCtx, cancelWaiters := context.WithCancel(context.Background())
	defer cancelWaiters()
	_, w1Done := serve(waitCtx, "batch")
	_, w2Done := serve(waitCtx, "batch")
	waitUntil(t, "batch queue full", func() bool { return s.fairq.TenantQueuedLen(batchT) == 2 })

	// (a) One more batch request bounces off its own full queue.
	rec := doTenant(t, s, http.MethodGet, "/topk?u=2&k=5", "batch", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-depth batch request: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("queue-full rejection without Retry-After")
	}
	if !strings.Contains(rec.Body.String(), "queue full") {
		t.Fatalf("rejection body does not name the queue: %s", rec.Body.String())
	}

	// (b) The strict tenant is NOT rejected: it queues.
	strictCtx, cancelStrict := context.WithCancel(context.Background())
	defer cancelStrict()
	strictRec, strictDone := serve(strictCtx, "strict")
	waitUntil(t, "strict queued", func() bool { return s.fairq.TenantQueuedLen(strictT) == 1 })

	// Drain: the batch waiters give up, the blocker finishes, and the
	// strict query is granted the slot.
	cancelWaiters()
	<-w1Done
	<-w2Done
	cancelBlocker()
	<-blockerDone
	waitUntil(t, "strict admitted", func() bool { return strictT.Admitted.Load() == 1 })
	cancelStrict() // don't wait out the deliberately slow kernel
	<-strictDone
	if strictRec.Code == http.StatusServiceUnavailable {
		t.Fatalf("strict tenant was 503-rejected by the batch backlog: %s", strictRec.Body.String())
	}

	// (c) Counters: batch rejected once, strict queued once, and the
	// families render with tenant+class labels.
	if got := batchT.Rejected.Load(); got != 1 {
		t.Fatalf("batch rejected = %d, want 1", got)
	}
	if got := strictT.Queued.Load(); got != 1 {
		t.Fatalf("strict queued = %d, want 1", got)
	}
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	page := mrec.Body.String()
	for _, want := range []string{
		`probesim_tenant_rejected_total{tenant="batch",class="throughput-batch"} 1`,
		`probesim_tenant_queued_total{tenant="strict",class="latency-strict"} 1`,
		`probesim_tenant_inflight{tenant="strict",class="latency-strict"} 0`,
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, page)
		}
	}
}

// degradeServer builds a fast server one bumped in-flight count away
// from the degrade watermark, with tenants armed.
func degradeServer(t *testing.T, defClass tenant.Class) (*Server, *tenant.Registry) {
	t.Helper()
	g := gen.PreferentialAttachment(200, 3, 4)
	s := New(g, core.Options{Seed: 1, EpsA: 0.1, NumWalks: 200}, 4, 50)
	s.SetLimits(Limits{MaxInflight: 8, SoftInflight: 1, DegradeFactor: 2})
	reg := tenant.NewRegistry(defClass, nil)
	reg.Configure("strict", tenant.LatencyStrict)
	s.SetTenants(reg)
	return s, reg
}

func TestMaxEpsaContract(t *testing.T) {
	s, reg := degradeServer(t, tenant.DegradeTolerant)
	// Push the in-flight count over the soft watermark so every request
	// below is a degrade candidate.
	s.queryInflight.Add(1)
	defer s.queryInflight.Add(-1)

	// Baseline: a degrade-tolerant tenant is served degraded, honestly
	// labeled.
	rec := doTenant(t, s, http.MethodGet, "/topk?u=1&k=5", "anon", nil)
	if rec.Code != http.StatusOK || rec.Header().Get(degradedHeader) == "" {
		t.Fatalf("degrade-tolerant over watermark: status %d, degraded header %q",
			rec.Code, rec.Header().Get(degradedHeader))
	}

	// Max-Epsa wide enough for the degrade (0.2): still served degraded.
	rec = doTenant(t, s, http.MethodGet, "/topk?u=1&k=5", "anon",
		map[string]string{tenant.MaxEpsaHeader: "0.5"})
	if rec.Code != http.StatusOK || rec.Header().Get(degradedHeader) == "" {
		t.Fatalf("permissive Max-Epsa: status %d", rec.Code)
	}

	// Max-Epsa between base (0.1) and the degraded εa (0.2): the server
	// REFUSES instead of silently over-degrading.
	rec = doTenant(t, s, http.MethodGet, "/topk?u=1&k=5", "anon",
		map[string]string{tenant.MaxEpsaHeader: "0.15"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("violated Max-Epsa: status %d, want 503 refusal", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("degrade refusal without Retry-After")
	}
	if got := reg.Resolve("anon").DegradeRefused.Load(); got != 1 {
		t.Fatalf("degrade_refused = %d, want 1", got)
	}

	// Max-Epsa below the configured base εa is unsatisfiable even off
	// peak: client error.
	rec = doTenant(t, s, http.MethodGet, "/topk?u=1&k=5", "anon",
		map[string]string{tenant.MaxEpsaHeader: "0.05"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unsatisfiable Max-Epsa: status %d, want 400", rec.Code)
	}
	// Malformed header: client error.
	rec = doTenant(t, s, http.MethodGet, "/topk?u=1&k=5", "anon",
		map[string]string{tenant.MaxEpsaHeader: "banana"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed Max-Epsa: status %d, want 400", rec.Code)
	}

	// A latency-strict tenant never degrades: full accuracy over the
	// watermark, no header, and its tight Max-Epsa is satisfied.
	rec = doTenant(t, s, http.MethodGet, "/topk?u=1&k=5", "strict",
		map[string]string{tenant.MaxEpsaHeader: "0.1"})
	if rec.Code != http.StatusOK || rec.Header().Get(degradedHeader) != "" {
		t.Fatalf("latency-strict over watermark: status %d, degraded header %q",
			rec.Code, rec.Header().Get(degradedHeader))
	}
	if got := reg.Resolve("strict").Degraded.Load(); got != 0 {
		t.Fatalf("strict tenant counted %d degrades", got)
	}
}

func TestTenantsOffKeepsLegacyBehavior(t *testing.T) {
	// Without SetTenants, headerless traffic gets the pre-tenant
	// contract verbatim (silent degrade over the watermark, no tenant
	// accounting). X-ProbeSim-Max-Epsa is a per-request accuracy
	// contract and is honored even without a registry.
	g := gen.PreferentialAttachment(200, 3, 4)
	s := New(g, core.Options{Seed: 1, EpsA: 0.1, NumWalks: 200}, 4, 50)
	s.SetLimits(Limits{MaxInflight: 8, SoftInflight: 1, DegradeFactor: 2})
	s.queryInflight.Add(1)
	defer s.queryInflight.Add(-1)
	rec := doTenant(t, s, http.MethodGet, "/topk?u=1&k=5", "whoever", nil)
	if rec.Code != http.StatusOK || rec.Header().Get(degradedHeader) == "" {
		t.Fatalf("legacy degrade path changed: status %d, degraded header %q",
			rec.Code, rec.Header().Get(degradedHeader))
	}
	rec = doTenant(t, s, http.MethodGet, "/topk?u=1&k=5", "whoever",
		map[string]string{tenant.MaxEpsaHeader: "0.15"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("Max-Epsa ignored without a registry: status %d, want 503", rec.Code)
	}
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if strings.Contains(mrec.Body.String(), "probesim_tenant_") {
		t.Fatal("tenant families rendered without a registry")
	}
}

func TestRetryAfterDerivedFromLoad(t *testing.T) {
	s, _ := degradeServer(t, tenant.DegradeTolerant)
	// No observations yet: the floor.
	if got := s.retryAfterHint(); got != "1" {
		t.Fatalf("cold hint %q, want 1", got)
	}
	// Warm the EWMA with real queries, then check the hint is a sane
	// integer in the clamp range.
	for i := 0; i < 3; i++ {
		if rec := doTenant(t, s, http.MethodGet, "/topk?u=1&k=5", "", nil); rec.Code != http.StatusOK {
			t.Fatalf("warmup query: %d", rec.Code)
		}
	}
	if s.svcTimeEWMA.Load() == 0 {
		t.Fatal("service-time EWMA never fed")
	}
	n, err := strconv.Atoi(s.retryAfterHint())
	if err != nil || n < retryAfterMin || n > retryAfterMax {
		t.Fatalf("warm hint %q out of range", s.retryAfterHint())
	}
	// Saturated pressure clamps at the cap instead of telling clients to
	// come back in an hour.
	s.svcTimeEWMA.Store(int64(10 * time.Minute))
	if got := s.retryAfterHint(); got != strconv.Itoa(retryAfterMax) {
		t.Fatalf("saturated hint %q, want %d", got, retryAfterMax)
	}
}

func TestDebugSLOAndTenantTraceTagging(t *testing.T) {
	s, _ := degradeServer(t, tenant.DegradeTolerant)
	s.SetSLO(slo.New(slo.Config{
		Window:    time.Minute,
		PerTenant: map[string]slo.Objective{"search": {P99: time.Second, Availability: 0.999}},
	}))
	s.SetTracer(qtrace.NewTracer(0, 1, 8, nil))
	for i := 0; i < 5; i++ {
		if rec := doTenant(t, s, http.MethodGet, "/topk?u=1&k=5", "search", nil); rec.Code != http.StatusOK {
			t.Fatalf("query %d: %d", i, rec.Code)
		}
	}
	rec, body := do(t, s, http.MethodGet, "/debug/slo")
	if rec.Code != http.StatusOK || body["enabled"] != true {
		t.Fatalf("/debug/slo: %d %v", rec.Code, body)
	}
	tenants, _ := body["tenants"].([]any)
	var found map[string]any
	for _, e := range tenants {
		if m, ok := e.(map[string]any); ok && m["tenant"] == "search" {
			found = m
		}
	}
	if found == nil {
		t.Fatalf("/debug/slo missing tenant search: %v", body)
	}
	if found["requests"] != float64(5) || found["availability"] != float64(1) {
		t.Fatalf("slo window: %v", found)
	}
	if found["latency_met"] != true || found["availability_met"] != true {
		t.Fatalf("objectives not met in a healthy window: %v", found)
	}
	// Sampled traces carry the tenant.
	var tagged bool
	for _, d := range s.tracer.Recent() {
		if d.Tenant == "search" {
			tagged = true
		}
	}
	if !tagged {
		t.Fatal("no ring trace tagged with the tenant")
	}
	// And the SLO families render on /metrics.
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	page := mrec.Body.String()
	for _, want := range []string{
		`probesim_slo_error_budget_burn_ratio{tenant="search"} 0`,
		`probesim_slo_window_requests{tenant="search"} 5`,
		`probesim_slo_availability{tenant="search"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, page)
		}
	}
}

// TestMetricsPagePassesLint is the exposition-validity satellite at the
// integration level: the full page of a maximally armed server — sharded
// store, tracer, tenants (including a hostile tenant name), SLO tracker,
// build info — must parse cleanly under the format linter.
func TestMetricsPagePassesLint(t *testing.T) {
	g := gen.PreferentialAttachment(300, 3, 4)
	st := shard.NewStore(g, 8, 0)
	s := NewSharded(st, core.Options{Seed: 1, EpsA: 0.1, NumWalks: 200}, 4, 50)
	s.SetLimits(Limits{MaxInflight: 8, SoftInflight: 4, QueryTimeout: time.Second})
	reg := tenant.NewRegistry(tenant.DegradeTolerant, nil)
	s.SetTenants(reg)
	s.SetSLO(slo.New(slo.Config{Window: time.Minute}))
	s.SetTracer(qtrace.NewTracer(time.Nanosecond, 1, 8, nil))

	hostile := "evil\"tenant\\name"
	var wg sync.WaitGroup
	for _, ten := range []string{"", "search", hostile} {
		wg.Add(1)
		go func(ten string) {
			defer wg.Done()
			doTenant(t, s, http.MethodGet, "/topk?u=1&k=3", ten, nil)
		}(ten)
	}
	wg.Wait()
	doTenant(t, s, http.MethodPost, "/edges?u=0&v=9", "", nil)
	do(t, s, http.MethodGet, "/stats")

	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if errs := promexpo.Lint(strings.NewReader(mrec.Body.String())); len(errs) != 0 {
		t.Fatalf("/metrics fails exposition lint: %v\npage:\n%s", errs, mrec.Body.String())
	}
	if !strings.Contains(mrec.Body.String(), `probesim_build_info{binary="probesim-server"`) {
		t.Fatal("/metrics missing build info gauge")
	}
}
