package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"probesim/internal/core"
	"probesim/internal/gen"
)

// TestConcurrentQueriesDuringEdgeBatch drives the lock-free serving path
// under churn: query goroutines hammer /topk, /single-source and /stats
// while a writer streams /edges/batch updates. Run with -race (CI does)
// this is the proof that snapshot publication fully decouples reads from
// writes; functionally it asserts every query succeeds mid-batch and the
// final version converges.
func TestConcurrentQueriesDuringEdgeBatch(t *testing.T) {
	g := gen.PreferentialAttachment(300, 3, 17)
	srv := New(g, core.Options{EpsA: 0.3, Seed: 1, Workers: 2, NumWalks: 120}, 8, 50)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const batches = 25
	var wg sync.WaitGroup
	var stop atomic.Bool

	get := func(path string) (int, map[string]any, error) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return resp.StatusCode, nil, err
		}
		return resp.StatusCode, body, nil
	}

	// Readers: mixed query traffic, no locks anywhere on their path.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			paths := []string{
				fmt.Sprintf("/topk?u=%d&k=5", r*31%300),
				fmt.Sprintf("/single-source?u=%d", r*53%300),
				"/stats",
				fmt.Sprintf("/pair?u=%d&v=%d", r*7%300, r*11%300),
			}
			for i := 0; !stop.Load(); i++ {
				code, body, err := get(paths[i%len(paths)])
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if code != http.StatusOK {
					t.Errorf("reader %d: status %d, body %v", r, code, body)
					return
				}
			}
		}(r)
	}

	// Writer: stream add/remove batches, each one atomically published.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for b := 0; b < batches; b++ {
			u := (b * 37) % 299
			ops := []map[string]any{
				{"op": "add", "u": u, "v": u + 1},
				{"op": "add", "u": (u + 5) % 300, "v": (u + 9) % 300},
				{"op": "remove", "u": u, "v": u + 1},
			}
			if ops[1]["u"] == ops[1]["v"] {
				ops = ops[:1+copy(ops[1:], ops[2:])]
			}
			payload, _ := json.Marshal(ops)
			resp, err := http.Post(ts.URL+"/edges/batch", "application/json", bytes.NewReader(payload))
			if err != nil {
				t.Error(err)
				return
			}
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Error(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("batch %d: status %d, body %v", b, resp.StatusCode, body)
				return
			}
		}
	}()
	wg.Wait()

	// After the dust settles the published snapshot matches the graph.
	code, body, err := get("/stats")
	if err != nil || code != http.StatusOK {
		t.Fatalf("final stats: code %d err %v", code, err)
	}
	if v := body["graphVersion"].(float64); uint64(v) != g.Version() {
		t.Fatalf("published version %v != graph version %d", v, g.Version())
	}
}

// TestSingleEdgePublishesImmediately asserts a lone POST /edges is
// visible to the very next query (no cache staleness, no missed
// publication).
func TestSingleEdgePublishesImmediately(t *testing.T) {
	g := gen.ErdosRenyi(40, 100, 2)
	srv := New(g, core.Options{EpsA: 0.3, Seed: 1, NumWalks: 40}, 4, 50)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	stats := func() uint64 {
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return uint64(body["graphVersion"].(float64))
	}
	before := stats()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/edges?u=1&v=2", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /edges: status %d", resp.StatusCode)
	}
	if after := stats(); after != before+1 {
		t.Fatalf("version %d -> %d, want +1 published immediately", before, after)
	}
}
