package server

// Serving-plane tests for the deadline/budget/admission refactor:
// per-route timeouts surface as 504, work budgets and admission
// rejections as 503 with Retry-After, write backpressure rejects when
// the mutation queue is deep, and /metrics reports histograms for every
// query route. The concurrency-heavy cases run under -race in CI's
// serving-plane leg.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/shard"
)

// slowServer builds a server whose queries take long enough (hundreds of
// ms) that timeouts and admission limits engage deterministically.
func slowServer(t *testing.T, l Limits) *Server {
	t.Helper()
	g := gen.PreferentialAttachment(3000, 5, 9)
	// The tiny EpsA keeps the progressive route from legitimately
	// converging before the 1ms deadline fires (its stopping radius
	// scales with EpsA); the walk override slows the static routes.
	s := New(g, core.Options{Seed: 1, EpsA: 0.00001, NumWalks: 2_000_000}, 4, 50)
	s.SetLimits(l)
	return s
}

func TestQueryTimeoutReturns504(t *testing.T) {
	s := slowServer(t, Limits{QueryTimeout: time.Millisecond})
	for _, route := range []string{"/topk?u=1&k=5", "/single-source?u=1", "/pair?u=1&v=2", "/progressive-topk?u=1&k=5"} {
		start := time.Now()
		rec, body := do(t, s, http.MethodGet, route)
		if rec.Code != http.StatusGatewayTimeout {
			t.Fatalf("%s: status %d (%v), want 504", route, rec.Code, body)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("%s: 504 without Retry-After", route)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("%s: 1ms deadline honored only after %v", route, elapsed)
		}
	}
}

func TestWalkBudgetReturns503(t *testing.T) {
	g := gen.PreferentialAttachment(500, 4, 9)
	s := New(g, core.Options{Seed: 1, NumWalks: 100000, Budget: core.Budget{MaxWalks: 200}}, 4, 50)
	rec, _ := do(t, s, http.MethodGet, "/topk?u=1&k=5")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 for exhausted walk budget", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

func TestJoinTimeoutReturns504(t *testing.T) {
	g := gen.PreferentialAttachment(2000, 4, 9)
	s := New(g, core.Options{Seed: 1, NumWalks: 200000}, 4, 50)
	s.SetLimits(Limits{QueryTimeout: time.Millisecond})
	start := time.Now()
	rec, body := do(t, s, http.MethodGet, "/join/topk?k=3")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%v), want 504", rec.Code, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("join deadline honored only after %v", elapsed)
	}
}

func TestAdmissionRejectsOverInflightLimit(t *testing.T) {
	s := slowServer(t, Limits{MaxInflight: 1})
	// Occupy the single slot with a slow query, then probe.
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest(http.MethodGet, "/topk?u=1&k=5", nil)
		ctx, cancel := context.WithCancel(req.Context())
		defer cancel()
		go func() { <-release; cancel() }()
		close(started)
		s.ServeHTTP(httptest.NewRecorder(), req.WithContext(ctx))
	}()
	<-started
	// Wait until the slow query is inside the handler.
	deadline := time.Now().Add(5 * time.Second)
	for s.queryInflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow query never entered the handler")
		}
		time.Sleep(time.Millisecond)
	}
	rec, body := do(t, s, http.MethodGet, "/topk?u=2&k=5")
	close(release)
	wg.Wait()
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%v), want 503 admission rejection", rec.Code, body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("rejection without Retry-After")
	}
	if !strings.Contains(fmt.Sprint(body["error"]), "in flight") {
		t.Fatalf("rejection error %v does not name the limit", body["error"])
	}
	// The slot drains: a later query is admitted again (and may time out
	// for other reasons, but must not be 503-rejected).
	deadline = time.Now().Add(5 * time.Second)
	for s.queryInflight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight gauge never drained")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWriteBackpressureRejects(t *testing.T) {
	g := gen.PreferentialAttachment(200, 3, 4)
	s := New(g, core.Options{Seed: 1, NumWalks: 100}, 4, 50)
	s.SetLimits(Limits{MaxWriteQueue: 1})
	// Hold the write mutex directly (the mutator contract) so any write
	// request queues behind it deterministically.
	s.mu.Lock()
	var wg sync.WaitGroup
	wg.Add(1)
	queued := make(chan struct{})
	go func() {
		defer wg.Done()
		req := httptest.NewRequest(http.MethodPost, "/edges?u=0&v=5", nil)
		close(queued)
		s.ServeHTTP(httptest.NewRecorder(), req) // blocks on s.mu
	}()
	<-queued
	deadline := time.Now().Add(5 * time.Second)
	for s.writeWaiters.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Queue depth is now 1 == limit: the next write must bounce.
	rec, body := do(t, s, http.MethodPost, "/edges?u=0&v=6")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%v), want 503 backpressure", rec.Code, body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("backpressure rejection without Retry-After")
	}
	s.mu.Unlock()
	wg.Wait()
	// After the queue drains, writes flow again.
	rec, body = do(t, s, http.MethodPost, "/edges?u=0&v=7")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-drain write: status %d (%v)", rec.Code, body)
	}
}

func TestMetricsEndpointCoversQueryRoutes(t *testing.T) {
	s, _ := testServer(t)
	// Touch every query route once so histograms have observations.
	for _, route := range []string{"/topk?u=1&k=2", "/single-source?u=1", "/pair?u=1&v=2", "/progressive-topk?u=1&k=2", "/join/topk?k=2", "/components"} {
		if rec, body := do(t, s, http.MethodGet, route); rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d (%v)", route, rec.Code, body)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	page := rec.Body.String()
	for _, route := range []string{"/topk", "/single-source", "/pair", "/progressive-topk", "/join/topk", "/components", "/edges", "/edges/batch", "/stats"} {
		marker := fmt.Sprintf("probesim_request_duration_seconds_count{route=%q}", route)
		if !strings.Contains(page, marker) {
			t.Fatalf("/metrics missing histogram for %s:\n%s", route, page)
		}
	}
	// Every touched query route must have counted its request and at
	// least one non-+Inf-only histogram observation.
	scan := bufio.NewScanner(strings.NewReader(page))
	counts := map[string]int{}
	for scan.Scan() {
		line := scan.Text()
		if strings.HasPrefix(line, "probesim_request_duration_seconds_count{route=\"/topk\"}") {
			fmt.Sscanf(strings.Fields(line)[1], "%d", new(int))
		}
		if strings.HasPrefix(line, "probesim_requests_total{route=") {
			var n int
			fields := strings.Fields(line)
			fmt.Sscanf(fields[1], "%d", &n)
			counts[fields[0]] = n
		}
	}
	if n := counts[`probesim_requests_total{route="/topk"}`]; n != 1 {
		t.Fatalf("requests_total for /topk = %d, want 1", n)
	}
	for _, gauge := range []string{"probesim_graph_nodes", "probesim_cache_hits_total", "probesim_inflight_requests"} {
		if !strings.Contains(page, gauge) {
			t.Fatalf("/metrics missing %s", gauge)
		}
	}
}

func TestMetricsCountTimeoutsAndRejections(t *testing.T) {
	s := slowServer(t, Limits{QueryTimeout: time.Millisecond})
	do(t, s, http.MethodGet, "/topk?u=1&k=5") // 504
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	page := rec.Body.String()
	if !strings.Contains(page, `probesim_request_timeouts_total{route="/topk"} 1`) {
		t.Fatalf("timeout not counted:\n%s", page)
	}
}

func TestShardedMetricsIncludePublicationCounters(t *testing.T) {
	g := gen.PreferentialAttachment(300, 3, 4)
	st := shard.NewStore(g, 8, 0)
	s := NewSharded(st, core.Options{Seed: 1, NumWalks: 100}, 4, 50)
	do(t, s, http.MethodPost, "/edges?u=0&v=9")
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	page := rec.Body.String()
	for _, m := range []string{"probesim_shards ", "probesim_shard_publications_total", "probesim_shards_reused_total"} {
		if !strings.Contains(page, m) {
			t.Fatalf("sharded /metrics missing %s", m)
		}
	}
}

// TestCancellationUnderConcurrentLoad is the serving-plane -race proof:
// tight-deadline queries, unbounded queries, progressive queries, joins
// and write batches all in flight at once; afterwards the server still
// answers correctly.
func TestCancellationUnderConcurrentLoad(t *testing.T) {
	g := gen.PreferentialAttachment(400, 4, 21)
	st := shard.NewStore(g, 8, 0)
	st.EnableEagerSpans()
	s := NewSharded(st, core.Options{Seed: 3, NumWalks: 3000}, 8, 50)
	s.SetLimits(Limits{MaxInflight: 16, MaxWriteQueue: 8, QueryTimeout: time.Second})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var wg sync.WaitGroup
	var serverErrors atomic.Int64
	client := ts.Client()
	get := func(url string, timeout time.Duration) int {
		ctx := context.Background()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		resp, err := client.Do(req)
		if err != nil {
			return 0 // client-side timeout: fine
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				u := (w*31 + i*7) % 400
				switch i % 4 {
				case 0: // tight client deadline: cancels mid-kernel
					get(fmt.Sprintf("%s/topk?u=%d&k=5", ts.URL, u), 500*time.Microsecond)
				case 1:
					if code := get(fmt.Sprintf("%s/single-source?u=%d", ts.URL, u), 0); code == http.StatusInternalServerError {
						serverErrors.Add(1)
					}
				case 2:
					get(fmt.Sprintf("%s/progressive-topk?u=%d&k=5", ts.URL, u), time.Millisecond)
				case 3:
					ops := fmt.Sprintf(`[{"op":"add","u":%d,"v":%d}]`, u, (u+11)%400)
					resp, err := client.Post(ts.URL+"/edges/batch", "application/json", bytes.NewReader([]byte(ops)))
					if err == nil {
						if resp.StatusCode == http.StatusInternalServerError {
							serverErrors.Add(1)
						}
						resp.Body.Close()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n := serverErrors.Load(); n > 0 {
		t.Fatalf("%d requests failed with 500 under churn", n)
	}
	// The server is still healthy and correct.
	rec, body := do(t, s, http.MethodGet, "/topk?u=1&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-churn query: status %d (%v)", rec.Code, body)
	}
}

// TestEagerSpansMaterializeInBackground pins the -eager-spans satellite:
// after a publication with the flag on, the snapshot's span arrays
// appear without any query touching the store.
func TestEagerSpansMaterializeInBackground(t *testing.T) {
	g := gen.PreferentialAttachment(300, 3, 4)
	st := shard.NewStore(g, 8, 0)
	st.EnableEagerSpans()
	if err := st.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	snap := st.Publish()
	deadline := time.Now().Add(5 * time.Second)
	for snap.SpansMaterialized() == false {
		if time.Now().After(deadline) {
			t.Fatal("span arrays never materialized in the background")
		}
		time.Sleep(time.Millisecond)
	}
	// And the snapshot still validates (spans agree with offsets).
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPublishCtxAborts pins the cancelable publication seam end to end
// through the server's write path contract: a canceled context aborts
// publication, the previous snapshot stays current, and the next
// publication picks the mutations up.
func TestPublishCtxAborts(t *testing.T) {
	g := gen.PreferentialAttachment(300, 3, 4)
	st := shard.NewStore(g, 8, 0)
	before := st.Current()
	if err := st.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	snap, err := st.PublishCtx(ctx)
	if err == nil {
		t.Fatal("canceled publication succeeded")
	}
	if snap != before {
		t.Fatal("canceled publication changed the published snapshot")
	}
	if st.Stats().AbortedPublishes != 1 {
		t.Fatalf("abortedPublishes = %d, want 1", st.Stats().AbortedPublishes)
	}
	after := st.Publish()
	if after == before || after.Version() != st.Version() {
		t.Fatal("next publication did not pick up the pending mutation")
	}
	if err := after.Validate(); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, v := range after.OutNeighbors(1) {
		if v == graph.NodeID(2) {
			found = true
		}
	}
	if !found {
		t.Fatal("published snapshot lost the edge added before the aborted publish")
	}
}

// TestWriteBackpressureUnderBurst pins the add-then-check admission: a
// simultaneous burst of writers against MaxWriteQueue=1 admits at most
// one while the lock is held; the rest 503 instead of piling up.
func TestWriteBackpressureUnderBurst(t *testing.T) {
	g := gen.PreferentialAttachment(200, 3, 4)
	s := New(g, core.Options{Seed: 1, NumWalks: 100}, 4, 50)
	s.SetLimits(Limits{MaxWriteQueue: 1})
	s.mu.Lock() // every admitted writer blocks here
	const burst = 16
	codes := make(chan int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, fmt.Sprintf("/edges?u=0&v=%d", 5+i), nil))
			codes <- rec.Code
		}(i)
	}
	// All rejections return immediately; at most one writer is admitted
	// and sits on the lock.
	deadline := time.Now().Add(5 * time.Second)
	for len(codes) < burst-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d burst writers resolved; waiters=%d", len(codes), burst, s.writeWaiters.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if n := s.writeWaiters.Load(); n > 1 {
		t.Fatalf("%d writers queued past the limit of 1", n)
	}
	s.mu.Unlock()
	wg.Wait()
	close(codes)
	ok, rejected := 0, 0
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			rejected++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if ok != 1 || rejected != burst-1 {
		t.Fatalf("ok=%d rejected=%d, want 1/%d", ok, rejected, burst-1)
	}
}

// TestJoinQueueBoundedByQueryTimeout pins the timeout-before-admission
// ordering: a join waiting for the (occupied) analysis slot 504s after
// QueryTimeout even when its client set no deadline of its own.
func TestJoinQueueBoundedByQueryTimeout(t *testing.T) {
	g := gen.PreferentialAttachment(200, 3, 4)
	s := New(g, core.Options{Seed: 1, NumWalks: 100}, 4, 50)
	s.SetLimits(Limits{MaxJoinInflight: 1, QueryTimeout: 20 * time.Millisecond})
	s.joinSem <- struct{}{} // occupy the only slot
	defer func() { <-s.joinSem }()
	start := time.Now()
	rec, body := do(t, s, http.MethodGet, "/join/topk?k=3")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%v), want 504 from the queue", rec.Code, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("queued join unbounded: %v", elapsed)
	}
}

// TestBudgetExhaustionCountsSeparatelyFromRejections pins the 503
// disambiguation: an admitted query that burns its walk budget counts
// under budget_exhausted, leaving rejections a pure admission signal.
func TestBudgetExhaustionCountsSeparatelyFromRejections(t *testing.T) {
	g := gen.PreferentialAttachment(500, 4, 9)
	s := New(g, core.Options{Seed: 1, NumWalks: 100000, Budget: core.Budget{MaxWalks: 200}}, 4, 50)
	rec, _ := do(t, s, http.MethodGet, "/topk?u=1&k=5")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, req)
	page := mrec.Body.String()
	if !strings.Contains(page, `probesim_request_budget_exhausted_total{route="/topk"} 1`) {
		t.Fatalf("budget exhaustion not counted:\n%s", page)
	}
	if !strings.Contains(page, `probesim_request_rejections_total{route="/topk"} 0`) {
		t.Fatalf("budget exhaustion leaked into rejections:\n%s", page)
	}
}
