package server

// End-to-end tracing over a real fleet: one ?trace=1 query through a
// 2-group × 2-replica TCP fleet with a dead replica (failover) and a
// slow replica (hedging) must come back as ONE stitched span tree — the
// admission wait, every router-side RPC attempt (the hedge winner and
// the canceled loser), and the worker-side walk segments grafted under
// the same 128-bit id.

import (
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"probesim/internal/budget"
	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/qtrace"
	"probesim/internal/router"
	"probesim/internal/shard"
)

// delayEngine stalls the data plane by a fixed amount — a replica on a
// congested box. Serving it over TCP keeps the hedge race on real wire.
type delayEngine struct {
	*router.LocalEngine
	delay time.Duration
}

func (d *delayEngine) stall(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d.delay):
		return nil
	}
}

func (d *delayEngine) ResolveShard(ctx context.Context, version uint64, p int) (graph.CSRShard, error) {
	if err := d.stall(ctx); err != nil {
		return graph.CSRShard{}, err
	}
	return d.LocalEngine.ResolveShard(ctx, version, p)
}

func (d *delayEngine) WalkSegment(ctx context.Context, version uint64, h budget.Header, sqrtC float64, cur graph.NodeID, state uint64, room int, buf []graph.NodeID) ([]graph.NodeID, uint64, router.SegmentStatus, error) {
	if err := d.stall(ctx); err != nil {
		return buf, state, router.SegmentEnded, err
	}
	return d.LocalEngine.WalkSegment(ctx, version, h, sqrtC, cur, state, room, buf)
}

func (d *delayEngine) ResolveShards(ctx context.Context, version uint64, ps []int) ([]graph.CSRShard, error) {
	if err := d.stall(ctx); err != nil {
		return nil, err
	}
	return d.LocalEngine.ResolveShards(ctx, version, ps)
}

func (d *delayEngine) WalkBatch(ctx context.Context, version uint64, h budget.Header, sqrtC float64, walks []router.WalkStart) ([]router.WalkResult, error) {
	if err := d.stall(ctx); err != nil {
		return nil, err
	}
	return d.LocalEngine.WalkBatch(ctx, version, h, sqrtC, walks)
}

// startTCPWorker serves eng over TCP and returns the address plus a
// shutdown func.
func startTCPWorker(t *testing.T, eng router.ShardEngine) (string, func()) {
	t.Helper()
	srv := router.NewServer(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	stop := func() { srv.Close() }
	t.Cleanup(stop)
	return ln.Addr().String(), stop
}

type spanView struct {
	name, attrs string
	parent      float64
}

func spanViews(t *testing.T, body map[string]any) []spanView {
	t.Helper()
	raw, ok := body["trace"].([]any)
	if !ok {
		t.Fatalf("?trace=1 response has no trace array: %v", body)
	}
	out := make([]spanView, 0, len(raw))
	for _, v := range raw {
		m := v.(map[string]any)
		sv := spanView{name: m["name"].(string)}
		if a, ok := m["attrs"].(string); ok {
			sv.attrs = a
		}
		if p, ok := m["parent"].(float64); ok {
			sv.parent = p
		}
		out = append(out, sv)
	}
	return out
}

func TestTracedQueryAcrossHedgedFailoverFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("sockets")
	}
	g := gen.PreferentialAttachment(300, 4, 21)
	mk := func() *shard.Store { return shard.NewStore(g, 8, 0) }

	// Group 0: a replica that will die + a healthy one (failover).
	// Group 1: a 25ms-delayed replica + a fast one (hedging: the fast
	// one wins the race, the slow primary is canceled).
	addrDead, stopDead := startTCPWorker(t, router.NewLocalEngine(mk(), 0, 2))
	addrA, _ := startTCPWorker(t, router.NewLocalEngine(mk(), 0, 2))
	addrSlow, _ := startTCPWorker(t, &delayEngine{router.NewLocalEngine(mk(), 1, 2), 25 * time.Millisecond})
	addrB, _ := startTCPWorker(t, router.NewLocalEngine(mk(), 1, 2))

	var engines [][]router.ShardEngine
	for _, group := range [][]string{{addrDead, addrA}, {addrSlow, addrB}} {
		var members []router.ShardEngine
		for _, addr := range group {
			re := router.NewRemoteEngine(addr)
			t.Cleanup(func() { re.Close() })
			members = append(members, re)
		}
		engines = append(engines, members)
	}
	rt, err := router.NewReplicated(engines)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	// A fixed 3ms hedge delay: long enough that a dead replica's
	// connection error lands first (failover, not hedge), short enough
	// that the 25ms replica always loses the race.
	rt.SetHedge(router.HedgePolicy{Enabled: true, MinDelay: 3 * time.Millisecond, MaxDelay: 3 * time.Millisecond})

	srv := NewRouted(rt, core.Options{Seed: 3, NumWalks: 200}, 4, 50)
	srv.SetTracer(qtrace.NewTracer(0, 0, 8, slog.New(slog.NewTextHandler(io.Discard, nil))))

	// Kill group 0's first replica BEFORE the first query: the traced
	// query must be the one that materializes the view and delegates the
	// walk batches, because once a view is warm the batched plane serves
	// every later query with zero read RPCs — nothing left to hedge or
	// fail over. (The router's construction-time Meta broadcast already
	// warmed the connection pools.)
	stopDead()

	rec, body := do(t, srv, http.MethodGet, "/topk?u=2&k=5&trace=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("traced query: %d (%v)", rec.Code, body)
	}

	// One id stitches the whole thing: response header == inlined body id.
	hdr := rec.Header().Get("X-ProbeSim-Trace-Id")
	if hdr == "" {
		t.Fatal("no X-ProbeSim-Trace-Id response header")
	}
	if body["traceId"] != hdr {
		t.Fatalf("header id %q != body traceId %v", hdr, body["traceId"])
	}

	spans := spanViews(t, body)
	var admission, hedgeWon, canceled, failover, workerWalk, workerLabeled bool
	for _, s := range spans {
		switch {
		case s.name == "admission":
			admission = true
		case strings.Contains(s.attrs, "kind=hedge") && strings.Contains(s.attrs, "outcome=ok"):
			hedgeWon = true
		case strings.Contains(s.attrs, "outcome=canceled"):
			canceled = true
		case strings.Contains(s.attrs, "kind=failover"):
			failover = true
		}
		if s.name == "worker.walk_batch" {
			workerWalk = true
			if strings.Contains(s.attrs, "worker=") {
				workerLabeled = true
			}
		}
	}
	if !admission {
		t.Error("no admission span")
	}
	if !hedgeWon {
		t.Error("no winning hedge span (kind=hedge outcome=ok)")
	}
	if !canceled {
		t.Error("no canceled-loser span (outcome=canceled)")
	}
	if !failover {
		t.Error("no failover span (kind=failover)")
	}
	if !workerWalk {
		t.Error("no grafted worker.walk_batch span")
	}
	if !workerLabeled {
		t.Error("grafted worker span carries no worker= label")
	}
	if c := rt.Counters(); c.HedgesSent == 0 || c.HedgesWon == 0 || c.Failovers == 0 {
		t.Errorf("router counters disagree with the trace: %+v", c)
	}
	if t.Failed() {
		for _, s := range spans {
			t.Logf("span %-24s parent=%g attrs=%s", s.name, s.parent, s.attrs)
		}
	}

	// The trace also landed in the ring (forced traces are sampled).
	_, dq := do(t, srv, http.MethodGet, "/debug/queries")
	if dq["enabled"] != true {
		t.Fatalf("/debug/queries: %v", dq)
	}
	if qs, ok := dq["queries"].([]any); !ok || len(qs) == 0 {
		t.Fatalf("/debug/queries ring is empty: %v", dq)
	}
}
