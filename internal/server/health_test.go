package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"probesim/internal/core"
	"probesim/internal/graph"
)

// TestProbesOnServerMux: /healthz and /readyz ride the server's own
// mux, readiness starts true, and SetDraining flips /readyz to 503
// while /healthz (and the query routes) stay up — the drain ordering
// cmd/probesim-server relies on.
func TestProbesOnServerMux(t *testing.T) {
	g := graph.New(4)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	s := New(g, core.Options{Seed: 1, NumWalks: 50}, 4, 10)
	get := func(path string) int {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz: %d", code)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before drain: %d", code)
	}
	s.Health().SetDraining()
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while draining: %d", code)
	}
	if code := get("/topk?u=0&k=2"); code != http.StatusOK {
		t.Fatalf("query while draining must still serve (drain lets in-flight finish): %d", code)
	}
}
