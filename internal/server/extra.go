package server

// Extended endpoints: pairwise queries, similarity joins, structure
// reports, and batched edge updates. These sit on the same snapshot
// discipline as the core handlers: every read — including the analysis
// endpoints /join/topk and /components — runs lock-free against the
// published snapshot, updates take the write mutex and republish, and
// the Querier invalidates itself via the snapshot version. A join or
// component scan therefore never stalls an edge update (and vice versa);
// it simply reports the consistent state it pinned at the start.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"probesim/internal/budget"
	"probesim/internal/core"
	"probesim/internal/graph"
	"probesim/internal/router"
	"probesim/internal/shard"
	"probesim/internal/simjoin"
)

// joinNodeLimit bounds the graph size for which the O(n·query) join
// endpoints are allowed; beyond this a join would monopolize the service.
const joinNodeLimit = 20000

func (s *Server) registerExtra() {
	s.handle("/pair", classQuery, s.handlePair)
	s.handle("/join/topk", classJoin, s.handleJoinTopK)
	s.handle("/components", classJoin, s.handleComponents)
	s.handle("/edges/batch", classWrite, s.handleEdgeBatch)
	s.handle("/progressive-topk", classQuery, s.handleProgressiveTopK)
}

// handleProgressiveTopK answers a top-k query with the any-time algorithm
// and reports its stopping statistics, so clients can see what early
// stopping saved. Progressive queries bypass the Querier cache: their
// cost depends on the query's separability, not on repetition.
func (s *Server) handleProgressiveTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	u, err := s.nodeParam(r, "u")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k < 1 || k > 10000 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parameter k must be in [1, 10000]"))
			return
		}
	}
	res, stats, err := core.TopKProgressive(r.Context(), s.ex.Snapshot(), u, k, s.opt)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	out := make([]scoredNodeJSON, len(res))
	for i, r := range res {
		out[i] = scoredNodeJSON{Node: r.Node, Score: r.Score}
	}
	body := map[string]any{
		"query": u, "results": out,
		"walks": stats.Walks, "budgetWalks": stats.BudgetWalks,
		"rounds": stats.Rounds, "radius": stats.Radius,
		"separated": stats.Separated,
	}
	addTrace(r, body)
	writeJSON(w, http.StatusOK, body)
}

// handlePair answers s(u, v) from the cached single-source vector of u, so
// repeated pair probes against one node cost a single query.
func (s *Server) handlePair(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	u, err := s.nodeParam(r, "u")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.nodeParam(r, "v")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	scores, err := s.singleSourceScores(w, r, u)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	body := map[string]any{
		"u": u, "v": v, "score": scores[v],
	}
	addTrace(r, body)
	writeJSON(w, http.StatusOK, body)
}

// handleJoinTopK runs a global top-k similarity join. This is n
// single-source queries, so it is limited to graphs under joinNodeLimit
// nodes and k <= 1000.
func (s *Server) handleJoinTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		var err error
		k, err = strconv.Atoi(raw)
		if err != nil || k < 1 || k > 1000 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parameter k must be in [1, 1000]"))
			return
		}
	}
	// The join runs n single-source queries against the published snapshot:
	// a consistent point-in-time view, pinned for the whole join, that
	// never blocks (and is never blocked by) edge updates. Joins DO
	// serialize among themselves (the classJoin semaphore in the admission
	// middleware) — each one is an O(n·query) fan-out, so unbounded
	// concurrent joins would starve the rest of the service. The request
	// context bounds the whole fan-out: an expired deadline stops every
	// per-source query at its next kernel checkpoint.
	snap := s.ex.Snapshot()
	if n := snap.NumNodes(); n > joinNodeLimit {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("join needs one query per node; graph has %d nodes, limit %d", n, joinNodeLimit))
		return
	}
	pairs, err := simjoin.TopKJoin(r.Context(), snap, k, simjoin.Options{Query: s.opt})
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	type pairJSON struct {
		U     graph.NodeID `json:"u"`
		V     graph.NodeID `json:"v"`
		Score float64      `json:"score"`
	}
	out := make([]pairJSON, len(pairs))
	for i, p := range pairs {
		out[i] = pairJSON{U: p.U, V: p.V, Score: p.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{"k": k, "pairs": out})
}

// handleComponents reports the graph's component structure (strong and
// weak counts plus the largest sizes), the numbers operators check after
// bulk loads.
func (s *Server) handleComponents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	// Component scans read the published snapshot through the same
	// devirtualized adjacency path the query kernels use: no lock, no
	// interference with the write path — and, through the Ctx variants,
	// under the request's deadline: the traversal checkpoints the budget
	// meter mid-scan, so a huge snapshot cannot pin the analysis slot past
	// its timeout. On a routed backend the scan binds to the request like
	// any query, so a worker failure surfaces as 502 instead of silently
	// under-counting components.
	view := graph.View(s.ex.Snapshot())
	finish := func() error { return nil }
	// One meter shared by the traversal checkpoints AND the bound view: a
	// shard worker dying mid-scan trips it (via BoundView.fail), so the
	// scan aborts at its next poll instead of walking the rest of the
	// graph over empty adjacency before reporting the 502.
	m := budget.New(r.Context(), 0, 0, 0)
	if b, ok := view.(core.QueryBinder); ok {
		view, finish = b.BindQuery(r.Context(), m)
	}
	sccIDs, sccCount, err := graph.StronglyConnectedMeter(m, view)
	var wccIDs []int32
	var wccCount int
	if err == nil {
		wccIDs, wccCount, err = graph.WeaklyConnectedMeter(m, view)
	}
	if ferr := finish(); ferr != nil {
		err = ferr
	}
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"stronglyConnected": sccCount,
		"largestSCC":        largestComponent(sccIDs, sccCount),
		"weaklyConnected":   wccCount,
		"largestWCC":        largestComponent(wccIDs, wccCount),
	})
}

func largestComponent(ids []int32, count int) int {
	if count == 0 {
		return 0
	}
	sizes := make([]int, count)
	for _, id := range ids {
		sizes[id]++
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return max
}

// batchOp is one update in an /edges/batch request body.
type batchOp struct {
	Op string       `json:"op"` // "add" or "remove"
	U  graph.NodeID `json:"u"`
	V  graph.NodeID `json:"v"`
}

// handleEdgeBatch applies a JSON array of edge updates atomically under one
// write lock: either every op applies, or the graph is rolled back and the
// failing op is reported. Dynamic workloads stream churn through this
// endpoint instead of paying one round trip per edge.
func (s *Server) handleEdgeBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var ops []batchOp
	if err := json.NewDecoder(r.Body).Decode(&ops); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("body: %v", err))
		return
	}
	if len(ops) > 100000 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d ops exceeds limit", len(ops)))
		return
	}
	// Deferred idempotent unlock: a panic mid-batch (rollback panics on
	// inconsistency by design) must not leave the write mutex held forever
	// under net/http's handler-panic recovery.
	s.mu.Lock()
	unlock := s.unlockOnce()
	defer unlock()
	if s.rt != nil && s.rt.Distributed() {
		// Routed backend: ship the whole batch through the router's write
		// plane in ONE broadcast per worker (not one RPC per op). Each
		// worker applies all-or-rollback; the router rolls back workers
		// that succeeded if any failed, so the atomicity contract holds
		// across the fleet.
		rops := make([]router.Op, 0, len(ops))
		for i, op := range ops {
			switch op.Op {
			case "add":
				rops = append(rops, router.Op{U: op.U, V: op.V})
			case "remove":
				rops = append(rops, router.Op{Remove: true, U: op.U, V: op.V})
			default:
				unlock()
				writeError(w, http.StatusBadRequest, fmt.Errorf("op %d: unknown op %q", i, op.Op))
				return
			}
		}
		// The batch does not inherit the request context: aborting half a
		// fleet broadcast on a client disconnect would orphan an
		// identified batch mid-retry for nothing (see the publication
		// comment below).
		if err := s.rt.Apply(context.Background(), rops); err != nil {
			unlock()
			if errors.Is(err, router.ErrTransport) || errors.Is(err, router.ErrUnavailable) {
				// An entire replica group stayed unreachable through the
				// retry budget: the batch is NOT acknowledged fleet-wide,
				// but every replica that took it HOLDS it durably (a single
				// unreachable replica is no longer an error — its group
				// peers ack and the ring replays it later). This
				// deliberately carries no Retry-After: re-POSTing the same
				// ops would get a fresh batch id and double-apply on the
				// replicas that already hold the original (parallel edges
				// are legal, so the damage is silent). The client must
				// verify state (or wait for the health pass to name the
				// lost group) before re-submitting.
				writeError(w, http.StatusBadGateway, fmt.Errorf("batch partially acknowledged (surviving appliers hold it durably); do not blindly re-submit — verify before retrying: %v", err))
				return
			}
			writeError(w, http.StatusBadRequest, fmt.Errorf("batch rejected: %v", err))
			return
		}
	} else {
		// In-process backends share one write path: append to the
		// write-ahead log when durability is armed, then apply
		// all-or-rollback. An acknowledged batch is on disk before the
		// 200 goes out.
		sops := make([]shard.EdgeOp, 0, len(ops))
		for i, op := range ops {
			switch op.Op {
			case "add":
				sops = append(sops, shard.EdgeOp{U: op.U, V: op.V})
			case "remove":
				sops = append(sops, shard.EdgeOp{Remove: true, U: op.U, V: op.V})
			default:
				unlock()
				writeError(w, http.StatusBadRequest, fmt.Errorf("op %d: unknown op %q", i, op.Op))
				return
			}
		}
		if err := s.applyOps(sops); err != nil {
			unlock()
			writeApplyError(w, err)
			return
		}
	}
	// One snapshot publication for the whole batch: queries switch from the
	// pre-batch graph to the post-batch graph atomically and never observe
	// a partially applied batch. Publication does not inherit the request
	// context — the batch is already applied, and aborting the publish on
	// a client disconnect would hide a durable mutation from every query
	// until some later write republishes (see handleEdges).
	snap := s.ex.Refresh()
	unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"applied": len(ops), "edges": snap.NumEdges(), "version": snap.Version(),
	})
}
