package server

// Tenant QoS + SLO plane glue: arming the tenant registry (which flips
// query admission from immediate-503 to deficit-weighted fair queueing),
// arming the per-tenant SLO tracker, the /debug/slo endpoint, and the
// tenant-labeled families on /metrics. The policy engines live in
// internal/tenant and internal/slo; this file is the HTTP surface.

import (
	"fmt"
	"io"
	"net/http"

	"probesim/internal/promexpo"
	"probesim/internal/slo"
	"probesim/internal/tenant"
)

// SetTenants arms multi-tenant admission: requests resolve their tenant
// from the X-ProbeSim-Tenant header, tenant class policy governs
// degradation and budget caps, and — when MaxInflight is set — query
// admission switches from immediate-503 to the deficit-weighted fair
// queue, where a tenant 503s only when its OWN wait queue is full.
// Call after SetLimits and before serving (like SetLimits, it is not
// synchronized with requests). A nil registry keeps the pre-tenant
// behavior exactly.
func (s *Server) SetTenants(reg *tenant.Registry) {
	s.tenants = reg
	s.fairq = nil
	if reg != nil && s.limits.MaxInflight > 0 {
		s.fairq = tenant.NewFairQueue(s.limits.MaxInflight)
	}
}

// Tenants returns the armed registry, nil when multi-tenancy is off.
func (s *Server) Tenants() *tenant.Registry { return s.tenants }

// SetSLO arms per-tenant SLO tracking: every completed query feeds the
// tracker's rolling windows, /debug/slo serves the windowed state, and
// /metrics grows the probesim_slo_* families. Call before serving.
func (s *Server) SetSLO(tr *slo.Tracker) { s.slo = tr }

// SLO returns the armed tracker, nil when SLO tracking is off.
func (s *Server) SLO() *slo.Tracker { return s.slo }

// handleDebugSLO serves the per-tenant windowed SLO state as JSON. With
// the tracker unarmed it reports the fact instead of an empty mystery.
func (s *Server) handleDebugSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	if s.slo == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false, "tenants": []any{}})
		return
	}
	snaps := s.slo.Snapshot()
	if snaps == nil {
		snaps = []slo.TenantSLO{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"enabled": true, "tenants": snaps})
}

// writeTenantMetrics renders the tenant-labeled families: admission
// counters per tenant (from the registry) and windowed SLO state (from
// the tracker). Tenant names are client-supplied bytes, so every label
// value goes through EscapeLabel.
func (s *Server) writeTenantMetrics(out io.Writer) {
	if s.tenants != nil {
		all := s.tenants.All()
		label := func(t *tenant.Tenant) string {
			// EscapeLabel already produced exposition-format escapes; %q
			// would double them.
			return `tenant="` + promexpo.EscapeLabel(t.Name) + `",class="` + t.Class.String() + `"`
		}
		sample := func(v func(*tenant.Tenant) int64) []promexpo.Sample {
			samples := make([]promexpo.Sample, len(all))
			for i, t := range all {
				samples[i] = promexpo.Sample{Label: label(t), Value: v(t)}
			}
			return samples
		}
		promexpo.WriteLabeled(out, "probesim_tenant_inflight", "Similarity queries the tenant has executing now.", "gauge",
			sample(func(t *tenant.Tenant) int64 { return t.Inflight.Load() }))
		promexpo.WriteLabeled(out, "probesim_tenant_admitted_total", "Similarity queries admitted for the tenant (including after queueing).", "counter",
			sample(func(t *tenant.Tenant) int64 { return t.Admitted.Load() }))
		promexpo.WriteLabeled(out, "probesim_tenant_queued_total", "Similarity queries that waited in the tenant's fair queue.", "counter",
			sample(func(t *tenant.Tenant) int64 { return t.Queued.Load() }))
		promexpo.WriteLabeled(out, "probesim_tenant_rejected_total", "Similarity queries refused because the tenant's own queue (or the hard limit) was full.", "counter",
			sample(func(t *tenant.Tenant) int64 { return t.Rejected.Load() }))
		promexpo.WriteLabeled(out, "probesim_tenant_degraded_total", "Similarity queries the tenant had served at widened epsa.", "counter",
			sample(func(t *tenant.Tenant) int64 { return t.Degraded.Load() }))
		promexpo.WriteLabeled(out, "probesim_tenant_degrade_refused_total", "Similarity queries refused because X-ProbeSim-Max-Epsa forbade the degrade.", "counter",
			sample(func(t *tenant.Tenant) int64 { return t.DegradeRefused.Load() }))
	}
	if s.slo != nil {
		snaps := s.slo.Snapshot()
		label := func(ts slo.TenantSLO) string {
			return `tenant="` + promexpo.EscapeLabel(ts.Tenant) + `"`
		}
		fsample := func(v func(slo.TenantSLO) float64) []promexpo.FloatSample {
			samples := make([]promexpo.FloatSample, len(snaps))
			for i, ts := range snaps {
				samples[i] = promexpo.FloatSample{Label: label(ts), Value: v(ts)}
			}
			return samples
		}
		sample := func(v func(slo.TenantSLO) int64) []promexpo.Sample {
			samples := make([]promexpo.Sample, len(snaps))
			for i, ts := range snaps {
				samples[i] = promexpo.Sample{Label: label(ts), Value: v(ts)}
			}
			return samples
		}
		promexpo.WriteLabeledFloat(out, "probesim_slo_p99_seconds", "Windowed p99 latency upper bound per tenant.", "gauge",
			fsample(func(ts slo.TenantSLO) float64 { return ts.P99Seconds }))
		promexpo.WriteLabeledFloat(out, "probesim_slo_p99_objective_seconds", "The tenant's p99 latency objective.", "gauge",
			fsample(func(ts slo.TenantSLO) float64 { return ts.Objective.P99.Seconds() }))
		promexpo.WriteLabeledFloat(out, "probesim_slo_availability", "Windowed success fraction per tenant.", "gauge",
			fsample(func(ts slo.TenantSLO) float64 { return ts.Availability }))
		promexpo.WriteLabeledFloat(out, "probesim_slo_availability_objective", "The tenant's availability objective.", "gauge",
			fsample(func(ts slo.TenantSLO) float64 { return ts.Objective.Availability }))
		promexpo.WriteLabeledFloat(out, "probesim_slo_error_budget_burn_ratio", "Error budget burn rate: observed error rate over the rate the objective allows (1 = budget-neutral).", "gauge",
			fsample(func(ts slo.TenantSLO) float64 { return ts.BurnRate }))
		promexpo.WriteLabeled(out, "probesim_slo_window_requests", "Queries in the tenant's current SLO window.", "gauge",
			sample(func(ts slo.TenantSLO) int64 { return ts.Requests }))
		promexpo.WriteLabeled(out, "probesim_slo_window_errors", "Failed (5xx) queries in the tenant's current SLO window.", "gauge",
			sample(func(ts slo.TenantSLO) int64 { return ts.Errors }))
	}
}
