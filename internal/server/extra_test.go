package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"probesim/internal/core"
	"probesim/internal/gen"
)

func newExtraServer(t *testing.T) *httptest.Server {
	t.Helper()
	g := gen.ErdosRenyi(40, 200, 3)
	srv := New(g, core.Options{EpsA: 0.1, Seed: 1}, 16, 50)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return out
}

func TestPairEndpoint(t *testing.T) {
	ts := newExtraServer(t)
	out := getJSON(t, ts.URL+"/pair?u=1&v=2", http.StatusOK)
	score, ok := out["score"].(float64)
	if !ok {
		t.Fatalf("no score in %v", out)
	}
	if score < 0 || score > 1 {
		t.Fatalf("score %v outside [0, 1]", score)
	}
	// Self pair through the same path.
	self := getJSON(t, ts.URL+"/pair?u=3&v=3", http.StatusOK)
	if self["score"].(float64) != 1 {
		t.Fatalf("s(3,3) = %v, want 1", self["score"])
	}
}

func TestPairEndpointErrors(t *testing.T) {
	ts := newExtraServer(t)
	getJSON(t, ts.URL+"/pair?u=1", http.StatusBadRequest)
	getJSON(t, ts.URL+"/pair?u=1&v=9999", http.StatusBadRequest)
	resp, err := http.Post(ts.URL+"/pair?u=1&v=2", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /pair: status %d, want 405", resp.StatusCode)
	}
}

func TestJoinTopKEndpoint(t *testing.T) {
	ts := newExtraServer(t)
	out := getJSON(t, ts.URL+"/join/topk?k=5", http.StatusOK)
	pairs, ok := out["pairs"].([]any)
	if !ok {
		t.Fatalf("no pairs in %v", out)
	}
	if len(pairs) != 5 {
		t.Fatalf("got %d pairs, want 5", len(pairs))
	}
	prev := 2.0
	for _, p := range pairs {
		m := p.(map[string]any)
		s := m["score"].(float64)
		if s > prev {
			t.Fatal("pairs not sorted by descending score")
		}
		prev = s
		if m["u"].(float64) >= m["v"].(float64) {
			t.Fatal("pair not normalized to u < v")
		}
	}
	getJSON(t, ts.URL+"/join/topk?k=0", http.StatusBadRequest)
	getJSON(t, ts.URL+"/join/topk?k=99999", http.StatusBadRequest)
}

func TestProgressiveTopKEndpoint(t *testing.T) {
	ts := newExtraServer(t)
	out := getJSON(t, ts.URL+"/progressive-topk?u=1&k=3", http.StatusOK)
	results, ok := out["results"].([]any)
	if !ok || len(results) != 3 {
		t.Fatalf("results = %v, want 3 entries", out["results"])
	}
	walks, ok := out["walks"].(float64)
	if !ok || walks < 1 {
		t.Fatalf("walks = %v, want >= 1", out["walks"])
	}
	if budget := out["budgetWalks"].(float64); walks > budget {
		t.Fatalf("walks %v exceed budget %v", walks, budget)
	}
	if _, ok := out["separated"].(bool); !ok {
		t.Fatalf("separated missing: %v", out)
	}
	getJSON(t, ts.URL+"/progressive-topk?u=1&k=0", http.StatusBadRequest)
	getJSON(t, ts.URL+"/progressive-topk?k=3", http.StatusBadRequest)
}

func TestComponentsEndpoint(t *testing.T) {
	ts := newExtraServer(t)
	out := getJSON(t, ts.URL+"/components", http.StatusOK)
	for _, key := range []string{"stronglyConnected", "weaklyConnected", "largestSCC", "largestWCC"} {
		v, ok := out[key].(float64)
		if !ok || v < 1 {
			t.Fatalf("%s = %v, want >= 1", key, out[key])
		}
	}
	if out["largestSCC"].(float64) > out["largestWCC"].(float64) {
		t.Fatal("largest SCC cannot exceed largest WCC")
	}
}

func TestEdgeBatchApplies(t *testing.T) {
	g := gen.ErdosRenyi(20, 40, 7)
	srv := New(g, core.Options{EpsA: 0.2, Seed: 1}, 4, 50)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	before := g.NumEdges()
	var buf bytes.Buffer
	// Use node pairs guaranteed absent: ErdosRenyi(20, 40) leaves most of
	// the 380 possible edges free; pick until two non-edges found.
	type op struct {
		Op string `json:"op"`
		U  int    `json:"u"`
		V  int    `json:"v"`
	}
	var ops []op
	for u := 0; u < 20 && len(ops) < 2; u++ {
		for v := 0; v < 20 && len(ops) < 2; v++ {
			if u != v && !g.HasEdge(int32(u), int32(v)) {
				ops = append(ops, op{"add", u, v})
			}
		}
	}
	if err := json.NewEncoder(&buf).Encode(ops); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/edges/batch", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if g.NumEdges() != before+2 {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), before+2)
	}
}

func TestEdgeBatchRollsBack(t *testing.T) {
	g := gen.ErdosRenyi(20, 40, 9)
	srv := New(g, core.Options{EpsA: 0.2, Seed: 1}, 4, 50)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	before := g.NumEdges()
	// Find a non-edge for the first (valid) op; second op removes a
	// missing edge and must fail, rolling back the first.
	var u, v int32 = -1, -1
	for a := int32(0); a < 20 && u < 0; a++ {
		for b := int32(0); b < 20; b++ {
			if a != b && !g.HasEdge(a, b) {
				u, v = a, b
				break
			}
		}
	}
	body := bytes.NewBufferString(fmt.Sprintf(
		`[{"op":"add","u":%d,"v":%d},{"op":"remove","u":%d,"v":%d}]`,
		u, v, u, (v+1)%20))
	resp, err := http.Post(ts.URL+"/edges/batch", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch status %d, want 400", resp.StatusCode)
	}
	if g.NumEdges() != before {
		t.Fatalf("edges = %d after rollback, want %d", g.NumEdges(), before)
	}
	if g.HasEdge(u, v) {
		t.Fatal("first op not rolled back")
	}
}

func TestEdgeBatchValidation(t *testing.T) {
	ts := newExtraServer(t)
	resp, err := http.Post(ts.URL+"/edges/batch", "application/json", bytes.NewBufferString("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/edges/batch", "application/json",
		bytes.NewBufferString(`[{"op":"frobnicate","u":1,"v":2}]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown op: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/edges/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", resp.StatusCode)
	}
}
