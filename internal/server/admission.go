package server

// Admission control and instrumentation: every route is wrapped by
// s.handle, which enforces the server's Limits before the handler runs
// and feeds the per-route latency histograms, in-flight gauges and
// outcome counters behind /metrics.
//
// The control model, per route class:
//
//   - Queries (classQuery): a bounded in-flight counter. Without a
//     tenant registry (SetTenants), a request over the limit is rejected
//     immediately with 503 + Retry-After rather than queued — queueing
//     work the client will time out on anyway only grows the latency
//     tail. With tenants configured, admission switches to deficit-
//     weighted fair queueing (tenant.FairQueue): each tenant waits in
//     its own small bounded queue and 503s only when THAT queue is full,
//     so a batch tenant's backlog can never reject an interactive
//     tenant. Admitted queries run under the configured query timeout
//     (capped further by the tenant's class budget), which the kernels
//     honor at their budget checkpoints (504 on expiry, with the partial
//     work discarded).
//   - Joins (classJoin): a small semaphore (default 1, the historical
//     bound on the O(n·query) fan-out) acquired while the request's
//     context is still live: a join that cannot start before its
//     deadline 504s in the queue without ever touching the kernel.
//   - Writes (classWrite): queue-depth rejection. Writers serialize on
//     the mutation mutex; once the line exceeds MaxWriteQueue the server
//     answers 503 + Retry-After instead of letting edge batches pile up
//     on the lock — backpressure the client can see and pace against.
//   - Meta (classMeta): /stats and /metrics are never limited; an
//     operator must be able to observe an overloaded server.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"probesim/internal/core"
	"probesim/internal/graph"
	"probesim/internal/promexpo"
	"probesim/internal/qtrace"
	"probesim/internal/router"
	"probesim/internal/tenant"
)

// Limits configures admission control. The zero value imposes no limits
// and no timeout (the library-friendly default); cmd/probesim-server
// installs production limits from its flags. Set limits before the
// server starts serving — SetLimits is not synchronized with requests.
type Limits struct {
	// MaxInflight bounds concurrently executing similarity queries
	// (/topk, /single-source, /pair, /progressive-topk). 0 = unlimited.
	MaxInflight int
	// SoftInflight is the degrade watermark: when more than this many
	// similarity queries are in flight (but not more than MaxInflight),
	// new queries are admitted DEGRADED — they run with a wider εa
	// (DegradeFactor× — a quadratically smaller walk budget), bypass the
	// result cache, and carry an X-ProbeSim-Degraded header telling the
	// client what accuracy it actually got. Load keeps being served with
	// honest labels instead of 503s; only past MaxInflight does the
	// server refuse. 0 disables degradation.
	SoftInflight int
	// DegradeFactor is the εa multiplier for degraded queries; values
	// <= 1 mean the default of 2 (a ~4× smaller walk budget).
	DegradeFactor float64
	// MaxJoinInflight bounds concurrently executing analysis scans
	// (/join/topk, /components). 0 = the historical default of 1.
	MaxJoinInflight int
	// MaxWriteQueue bounds writers waiting for the mutation mutex
	// (/edges, /edges/batch). 0 = unlimited.
	MaxWriteQueue int
	// QueryTimeout is the per-request deadline applied to query and join
	// routes. 0 = none. The kernels observe it at their checkpoints, so
	// expiry surfaces within microseconds of work as HTTP 504.
	QueryTimeout time.Duration
}

// SetLimits installs admission-control limits. Call before serving.
func (s *Server) SetLimits(l Limits) {
	if l.MaxJoinInflight <= 0 {
		l.MaxJoinInflight = 1
	}
	s.limits = l
	s.joinSem = make(chan struct{}, l.MaxJoinInflight)
}

// Limits returns the active limits.
func (s *Server) Limits() Limits { return s.limits }

// Metrics returns the server's metrics registry (for tests and for
// embedding the server in a larger process).
func (s *Server) Metrics() *promexpo.Registry { return s.reg }

type routeClass int

const (
	classQuery routeClass = iota
	classJoin
	classWrite
	classMeta
)

// statusWriter captures the response status so the middleware can
// classify the outcome after the handler returns. budgetExhausted
// disambiguates the two 503 families: writeQueryError sets it when the
// 503 came from an admitted query using up its work budget, so the
// Rejections counter stays a pure admission/backpressure signal.
type statusWriter struct {
	http.ResponseWriter
	status          int
	budgetExhausted bool
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// handle registers a route with admission control and instrumentation.
func (s *Server) handle(route string, cl routeClass, h http.HandlerFunc) {
	rm := s.reg.Route(route)
	s.mux.HandleFunc(route, func(w http.ResponseWriter, r *http.Request) {
		rm.Requests.Add(1)
		rm.InFlight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		// Tenant identity resolves before anything can refuse the request
		// so rejections are attributed too; meta routes stay anonymous
		// (probes and scrapes are nobody's traffic).
		var ten *tenant.Tenant
		if s.tenants != nil && cl != classMeta {
			ten = s.tenants.Resolve(r.Header.Get(tenant.Header))
		}
		// The trace decision happens before anything can refuse the
		// request, so a rejected or timed-out query still gets an id on
		// the response header and a slow-query record; the trace (when
		// sampled) rides the request context into the kernels.
		tr, tid := s.beginTrace(sw, r, cl)
		if tr != nil {
			r = r.WithContext(qtrace.NewContext(r.Context(), tr, 0))
		}
		degradedServed := false
		defer func() {
			rm.InFlight.Add(-1)
			dur := time.Since(start)
			rm.Latency.Observe(dur)
			switch {
			case sw.status == http.StatusGatewayTimeout:
				rm.Timeouts.Add(1)
			case sw.status == http.StatusServiceUnavailable && sw.budgetExhausted:
				rm.BudgetExhausted.Add(1)
			case sw.status == http.StatusServiceUnavailable:
				rm.Rejections.Add(1)
			case sw.status >= 400:
				rm.Errors.Add(1)
			}
			if cl == classQuery {
				if sw.status < 400 {
					s.observeServiceTime(dur)
				}
				if s.slo != nil {
					name := tenant.DefaultName
					if ten != nil {
						name = ten.Name
					}
					status := sw.status
					if status == 0 {
						status = http.StatusOK
					}
					s.slo.Observe(name, dur, status, degradedServed)
				}
			}
			tname := ""
			if ten != nil {
				tname = ten.Name
			}
			s.finishTrace(tr, tid, route, tname, sw.status, start, dur)
		}()

		// The timeout wraps the request BEFORE admission, so time spent
		// queued for a join or fair-queue slot counts against the
		// deadline: a request that cannot start in time 504s in the queue
		// (bounded even for clients that set no deadline of their own)
		// instead of waiting forever and starting stale. A tenant class
		// budget cap tightens the server-wide timeout, never loosens it.
		if cl == classQuery || cl == classJoin {
			timeout := s.limits.QueryTimeout
			if ten != nil {
				if cap := ten.Config.BudgetCap; cap > 0 && (timeout == 0 || cap < timeout) {
					timeout = cap
				}
			}
			if timeout > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), timeout)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		aref := tr.StartSpan("admission", 0)
		release, degraded, ok := s.admit(sw, r, cl, ten)
		if !ok {
			tr.EndSpanAnnot(aref, "outcome=rejected")
			return
		}
		tr.EndSpan(aref)
		defer release()
		// Tenant degrade policy: a class that did not accept the degrade
		// path is served at full accuracy even over the soft watermark —
		// the watermark still sheds their load via the hard limit/queue.
		if degraded && ten != nil && !ten.Config.AllowDegrade {
			degraded = false
		}
		// X-ProbeSim-Max-Epsa: the client's accuracy floor. Unsatisfiable
		// against the configured base εa is a client error; satisfiable
		// but violated by the degrade the server wants to apply is a
		// refusal — the client said degraded answers past this bound are
		// worthless, so 503 + Retry-After beats burning budget on one.
		if cl == classQuery {
			if raw := r.Header.Get(tenant.MaxEpsaHeader); raw != "" {
				maxEpsa, err := strconv.ParseFloat(raw, 64)
				if err != nil || maxEpsa <= 0 {
					writeError(sw, http.StatusBadRequest, fmt.Errorf("server: bad %s %q", tenant.MaxEpsaHeader, raw))
					return
				}
				if base := s.servedEpsA(); maxEpsa < base {
					writeError(sw, http.StatusBadRequest, fmt.Errorf(
						"server: %s %g is below the configured epsa %g", tenant.MaxEpsaHeader, maxEpsa, base))
					return
				}
				if degraded && s.degradedOptions().EpsA > maxEpsa {
					if ten != nil {
						ten.DegradeRefused.Add(1)
					}
					s.writeRejection(sw, fmt.Errorf(
						"server: degraded to epsa %g under load, over the requested bound %g",
						s.degradedOptions().EpsA, maxEpsa))
					return
				}
			}
		}
		if degraded {
			rm.Degraded.Add(1)
			if ten != nil {
				ten.Degraded.Add(1)
			}
			degradedServed = true
			r = r.WithContext(context.WithValue(r.Context(), degradedKey{}, true))
		}
		h(sw, r)
	})
}

// degradedKey marks a request admitted over the soft watermark.
type degradedKey struct{}

func isDegraded(ctx context.Context) bool {
	v, _ := ctx.Value(degradedKey{}).(bool)
	return v
}

// degradedHeader tells the client its answer was computed at reduced
// accuracy, and which εa it actually got.
const degradedHeader = "X-ProbeSim-Degraded"

// degradedOptions derives the wider-εa options a degraded query runs
// with: εa scaled by DegradeFactor (walk budget shrinks quadratically),
// an explicit NumWalks override scaled to match.
func (s *Server) degradedOptions() core.Options {
	f := s.limits.DegradeFactor
	if f <= 1 {
		f = 2
	}
	opt := s.opt
	epsA := opt.EpsA
	if epsA == 0 {
		epsA = 0.1 // the documented default applied by core
	}
	epsA *= f
	if epsA > 0.9 {
		epsA = 0.9
	}
	opt.EpsA = epsA
	if opt.NumWalks > 0 {
		opt.NumWalks = int(float64(opt.NumWalks) / (f * f))
		if opt.NumWalks < 1 {
			opt.NumWalks = 1
		}
	}
	return opt
}

// tierHeader tells the client which serving tier answered: "hot" (the
// precomputed hot-source index — same bytes the live kernel would
// produce, at microsecond latency) or "live" (the kernel ran). Sent only
// when the hot tier is enabled, so pre-tier deployments are untouched.
const tierHeader = "X-ProbeSim-Tier"

// singleSourceScores answers the request's single-source query under its
// admission verdict. With the hot tier armed, the index is consulted
// FIRST — even for degraded admissions, since a hot hit costs
// microseconds and serves FULL accuracy, strictly better than degrading
// — unless the request opts out with ?tier=live. Cold sources fall
// through to the pre-tier paths completely unchanged: the normal path
// goes through the cache; a degraded request runs directly on the
// executor with the wider εa (degraded vectors must never pollute the
// full-accuracy cache) and stamps the response with the accuracy it got.
func (s *Server) singleSourceScores(w http.ResponseWriter, r *http.Request, u graph.NodeID) ([]float64, error) {
	if s.hot != nil {
		if r.URL.Query().Get("tier") == "live" {
			// Escape hatch: bypass the index but keep feeding the
			// popularity sketch, so escaped traffic still shapes the hot set.
			s.hot.Touch(u)
		} else if scores, ok := s.hot.SingleSource(s.ex.Snapshot(), u); ok {
			w.Header().Set(tierHeader, "hot")
			s.epsaHist.Observe(s.servedEpsA())
			return scores, nil
		}
		w.Header().Set(tierHeader, "live")
	}
	if isDegraded(r.Context()) {
		opt := s.degradedOptions()
		w.Header().Set(degradedHeader, fmt.Sprintf("epsa=%g", opt.EpsA))
		s.epsaHist.Observe(opt.EpsA)
		return s.ex.SingleSourceWith(r.Context(), u, opt)
	}
	s.epsaHist.Observe(s.servedEpsA())
	return s.q.SingleSource(r.Context(), u)
}

// servedEpsA is the εa a normally admitted query runs at (the configured
// bound, or core's documented default when unset) — the baseline band of
// the served-εa histogram.
func (s *Server) servedEpsA() float64 {
	if s.opt.EpsA > 0 {
		return s.opt.EpsA
	}
	return 0.1
}

// admit applies the route class's admission policy. It either returns a
// release function, the degraded verdict and true, or writes the
// rejection response and returns false.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, cl routeClass, ten *tenant.Tenant) (func(), bool, bool) {
	nop := func() {}
	switch cl {
	case classQuery:
		max := s.limits.MaxInflight
		soft := s.limits.SoftInflight
		if s.fairq != nil && ten != nil {
			return s.admitFair(w, r, ten)
		}
		if max <= 0 && soft <= 0 {
			return nop, false, true
		}
		n := s.queryInflight.Add(1)
		if max > 0 && n > int64(max) {
			s.queryInflight.Add(-1)
			if ten != nil {
				ten.Rejected.Add(1)
			}
			s.writeRejection(w, fmt.Errorf("server: %d similarity queries in flight (limit %d)", n-1, max))
			return nil, false, false
		}
		release := func() { s.queryInflight.Add(-1) }
		if ten != nil {
			ten.Inflight.Add(1)
			ten.Admitted.Add(1)
			release = func() {
				s.queryInflight.Add(-1)
				ten.Inflight.Add(-1)
			}
		}
		// Between the soft watermark and the hard limit, serve degraded
		// instead of refusing: a wider εa keeps latency bounded under
		// pressure, and the response header keeps the client honest about
		// what it got.
		return release, soft > 0 && n > int64(soft), true
	case classJoin:
		// Joins queue (bounded by the request's deadline — the middleware
		// applies QueryTimeout before admission) instead of rejecting:
		// the limit exists to serialize O(n·query) scans, and their
		// clients tolerate latency far better than refusals. The channel
		// is captured so a SetLimits replacing s.joinSem mid-flight can
		// never strand the release on the new channel.
		sem := s.joinSem
		select {
		case sem <- struct{}{}:
			return func() { <-sem }, false, true
		case <-r.Context().Done():
			s.writeQueryError(w, fmt.Errorf("server: waiting for analysis slot: %w", r.Context().Err()))
			return nil, false, false
		}
	case classWrite:
		// Add-then-check (like classQuery): a check-then-add pair would
		// let a burst of simultaneous writers all pass the depth test.
		max := s.limits.MaxWriteQueue
		if max <= 0 {
			return nop, false, true
		}
		if n := s.writeWaiters.Add(1); n > int64(max) {
			s.writeWaiters.Add(-1)
			s.writeRejection(w, fmt.Errorf("server: %d writers queued on the mutation lock (limit %d)", n-1, max))
			return nil, false, false
		}
		return func() { s.writeWaiters.Add(-1) }, false, true
	default:
		return nop, false, true
	}
}

// admitFair is the tenant-aware query admission: a slot from the
// deficit-weighted fair queue, waiting in the tenant's own bounded line
// when the server is saturated. The only 503 here is the tenant's OWN
// queue filling; a deadline expiring while queued surfaces as the usual
// 504 (the timeout was applied before admission, so queueing time
// counts against it).
func (s *Server) admitFair(w http.ResponseWriter, r *http.Request, ten *tenant.Tenant) (func(), bool, bool) {
	rel, err := s.fairq.Acquire(r.Context(), ten)
	switch {
	case errors.Is(err, tenant.ErrQueueFull):
		ten.Rejected.Add(1)
		s.writeRejection(w, fmt.Errorf("server: tenant %s wait queue full (%d deep)", ten.Name, ten.Config.QueueDepth))
		return nil, false, false
	case err != nil:
		s.writeQueryError(w, fmt.Errorf("server: queued for admission: %w", err))
		return nil, false, false
	}
	n := s.queryInflight.Add(1)
	ten.Inflight.Add(1)
	ten.Admitted.Add(1)
	release := func() {
		s.queryInflight.Add(-1)
		ten.Inflight.Add(-1)
		rel()
	}
	soft := s.limits.SoftInflight
	return release, soft > 0 && n > int64(soft), true
}

// retryAfter bounds the load-derived Retry-After hint: at least 1s (the
// old hard-coded hint — short enough that a polite client retries while
// its user is still waiting), at most 30s (past that the client should
// give up, not camp).
const (
	retryAfterMin = 1
	retryAfterMax = 30
)

// retryAfterHint derives the Retry-After seconds from actual pressure:
// the work queued ahead of a retry (fair-queue depth plus the retry
// itself) times the observed per-query service time, spread across the
// serving slots. Before any query has completed (no EWMA yet) it falls
// back to the 1s floor.
func (s *Server) retryAfterHint() string {
	ewma := time.Duration(s.svcTimeEWMA.Load())
	if ewma <= 0 {
		return strconv.Itoa(retryAfterMin)
	}
	depth := 1
	if s.fairq != nil {
		depth += s.fairq.QueuedLen()
	}
	slots := s.limits.MaxInflight
	if slots < 1 {
		slots = 1
	}
	secs := int(math.Ceil(float64(depth) * ewma.Seconds() / float64(slots)))
	if secs < retryAfterMin {
		secs = retryAfterMin
	}
	if secs > retryAfterMax {
		secs = retryAfterMax
	}
	return strconv.Itoa(secs)
}

// observeServiceTime feeds the EWMA behind retryAfterHint with one
// successful query's duration (α = 1/8). The load/store pair is not a
// CAS on purpose: concurrent updates may drop an observation, which a
// pacing hint tolerates and the hot path should not pay a retry loop
// for.
func (s *Server) observeServiceTime(dur time.Duration) {
	old := s.svcTimeEWMA.Load()
	if old == 0 {
		s.svcTimeEWMA.Store(int64(dur))
		return
	}
	s.svcTimeEWMA.Store(old + (int64(dur)-old)/8)
}

// writeRejection answers an admission-control or backpressure refusal:
// 503 with Retry-After, the contract clients pace themselves against.
func (s *Server) writeRejection(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", s.retryAfterHint())
	writeError(w, http.StatusServiceUnavailable, err)
}

// statusClientClosedRequest is nginx's conventional 499 for "client
// went away": the response itself is moot, but the distinct status keeps
// ordinary client disconnects out of the 503 Rejections counter that
// operators alert on for real admission pressure.
const statusClientClosedRequest = 499

// writeQueryError maps a query error onto the serving contract:
//
//	deadline (ctx or Budget.Timeout)    -> 504 Gateway Timeout + Retry-After
//	shard worker unreachable/died       -> 502 Bad Gateway + Retry-After
//	work budget exhausted (ErrBudget)   -> 503 Service Unavailable + Retry-After
//	client went away (context.Canceled) -> 499 (counted under Errors, not Rejections)
//	anything else                       -> 500
//
// Partial results accompanying these errors are discarded: a vector
// without its εa guarantee is not an answer the API can stand behind.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", s.retryAfterHint())
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, router.ErrTransport):
		// A worker died mid-query: the canonical bad-gateway condition.
		// Retry-After matches the transport's reconnect backoff.
		w.Header().Set("Retry-After", s.retryAfterHint())
		writeError(w, http.StatusBadGateway, err)
	case errors.Is(err, core.ErrBudget):
		if sw, ok := w.(*statusWriter); ok {
			sw.budgetExhausted = true
		}
		w.Header().Set("Retry-After", s.retryAfterHint())
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.Canceled):
		writeError(w, statusClientClosedRequest, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// handleMetrics serves the Prometheus text page: per-route histograms,
// gauges and counters from the registry, then the graph/cache/shard
// gauges that already back /stats.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := s.ex.Snapshot()
	cs := s.q.CacheStats()
	s.reg.WritePrometheus(w, func(out io.Writer) {
		promexpo.WriteValueHistogram(out, "probesim_degraded_epsa",
			"Absolute error bound (epsa) each served similarity query ran at; mass above the configured epsa is degraded service.", s.epsaHist)
		promexpo.WriteGauge(out, "probesim_graph_nodes", "Nodes in the published snapshot.", int64(snap.NumNodes()))
		promexpo.WriteGauge(out, "probesim_graph_edges", "Directed edges in the published snapshot.", snap.NumEdges())
		promexpo.WriteGauge(out, "probesim_graph_version", "Version of the published snapshot.", int64(snap.Version()))
		promexpo.WriteCounter(out, "probesim_cache_hits_total", "Querier cache hits.", cs.Hits)
		promexpo.WriteCounter(out, "probesim_cache_misses_total", "Querier cache misses.", cs.Misses)
		promexpo.WriteGauge(out, "probesim_cache_vectors", "Cached single-source vectors.", int64(cs.Cached))
		promexpo.WriteCounter(out, "probesim_cache_shared_flights_total", "Queries that joined another's in-flight computation.", cs.Shared)
		promexpo.WriteCounter(out, "probesim_cache_evictions_total", "Cached vectors dropped by LRU capacity pressure.", cs.Evictions)
		if s.hot != nil {
			hs := s.hot.Stats()
			promexpo.WriteGauge(out, "probesim_hot_entries", "Fresh precomputed hot-source entries.", int64(hs.Entries))
			promexpo.WriteGauge(out, "probesim_hot_stale_entries", "Invalidated hot sources awaiting rebuild.", int64(hs.StaleEntries))
			promexpo.WriteGauge(out, "probesim_hot_tracked_sources", "Sources tracked by the popularity sketch.", int64(hs.TrackedSources))
			promexpo.WriteCounter(out, "probesim_hot_hits_total", "Queries answered from the hot-source index.", hs.Hits)
			promexpo.WriteCounter(out, "probesim_hot_misses_total", "Queries that fell through to the live kernel.", hs.Misses)
			promexpo.WriteCounter(out, "probesim_hot_invalidations_total", "Hot entries dropped by applied write batches.", hs.Invalidations)
			promexpo.WriteCounter(out, "probesim_hot_builds_total", "Background hot-entry build attempts.", hs.Builds)
			promexpo.WriteCounter(out, "probesim_hot_build_errors_total", "Hot-entry builds that failed or lost the install race.", hs.BuildErrors)
			promexpo.WriteCounter(out, "probesim_hot_evictions_total", "Hot entries dropped for falling out of the hot set.", hs.Evictions)
			promexpo.WriteCounter(out, "probesim_hot_yields_total", "Refresher rounds cut short for foreground load.", hs.Yields)
			promexpo.WriteGauge(out, "probesim_hot_watermark", "Highest applied-batch id the tier has observed.", int64(hs.Watermark))
			promexpo.WriteGauge(out, "probesim_hot_wal_watermark", "Highest WAL-appended batch id the tier has observed.", int64(hs.WALWatermark))
			promexpo.WriteGauge(out, "probesim_hot_lag_batches", "Staleness bound: batches the oldest invalidated hot entry is behind the applied watermark.", int64(hs.LagBatches))
		}
		if tcr := s.tracer; tcr != nil {
			promexpo.WriteCounter(out, "probesim_slow_queries_total", "Completed queries over the slow-query threshold.", tcr.SlowCount())
			promexpo.WriteCounter(out, "probesim_traces_sampled_total", "Requests that recorded a span tree.", tcr.Sampled())
			// Stage histograms observe sampled queries only: per-stage
			// timing costs clock reads the unsampled hot path must not pay.
			promexpo.WriteValueHistogram(out, "probesim_trace_walk_seconds",
				"Walk-stage seconds per sampled query (aggregated across the query's workers).", s.stageHist[qtrace.StageWalk])
			promexpo.WriteValueHistogram(out, "probesim_trace_probe_seconds",
				"Probe-stage seconds per sampled query (aggregated across the query's workers).", s.stageHist[qtrace.StageProbe])
		}
		if s.st != nil {
			ss := s.st.Stats()
			promexpo.WriteGauge(out, "probesim_shards", "Shard CSRs in the published snapshot.", int64(ss.Shards))
			promexpo.WriteCounter(out, "probesim_shard_publications_total", "Snapshot publications.", ss.Publications)
			promexpo.WriteCounter(out, "probesim_shard_noop_publishes_total", "Publications with no pending mutations.", ss.NoopPublishes)
			promexpo.WriteCounter(out, "probesim_shard_aborted_publishes_total", "Publications abandoned by cancellation.", ss.AbortedPublishes)
			promexpo.WriteCounter(out, "probesim_shards_rebuilt_total", "Shard CSRs re-encoded across publications.", ss.ShardsRebuilt)
			promexpo.WriteCounter(out, "probesim_shards_reused_total", "Shard CSRs shared with the previous snapshot.", ss.ShardsReused)
			promexpo.WriteCounter(out, "probesim_shard_edges_reencoded_total", "Adjacency entries re-encoded across publications.", ss.EdgesReEncoded)
			gc := s.st.GC()
			promexpo.WriteCounter(out, "probesim_snapshot_retired_total", "Snapshot generations superseded by publication.", gc.RetiredTotal)
			promexpo.WriteGauge(out, "probesim_snapshot_retired_generations", "Superseded snapshot generations still live (pinned or uncollected).", int64(gc.RetiredLive))
			promexpo.WriteGauge(out, "probesim_snapshot_retired_bytes", "Approximate bytes uniquely pinned by live retired generations.", gc.RetiredBytes)
			promexpo.WriteGauge(out, "probesim_snapshot_bytes", "Resident size of the current snapshot.", gc.CurrentBytes)
		}
		if s.wal != nil {
			ws := s.wal.Stats()
			promexpo.WriteCounter(out, "probesim_wal_appends_total", "Edge batches appended to the write-ahead log.", ws.Appends)
			promexpo.WriteCounter(out, "probesim_wal_appended_bytes_total", "Bytes appended to the write-ahead log.", ws.AppendedBytes)
			promexpo.WriteCounter(out, "probesim_wal_syncs_total", "Explicit fsyncs issued by the write-ahead log.", ws.Syncs)
			promexpo.WriteCounter(out, "probesim_wal_rotations_total", "Log segments rotated.", ws.Rotations)
			promexpo.WriteCounter(out, "probesim_wal_checkpoints_total", "Checkpoints written this process lifetime.", ws.Checkpoints)
			promexpo.WriteGauge(out, "probesim_wal_segments", "Log segment files currently on disk.", ws.SegmentsLive)
			promexpo.WriteGauge(out, "probesim_wal_segment_bytes", "Bytes across live log segments.", ws.SegmentBytes)
			promexpo.WriteGauge(out, "probesim_wal_last_batch", "Id of the last batch appended to the log.", int64(ws.LastBatch))
			promexpo.WriteGauge(out, "probesim_wal_checkpoint_batch", "Batch id the newest checkpoint covers through.", int64(ws.LastCheckpoint))
		}
		if s.rt != nil && s.rt.Distributed() {
			workers := s.rt.WorkerStats()
			// worker stays the FIRST label (dashboards and the smoke tests
			// match on it); group/replica identify the member's slot in the
			// replicated topology.
			label := func(ws router.WorkerStat) string {
				return fmt.Sprintf("worker=%q,group=\"%d\",replica=\"%d\"", ws.Addr, ws.Group, ws.Replica)
			}
			sample := func(v func(router.WorkerStat) int64) []promexpo.Sample {
				out := make([]promexpo.Sample, len(workers))
				for i, ws := range workers {
					out[i] = promexpo.Sample{Label: label(ws), Value: v(ws)}
				}
				return out
			}
			promexpo.WriteLabeled(out, "probesim_router_worker_up", "1 when the worker's last call or health probe succeeded.", "gauge",
				sample(func(ws router.WorkerStat) int64 {
					if ws.Healthy {
						return 1
					}
					return 0
				}))
			promexpo.WriteLabeled(out, "probesim_router_worker_current", "1 when the replica has taken every identified batch in order and serves direct writes.", "gauge",
				sample(func(ws router.WorkerStat) int64 {
					if ws.Current {
						return 1
					}
					return 0
				}))
			promexpo.WriteLabeled(out, "probesim_router_worker_version", "Snapshot version the worker last reported.", "gauge",
				sample(func(ws router.WorkerStat) int64 { return int64(ws.Version) }))
			promexpo.WriteLabeled(out, "probesim_router_worker_shards", "Shards the worker owns in the published view.", "gauge",
				sample(func(ws router.WorkerStat) int64 { return int64(ws.Shards) }))
			promexpo.WriteLabeled(out, "probesim_router_worker_calls_total", "Engine calls issued to the worker.", "counter",
				sample(func(ws router.WorkerStat) int64 { return ws.Calls }))
			promexpo.WriteLabeled(out, "probesim_router_worker_errors_total", "Transport failures talking to the worker.", "counter",
				sample(func(ws router.WorkerStat) int64 { return ws.Errors }))
			promexpo.WriteLabeled(out, "probesim_router_worker_reconnects_total", "Connections dialed to the worker.", "counter",
				sample(func(ws router.WorkerStat) int64 { return ws.Reconnects }))
			rc := s.rt.Counters()
			promexpo.WriteCounter(out, "probesim_router_shard_fetches_total", "Shard adjacency blocks fetched from workers.", rc.ShardFetches)
			promexpo.WriteCounter(out, "probesim_router_shard_fetch_errors_total", "Shard block fetches that failed.", rc.ShardFetchErrors)
			promexpo.WriteCounter(out, "probesim_router_shard_batches_total", "Batched ResolveShards round trips (fetches per batch = fetches/batches).", rc.ShardBatches)
			promexpo.WriteCounter(out, "probesim_router_walk_segments_total", "Walk segments sampled on workers via per-walk RPCs.", rc.WalkSegments)
			promexpo.WriteCounter(out, "probesim_router_walk_handoffs_total", "Walks handed off across shard owners.", rc.WalkHandoffs)
			promexpo.WriteCounter(out, "probesim_router_walk_batches_total", "Batched WalkBatch round trips to workers.", rc.WalkBatches)
			promexpo.WriteCounter(out, "probesim_router_walk_delegated_total", "Walks carried by batched round trips (batch size = delegated/batches).", rc.WalkDelegated)
			promexpo.WriteCounter(out, "probesim_router_walk_local_segments_total", "Walk segments the router stepped over cached blocks with no RPC (delegation rate = delegated/(delegated+local)).", rc.WalkLocalSegments)
			promexpo.WriteCounter(out, "probesim_router_apply_retries_total", "Identified batches re-sent to a worker after a transport failure.", rc.ApplyRetries)
			promexpo.WriteCounter(out, "probesim_router_failovers_total", "Reads retried on another replica after a retryable failure.", rc.Failovers)
			promexpo.WriteCounter(out, "probesim_router_hedges_sent_total", "Speculative duplicate reads launched after the hedge delay.", rc.HedgesSent)
			promexpo.WriteCounter(out, "probesim_router_hedges_won_total", "Hedged reads that answered before the primary.", rc.HedgesWon)
			promexpo.WriteCounter(out, "probesim_router_apply_skipped_total", "Write broadcasts that skipped a demoted replica (the ring replays it later).", rc.ApplySkips)
			promexpo.WriteCounter(out, "probesim_router_catchup_batches_total", "Ring batches replayed to lagging replicas during catch-up.", rc.CatchupBatches)
		}
		s.writeTenantMetrics(out)
		promexpo.WriteBuildInfo(out, "probesim-server")
	})
}
