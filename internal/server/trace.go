package server

// Query tracing surface: the per-request sampling decision, the
// X-ProbeSim-Trace-Id response header, ?trace=1 opt-in inlining, and the
// /debug/queries ring of recently completed traces. The recorder itself
// lives in internal/qtrace; this file is the HTTP-facing glue that
// admission.go's middleware calls around every non-meta request.

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"probesim/internal/qtrace"
)

// traceHeader carries the request's trace id on every response while a
// tracer is armed, sampled or not — so a client seeing a slow answer can
// quote an id that correlates with the server's slow-query log.
const traceHeader = "X-ProbeSim-Trace-Id"

// SetTracer arms query tracing: sampling, the slow-query log, span
// recording through the whole query lifecycle, and /debug/queries.
// Call before serving (like SetLimits, it is not synchronized with
// requests). A nil tracer (the default) keeps every hook disabled.
func (s *Server) SetTracer(t *qtrace.Tracer) { s.tracer = t }

// Tracer returns the armed tracer, nil when tracing is disabled.
func (s *Server) Tracer() *qtrace.Tracer { return s.tracer }

// forceTrace reports the ?trace=1 opt-in. It scans the raw query instead
// of parsing it: this runs on every request, sampled or not.
func forceTrace(r *http.Request) bool {
	q := r.URL.RawQuery
	i := strings.Index(q, "trace=1")
	if i < 0 {
		return false
	}
	// Match a whole key=value pair, not a suffix like backtrace=1.
	if i > 0 && q[i-1] != '&' {
		return false
	}
	return len(q) == i+7 || q[i+7] == '&'
}

// beginTrace makes the per-request trace decision for one admitted route:
// a fresh 128-bit id (stamped on the response header immediately, before
// the handler can fail), and a recording trace when sampling or ?trace=1
// says so. Meta routes and an unarmed tracer return a zero id.
func (s *Server) beginTrace(w http.ResponseWriter, r *http.Request, cl routeClass) (*qtrace.Trace, qtrace.TraceID) {
	if s.tracer == nil || cl == classMeta {
		return nil, qtrace.TraceID{}
	}
	id := qtrace.NewID()
	w.Header().Set(traceHeader, id.String())
	return s.tracer.Begin(id, forceTrace(r)), id
}

// finishTrace completes the request's trace: files it with the tracer
// (slow-query log + ring, tenant-annotated so a burn spike greps
// straight to its traces) and feeds the per-stage duration histograms
// behind /metrics. A zero id means beginTrace declined (meta route or
// tracing disabled) and nothing happens.
func (s *Server) finishTrace(tr *qtrace.Trace, id qtrace.TraceID, route, tenantName string, status int, start time.Time, dur time.Duration) {
	if id.IsZero() {
		return
	}
	if status == 0 {
		status = http.StatusOK
	}
	s.tracer.FinishTagged(tr, id, route, tenantName, status, start, dur)
	if tr == nil {
		return
	}
	totals := tr.StageTotals()
	for st := qtrace.Stage(0); st < qtrace.NumStages; st++ {
		if totals[st].N > 0 {
			s.stageHist[st].Observe(float64(totals[st].NS) / 1e9)
		}
	}
}

// addTrace inlines the span tree recorded so far into a query response
// body when the client opted in with ?trace=1. Sampled-but-not-forced
// requests keep their spans server-side (/debug/queries) — the inline
// form is the explicit debugging contract, not a default payload tax.
func addTrace(r *http.Request, body map[string]any) {
	tr, _ := qtrace.FromContext(r.Context())
	if tr == nil || !tr.Forced() {
		return
	}
	body["traceId"] = tr.ID().String()
	body["trace"] = tr.Snapshot()
}

// handleDebugQueries serves the ring of recently completed sampled
// traces, oldest first. With tracing disabled it reports the fact
// instead of an empty mystery.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	if s.tracer == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false, "queries": []any{}})
		return
	}
	rec := s.tracer.Recent()
	if rec == nil {
		rec = []*qtrace.Done{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": true,
		"started": s.tracer.Started(),
		"sampled": s.tracer.Sampled(),
		"slow":    s.tracer.SlowCount(),
		"queries": rec,
	})
}
