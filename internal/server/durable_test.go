package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"probesim/internal/core"
	"probesim/internal/graph"
	"probesim/internal/persist"
	"probesim/internal/wal"
)

func durableServer(t *testing.T, dir string, g *graph.Graph) (*Server, func()) {
	t.Helper()
	bootstrap := func() (*graph.Graph, error) {
		if g == nil {
			t.Fatal("bootstrap called on a recoverable dir")
		}
		return g, nil
	}
	st, lg, _, err := persist.OpenStore(dir, 4, 0, wal.Options{Sync: wal.SyncAlways}, bootstrap)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSharded(st, core.Options{EpsA: 0.3, Delta: 0.05, Seed: 5, Workers: 2}, 8, 50)
	s.SetWAL(lg)
	return s, func() { lg.Close() }
}

func get(t *testing.T, h http.Handler, url string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	b, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(b)
}

// TestDurableWritePath: every /edges and /edges/batch the server
// acknowledged is in the write-ahead log before the 200 goes out, and a
// recovered server answers queries byte-identically to the one that
// died.
func TestDurableWritePath(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(8))
	g := graph.New(150)
	for i := 0; i < 500; i++ {
		u, v := graph.NodeID(r.Intn(150)), graph.NodeID(r.Intn(150))
		if u != v {
			g.AddEdge(u, v)
		}
	}
	s, closeLog := durableServer(t, dir, g)

	// Mixed single-edge and batch writes through the HTTP surface.
	for i := 0; i < 10; i++ {
		u, v := r.Intn(150), r.Intn(150)
		if u == v {
			continue
		}
		req := httptest.NewRequest(http.MethodPost, fmt.Sprintf("/edges?u=%d&v=%d", u, v), nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("edge %d->%d: %d %s", u, v, rec.Code, rec.Body)
		}
	}
	var body strings.Builder
	body.WriteString(`[{"op":"add","u":3,"v":77},{"op":"add","u":77,"v":9},{"op":"remove","u":3,"v":77}]`)
	req := httptest.NewRequest(http.MethodPost, "/edges/batch", strings.NewReader(body.String()))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", rec.Code, rec.Body)
	}
	// A rejected batch rolls back and does not poison recovery.
	req = httptest.NewRequest(http.MethodPost, "/edges/batch", strings.NewReader(`[{"op":"add","u":1,"v":2},{"op":"remove","u":149,"v":148}]`))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	rejected := rec.Code == http.StatusBadRequest

	// The acknowledged writes are in the log (append-then-apply).
	_, stats := get(t, s, "/stats")
	var sj map[string]any
	if err := json.Unmarshal([]byte(stats), &sj); err != nil {
		t.Fatal(err)
	}
	if sj["walAppends"].(float64) < 11 {
		t.Fatalf("walAppends %v, want >= 11", sj["walAppends"])
	}
	if rejected && sj["walLastBatch"].(float64) != sj["walAppends"].(float64) {
		t.Fatalf("watermark %v != appends %v", sj["walLastBatch"], sj["walAppends"])
	}

	code, want := get(t, s, "/single-source?u=42")
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, want)
	}
	_, wantK := get(t, s, "/topk?u=7&k=10")

	// CRASH: abandon the server (the log is deliberately not closed;
	// SyncAlways already made every acknowledged append durable). closeLog
	// only runs at test cleanup to release the fd.
	defer closeLog()

	s2, closeLog2 := durableServer(t, dir, nil)
	defer closeLog2()
	code, got := get(t, s2, "/single-source?u=42")
	if code != http.StatusOK {
		t.Fatalf("recovered query: %d %s", code, got)
	}
	if got != want {
		t.Fatalf("recovered single-source differs:\n%s\nvs\n%s", got, want)
	}
	if _, gotK := get(t, s2, "/topk?u=7&k=10"); gotK != wantK {
		t.Fatalf("recovered topk differs:\n%s\nvs\n%s", gotK, wantK)
	}
}

// TestWALStatsAndEpsaHistogramOnMetrics: the new observability surfaces
// are present and move.
func TestWALStatsAndEpsaHistogramOnMetrics(t *testing.T) {
	dir := t.TempDir()
	g := graph.Toy()
	s, closeLog := durableServer(t, dir, g)
	defer closeLog()

	if code, _ := get(t, s, "/single-source?u=1"); code != http.StatusOK {
		t.Fatal("query failed")
	}
	req := httptest.NewRequest(http.MethodPost, "/edges?u=0&v=3", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("edge: %d %s", rec.Code, rec.Body)
	}

	_, page := get(t, s, "/metrics")
	for _, want := range []string{
		"probesim_degraded_epsa_bucket{le=\"0.4\"}",
		"probesim_degraded_epsa_count 1",
		"probesim_wal_appends_total 1",
		"probesim_wal_syncs_total",
		"probesim_wal_last_batch 1",
		"probesim_wal_checkpoint_batch 0",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, page)
		}
	}
	// The εa histogram puts the (non-degraded) query in the 0.4 bucket
	// (served εa 0.3) and nothing below 0.2.
	if !strings.Contains(page, "probesim_degraded_epsa_bucket{le=\"0.2\"} 0") {
		t.Fatalf("served-epsa mass below the configured bound:\n%s", page)
	}
}

// TestDegradedQueriesLandInWiderBuckets: a degraded admission observes
// the WIDENED εa, so the histogram separates honest-accuracy service
// from degraded service — the whole point of the metric.
func TestDegradedQueriesLandInWiderBuckets(t *testing.T) {
	g := graph.Toy()
	s := New(g, core.Options{EpsA: 0.2, Seed: 3}, 4, 50)
	s.SetLimits(Limits{MaxInflight: 8, SoftInflight: 1, DegradeFactor: 2})
	// Drive the degraded path exactly as the admission middleware does:
	// a request context carrying the degraded verdict.
	req := httptest.NewRequest(http.MethodGet, "/single-source?u=1", nil)
	req = req.WithContext(context.WithValue(req.Context(), degradedKey{}, true))
	rec := httptest.NewRecorder()
	if scores, err := s.singleSourceScores(rec, req, 1); err != nil || len(scores) == 0 {
		t.Fatalf("degraded query: %v", err)
	}
	if got := rec.Header().Get("X-ProbeSim-Degraded"); got != "epsa=0.4" {
		t.Fatalf("degraded header %q", got)
	}
	// And one normal admission for contrast.
	if code, _ := get(t, s, "/single-source?u=1"); code != http.StatusOK {
		t.Fatal("query failed")
	}
	_, page := get(t, s, "/metrics")
	for _, want := range []string{
		"probesim_degraded_epsa_sum 0.6", // 0.4 degraded + 0.2 normal
		"probesim_degraded_epsa_count 2",
		"probesim_degraded_epsa_bucket{le=\"0.2\"} 1", // only the normal one
		"probesim_degraded_epsa_bucket{le=\"0.4\"} 2",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, page)
		}
	}
}
