package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/shard"
)

// TestShardedServerMatchesMonolithic drives the same request sequence
// through a monolithic server and a sharded one and demands identical
// query results — the HTTP-level face of the bit-identical guarantee.
func TestShardedServerMatchesMonolithic(t *testing.T) {
	g := gen.PreferentialAttachment(250, 3, 23)
	opt := core.Options{EpsA: 0.3, Seed: 4, Workers: 2, NumWalks: 150}
	mono := httptest.NewServer(New(g.Clone(), opt, 8, 50))
	defer mono.Close()
	sharded := httptest.NewServer(NewSharded(shard.NewStore(g, 16, 2), opt, 8, 50))
	defer sharded.Close()

	fetch := func(base, path string) map[string]any {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d body %v", path, resp.StatusCode, body)
		}
		return body
	}
	post := func(base, path string, payload []byte) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
	}

	paths := []string{
		"/topk?u=7&k=5",
		"/single-source?u=19",
		"/pair?u=3&v=11",
		"/components",
		"/join/topk?k=5",
	}
	check := func() {
		t.Helper()
		for _, p := range paths {
			a, b := fetch(mono.URL, p), fetch(sharded.URL, p)
			aj, _ := json.Marshal(a)
			bj, _ := json.Marshal(b)
			if string(aj) != string(bj) {
				t.Fatalf("GET %s diverges:\nmonolithic: %s\nsharded:    %s", p, aj, bj)
			}
		}
	}
	check()

	// Mutate both through the batch endpoint and re-check.
	ops, _ := json.Marshal([]map[string]any{
		{"op": "add", "u": 1, "v": 240},
		{"op": "add", "u": 240, "v": 2},
		{"op": "remove", "u": 1, "v": 240},
	})
	post(mono.URL, "/edges/batch", ops)
	post(sharded.URL, "/edges/batch", ops)
	check()

	// The sharded /stats carries the publication counters.
	stats := fetch(sharded.URL, "/stats")
	for _, key := range []string{"shards", "shardPublications", "shardsRebuilt", "shardsReused"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("sharded /stats missing %q: %v", key, stats)
		}
	}
	if reused := stats["shardsReused"].(float64); reused == 0 {
		t.Fatalf("expected shard reuse after a small batch, got stats %v", stats)
	}
}

// TestShardedConcurrentQueriesDuringEdgeBatch is the -race proof for the
// sharded path: readers on /topk, /single-source, /components and /stats
// run lock-free against the composite snapshot while a writer streams
// batches that republish only touched shards.
func TestShardedConcurrentQueriesDuringEdgeBatch(t *testing.T) {
	g := gen.PreferentialAttachment(300, 3, 17)
	st := shard.NewStore(g, 32, 2)
	srv := NewSharded(st, core.Options{EpsA: 0.3, Seed: 1, Workers: 2, NumWalks: 120}, 8, 50)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const batches = 25
	var wg sync.WaitGroup
	var stop atomic.Bool

	get := func(path string) (int, map[string]any, error) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return resp.StatusCode, nil, err
		}
		return resp.StatusCode, body, nil
	}

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			paths := []string{
				fmt.Sprintf("/topk?u=%d&k=5", r*31%300),
				fmt.Sprintf("/single-source?u=%d", r*53%300),
				"/stats",
				"/components",
			}
			for i := 0; !stop.Load(); i++ {
				code, body, err := get(paths[i%len(paths)])
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if code != http.StatusOK {
					t.Errorf("reader %d: status %d, body %v", r, code, body)
					return
				}
			}
		}(r)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for b := 0; b < batches; b++ {
			u := (b * 37) % 299
			ops := []map[string]any{
				{"op": "add", "u": u, "v": u + 1},
				{"op": "add", "u": (u + 5) % 300, "v": (u + 9) % 300},
				{"op": "remove", "u": u, "v": u + 1},
			}
			if ops[1]["u"] == ops[1]["v"] {
				ops = ops[:1+copy(ops[1:], ops[2:])]
			}
			payload, _ := json.Marshal(ops)
			resp, err := http.Post(ts.URL+"/edges/batch", "application/json", bytes.NewReader(payload))
			if err != nil {
				t.Error(err)
				return
			}
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Error(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("batch %d: status %d, body %v", b, resp.StatusCode, body)
				return
			}
		}
	}()
	wg.Wait()

	code, body, err := get("/stats")
	if err != nil || code != http.StatusOK {
		t.Fatalf("final stats: code %d err %v", code, err)
	}
	if v := body["graphVersion"].(float64); uint64(v) != st.Version() {
		t.Fatalf("published version %v != store version %d", v, st.Version())
	}
	// The whole point: churn must not have paid full rebuilds. Every batch
	// touches at most 6 of the 32+ shards (3 ops x 2 endpoints).
	ss := st.Stats()
	if ss.ShardsRebuilt >= ss.ShardsReused {
		t.Fatalf("per-shard publication ineffective: rebuilt %d vs reused %d", ss.ShardsRebuilt, ss.ShardsReused)
	}

	// A node addition through the store API grows the serving surface after
	// the next publication.
	nodes := int(body["nodes"].(float64))
	_ = st.AddNode()
	st.Publish()
	code, body, err = get("/stats")
	if err != nil || code != http.StatusOK {
		t.Fatalf("stats after AddNode: code %d err %v", code, err)
	}
	if got := int(body["nodes"].(float64)); got != nodes+1 {
		t.Fatalf("nodes after AddNode: %d, want %d", got, nodes+1)
	}
}
