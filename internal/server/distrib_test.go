package server

// Serving-plane tests for the distributed shard plane (PR 4): the routed
// backend end to end, degrade-instead-of-reject admission, snapshot GC
// gauges, and deadline-aware component scans.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"probesim/internal/budget"
	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/router"
	"probesim/internal/shard"
)

// routedPair builds a sharded reference server and a routed server over
// two in-process engines covering the same graph, with identical options.
func routedPair(t *testing.T, shards int, opt core.Options) (ref, routed *Server) {
	t.Helper()
	g := gen.PreferentialAttachment(500, 4, 21)
	ref = NewSharded(shard.NewStore(g, shards, 0), opt, 4, 50)
	stA := shard.NewStore(g, shards, 0)
	stB := shard.NewStore(g, shards, 0)
	rt, err := router.New(router.NewLocalEngine(stA, 0, 2), router.NewLocalEngine(stB, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	return ref, NewRouted(rt, opt, 4, 50)
}

// TestRoutedServerMatchesSharded drives the whole HTTP surface against
// both backends: identical queries must produce identical JSON, before
// and after writes.
func TestRoutedServerMatchesSharded(t *testing.T) {
	opt := core.Options{Seed: 3, NumWalks: 300}
	ref, routed := routedPair(t, 7, opt)

	check := func(target string) {
		t.Helper()
		recA, bodyA := do(t, ref, http.MethodGet, target)
		recB, bodyB := do(t, routed, http.MethodGet, target)
		if recA.Code != http.StatusOK || recB.Code != http.StatusOK {
			t.Fatalf("%s: statuses %d / %d (%v / %v)", target, recA.Code, recB.Code, bodyA, bodyB)
		}
		if !reflect.DeepEqual(bodyA, bodyB) {
			t.Fatalf("%s: %v vs %v", target, bodyA, bodyB)
		}
	}
	check("/topk?u=1&k=10")
	check("/single-source?u=42")
	check("/pair?u=1&v=7")
	check("/components")

	// Writes through both backends: single edge, then a batch.
	for _, s := range []*Server{ref, routed} {
		if rec, body := do(t, s, http.MethodPost, "/edges?u=3&v=499"); rec.Code != http.StatusOK {
			t.Fatalf("add edge: %d (%v)", rec.Code, body)
		}
	}
	batch := `[{"op":"add","u":5,"v":450},{"op":"add","u":450,"v":5},{"op":"remove","u":3,"v":499}]`
	for _, s := range []*Server{ref, routed} {
		req := httptest.NewRequest(http.MethodPost, "/edges/batch", bytes.NewBufferString(batch))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("batch: %d (%s)", rec.Code, rec.Body)
		}
	}
	check("/topk?u=5&k=10")
	check("/single-source?u=450")

	// A failing batch rolls back on both.
	bad := `[{"op":"add","u":10,"v":11},{"op":"remove","u":490,"v":489}]`
	for _, s := range []*Server{ref, routed} {
		req := httptest.NewRequest(http.MethodPost, "/edges/batch", bytes.NewBufferString(bad))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code == http.StatusOK {
			t.Skip("remove 490->489 unexpectedly existed")
		}
	}
	check("/topk?u=10&k=10")
}

// TestRoutedStatsAndMetrics: the routed server surfaces per-worker rows
// and router counters.
func TestRoutedStatsAndMetrics(t *testing.T) {
	opt := core.Options{Seed: 3, NumWalks: 200}
	_, routed := routedPair(t, 4, opt)
	if rec, _ := do(t, routed, http.MethodGet, "/topk?u=1&k=5"); rec.Code != http.StatusOK {
		t.Fatalf("warm-up query: %d", rec.Code)
	}
	_, body := do(t, routed, http.MethodGet, "/stats")
	if _, ok := body["routerWorkers"]; !ok {
		t.Fatalf("/stats missing routerWorkers: %v", body)
	}
	if body["routerWalkBatches"].(float64) == 0 || body["routerWalkDelegated"].(float64) == 0 {
		t.Fatalf("/stats batched walk counters did not move: %v", body)
	}
	if body["routerShardBatches"].(float64) == 0 {
		t.Fatalf("/stats routerShardBatches did not move: %v", body)
	}
	rec, _ := do2(routed, http.MethodGet, "/metrics")
	page := rec.Body.String()
	for _, want := range []string{
		"probesim_router_worker_up{worker=\"local\",group=\"0\",replica=\"0\"} 1",
		"probesim_router_worker_current{worker=\"local\",group=\"0\",replica=\"0\"} 1",
		"probesim_router_failovers_total",
		"probesim_router_hedges_sent_total",
		"probesim_router_shard_fetches_total",
		"probesim_router_shard_batches_total",
		"probesim_router_walk_segments_total",
		"probesim_router_walk_batches_total",
		"probesim_router_walk_delegated_total",
		"probesim_router_walk_local_segments_total",
		"probesim_router_worker_calls_total",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestDegradeInsteadOfReject: between the soft watermark and the hard
// limit, queries are served at reduced accuracy with the degraded header
// instead of being 503-rejected, and the route counter moves.
func TestDegradeInsteadOfReject(t *testing.T) {
	s := slowServer(t, Limits{MaxInflight: 4, SoftInflight: 1, DegradeFactor: 1000})
	// No pressure: full accuracy, no header. (The un-degraded query would
	// run 2M walks, so probe it with a deadline and only check the header.)
	recQuiet := httptest.NewRecorder()
	reqQuiet := httptest.NewRequest(http.MethodGet, "/topk?u=3&k=5", nil)
	ctxQuiet, cancelQuiet := context.WithTimeout(reqQuiet.Context(), 50*time.Millisecond)
	defer cancelQuiet()
	s.ServeHTTP(recQuiet, reqQuiet.WithContext(ctxQuiet))
	if recQuiet.Header().Get("X-ProbeSim-Degraded") != "" {
		t.Fatal("unpressured query must not be degraded")
	}

	// Occupy one slot with a slow query to cross the soft watermark.
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest(http.MethodGet, "/topk?u=1&k=5", nil)
		ctx, cancel := context.WithCancel(req.Context())
		defer cancel()
		go func() { <-release; cancel() }()
		close(started)
		s.ServeHTTP(httptest.NewRecorder(), req.WithContext(ctx))
	}()
	<-started
	deadline := time.Now().Add(5 * time.Second)
	for s.queryInflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow query never entered the handler")
		}
		time.Sleep(time.Millisecond)
	}

	// Above the watermark, below the cap: admitted, degraded, fast (the
	// factor shrinks the 2M-walk override by 10^6).
	rec, body := do(t, s, http.MethodGet, "/topk?u=2&k=5")
	close(release)
	wg.Wait()
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded query: status %d (%v), want 200", rec.Code, body)
	}
	hdr := rec.Header().Get("X-ProbeSim-Degraded")
	if !strings.HasPrefix(hdr, "epsa=") {
		t.Fatalf("degraded response header %q", hdr)
	}
	if got := s.reg.Route("/topk").Degraded.Load(); got == 0 {
		t.Fatal("degraded counter did not move")
	}
	rec2, _ := do2(s, http.MethodGet, "/metrics")
	if !strings.Contains(rec2.Body.String(), "probesim_request_degraded_total") {
		t.Fatal("/metrics missing degraded counter")
	}
}

// TestSnapshotGCStats: retired-generation gauges appear on /stats and
// /metrics for the sharded backend and move with publications.
func TestSnapshotGCStats(t *testing.T) {
	g := gen.PreferentialAttachment(400, 4, 5)
	s := NewSharded(shard.NewStore(g, 8, 0), core.Options{Seed: 1, NumWalks: 100}, 4, 50)
	for i := 0; i < 5; i++ {
		if rec, body := do(t, s, http.MethodPost, "/edges?u=1&v=300"); rec.Code != http.StatusOK {
			t.Fatalf("add: %d (%v)", rec.Code, body)
		}
		if rec, body := do(t, s, http.MethodDelete, "/edges?u=1&v=300"); rec.Code != http.StatusOK {
			t.Fatalf("remove: %d (%v)", rec.Code, body)
		}
	}
	_, body := do(t, s, http.MethodGet, "/stats")
	if body["snapshotRetiredTotal"].(float64) < 5 {
		t.Fatalf("snapshotRetiredTotal = %v after 10 publications", body["snapshotRetiredTotal"])
	}
	if _, ok := body["snapshotRetiredLive"]; !ok {
		t.Fatalf("/stats missing snapshotRetiredLive: %v", body)
	}
	if body["snapshotCurrentBytes"].(float64) <= 0 {
		t.Fatalf("snapshotCurrentBytes = %v", body["snapshotCurrentBytes"])
	}
	rec, _ := do2(s, http.MethodGet, "/metrics")
	page := rec.Body.String()
	for _, want := range []string{
		"probesim_snapshot_retired_total",
		"probesim_snapshot_retired_generations",
		"probesim_snapshot_retired_bytes",
		"probesim_snapshot_bytes",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestComponentsHonorsDeadlineMidScan: a component scan on a large graph
// under a 1ms deadline returns 504 promptly — the meter is checkpointed
// inside the traversal, not just between requests.
func TestComponentsHonorsDeadlineMidScan(t *testing.T) {
	g := gen.Grid(500, 500) // 250k nodes: several ms of scan at least
	s := New(g, core.Options{Seed: 1, NumWalks: 100}, 4, 50)
	s.SetLimits(Limits{QueryTimeout: time.Millisecond})
	start := time.Now()
	rec, body := do(t, s, http.MethodGet, "/components")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%v), want 504", rec.Code, body)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("1ms deadline honored only after %v", el)
	}
}

// TestRoutedWorkerDeathReturns502: the routed server maps a mid-query
// transport failure to HTTP 502 with Retry-After.
func TestRoutedWorkerDeathReturns502(t *testing.T) {
	opt := core.Options{Seed: 3, NumWalks: 500}
	g := gen.PreferentialAttachment(400, 4, 21)
	stA := shard.NewStore(g, 4, 0)
	stB := shard.NewStore(g, 4, 0)
	failing := &dyingEngine{LocalEngine: router.NewLocalEngine(stB, 1, 2)}
	rt, err := router.New(router.NewLocalEngine(stA, 0, 2), failing)
	if err != nil {
		t.Fatal(err)
	}
	s := NewRouted(rt, opt, 4, 50)
	failing.dead.Store(true)
	rec, body := do(t, s, http.MethodGet, "/topk?u=1&k=5")
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status %d (%v), want 502", rec.Code, body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("502 without Retry-After")
	}
	// The component scan binds to the same failure plane: it must abort
	// (502), not silently count components over empty adjacency.
	rec, body = do(t, s, http.MethodGet, "/components")
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("/components over dead worker: status %d (%v), want 502", rec.Code, body)
	}
}

// dyingEngine forwards to a LocalEngine until dead flips, then fails
// every read with a transport error — an in-process stand-in for a
// worker crash.
type dyingEngine struct {
	*router.LocalEngine
	dead atomic.Bool
}

func (d *dyingEngine) ResolveShard(ctx context.Context, version uint64, p int) (graph.CSRShard, error) {
	if d.dead.Load() {
		return graph.CSRShard{}, fmt.Errorf("%w: injected crash", router.ErrTransport)
	}
	return d.LocalEngine.ResolveShard(ctx, version, p)
}

func (d *dyingEngine) WalkSegment(ctx context.Context, version uint64, h budget.Header, sqrtC float64, cur graph.NodeID, state uint64, room int, buf []graph.NodeID) ([]graph.NodeID, uint64, router.SegmentStatus, error) {
	if d.dead.Load() {
		return buf, state, router.SegmentEnded, fmt.Errorf("%w: injected crash", router.ErrTransport)
	}
	return d.LocalEngine.WalkSegment(ctx, version, h, sqrtC, cur, state, room, buf)
}

func (d *dyingEngine) ResolveShards(ctx context.Context, version uint64, ps []int) ([]graph.CSRShard, error) {
	if d.dead.Load() {
		return nil, fmt.Errorf("%w: injected crash", router.ErrTransport)
	}
	return d.LocalEngine.ResolveShards(ctx, version, ps)
}

func (d *dyingEngine) WalkBatch(ctx context.Context, version uint64, h budget.Header, sqrtC float64, walks []router.WalkStart) ([]router.WalkResult, error) {
	if d.dead.Load() {
		return nil, fmt.Errorf("%w: injected crash", router.ErrTransport)
	}
	return d.LocalEngine.WalkBatch(ctx, version, h, sqrtC, walks)
}
