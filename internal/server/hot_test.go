package server

// Serving-tier tests for the hot-source index: the X-ProbeSim-Tier
// header flow, the ?tier=live escape hatch, the /stats and /metrics
// surface, and — the admission-interaction contract — that background
// refresh work never occupies foreground admission slots and steps aside
// from the CPU under inflight pressure.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/hotidx"
	"probesim/internal/shard"
)

// hotServer builds a sharded server with the hot tier armed. The tier
// runs with its production defaults (MinHits 2, 100ms reconcile tick),
// so tests poll for warm-up.
func hotServer(t *testing.T) (*Server, *hotidx.Tier) {
	t.Helper()
	g := gen.PreferentialAttachment(400, 4, 9)
	st := shard.NewStore(g, 8, 0)
	s := NewSharded(st, core.Options{Seed: 1, EpsA: 0.2}, 8, 500)
	tier := s.EnableHotTier(8, 5*time.Second)
	t.Cleanup(tier.Close)
	return s, tier
}

// waitHotHeader polls target until it is served with X-ProbeSim-Tier:
// hot, returning that response body. The polling itself supplies the
// query popularity that promotes the source.
func waitHotHeader(t *testing.T, s *Server, target string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		rec, body := do(t, s, http.MethodGet, target)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d (%v)", target, rec.Code, body)
		}
		switch tier := rec.Header().Get(tierHeader); tier {
		case "hot":
			return body
		case "live":
			time.Sleep(5 * time.Millisecond)
		default:
			t.Fatalf("%s: tier header %q, want hot or live", target, tier)
		}
	}
	t.Fatal("source never served from the hot tier")
	return nil
}

func TestHotTierHeaderAndBitIdenticalBody(t *testing.T) {
	s, tier := hotServer(t)
	hot := waitHotHeader(t, s, "/single-source?u=7")

	// The escape hatch runs the live kernel; with the tier's contract
	// (same snapshot, same options, same seed) the scores must be
	// IDENTICAL, and the header must say live.
	rec, live := do(t, s, http.MethodGet, "/single-source?u=7&tier=live")
	if rec.Code != http.StatusOK {
		t.Fatalf("tier=live: status %d (%v)", rec.Code, live)
	}
	if h := rec.Header().Get(tierHeader); h != "live" {
		t.Fatalf("tier=live served with header %q", h)
	}
	hotScores := hot["scores"].(map[string]any)
	liveScores := live["scores"].(map[string]any)
	if len(hotScores) != len(liveScores) {
		t.Fatalf("hot returned %d scores, live %d", len(hotScores), len(liveScores))
	}
	for node, sc := range hotScores {
		if liveScores[node] != sc {
			t.Fatalf("node %s: hot %v != live %v — tiers must be bit-identical", node, sc, liveScores[node])
		}
	}
	if st := tier.Stats(); st.Hits == 0 || st.Builds == 0 {
		t.Fatalf("tier counters did not move: %+v", st)
	}
}

func TestHotTierInvalidatedByWrite(t *testing.T) {
	s, tier := hotServer(t)
	waitHotHeader(t, s, "/single-source?u=7")

	// A write touching node 7's shard must invalidate its entry; the next
	// query falls back to live (correct answer on the new snapshot), and
	// the refresher re-promotes it eventually.
	if rec, body := do(t, s, http.MethodPost, "/edges?u=7&v=399"); rec.Code != http.StatusOK {
		t.Fatalf("write: status %d (%v)", rec.Code, body)
	}
	rec, _ := do(t, s, http.MethodGet, "/single-source?u=7")
	if h := rec.Header().Get(tierHeader); h != "live" {
		t.Fatalf("first post-write query served from %q, want live (entry must be invalidated)", h)
	}
	if st := tier.Stats(); st.Invalidations == 0 {
		t.Fatalf("write did not invalidate: %+v", st)
	}
	waitHotHeader(t, s, "/single-source?u=7")
}

func TestStatsAndMetricsExposeHotAndCacheCounters(t *testing.T) {
	s, _ := hotServer(t)
	waitHotHeader(t, s, "/single-source?u=7")

	_, stats := do(t, s, http.MethodGet, "/stats")
	for _, key := range []string{
		"hotEntries", "hotStaleEntries", "hotTrackedSources", "hotHits", "hotMisses",
		"hotInvalidations", "hotBuilds", "hotBuildErrors", "hotEvictions", "hotYields",
		"hotWatermark", "hotWALWatermark", "hotLagBatches",
		"cacheHits", "cacheMisses", "cacheEvictions",
	} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("/stats missing %q: %v", key, stats)
		}
	}
	if stats["hotEntries"].(float64) < 1 || stats["hotHits"].(float64) < 1 {
		t.Fatalf("/stats hot counters flat after a hot-served query: %v", stats)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	page := rec.Body.String()
	for _, m := range []string{
		"probesim_hot_entries", "probesim_hot_stale_entries", "probesim_hot_tracked_sources",
		"probesim_hot_hits_total", "probesim_hot_misses_total", "probesim_hot_invalidations_total",
		"probesim_hot_builds_total", "probesim_hot_build_errors_total", "probesim_hot_evictions_total",
		"probesim_hot_yields_total", "probesim_hot_watermark", "probesim_hot_wal_watermark",
		"probesim_hot_lag_batches", "probesim_cache_evictions_total",
	} {
		if !strings.Contains(page, m) {
			t.Fatalf("/metrics missing %s", m)
		}
	}
}

// TestHotRefreshYieldsToForegroundPressure pins the CPU-yield seam
// deterministically: with MaxInflight 2, any inflight count >= 1 makes
// hotYield true, so a pending rebuild may not run — the yields counter
// moves and no entry lands — until the pressure drains.
func TestHotRefreshYieldsToForegroundPressure(t *testing.T) {
	s, tier := hotServer(t)
	s.SetLimits(Limits{MaxInflight: 2})

	s.queryInflight.Add(1) // hold foreground pressure at the yield watermark
	tier.Touch(7)
	tier.Touch(7)
	deadline := time.Now().Add(10 * time.Second)
	for tier.Stats().Yields == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("refresher never yielded under inflight pressure: %+v", tier.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := tier.Stats(); st.Entries != 0 {
		t.Fatalf("entry built while the refresher should be yielding: %+v", st)
	}

	s.queryInflight.Add(-1) // pressure gone: the pending build lands
	waitHotHeader(t, s, "/single-source?u=7")
}

// TestHotRefreshNeverStarvesForeground is the PR 3 MaxInflight pattern
// turned around: with the tier armed and a write storm forcing constant
// invalidation + rebuild, foreground queries under the inflight limit
// must NEVER see an admission 503 — refresh work runs below the HTTP
// layer and holds no admission slot.
func TestHotRefreshNeverStarvesForeground(t *testing.T) {
	s, tier := hotServer(t)
	s.SetLimits(Limits{MaxInflight: 2})
	waitHotHeader(t, s, "/single-source?u=7")

	stop := make(chan struct{})
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Each write touches node 7's shard, keeping the refresher busy
			// re-promoting it for the whole storm.
			target := fmt.Sprintf("/edges?u=7&v=%d", 100+i%200)
			method := http.MethodPost
			if (i/200)%2 == 1 {
				method = http.MethodDelete
			}
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(method, target, nil))
		}
	}()

	// Sequential foreground queries occupy at most 1 of 2 slots; any 503
	// here means background work leaked into admission.
	for i := 0; i < 200; i++ {
		u := i % 50
		rec, body := do(t, s, http.MethodGet, fmt.Sprintf("/single-source?u=%d", u))
		if rec.Code == http.StatusServiceUnavailable {
			t.Fatalf("foreground query %d rejected during refresh storm: %v", i, body)
		}
		if rec.Code != http.StatusOK {
			t.Fatalf("foreground query %d: status %d (%v)", i, rec.Code, body)
		}
	}
	close(stop)
	<-stormDone
	if st := tier.Stats(); st.Invalidations == 0 {
		t.Fatalf("storm did not exercise invalidation: %+v", st)
	}
}
