// Package obs is the process-level observability glue shared by the two
// binaries: structured logging setup (log/slog with a text|json switch)
// and the optional debug listener carrying net/http/pprof and the
// worker-side /debug/queries ring.
//
// The debug listener is its own mux on its own port, off by default:
// profiles and debug rings are operator surfaces, so they bypass the
// serving mux's admission control by construction and stay unreachable
// unless -debug-addr is set.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"

	"probesim/internal/promexpo"
	"probesim/internal/qtrace"
)

// InitLogging installs the process-wide slog default for the given
// -log-format value ("text" or "json"). The standard log package bridges
// into the same handler, so legacy log.Printf call sites inside library
// code inherit the format too.
func InitLogging(format string) error {
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("obs: unknown -log-format %q (want text or json)", format)
	}
	slog.SetDefault(slog.New(h))
	return nil
}

// ListenDebug serves net/http/pprof (plus any extra handlers) on addr in
// a background goroutine and returns the bound listener. The caller owns
// closing it.
func ListenDebug(addr string, extra map[string]http.Handler) (net.Listener, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for p, h := range extra {
		mux.Handle(p, h)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			slog.Warn("debug listener stopped", "addr", addr, "err", err)
		}
	}()
	return ln, nil
}

// MetricsHandler serves a Prometheus exposition page for a binary that
// has no full metrics registry of its own: the probesim_build_info
// gauge (so fleet dashboards can break behavior down by running
// version) plus whatever extra writers append. The page is
// text-format 0.0.4, the same contract as the HTTP server's /metrics.
func MetricsHandler(binary string, extra ...func(io.Writer)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		promexpo.WriteBuildInfo(w, binary)
		for _, f := range extra {
			if f != nil {
				f(w)
			}
		}
	})
}

// QueriesHandler serves a tracer's completed-trace ring as JSON — the
// shard worker's equivalent of the HTTP server's /debug/queries route.
func QueriesHandler(t *qtrace.Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := t.Recent()
		if rec == nil {
			rec = []*qtrace.Done{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"started": t.Started(),
			"sampled": t.Sampled(),
			"slow":    t.SlowCount(),
			"queries": rec,
		})
	})
}
