package accuracy

import (
	"math"
	"testing"

	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/power"
)

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 − e^{−x}; P(1/2, x) = erf(√x).
	cases := []struct {
		a, x, want float64
	}{
		{1, 1, 1 - math.Exp(-1)},
		{1, 3, 1 - math.Exp(-3)},
		{0.5, 1, math.Erf(1)},
		{0.5, 4, math.Erf(2)},
		{5, 5, 0.5595067149347875}, // midpoint region, cross-checked value
	}
	for _, c := range cases {
		got, err := GammaP(c.a, c.x)
		if err != nil {
			t.Fatalf("GammaP(%v, %v): %v", c.a, c.x, err)
		}
		if math.Abs(got-c.want) > 1e-10 {
			t.Errorf("GammaP(%v, %v) = %.12f, want %.12f", c.a, c.x, got, c.want)
		}
	}
}

func TestGammaPProperties(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 10} {
		zero, err := GammaP(a, 0)
		if err != nil || zero != 0 {
			t.Fatalf("GammaP(%v, 0) = %v, %v; want 0, nil", a, zero, err)
		}
		prev := 0.0
		for x := 0.1; x < 50; x *= 1.7 {
			p, err := GammaP(a, x)
			if err != nil {
				t.Fatalf("GammaP(%v, %v): %v", a, x, err)
			}
			if p < prev-1e-12 {
				t.Fatalf("GammaP(%v, ·) not monotone at x=%v: %v < %v", a, x, p, prev)
			}
			if p < 0 || p > 1 {
				t.Fatalf("GammaP(%v, %v) = %v outside [0, 1]", a, x, p)
			}
			prev = p
		}
		if tail, _ := GammaP(a, 200); tail < 1-1e-9 {
			t.Fatalf("GammaP(%v, 200) = %v, want ≈ 1", a, tail)
		}
	}
	if _, err := GammaP(-1, 1); err == nil {
		t.Error("GammaP accepted a <= 0")
	}
	if _, err := GammaP(1, -1); err == nil {
		t.Error("GammaP accepted x < 0")
	}
}

func TestChiSquareCDFCriticalValues(t *testing.T) {
	// Standard 95th-percentile critical values.
	cases := []struct {
		k   int
		x95 float64
	}{
		{1, 3.841},
		{2, 5.991},
		{5, 11.070},
		{10, 18.307},
	}
	for _, c := range cases {
		got, err := ChiSquareCDF(c.x95, c.k)
		if err != nil {
			t.Fatalf("ChiSquareCDF(%v, %d): %v", c.x95, c.k, err)
		}
		if math.Abs(got-0.95) > 1e-3 {
			t.Errorf("ChiSquareCDF(%v, %d) = %.5f, want ≈ 0.95", c.x95, c.k, got)
		}
	}
	if v, _ := ChiSquareCDF(-1, 3); v != 0 {
		t.Errorf("ChiSquareCDF(-1, 3) = %v, want 0", v)
	}
	if _, err := ChiSquareCDF(1, 0); err == nil {
		t.Error("ChiSquareCDF accepted k = 0")
	}
}

func TestKolmogorovQKnownValues(t *testing.T) {
	// λ = 1.3581 is the classical 5% critical value, 1.6276 the 1% one.
	if q := KolmogorovQ(1.3581); math.Abs(q-0.05) > 2e-3 {
		t.Errorf("KolmogorovQ(1.3581) = %v, want ≈ 0.05", q)
	}
	if q := KolmogorovQ(1.6276); math.Abs(q-0.01) > 1e-3 {
		t.Errorf("KolmogorovQ(1.6276) = %v, want ≈ 0.01", q)
	}
	if q := KolmogorovQ(0); q != 1 {
		t.Errorf("KolmogorovQ(0) = %v, want 1", q)
	}
	if q := KolmogorovQ(5); q > 1e-10 {
		t.Errorf("KolmogorovQ(5) = %v, want ≈ 0", q)
	}
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		q := KolmogorovQ(l)
		if q > prev+1e-12 {
			t.Fatalf("KolmogorovQ not monotone at λ=%v", l)
		}
		prev = q
	}
}

func TestCoverageGuaranteeHolds(t *testing.T) {
	g := gen.ErdosRenyi(80, 400, 5)
	truth, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("power.SimRank: %v", err)
	}
	var queries []graph.NodeID
	for v := 0; v < g.NumNodes() && len(queries) < 12; v++ {
		if g.InDegree(graph.NodeID(v)) > 0 {
			queries = append(queries, graph.NodeID(v))
		}
	}
	rep, err := Coverage(g, truth, queries, core.Options{EpsA: 0.08, Delta: 0.01, Seed: 3})
	if err != nil {
		t.Fatalf("Coverage: %v", err)
	}
	if rep.Queries != len(queries) {
		t.Fatalf("Queries = %d, want %d", rep.Queries, len(queries))
	}
	// With δ = 0.01 and conservative constants, exceedances should be
	// absent; flag anything above the literal Chernoff budget.
	if rep.Exceedances != 0 {
		t.Fatalf("%d of %d queries exceeded εa (worst %v); guarantee violated",
			rep.Exceedances, rep.Queries, rep.WorstErr)
	}
	if rep.WorstErr <= 0 || rep.WorstErr > rep.EpsA {
		t.Fatalf("WorstErr = %v outside (0, εa]", rep.WorstErr)
	}
	if rep.MeanMaxErr > rep.WorstErr {
		t.Fatalf("MeanMaxErr %v > WorstErr %v", rep.MeanMaxErr, rep.WorstErr)
	}
	if rep.Rate() != 0 {
		t.Fatalf("Rate = %v, want 0", rep.Rate())
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestCoveragePropagatesQueryErrors(t *testing.T) {
	g := gen.ErdosRenyi(20, 60, 1)
	truth, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Coverage(g, truth, []graph.NodeID{5}, core.Options{EpsA: 2})
	if err == nil {
		t.Fatal("invalid options not propagated")
	}
}

func TestWalkLengthKSOnDeadEndFreeGraph(t *testing.T) {
	// Every node of a cycle has an in-neighbor, so lengths are exactly
	// geometric and the KS test must not reject.
	g := gen.Cycle(50)
	res, err := WalkLengthKS(g, 0.6, 20000, 9)
	if err != nil {
		t.Fatalf("WalkLengthKS: %v", err)
	}
	if res.Samples != 20000 {
		t.Fatalf("Samples = %d", res.Samples)
	}
	if res.PValue < 0.01 {
		t.Fatalf("KS rejected the geometric law on a dead-end-free graph: D=%v p=%v", res.D, res.PValue)
	}
}

func TestWalkLengthKSDetectsDeadEnds(t *testing.T) {
	// On an outward star the hub kills every walk at length 1 or 2; the
	// distribution is far from geometric and the test must reject hard.
	g := gen.Star(40)
	res, err := WalkLengthKS(g, 0.6, 5000, 9)
	if err != nil {
		t.Fatalf("WalkLengthKS: %v", err)
	}
	if res.PValue > 1e-6 {
		t.Fatalf("KS failed to detect dead-end truncation: D=%v p=%v", res.D, res.PValue)
	}
}

func TestWalkLengthKSValidation(t *testing.T) {
	g := gen.Cycle(5)
	if _, err := WalkLengthKS(g, 0.6, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := WalkLengthKS(g, 1.5, 100, 1); err == nil {
		t.Error("c > 1 accepted")
	}
	if _, err := WalkLengthKS(graph.New(0), 0.6, 100, 1); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestSamplingUniformityPasses(t *testing.T) {
	// A node with 8 in-neighbors sampled 80k times: the uniform null must
	// survive at any reasonable significance.
	g := graph.New(9)
	for v := 1; v <= 8; v++ {
		if err := g.AddEdge(graph.NodeID(v), 0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := SamplingUniformity(g, 0, 80000, 17)
	if err != nil {
		t.Fatalf("SamplingUniformity: %v", err)
	}
	if res.DoF != 7 {
		t.Fatalf("DoF = %d, want 7", res.DoF)
	}
	if res.PValue < 1e-4 {
		t.Fatalf("uniformity rejected: χ²=%v dof=%d p=%v", res.Statistic, res.DoF, res.PValue)
	}
}

func TestSamplingUniformityValidation(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := SamplingUniformity(g, 0, 1000, 1); err == nil {
		t.Error("single in-neighbor accepted")
	}
	if _, err := SamplingUniformity(g, 9, 1000, 1); err == nil {
		t.Error("out-of-range node accepted")
	}
	g2 := graph.New(3)
	for v := 1; v < 3; v++ {
		if err := g2.AddEdge(graph.NodeID(v), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := SamplingUniformity(g2, 0, 5, 1); err == nil {
		t.Error("too-few samples accepted")
	}
}
