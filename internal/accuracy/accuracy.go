// Package accuracy validates the statistical claims behind ProbeSim
// empirically: Theorem 1-3's (εa, δ) coverage guarantee, the geometric
// √c-walk length law the §3.3 complexity analysis rests on, and the
// uniformity of in-neighbor sampling every estimator assumes. The
// experiment harness runs these as an experiment (guarantees are results
// too), and the tests in this package double as a distribution-level check
// on internal/xrand.
package accuracy

import (
	"context"
	"fmt"
	"math"

	"probesim/internal/core"
	"probesim/internal/graph"
	"probesim/internal/power"
	"probesim/internal/walk"
	"probesim/internal/xrand"
)

// CoverageReport summarizes how the εa guarantee held up over a set of
// single-source queries with known ground truth.
type CoverageReport struct {
	// Queries is the number of single-source queries evaluated.
	Queries int
	// EpsA and Delta echo the guarantee being tested.
	EpsA, Delta float64
	// WorstErr is the largest absolute error over all queries and targets.
	WorstErr float64
	// MeanMaxErr averages each query's max absolute error.
	MeanMaxErr float64
	// Exceedances counts queries whose max error exceeded EpsA — the
	// guarantee bounds E[Exceedances/Queries] by Delta.
	Exceedances int
}

// Rate returns the empirical failure rate Exceedances/Queries.
func (r CoverageReport) Rate() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.Exceedances) / float64(r.Queries)
}

// String formats the report for experiment output.
func (r CoverageReport) String() string {
	return fmt.Sprintf("queries=%d eps=%.4g delta=%.4g worst=%.4g mean-max=%.4g exceed=%d (rate %.4g)",
		r.Queries, r.EpsA, r.Delta, r.WorstErr, r.MeanMaxErr, r.Exceedances, r.Rate())
}

// Coverage runs one ProbeSim single-source query per query node against
// exact ground truth and reports the empirical error distribution. Each
// query uses a distinct seed stream so the trials are independent.
func Coverage(g *graph.Graph, truth *power.Matrix, queries []graph.NodeID, opt core.Options) (CoverageReport, error) {
	rep := CoverageReport{Queries: len(queries), EpsA: opt.EpsA, Delta: opt.Delta}
	if rep.EpsA == 0 {
		rep.EpsA = 0.1
	}
	if rep.Delta == 0 {
		rep.Delta = 0.01
	}
	for i, u := range queries {
		qo := opt
		if qo.Seed == 0 {
			qo.Seed = 1
		}
		qo.Seed += uint64(i) * 0x9e3779b97f4a7c15
		est, err := core.SingleSource(context.Background(), g, u, qo)
		if err != nil {
			return rep, fmt.Errorf("accuracy: query %d (node %d): %w", i, u, err)
		}
		var maxErr float64
		for v := 0; v < g.NumNodes(); v++ {
			if graph.NodeID(v) == u {
				continue
			}
			if d := math.Abs(est[v] - truth.At(u, graph.NodeID(v))); d > maxErr {
				maxErr = d
			}
		}
		rep.MeanMaxErr += maxErr
		if maxErr > rep.WorstErr {
			rep.WorstErr = maxErr
		}
		if maxErr > rep.EpsA {
			rep.Exceedances++
		}
	}
	if len(queries) > 0 {
		rep.MeanMaxErr /= float64(len(queries))
	}
	return rep, nil
}

// KSResult is a Kolmogorov–Smirnov goodness-of-fit result.
type KSResult struct {
	// Samples is the sample count n.
	Samples int
	// D is the KS statistic: the max distance between the empirical and
	// theoretical CDFs.
	D float64
	// PValue is the asymptotic p-value of D. For discrete distributions
	// (like walk lengths) it is conservative: the true p-value is larger.
	PValue float64
}

// WalkLengthKS samples √c-walk lengths from a random start and compares
// them to the geometric law P(ℓ = k) = (√c)^{k−1}·(1 − √c) that §3.3's
// complexity analysis assumes. The law holds exactly only on graphs
// without dead ends (every node has an in-neighbor); on other graphs the
// statistic measures how far dead ends push the lengths below geometric.
func WalkLengthKS(g *graph.Graph, c float64, samples int, seed uint64) (KSResult, error) {
	if samples < 1 {
		return KSResult{}, fmt.Errorf("accuracy: sample count %d < 1", samples)
	}
	if c <= 0 || c >= 1 {
		return KSResult{}, fmt.Errorf("accuracy: decay factor c = %v outside (0, 1)", c)
	}
	if g.NumNodes() == 0 {
		return KSResult{}, fmt.Errorf("accuracy: empty graph")
	}
	rng := xrand.New(seed)
	gen := walk.NewGenerator(g, c, rng)
	hist := make([]int, walk.HardCap+1)
	var buf []graph.NodeID
	for i := 0; i < samples; i++ {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		buf = gen.Generate(u, 0, buf)
		hist[len(buf)]++
	}
	sqrtC := math.Sqrt(c)
	// Both CDFs are right-continuous step functions jumping only at the
	// integer support {1, ..., HardCap}, so sup |F_emp − F| is attained at
	// a support point: F(k) = 1 − (√c)^k for the geometric law, capped at
	// HardCap where both CDFs reach 1.
	var d float64
	n := float64(samples)
	cum := 0
	for k := 1; k <= walk.HardCap; k++ {
		cum += hist[k]
		theo := 1 - math.Pow(sqrtC, float64(k))
		if k == walk.HardCap {
			theo = 1 // the generator truncates here, and so does the model
		}
		if diff := math.Abs(float64(cum)/n - theo); diff > d {
			d = diff
		}
	}
	sqrtN := math.Sqrt(n)
	lambda := d * (sqrtN + 0.12 + 0.11/sqrtN)
	return KSResult{Samples: samples, D: d, PValue: KolmogorovQ(lambda)}, nil
}

// ChiSquareResult is a chi-square goodness-of-fit result.
type ChiSquareResult struct {
	// Statistic is Σ (observed − expected)² / expected.
	Statistic float64
	// DoF is the degrees of freedom (categories − 1).
	DoF int
	// PValue is P(X² >= Statistic) under the null hypothesis.
	PValue float64
}

// SamplingUniformity draws `samples` in-neighbor selections for node v the
// way every walk step does, and chi-square-tests the counts against the
// uniform law the SimRank definition requires.
func SamplingUniformity(g *graph.Graph, v graph.NodeID, samples int, seed uint64) (ChiSquareResult, error) {
	if v < 0 || int(v) >= g.NumNodes() {
		return ChiSquareResult{}, fmt.Errorf("accuracy: node %d out of range [0, %d)", v, g.NumNodes())
	}
	in := g.InNeighbors(v)
	if len(in) < 2 {
		return ChiSquareResult{}, fmt.Errorf("accuracy: node %d has %d in-neighbors; need >= 2", v, len(in))
	}
	if samples < 10*len(in) {
		return ChiSquareResult{}, fmt.Errorf("accuracy: %d samples too few for %d categories", samples, len(in))
	}
	rng := xrand.New(seed)
	counts := make([]int, len(in))
	for i := 0; i < samples; i++ {
		counts[rng.Intn(len(in))]++
	}
	expected := float64(samples) / float64(len(in))
	var stat float64
	for _, c := range counts {
		diff := float64(c) - expected
		stat += diff * diff / expected
	}
	dof := len(in) - 1
	cdf, err := ChiSquareCDF(stat, dof)
	if err != nil {
		return ChiSquareResult{}, err
	}
	return ChiSquareResult{Statistic: stat, DoF: dof, PValue: 1 - cdf}, nil
}
