package accuracy_test

import (
	"fmt"

	"probesim/internal/accuracy"
	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/power"
)

// Measure how the (εa, δ) guarantee actually holds: the worst observed
// error should sit under εa with zero exceedances at δ = 1%.
func ExampleCoverage() {
	g := gen.ErdosRenyi(60, 300, 5)
	truth, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		panic(err)
	}
	rep, err := accuracy.Coverage(g, truth, []graph.NodeID{1, 2, 3, 4, 5},
		core.Options{EpsA: 0.1, Delta: 0.01, Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Printf("exceedances: %d of %d queries\n", rep.Exceedances, rep.Queries)
	fmt.Printf("worst error under the bound: %v\n", rep.WorstErr <= rep.EpsA)
	// Output:
	// exceedances: 0 of 5 queries
	// worst error under the bound: true
}
