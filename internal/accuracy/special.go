package accuracy

import (
	"fmt"
	"math"
)

// This file implements the special functions the statistical tests need,
// from scratch on the standard library: the regularized lower incomplete
// gamma function (series and continued-fraction forms, after Numerical
// Recipes §6.2), the chi-square CDF built on it, and the Kolmogorov
// distribution's tail.

const (
	gammaMaxIter = 500
	gammaEps     = 1e-14
)

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x >= 0.
func GammaP(a, x float64) (float64, error) {
	if a <= 0 {
		return 0, fmt.Errorf("accuracy: GammaP requires a > 0, got %v", a)
	}
	if x < 0 {
		return 0, fmt.Errorf("accuracy: GammaP requires x >= 0, got %v", x)
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	q, err := gammaContinuedFraction(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// gammaSeries evaluates P(a, x) by its power series, accurate for x < a+1.
func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("accuracy: gamma series did not converge for a=%v x=%v", a, x)
}

// gammaContinuedFraction evaluates Q(a, x) = 1 − P(a, x) by the Lentz
// continued fraction, accurate for x >= a+1.
func gammaContinuedFraction(a, x float64) (float64, error) {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("accuracy: gamma continued fraction did not converge for a=%v x=%v", a, x)
}

// ChiSquareCDF returns P(X <= x) for a chi-square variable with k degrees
// of freedom.
func ChiSquareCDF(x float64, k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("accuracy: chi-square needs k >= 1 degrees of freedom, got %d", k)
	}
	if x <= 0 {
		return 0, nil
	}
	return GammaP(float64(k)/2, x/2)
}

// KolmogorovQ returns the tail Q(λ) = 2·Σ_{j>=1} (−1)^{j−1}·exp(−2j²λ²) of
// the Kolmogorov distribution: the asymptotic p-value of a KS statistic
// D with λ = D·(√n + 0.12 + 0.11/√n).
func KolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j)*float64(j)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-16 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	switch {
	case q < 0:
		return 0
	case q > 1:
		return 1
	}
	return q
}
