package power

import (
	"math"
	"testing"

	"probesim/internal/graph"
)

// table2 holds the paper's Table 2: Power-Method SimRank values s(a, ·) on
// the toy graph with decay factor c' = 0.25 (so √c' = 0.5).
var table2 = map[graph.NodeID]float64{
	graph.ToyB: 0.0096,
	graph.ToyC: 0.049,
	graph.ToyD: 0.131,
	graph.ToyE: 0.070,
	graph.ToyF: 0.041,
	graph.ToyG: 0.051,
	graph.ToyH: 0.051,
}

// buildToyCandidate assembles a toy-graph candidate. The fixed edge set is
// forced by the paper's running example; the four booleans choose the
// remaining in-neighbors (see graph.Toy's doc comment).
func buildToyCandidate(bFromE, cFromH, eFromH, fFromG bool) *graph.Graph {
	g := graph.New(8)
	add := func(u, v graph.NodeID) {
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	add(graph.ToyA, graph.ToyB)
	add(graph.ToyA, graph.ToyC)
	add(graph.ToyB, graph.ToyA)
	add(graph.ToyB, graph.ToyC)
	add(graph.ToyB, graph.ToyD)
	add(graph.ToyB, graph.ToyE)
	add(graph.ToyC, graph.ToyA)
	add(graph.ToyC, graph.ToyF)
	add(graph.ToyC, graph.ToyG)
	add(graph.ToyC, graph.ToyH)
	add(graph.ToyD, graph.ToyF)
	add(graph.ToyD, graph.ToyG)
	add(graph.ToyD, graph.ToyH)
	add(graph.ToyE, graph.ToyF)
	add(graph.ToyE, graph.ToyG)
	add(graph.ToyE, graph.ToyH)
	if bFromE {
		add(graph.ToyE, graph.ToyB)
	} else {
		add(graph.ToyD, graph.ToyB)
	}
	if cFromH {
		add(graph.ToyH, graph.ToyC)
	} else {
		add(graph.ToyG, graph.ToyC)
	}
	if eFromH {
		add(graph.ToyH, graph.ToyE)
	} else {
		add(graph.ToyG, graph.ToyE)
	}
	if fFromG {
		add(graph.ToyG, graph.ToyF)
	} else {
		add(graph.ToyH, graph.ToyF)
	}
	return g
}

func table2Error(t *testing.T, g *graph.Graph) float64 {
	t.Helper()
	row, err := SingleSource(g, graph.ToyA, Options{C: 0.25, Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for v, want := range table2 {
		if d := math.Abs(row[v] - want); d > worst {
			worst = d
		}
	}
	return worst
}

// TestToySolver enumerates the 16 candidate completions of Figure 1 and
// reports how each scores against Table 2. Table 2 rounds to ~3 decimals,
// so the true graph must match within 0.00075 on every entry.
func TestToySolver(t *testing.T) {
	matches := 0
	for mask := 0; mask < 16; mask++ {
		g := buildToyCandidate(mask&1 != 0, mask&2 != 0, mask&4 != 0, mask&8 != 0)
		worst := table2Error(t, g)
		t.Logf("candidate %04b: worst |Δ| = %.5f", mask, worst)
		if worst <= 0.00075 {
			matches++
		}
	}
	if matches == 0 {
		t.Fatal("no candidate completion reproduces Table 2")
	}
}

// TestToyGraphTable2 is the regression test for the committed toy graph
// [E-T2]: its Power-Method values must reproduce Table 2.
func TestToyGraphTable2(t *testing.T) {
	if worst := table2Error(t, graph.Toy()); worst > 0.00075 {
		t.Fatalf("committed toy graph misses Table 2 by %.5f", worst)
	}
}
