package power

import (
	"math"
	"testing"
	"testing/quick"

	"probesim/internal/graph"
	"probesim/internal/xrand"
)

func TestIterationsFor(t *testing.T) {
	// 0.6^(55+1) ≈ 4.2e-13 <= 1e-12, 0.6^55 ≈ 6.9e-13 > ... check monotone
	// property instead of exact constants.
	k := IterationsFor(0.6, 1e-12)
	if math.Pow(0.6, float64(k+1)) > 1e-12 {
		t.Fatalf("k=%d does not reach tolerance", k)
	}
	if k > 1 && math.Pow(0.6, float64(k)) <= 1e-12 {
		t.Fatalf("k=%d not minimal", k)
	}
	if IterationsFor(0.6, 0) != 55 {
		t.Fatal("invalid tolerance must fall back to 55")
	}
}

func TestRejectsBadDecay(t *testing.T) {
	g := graph.New(2)
	for _, c := range []float64{-0.5, 1, 1.5} {
		if _, err := SimRank(g, Options{C: c}); err == nil {
			t.Errorf("c=%v accepted", c)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	m, err := SimRank(graph.New(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 0 {
		t.Fatal("empty graph should give empty matrix")
	}
}

func TestIsolatedNodes(t *testing.T) {
	// No edges: s(u,u)=1, s(u,v)=0.
	g := graph.New(4)
	m, err := SimRank(g, Options{C: 0.6, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	for u := graph.NodeID(0); u < 4; u++ {
		for v := graph.NodeID(0); v < 4; v++ {
			want := 0.0
			if u == v {
				want = 1
			}
			if m.At(u, v) != want {
				t.Fatalf("s(%d,%d) = %v, want %v", u, v, m.At(u, v), want)
			}
		}
	}
}

// TestTwoNodeCycle checks the closed form on u <-> v: both nodes have the
// other as their only in-neighbor, so s(u,v) = c·s(v,u) ... with s(u,v) =
// c·s(u,v)? No: s(u,v) = c·s(v,u) by one expansion and by symmetry
// s(u,v) = c·s(u,v) would force 0 — expanding properly: s(u,v) =
// c·s(I(u),I(v)) = c·s(v,u) = c·s(u,v) only if s symmetric, giving 0.
// SimRank of a 2-cycle is indeed 0 off-diagonal because the two walks can
// never meet (they swap positions forever, always at opposite nodes).
func TestTwoNodeCycle(t *testing.T) {
	g := graph.New(2)
	must(t, g.AddEdge(0, 1))
	must(t, g.AddEdge(1, 0))
	m, err := SimRank(g, Options{C: 0.8, Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 1); math.Abs(got) > 1e-12 {
		t.Fatalf("2-cycle s(0,1) = %v, want 0", got)
	}
}

// TestSharedParent checks the closed form for two nodes whose single
// in-neighbor is the same node w: s(u,v) = c·s(w,w) = c.
func TestSharedParent(t *testing.T) {
	g := graph.New(3)
	must(t, g.AddEdge(2, 0))
	must(t, g.AddEdge(2, 1))
	m, err := SimRank(g, Options{C: 0.6, Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 1); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("shared parent s(0,1) = %v, want 0.6", got)
	}
}

// TestStarClosedForm: hub h points to k leaves. Leaves pairwise similarity
// is c; leaf-hub similarity is 0 (hub has no in-neighbor).
func TestStarClosedForm(t *testing.T) {
	const k = 5
	g := graph.New(k + 1)
	for i := 1; i <= k; i++ {
		must(t, g.AddEdge(0, graph.NodeID(i)))
	}
	m, err := SimRank(g, Options{C: 0.7, Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			if got := m.At(graph.NodeID(i), graph.NodeID(j)); math.Abs(got-0.7) > 1e-9 {
				t.Fatalf("s(%d,%d) = %v, want 0.7", i, j, got)
			}
		}
		if got := m.At(0, graph.NodeID(i)); got != 0 {
			t.Fatalf("s(hub,leaf) = %v, want 0", got)
		}
	}
}

func randomGraph(rng *xrand.RNG, n, m int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
		if u != v {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}

// Property: SimRank is symmetric, bounded in [0,1], with unit diagonal and
// off-diagonal values at most c.
func TestMatrixProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := randomGraph(rng, 25, 80)
		m, err := SimRank(g, Options{C: 0.6, Iterations: 25})
		if err != nil {
			return false
		}
		n := m.N()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				s := m.At(graph.NodeID(u), graph.NodeID(v))
				if s < 0 || s > 1 {
					return false
				}
				if u == v && s != 1 {
					return false
				}
				if u != v && s > 0.6+1e-12 {
					return false
				}
				if math.Abs(s-m.At(graph.NodeID(v), graph.NodeID(u))) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: the definition (Eq. 1) holds at the fixed point.
func TestFixedPointEquation(t *testing.T) {
	rng := xrand.New(99)
	g := randomGraph(rng, 20, 60)
	m, err := SimRank(g, Options{C: 0.6, Tolerance: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	n := m.N()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			iu, iv := g.InNeighbors(graph.NodeID(u)), g.InNeighbors(graph.NodeID(v))
			want := 0.0
			if len(iu) > 0 && len(iv) > 0 {
				var sum float64
				for _, x := range iu {
					for _, y := range iv {
						sum += m.At(x, y)
					}
				}
				want = 0.6 * sum / float64(len(iu)*len(iv))
			}
			if math.Abs(m.At(graph.NodeID(u), graph.NodeID(v))-want) > 1e-9 {
				t.Fatalf("fixed point violated at (%d,%d): %v vs %v",
					u, v, m.At(graph.NodeID(u), graph.NodeID(v)), want)
			}
		}
	}
}

// Iterations monotonicity: more iterations never move the values by more
// than the c^k tail bound.
func TestConvergenceTail(t *testing.T) {
	rng := xrand.New(5)
	g := randomGraph(rng, 30, 120)
	m10, err := SimRank(g, Options{C: 0.6, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	m40, err := SimRank(g, Options{C: 0.6, Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	bound := math.Pow(0.6, 11)
	for u := 0; u < m10.N(); u++ {
		for v := 0; v < m10.N(); v++ {
			d := math.Abs(m10.At(graph.NodeID(u), graph.NodeID(v)) - m40.At(graph.NodeID(u), graph.NodeID(v)))
			if d > bound {
				t.Fatalf("tail bound violated at (%d,%d): %v > %v", u, v, d, bound)
			}
		}
	}
}

func TestSingleSourceMatchesMatrix(t *testing.T) {
	rng := xrand.New(77)
	g := randomGraph(rng, 15, 40)
	m, err := SimRank(g, Options{C: 0.6, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	row, err := SingleSource(g, 3, Options{C: 0.6, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < m.N(); v++ {
		if row[v] != m.At(3, graph.NodeID(v)) {
			t.Fatalf("row mismatch at %d", v)
		}
	}
}

// Workers must not change results.
func TestWorkerInvariance(t *testing.T) {
	rng := xrand.New(123)
	g := randomGraph(rng, 40, 150)
	m1, err := SimRank(g, Options{C: 0.6, Iterations: 15, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m8, err := SimRank(g, Options{C: 0.6, Iterations: 15, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.vals {
		if m1.vals[i] != m8.vals[i] {
			t.Fatal("parallelism changed results")
		}
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
