// Package power implements the Power Method for all-pairs SimRank (Jeh &
// Widom 2002), the ground-truth oracle used by the paper's small-graph
// experiments (§6.1).
//
// The method iterates the correct SimRank fixed point of Eq. 10,
//
//	S = (c · Qᵀ S Q) ∨ I,
//
// where Q is the reverse transition matrix (row u is uniform over I(u)) and
// ∨ I resets the diagonal to one. After k iterations every entry is within
// c^(k+1) of the exact similarity, so 55 iterations at c = 0.6 give the
// paper's 10⁻¹² guarantee.
//
// The cost is Θ(k·n·m) time and Θ(n²) space, which is exactly why the paper
// restricts it to small graphs — and why this repository does too.
package power

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"probesim/internal/graph"
)

// Options configures the Power Method.
type Options struct {
	// C is the SimRank decay factor in (0, 1). Default 0.6 (the paper's
	// experimental setting).
	C float64
	// Iterations overrides the iteration count when > 0.
	Iterations int
	// Tolerance selects the iteration count as the smallest k with
	// c^(k+1) <= Tolerance when Iterations == 0. Default 1e-12 (55
	// iterations at c = 0.6, matching §6.1).
	Tolerance float64
	// Workers bounds row-level parallelism. Default runtime.GOMAXPROCS(0).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-12
	}
	if o.Iterations == 0 {
		o.Iterations = IterationsFor(o.C, o.Tolerance)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o Options) validate() error {
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("power: decay factor c = %v outside (0, 1)", o.C)
	}
	return nil
}

// IterationsFor returns the smallest k such that c^(k+1) <= tol, i.e. the
// number of Power-Method iterations guaranteeing absolute error tol.
func IterationsFor(c, tol float64) int {
	if tol <= 0 || c <= 0 || c >= 1 {
		return 55
	}
	k := int(math.Ceil(math.Log(tol)/math.Log(c))) - 1
	if k < 1 {
		k = 1
	}
	return k
}

// Matrix holds all-pairs SimRank scores for a graph with n nodes.
type Matrix struct {
	n    int
	vals []float64 // row-major n×n
}

// N returns the number of nodes the matrix covers.
func (m *Matrix) N() int { return m.n }

// At returns s(u, v).
func (m *Matrix) At(u, v graph.NodeID) float64 {
	return m.vals[int(u)*m.n+int(v)]
}

// Row returns the single-source row s(u, ·). The slice aliases the matrix;
// callers must not modify it.
func (m *Matrix) Row(u graph.NodeID) []float64 {
	return m.vals[int(u)*m.n : (int(u)+1)*m.n]
}

// SimRank computes all-pairs SimRank by the Power Method.
func SimRank(g *graph.Graph, opt Options) (*Matrix, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return &Matrix{}, nil
	}
	cur := newIdentity(n)
	next := make([]float64, n*n)
	for it := 0; it < opt.Iterations; it++ {
		iterate(g, opt, cur, next)
		cur, next = next, cur
	}
	return &Matrix{n: n, vals: cur}, nil
}

// SingleSource computes the exact single-source row s(u, ·). It runs the
// full all-pairs computation (SimRank has no cheaper exact single-source
// form), so it carries the same Θ(n²) space cost; it exists as a
// convenience for tests and small experiments.
func SingleSource(g *graph.Graph, u graph.NodeID, opt Options) ([]float64, error) {
	m, err := SimRank(g, opt)
	if err != nil {
		return nil, err
	}
	out := make([]float64, m.n)
	copy(out, m.Row(u))
	return out, nil
}

func newIdentity(n int) []float64 {
	s := make([]float64, n*n)
	for i := 0; i < n; i++ {
		s[i*n+i] = 1
	}
	return s
}

// iterate performs next = (c · Qᵀ cur Q) ∨ I, parallelized over rows.
//
// For each row u we first build t = mean_{x ∈ I(u)} cur[x] (one dense row),
// then next[u][v] = c · mean_{y ∈ I(v)} t[y]. Rows with I(u) = ∅ are zero
// except for the diagonal, matching Eq. 1 (an empty sum).
func iterate(g *graph.Graph, opt Options, cur, next []float64) {
	n := g.NumNodes()
	workers := opt.Workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	rows := make(chan int, workers*4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := make([]float64, n)
			for u := range rows {
				iterateRow(g, opt.C, cur, next, t, u)
			}
		}()
	}
	for u := 0; u < n; u++ {
		rows <- u
	}
	close(rows)
	wg.Wait()
}

func iterateRow(g *graph.Graph, c float64, cur, next, t []float64, u int) {
	n := g.NumNodes()
	row := next[u*n : (u+1)*n]
	inU := g.InNeighbors(graph.NodeID(u))
	if len(inU) == 0 {
		for i := range row {
			row[i] = 0
		}
		row[u] = 1
		return
	}
	invU := 1 / float64(len(inU))
	for i := range t {
		t[i] = 0
	}
	for _, x := range inU {
		xrow := cur[int(x)*n : (int(x)+1)*n]
		for i, v := range xrow {
			t[i] += v
		}
	}
	for i := range t {
		t[i] *= invU
	}
	for v := 0; v < n; v++ {
		inV := g.InNeighbors(graph.NodeID(v))
		if len(inV) == 0 {
			row[v] = 0
			continue
		}
		var sum float64
		for _, y := range inV {
			sum += t[y]
		}
		row[v] = c * sum / float64(len(inV))
	}
	row[u] = 1
}
