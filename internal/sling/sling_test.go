package sling

import (
	"math"
	"testing"

	"probesim/internal/graph"
	"probesim/internal/power"
	"probesim/internal/xrand"
)

// The last-meeting decomposition must reproduce exact SimRank when the
// index is built with tight parameters.
func TestExactnessToyGraph(t *testing.T) {
	g := graph.Toy()
	exact, err := power.SingleSource(g, graph.ToyA, power.Options{C: 0.25, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(g, BuildOptions{C: 0.25, T: 25, EpsH: 1e-6, DPairs: 40000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	est, err := idx.SingleSource(graph.ToyA)
	if err != nil {
		t.Fatal(err)
	}
	for v := range est {
		if d := math.Abs(est[v] - exact[v]); d > 0.01 {
			t.Errorf("s̃(a,%s) = %.4f, exact %.4f (Δ=%.4f)", graph.ToyNames[v], est[v], exact[v], d)
		}
	}
}

func TestExactnessRandomGraph(t *testing.T) {
	rng := xrand.New(5)
	g := randomGraph(rng, 40, 200)
	m, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(g, BuildOptions{C: 0.6, T: 25, EpsH: 1e-5, DPairs: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []graph.NodeID{0, 13, 29} {
		est, err := idx.SingleSource(u)
		if err != nil {
			t.Fatal(err)
		}
		for v := range est {
			if d := math.Abs(est[v] - m.At(u, graph.NodeID(v))); d > 0.02 {
				t.Fatalf("s̃(%d,%d) = %.4f, exact %.4f", u, v, est[v], m.At(u, graph.NodeID(v)))
			}
		}
	}
}

// d(w) is a probability, 1 on dead-end nodes, and on the 2-cycle it is
// exactly 1 (the walks swap positions forever and never meet).
func TestDEstimates(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil { // node 0: no in-edges
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	idx, err := Build(g, BuildOptions{C: 0.64, DPairs: 3000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range idx.d {
		if d < 0 || d > 1 {
			t.Fatalf("d(%d) = %v out of range", v, d)
		}
	}
	if idx.d[2] != 1 {
		t.Fatalf("isolated node d = %v, want 1", idx.d[2])
	}
	// Nodes 0 and 1 form a 2-cycle: two walks from the same node move in
	// lockstep to the same next node — they ALWAYS meet at step 1 unless
	// one dies. d(0) = Pr[at least one walk dies at step 1] = 1 - c.
	want := 1 - 0.64
	if math.Abs(idx.d[0]-want) > 0.03 {
		t.Fatalf("2-cycle d = %v, want %v", idx.d[0], want)
	}
}

func TestStaleness(t *testing.T) {
	rng := xrand.New(9)
	g := randomGraph(rng, 20, 80)
	idx, err := Build(g, BuildOptions{DPairs: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Stale() {
		t.Fatal("fresh index reported stale")
	}
	if _, err := idx.SingleSource(0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 5); err != nil {
		t.Fatal(err)
	}
	if !idx.Stale() {
		t.Fatal("mutation not detected")
	}
	if _, err := idx.SingleSource(0); err != ErrStale {
		t.Fatalf("stale query returned %v, want ErrStale", err)
	}
}

func TestTopKMatchesTable2(t *testing.T) {
	g := graph.Toy()
	idx, err := Build(g, BuildOptions{C: 0.25, T: 20, EpsH: 1e-5, DPairs: 20000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	top, err := idx.TopK(graph.ToyA, 2)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].Node != graph.ToyD || top[1].Node != graph.ToyE {
		t.Fatalf("top-2 = %v, want d then e (Table 2)", top)
	}
}

func TestIndexDensityScalesWithThreshold(t *testing.T) {
	rng := xrand.New(11)
	g := randomGraph(rng, 50, 300)
	loose, err := Build(g, BuildOptions{EpsH: 0.05, DPairs: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Build(g, BuildOptions{EpsH: 0.001, DPairs: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Entries() <= loose.Entries() {
		t.Fatalf("tighter εh must store more: %d vs %d", tight.Entries(), loose.Entries())
	}
	if tight.MemoryBytes() <= loose.MemoryBytes() {
		t.Fatal("memory accounting inconsistent with entry counts")
	}
}

func TestValidation(t *testing.T) {
	g := graph.Toy()
	if _, err := Build(g, BuildOptions{C: 3}); err == nil {
		t.Error("bad c accepted")
	}
	if _, err := Build(g, BuildOptions{EpsH: 2}); err == nil {
		t.Error("bad εh accepted")
	}
	idx, err := Build(g, BuildOptions{DPairs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.SingleSource(99); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := idx.TopK(0, 0); err == nil {
		t.Error("k = 0 accepted")
	}
}

func TestEstimateRange(t *testing.T) {
	rng := xrand.New(13)
	g := randomGraph(rng, 30, 150)
	idx, err := Build(g, BuildOptions{DPairs: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	est, err := idx.SingleSource(3)
	if err != nil {
		t.Fatal(err)
	}
	if est[3] != 1 {
		t.Fatal("self similarity != 1")
	}
	for v, s := range est {
		if s < 0 || s > 1 {
			t.Fatalf("estimate out of range at %d: %v", v, s)
		}
	}
}

func randomGraph(rng *xrand.RNG, n, m int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
		if u != v {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}
