// Package sling implements a compact variant of SLING (Tian & Xiao,
// SIGMOD 2016), the state-of-the-art *static* SimRank index the paper
// positions ProbeSim against (§1, §5): accurate and fast at query time,
// but with heavy preprocessing, index space ~an order of magnitude above
// the graph, and no support for updates — rebuilding is the only option.
// This package exists to reproduce that contrast experimentally.
//
// SLING rests on the last-meeting decomposition of SimRank:
//
//	s(u, v) = Σ_t Σ_w h_t(u, w) · h_t(v, w) · d(w)
//
// where h_t(u, w) is the probability that a √c-walk from u survives t
// steps and sits at w (h_0(u, u) = 1), and d(w) is the probability that
// two independent √c-walks from w never meet again at any step >= 1.
// Conditioning two meeting walks on their *last* common position makes the
// decomposition exact: given both walks at w at step t (the h·h factor),
// the Markov property restarts two fresh walks whose "never meet again"
// probability is exactly d(w).
//
// The index stores (a) d(w) for every node, estimated by Monte Carlo as in
// the original system, and (b) the sparsified hitting matrices H_t (entries
// below a threshold εh are dropped), built by t rounds of sparse
// propagation. Queries combine the query node's forward hitting vectors
// with the stored columns. Simplifications versus the original: the
// original's per-entry adaptive thresholds and additive-error
// deterministic d refinement are replaced by a single global εh and pure
// MC d estimation; both only affect constants, not the shape of the
// preprocessing-versus-query trade-off this repository measures.
package sling

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"probesim/internal/core"
	"probesim/internal/graph"
	"probesim/internal/walk"
	"probesim/internal/xrand"
)

// BuildOptions configures index construction.
type BuildOptions struct {
	// C is the SimRank decay factor. Default 0.6.
	C float64
	// T caps the meeting depth; contributions beyond T decay as c^T.
	// Default: smallest T with c^T <= EpsH.
	T int
	// EpsH is the sparsification threshold for stored hitting
	// probabilities. Default 0.005.
	EpsH float64
	// DPairs is the number of walk pairs per node used to estimate d(w).
	// Default 400 (≈0.05 absolute error at 95% per node).
	DPairs int
	// Seed drives the d(w) estimation. Default 1.
	Seed uint64
	// Workers bounds build parallelism. Default runtime.GOMAXPROCS(0).
	Workers int
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.EpsH == 0 {
		o.EpsH = 0.005
	}
	if o.T == 0 {
		o.T = int(math.Ceil(math.Log(o.EpsH) / math.Log(o.C)))
		if o.T < 2 {
			o.T = 2
		}
	}
	if o.DPairs == 0 {
		o.DPairs = 400
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o BuildOptions) validate() error {
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("sling: decay factor c = %v outside (0, 1)", o.C)
	}
	if o.EpsH <= 0 || o.EpsH >= 1 {
		return fmt.Errorf("sling: threshold εh = %v outside (0, 1)", o.EpsH)
	}
	if o.T < 1 || o.DPairs < 1 {
		return fmt.Errorf("sling: T = %d and DPairs = %d must be >= 1", o.T, o.DPairs)
	}
	return nil
}

// hitEntry is one stored hitting probability h_t(v, w) >= εh.
type hitEntry struct {
	v graph.NodeID
	h float64
}

// Index is the built SLING index. It is immutable: SLING does not support
// graph updates (the contrast the paper draws), so the referenced view
// must not change while the index is in use; over a graph.VersionedView
// (a mutable *graph.Graph or a published snapshot), Stale reports
// violations.
type Index struct {
	g       graph.View
	opt     BuildOptions
	sqrtC   float64
	d       []float64
	columns []colsAtT
	version uint64
	entries int64
}

// colsAtT stores the sparsified H_t in CSR form: the column of w (the
// nodes v with h_t(v, w) >= εh) is entry[off[w]:off[w+1]].
type colsAtT struct {
	off   []int32
	entry []hitEntry
}

// Build constructs the index over any graph view — the mutable graph or
// a published immutable snapshot, so index builds can run against the
// same pinned generation the serving plane queries. Cost: Θ(n·DPairs)
// walk pairs for d, plus T rounds of sparse matrix propagation for the
// hitting lists — this is the "significant preprocessing" the paper
// attributes to SLING.
func Build(g graph.View, opt BuildOptions) (*Index, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	idx := &Index{
		g:     g,
		opt:   opt,
		sqrtC: math.Sqrt(opt.C),
		d:     make([]float64, n),
	}
	if vv, ok := g.(graph.VersionedView); ok {
		idx.version = vv.Version()
	}
	idx.estimateD()
	idx.buildHittingLists()
	return idx, nil
}

// estimateD estimates d(w) = Pr[two √c-walks from w never meet at step>=1]
// for every node by DPairs Monte Carlo pairs.
func (idx *Index) estimateD() {
	n := idx.g.NumNodes()
	root := xrand.New(idx.opt.Seed)
	workers := idx.opt.Workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		rng := root.Split(uint64(w))
		wg.Add(1)
		go func(lo, hi int, rng *xrand.RNG) {
			defer wg.Done()
			gen := walk.NewGenerator(idx.g, idx.opt.C, rng)
			var a, bw []graph.NodeID
			for v := lo; v < hi; v++ {
				if idx.g.InDegree(graph.NodeID(v)) == 0 {
					// Walks die immediately: they can never meet again.
					idx.d[v] = 1
					continue
				}
				never := 0
				for p := 0; p < idx.opt.DPairs; p++ {
					a = gen.Generate(graph.NodeID(v), 0, a)
					bw = gen.Generate(graph.NodeID(v), 0, bw)
					// Meeting at step >= 1 means positions 2+ coincide
					// (position 1 is the shared start).
					if len(a) < 2 || len(bw) < 2 || walk.MeetStep(a[1:], bw[1:]) == 0 {
						never++
					}
				}
				idx.d[v] = float64(never) / float64(idx.opt.DPairs)
			}
		}(lo, hi, rng)
	}
	wg.Wait()
}

// buildHittingLists materializes H_t for t = 0..T with the recurrence
// h_{t+1}(v, w) = √c/|I(v)| · Σ_{x ∈ I(v)} h_t(x, w), dropping entries
// below εh after each round. H_0 is the identity.
func (idx *Index) buildHittingLists() {
	n := idx.g.NumNodes()
	idx.columns = make([]colsAtT, idx.opt.T+1)

	// H_0 = I.
	h0 := colsAtT{off: make([]int32, n+1), entry: make([]hitEntry, n)}
	for v := 0; v < n; v++ {
		h0.off[v] = int32(v)
		h0.entry[v] = hitEntry{v: graph.NodeID(v), h: 1}
	}
	h0.off[n] = int32(n)
	idx.columns[0] = h0
	idx.entries = int64(n)

	// Iterate: the column of w in H_{t+1} gathers, for every v, mass from
	// v's in-neighbors' H_t column entries. We propagate column-wise: for
	// each w, push each stored (x, h) to the out-neighbors v of x with
	// weight √c/|I(v)|.
	for t := 1; t <= idx.opt.T; t++ {
		prev := idx.columns[t-1]
		next := colsAtT{off: make([]int32, n+1)}
		var entries []hitEntry
		acc := make(map[graph.NodeID]float64)
		for w := 0; w < n; w++ {
			clear(acc)
			for _, e := range prev.column(w) {
				push := idx.sqrtC * e.h
				for _, v := range idx.g.OutNeighbors(e.v) {
					acc[v] += push / float64(idx.g.InDegree(v))
				}
			}
			next.off[w] = int32(len(entries))
			for v, h := range acc {
				if h >= idx.opt.EpsH {
					entries = append(entries, hitEntry{v: v, h: h})
				}
			}
		}
		next.off[n] = int32(len(entries))
		next.entry = entries
		idx.columns[t] = next
		idx.entries += int64(len(entries))
	}
}

func (c *colsAtT) column(w int) []hitEntry {
	return c.entry[c.off[w]:c.off[w+1]]
}

// MemoryBytes reports the index size: d plus every stored hitting entry.
func (idx *Index) MemoryBytes() int64 {
	const entrySize = 16 // NodeID + float64 with padding
	b := int64(len(idx.d)) * 8
	for _, c := range idx.columns {
		b += int64(len(c.off))*4 + int64(len(c.entry))*entrySize
	}
	return b
}

// Entries returns the number of stored hitting entries (index density).
func (idx *Index) Entries() int64 { return idx.entries }

// Stale reports whether the graph has been mutated since the index was
// built. SLING has no update path: a stale index must be rebuilt, which
// is precisely the deficiency (§1) that motivates index-free ProbeSim.
// Over an unversioned view (an immutable snapshot wrapper with no
// version) staleness is undetectable here and Stale always reports
// false; such views are immutable by contract, which is what makes that
// safe.
func (idx *Index) Stale() bool {
	vv, ok := idx.g.(graph.VersionedView)
	return ok && vv.Version() != idx.version
}

// ErrStale is returned by queries on an index whose graph has changed.
var ErrStale = fmt.Errorf("sling: graph modified since build; rebuild required")

// SingleSource returns s̃(u, v) for every v from the index: it computes
// the query node's forward hitting vectors x_t = h_t(u, ·) (sparse,
// thresholded at εh) and combines them with the stored columns:
// acc[v] += x_t(w) · d(w) · h_t(v, w).
func (idx *Index) SingleSource(u graph.NodeID) ([]float64, error) {
	n := idx.g.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("sling: query node %d out of range [0, %d)", u, n)
	}
	if idx.Stale() {
		return nil, ErrStale
	}
	acc := make([]float64, n)
	x := map[graph.NodeID]float64{u: 1}
	nextX := make(map[graph.NodeID]float64)
	for t := 0; t <= idx.opt.T; t++ {
		cols := &idx.columns[t]
		for w, xw := range x {
			scale := xw * idx.d[w]
			for _, e := range cols.column(int(w)) {
				acc[e.v] += scale * e.h
			}
		}
		if t == idx.opt.T {
			break
		}
		// Advance x: propagate along in-edges with factor √c/|I|.
		clear(nextX)
		for a, xa := range x {
			in := idx.g.InNeighbors(a)
			if len(in) == 0 {
				continue
			}
			push := idx.sqrtC * xa / float64(len(in))
			for _, w := range in {
				nextX[w] += push
			}
		}
		x, nextX = nextX, x
		// Threshold to keep queries fast; dropped mass is bounded by εh
		// per node per level, matching the build-side truncation.
		for w, xw := range x {
			if xw < idx.opt.EpsH {
				delete(x, w)
			}
		}
		if len(x) == 0 {
			break
		}
	}
	acc[u] = 1
	for v := range acc {
		if acc[v] > 1 {
			acc[v] = 1
		}
	}
	return acc, nil
}

// TopK returns the k nodes most similar to u under the index's estimate.
func (idx *Index) TopK(u graph.NodeID, k int) ([]core.ScoredNode, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sling: top-k requires k >= 1, got %d", k)
	}
	est, err := idx.SingleSource(u)
	if err != nil {
		return nil, err
	}
	return core.SelectTopK(est, u, k), nil
}
