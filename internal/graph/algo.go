package graph

import (
	"context"
	"fmt"

	"probesim/internal/budget"
)

// This file provides the structural algorithms the dataset reports and
// examples use: strongly and weakly connected components, BFS distances,
// induced subgraphs, and degree histograms. They are utilities over the
// adjacency representation, not part of any SimRank algorithm's hot path.

// StronglyConnectedComponents returns, for every node, the id of its
// strongly connected component, plus the component count. It delegates to
// the View-generic implementation; see StronglyConnected.
func (g *Graph) StronglyConnectedComponents() (comp []int32, count int) {
	return StronglyConnected(g)
}

// StronglyConnected returns, for every node of any View (mutable graph or
// published snapshot), the id of its strongly connected component, plus
// the component count. Ids are dense in [0, count) and assigned in
// reverse topological order of the condensation (a property of Tarjan's
// algorithm: a component is numbered only after every component it
// reaches). The implementation is iterative, so deep recursion on
// path-like graphs cannot overflow the stack. Running it on a snapshot
// lets analysis endpoints report structure without ever touching the
// mutable graph or its write lock.
func StronglyConnected(v View) (comp []int32, count int) {
	comp, count, _ = StronglyConnectedCtx(context.Background(), v)
	return comp, count
}

// componentPollInterval is how many DFS expansions (SCC) or source-node
// scans (WCC) pass between deadline/cancellation polls: small
// enough that a scan over a web-scale snapshot honors a deadline within
// microseconds of work, large enough that the meter checkpoint disappears
// into the traversal cost.
const componentPollInterval = 4096

// StronglyConnectedCtx is StronglyConnected under a deadline: the
// traversal checkpoints ctx through the same budget seam the query
// kernels use (one amortized poll every componentPollInterval edge
// expansions), so a component scan on a huge snapshot stops mid-scan when
// the request's deadline passes instead of only observing cancellation
// between requests. A stopped scan returns nil — partial component ids
// are meaningless — together with the cause.
func StronglyConnectedCtx(ctx context.Context, v View) (comp []int32, count int, err error) {
	return StronglyConnectedMeter(budget.New(ctx, 0, 0, 0), v)
}

// StronglyConnectedMeter is StronglyConnectedCtx with a caller-armed
// meter, for callers that share one trip point between the traversal and
// something else — the routed serving path arms a meter, binds the view
// to it, and a shard-worker failure mid-scan then stops the traversal at
// its next checkpoint exactly like a deadline would.
func StronglyConnectedMeter(m *budget.Meter, v View) (comp []int32, count int, err error) {
	cp := budget.NewCheckpoint(m, componentPollInterval)
	adj := ResolveAdj(v)
	n := adj.NumNodes()
	const unvisited = -1
	comp = make([]int32, n)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for v := range index {
		index[v] = unvisited
		comp[v] = unvisited
	}
	var (
		next  int32 // next DFS index
		stack []int32
		// frame is an explicit DFS frame: node and position within its
		// out-neighbor list.
		frames []frame
	)
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{node: int32(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(frames) > 0 {
			if cp.Stop() {
				return nil, 0, fmt.Errorf("graph: component scan stopped: %w", m.Err())
			}
			f := &frames[len(frames)-1]
			out := adj.Out(f.node)
			if f.edge < len(out) {
				w := out[f.edge]
				f.edge++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			// Frame finished: close a component if f.node is a root.
			v := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := &frames[len(frames)-1]; low[v] < low[p.node] {
					low[p.node] = low[v]
				}
			}
			if low[v] == index[v] {
				id := int32(count)
				count++
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = id
					if w == v {
						break
					}
				}
			}
		}
	}
	return comp, count, nil
}

type frame struct {
	node int32
	edge int
}

// WeaklyConnectedComponents returns, for every node, the id of its weakly
// connected component. It delegates to the View-generic implementation;
// see WeaklyConnected.
func (g *Graph) WeaklyConnectedComponents() (comp []int32, count int) {
	return WeaklyConnected(g)
}

// WeaklyConnected returns, for every node of any View, the id of its
// weakly connected component (edge direction ignored), plus the component
// count. Ids are dense in [0, count), ordered by smallest member node.
func WeaklyConnected(v View) (comp []int32, count int) {
	comp, count, _ = WeaklyConnectedCtx(context.Background(), v)
	return comp, count
}

// WeaklyConnectedCtx is WeaklyConnected under a deadline, with the same
// mid-scan cancellation contract as StronglyConnectedCtx.
func WeaklyConnectedCtx(ctx context.Context, v View) (comp []int32, count int, err error) {
	return WeaklyConnectedMeter(budget.New(ctx, 0, 0, 0), v)
}

// WeaklyConnectedMeter is WeaklyConnectedCtx with a caller-armed meter;
// see StronglyConnectedMeter.
func WeaklyConnectedMeter(m *budget.Meter, v View) (comp []int32, count int, err error) {
	cp := budget.NewCheckpoint(m, componentPollInterval)
	adj := ResolveAdj(v)
	n := adj.NumNodes()
	parent := make([]int32, n)
	for v := range parent {
		parent[v] = int32(v)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra // attach to smaller id for stable numbering
		}
	}
	for u := 0; u < n; u++ {
		if cp.Stop() {
			return nil, 0, fmt.Errorf("graph: component scan stopped: %w", m.Err())
		}
		for _, w := range adj.Out(NodeID(u)) {
			union(int32(u), w)
		}
	}
	comp = make([]int32, n)
	ids := make(map[int32]int32)
	for v := 0; v < n; v++ {
		root := find(int32(v))
		id, ok := ids[root]
		if !ok {
			id = int32(len(ids))
			ids[root] = id
		}
		comp[v] = id
	}
	return comp, len(ids), nil
}

// BFS returns hop distances from u, following out-edges (reverse = false)
// or in-edges (reverse = true). Unreachable nodes get -1.
func (g *Graph) BFS(u NodeID, reverse bool) []int32 {
	n := g.NumNodes()
	dist := make([]int32, n)
	for v := range dist {
		dist[v] = -1
	}
	if u < 0 || int(u) >= n {
		return dist
	}
	adj := g.out
	if reverse {
		adj = g.in
	}
	dist[u] = 0
	queue := []NodeID{u}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// InducedSubgraph returns the subgraph on the given nodes (edges with both
// endpoints in the set), with nodes renumbered densely in input order, plus
// the mapping from new id to original id. Duplicate input nodes are an
// error via the mapping check below.
func (g *Graph) InducedSubgraph(nodes []NodeID) (*Graph, []NodeID, error) {
	remap := make(map[NodeID]NodeID, len(nodes))
	orig := make([]NodeID, len(nodes))
	for i, v := range nodes {
		if err := g.checkNode(v); err != nil {
			return nil, nil, err
		}
		if _, dup := remap[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate node %d in induced subgraph", v)
		}
		remap[v] = NodeID(i)
		orig[i] = v
	}
	sub := New(len(nodes))
	for i, v := range orig {
		for _, w := range g.out[v] {
			if j, ok := remap[w]; ok {
				if err := sub.AddEdge(NodeID(i), j); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return sub, orig, nil
}

// DegreeHistogram returns counts[d] = number of nodes with the given
// degree, for in-degrees (in = true) or out-degrees. The slice length is
// max degree + 1.
func (g *Graph) DegreeHistogram(in bool) []int64 {
	adj := g.out
	if in {
		adj = g.in
	}
	maxDeg := 0
	for _, l := range adj {
		if len(l) > maxDeg {
			maxDeg = len(l)
		}
	}
	counts := make([]int64, maxDeg+1)
	for _, l := range adj {
		counts[len(l)]++
	}
	return counts
}
