package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"probesim/internal/xrand"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.NumNodes() != 5 || g.NumEdges() != 0 {
		t.Fatalf("New(5): %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	for v := NodeID(0); v < 5; v++ {
		if g.InDegree(v) != 0 || g.OutDegree(v) != 0 {
			t.Fatalf("node %d not isolated", v)
		}
	}
}

func TestAddEdge(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
	if g.InDegree(1) != 1 || g.OutDegree(1) != 1 {
		t.Fatal("degrees wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestAddEdgeRejectsOutOfRange(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 2); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Fatal("negative source accepted")
	}
}

func TestParallelEdges(t *testing.T) {
	g := New(2)
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if g.NumEdges() != 3 || g.InDegree(1) != 3 {
		t.Fatal("parallel edges not kept")
	}
	if err := g.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.InDegree(1) != 2 {
		t.Fatal("RemoveEdge removed more than one occurrence")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveMissingEdge(t *testing.T) {
	g := New(2)
	if err := g.RemoveEdge(0, 1); err == nil {
		t.Fatal("removing a missing edge succeeded")
	}
}

func TestAddNode(t *testing.T) {
	g := New(1)
	id := g.AddNode()
	if id != 1 || g.NumNodes() != 2 {
		t.Fatalf("AddNode id=%d nodes=%d", id, g.NumNodes())
	}
	if err := g.AddEdge(0, id); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 2)
	c := g.Clone()
	mustAdd(t, c, 2, 0)
	if g.NumEdges() != 2 || c.NumEdges() != 3 {
		t.Fatal("clone shares state with original")
	}
	if err := g.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("removing from original affected clone")
	}
}

func TestTranspose(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 0, 2)
	tr := g.Transpose()
	if !tr.HasEdge(1, 0) || !tr.HasEdge(2, 0) || tr.HasEdge(0, 1) {
		t.Fatal("transpose wrong")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Double transpose is the identity.
	trtr := tr.Transpose()
	if !trtr.HasEdge(0, 1) || !trtr.HasEdge(0, 2) || trtr.NumEdges() != 2 {
		t.Fatal("double transpose differs")
	}
}

func TestUndirected(t *testing.T) {
	g := New(2)
	if err := g.AddEdgeUndirected(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.NumEdges() != 2 {
		t.Fatal("undirected edge incomplete")
	}
}

func TestStats(t *testing.T) {
	g := New(4)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 0, 2)
	mustAdd(t, g, 1, 2)
	s := g.ComputeStats()
	if s.Nodes != 4 || s.Edges != 3 {
		t.Fatalf("stats %+v", s)
	}
	if s.MaxOutDegree != 2 || s.MaxInDegree != 2 {
		t.Fatalf("stats degrees %+v", s)
	}
	if s.ZeroInDeg != 2 { // nodes 0 and 3
		t.Fatalf("ZeroInDeg = %d, want 2", s.ZeroInDeg)
	}
	if s.ZeroOutDeg != 2 { // nodes 2 and 3
		t.Fatalf("ZeroOutDeg = %d, want 2", s.ZeroOutDeg)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	in := "# comment\n0 1\n1 2\n\n% also comment\n2 0\n5 5\n"
	g, err := LoadEdgeList(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	// "5 5" is a self-loop and skipped entirely, so node 5 is never interned.
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("loaded %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed the graph")
	}
}

func TestEdgeListSparseIDs(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("1000000 42\n42 7\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("sparse ids: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestEdgeListUndirectedLoad(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("0 1\n1 2\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("undirected load edges = %d, want 4", g.NumEdges())
	}
}

func TestEdgeListMalformed(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 b\n"} {
		if _, err := LoadEdgeList(strings.NewReader(in), false); err == nil {
			t.Errorf("malformed input %q accepted", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	g := New(200)
	for i := 0; i < 1000; i++ {
		u, v := rng.Int31n(200), rng.Int31n(200)
		if u != v {
			mustAdd(t, g, u, v)
		}
	}
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("binary round trip changed counts")
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if g.OutDegree(v) != g2.OutDegree(v) || g.InDegree(v) != g2.InDegree(v) {
			t.Fatalf("node %d degrees differ", v)
		}
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph at all......"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestToyGraphShape(t *testing.T) {
	g := Toy()
	if g.NumNodes() != 8 {
		t.Fatalf("toy nodes = %d", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Constraints derived from the paper's running example (§3.2).
	checks := []struct {
		v    NodeID
		deg  int
		name string
	}{
		{ToyA, 2, "I(a)"}, {ToyB, 2, "I(b)"}, {ToyC, 3, "I(c)"},
		{ToyD, 1, "I(d)"}, {ToyE, 2, "I(e)"}, {ToyF, 4, "I(f)"},
		{ToyG, 3, "I(g)"}, {ToyH, 3, "I(h)"},
	}
	for _, c := range checks {
		if got := g.InDegree(c.v); got != c.deg {
			t.Errorf("%s = %d, want %d", c.name, got, c.deg)
		}
	}
	if got := len(g.OutNeighbors(ToyA)); got != 2 {
		t.Errorf("out(a) = %d, want 2 (b and c only)", got)
	}
	if g.HasEdge(ToyC, ToyB) {
		t.Error("c -> b must not exist (probe of (a,b,a) finds no b)")
	}
}

// Property: a random script of inserts and deletes keeps Validate happy and
// edge counts consistent.
func TestRandomEditScript(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := New(30)
		type edge struct{ u, v NodeID }
		var live []edge
		for step := 0; step < 300; step++ {
			if len(live) == 0 || rng.Float64() < 0.6 {
				u, v := rng.Int31n(30), rng.Int31n(30)
				if u == v {
					continue
				}
				if err := g.AddEdge(u, v); err != nil {
					return false
				}
				live = append(live, edge{u, v})
			} else {
				i := rng.Intn(len(live))
				e := live[i]
				if err := g.RemoveEdge(e.u, e.v); err != nil {
					return false
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		return g.NumEdges() == int64(len(live)) && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryBytesGrows(t *testing.T) {
	g := New(100)
	before := g.MemoryBytes()
	for i := NodeID(0); i < 99; i++ {
		mustAdd(t, g, i, i+1)
	}
	if after := g.MemoryBytes(); after <= before {
		t.Fatalf("MemoryBytes did not grow: %d -> %d", before, after)
	}
}

func mustAdd(t *testing.T, g *Graph, u, v NodeID) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
}
