package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadEdgeList feeds arbitrary bytes to the edge-list parser: it must
// never panic, and any graph it does accept must satisfy the structural
// invariants and round-trip through the binary format.
func FuzzLoadEdgeList(f *testing.F) {
	f.Add("1 2\n2 3\n")
	f.Add("# comment\n% other comment\n\n10 20\n")
	f.Add("a b\n")
	f.Add("-5 7\n7 -5\n")
	f.Add("1 1\n")
	f.Add("999999999 0\n")
	f.Add("1\t2\r\n3  4\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := LoadEdgeList(strings.NewReader(input), false)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph is invalid: %v\ninput: %q", err, input)
		}
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("ReadBinary of own output: %v", err)
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round-trip changed size: (%d, %d) vs (%d, %d)",
				g.NumNodes(), g.NumEdges(), back.NumNodes(), back.NumEdges())
		}
	})
}

// FuzzReadBinary feeds arbitrary bytes to the binary parser: it must
// reject or accept without panicking, and never allocate absurdly (the
// parser validates counts before trusting them).
func FuzzReadBinary(f *testing.F) {
	g := New(5)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	var buf bytes.Buffer
	_ = g.WriteBinary(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, input []byte) {
		back, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("accepted graph is invalid: %v", err)
		}
	})
}
