package graph

import (
	"testing"

	"probesim/internal/xrand"
)

// randomGraph builds a random multigraph-free directed graph with n nodes
// and up to m edges (duplicates skipped, self-loops skipped).
func randomGraph(t *testing.T, n int, m int, rng *xrand.RNG) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i < m; i++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// assertSnapshotMatches checks that a snapshot reproduces the graph's
// adjacency structure exactly: node/edge counts, per-node degrees, and
// neighbor lists in identical order (order matters — walk sampling and
// randomized probes consume randomness per neighbor index, and the
// bit-identical query guarantee depends on it).
func assertSnapshotMatches(t *testing.T, g *Graph, s *Snapshot) {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() != g.NumNodes() || s.NumEdges() != g.NumEdges() {
		t.Fatalf("snapshot is %d nodes/%d edges, graph is %d/%d",
			s.NumNodes(), s.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	if s.Version() != g.Version() {
		t.Fatalf("snapshot version %d, graph version %d", s.Version(), g.Version())
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if s.InDegree(v) != g.InDegree(v) || s.OutDegree(v) != g.OutDegree(v) {
			t.Fatalf("node %d: snapshot degrees (%d,%d) != graph degrees (%d,%d)",
				v, s.InDegree(v), s.OutDegree(v), g.InDegree(v), g.OutDegree(v))
		}
		for dir, lists := range map[string][2][]NodeID{
			"in":  {s.InNeighbors(v), g.InNeighbors(v)},
			"out": {s.OutNeighbors(v), g.OutNeighbors(v)},
		} {
			sl, gl := lists[0], lists[1]
			if len(sl) != len(gl) {
				t.Fatalf("node %d %s-list length %d != %d", v, dir, len(sl), len(gl))
			}
			for i := range sl {
				if sl[i] != gl[i] {
					t.Fatalf("node %d %s-list[%d] = %d, graph has %d", v, dir, i, sl[i], gl[i])
				}
			}
		}
	}
	// The stats scan exercises the offset arrays end to end.
	if gs, ss := g.ComputeStats(), s.ComputeStats(); gs != ss {
		t.Fatalf("snapshot stats %+v != graph stats %+v", ss, gs)
	}
}

// TestSnapshotMatchesGraphRandom is the structural half of the
// equivalence property: across random graphs of varied shape, a snapshot
// is indistinguishable from its source through the View interface.
func TestSnapshotMatchesGraphRandom(t *testing.T) {
	rng := xrand.New(42)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		m := rng.Intn(4 * n)
		g := randomGraph(t, n, m, rng)
		assertSnapshotMatches(t, g, g.Snapshot())
	}
}

// TestSnapshotAfterChurn re-snapshots after interleaved insert/remove
// cycles: every published snapshot must match the graph state at its
// version, and older snapshots must be unaffected by later mutations.
func TestSnapshotAfterChurn(t *testing.T) {
	rng := xrand.New(7)
	g := randomGraph(t, 40, 120, rng)
	prev := g.Snapshot()
	prevEdges := prev.NumEdges()
	for round := 0; round < 20; round++ {
		// Random churn: half inserts, half removals of existing edges.
		for i := 0; i < 15; i++ {
			if rng.Float64() < 0.5 {
				u, v := NodeID(rng.Intn(40)), NodeID(rng.Intn(40))
				if u != v {
					if err := g.AddEdge(u, v); err != nil {
						t.Fatal(err)
					}
				}
			} else {
				// Remove a uniformly random existing edge, if any.
				if g.NumEdges() == 0 {
					continue
				}
				u := NodeID(rng.Intn(40))
				for g.OutDegree(u) == 0 {
					u = (u + 1) % 40
				}
				v := g.OutNeighbors(u)[rng.Intn(g.OutDegree(u))]
				if err := g.RemoveEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		s := g.Snapshot()
		assertSnapshotMatches(t, g, s)
		// Immutability: the pre-churn snapshot still reports its own state.
		if prev.NumEdges() != prevEdges {
			t.Fatalf("old snapshot edge count moved: %d -> %d", prevEdges, prev.NumEdges())
		}
		prev, prevEdges = s, s.NumEdges()
	}
}

func TestSnapshotEmptyAndIsolated(t *testing.T) {
	for _, n := range []int{0, 1, 5} {
		g := New(n)
		s := g.Snapshot()
		assertSnapshotMatches(t, g, s)
		if s.MemoryBytes() <= 0 && n > 0 {
			t.Fatalf("MemoryBytes = %d for n = %d", s.MemoryBytes(), n)
		}
	}
}

// TestAdjResolution checks the devirtualized accessor against both
// concrete representations and the interface fallback.
func TestAdjResolution(t *testing.T) {
	rng := xrand.New(99)
	g := randomGraph(t, 30, 90, rng)
	s := g.Snapshot()
	views := map[string]View{"graph": g, "snapshot": s, "foreign": foreignView{s}}
	for name, v := range views {
		adj := ResolveAdj(v)
		if adj.NumNodes() != g.NumNodes() {
			t.Fatalf("%s: NumNodes = %d, want %d", name, adj.NumNodes(), g.NumNodes())
		}
		for u := NodeID(0); int(u) < g.NumNodes(); u++ {
			if adj.InDegree(u) != g.InDegree(u) || adj.OutDegree(u) != g.OutDegree(u) {
				t.Fatalf("%s: node %d degree mismatch", name, u)
			}
			in, out := adj.In(u), adj.Out(u)
			for i, w := range g.InNeighbors(u) {
				if in[i] != w {
					t.Fatalf("%s: node %d in[%d] = %d, want %d", name, u, i, in[i], w)
				}
			}
			for i, w := range g.OutNeighbors(u) {
				if out[i] != w {
					t.Fatalf("%s: node %d out[%d] = %d, want %d", name, u, i, out[i], w)
				}
			}
		}
	}
}

// foreignView hides the concrete type so ResolveAdj takes its interface
// fallback path.
type foreignView struct{ s *Snapshot }

func (f foreignView) NumNodes() int                  { return f.s.NumNodes() }
func (f foreignView) NumEdges() int64                { return f.s.NumEdges() }
func (f foreignView) InNeighbors(v NodeID) []NodeID  { return f.s.InNeighbors(v) }
func (f foreignView) OutNeighbors(u NodeID) []NodeID { return f.s.OutNeighbors(u) }
func (f foreignView) InDegree(v NodeID) int          { return f.s.InDegree(v) }
func (f foreignView) OutDegree(u NodeID) int         { return f.s.OutDegree(u) }
