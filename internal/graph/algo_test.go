package graph

import (
	"testing"
	"testing/quick"

	"probesim/internal/xrand"
)

// mustEdge is a test helper that fails on AddEdge errors.
func mustEdge(t *testing.T, g *Graph, u, v NodeID) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d, %d): %v", u, v, err)
	}
}

func TestSCCCycleIsOneComponent(t *testing.T) {
	g := New(6)
	for v := 0; v < 6; v++ {
		mustEdge(t, g, NodeID(v), NodeID((v+1)%6))
	}
	comp, count := g.StronglyConnectedComponents()
	if count != 1 {
		t.Fatalf("cycle has %d SCCs, want 1", count)
	}
	for v, c := range comp {
		if c != comp[0] {
			t.Fatalf("node %d in component %d, node 0 in %d", v, c, comp[0])
		}
	}
}

func TestSCCPathIsSingletons(t *testing.T) {
	g := New(5)
	for v := 0; v < 4; v++ {
		mustEdge(t, g, NodeID(v), NodeID(v+1))
	}
	_, count := g.StronglyConnectedComponents()
	if count != 5 {
		t.Fatalf("path has %d SCCs, want 5", count)
	}
}

func TestSCCTwoCyclesWithBridge(t *testing.T) {
	// Cycle {0,1,2} -> bridge -> cycle {3,4,5}: two components, and the
	// downstream cycle must get the smaller id (reverse topological
	// numbering).
	g := New(6)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 0)
	mustEdge(t, g, 3, 4)
	mustEdge(t, g, 4, 5)
	mustEdge(t, g, 5, 3)
	mustEdge(t, g, 0, 3)
	comp, count := g.StronglyConnectedComponents()
	if count != 2 {
		t.Fatalf("got %d SCCs, want 2", count)
	}
	if comp[0] == comp[3] {
		t.Fatal("the two cycles merged into one SCC")
	}
	if comp[3] > comp[0] {
		t.Fatalf("downstream SCC id %d > upstream id %d; want reverse topological order", comp[3], comp[0])
	}
}

func TestSCCDeepPathNoOverflow(t *testing.T) {
	// 200k-node path: a recursive Tarjan would blow the stack here.
	n := 200000
	g := New(n)
	for v := 0; v < n-1; v++ {
		if err := g.AddEdge(NodeID(v), NodeID(v+1)); err != nil {
			t.Fatal(err)
		}
	}
	_, count := g.StronglyConnectedComponents()
	if count != n {
		t.Fatalf("got %d SCCs, want %d", count, n)
	}
}

func TestSCCCondensationIsDAG(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 10 + rng.Intn(30)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u != v {
				if err := g.AddEdge(u, v); err != nil {
					return false
				}
			}
		}
		comp, _ := g.StronglyConnectedComponents()
		// Every edge must go from a component with a >= id to one with a
		// <= id... precisely: Tarjan numbers components in reverse
		// topological order, so for an edge u -> v, comp[u] >= comp[v].
		for u := 0; u < n; u++ {
			for _, v := range g.OutNeighbors(NodeID(u)) {
				if comp[u] < comp[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWCCIgnoresDirection(t *testing.T) {
	g := New(7)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 2, 1) // 0,1,2 weakly connected
	mustEdge(t, g, 3, 4) // 3,4
	// 5, 6 isolated
	comp, count := g.WeaklyConnectedComponents()
	if count != 4 {
		t.Fatalf("got %d WCCs, want 4", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("0,1,2 should share a WCC")
	}
	if comp[3] != comp[4] {
		t.Fatal("3,4 should share a WCC")
	}
	if comp[5] == comp[6] || comp[5] == comp[0] {
		t.Fatal("isolated nodes must get their own WCCs")
	}
}

func TestWCCRefinesSCC(t *testing.T) {
	// Nodes in one SCC are always in one WCC.
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 8 + rng.Intn(25)
		g := New(n)
		for i := 0; i < 2*n; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u != v {
				if err := g.AddEdge(u, v); err != nil {
					return false
				}
			}
		}
		scc, _ := g.StronglyConnectedComponents()
		wcc, _ := g.WeaklyConnectedComponents()
		repr := make(map[int32]int32)
		for v := 0; v < n; v++ {
			if w, ok := repr[scc[v]]; ok {
				if w != wcc[v] {
					return false
				}
			} else {
				repr[scc[v]] = wcc[v]
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSDistances(t *testing.T) {
	// Path 0 -> 1 -> 2 -> 3 plus a shortcut 0 -> 2.
	g := New(5)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 0, 2)
	dist := g.BFS(0, false)
	want := []int32{0, 1, 1, 2, -1}
	for v, d := range want {
		if dist[v] != d {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], d)
		}
	}
	rev := g.BFS(3, true)
	wantRev := []int32{2, 2, 1, 0, -1}
	for v, d := range wantRev {
		if rev[v] != d {
			t.Fatalf("reverse dist[%d] = %d, want %d", v, rev[v], d)
		}
	}
	// Out-of-range source: all unreachable.
	for _, d := range g.BFS(99, false) {
		if d != -1 {
			t.Fatal("out-of-range BFS source should reach nothing")
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(6)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 0)
	mustEdge(t, g, 2, 5)
	mustEdge(t, g, 5, 0)
	sub, orig, err := g.InducedSubgraph([]NodeID{0, 2, 5})
	if err != nil {
		t.Fatalf("InducedSubgraph: %v", err)
	}
	if sub.NumNodes() != 3 {
		t.Fatalf("subgraph has %d nodes, want 3", sub.NumNodes())
	}
	// Kept edges: 2->0, 2->5, 5->0; dropped: 0->1, 1->2.
	if sub.NumEdges() != 3 {
		t.Fatalf("subgraph has %d edges, want 3", sub.NumEdges())
	}
	if orig[0] != 0 || orig[1] != 2 || orig[2] != 5 {
		t.Fatalf("mapping = %v, want [0 2 5]", orig)
	}
	if !sub.HasEdge(1, 0) || !sub.HasEdge(1, 2) || !sub.HasEdge(2, 0) {
		t.Fatal("expected renumbered edges missing")
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("subgraph invalid: %v", err)
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := New(3)
	if _, _, err := g.InducedSubgraph([]NodeID{0, 9}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, _, err := g.InducedSubgraph([]NodeID{1, 1}); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 3)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 0)
	in := g.DegreeHistogram(true)
	// In-degrees: node 3 has 3, node 0 has 1, nodes 1-2 have 0.
	if in[0] != 2 || in[1] != 1 || in[3] != 1 {
		t.Fatalf("in-degree histogram = %v", in)
	}
	out := g.DegreeHistogram(false)
	// Out-degrees: all four nodes have exactly 1.
	if out[1] != 4 {
		t.Fatalf("out-degree histogram = %v", out)
	}
	var totalIn, totalOut int64
	for d, c := range in {
		totalIn += int64(d) * c
	}
	for d, c := range out {
		totalOut += int64(d) * c
	}
	if totalIn != g.NumEdges() || totalOut != g.NumEdges() {
		t.Fatalf("histogram mass in=%d out=%d, want %d", totalIn, totalOut, g.NumEdges())
	}
}
