package graph

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// Fault injection for the I/O paths: truncated and corrupted inputs must
// produce errors rather than silently wrong graphs, and writer failures at
// any byte offset must surface.

// failAfterWriter fails with errInjected once limit bytes have been
// written.
type failAfterWriter struct {
	limit int
	n     int
}

var errInjected = errors.New("injected write failure")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		can := w.limit - w.n
		if can < 0 {
			can = 0
		}
		w.n += can
		return can, errInjected
	}
	w.n += len(p)
	return len(p), nil
}

// failAfterReader yields the head of data and then a read error.
type failAfterReader struct {
	data []byte
	pos  int
}

func (r *failAfterReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, errInjected
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

func testGraphForIO(t *testing.T) *Graph {
	t.Helper()
	g := New(50)
	for u := 0; u < 50; u++ {
		for d := 1; d <= 3; d++ {
			if err := g.AddEdge(NodeID(u), NodeID((u+d)%50)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

func TestWriteBinaryFailsAtEveryOffset(t *testing.T) {
	g := testGraphForIO(t)
	var full bytes.Buffer
	if err := g.WriteBinary(&full); err != nil {
		t.Fatal(err)
	}
	total := full.Len()
	// Step through offsets coarsely (every write boundary region) plus the
	// exact ends.
	for limit := 0; limit < total; limit += 97 {
		if err := g.WriteBinary(&failAfterWriter{limit: limit}); err == nil {
			t.Fatalf("WriteBinary succeeded with writer failing at byte %d of %d", limit, total)
		}
	}
	if err := g.WriteBinary(&failAfterWriter{limit: total}); err != nil {
		t.Fatalf("WriteBinary failed with exactly enough space: %v", err)
	}
}

func TestWriteEdgeListFails(t *testing.T) {
	g := testGraphForIO(t)
	if err := g.WriteEdgeList(&failAfterWriter{limit: 10}); err == nil {
		t.Fatal("WriteEdgeList succeeded on failing writer")
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	g := testGraphForIO(t)
	var full bytes.Buffer
	if err := g.WriteBinary(&full); err != nil {
		t.Fatal(err)
	}
	data := full.Bytes()
	// Every strict prefix must fail to parse.
	for cut := 0; cut < len(data); cut += 61 {
		if _, err := ReadBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("ReadBinary accepted a %d/%d-byte prefix", cut, len(data))
		}
	}
	if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
		t.Fatalf("ReadBinary rejected intact data: %v", err)
	}
}

func TestReadBinaryPropagatesReadErrors(t *testing.T) {
	g := testGraphForIO(t)
	var full bytes.Buffer
	if err := g.WriteBinary(&full); err != nil {
		t.Fatal(err)
	}
	half := full.Bytes()[:full.Len()/2]
	_, err := ReadBinary(&failAfterReader{data: half})
	if err == nil {
		t.Fatal("ReadBinary succeeded on failing reader")
	}
}

func TestReadBinaryGarbageHeader(t *testing.T) {
	inputs := [][]byte{
		{},
		{0xde, 0xad, 0xbe, 0xef},
		bytes.Repeat([]byte{0xff}, 64),
	}
	for i, in := range inputs {
		if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
			t.Errorf("input %d: garbage accepted", i)
		}
	}
}

func TestLoadEdgeListMalformedLines(t *testing.T) {
	for name, input := range map[string]string{
		"one field":   "1\n",
		"non-numeric": "a b\n",
		"huge number": "99999999999999999999 1\n",
	} {
		if _, err := LoadEdgeList(strings.NewReader(input), false); err == nil {
			t.Errorf("%s (%q): accepted", name, input)
		}
	}
}

func TestLoadEdgeListLenientByDesign(t *testing.T) {
	// Raw ids are labels, not indices: negatives remap like anything else.
	g, err := LoadEdgeList(strings.NewReader("-1 2\n"), false)
	if err != nil {
		t.Fatalf("negative label rejected: %v", err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("n=%d m=%d, want 2 and 1", g.NumNodes(), g.NumEdges())
	}
	// Self-loops occur in real SNAP dumps and are skipped, not fatal
	// (SimRank is defined on simple graphs).
	g, err = LoadEdgeList(strings.NewReader("3 3\n4 5\n"), false)
	if err != nil {
		t.Fatalf("self-loop line rejected: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("m=%d after skipping the self-loop, want 1", g.NumEdges())
	}
}

func TestLoadEdgeListCommentsAndRemap(t *testing.T) {
	in := "# comment line\n100 200\n200 300\n\n100 300\n"
	g, err := LoadEdgeList(strings.NewReader(in), false)
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d, want 3 and 3", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadEdgeListReaderFailure(t *testing.T) {
	r := &failAfterReader{data: []byte("1 2\n3 4\n")}
	if _, err := LoadEdgeList(r, false); err == nil {
		t.Fatal("LoadEdgeList succeeded on failing reader")
	}
}

func TestWriteToDiscardEquivalent(t *testing.T) {
	// Writing to io.Discard must succeed: exercises the success path of
	// the buffered writers without a real file.
	g := testGraphForIO(t)
	if err := g.WriteBinary(io.Discard); err != nil {
		t.Fatalf("WriteBinary(io.Discard): %v", err)
	}
	if err := g.WriteEdgeList(io.Discard); err != nil {
		t.Fatalf("WriteEdgeList(io.Discard): %v", err)
	}
}
