package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoadEdgeList parses a whitespace-separated edge list ("u v" per line,
// '#' or '%' comment lines ignored), the format SNAP and LAW distribute
// their graphs in. Node ids may be sparse; they are remapped to a dense
// [0, n) range in first-appearance order. When undirected is true every
// line adds both directions. Self-loops and blank lines are skipped.
func LoadEdgeList(r io.Reader, undirected bool) (*Graph, error) {
	g := New(0)
	ids := make(map[int64]NodeID)
	intern := func(raw int64) NodeID {
		if id, ok := ids[raw]; ok {
			return id
		}
		id := g.AddNode()
		ids[raw] = id
		return id
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want \"u v\", got %q", line, text)
		}
		a, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		b, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		if a == b {
			continue
		}
		u, v := intern(a), intern(b)
		if undirected {
			if err := g.AddEdgeUndirected(u, v); err != nil {
				return nil, err
			}
		} else if err := g.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteEdgeList writes the graph as a directed edge list, one "u v" pair
// per line, ordered by source node.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for u, l := range g.out {
		for _, v := range l {
			if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// binaryMagic identifies the compact binary graph format: magic, node
// count, edge count, then per node its out-degree followed by its
// out-neighbors, all little-endian uint32/uint64.
const binaryMagic = 0x50534742 // "PSGB"

// WriteBinary serializes the graph in the compact binary format, which
// loads an order of magnitude faster than the text edge list.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:4], binaryMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(g.NumNodes()))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(g.m))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [4]byte
	writeU32 := func(x uint32) error {
		binary.LittleEndian.PutUint32(buf[:], x)
		_, err := bw.Write(buf[:])
		return err
	}
	for _, l := range g.out {
		if err := writeU32(uint32(len(l))); err != nil {
			return err
		}
		for _, v := range l {
			if err := writeU32(uint32(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary loads a graph written by WriteBinary. The body is parsed and
// validated before the adjacency structure is allocated, so a hostile
// header cannot demand memory the input does not back: every allocation
// before the final build is proportional to bytes actually read.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:4]))
	}
	n := binary.LittleEndian.Uint64(hdr[4:12])
	m := binary.LittleEndian.Uint64(hdr[12:20])
	if n > 1<<31 {
		return nil, fmt.Errorf("graph: node count %d exceeds int32 range", n)
	}
	if n == 0 && m > 0 {
		return nil, fmt.Errorf("graph: header claims %d edges with no nodes", m)
	}
	var buf [4]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:]), nil
	}
	// Pass 1: consume the body into flat buffers that grow only as bytes
	// arrive (each appended entry is backed by 4 input bytes).
	degrees := make([]uint32, 0, 1024)
	targets := make([]NodeID, 0, 1024)
	var total uint64
	for u := uint64(0); u < n; u++ {
		deg, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("graph: node %d degree: %w", u, err)
		}
		total += uint64(deg)
		if total > m {
			return nil, fmt.Errorf("graph: degrees through node %d sum to %d, header claims %d edges", u, total, m)
		}
		degrees = append(degrees, deg)
		for i := uint32(0); i < deg; i++ {
			v, err := readU32()
			if err != nil {
				return nil, fmt.Errorf("graph: node %d neighbor %d: %w", u, i, err)
			}
			if uint64(v) >= n || uint64(v) == u {
				return nil, fmt.Errorf("graph: node %d neighbor %d out of range", u, v)
			}
			targets = append(targets, NodeID(v))
		}
	}
	if total != m {
		return nil, fmt.Errorf("graph: header claims %d edges, body has %d", m, total)
	}
	// Pass 2: the body is fully validated; build the graph.
	g := New(int(n))
	pos := 0
	for u, deg := range degrees {
		for i := uint32(0); i < deg; i++ {
			if err := g.AddEdge(NodeID(u), targets[pos]); err != nil {
				return nil, err
			}
			pos++
		}
	}
	return g, nil
}
