package graph

import (
	"fmt"
	"math"
)

// Snapshot is an immutable CSR (compressed sparse row) copy of a Graph:
// both adjacency directions flattened into one destination array each,
// indexed by per-node offset arrays. Compared to the mutable
// slice-of-slice representation, a Snapshot
//
//   - stores each direction in two flat arrays (4-byte offsets, 4-byte
//     node ids) instead of one 24-byte slice header plus a separately
//     allocated list per node, roughly halving memory and removing one
//     pointer dereference from every adjacency access;
//   - answers InDegree/OutDegree from adjacent offsets — the read the
//     PROBE inner loop does once per traversed edge — out of a dense
//     array that stays cache- and TLB-resident far longer than scattered
//     slice headers do;
//   - is immutable, so any number of queries can read it with no
//     synchronization whatsoever while writers publish fresh snapshots
//     elsewhere (see core.Executor).
//
// Neighbor order within each node is preserved exactly as in the source
// Graph, so algorithms that consume randomness per neighbor index (walk
// sampling, randomized probes) produce bit-identical results on a Graph
// and its Snapshot for the same seed.
type Snapshot struct {
	n       int
	m       int64
	version uint64

	inOff  []uint32 // len n+1; in-neighbors of v are inDst[inOff[v]:inOff[v+1]]
	inDst  []NodeID
	outOff []uint32 // len n+1; out-neighbors of u are outDst[outOff[u]:outOff[u+1]]
	outDst []NodeID
}

// Snapshot builds a CSR snapshot of the graph's current state in O(n+m).
// The snapshot carries the graph's version counter at build time, so
// callers can detect staleness with Snapshot.Version() != g.Version().
//
// The graph must not be mutated while Snapshot runs (the usual reader
// contract); the returned Snapshot is immutable and safe for unlimited
// concurrent use afterwards.
func (g *Graph) Snapshot() *Snapshot {
	n := len(g.out)
	if g.m > math.MaxUint32 {
		panic(fmt.Sprintf("graph: %d edges overflow the snapshot's 32-bit offsets", g.m))
	}
	s := &Snapshot{
		n:       n,
		m:       g.m,
		version: g.version,
		inOff:   make([]uint32, n+1),
		outOff:  make([]uint32, n+1),
		inDst:   make([]NodeID, g.m),
		outDst:  make([]NodeID, g.m),
	}
	var inPos, outPos uint32
	for v := 0; v < n; v++ {
		s.inOff[v] = inPos
		inPos += uint32(copy(s.inDst[inPos:], g.in[v]))
		s.outOff[v] = outPos
		outPos += uint32(copy(s.outDst[outPos:], g.out[v]))
	}
	s.inOff[n] = inPos
	s.outOff[n] = outPos
	return s
}

// NumNodes returns the number of nodes.
func (s *Snapshot) NumNodes() int { return s.n }

// NumEdges returns the number of directed edges.
func (s *Snapshot) NumEdges() int64 { return s.m }

// Version returns the source graph's version counter at snapshot time.
func (s *Snapshot) Version() uint64 { return s.version }

// InNeighbors returns the in-neighbor list of v. The returned slice
// aliases the snapshot's storage; it is immutable and never invalidated.
func (s *Snapshot) InNeighbors(v NodeID) []NodeID {
	return s.inDst[s.inOff[v]:s.inOff[v+1]]
}

// OutNeighbors returns the out-neighbor list of u under the same contract
// as InNeighbors.
func (s *Snapshot) OutNeighbors(u NodeID) []NodeID {
	return s.outDst[s.outOff[u]:s.outOff[u+1]]
}

// InDegree returns |I(v)|.
func (s *Snapshot) InDegree(v NodeID) int {
	return int(s.inOff[v+1] - s.inOff[v])
}

// OutDegree returns |O(u)|.
func (s *Snapshot) OutDegree(u NodeID) int {
	return int(s.outOff[u+1] - s.outOff[u])
}

// MemoryBytes reports the resident size of the CSR arrays in bytes,
// comparable with (*Graph).MemoryBytes.
func (s *Snapshot) MemoryBytes() int64 {
	return int64(len(s.inOff)+len(s.outOff))*4 +
		int64(len(s.inDst)+len(s.outDst))*4
}

// ComputeStats scans the snapshot once and returns its Stats, mirroring
// (*Graph).ComputeStats so read paths (e.g. the HTTP /stats endpoint) can
// report structure without touching the mutable graph.
func (s *Snapshot) ComputeStats() Stats {
	st := Stats{Nodes: s.n, Edges: s.m}
	for v := 0; v < s.n; v++ {
		din := int(s.inOff[v+1] - s.inOff[v])
		dout := int(s.outOff[v+1] - s.outOff[v])
		if din > st.MaxInDegree {
			st.MaxInDegree = din
		}
		if dout > st.MaxOutDegree {
			st.MaxOutDegree = dout
		}
		if din == 0 {
			st.ZeroInDeg++
		}
		if dout == 0 {
			st.ZeroOutDeg++
		}
	}
	if st.Nodes > 0 {
		st.AvgInDegree = float64(st.Edges) / float64(st.Nodes)
	}
	return st
}

// Validate checks the CSR invariants: monotone offset arrays ending at m,
// and every destination id in range. O(n+m), intended for tests.
func (s *Snapshot) Validate() error {
	for name, off := range map[string][]uint32{"in": s.inOff, "out": s.outOff} {
		if len(off) != s.n+1 {
			return fmt.Errorf("graph: snapshot %s-offsets have length %d, want %d", name, len(off), s.n+1)
		}
		if off[0] != 0 || int64(off[s.n]) != s.m {
			return fmt.Errorf("graph: snapshot %s-offsets span [%d, %d], want [0, %d]", name, off[0], off[s.n], s.m)
		}
		for v := 0; v < s.n; v++ {
			if off[v] > off[v+1] {
				return fmt.Errorf("graph: snapshot %s-offsets decrease at node %d", name, v)
			}
		}
	}
	for _, dst := range [][]NodeID{s.inDst, s.outDst} {
		for _, v := range dst {
			if v < 0 || int(v) >= s.n {
				return fmt.Errorf("graph: snapshot destination %d out of range [0, %d)", v, s.n)
			}
		}
	}
	return nil
}
