package graph

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Snapshot is an immutable CSR (compressed sparse row) copy of a Graph:
// both adjacency directions flattened into one destination array each,
// indexed by per-node offset arrays. Compared to the mutable
// slice-of-slice representation, a Snapshot
//
//   - stores each direction in two flat arrays (4-byte offsets, 4-byte
//     node ids) instead of one 24-byte slice header plus a separately
//     allocated list per node, roughly halving memory and removing one
//     pointer dereference from every adjacency access;
//   - answers InDegree/OutDegree from adjacent offsets — the read the
//     PROBE inner loop does once per traversed edge — out of a dense
//     array that stays cache- and TLB-resident far longer than scattered
//     slice headers do;
//   - is immutable, so any number of queries can read it with no
//     synchronization whatsoever while writers publish fresh snapshots
//     elsewhere (see core.Executor).
//
// Neighbor order within each node is preserved exactly as in the source
// Graph, so algorithms that consume randomness per neighbor index (walk
// sampling, randomized probes) produce bit-identical results on a Graph
// and its Snapshot for the same seed.
type Snapshot struct {
	n       int
	m       int64
	version uint64

	inOff  []uint32 // len n+1; in-neighbors of v are inDst[inOff[v]:inOff[v+1]]
	inDst  []NodeID
	outOff []uint32 // len n+1; out-neighbors of u are outDst[outOff[u]:outOff[u+1]]
	outDst []NodeID
}

// snapshotParallelThreshold is the edge count above which Snapshot copies
// adjacency in parallel. The build is memory-bandwidth bound, so below a
// few hundred thousand bytes the goroutine fan-out costs more than it
// saves.
const snapshotParallelThreshold = 1 << 16

// Snapshot builds a CSR snapshot of the graph's current state in O(n+m).
// The snapshot carries the graph's version counter at build time, so
// callers can detect staleness with Snapshot.Version() != g.Version().
//
// The build runs in two phases: a sequential prefix sum over the degrees
// fills both offset arrays, then the destination copies — which dominate
// and are memory-bandwidth bound — proceed over disjoint node ranges, in
// parallel when the graph is large enough to amortize the fan-out. The
// output is byte-identical regardless of worker count.
//
// The graph must not be mutated while Snapshot runs (the usual reader
// contract); the returned Snapshot is immutable and safe for unlimited
// concurrent use afterwards.
func (g *Graph) Snapshot() *Snapshot {
	n := len(g.out)
	if g.m > math.MaxUint32 {
		panic(fmt.Sprintf("graph: %d edges overflow the snapshot's 32-bit offsets", g.m))
	}
	s := &Snapshot{
		n:       n,
		m:       g.m,
		version: g.version,
		inOff:   make([]uint32, n+1),
		outOff:  make([]uint32, n+1),
		inDst:   make([]NodeID, g.m),
		outDst:  make([]NodeID, g.m),
	}
	// Phase 1: prefix-sum the degrees into the offset arrays.
	var inPos, outPos uint32
	for v := 0; v < n; v++ {
		s.inOff[v] = inPos
		inPos += uint32(len(g.in[v]))
		s.outOff[v] = outPos
		outPos += uint32(len(g.out[v]))
	}
	s.inOff[n] = inPos
	s.outOff[n] = outPos

	// Phase 2: copy each node's lists to their offsets. Ranges are disjoint,
	// so workers never write the same element.
	copyRange := func(lo, hi int) {
		for v := lo; v < hi; v++ {
			copy(s.inDst[s.inOff[v]:], g.in[v])
			copy(s.outDst[s.outOff[v]:], g.out[v])
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if g.m < snapshotParallelThreshold || workers < 2 || n < 2 {
		copyRange(0, n)
		return s
	}
	if workers > n {
		workers = n
	}
	// Split nodes into ranges carrying roughly equal edge mass (in+out), so
	// one hub-heavy range cannot serialize the build on power-law graphs.
	var wg sync.WaitGroup
	total := uint64(2 * g.m)
	lo := 0
	for w := 0; w < workers && lo < n; w++ {
		target := total * uint64(w+1) / uint64(workers)
		hi := lo
		for hi < n && uint64(s.inOff[hi])+uint64(s.outOff[hi]) < target {
			hi++
		}
		if w == workers-1 || hi > n {
			hi = n
		}
		if hi <= lo {
			hi = lo + 1
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			copyRange(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
	return s
}

// NumNodes returns the number of nodes.
func (s *Snapshot) NumNodes() int { return s.n }

// NumEdges returns the number of directed edges.
func (s *Snapshot) NumEdges() int64 { return s.m }

// Version returns the source graph's version counter at snapshot time.
func (s *Snapshot) Version() uint64 { return s.version }

// InNeighbors returns the in-neighbor list of v. The returned slice
// aliases the snapshot's storage; it is immutable and never invalidated.
func (s *Snapshot) InNeighbors(v NodeID) []NodeID {
	return s.inDst[s.inOff[v]:s.inOff[v+1]]
}

// OutNeighbors returns the out-neighbor list of u under the same contract
// as InNeighbors.
func (s *Snapshot) OutNeighbors(u NodeID) []NodeID {
	return s.outDst[s.outOff[u]:s.outOff[u+1]]
}

// InDegree returns |I(v)|.
func (s *Snapshot) InDegree(v NodeID) int {
	return int(s.inOff[v+1] - s.inOff[v])
}

// OutDegree returns |O(u)|.
func (s *Snapshot) OutDegree(u NodeID) int {
	return int(s.outOff[u+1] - s.outOff[u])
}

// MemoryBytes reports the resident size of the CSR arrays in bytes,
// comparable with (*Graph).MemoryBytes.
func (s *Snapshot) MemoryBytes() int64 {
	return int64(len(s.inOff)+len(s.outOff))*4 +
		int64(len(s.inDst)+len(s.outDst))*4
}

// ComputeStats scans the snapshot once and returns its Stats, mirroring
// (*Graph).ComputeStats so read paths (e.g. the HTTP /stats endpoint) can
// report structure without touching the mutable graph.
func (s *Snapshot) ComputeStats() Stats { return ComputeViewStats(s) }

// Validate checks the CSR invariants: monotone offset arrays ending at m,
// and every destination id in range. O(n+m), intended for tests.
func (s *Snapshot) Validate() error {
	for name, off := range map[string][]uint32{"in": s.inOff, "out": s.outOff} {
		if len(off) != s.n+1 {
			return fmt.Errorf("graph: snapshot %s-offsets have length %d, want %d", name, len(off), s.n+1)
		}
		if off[0] != 0 || int64(off[s.n]) != s.m {
			return fmt.Errorf("graph: snapshot %s-offsets span [%d, %d], want [0, %d]", name, off[0], off[s.n], s.m)
		}
		for v := 0; v < s.n; v++ {
			if off[v] > off[v+1] {
				return fmt.Errorf("graph: snapshot %s-offsets decrease at node %d", name, v)
			}
		}
	}
	for _, dst := range [][]NodeID{s.inDst, s.outDst} {
		for _, v := range dst {
			if v < 0 || int(v) >= s.n {
				return fmt.Errorf("graph: snapshot destination %d out of range [0, %d)", v, s.n)
			}
		}
	}
	return nil
}
