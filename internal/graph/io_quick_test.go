package graph

import (
	"bytes"
	"testing"
	"testing/quick"

	"probesim/internal/xrand"
)

// Property: both serialization formats round-trip arbitrary random graphs
// with adjacency preserved exactly (up to neighbor order for the text
// format, which is written in insertion order anyway).
func TestSerializationRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(60)
		g := New(n)
		m := rng.Intn(200)
		for i := 0; i < m; i++ {
			u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
			if u != v {
				_ = g.AddEdge(u, v)
			}
		}

		var bin bytes.Buffer
		if g.WriteBinary(&bin) != nil {
			return false
		}
		g2, err := ReadBinary(&bin)
		if err != nil || !sameAdjacency(g, g2) {
			return false
		}

		var txt bytes.Buffer
		if g.WriteEdgeList(&txt) != nil {
			return false
		}
		g3, err := LoadEdgeList(&txt, false)
		if err != nil {
			return false
		}
		// Text load renumbers by first appearance; with insertion-ordered
		// output and a connected id space this preserves edge count and
		// degree multiset.
		if g3.NumEdges() != g.NumEdges() {
			return false
		}
		return g2.Validate() == nil && g3.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func sameAdjacency(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumNodes(); v++ {
		oa, ob := a.OutNeighbors(NodeID(v)), b.OutNeighbors(NodeID(v))
		if len(oa) != len(ob) {
			return false
		}
		for i := range oa {
			if oa[i] != ob[i] {
				return false
			}
		}
	}
	return true
}

// Property: truncated binary payloads never round-trip silently.
func TestBinaryTruncationDetected(t *testing.T) {
	g := New(20)
	for i := 0; i < 19; i++ {
		if err := g.AddEdge(NodeID(i), NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 10, 19, len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d bytes accepted", cut)
		}
	}
}
