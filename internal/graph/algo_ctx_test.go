package graph

import (
	"context"
	"errors"
	"testing"
)

// chain builds a long path graph, enough nodes that the traversals cross
// several poll intervals.
func chainGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(NodeID(i), NodeID(i+1)); err != nil {
			panic(err)
		}
	}
	return g
}

func TestComponentScansHonorCancellation(t *testing.T) {
	g := chainGraph(50000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := StronglyConnectedCtx(ctx, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("SCC on canceled ctx: %v", err)
	}
	if _, _, err := WeaklyConnectedCtx(ctx, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("WCC on canceled ctx: %v", err)
	}
}

func TestComponentScansMatchUncanceled(t *testing.T) {
	g := chainGraph(5000)
	wantSCC, wantN := StronglyConnected(g)
	gotSCC, gotN, err := StronglyConnectedCtx(context.Background(), g)
	if err != nil || gotN != wantN {
		t.Fatalf("SCC ctx variant: count %d vs %d, err %v", gotN, wantN, err)
	}
	for i := range wantSCC {
		if wantSCC[i] != gotSCC[i] {
			t.Fatalf("SCC ids differ at %d", i)
		}
	}
	wantWCC, wantWN := WeaklyConnected(g)
	gotWCC, gotWN, err := WeaklyConnectedCtx(context.Background(), g)
	if err != nil || gotWN != wantWN {
		t.Fatalf("WCC ctx variant: count %d vs %d, err %v", gotWN, wantWN, err)
	}
	for i := range wantWCC {
		if wantWCC[i] != gotWCC[i] {
			t.Fatalf("WCC ids differ at %d", i)
		}
	}
}
