package graph

// Error-path coverage for the graph loaders the durable boot path leans
// on (-graph bootstraps a -data-dir): hostile headers must not allocate,
// node ids must stay in int32 range, and every short-read site must
// error rather than build a half graph.

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// binHeader builds a WriteBinary-format header claiming n nodes and m
// edges.
func binHeader(n, m uint64) []byte {
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:4], binaryMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], n)
	binary.LittleEndian.PutUint64(hdr[12:20], m)
	return hdr[:]
}

func appendU32s(b []byte, vs ...uint32) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	return b
}

func TestReadBinaryNodeCountOverflow(t *testing.T) {
	// Node ids are int32: a header claiming more than 1<<31 nodes can
	// never be addressed and must be rejected on the header alone —
	// BEFORE any allocation proportional to the claim.
	for _, n := range []uint64{1<<31 + 1, 1 << 40, 1<<64 - 1} {
		if _, err := ReadBinary(bytes.NewReader(binHeader(n, 0))); err == nil {
			t.Errorf("n=%d accepted", n)
		} else if !strings.Contains(err.Error(), "int32") {
			t.Errorf("n=%d: error %v does not name the overflow", n, err)
		}
	}
}

func TestReadBinaryEdgesWithoutNodes(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(binHeader(0, 5))); err == nil {
		t.Fatal("0 nodes with 5 claimed edges accepted")
	}
}

func TestReadBinaryDegreeSumMismatch(t *testing.T) {
	// Two nodes; header claims 1 edge; node 0's degree says 2.
	in := binHeader(2, 1)
	in = appendU32s(in, 2, 1, 1) // degree 2, then neighbors 1, 1
	in = appendU32s(in, 0)       // node 1: degree 0
	if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
		t.Fatal("degree sum above header claim accepted")
	}
	// Header claims 2 edges; body only delivers 1.
	in = binHeader(2, 2)
	in = appendU32s(in, 1, 1) // node 0: degree 1, neighbor 1
	in = appendU32s(in, 0)    // node 1: degree 0
	if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
		t.Fatal("degree sum below header claim accepted")
	}
}

func TestReadBinaryNeighborValidation(t *testing.T) {
	// Neighbor id out of range.
	in := binHeader(2, 1)
	in = appendU32s(in, 1, 9) // node 0 -> 9, but n = 2
	in = appendU32s(in, 0)
	if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
		t.Fatal("out-of-range neighbor accepted")
	}
	// Self-loop in the binary format is structural corruption (the writer
	// never emits one).
	in = binHeader(2, 1)
	in = appendU32s(in, 1, 0) // node 0 -> 0
	in = appendU32s(in, 0)
	if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestReadBinaryShortReadAtEverySite(t *testing.T) {
	// Distinct truncation sites have distinct failure modes: mid-header,
	// mid-degree word, mid-neighbor word, and clean EOF one node early.
	full := binHeader(3, 2)
	full = appendU32s(full, 2, 1, 2) // node 0: degree 2 -> {1, 2}
	full = appendU32s(full, 0)       // node 1
	full = appendU32s(full, 0)       // node 2
	if _, err := ReadBinary(bytes.NewReader(full)); err != nil {
		t.Fatalf("intact input rejected: %v", err)
	}
	for _, cut := range []int{3, 19, 22, 25, 30, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("prefix of %d/%d bytes accepted", cut, len(full))
		}
	}
}

func TestReadBinaryHostileDegreeNoHugeAlloc(t *testing.T) {
	// One node claiming a 4-billion degree backed by 4 bytes: the loader
	// must fail on the edge-count check or the short read, not allocate
	// the claim. (The claim exceeds the header's edge count immediately.)
	in := binHeader(1, 1)
	in = appendU32s(in, 0xffffffff, 7)
	if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
		t.Fatal("hostile degree accepted")
	}
}

func TestLoadEdgeListOverflowAndScannerLimits(t *testing.T) {
	// Ids beyond int64 fail the parse with the line number.
	if _, err := LoadEdgeList(strings.NewReader("1 2\n18446744073709551617 3\n"), false); err == nil {
		t.Fatal("id beyond int64 accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %v does not name the line", err)
	}
	// A line past the scanner's 1MiB ceiling surfaces as an error, not a
	// silent truncation.
	long := strings.Repeat("7", 1<<21) + " 1\n"
	if _, err := LoadEdgeList(strings.NewReader(long), false); err == nil {
		t.Fatal("oversized line accepted")
	}
	// Extra columns are tolerated (SNAP dumps carry timestamps).
	g, err := LoadEdgeList(strings.NewReader("1 2 1700000000\n"), false)
	if err != nil || g.NumEdges() != 1 {
		t.Fatalf("timestamped edge: %v, m=%d", err, g.NumEdges())
	}
}

func TestLoadEdgeListUndirectedErrorPath(t *testing.T) {
	// The undirected loader runs both directions through AddEdge; a
	// malformed line after valid ones must abort, leaving no partial
	// acceptance ambiguity.
	if _, err := LoadEdgeList(strings.NewReader("1 2\nx y\n"), true); err == nil {
		t.Fatal("undirected loader accepted malformed line")
	}
}
