package graph

// Node names of the paper's toy graph (Figure 1), used throughout the
// paper's running examples (§3.2, §4.1, §4.2) and by our tests.
const (
	ToyA NodeID = iota
	ToyB
	ToyC
	ToyD
	ToyE
	ToyF
	ToyG
	ToyH
)

// ToyNames maps toy-graph node ids to the letters used in the paper.
var ToyNames = []string{"a", "b", "c", "d", "e", "f", "g", "h"}

// Toy reconstructs the 8-node toy graph of Figure 1. The paper prints the
// figure but not the edge list; the edges below are uniquely determined by
// the running examples and Table 2:
//
//   - the probe of W(a,4) = (a,b,a,b) finds exactly c, d, e from b with
//     scores 1/6, 1/2, 1/4 → out(b) = {a,c,d,e}, |I(c)|=3, |I(d)|=1,
//     |I(e)|=2;
//   - level-2 scores 0.042/0.115/0.153/0.153 for a/f/g/h → I(a)={b,c},
//     I(f) has c,d,e plus one more (|I(f)|=4), I(g)=I(h)={c,d,e};
//   - the probe of W(a,3) = (a,b,a) yields S3={f,g,h} only → out(a)={b,c}
//     and c has no edge to b;
//   - level-3 scores 0.011/0.033/0.038/0.019 for b/c/e/f → |I(b)|=2 with
//     a→b, c's third in-neighbor and e's second and f's fourth each come
//     from {g,h};
//   - Table 2's Power-Method values (c=0.25) disambiguate the remaining
//     choices (verified exhaustively in internal/power's tests).
func Toy() *Graph {
	g := New(8)
	edges := [][2]NodeID{
		{ToyA, ToyB}, {ToyA, ToyC},
		{ToyB, ToyA}, {ToyB, ToyC}, {ToyB, ToyD}, {ToyB, ToyE},
		{ToyC, ToyA}, {ToyC, ToyF}, {ToyC, ToyG}, {ToyC, ToyH},
		{ToyD, ToyF}, {ToyD, ToyG}, {ToyD, ToyH},
		{ToyE, ToyF}, {ToyE, ToyG}, {ToyE, ToyH},
		{ToyE, ToyB}, // b's second in-neighbor (s(a,b)=0.0096 requires e→b, not d→b)
		{ToyG, ToyC}, // c's third in-neighbor
		{ToyG, ToyE}, // e's second in-neighbor
		{ToyH, ToyF}, // f's fourth in-neighbor
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	return g
}
