package graph

// View is the minimal read-only adjacency surface the query kernels (walk
// generation, PROBE expansion, ProbeSim estimation) need. It is satisfied
// by both the mutable *Graph and the immutable *Snapshot, so every
// algorithm can run against either representation: slice-of-slice
// adjacency while experimenting, CSR snapshots when serving.
type View interface {
	NumNodes() int
	NumEdges() int64
	InNeighbors(v NodeID) []NodeID
	OutNeighbors(u NodeID) []NodeID
	InDegree(v NodeID) int
	OutDegree(u NodeID) int
}

var (
	_ View = (*Graph)(nil)
	_ View = (*Snapshot)(nil)
)

// Adj is a devirtualized adjacency accessor over a View. Hot loops that
// would otherwise pay an interface call per edge resolve an Adj once per
// kernel invocation; its accessors then compile to plain slice indexing
// for the two concrete representations (CSR arrays for *Snapshot,
// slice-of-slice lists for *Graph) and only fall back to interface
// dispatch for foreign View implementations.
//
// An Adj is a point-in-time resolution: like the slices returned by
// InNeighbors, it is invalidated by the next mutation of an underlying
// *Graph. Snapshots are immutable, so their Adj never goes stale.
type Adj struct {
	view View

	// Slice-of-slice path (*Graph).
	inL, outL [][]NodeID

	// CSR path (*Snapshot).
	inOff, outOff []uint32
	inDst, outDst []NodeID

	n int
}

// ResolveAdj resolves the concrete adjacency storage behind v.
func ResolveAdj(v View) Adj {
	switch g := v.(type) {
	case *Snapshot:
		return Adj{
			view:  v,
			inOff: g.inOff, inDst: g.inDst,
			outOff: g.outOff, outDst: g.outDst,
			n: g.n,
		}
	case *Graph:
		return Adj{view: v, inL: g.in, outL: g.out, n: len(g.out)}
	default:
		return Adj{view: v, n: v.NumNodes()}
	}
}

// NumNodes returns the node count of the resolved view.
func (a *Adj) NumNodes() int { return a.n }

// In returns the in-neighbor list of v (read-only, aliasing the view's
// storage).
func (a *Adj) In(v NodeID) []NodeID {
	if a.inOff != nil {
		return a.inDst[a.inOff[v]:a.inOff[v+1]]
	}
	if a.inL != nil {
		return a.inL[v]
	}
	return a.view.InNeighbors(v)
}

// Out returns the out-neighbor list of u (read-only, aliasing the view's
// storage).
func (a *Adj) Out(u NodeID) []NodeID {
	if a.outOff != nil {
		return a.outDst[a.outOff[u]:a.outOff[u+1]]
	}
	if a.outL != nil {
		return a.outL[u]
	}
	return a.view.OutNeighbors(u)
}

// InDegree returns |I(v)|.
func (a *Adj) InDegree(v NodeID) int {
	if a.inOff != nil {
		return int(a.inOff[v+1] - a.inOff[v])
	}
	if a.inL != nil {
		return len(a.inL[v])
	}
	return a.view.InDegree(v)
}

// OutDegree returns |O(u)|.
func (a *Adj) OutDegree(u NodeID) int {
	if a.outOff != nil {
		return int(a.outOff[u+1] - a.outOff[u])
	}
	if a.outL != nil {
		return len(a.outL[u])
	}
	return a.view.OutDegree(u)
}
