package graph

// View is the minimal read-only adjacency surface the query kernels (walk
// generation, PROBE expansion, ProbeSim estimation) need. It is satisfied
// by both the mutable *Graph and the immutable *Snapshot, so every
// algorithm can run against either representation: slice-of-slice
// adjacency while experimenting, CSR snapshots when serving.
type View interface {
	NumNodes() int
	NumEdges() int64
	InNeighbors(v NodeID) []NodeID
	OutNeighbors(u NodeID) []NodeID
	InDegree(v NodeID) int
	OutDegree(u NodeID) int
}

var (
	_ View = (*Graph)(nil)
	_ View = (*Snapshot)(nil)
)

// VersionedView is a View that carries a mutation-version counter, the
// handle the serving stack (core.Executor, core.Querier, internal/server)
// uses for staleness detection and cache invalidation. Both the mutable
// *Graph and every published snapshot type (the monolithic *Snapshot, the
// sharded store's composite snapshot) satisfy it.
type VersionedView interface {
	View
	Version() uint64
}

var (
	_ VersionedView = (*Graph)(nil)
	_ VersionedView = (*Snapshot)(nil)
)

// AdjProvider lets a View implemented outside this package (for example
// the sharded snapshot in internal/shard) hand ResolveAdj a devirtualized
// Adj over its own storage instead of falling back to per-edge interface
// dispatch.
type AdjProvider interface {
	ProvideAdj() Adj
}

// CSRShard is one shard's immutable CSR adjacency: the same layout as
// Snapshot, covering only the shard's contiguous node range, indexed by
// LOCAL node index. Destination ids remain global. internal/shard builds
// one per shard and republishes only the shards an edge batch touched.
//
// The hot Adj accessors do not read InOff/OutOff: they go through the
// dense global span arrays of NewShardedAdj (derived lazily from these
// offsets), which keep the sharded access chain as short as the
// monolithic CSR's.
type CSRShard struct {
	InOff  []uint32 // len localNodes+1
	InDst  []NodeID // global ids
	OutOff []uint32
	OutDst []NodeID
}

// Adj is a devirtualized adjacency accessor over a View. Hot loops that
// would otherwise pay an interface call per edge resolve an Adj once per
// kernel invocation; its accessors then compile to plain slice indexing
// for the concrete representations (CSR arrays for *Snapshot,
// slice-of-slice lists for *Graph, per-shard CSR arrays for AdjProvider
// views such as the sharded store's snapshot) and only fall back to
// interface dispatch for foreign View implementations.
//
// An Adj is a point-in-time resolution: like the slices returned by
// InNeighbors, it is invalidated by the next mutation of an underlying
// *Graph. Snapshots are immutable, so their Adj never goes stale.
type Adj struct {
	view View

	// Slice-of-slice path (*Graph).
	inL, outL [][]NodeID

	// CSR path (*Snapshot).
	inOff, outOff []uint32
	inDst, outDst []NodeID

	// Sharded CSR path (internal/shard snapshots): node v's lists live in
	// shards[v>>shardShift]; its in-list is InDst[start:end] where
	// inSpan[v] packs start (high 32 bits) and end (low 32 bits), both
	// local to the shard's dst arrays. The spans are dense GLOBAL arrays,
	// so one independent load yields both offsets (and the degree, by
	// subtraction) — the sharded access chain stays as short as the
	// monolithic CSR's.
	shards     []CSRShard
	inSpan     []uint64
	outSpan    []uint64
	shardShift uint32

	n int
}

// ResolveAdj resolves the concrete adjacency storage behind v.
func ResolveAdj(v View) Adj {
	switch g := v.(type) {
	case *Snapshot:
		return Adj{
			view:  v,
			inOff: g.inOff, inDst: g.inDst,
			outOff: g.outOff, outDst: g.outDst,
			n: g.n,
		}
	case *Graph:
		return Adj{view: v, inL: g.in, outL: g.out, n: len(g.out)}
	case AdjProvider:
		return g.ProvideAdj()
	default:
		return Adj{view: v, n: v.NumNodes()}
	}
}

// ViewAdj returns the interface-dispatch fallback Adj over v: what
// ResolveAdj's default case builds. An AdjProvider outside this package
// uses it when its devirtualized path is unavailable (for example the
// router's bound view after a failed bulk materialization) — calling
// ResolveAdj again would just re-enter the provider.
func ViewAdj(v View) Adj { return Adj{view: v, n: v.NumNodes()} }

// PackSpan encodes a shard-local [start, end) list span for the dense
// span arrays of the sharded Adj path.
func PackSpan(start, end uint32) uint64 { return uint64(start)<<32 | uint64(end) }

// NewShardedAdj builds the devirtualized accessor over sharded CSR
// storage with a 1<<shift node stride. It is the Adj an AdjProvider in
// internal/shard returns. shards must cover [0, view.NumNodes());
// inSpan/outSpan hold each node's PackSpan-encoded shard-local list
// bounds, dense global arrays of length NumNodes.
func NewShardedAdj(view View, shards []CSRShard, shift uint32, inSpan, outSpan []uint64) Adj {
	return Adj{
		view:       view,
		shards:     shards,
		inSpan:     inSpan,
		outSpan:    outSpan,
		shardShift: shift,
		n:          view.NumNodes(),
	}
}

// NumNodes returns the node count of the resolved view.
func (a *Adj) NumNodes() int { return a.n }

// In returns the in-neighbor list of v (read-only, aliasing the view's
// storage).
func (a *Adj) In(v NodeID) []NodeID {
	if a.inOff != nil {
		return a.inDst[a.inOff[v]:a.inOff[v+1]]
	}
	if a.inL != nil {
		return a.inL[v]
	}
	if a.shards != nil {
		sp := a.inSpan[v]
		return a.shards[uint32(v)>>a.shardShift].InDst[sp>>32 : sp&0xffffffff]
	}
	return a.view.InNeighbors(v)
}

// Out returns the out-neighbor list of u (read-only, aliasing the view's
// storage).
func (a *Adj) Out(u NodeID) []NodeID {
	if a.outOff != nil {
		return a.outDst[a.outOff[u]:a.outOff[u+1]]
	}
	if a.outL != nil {
		return a.outL[u]
	}
	if a.shards != nil {
		sp := a.outSpan[u]
		return a.shards[uint32(u)>>a.shardShift].OutDst[sp>>32 : sp&0xffffffff]
	}
	return a.view.OutNeighbors(u)
}

// InDegree returns |I(v)|.
func (a *Adj) InDegree(v NodeID) int {
	if a.inOff != nil {
		return int(a.inOff[v+1] - a.inOff[v])
	}
	if a.inL != nil {
		return len(a.inL[v])
	}
	if a.inSpan != nil {
		sp := a.inSpan[v]
		return int(uint32(sp) - uint32(sp>>32))
	}
	return a.view.InDegree(v)
}

// OutDegree returns |O(u)|.
func (a *Adj) OutDegree(u NodeID) int {
	if a.outOff != nil {
		return int(a.outOff[u+1] - a.outOff[u])
	}
	if a.outL != nil {
		return len(a.outL[u])
	}
	if a.outSpan != nil {
		sp := a.outSpan[u]
		return int(uint32(sp) - uint32(sp>>32))
	}
	return a.view.OutDegree(u)
}
