// Package graph provides the directed, dynamic graph substrate that every
// SimRank algorithm in this repository runs on.
//
// The representation is a pair of adjacency lists (in-neighbors and
// out-neighbors per node), which supports the operations the paper's
// algorithms need at their natural costs:
//
//   - uniform sampling of an in-neighbor in O(1) (√c-walk steps),
//   - iteration over out-neighbors in O(out-degree) (PROBE expansion),
//   - edge insertion and removal in O(degree) (dynamic-graph workloads).
//
// Graphs are not safe for concurrent mutation, but any number of readers may
// query a graph concurrently as long as no writer is active. This matches
// the paper's usage: queries are parallelized internally, updates are
// applied between queries.
package graph

import (
	"fmt"
)

// NodeID identifies a node. Nodes are dense integers in [0, NumNodes).
type NodeID = int32

// Graph is a directed multigraph with dynamic edge updates.
//
// The zero value is an empty graph with no nodes.
type Graph struct {
	in      [][]NodeID // in[v] lists u for every edge u -> v
	out     [][]NodeID // out[u] lists v for every edge u -> v
	m       int64      // number of edges
	version uint64     // incremented by every mutation
}

// New returns a graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{
		in:  make([][]NodeID, n),
		out: make([][]NodeID, n),
	}
}

// FromEdges builds a graph with n nodes and the given directed edges.
func FromEdges(n int, edges [][2]NodeID) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.out) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int64 { return g.m }

// AddNode appends a new isolated node and returns its id.
func (g *Graph) AddNode() NodeID {
	g.in = append(g.in, nil)
	g.out = append(g.out, nil)
	g.version++
	return NodeID(len(g.out) - 1)
}

// Version returns a counter that increments on every mutation. Callers
// caching derived results (see core.Querier) compare versions to detect
// staleness.
func (g *Graph) Version() uint64 { return g.version }

// checkNode panics with a descriptive message when v is out of range. The
// adjacency accessors are on the hot path of every algorithm, so they use
// plain slice indexing; mutation entry points validate explicitly.
func (g *Graph) checkNode(v NodeID) error {
	if v < 0 || int(v) >= len(g.out) {
		return fmt.Errorf("graph: node %d out of range [0, %d)", v, len(g.out))
	}
	return nil
}

// AddEdge inserts the directed edge u -> v. Self-loops are rejected because
// SimRank is defined on simple graphs; parallel edges are permitted (they
// bias uniform in-neighbor sampling toward the repeated edge, which is the
// standard multigraph semantics).
func (g *Graph) AddEdge(u, v NodeID) error {
	if err := g.checkNode(u); err != nil {
		return err
	}
	if err := g.checkNode(v); err != nil {
		return err
	}
	if u == v {
		return fmt.Errorf("graph: self-loop %d -> %d rejected", u, v)
	}
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.m++
	g.version++
	return nil
}

// AddEdgeUndirected inserts both u -> v and v -> u.
func (g *Graph) AddEdgeUndirected(u, v NodeID) error {
	if err := g.AddEdge(u, v); err != nil {
		return err
	}
	return g.AddEdge(v, u)
}

// HasEdge reports whether at least one edge u -> v exists. It scans the
// shorter of the two adjacency lists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if g.checkNode(u) != nil || g.checkNode(v) != nil {
		return false
	}
	if len(g.out[u]) <= len(g.in[v]) {
		for _, w := range g.out[u] {
			if w == v {
				return true
			}
		}
		return false
	}
	for _, w := range g.in[v] {
		if w == u {
			return true
		}
	}
	return false
}

// RemoveEdge removes one occurrence of the edge u -> v. It returns an error
// if no such edge exists. Removal is O(degree) and does not preserve the
// order of the remaining adjacency entries.
func (g *Graph) RemoveEdge(u, v NodeID) error {
	if err := g.checkNode(u); err != nil {
		return err
	}
	if err := g.checkNode(v); err != nil {
		return err
	}
	if !RemoveOne(&g.out[u], v) {
		return fmt.Errorf("graph: edge %d -> %d not found", u, v)
	}
	if !RemoveOne(&g.in[v], u) {
		// The two lists are kept in lockstep; this is unreachable unless
		// memory was corrupted externally.
		panic("graph: adjacency lists out of sync")
	}
	g.m--
	g.version++
	return nil
}

// RemoveOne deletes the first occurrence of x from the list by swapping
// it with the tail. These exact semantics (first match, tail swap) are
// load-bearing: every adjacency backend (this package's Graph, the
// sharded store) must remove identically so that the surviving neighbor
// ORDER — which walk sampling and randomized probes consume randomness
// against — stays bit-identical across backends that saw the same
// operation sequence.
func RemoveOne(list *[]NodeID, x NodeID) bool {
	s := *list
	for i, w := range s {
		if w == x {
			s[i] = s[len(s)-1]
			*list = s[:len(s)-1]
			return true
		}
	}
	return false
}

// InNeighbors returns the in-neighbor list of v. The returned slice is the
// graph's internal storage: callers must not modify it, and it is
// invalidated by the next mutation of the graph.
func (g *Graph) InNeighbors(v NodeID) []NodeID { return g.in[v] }

// OutNeighbors returns the out-neighbor list of u under the same contract
// as InNeighbors.
func (g *Graph) OutNeighbors(u NodeID) []NodeID { return g.out[u] }

// InDegree returns |I(v)|.
func (g *Graph) InDegree(v NodeID) int { return len(g.in[v]) }

// OutDegree returns |O(u)|.
func (g *Graph) OutDegree(u NodeID) int { return len(g.out[u]) }

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		in:  make([][]NodeID, len(g.in)),
		out: make([][]NodeID, len(g.out)),
		m:   g.m,
	}
	for v, l := range g.in {
		if len(l) > 0 {
			c.in[v] = append([]NodeID(nil), l...)
		}
	}
	for v, l := range g.out {
		if len(l) > 0 {
			c.out[v] = append([]NodeID(nil), l...)
		}
	}
	return c
}

// Transpose returns a new graph with every edge reversed.
func (g *Graph) Transpose() *Graph {
	t := g.Clone()
	t.in, t.out = t.out, t.in
	return t
}

// MemoryBytes estimates the resident size of the adjacency structure in
// bytes (used for the space-overhead columns of Table 4).
func (g *Graph) MemoryBytes() int64 {
	const sliceHeader = 24
	b := int64(len(g.in)+len(g.out)) * sliceHeader
	for _, l := range g.in {
		b += int64(cap(l)) * 4
	}
	for _, l := range g.out {
		b += int64(cap(l)) * 4
	}
	return b
}

// Validate checks internal invariants: edge count consistency and that the
// in- and out-lists describe the same edge multiset. It is O(n + m log m)
// and intended for tests.
func (g *Graph) Validate() error {
	if len(g.in) != len(g.out) {
		return fmt.Errorf("graph: %d in-lists vs %d out-lists", len(g.in), len(g.out))
	}
	var nOut, nIn int64
	counts := make(map[[2]NodeID]int64)
	for u, l := range g.out {
		for _, v := range l {
			if err := g.checkNode(v); err != nil {
				return fmt.Errorf("graph: out[%d] contains invalid node: %w", u, err)
			}
			counts[[2]NodeID{NodeID(u), v}]++
			nOut++
		}
	}
	for v, l := range g.in {
		for _, u := range l {
			if err := g.checkNode(u); err != nil {
				return fmt.Errorf("graph: in[%d] contains invalid node: %w", v, err)
			}
			counts[[2]NodeID{u, NodeID(v)}]--
			nIn++
		}
	}
	if nOut != nIn || nOut != g.m {
		return fmt.Errorf("graph: edge counts disagree: out=%d in=%d m=%d", nOut, nIn, g.m)
	}
	for e, c := range counts {
		if c != 0 {
			return fmt.Errorf("graph: edge %d -> %d appears %+d more times in out-lists than in-lists", e[0], e[1], c)
		}
	}
	return nil
}

// Stats summarizes degree structure; the experiment harness prints these
// next to each dataset (Table 3 reports n and m, §6.1 discusses the
// zero-in-degree share of Wiki-Vote).
type Stats struct {
	Nodes        int
	Edges        int64
	MaxInDegree  int
	MaxOutDegree int
	AvgInDegree  float64
	ZeroInDeg    int // nodes with no in-neighbors
	ZeroOutDeg   int // nodes with no out-neighbors
}

// ComputeStats scans the graph once and returns its Stats.
func (g *Graph) ComputeStats() Stats { return ComputeViewStats(g) }

// ComputeViewStats scans any View once — mutable graph or published
// snapshot, monolithic or sharded — through the devirtualized degree
// accessors and returns its Stats. Read paths (e.g. the HTTP /stats
// endpoint) use it to report structure without touching the mutable
// graph.
func ComputeViewStats(v View) Stats {
	adj := ResolveAdj(v)
	s := Stats{Nodes: v.NumNodes(), Edges: v.NumEdges()}
	for u := 0; u < s.Nodes; u++ {
		din, dout := adj.InDegree(NodeID(u)), adj.OutDegree(NodeID(u))
		if din > s.MaxInDegree {
			s.MaxInDegree = din
		}
		if dout > s.MaxOutDegree {
			s.MaxOutDegree = dout
		}
		if din == 0 {
			s.ZeroInDeg++
		}
		if dout == 0 {
			s.ZeroOutDeg++
		}
	}
	if s.Nodes > 0 {
		s.AvgInDegree = float64(s.Edges) / float64(s.Nodes)
	}
	return s
}
