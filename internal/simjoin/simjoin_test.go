package simjoin

import (
	"context"
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/power"
)

// joinOptions are tight enough that the statistical tests below are stable
// for the fixed seeds.
func joinOptions() Options {
	return Options{Query: core.Options{EpsA: 0.04, Delta: 0.01, Seed: 7}}
}

// truthPairs returns every unordered pair with exact similarity >= theta.
func truthPairs(t *testing.T, g *graph.Graph, theta float64) map[[2]graph.NodeID]float64 {
	t.Helper()
	truth, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("power.SimRank: %v", err)
	}
	out := make(map[[2]graph.NodeID]float64)
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if s := truth.At(graph.NodeID(u), graph.NodeID(v)); s >= theta {
				out[[2]graph.NodeID{graph.NodeID(u), graph.NodeID(v)}] = s
			}
		}
	}
	return out
}

func TestThresholdJoinGuarantee(t *testing.T) {
	g := gen.ErdosRenyi(60, 240, 3)
	opt := joinOptions()
	theta := 0.10
	eps := opt.Query.EpsA

	got, err := ThresholdJoin(context.Background(), g, theta, opt)
	if err != nil {
		t.Fatalf("ThresholdJoin: %v", err)
	}
	gotSet := make(map[[2]graph.NodeID]bool, len(got))
	for _, p := range got {
		gotSet[[2]graph.NodeID{p.U, p.V}] = true
	}

	// Completeness: every pair with s >= theta + eps must be returned.
	for pair, s := range truthPairs(t, g, theta+eps) {
		if !gotSet[pair] {
			t.Errorf("pair %v with s = %v >= θ+ε missing from join", pair, s)
		}
	}
	// Soundness: no returned pair may have s < theta - eps.
	truth, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range got {
		if s := truth.At(p.U, p.V); s < theta-eps {
			t.Errorf("pair {%d,%d} returned with s = %v < θ−ε", p.U, p.V, s)
		}
	}
}

func TestThresholdJoinOutputInvariants(t *testing.T) {
	g := gen.PreferentialAttachment(50, 3, 5)
	got, err := ThresholdJoin(context.Background(), g, 0.05, joinOptions())
	if err != nil {
		t.Fatalf("ThresholdJoin: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("join returned no pairs; test graph too sparse for the assertions below")
	}
	seen := make(map[[2]graph.NodeID]bool)
	for i, p := range got {
		if p.U >= p.V {
			t.Fatalf("pair %d not normalized: U=%d >= V=%d", i, p.U, p.V)
		}
		key := [2]graph.NodeID{p.U, p.V}
		if seen[key] {
			t.Fatalf("pair %v reported twice", key)
		}
		seen[key] = true
		if i > 0 && got[i].Score > got[i-1].Score {
			t.Fatalf("output not sorted by descending score at %d", i)
		}
	}
}

func TestTopKJoinMatchesThreshold(t *testing.T) {
	// TopKJoin's k-th best score defines an implicit threshold; joining at
	// that threshold must return a superset containing the same best pairs.
	g := gen.ErdosRenyi(40, 200, 9)
	opt := joinOptions()
	top, err := TopKJoin(context.Background(), g, 10, opt)
	if err != nil {
		t.Fatalf("TopKJoin: %v", err)
	}
	if len(top) != 10 {
		t.Fatalf("TopKJoin returned %d pairs, want 10", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatalf("TopKJoin not sorted at %d", i)
		}
	}
	all, err := ThresholdJoin(context.Background(), g, top[len(top)-1].Score, opt)
	if err != nil {
		t.Fatalf("ThresholdJoin: %v", err)
	}
	allSet := make(map[[2]graph.NodeID]bool)
	for _, p := range all {
		allSet[[2]graph.NodeID{p.U, p.V}] = true
	}
	for _, p := range top {
		if !allSet[[2]graph.NodeID{p.U, p.V}] {
			t.Fatalf("top pair %v missing from threshold join at its own score", p)
		}
	}
}

func TestTopKJoinAgainstTruth(t *testing.T) {
	g := gen.ErdosRenyi(50, 220, 13)
	opt := joinOptions()
	k := 5
	top, err := TopKJoin(context.Background(), g, k, opt)
	if err != nil {
		t.Fatalf("TopKJoin: %v", err)
	}
	truth, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Exact k-th best pair score.
	var scores []float64
	for u := 0; u < g.NumNodes(); u++ {
		for v := u + 1; v < g.NumNodes(); v++ {
			scores = append(scores, truth.At(graph.NodeID(u), graph.NodeID(v)))
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	kth := scores[k-1]
	// Every returned pair's true score must be within 2ε of the k-th best
	// (its estimate beat the k-th estimate, both within ε of truth).
	for _, p := range top {
		if s := truth.At(p.U, p.V); s < kth-2*opt.Query.EpsA {
			t.Errorf("top pair {%d,%d}: true score %v more than 2ε below k-th best %v", p.U, p.V, s, kth)
		}
	}
}

func TestSourcesRestriction(t *testing.T) {
	g := gen.ErdosRenyi(40, 180, 17)
	opt := joinOptions()
	opt.Sources = []graph.NodeID{3, 9}
	got, err := ThresholdJoin(context.Background(), g, 0.02, opt)
	if err != nil {
		t.Fatalf("ThresholdJoin: %v", err)
	}
	for _, p := range got {
		if p.U != 3 && p.U != 9 && p.V != 3 && p.V != 9 {
			t.Fatalf("pair {%d,%d} has no endpoint in Sources", p.U, p.V)
		}
	}
	seen := make(map[[2]graph.NodeID]bool)
	for _, p := range got {
		key := [2]graph.NodeID{p.U, p.V}
		if seen[key] {
			t.Fatalf("pair %v reported twice with overlapping sources", key)
		}
		seen[key] = true
	}
}

func TestValidation(t *testing.T) {
	g := gen.ErdosRenyi(10, 30, 1)
	if _, err := ThresholdJoin(context.Background(), g, 0, joinOptions()); err == nil {
		t.Error("theta = 0 accepted")
	}
	if _, err := ThresholdJoin(context.Background(), g, 1.5, joinOptions()); err == nil {
		t.Error("theta > 1 accepted")
	}
	if _, err := TopKJoin(context.Background(), g, 0, joinOptions()); err == nil {
		t.Error("k = 0 accepted")
	}
	bad := joinOptions()
	bad.Sources = []graph.NodeID{99}
	if _, err := ThresholdJoin(context.Background(), g, 0.1, bad); err == nil {
		t.Error("out-of-range source accepted")
	}
	badQuery := Options{Query: core.Options{EpsA: 2}}
	if _, err := ThresholdJoin(context.Background(), g, 0.1, badQuery); err == nil {
		t.Error("invalid query options accepted")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := gen.PreferentialAttachment(40, 3, 8)
	opt := joinOptions()
	a, err := ThresholdJoin(context.Background(), g, 0.05, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 1
	b, err := ThresholdJoin(context.Background(), g, 0.05, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("join size differs across worker counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pair %d differs across worker counts: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEmptySourceSet(t *testing.T) {
	// A graph with no in-edges at all joins to nothing.
	g := graph.New(5)
	got, err := ThresholdJoin(context.Background(), g, 0.1, Options{Query: core.Options{EpsA: 0.2}})
	if err != nil {
		t.Fatalf("ThresholdJoin: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("join on edgeless graph returned %d pairs", len(got))
	}
}

func TestMakePairNormalizes(t *testing.T) {
	check := func(a, b uint8, s float64) bool {
		if a == b {
			return true
		}
		p := makePair(graph.NodeID(a), graph.NodeID(b), s)
		return p.U < p.V && p.Score == s
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairScoresWithinEps(t *testing.T) {
	g := gen.ErdosRenyi(40, 160, 23)
	opt := joinOptions()
	got, err := ThresholdJoin(context.Background(), g, 0.05, opt)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := power.SimRank(g, power.Options{C: 0.6, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range got {
		if d := math.Abs(p.Score - truth.At(p.U, p.V)); d > opt.Query.EpsA {
			t.Errorf("pair {%d,%d} score error %v exceeds εa", p.U, p.V, d)
		}
	}
}

func TestJoinCancellationStopsPromptly(t *testing.T) {
	// A join over this graph is thousands of expensive single-source
	// queries; a 1ms deadline must stop it within a checkpoint interval,
	// not after the full fan-out.
	g := gen.PreferentialAttachment(2000, 4, 5)
	opt := Options{Query: core.Options{Seed: 1, NumWalks: 100000}}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	pairs, err := TopKJoin(ctx, g, 10, opt)
	if err == nil {
		t.Fatal("huge join finished under a 1ms deadline?")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if pairs != nil {
		t.Fatal("canceled join returned pairs")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("join deadline honored only after %v", elapsed)
	}
}

func TestJoinPerQueryBudget(t *testing.T) {
	// A per-source walk cap surfaces as the join's error (first source to
	// trip reports), proving Budget flows through the fan-out.
	g := gen.ErdosRenyi(30, 120, 9)
	opt := Options{Query: core.Options{Seed: 1, NumWalks: 100000, Budget: core.Budget{MaxWalks: 10}}}
	_, err := ThresholdJoin(context.Background(), g, 0.1, opt)
	if !errors.Is(err, core.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}
