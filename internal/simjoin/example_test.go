package simjoin_test

import (
	"context"
	"fmt"

	"probesim/internal/core"
	"probesim/internal/graph"
	"probesim/internal/simjoin"
)

// Join a whole graph for similar pairs: the children of the common parent
// score c = 0.6, and similarity propagates one hop down to their own
// children at c·s(1,2) = 0.36 — both pairs clear the threshold.
func Example() {
	g := graph.New(5)
	for _, e := range [][2]graph.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	pairs, err := simjoin.ThresholdJoin(context.Background(), g, 0.3, simjoin.Options{
		Query: core.Options{EpsA: 0.02, Seed: 1},
	})
	if err != nil {
		panic(err)
	}
	for _, p := range pairs {
		fmt.Printf("{%d, %d} s = %.1f\n", p.U, p.V, p.Score)
	}
	// Output:
	// {1, 2} s = 0.6
	// {3, 4} s = 0.4
}
