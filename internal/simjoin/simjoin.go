// Package simjoin answers SimRank similarity-join queries — "find all
// similar pairs" — on top of ProbeSim single-source queries. Joins are the
// application the paper's related work treats as a separate problem
// ([21, 26, 36] in §5); building them on an index-free single-source
// primitive means they inherit ProbeSim's εa guarantee and its
// dynamic-graph friendliness: no join index to maintain, any edge update is
// immediately visible to the next join.
//
// Two query shapes are provided:
//
//   - ThresholdJoin returns every unordered pair whose estimated similarity
//     is at least θ. Because every estimate carries the εa guarantee, the
//     result contains all pairs with s(u,v) >= θ + εa and no pair with
//     s(u,v) < θ − εa (with probability 1 − δ overall).
//   - TopKJoin returns the k highest-scoring unordered pairs.
//
// Both run one single-source query per candidate source, parallelized
// across sources, so a full join costs n queries — the same asymptotics as
// the dedicated join algorithms, without preprocessing.
//
// Joins accept any graph.View: a mutable *graph.Graph between updates, or
// — the serving path — an immutable published snapshot (monolithic or
// sharded), so a long-running join never holds a lock that could stall
// edge updates.
package simjoin

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"probesim/internal/core"
	"probesim/internal/graph"
)

// Pair is one joined pair with its estimated SimRank similarity. U < V
// always holds: pairs are unordered and reported once.
type Pair struct {
	U, V  graph.NodeID
	Score float64
}

// Options configures a join.
type Options struct {
	// Query configures the per-source ProbeSim queries (c, εa, mode,
	// workers, seed; zero value = paper defaults). The join divides
	// Query.Delta across sources so that δ bounds the failure probability
	// of the whole join, not of one query.
	Query core.Options
	// Sources restricts the join to pairs with at least one endpoint in
	// the set. Empty means every node with at least one in-neighbor
	// (a node without in-neighbors has similarity 0 to every other node,
	// so no pair is lost by skipping them).
	Sources []graph.NodeID
	// Workers bounds the number of concurrent single-source queries.
	// Default: the query option's worker count. Each concurrent query
	// runs single-threaded so total parallelism stays bounded.
	Workers int
}

func (o Options) sourcesFor(g graph.View) []graph.NodeID {
	if len(o.Sources) > 0 {
		return o.Sources
	}
	var out []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		if g.InDegree(graph.NodeID(v)) > 0 {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// perSourceOptions derives the options for one source's query: the join's
// failure budget is split evenly across sources by a union bound, and each
// source gets its own deterministic seed stream.
func perSourceOptions(q core.Options, nSources int, u graph.NodeID) core.Options {
	o := q
	if o.Delta == 0 {
		o.Delta = 0.01
	}
	o.Delta /= float64(nSources)
	if o.Seed == 0 {
		o.Seed = 1
	}
	o.Seed = o.Seed*0x9e3779b97f4a7c15 + uint64(u) + 1
	o.Workers = 1 // the join parallelizes across sources instead
	return o
}

func validate(g graph.View, opt Options) error {
	for _, u := range opt.Sources {
		if u < 0 || int(u) >= g.NumNodes() {
			return fmt.Errorf("simjoin: source %d out of range [0, %d)", u, g.NumNodes())
		}
	}
	return nil
}

// ThresholdJoin returns every unordered pair {u, v} with estimated
// similarity at least theta, sorted by descending score (ties broken by
// node ids). With probability 1 − δ the result contains every pair with
// s(u,v) >= theta + εa and no pair with s(u,v) < theta − εa.
//
// ctx bounds the whole join: a join is n single-source queries, so this
// is the knob that keeps a huge join from occupying a server
// indefinitely. Cancellation stops dispatching new sources, stops the
// in-flight per-source queries at their next kernel checkpoint, and
// returns the cancellation error (a canceled join returns no pairs —
// unlike a single query there is no meaningful partial join answer).
// opt.Query.Budget additionally bounds each per-source query.
func ThresholdJoin(ctx context.Context, g graph.View, theta float64, opt Options) ([]Pair, error) {
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("simjoin: threshold %v outside (0, 1)", theta)
	}
	if err := validate(g, opt); err != nil {
		return nil, err
	}
	var mu sync.Mutex
	var out []Pair
	err := forEachSource(ctx, g, opt, func(u graph.NodeID, est []float64, owned func(v graph.NodeID) bool) {
		var local []Pair
		for v := range est {
			if !owned(graph.NodeID(v)) {
				continue
			}
			if est[v] >= theta {
				local = append(local, makePair(u, graph.NodeID(v), est[v]))
			}
		}
		if len(local) > 0 {
			mu.Lock()
			out = append(out, local...)
			mu.Unlock()
		}
	})
	if err != nil {
		return nil, err
	}
	sortPairs(out)
	return out, nil
}

// makePair normalizes an unordered pair to U < V.
func makePair(u, v graph.NodeID, score float64) Pair {
	if u > v {
		u, v = v, u
	}
	return Pair{U: u, V: v, Score: score}
}

// TopKJoin returns the k unordered pairs with the highest estimated
// similarity, in descending score order. Each worker keeps a local top-k
// and the partial answers are merged at the end. Cancellation semantics
// follow ThresholdJoin.
func TopKJoin(ctx context.Context, g graph.View, k int, opt Options) ([]Pair, error) {
	if k <= 0 {
		return nil, fmt.Errorf("simjoin: k = %d must be positive", k)
	}
	if err := validate(g, opt); err != nil {
		return nil, err
	}
	var mu sync.Mutex
	var all []Pair
	err := forEachSource(ctx, g, opt, func(u graph.NodeID, est []float64, owned func(v graph.NodeID) bool) {
		// Keep the source's k best pairs; anything below its k-th best
		// can never enter the global top-k.
		local := make([]Pair, 0, k)
		for v := range est {
			if est[v] <= 0 || !owned(graph.NodeID(v)) {
				continue
			}
			local = append(local, makePair(u, graph.NodeID(v), est[v]))
		}
		sortPairs(local)
		if len(local) > k {
			local = local[:k]
		}
		if len(local) > 0 {
			mu.Lock()
			all = append(all, local...)
			mu.Unlock()
		}
	})
	if err != nil {
		return nil, err
	}
	sortPairs(all)
	if len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// forEachSource runs one single-source query per source across a bounded
// worker pool and hands each result to fn together with an ownership
// predicate: owned(v) reports whether the pair {u, v} should be emitted by
// u's query. A pair with both endpoints in the source set is owned by the
// smaller endpoint; a pair with one source endpoint is owned by that
// source. fn may run concurrently.
func forEachSource(ctx context.Context, g graph.View, opt Options, fn func(u graph.NodeID, est []float64, owned func(v graph.NodeID) bool)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	sources := opt.sourcesFor(g)
	if len(sources) == 0 {
		return nil
	}
	isSource := make([]bool, g.NumNodes())
	for _, u := range sources {
		isSource[u] = true
	}
	workers := opt.Workers
	if workers <= 0 {
		resolved, err := core.PlanFor(opt.Query, g.NumNodes())
		if err != nil {
			return err
		}
		workers = resolved.Workers
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     = make(chan graph.NodeID)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range next {
				qo := perSourceOptions(opt.Query, len(sources), u)
				est, err := core.SingleSource(ctx, g, u, qo)
				if err != nil {
					errOnce.Do(func() { firstErr = fmt.Errorf("simjoin: source %d: %w", u, err) })
					continue
				}
				owned := func(v graph.NodeID) bool {
					if v == u {
						return false
					}
					if isSource[v] {
						return v > u // both endpoints queried: smaller id owns the pair
					}
					return true
				}
				fn(u, est, owned)
			}
		}()
	}
	// Dispatch sources until done or canceled; on cancellation the
	// in-flight queries notice via the same ctx at their own checkpoints.
	done := ctx.Done()
dispatch:
	for _, u := range sources {
		select {
		case next <- u:
		case <-done:
			errOnce.Do(func() { firstErr = fmt.Errorf("simjoin: %w", ctx.Err()) })
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return firstErr
}

// sortPairs orders by descending score, then ascending (U, V) so output is
// deterministic.
func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Score != ps[j].Score {
			return ps[i].Score > ps[j].Score
		}
		if ps[i].U != ps[j].U {
			return ps[i].U < ps[j].U
		}
		return ps[i].V < ps[j].V
	})
}
