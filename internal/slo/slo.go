// Package slo tracks per-tenant service-level objectives over rolling
// windows: a p99 latency target and an availability target per tenant,
// measured against the queries the server actually served. The tracker
// keeps an epoch ring of latency/outcome buckets per tenant, so every
// read (Snapshot) sees only the last window's traffic — SLO burn is a
// current condition, not a lifetime average. Error budget burn rate is
// the standard multi-window alerting quantity: observed error rate
// divided by the rate the objective allows (burn 1.0 = spending the
// budget exactly as fast as it accrues; 10 = an incident).
package slo

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"probesim/internal/promexpo"
)

// Objective is one tenant's targets.
type Objective struct {
	// P99 is the latency bound the tenant's 99th percentile must stay
	// under.
	P99 time.Duration `json:"p99"`
	// Availability is the fraction of queries that must not fail
	// (HTTP 5xx), e.g. 0.999.
	Availability float64 `json:"availability"`
}

// DefaultObjective is applied to tenants without an explicit objective:
// deliberately loose — it exists so burn gauges are always defined, not
// to page anyone.
var DefaultObjective = Objective{P99: time.Second, Availability: 0.99}

// Config configures a Tracker.
type Config struct {
	// Window is the rolling measurement window (default 60s).
	Window time.Duration
	// Epochs is how many buckets the window is split into (default 6);
	// more epochs = smoother roll-off, more memory per tenant.
	Epochs int
	// Default is the objective for tenants not in PerTenant; zero takes
	// DefaultObjective.
	Default Objective
	// PerTenant holds explicit objectives keyed by tenant name.
	PerTenant map[string]Objective
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// Tracker accumulates per-tenant windows. Safe for concurrent use.
type Tracker struct {
	window   time.Duration
	epochDur time.Duration
	epochs   int
	bounds   []float64 // latency bucket upper bounds, seconds
	def      Objective
	perT     map[string]Objective
	now      func() time.Time

	mu      sync.Mutex
	tenants map[string]*tenantWindow
}

type tenantWindow struct {
	obj  Objective
	ring []epochBucket
}

type epochBucket struct {
	epoch    int64
	lat      []int64 // count per bound; index len(bounds) is the overflow
	total    int64
	errors   int64
	degraded int64
}

// New builds a tracker. The latency ladder is promexpo's bucket ladder,
// so /debug/slo and the /metrics histograms agree on resolution.
func New(cfg Config) *Tracker {
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 6
	}
	if cfg.Default == (Objective{}) {
		cfg.Default = DefaultObjective
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Tracker{
		window:   cfg.Window,
		epochDur: cfg.Window / time.Duration(cfg.Epochs),
		epochs:   cfg.Epochs,
		bounds:   promexpo.LatencyBounds(),
		def:      cfg.Default,
		perT:     cfg.PerTenant,
		now:      cfg.Now,
		tenants:  make(map[string]*tenantWindow),
	}
}

// Objective returns the objective the tracker holds tenant to.
func (t *Tracker) Objective(tenant string) Objective {
	if o, ok := t.perT[tenant]; ok {
		return o
	}
	return t.def
}

// Observe records one completed query for tenant. status >= 500 counts
// against availability (499 client-gone and 4xx client errors do not —
// they are not the server failing).
func (t *Tracker) Observe(tenant string, dur time.Duration, status int, degraded bool) {
	sec := dur.Seconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	tw := t.tenants[tenant]
	if tw == nil {
		tw = &tenantWindow{obj: t.Objective(tenant), ring: make([]epochBucket, t.epochs)}
		t.tenants[tenant] = tw
	}
	b := t.bucketLocked(tw)
	b.total++
	if status >= 500 {
		b.errors++
	}
	if degraded {
		b.degraded++
	}
	i := sort.SearchFloat64s(t.bounds, sec)
	b.lat[i]++
}

// bucketLocked returns the current epoch's bucket, resetting a slot
// that still holds a previous rotation's counts.
func (t *Tracker) bucketLocked(tw *tenantWindow) *epochBucket {
	epoch := t.now().UnixNano() / int64(t.epochDur)
	b := &tw.ring[epoch%int64(t.epochs)]
	if b.epoch != epoch {
		*b = epochBucket{epoch: epoch, lat: make([]int64, len(t.bounds)+1)}
	}
	if b.lat == nil {
		b.lat = make([]int64, len(t.bounds)+1)
	}
	return b
}

// TenantSLO is one tenant's windowed SLO state, as served by /debug/slo
// and exported (in pieces) on /metrics.
type TenantSLO struct {
	Tenant   string `json:"tenant"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`
	Degraded int64  `json:"degraded"`
	// P99Seconds is the windowed p99 upper bound from the bucket ladder
	// (0 when the window is empty). When the true p99 exceeds the
	// ladder, the top bound is reported — "at least this".
	P99Seconds float64 `json:"p99_seconds"`
	// Availability is the windowed success fraction (1 when empty — no
	// traffic has burned no budget).
	Availability float64 `json:"availability"`
	// BurnRate is error_rate / (1 - objective availability): 1.0 spends
	// the error budget exactly at the allowed rate.
	BurnRate  float64   `json:"burn_rate"`
	Objective Objective `json:"objective"`
	// LatencyMet / AvailabilityMet are the objective verdicts over this
	// window (vacuously true when the window is empty).
	LatencyMet      bool    `json:"latency_met"`
	AvailabilityMet bool    `json:"availability_met"`
	WindowSeconds   float64 `json:"window_seconds"`
}

// Snapshot returns every tenant's windowed state, sorted by name.
func (t *Tracker) Snapshot() []TenantSLO {
	t.mu.Lock()
	defer t.mu.Unlock()
	epoch := t.now().UnixNano() / int64(t.epochDur)
	oldest := epoch - int64(t.epochs) + 1
	out := make([]TenantSLO, 0, len(t.tenants))
	for name, tw := range t.tenants {
		lat := make([]int64, len(t.bounds)+1)
		var total, errs, degraded int64
		for i := range tw.ring {
			b := &tw.ring[i]
			if b.epoch < oldest || b.total == 0 {
				continue
			}
			total += b.total
			errs += b.errors
			degraded += b.degraded
			for j, c := range b.lat {
				lat[j] += c
			}
		}
		s := TenantSLO{
			Tenant:        name,
			Requests:      total,
			Errors:        errs,
			Degraded:      degraded,
			Availability:  1,
			Objective:     tw.obj,
			WindowSeconds: t.window.Seconds(),
		}
		if total > 0 {
			s.Availability = float64(total-errs) / float64(total)
			s.P99Seconds = quantileBound(t.bounds, lat, total, 0.99)
		}
		if allowed := 1 - tw.obj.Availability; allowed > 0 && total > 0 {
			s.BurnRate = (float64(errs) / float64(total)) / allowed
		}
		s.LatencyMet = total == 0 || s.P99Seconds <= tw.obj.P99.Seconds()
		s.AvailabilityMet = total == 0 || s.Availability >= tw.obj.Availability
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// quantileBound returns the smallest ladder bound covering quantile q
// of the counts (the top bound when the mass lies beyond the ladder).
func quantileBound(bounds []float64, lat []int64, total int64, q float64) float64 {
	// Nearest-rank: the ceil(q·n)-th ordered sample.
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range lat {
		cum += c
		if cum >= target {
			if i < len(bounds) {
				return bounds[i]
			}
			return bounds[len(bounds)-1]
		}
	}
	return bounds[len(bounds)-1]
}

// ParseObjectives parses the -slo flag grammar:
//
//	name=<p99 duration>:<availability>[,name=...]
//
// e.g. "search=50ms:0.999,crawl=2s:0.99".
func ParseObjectives(spec string) (map[string]Objective, error) {
	out := make(map[string]Objective)
	if spec == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, rest, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("slo: bad objective entry %q (want name=p99:availability)", part)
		}
		o, err := ParseObjective(rest)
		if err != nil {
			return nil, fmt.Errorf("slo: tenant %s: %w", name, err)
		}
		out[name] = o
	}
	return out, nil
}

// ParseObjective parses "<p99 duration>:<availability>", e.g.
// "50ms:0.999".
func ParseObjective(s string) (Objective, error) {
	durStr, availStr, ok := strings.Cut(s, ":")
	if !ok {
		return Objective{}, fmt.Errorf("bad objective %q (want p99:availability, e.g. 50ms:0.999)", s)
	}
	d, err := time.ParseDuration(durStr)
	if err != nil || d <= 0 {
		return Objective{}, fmt.Errorf("bad p99 %q: %v", durStr, err)
	}
	a, err := strconv.ParseFloat(availStr, 64)
	if err != nil || a <= 0 || a >= 1 {
		return Objective{}, fmt.Errorf("bad availability %q (want a fraction in (0,1))", availStr)
	}
	return Objective{P99: d, Availability: a}, nil
}
