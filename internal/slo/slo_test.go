package slo

import (
	"testing"
	"time"
)

// fakeClock drives the tracker's epoch rotation deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestTracker(per map[string]Objective) (*Tracker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	tr := New(Config{
		Window:    time.Minute,
		Epochs:    6,
		PerTenant: per,
		Now:       clk.now,
	})
	return tr, clk
}

func find(t *testing.T, snaps []TenantSLO, tenant string) TenantSLO {
	t.Helper()
	for _, s := range snaps {
		if s.Tenant == tenant {
			return s
		}
	}
	t.Fatalf("tenant %s missing from snapshot %+v", tenant, snaps)
	return TenantSLO{}
}

func TestTrackerP99AndAvailability(t *testing.T) {
	tr, _ := newTestTracker(map[string]Objective{
		"search": {P99: 50 * time.Millisecond, Availability: 0.99},
	})
	// 99 fast queries and one slow one: p99 must cover the fast mass but
	// the single 200ms straggler sits in the top percentile.
	for i := 0; i < 99; i++ {
		tr.Observe("search", 2*time.Millisecond, 200, false)
	}
	tr.Observe("search", 200*time.Millisecond, 200, false)
	s := find(t, tr.Snapshot(), "search")
	if s.Requests != 100 || s.Errors != 0 {
		t.Fatalf("counts: %+v", s)
	}
	if s.P99Seconds > 0.05 {
		t.Fatalf("p99 %g pulled up by the straggler", s.P99Seconds)
	}
	if !s.LatencyMet || !s.AvailabilityMet || s.Availability != 1 {
		t.Fatalf("objectives not met: %+v", s)
	}

	// Push the straggler population over 1%: p99 must now report it.
	for i := 0; i < 5; i++ {
		tr.Observe("search", 200*time.Millisecond, 200, false)
	}
	s = find(t, tr.Snapshot(), "search")
	if s.P99Seconds < 0.2 {
		t.Fatalf("p99 %g missed the straggler band", s.P99Seconds)
	}
	if s.LatencyMet {
		t.Fatal("latency objective reported met at p99 >= 200ms vs 50ms target")
	}
}

func TestTrackerBurnRate(t *testing.T) {
	tr, _ := newTestTracker(map[string]Objective{
		"api": {P99: time.Second, Availability: 0.99}, // 1% error budget
	})
	for i := 0; i < 90; i++ {
		tr.Observe("api", time.Millisecond, 200, false)
	}
	for i := 0; i < 10; i++ {
		tr.Observe("api", time.Millisecond, 500, false)
	}
	s := find(t, tr.Snapshot(), "api")
	// 10% errors against a 1% budget: burn rate 10.
	if s.BurnRate < 9.9 || s.BurnRate > 10.1 {
		t.Fatalf("burn rate %g, want ~10", s.BurnRate)
	}
	if s.AvailabilityMet {
		t.Fatal("availability objective reported met at 90%")
	}
	// 4xx and 499 do not burn budget.
	tr.Observe("api", time.Millisecond, 404, false)
	tr.Observe("api", time.Millisecond, 499, false)
	s2 := find(t, tr.Snapshot(), "api")
	if s2.Errors != s.Errors {
		t.Fatalf("client errors burned budget: %d -> %d", s.Errors, s2.Errors)
	}
}

func TestTrackerWindowRollsOff(t *testing.T) {
	tr, clk := newTestTracker(nil)
	for i := 0; i < 50; i++ {
		tr.Observe("batch", time.Millisecond, 500, true)
	}
	s := find(t, tr.Snapshot(), "batch")
	if s.Errors != 50 || s.Degraded != 50 {
		t.Fatalf("window counts: %+v", s)
	}
	// Two full windows later the errors have rolled out.
	clk.advance(2 * time.Minute)
	s = find(t, tr.Snapshot(), "batch")
	if s.Requests != 0 || s.Errors != 0 {
		t.Fatalf("stale window survived rotation: %+v", s)
	}
	if s.Availability != 1 || s.BurnRate != 0 || !s.LatencyMet || !s.AvailabilityMet {
		t.Fatalf("empty window not vacuously healthy: %+v", s)
	}
	// New traffic lands in a clean window even though the ring slots
	// held old epochs.
	tr.Observe("batch", time.Millisecond, 200, false)
	s = find(t, tr.Snapshot(), "batch")
	if s.Requests != 1 || s.Errors != 0 {
		t.Fatalf("post-rotation observe: %+v", s)
	}
}

func TestTrackerDefaultObjective(t *testing.T) {
	tr, _ := newTestTracker(nil)
	tr.Observe("anon", time.Millisecond, 200, false)
	s := find(t, tr.Snapshot(), "anon")
	if s.Objective != DefaultObjective {
		t.Fatalf("objective %+v, want default", s.Objective)
	}
}

func TestParseObjectives(t *testing.T) {
	m, err := ParseObjectives("search=50ms:0.999, crawl=2s:0.99")
	if err != nil {
		t.Fatal(err)
	}
	if m["search"] != (Objective{P99: 50 * time.Millisecond, Availability: 0.999}) {
		t.Fatalf("search: %+v", m["search"])
	}
	if m["crawl"] != (Objective{P99: 2 * time.Second, Availability: 0.99}) {
		t.Fatalf("crawl: %+v", m["crawl"])
	}
	for _, bad := range []string{"nope", "x=50ms", "x=50ms:1.5", "x=banana:0.9", "x=-1s:0.9"} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
	if m, err := ParseObjectives(""); err != nil || len(m) != 0 {
		t.Fatalf("empty spec: %v %v", m, err)
	}
}
