// Package faultinject makes worker failure a reproducible input instead
// of an operational anecdote. It provides two fault surfaces:
//
//   - Engine, a ShardEngine wrapper that injects transport errors, lost
//     replies, latency spikes and hangs from a schedule derived purely
//     from (seed, call index) — replaying the same seed replays the
//     same faults;
//   - Proxy (proxy.go), a TCP relay that refuses, delays, partitions
//     and kills connections mid-reply, for tests that need the faults
//     on a real wire.
//
// Both count what they injected, so a test can assert the run actually
// exercised the failure paths it claims to cover.
package faultinject

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"probesim/internal/budget"
	"probesim/internal/graph"
	"probesim/internal/router"
	"probesim/internal/xrand"
)

// Plan is a deterministic fault schedule. Probabilities are cumulative
// over [0,1): each data-plane call draws one uniform variate from a
// SplitMix64 stream keyed by (Seed, call index) and lands in at most
// one fault class. Control-plane calls (Meta, Ping, Publish, Close)
// always pass through — the router needs them to assemble and heal; use
// Proxy to break those too.
type Plan struct {
	Seed uint64

	PError float64 // fail before the engine sees the call
	PLost  float64 // run the call, then report a transport failure (lost reply)
	PSlow  float64 // delay the call by Slow, then run it
	PHang  float64 // block until the context fires or MaxHang elapses

	Slow    time.Duration // latency spike for PSlow (default 20ms)
	MaxHang time.Duration // hang ceiling for PHang (default 2s)

	// ReadsOnly restricts injection to ResolveShard(s) and
	// WalkSegment/WalkBatch, leaving Apply clean — for tests that fault
	// the read plane while keeping the write plane converged.
	ReadsOnly bool
}

type faultKind int

const (
	faultNone faultKind = iota
	faultError
	faultLost
	faultSlow
	faultHang
)

// Engine wraps a ShardEngine with the Plan's fault schedule.
type Engine struct {
	inner router.ShardEngine
	plan  Plan

	calls    atomic.Uint64
	injected atomic.Int64
}

var _ router.ShardEngine = (*Engine)(nil)

// Wrap returns eng with plan's faults injected in front of it.
func Wrap(eng router.ShardEngine, plan Plan) *Engine {
	if plan.Slow <= 0 {
		plan.Slow = 20 * time.Millisecond
	}
	if plan.MaxHang <= 0 {
		plan.MaxHang = 2 * time.Second
	}
	return &Engine{inner: eng, plan: plan}
}

// Injected reports how many calls had a fault injected.
func (e *Engine) Injected() int64 { return e.injected.Load() }

// Calls reports how many fault-eligible calls the engine has seen.
func (e *Engine) Calls() uint64 { return e.calls.Load() }

// decide draws the fault for the next call index. The stream is keyed
// by the index (golden-ratio scrambled), not by a shared RNG, so the
// decision for call n does not depend on how calls interleave.
func (e *Engine) decide() faultKind {
	n := e.calls.Add(1)
	u := xrand.New(e.plan.Seed ^ n*0x9e3779b97f4a7c15).Float64()
	p := e.plan
	switch {
	case u < p.PError:
		return faultError
	case u < p.PError+p.PLost:
		return faultLost
	case u < p.PError+p.PLost+p.PSlow:
		return faultSlow
	case u < p.PError+p.PLost+p.PSlow+p.PHang:
		return faultHang
	}
	return faultNone
}

// errInjected builds the transport error the router's failover paths
// classify as retryable — the same class a dead TCP worker produces.
func errInjected(what string, n uint64) error {
	return fmt.Errorf("%w: faultinject: injected %s at call %d", router.ErrTransport, what, n)
}

// before runs the pre-call half of a fault. It returns a non-nil error
// to abort the call, and lost=true when the call should run but its
// reply must be discarded.
func (e *Engine) before(ctx context.Context, kind faultKind) (lost bool, err error) {
	n := e.calls.Load()
	switch kind {
	case faultError:
		e.injected.Add(1)
		return false, errInjected("transport error", n)
	case faultLost:
		e.injected.Add(1)
		return true, nil
	case faultSlow:
		e.injected.Add(1)
		select {
		case <-ctx.Done():
			return false, ctx.Err()
		case <-time.After(e.plan.Slow):
		}
		return false, nil
	case faultHang:
		e.injected.Add(1)
		select {
		case <-ctx.Done():
			return false, ctx.Err()
		case <-time.After(e.plan.MaxHang):
			return false, errInjected("hang", n)
		}
	}
	return false, nil
}

// Meta implements ShardEngine (control plane: never faulted).
func (e *Engine) Meta(ctx context.Context) (router.Meta, error) { return e.inner.Meta(ctx) }

// Ping implements ShardEngine (control plane: never faulted).
func (e *Engine) Ping(ctx context.Context) (uint64, uint64, error) { return e.inner.Ping(ctx) }

// Publish implements ShardEngine (control plane: never faulted).
func (e *Engine) Publish(ctx context.Context) (router.Meta, error) { return e.inner.Publish(ctx) }

// Close implements ShardEngine.
func (e *Engine) Close() error { return e.inner.Close() }

// ResolveShard implements ShardEngine with read faults.
func (e *Engine) ResolveShard(ctx context.Context, version uint64, p int) (graph.CSRShard, error) {
	lost, err := e.before(ctx, e.decide())
	if err != nil {
		return graph.CSRShard{}, err
	}
	csr, err := e.inner.ResolveShard(ctx, version, p)
	if lost && err == nil {
		return graph.CSRShard{}, errInjected("lost reply", e.calls.Load())
	}
	return csr, err
}

// WalkSegment implements ShardEngine with read faults.
func (e *Engine) WalkSegment(ctx context.Context, version uint64, h budget.Header, sqrtC float64, cur graph.NodeID, state uint64, room int, buf []graph.NodeID) ([]graph.NodeID, uint64, router.SegmentStatus, error) {
	lost, err := e.before(ctx, e.decide())
	if err != nil {
		return buf, state, router.SegmentEnded, err
	}
	out, st, status, err := e.inner.WalkSegment(ctx, version, h, sqrtC, cur, state, room, buf)
	if lost && err == nil {
		return buf, state, router.SegmentEnded, errInjected("lost reply", e.calls.Load())
	}
	return out, st, status, err
}

// ResolveShards implements ShardEngine with read faults: the batch is
// one call on the wire, so it draws one fault decision.
func (e *Engine) ResolveShards(ctx context.Context, version uint64, ps []int) ([]graph.CSRShard, error) {
	lost, err := e.before(ctx, e.decide())
	if err != nil {
		return nil, err
	}
	csrs, err := e.inner.ResolveShards(ctx, version, ps)
	if lost && err == nil {
		return nil, errInjected("lost reply", e.calls.Load())
	}
	return csrs, err
}

// WalkBatch implements ShardEngine with read faults: one decision per
// batch, matching its single round trip.
func (e *Engine) WalkBatch(ctx context.Context, version uint64, h budget.Header, sqrtC float64, walks []router.WalkStart) ([]router.WalkResult, error) {
	lost, err := e.before(ctx, e.decide())
	if err != nil {
		return nil, err
	}
	out, err := e.inner.WalkBatch(ctx, version, h, sqrtC, walks)
	if lost && err == nil {
		return nil, errInjected("lost reply", e.calls.Load())
	}
	return out, err
}

// Apply implements ShardEngine with write faults (disabled by
// ReadsOnly). A lost reply here is the classic apply-then-die window
// the batch ids close: the inner engine HAS the batch, the caller sees
// a transport error.
func (e *Engine) Apply(ctx context.Context, batch uint64, ops []router.Op) (uint64, error) {
	if e.plan.ReadsOnly {
		return e.inner.Apply(ctx, batch, ops)
	}
	lost, err := e.before(ctx, e.decide())
	if err != nil {
		return 0, err
	}
	v, err := e.inner.Apply(ctx, batch, ops)
	if lost && err == nil {
		return 0, errInjected("lost apply reply", e.calls.Load())
	}
	return v, err
}
