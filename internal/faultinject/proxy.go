package faultinject

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"probesim/internal/xrand"
)

// ProxyPlan is the deterministic per-connection fault schedule for a
// Proxy. Each accepted connection draws its fate from a SplitMix64
// stream keyed by (Seed, connection index): which faults a given
// connection suffers is reproducible, though which logical request rides
// which connection still depends on client scheduling.
type ProxyPlan struct {
	Seed uint64

	PRefuse  float64 // close the client connection before relaying anything
	PKillMid float64 // sever the connection mid-reply, after KillAfter bytes

	// KillAfter is how many worker->client bytes to relay before a
	// PKillMid kill; the default (64) lands inside the first reply's
	// body — past the frame header, before the payload completes.
	KillAfter int

	// Delay is a fixed latency added before relaying each connection's
	// first byte (a slow network, not a dead one).
	Delay time.Duration
}

// Proxy is a chaos TCP relay in front of one worker address. Beyond the
// plan's per-connection faults it supports a hard partition: Cut severs
// every live connection and refuses new ones until Heal.
type Proxy struct {
	ln     net.Listener
	target string
	plan   ProxyPlan

	conns    atomic.Uint64
	injected atomic.Int64
	cut      atomic.Bool
	closed   atomic.Bool

	mu     sync.Mutex
	active map[net.Conn]struct{} // both sides of every live relay
	wg     sync.WaitGroup
}

// NewProxy starts a proxy on an ephemeral localhost port relaying to
// target (host:port).
func NewProxy(target string, plan ProxyPlan) (*Proxy, error) {
	if plan.KillAfter <= 0 {
		plan.KillAfter = 64
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, plan: plan, active: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr returns the proxy's listen address — what the router should dial
// instead of the worker.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Injected reports how many connections had a fault injected.
func (p *Proxy) Injected() int64 { return p.injected.Load() }

// Cut starts a partition: every live connection is severed and new ones
// are refused until Heal.
func (p *Proxy) Cut() {
	p.cut.Store(true)
	p.severAll()
}

// Heal ends a partition.
func (p *Proxy) Heal() { p.cut.Store(false) }

// Close shuts the proxy down.
func (p *Proxy) Close() error {
	p.closed.Store(true)
	err := p.ln.Close()
	p.severAll()
	p.wg.Wait()
	return err
}

func (p *Proxy) severAll() {
	p.mu.Lock()
	for c := range p.active {
		c.Close()
	}
	p.mu.Unlock()
}

// track registers both sides of a relay so severAll can unblock reads
// on either: closing only the client side would leave the worker->client
// copy parked in a read on the worker socket forever.
func (p *Proxy) track(c, s net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() || p.cut.Load() {
		return false
	}
	p.active[c] = struct{}{}
	p.active[s] = struct{}{}
	return true
}

func (p *Proxy) untrack(c, s net.Conn) {
	p.mu.Lock()
	delete(p.active, c)
	delete(p.active, s)
	p.mu.Unlock()
}

func (p *Proxy) accept() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		n := p.conns.Add(1)
		p.wg.Add(1)
		go p.handle(c, n)
	}
}

func (p *Proxy) handle(c net.Conn, n uint64) {
	defer p.wg.Done()
	rng := xrand.New(p.plan.Seed ^ n*0x9e3779b97f4a7c15)
	refuse := rng.Float64() < p.plan.PRefuse
	killMid := rng.Float64() < p.plan.PKillMid
	if p.cut.Load() || refuse {
		if refuse {
			p.injected.Add(1)
		}
		c.Close()
		return
	}
	s, err := net.Dial("tcp", p.target)
	if err != nil {
		c.Close()
		return
	}
	if !p.track(c, s) { // raced Cut/Close
		c.Close()
		s.Close()
		return
	}
	defer func() {
		p.untrack(c, s)
		c.Close()
		s.Close()
	}()
	if p.plan.Delay > 0 {
		time.Sleep(p.plan.Delay)
	}
	done := make(chan struct{})
	go func() { // client -> worker; unblocked by the deferred closes
		io.Copy(s, c)
		close(done)
	}()
	if killMid {
		// Relay part of the worker's reply, then sever both sides: the
		// client sees a frame truncated mid-payload.
		io.CopyN(c, s, int64(p.plan.KillAfter))
		p.injected.Add(1)
	} else {
		io.Copy(c, s)
	}
	c.Close()
	s.Close()
	<-done
}
