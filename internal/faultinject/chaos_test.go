package faultinject

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/router"
	"probesim/internal/shard"
	"probesim/internal/xrand"
)

func testOptions() core.Options {
	return core.Options{Mode: core.ModeAuto, Seed: 7, NumWalks: 300}
}

// assertIdentical requires bit-identical single-source and top-k answers
// from the reference and the faulted topology.
func assertIdentical(t *testing.T, tag string, want, got *core.Executor, nodes []graph.NodeID) {
	t.Helper()
	ctx := context.Background()
	for _, u := range nodes {
		w, err := want.SingleSource(ctx, u)
		if err != nil {
			t.Fatalf("%s: reference query %d: %v", tag, u, err)
		}
		g, err := got.SingleSource(ctx, u)
		if err != nil {
			t.Fatalf("%s: faulted query %d: %v", tag, u, err)
		}
		if len(w) != len(g) {
			t.Fatalf("%s: query %d: length %d vs %d", tag, u, len(w), len(g))
		}
		for v := range w {
			if w[v] != g[v] {
				t.Fatalf("%s: query %d: score[%d] = %v vs %v", tag, u, v, w[v], g[v])
			}
		}
		wk, err := want.TopK(ctx, u, 10)
		if err != nil {
			t.Fatalf("%s: reference top-k %d: %v", tag, u, err)
		}
		gk, err := got.TopK(ctx, u, 10)
		if err != nil {
			t.Fatalf("%s: faulted top-k %d: %v", tag, u, err)
		}
		if len(wk) != len(gk) {
			t.Fatalf("%s: top-k %d: length %d vs %d", tag, u, len(wk), len(gk))
		}
		for i := range wk {
			if wk[i] != gk[i] {
				t.Fatalf("%s: top-k %d: rank %d: %+v vs %+v", tag, u, i, wk[i], gk[i])
			}
		}
	}
}

func randomOps(rng *xrand.RNG, n int, added *[][2]graph.NodeID, count int) []router.Op {
	ops := make([]router.Op, 0, count)
	for len(ops) < count {
		if len(*added) > 0 && rng.Float64() < 0.3 {
			i := rng.Intn(len(*added))
			e := (*added)[i]
			(*added)[i] = (*added)[len(*added)-1]
			*added = (*added)[:len(*added)-1]
			ops = append(ops, router.Op{Remove: true, U: e[0], V: e[1]})
			continue
		}
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		ops = append(ops, router.Op{U: u, V: v})
		*added = append(*added, [2]graph.NodeID{u, v})
	}
	return ops
}

func applyToStore(t *testing.T, st *shard.Store, ops []router.Op) {
	t.Helper()
	for _, op := range ops {
		var err error
		if op.Remove {
			err = st.RemoveEdge(op.U, op.V)
		} else {
			err = st.AddEdge(op.U, op.V)
		}
		if err != nil {
			t.Fatalf("reference store: %v", err)
		}
	}
}

// TestChaosBitIdenticalUnderFaultSchedule is the acceptance property:
// a 2-group x 2-replica fleet where one replica per group runs under a
// seeded fault schedule (transport errors, lost replies, latency
// spikes, hangs) answers EVERY query — and bit-identically to a
// fault-free single store — because at least one replica per group
// stays reachable and the SplitMix64 walk state travels on the wire.
func TestChaosBitIdenticalUnderFaultSchedule(t *testing.T) {
	const n = 400
	for _, seed := range []uint64{1, 2, 3} {
		for _, hedged := range []bool{true, false} {
			t.Run(fmt.Sprintf("seed=%d/hedged=%v", seed, hedged), func(t *testing.T) {
				t.Logf("fault schedule seed %d (replayable)", seed)
				g := gen.PreferentialAttachment(n, 4, 11)
				ref := shard.NewStore(g, 8, 0)
				plan := Plan{
					Seed:      seed,
					PError:    0.15,
					PLost:     0.10,
					PSlow:     0.05,
					PHang:     0.02,
					Slow:      2 * time.Millisecond,
					MaxHang:   50 * time.Millisecond,
					ReadsOnly: true,
				}
				s0a, s0b := shard.NewStore(g, 8, 0), shard.NewStore(g, 8, 0)
				s1a, s1b := shard.NewStore(g, 8, 0), shard.NewStore(g, 8, 0)
				f0 := Wrap(router.NewLocalEngine(s0a, 0, 2), plan)
				f1 := Wrap(router.NewLocalEngine(s1a, 1, 2), plan)
				rt, err := router.NewReplicated([][]router.ShardEngine{
					{f0, router.NewLocalEngine(s0b, 0, 2)},
					{f1, router.NewLocalEngine(s1b, 1, 2)},
				})
				if err != nil {
					t.Fatal(err)
				}
				if hedged {
					// MaxDelay sits below the plan's Slow latency: the batched
					// walk plane sends only a handful of RPCs per query, so the
					// latency tracker never warms past its cold start and
					// MaxDelay IS the effective hedge delay — it must be short
					// enough that a slow-faulted primary triggers the hedge.
					rt.SetHedge(router.HedgePolicy{Enabled: true, MinDelay: 200 * time.Microsecond, MaxDelay: time.Millisecond})
				}
				opt := testOptions()
				want := core.NewExecutorOn(ref, opt)
				got := core.NewExecutorOn(rt, opt)
				nodes := []graph.NodeID{0, 7, 131, 399}
				assertIdentical(t, "static", want, got, nodes)

				// Churn through the faulted fleet (Apply is clean under
				// ReadsOnly; the read plane keeps faulting).
				rng := xrand.New(seed * 1000)
				var added [][2]graph.NodeID
				for round := 0; round < 2; round++ {
					ops := randomOps(rng, n, &added, 12)
					applyToStore(t, ref, ops)
					ref.Publish()
					if err := rt.Apply(context.Background(), ops); err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					if _, err := rt.PublishView(context.Background()); err != nil {
						t.Fatalf("round %d publish: %v", round, err)
					}
					assertIdentical(t, fmt.Sprintf("churn-%d", round), want, got, nodes[:2])
				}

				if f0.Injected()+f1.Injected() == 0 {
					t.Fatal("fault schedule injected nothing; the property was not exercised")
				}
				c := rt.Counters()
				if c.Failovers == 0 {
					t.Fatalf("no failovers despite %d injected faults: %+v", f0.Injected()+f1.Injected(), c)
				}
				if hedged && c.HedgesSent == 0 {
					t.Fatalf("hedging enabled but no hedges sent: %+v", c)
				}
			})
		}
	}
}

// TestChaosWriteLostReplies faults the WRITE plane of one replica (lost
// apply replies and transport errors) and requires the fleet to
// converge anyway: the clean replica keeps every write available, and
// the faulted one is demoted, replayed from the ring and re-admitted.
func TestChaosWriteLostReplies(t *testing.T) {
	const n = 200
	g := gen.PreferentialAttachment(n, 4, 13)
	ref := shard.NewStore(g, 4, 0)
	stA, stB := shard.NewStore(g, 4, 0), shard.NewStore(g, 4, 0)
	flaky := Wrap(router.NewLocalEngine(stA, 0, 1), Plan{
		Seed:   9,
		PError: 0.15,
		PLost:  0.30,
	})
	rt, err := router.NewReplicated([][]router.ShardEngine{
		{flaky, router.NewLocalEngine(stB, 0, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	want := core.NewExecutorOn(ref, opt)
	got := core.NewExecutorOn(rt, opt)

	rng := xrand.New(77)
	var added [][2]graph.NodeID
	for round := 0; round < 4; round++ {
		ops := randomOps(rng, n, &added, 6)
		applyToStore(t, ref, ops)
		ref.Publish()
		if err := rt.Apply(context.Background(), ops); err != nil {
			t.Fatalf("round %d: a replicated write with one clean replica must succeed: %v", round, err)
		}
		if _, err := rt.PublishView(context.Background()); err != nil {
			t.Fatalf("round %d publish: %v", round, err)
		}
	}
	// Let the health/catch-up pass replay the flaky replica back in
	// (its own catch-up applies can fault too, so poll).
	deadline := time.Now().Add(15 * time.Second)
	for {
		_ = rt.CheckHealth(context.Background())
		allCurrent := true
		for _, ws := range rt.WorkerStats() {
			if !ws.Current {
				allCurrent = false
			}
		}
		if allCurrent {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flaky replica never re-admitted: %+v", rt.WorkerStats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if stA.LastBatch() != stB.LastBatch() {
		t.Fatalf("watermarks diverged: %d vs %d", stA.LastBatch(), stB.LastBatch())
	}
	if stA.NumEdges() != stB.NumEdges() || stA.NumEdges() != ref.NumEdges() {
		t.Fatalf("edges diverged: A=%d B=%d ref=%d", stA.NumEdges(), stB.NumEdges(), ref.NumEdges())
	}
	if _, err := rt.PublishView(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "converged", want, got, []graph.NodeID{0, 42, 199})
	if flaky.Injected() == 0 {
		t.Fatal("no write faults injected")
	}
}

// TestChaosProxyKillMidReply runs the faults on a real wire: one
// replica sits behind a chaos proxy that kills connections mid-reply,
// and a partition (Cut) takes it out entirely before Heal lets the
// health loop replay it back in. Every query must still answer
// bit-identically.
func TestChaosProxyKillMidReply(t *testing.T) {
	if testing.Short() {
		t.Skip("sockets + chaos proxy")
	}
	const n = 300
	g := gen.PreferentialAttachment(n, 4, 19)
	ref := shard.NewStore(g, 4, 0)

	startWorker := func(st *shard.Store) (string, *router.Server) {
		le := router.NewLocalEngine(st, 0, 1)
		srv := router.NewServer(le)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		return ln.Addr().String(), srv
	}
	stA, stB := shard.NewStore(g, 4, 0), shard.NewStore(g, 4, 0)
	addrA, _ := startWorker(stA)
	addrB, _ := startWorker(stB)
	// PKillMid 1 with a byte budget: EVERY connection through the proxy
	// dies mid-reply once it has relayed 8KB — deterministic regardless
	// of how the client pools connections, and guaranteed to land inside
	// walk-segment replies during the first query burst.
	proxy, err := NewProxy(addrA, ProxyPlan{Seed: 5, PKillMid: 1, KillAfter: 8192})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	reA := router.NewRemoteEngine(proxy.Addr())
	reB := router.NewRemoteEngine(addrB)
	rt, err := router.NewReplicated([][]router.ShardEngine{{reA, reB}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })

	opt := testOptions()
	want := core.NewExecutorOn(ref, opt)
	got := core.NewExecutorOn(rt, opt)
	nodes := []graph.NodeID{0, 42, 299}
	assertIdentical(t, "mid-reply kills", want, got, nodes)
	if proxy.Injected() == 0 {
		t.Fatal("proxy injected nothing")
	}

	// Hard partition: replica A unreachable. Writes and reads continue
	// on B alone.
	proxy.Cut()
	_ = rt.CheckHealth(context.Background())
	ops := []router.Op{{U: 1, V: 250}, {U: 3, V: 77}}
	applyToStore(t, ref, ops)
	ref.Publish()
	if err := rt.Apply(context.Background(), ops); err != nil {
		t.Fatalf("write during partition: %v", err)
	}
	if _, err := rt.PublishView(context.Background()); err != nil {
		t.Fatalf("publish during partition: %v", err)
	}
	assertIdentical(t, "partitioned", want, got, nodes[:2])

	// Heal: the health pass must replay A back to current.
	proxy.Heal()
	deadline := time.Now().Add(20 * time.Second)
	for {
		_ = rt.CheckHealth(context.Background())
		allCurrent := true
		for _, ws := range rt.WorkerStats() {
			if !ws.Current {
				allCurrent = false
			}
		}
		if allCurrent {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never re-admitted after heal: %+v", rt.WorkerStats())
		}
		time.Sleep(50 * time.Millisecond)
	}
	assertIdentical(t, "healed", want, got, nodes[:2])
	if c := rt.Counters(); c.CatchupBatches == 0 {
		t.Fatalf("partition healed without ring replay: %+v", c)
	}
}
