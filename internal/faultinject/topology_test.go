package faultinject

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"probesim/internal/core"
	"probesim/internal/gen"
	"probesim/internal/graph"
	"probesim/internal/router"
	"probesim/internal/shard"
	"probesim/internal/xrand"
)

// tcpFleet serves two TCP workers splitting shard ownership and returns
// a router over them. legacy makes the servers behave as pre-batch
// workers (per-segment RPCs only); shardLocal gives each worker a
// stride-scoped store holding only its owned shards.
func tcpFleet(t *testing.T, g *graph.Graph, shards int, legacy, shardLocal bool) (*router.Router, []*router.Server) {
	t.Helper()
	var engines []router.ShardEngine
	var servers []*router.Server
	for i := 0; i < 2; i++ {
		var st *shard.Store
		if shardLocal {
			st = shard.NewStoreScoped(g, shards, 0, i, 2)
		} else {
			st = shard.NewStore(g, shards, 0)
		}
		srv := router.NewServer(router.NewLocalEngine(st, i, 2))
		srv.SetLegacy(legacy)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		re := router.NewRemoteEngine(ln.Addr().String())
		t.Cleanup(func() { re.Close() })
		engines = append(engines, re)
		servers = append(servers, srv)
	}
	rt, err := router.New(engines...)
	if err != nil {
		t.Fatal(err)
	}
	return rt, servers
}

// TestTopologyMatrixBitIdentical is the cross-topology property: the
// same graph, seed and query must answer bit-identically on every
// serving shape the repo supports — per-segment RPCs (old workers),
// batched RPCs, router-side stepping over warm views, shard-local
// workers holding only their stride, and a fault-injected replicated
// fleet — through rounds of identical churn.
func TestTopologyMatrixBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("sockets + many RPC round trips")
	}
	const n, shards = 400, 8
	g := gen.PreferentialAttachment(n, 4, 11)
	ref := shard.NewStore(g, shards, 0)
	opt := testOptions()
	want := core.NewExecutorOn(ref, opt)

	unbatched, _ := tcpFleet(t, g, shards, true, false)
	batched, _ := tcpFleet(t, g, shards, false, false)
	scoped, _ := tcpFleet(t, g, shards, false, true)

	// The faulted topology: replicated in-process fleet with a read-plane
	// fault schedule on one replica of each group.
	plan := Plan{Seed: 3, PError: 0.15, PLost: 0.10, PSlow: 0.03,
		Slow: time.Millisecond, ReadsOnly: true}
	s0a, s0b := shard.NewStore(g, shards, 0), shard.NewStore(g, shards, 0)
	s1a, s1b := shard.NewStore(g, shards, 0), shard.NewStore(g, shards, 0)
	f0 := Wrap(router.NewLocalEngine(s0a, 0, 2), plan)
	f1 := Wrap(router.NewLocalEngine(s1a, 1, 2), plan)
	faulted, err := router.NewReplicated([][]router.ShardEngine{
		{f0, router.NewLocalEngine(s0b, 0, 2)},
		{f1, router.NewLocalEngine(s1b, 1, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}

	topologies := []struct {
		name string
		rt   *router.Router
	}{
		{"unbatched", unbatched},
		{"batched", batched},
		{"shard-local", scoped},
		{"faulted", faulted},
	}
	nodes := []graph.NodeID{0, 7, 131, 399}
	for _, tp := range topologies {
		assertIdentical(t, tp.name, want, core.NewExecutorOn(tp.rt, opt), nodes)
	}

	// Router-side stepping: the passes above warmed every router's view,
	// so a repeat query steps walks locally instead of delegating. Assert
	// both the bits and the counters that prove the plane engaged.
	for _, tp := range topologies {
		before := tp.rt.Counters()
		assertIdentical(t, tp.name+"-warm", want, core.NewExecutorOn(tp.rt, opt), nodes[:2])
		after := tp.rt.Counters()
		if after.WalkLocalSegments <= before.WalkLocalSegments {
			t.Fatalf("%s: warm queries stepped no walks router-side: %+v", tp.name, after)
		}
		if after.WalkDelegated != before.WalkDelegated {
			t.Fatalf("%s: warm queries still delegated %d walks", tp.name, after.WalkDelegated-before.WalkDelegated)
		}
	}

	// Churn: identical batches through every topology and the reference,
	// republish, re-verify. Fresh shards faulting in exercises delegation
	// again on each shape.
	rng := xrand.New(99)
	var added [][2]graph.NodeID
	for round := 0; round < 3; round++ {
		ops := randomOps(rng, n, &added, 15)
		applyToStore(t, ref, ops)
		ref.Publish()
		for _, tp := range topologies {
			if err := tp.rt.Apply(context.Background(), ops); err != nil {
				t.Fatalf("round %d %s: %v", round, tp.name, err)
			}
			if _, err := tp.rt.PublishView(context.Background()); err != nil {
				t.Fatalf("round %d %s publish: %v", round, tp.name, err)
			}
			assertIdentical(t, fmt.Sprintf("churn-%d-%s", round, tp.name), want, core.NewExecutorOn(tp.rt, opt), nodes[:2])
		}
	}

	if f0.Injected()+f1.Injected() == 0 {
		t.Fatal("fault schedule injected nothing; the faulted topology was not exercised")
	}
}
