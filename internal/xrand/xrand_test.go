package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSplitMix64ReferenceVector(t *testing.T) {
	// Reference outputs for SplitMix64 seeded with 1234567, from the
	// public-domain reference implementation.
	r := New(1234567)
	want := []uint64{
		0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a, b := parent.Split(0), parent.Split(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times in 1000 draws", same)
	}
	// Splitting must not advance the parent.
	p1, p2 := New(7), New(7)
	p1.Split(3)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Split advanced the parent state")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	r := New(5)
	const n, draws = 10, 200000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d count %d, want ~%.0f", v, c, want)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(8)
	if err := quick.Check(func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		n = n%1000 + 1
		v := r.Uint64n(n)
		return v < n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdge(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(11)
	const p, draws = 0.3, 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) frequency %v", p, got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	const p, draws = 0.4, 100000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / draws
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.05 {
		t.Fatalf("Geometric(%v) mean %v, want %v", p, mean, want)
	}
}

func TestGeometricOne(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		if r.Geometric(1) != 0 {
			t.Fatal("Geometric(1) != 0")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	out := make([]int32, 257)
	r.Perm(out)
	seen := make(map[int32]bool, len(out))
	for _, v := range out {
		if v < 0 || int(v) >= len(out) || seen[v] {
			t.Fatalf("not a permutation: %d", v)
		}
		seen[v] = true
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(23)
	for _, tc := range []struct{ n, k int }{{100, 5}, {100, 90}, {10, 10}, {1, 1}, {5, 0}} {
		got := r.Sample(tc.n, tc.k)
		if len(got) != tc.k {
			t.Fatalf("Sample(%d,%d) len %d", tc.n, tc.k, len(got))
		}
		seen := make(map[int32]bool)
		for _, v := range got {
			if v < 0 || int(v) >= tc.n || seen[v] {
				t.Fatalf("Sample(%d,%d) invalid value %d", tc.n, tc.k, v)
			}
			seen[v] = true
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
